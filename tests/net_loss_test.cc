#include "net/loss_process.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/config.h"
#include "util/rng.h"

namespace ronpath {
namespace {

TEST(LazyIntervalProcess, DeterministicForSeed) {
  LazyIntervalProcess a(Duration::minutes(10), Duration::minutes(1), 5.0, Rng(7));
  LazyIntervalProcess b(Duration::minutes(10), Duration::minutes(1), 5.0, Rng(7));
  const TimePoint end = TimePoint::epoch() + Duration::hours(10);
  a.generate_until(end);
  b.generate_until(end);
  ASSERT_EQ(a.intervals().size(), b.intervals().size());
  for (std::size_t i = 0; i < a.intervals().size(); ++i) {
    EXPECT_EQ(a.intervals()[i].start, b.intervals()[i].start);
    EXPECT_EQ(a.intervals()[i].end, b.intervals()[i].end);
  }
}

TEST(LazyIntervalProcess, GenerationIsQueryInvariant) {
  // Generating in one shot or in many small steps yields the same layout.
  LazyIntervalProcess one(Duration::minutes(5), Duration::minutes(1), 1.0, Rng(9));
  LazyIntervalProcess steps(Duration::minutes(5), Duration::minutes(1), 1.0, Rng(9));
  const TimePoint end = TimePoint::epoch() + Duration::hours(8);
  one.generate_until(end);
  for (int m = 1; m <= 8 * 60; ++m) {
    steps.generate_until(TimePoint::epoch() + Duration::minutes(m));
  }
  ASSERT_EQ(one.intervals().size(), steps.intervals().size());
  for (std::size_t i = 0; i < one.intervals().size(); ++i) {
    EXPECT_EQ(one.intervals()[i].start, steps.intervals()[i].start);
  }
}

TEST(LazyIntervalProcess, ValueAtInsideAndOutside) {
  LazyIntervalProcess p(Duration::hours(1), Duration::minutes(5), 3.0, Rng(11));
  const TimePoint end = TimePoint::epoch() + Duration::days(2);
  p.generate_until(end);
  ASSERT_FALSE(p.intervals().empty());
  const StateInterval iv = p.intervals().front();
  EXPECT_DOUBLE_EQ(p.value_at(iv.start), 3.0);
  EXPECT_DOUBLE_EQ(p.value_at(iv.end - Duration::nanos(1)), 3.0);
  EXPECT_DOUBLE_EQ(p.value_at(iv.end), 0.0);
  if (iv.start > TimePoint::epoch()) {
    EXPECT_DOUBLE_EQ(p.value_at(iv.start - Duration::nanos(1)), 0.0);
  }
}

TEST(LazyIntervalProcess, MergedIntervalsAreDisjointSorted) {
  // High duty cycle forces overlaps that must merge.
  LazyIntervalProcess p(Duration::seconds(30), Duration::minutes(2), 1.0, Rng(13));
  p.generate_until(TimePoint::epoch() + Duration::hours(4));
  const auto& ivs = p.intervals();
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    EXPECT_GT(ivs[i].start, ivs[i - 1].end);
  }
}

TEST(LazyIntervalProcess, PruneDropsOldIntervals) {
  LazyIntervalProcess p(Duration::minutes(2), Duration::seconds(30), 1.0, Rng(17));
  p.generate_until(TimePoint::epoch() + Duration::hours(2));
  const std::size_t before = p.intervals().size();
  ASSERT_GT(before, 0u);
  p.prune_before(TimePoint::epoch() + Duration::hours(1));
  EXPECT_LT(p.intervals().size(), before);
  for (const auto& iv : p.intervals()) {
    EXPECT_GT(iv.end, TimePoint::epoch() + Duration::hours(1));
  }
}

TEST(LazyIntervalProcess, MeanDurationRoughlyMatches) {
  LazyIntervalProcess p(Duration::hours(2), Duration::minutes(10), 1.0, Rng(19));
  p.generate_until(TimePoint::epoch() + Duration::days(200));
  double total_min = 0.0;
  for (const auto& iv : p.intervals()) total_min += (iv.end - iv.start).to_seconds_f() / 60.0;
  const double mean = total_min / static_cast<double>(p.intervals().size());
  EXPECT_NEAR(mean, 10.0, 1.5);  // merging inflates slightly
}

TEST(DiurnalFactor, PeaksInLocalAfternoon) {
  const double amp = 0.5;
  // At longitude 0, peak near 16:00 UTC, trough near 04:00 UTC.
  const double peak = diurnal_factor(TimePoint::epoch() + Duration::hours(16), 0.0, amp);
  const double trough = diurnal_factor(TimePoint::epoch() + Duration::hours(4), 0.0, amp);
  EXPECT_NEAR(peak, 1.5, 0.01);
  EXPECT_NEAR(trough, 0.5, 0.01);
}

TEST(DiurnalFactor, LongitudeShiftsPhase) {
  // 90 degrees east = local time 6 h ahead: the 10:00 UTC factor at lon 90
  // equals the 16:00 UTC factor at lon 0.
  const double a = diurnal_factor(TimePoint::epoch() + Duration::hours(10), 90.0, 0.5);
  const double b = diurnal_factor(TimePoint::epoch() + Duration::hours(16), 0.0, 0.5);
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(DiurnalFactor, ZeroAmplitudeIsFlat) {
  for (int h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(diurnal_factor(TimePoint::epoch() + Duration::hours(h), -71.0, 0.0), 1.0);
  }
}

TEST(DerivedBoost, ProducesTargetLossRate) {
  ComponentParams p;
  p.bursts_per_hour = 2.0;
  p.burst_drop_prob = 0.8;
  const double boost = derived_boost(p, 0.10);
  // rate*mean*drop*boost == 0.10
  const double in_state = p.bursts_per_hour / 3600.0 * mean_burst_seconds(p) *
                          p.burst_drop_prob * boost;
  EXPECT_NEAR(in_state, 0.10, 1e-9);
}

TEST(DerivedBoost, NeverBelowOne) {
  ComponentParams p;
  p.bursts_per_hour = 10'000.0;
  EXPECT_GE(derived_boost(p, 1e-9), 1.0);
}

TEST(MeanBurstSeconds, MixtureWeighting) {
  ComponentParams p;
  p.short_burst_fraction = 1.0;
  p.short_burst_median = Duration::millis(10);
  p.short_burst_sigma = 0.0;
  EXPECT_NEAR(mean_burst_seconds(p), 0.010, 1e-9);
  p.short_burst_fraction = 0.0;
  p.burst_median = Duration::millis(100);
  p.burst_sigma = 0.0;
  EXPECT_NEAR(mean_burst_seconds(p), 0.100, 1e-9);
}

ComponentParams quiet_params() {
  ComponentParams p;
  p.base_loss = 0.0;
  p.bursts_per_hour = 0.0;
  p.episodes_per_day = 0.0;
  p.outages_per_month = 0.0;
  p.diurnal_amplitude = 0.0;
  return p;
}

TEST(ComponentProcess, QuietComponentNeverDrops) {
  ComponentProcess cp(quiet_params(), 0.0, {}, Rng(3));
  for (int i = 0; i < 1000; ++i) {
    const auto s = cp.sample(TimePoint::epoch() + Duration::seconds(i));
    EXPECT_DOUBLE_EQ(s.drop_prob, 0.0);
    EXPECT_FALSE(s.burst);
    EXPECT_FALSE(s.outage);
  }
}

TEST(ComponentProcess, SameInstantSameState) {
  ComponentParams p = quiet_params();
  p.bursts_per_hour = 400.0;  // dense bursts
  p.burst_drop_prob = 0.9;
  ComponentProcess cp(p, 0.0, {}, Rng(5));
  for (int i = 0; i < 5000; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::millis(i * 40);
    const auto s1 = cp.sample(t);
    const auto s2 = cp.sample(t);
    EXPECT_EQ(s1.burst, s2.burst) << i;
    EXPECT_DOUBLE_EQ(s1.drop_prob, s2.drop_prob);
  }
}

TEST(ComponentProcess, BurstFractionMatchesExpectation) {
  ComponentParams p = quiet_params();
  p.bursts_per_hour = 60.0;
  p.burst_drop_prob = 1.0;
  p.short_burst_fraction = 0.0;
  p.burst_median = Duration::millis(200);
  p.burst_sigma = 0.0;  // constant 200 ms bursts
  ComponentProcess cp(p, 0.0, {}, Rng(7));
  std::int64_t in_burst = 0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::millis(i * 10);
    if (cp.sample(t).burst) ++in_burst;
  }
  // Expected fraction: 60/h * 0.2s / 3600 = 1/300.
  const double frac = static_cast<double>(in_burst) / n;
  EXPECT_NEAR(frac, 1.0 / 300.0, 6e-4);
}

TEST(ComponentProcess, OutageDropsEverything) {
  ComponentParams p = quiet_params();
  p.outages_per_month = 20'000.0;  // frequent outages for the test
  p.outage_mean = Duration::minutes(5);
  ComponentProcess cp(p, 0.0, {}, Rng(11));
  bool saw_outage = false;
  for (int i = 0; i < 100'000 && !saw_outage; ++i) {
    const auto s = cp.sample(TimePoint::epoch() + Duration::millis(i * 100));
    if (s.outage) {
      saw_outage = true;
      EXPECT_DOUBLE_EQ(s.drop_prob, 1.0);
    }
  }
  EXPECT_TRUE(saw_outage);
}

TEST(ComponentProcess, StaticBoostRaisesBurstDensity) {
  ComponentParams p = quiet_params();
  p.bursts_per_hour = 5.0;
  p.burst_drop_prob = 1.0;
  const TimePoint boost_start = TimePoint::epoch() + Duration::hours(1);
  const TimePoint boost_end = TimePoint::epoch() + Duration::hours(2);
  ComponentProcess cp(p, 0.0, {{boost_start, boost_end, 200.0}}, Rng(13));
  std::int64_t before = 0;
  std::int64_t during = 0;
  for (int i = 0; i < 36'000; ++i) {
    if (cp.sample(TimePoint::epoch() + Duration::millis(i * 100)).burst) ++before;
  }
  for (int i = 36'000; i < 72'000; ++i) {
    if (cp.sample(TimePoint::epoch() + Duration::millis(i * 100)).burst) ++during;
  }
  EXPECT_GT(during, 10 * std::max<std::int64_t>(before, 1));
}

TEST(ComponentProcess, EpisodeRaisesBurstDensity) {
  ComponentParams p = quiet_params();
  p.bursts_per_hour = 2.0;
  p.burst_drop_prob = 1.0;
  p.episodes_per_day = 40.0;  // frequent, long episodes
  p.episode_mean = Duration::minutes(30);
  p.episode_burst_boost = 300.0;
  ComponentProcess cp(p, 0.0, {}, Rng(17));
  std::int64_t episode_bursts = 0;
  std::int64_t quiet_bursts = 0;
  std::int64_t episode_samples = 0;
  std::int64_t quiet_samples = 0;
  for (int i = 0; i < 864'000; ++i) {  // one day at 100 ms steps
    const auto s = cp.sample(TimePoint::epoch() + Duration::millis(i * 100));
    if (s.episode) {
      ++episode_samples;
      episode_bursts += s.burst ? 1 : 0;
    } else {
      ++quiet_samples;
      quiet_bursts += s.burst ? 1 : 0;
    }
  }
  ASSERT_GT(episode_samples, 0);
  ASSERT_GT(quiet_samples, 0);
  const double episode_rate = static_cast<double>(episode_bursts) / episode_samples;
  const double quiet_rate = static_cast<double>(quiet_bursts) / std::max<std::int64_t>(quiet_samples, 1);
  EXPECT_GT(episode_rate, 20.0 * std::max(quiet_rate, 1e-7));
}

TEST(ComponentProcess, QueueDelayMeanSetDuringBurst) {
  ComponentParams p = quiet_params();
  p.bursts_per_hour = 400.0;
  p.burst_queue_mean = Duration::millis(12);
  ComponentProcess cp(p, 0.0, {}, Rng(19));
  bool checked = false;
  for (int i = 0; i < 200'000 && !checked; ++i) {
    const auto s = cp.sample(TimePoint::epoch() + Duration::millis(i * 10));
    if (s.burst) {
      EXPECT_EQ(s.queue_delay_mean, Duration::millis(12));
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

// The roughly-monotone query contract: debug builds assert on queries
// outside the retained [pruned, generated] window; release builds clamp
// to the nearest retained state instead of fabricating "no interval".
#ifdef NDEBUG
TEST(LazyIntervalProcess, ReleaseClampsQueriesOutsideRetainedWindow) {
  LazyIntervalProcess p(Duration::minutes(5), Duration::minutes(1), 2.0, Rng(31));
  const TimePoint generated = TimePoint::epoch() + Duration::hours(2);
  const TimePoint pruned = TimePoint::epoch() + Duration::hours(1);
  p.generate_until(generated);
  p.prune_before(pruned);
  EXPECT_DOUBLE_EQ(p.value_at(generated + Duration::hours(10)), p.value_at(generated));
  EXPECT_DOUBLE_EQ(p.value_at(TimePoint::epoch()), p.value_at(pruned));
}

TEST(ComponentProcess, ReleaseClampsFarPastSamples) {
  ComponentParams p = quiet_params();
  p.bursts_per_hour = 400.0;
  ComponentProcess cp(p, 0.0, {}, Rng(37));
  const TimePoint newest = TimePoint::epoch() + Duration::seconds(1000);
  (void)cp.sample(newest);
  const ComponentSample ref = cp.sample(newest - kQuerySafety);
  const ComponentSample clamped = cp.sample(TimePoint::epoch());
  EXPECT_EQ(clamped.burst, ref.burst);
  EXPECT_DOUBLE_EQ(clamped.drop_prob, ref.drop_prob);
}
#else
TEST(LazyIntervalProcessDeathTest, DebugAssertsOnContractViolation) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  LazyIntervalProcess p(Duration::minutes(5), Duration::minutes(1), 2.0, Rng(31));
  p.generate_until(TimePoint::epoch() + Duration::hours(2));
  p.prune_before(TimePoint::epoch() + Duration::hours(1));
  EXPECT_DEATH((void)p.value_at(TimePoint::epoch() + Duration::hours(3)),
               "beyond generated timeline");
  EXPECT_DEATH((void)p.value_at(TimePoint::epoch()), "pruned history");
}

TEST(ComponentProcessDeathTest, DebugAssertsOnFarPastSample) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ComponentParams p = quiet_params();
  p.bursts_per_hour = 100.0;
  ComponentProcess cp(p, 0.0, {}, Rng(37));
  (void)cp.sample(TimePoint::epoch() + Duration::seconds(1000));
  EXPECT_DEATH((void)cp.sample(TimePoint::epoch()), "too far in the past");
}
#endif

TEST(ComponentProcess, ToleratesSlightlyOutOfOrderQueries) {
  ComponentParams p = quiet_params();
  p.bursts_per_hour = 100.0;
  ComponentProcess cp(p, 0.0, {}, Rng(23));
  // Forward by 1 s, back by up to 2 s: within kQuerySafety.
  Rng r(29);
  TimePoint t = TimePoint::epoch() + Duration::seconds(10);
  for (int i = 0; i < 20'000; ++i) {
    t += Duration::millis(static_cast<std::int64_t>(r.uniform(-400.0, 1000.0)));
    if (t < TimePoint::epoch() + Duration::seconds(10)) t = TimePoint::epoch() + Duration::seconds(10);
    (void)cp.sample(t);
  }
  SUCCEED();
}

}  // namespace
}  // namespace ronpath
