#include "fec/gf256.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace ronpath::gf256 {
namespace {

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(sub(0x57, 0x83), 0x57 ^ 0x83);
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(add(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(a)), 0);
  }
}

TEST(Gf256, MultiplicationIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(x, 1), x);
    EXPECT_EQ(mul(1, x), x);
    EXPECT_EQ(mul(x, 0), 0);
    EXPECT_EQ(mul(0, x), 0);
  }
}

TEST(Gf256, KnownProduct) {
  // 0x53 * 0xCA = 0x01 in GF(2^8) with polynomial 0x11D... verify via
  // inverse property instead of a hand value: check x * inv(x) == 1.
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(x, inv(x)), 1) << a;
  }
}

TEST(Gf256, MultiplicationCommutative) {
  Rng rng(1);
  for (int i = 0; i < 2'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(mul(a, b), mul(b, a));
  }
}

TEST(Gf256, MultiplicationAssociative) {
  Rng rng(2);
  for (int i = 0; i < 2'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, DistributesOverAddition) {
  Rng rng(3);
  for (int i = 0; i < 2'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  Rng rng(4);
  for (int i = 0; i < 2'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_EQ(div(mul(a, b), b), a);
  }
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (int base : {0x02, 0x1D, 0xFF}) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
      EXPECT_EQ(pow(static_cast<std::uint8_t>(base), e), acc) << base << "^" << e;
      acc = mul(acc, static_cast<std::uint8_t>(base));
    }
  }
  EXPECT_EQ(pow(0, 0), 1);
  EXPECT_EQ(pow(0, 5), 0);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 0x02 generates the multiplicative group: order 255.
  std::uint8_t x = 1;
  int order = 0;
  do {
    x = mul(x, 2);
    ++order;
  } while (x != 1 && order <= 255);
  EXPECT_EQ(order, 255);
}

TEST(Gf256, MulAddAccumulates) {
  std::vector<std::uint8_t> dst = {1, 2, 3, 4};
  const std::vector<std::uint8_t> src = {5, 6, 7, 8};
  std::vector<std::uint8_t> expected = dst;
  for (std::size_t i = 0; i < 4; ++i) expected[i] ^= mul(0x37, src[i]);
  mul_add(dst, src, 0x37);
  EXPECT_EQ(dst, expected);
}

TEST(Gf256, MulAddZeroCoefficientIsNoop) {
  std::vector<std::uint8_t> dst = {9, 9, 9};
  const std::vector<std::uint8_t> src = {1, 2, 3};
  mul_add(dst, src, 0);
  EXPECT_EQ(dst, (std::vector<std::uint8_t>{9, 9, 9}));
}

}  // namespace
}  // namespace ronpath::gf256
