// Merge-path tests: Histogram / EmpiricalCdf merge, the cross-trial
// metric summaries, and the central equivalence that makes the
// multi-trial runner sound: Aggregator::merge(a, b) must equal a single
// aggregator fed both record streams.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "measure/aggregator.h"
#include "measure/cross_trial.h"
#include "measure/report.h"
#include "util/stats.h"

namespace ronpath {
namespace {

TimePoint at(double seconds) { return TimePoint::epoch() + Duration::from_seconds_f(seconds); }

TEST(HistogramMerge, SumsBinsAndOverflow) {
  Histogram a(0.0, 1.0, 10);
  Histogram b(0.0, 1.0, 10);
  a.add(0.05);
  a.add(0.95);
  a.add(-1.0);  // underflow
  b.add(0.05);
  b.add(2.0);  // overflow
  a.merge(b);
  EXPECT_EQ(a.total(), 5);
  EXPECT_EQ(a.bin(0), 2);
  EXPECT_EQ(a.bin(9), 1);
  EXPECT_EQ(a.underflow(), 1);
  EXPECT_EQ(a.overflow(), 1);
}

TEST(EmpiricalCdfMerge, CombinesSamples) {
  EmpiricalCdf a;
  EmpiricalCdf b;
  for (int i = 0; i < 50; ++i) a.add(static_cast<double>(i));
  for (int i = 50; i < 100; ++i) b.add(static_cast<double>(i));
  (void)b.median();  // force the other side sorted; merge must still work
  a.merge(b);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 99.0);
  EXPECT_NEAR(a.median(), 49.5, 1e-9);
}

TEST(CrossTrial, TCriticalValues) {
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
  EXPECT_DOUBLE_EQ(t_critical_95(1), 0.0);
  EXPECT_DOUBLE_EQ(t_critical_95(2), 12.706);  // df = 1
  EXPECT_DOUBLE_EQ(t_critical_95(5), 2.776);   // df = 4
  EXPECT_DOUBLE_EQ(t_critical_95(31), 2.042);  // df = 30
  EXPECT_DOUBLE_EQ(t_critical_95(1000), 1.96);
}

TEST(CrossTrial, SummarizeMetricKnownValues) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const MetricSummary s = summarize_metric(values);
  EXPECT_EQ(s.n, 8);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev with n-1: sqrt(32/7).
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);
  // t(df=7) = 2.365.
  EXPECT_NEAR(s.ci95_half, 2.365 * s.stddev / std::sqrt(8.0), 1e-9);
}

TEST(CrossTrial, SingleTrialHasNoInterval) {
  const std::vector<double> one = {3.5};
  const MetricSummary s = summarize_metric(one);
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(CrossTrial, LossTableCiAggregatesRows) {
  LossTableRow r1;
  r1.scheme = PairScheme::kDirectRand;
  r1.name = "direct rand";
  r1.lp1 = 0.4;
  r1.lp2 = 2.0;
  r1.totlp = 0.2;
  r1.clp = 50.0;
  r1.lat_ms = 60.0;
  r1.samples = 100;
  LossTableRow r2 = r1;
  r2.lp1 = 0.6;
  r2.lp2 = 3.0;
  r2.totlp = 0.4;
  r2.clp.reset();  // this trial saw no first-copy losses
  r2.lat_ms = 70.0;
  r2.samples = 150;
  const std::vector<std::vector<LossTableRow>> per_trial = {{r1}, {r2}};
  const auto ci = make_loss_table_ci(per_trial);
  ASSERT_EQ(ci.size(), 1u);
  EXPECT_EQ(ci[0].name, "direct rand");
  EXPECT_EQ(ci[0].lp1.n, 2);
  EXPECT_DOUBLE_EQ(ci[0].lp1.mean, 0.5);
  ASSERT_TRUE(ci[0].lp2.has_value());
  EXPECT_DOUBLE_EQ(ci[0].lp2->mean, 2.5);
  ASSERT_TRUE(ci[0].clp.has_value());
  EXPECT_EQ(ci[0].clp->n, 1);  // only the trial that observed it
  EXPECT_DOUBLE_EQ(ci[0].clp->mean, 50.0);
  EXPECT_EQ(ci[0].samples_total, 250);
}

// ------------------------------------------------------------------------
// Aggregator::merge equivalence.

ProbeRecord make_record(PairScheme scheme, NodeId src, NodeId dst, TimePoint sent,
                        bool first_lost, bool second_lost) {
  ProbeRecord r;
  r.scheme = scheme;
  r.src = src;
  r.dst = dst;
  r.copy_count = 2;
  r.copies[0].sent = sent;
  r.copies[0].delivered = !first_lost;
  r.copies[0].latency = Duration::millis(50);
  r.copies[1].sent = sent;
  r.copies[1].delivered = !second_lost;
  r.copies[1].latency = Duration::millis(60);
  return r;
}

// Deterministic pseudo-random stream of records covering hours
// [hour_lo, hour_hi) on a 3-node mesh.
std::vector<ProbeRecord> record_stream(int hour_lo, int hour_hi, unsigned salt) {
  std::vector<ProbeRecord> out;
  unsigned state = 12345u + salt;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int h = hour_lo; h < hour_hi; ++h) {
    for (int i = 0; i < 240; ++i) {
      const double t = h * 3600.0 + i * 15.0;
      const NodeId src = static_cast<NodeId>(next() % 3);
      NodeId dst = static_cast<NodeId>(next() % 3);
      if (dst == src) dst = static_cast<NodeId>((src + 1) % 3);
      const bool first_lost = next() % 100 < 5;
      const bool second_lost = first_lost ? next() % 100 < 60 : next() % 100 < 2;
      out.push_back(
          make_record(PairScheme::kDirectRand, src, dst, at(t), first_lost, second_lost));
    }
  }
  return out;
}

void feed(Aggregator& agg, const std::vector<ProbeRecord>& records) {
  for (const auto& rec : records) {
    for (NodeId n = 0; n < 3; ++n) agg.note_activity(n, rec.sent());
    agg.add(rec);
  }
}

TEST(AggregatorMerge, EqualsSingleAggregatorFedBothStreams) {
  const std::vector<PairScheme> schemes = {PairScheme::kDirectRand};
  const AggregatorConfig cfg;
  // Two streams on disjoint hour ranges, as two trials' windows would be.
  const auto stream_a = record_stream(0, 3, 1);
  const auto stream_b = record_stream(3, 6, 2);

  Aggregator a(3, schemes, cfg);
  feed(a, stream_a);
  a.finish(at(3 * 3600.0));

  Aggregator b(3, schemes, cfg);
  feed(b, stream_b);
  b.finish(at(6 * 3600.0));

  Aggregator single(3, schemes, cfg);
  feed(single, stream_a);
  feed(single, stream_b);
  single.finish(at(6 * 3600.0));

  a.merge(b);

  const auto& ms = a.scheme_stats(PairScheme::kDirectRand);
  const auto& ss = single.scheme_stats(PairScheme::kDirectRand);
  EXPECT_EQ(ms.committed, ss.committed);
  EXPECT_EQ(ms.pair.pairs(), ss.pair.pairs());
  EXPECT_EQ(ms.pair.first_lost(), ss.pair.first_lost());
  EXPECT_EQ(ms.pair.second_lost(), ss.pair.second_lost());
  EXPECT_EQ(ms.pair.both_lost(), ss.pair.both_lost());
  EXPECT_EQ(ms.method_lat_ms.count(), ss.method_lat_ms.count());
  EXPECT_NEAR(ms.method_lat_ms.mean(), ss.method_lat_ms.mean(), 1e-9);
  EXPECT_NEAR(ms.first_lat_ms.mean(), ss.first_lat_ms.mean(), 1e-9);

  // Per-path stats.
  for (NodeId s = 0; s < 3; ++s) {
    for (NodeId d = 0; d < 3; ++d) {
      if (s == d) continue;
      const auto& mp = a.path_stats(PairScheme::kDirectRand, s, d);
      const auto& sp = single.path_stats(PairScheme::kDirectRand, s, d);
      EXPECT_EQ(mp.pair.pairs(), sp.pair.pairs());
      EXPECT_EQ(mp.pair.both_lost(), sp.pair.both_lost());
      EXPECT_NEAR(mp.method_lat_ms.mean(), sp.method_lat_ms.mean(), 1e-9);
    }
  }

  // Window-derived state.
  const auto& mh = a.window_hist(PairScheme::kDirectRand, /*hourly=*/true);
  const auto& sh = single.window_hist(PairScheme::kDirectRand, /*hourly=*/true);
  EXPECT_EQ(mh.total(), sh.total());
  for (std::size_t i = 0; i < mh.bin_count(); ++i) EXPECT_EQ(mh.bin(i), sh.bin(i));
  EXPECT_EQ(a.total_hour_windows(PairScheme::kDirectRand),
            single.total_hour_windows(PairScheme::kDirectRand));
  const auto& mc = a.high_loss_hours(PairScheme::kDirectRand);
  const auto& sc = single.high_loss_hours(PairScheme::kDirectRand);
  for (std::size_t i = 0; i < kHighLossThresholds; ++i) EXPECT_EQ(mc[i], sc[i]);

  EXPECT_EQ(a.global_window_loss(PairScheme::kDirectRand).size(),
            single.global_window_loss(PairScheme::kDirectRand).size());
  EXPECT_NEAR(a.worst_hour(PairScheme::kDirectRand).loss_rate,
              single.worst_hour(PairScheme::kDirectRand).loss_rate, 1e-12);
  EXPECT_EQ(a.worst_hour(PairScheme::kDirectRand).start,
            single.worst_hour(PairScheme::kDirectRand).start);
}

TEST(AggregatorMerge, PairAndLossCounterMergeMatchSequentialFeed) {
  PairCounter merged;
  PairCounter part1;
  PairCounter part2;
  PairCounter sequential;
  auto feed_counter = [](PairCounter& c, int fl, int sl, int both, int none) {
    for (int i = 0; i < fl; ++i) c.record(true, false);
    for (int i = 0; i < sl; ++i) c.record(false, true);
    for (int i = 0; i < both; ++i) c.record(true, true);
    for (int i = 0; i < none; ++i) c.record(false, false);
  };
  feed_counter(part1, 3, 2, 1, 94);
  feed_counter(part2, 5, 1, 2, 150);
  feed_counter(sequential, 3, 2, 1, 94);
  feed_counter(sequential, 5, 1, 2, 150);
  merged.merge(part1);
  merged.merge(part2);
  EXPECT_EQ(merged.pairs(), sequential.pairs());
  EXPECT_EQ(merged.first_lost(), sequential.first_lost());
  EXPECT_EQ(merged.second_lost(), sequential.second_lost());
  EXPECT_EQ(merged.both_lost(), sequential.both_lost());
}

}  // namespace
}  // namespace ronpath
