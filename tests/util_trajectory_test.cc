// Trajectory-file parsing (util/trajectory.h): the --compare baseline
// must come from the LAST entry only, tolerating rows that predate
// later-added fields (bench_hotpath's pre-PR6 sharded columns).

#include "util/trajectory.h"

#include <gtest/gtest.h>

namespace ronpath {
namespace {

constexpr const char* kTwoEntries = R"([
{
  "schema": "ronpath-bench-hotpath-v1",
  "label": "old-with-sharded",
  "packets_per_sec": 100.0,
  "sharded_packets_per_sec": 50.0
},
{
  "schema": "ronpath-bench-hotpath-v1",
  "label": "new-without-sharded",
  "packets_per_sec": 200.0
}
])";

TEST(Trajectory, LastEntryPicksTheNewestObject) {
  const std::string entry = traj::last_entry(kTwoEntries);
  EXPECT_NE(entry.find("new-without-sharded"), std::string::npos);
  EXPECT_EQ(entry.find("old-with-sharded"), std::string::npos);
}

TEST(Trajectory, MissingFieldFallsBackInsteadOfLeakingOlderEntries) {
  // The regression this guards: a whole-file "last occurrence" scan
  // would resolve sharded_packets_per_sec to the OLD entry's 50.0 and
  // compare a fresh run against a stale baseline. Entry-scoped lookup
  // reports the field as absent.
  const std::string entry = traj::last_entry(kTwoEntries);
  EXPECT_EQ(traj::number_field(entry, "packets_per_sec"), 200.0);
  EXPECT_EQ(traj::number_field(entry, "sharded_packets_per_sec"), -1.0);
  EXPECT_EQ(traj::number_field(entry, "sharded_packets_per_sec", 0.0), 0.0);
  EXPECT_FALSE(traj::has_field(entry, "sharded_packets_per_sec"));
  EXPECT_TRUE(traj::has_field(entry, "packets_per_sec"));
}

TEST(Trajectory, BracesInsideStringsDoNotConfuseMatching) {
  const std::string text = R"([
{ "label": "a } fake { close", "x": 1.0 },
{ "label": "with \" escaped { quote", "x": 2.0 }
])";
  const std::string entry = traj::last_entry(text);
  EXPECT_EQ(traj::number_field(entry, "x"), 2.0);
}

TEST(Trajectory, EmptyAndTruncatedInputs) {
  EXPECT_TRUE(traj::last_entry("").empty());
  EXPECT_TRUE(traj::last_entry("[\n").empty());
  // A truncated trailing object falls back to the last COMPLETE one.
  const std::string text = R"([{"x": 1.0}, {"x": 2.0)";
  EXPECT_EQ(traj::number_field(traj::last_entry(text), "x"), 1.0);
}

TEST(Trajectory, SingleEntryFile) {
  const std::string entry = traj::last_entry(R"({"only": 7.5})");
  EXPECT_EQ(traj::number_field(entry, "only"), 7.5);
}

}  // namespace
}  // namespace ronpath
