// Router edge cases at k-hop depths: entry-TTL staleness in the
// two-hop selector (regression for the historical `now`-less overload),
// hold-down interacting with multi-relay selection, degraded-view
// fallback at k > 1, and Duration sentinel saturation in multi-hop
// latency composition.

#include "overlay/router.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "core/experiment.h"
#include "overlay/link_state.h"
#include "overlay/path_engine.h"

namespace ronpath {
namespace {

LinkMetrics metrics(double loss, Duration lat, bool down = false,
                    TimePoint published = TimePoint::epoch()) {
  LinkMetrics m;
  m.loss = loss;
  m.latency = lat;
  m.has_latency = lat != Duration::max();
  m.down = down;
  m.samples = 100;
  m.published = published;
  return m;
}

void fill(LinkStateTable& t, double loss, Duration lat, TimePoint published = TimePoint::epoch()) {
  const auto n = static_cast<NodeId>(t.size());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b) t.publish(a, b, metrics(loss, lat, false, published));
    }
  }
}

// --- satellite: two-hop selector must honor entry-TTL staleness ------

TEST(TwoHopStaleness, StaleRelayEntriesDegradeToUnknown) {
  LinkStateTable t(4);
  RouterConfig cfg;
  cfg.entry_ttl = Duration::seconds(60);
  const TimePoint now = TimePoint::epoch() + Duration::minutes(30);

  // Everything published long ago (stale at `now`)...
  fill(t, 0.0, Duration::millis(40), TimePoint::epoch());
  // ...except the direct path, which is fresh but mediocre.
  t.publish(0, 1, metrics(0.2, Duration::millis(40), false, now));

  Router r(0, t, cfg);
  // Historical behavior (regression subject): the stale clean chain
  // 0->2->3->1 looked like zero loss and always won. With staleness
  // threaded through, expired entries compose at unknown_loss and the
  // fresh direct path wins.
  const PathChoice fixed = r.best_loss_path_two_hop(1, now);
  EXPECT_TRUE(fixed.path.is_direct());

  // Republishing the relay chain fresh restores the two-hop win.
  t.publish(0, 2, metrics(0.0, Duration::millis(40), false, now));
  t.publish(2, 3, metrics(0.0, Duration::millis(40), false, now));
  t.publish(3, 1, metrics(0.0, Duration::millis(40), false, now));
  const PathChoice again = r.best_loss_path_two_hop(1, now);
  EXPECT_TRUE(again.path.is_two_hop());
  EXPECT_EQ(again.path.via, 2);
  EXPECT_EQ(again.path.via2, 3);
}

// --- satellite: hold-down must exclude every relay position ----------

TEST(KHopHolddown, HeldDownNodeExcludedAsMiddleHop) {
  LinkStateTable t(4);
  RouterConfig cfg;
  cfg.max_intermediates = 2;
  cfg.holddown_base = Duration::seconds(30);

  // Direct 0->1 is bad; the clean chain is 0->2->3->1; everything else
  // is mediocre.
  fill(t, 0.3, Duration::millis(40));
  t.publish(0, 1, metrics(0.5, Duration::millis(40)));
  t.publish(0, 2, metrics(0.0, Duration::millis(40)));
  t.publish(2, 3, metrics(0.0, Duration::millis(40)));
  t.publish(3, 1, metrics(0.0, Duration::millis(40)));
  t.publish(0, 3, metrics(0.0, Duration::millis(40)));

  Router r(0, t, cfg);
  TimePoint now = TimePoint::epoch();

  // One-hop via 3 wins first (single penalty beats the chain's two).
  const PathChoice first = r.best_loss_path(1, now);
  ASSERT_EQ(first.path.via, 3);
  ASSERT_FALSE(first.path.is_two_hop());

  // 0->3 goes down: the incumbent registers a hold-down on node 3.
  t.publish(0, 3, metrics(0.0, Duration::millis(40), /*down=*/true));
  now += Duration::seconds(1);
  const PathChoice after = r.best_loss_path(1, now);
  EXPECT_TRUE(r.held_down(1, 3, now));
  // Node 3 must now be excluded from EVERY relay position, including
  // the middle of 0->2->3->1 (whose links are all still clean).
  EXPECT_NE(after.path.via, 3);
  EXPECT_NE(after.path.via2, 3);

  // After the hold-down lapses, the clean chain through 3 is selected.
  now += Duration::minutes(2);
  const PathChoice healed = r.best_loss_path(1, now);
  EXPECT_TRUE(healed.path.is_two_hop());
  EXPECT_EQ(healed.path.via, 2);
  EXPECT_EQ(healed.path.via2, 3);
}

// --- satellite: degraded view falls back to direct at k > 1 ----------

TEST(KHopDegradedView, AllStaleEntriesFallBackToDirect) {
  LinkStateTable t(5);
  RouterConfig cfg;
  cfg.max_intermediates = 2;
  cfg.entry_ttl = Duration::seconds(60);

  // A seductive clean relay mesh, all of it stale.
  fill(t, 0.0, Duration::millis(40), TimePoint::epoch());
  const TimePoint now = TimePoint::epoch() + Duration::hours(1);

  Router r(0, t, cfg);
  ASSERT_TRUE(r.view_degraded(now));
  const PathChoice loss = r.best_loss_path(1, now);
  EXPECT_TRUE(loss.path.is_direct());
  const PathChoice lat = r.best_lat_path(1, now);
  EXPECT_TRUE(lat.path.is_direct());
}

// --- satellite: Duration sentinel saturation in multi-hop chains -----

TEST(KHopLatencySentinel, UnmeasuredLinkPoisonsWholeChain) {
  LinkStateTable t(4);
  RouterConfig cfg;

  // Direct is slow but measured; the only cheap alternative is the chain
  // 0->2->3->1, whose middle link is unmeasured (sentinel
  // Duration::max()). Everything else is far worse than direct.
  fill(t, 0.0, Duration::seconds(20));
  t.publish(0, 1, metrics(0.0, Duration::seconds(9)));
  t.publish(0, 2, metrics(0.0, Duration::millis(1)));
  t.publish(2, 3, metrics(0.0, Duration::max()));
  t.publish(3, 1, metrics(0.0, Duration::millis(1)));

  // The sentinel must absorb the whole composition: max() + anything
  // stays max() and never wraps into a small attractive value, so the
  // measured direct path wins outright.
  PathEngine engine(t, cfg);
  const EngineChoice poisoned = engine.best_latency(0, 1, 2, TimePoint::epoch());
  ASSERT_TRUE(poisoned.valid);
  EXPECT_TRUE(poisoned.path.is_direct());
  EXPECT_EQ(poisoned.latency, Duration::seconds(9));

  // Positive control: measure the middle link and the same chain is
  // selected — the sentinel, not the topology, excluded it above.
  t.publish(2, 3, metrics(0.0, Duration::millis(1)));
  const EngineChoice healed = engine.best_latency(0, 1, 2, TimePoint::epoch());
  ASSERT_TRUE(healed.valid);
  EXPECT_EQ(healed.path.count, 2);
  EXPECT_EQ(healed.path.hops[0], 2);
  EXPECT_EQ(healed.path.hops[1], 3);

  // Near-overflow saturation: two huge-but-finite links must saturate
  // toward max() rather than wrapping negative and winning.
  LinkStateTable t2(4);
  fill(t2, 0.0, Duration::nanos(std::numeric_limits<std::int64_t>::max() / 2));
  t2.publish(0, 1, metrics(0.0, Duration::seconds(9)));
  PathEngine engine2(t2, cfg);
  const EngineChoice direct = engine2.best_latency(0, 1, 2, TimePoint::epoch());
  ASSERT_TRUE(direct.valid);
  EXPECT_TRUE(direct.path.is_direct());
  EXPECT_EQ(direct.latency, Duration::seconds(9));
}

// --- config plumbing -------------------------------------------------

TEST(PathDepthConfig, ExperimentRejectsOutOfRangeDepth) {
  ExperimentConfig cfg;
  cfg.path_depth = 0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
  cfg.path_depth = 3;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(PathDepthConfig, RouterClampsDepthToForwardingLimit) {
  LinkStateTable t(4);
  fill(t, 0.3, Duration::millis(40));
  t.publish(0, 1, metrics(0.5, Duration::millis(40)));
  t.publish(0, 2, metrics(0.0, Duration::millis(40)));
  t.publish(2, 3, metrics(0.0, Duration::millis(40)));
  t.publish(3, 1, metrics(0.0, Duration::millis(40)));

  RouterConfig deep;
  deep.max_intermediates = 7;  // clamped to 2: PathSpec carries <= 2 relays
  Router r(0, t, deep);
  const PathChoice c = r.best_loss_path(1);
  EXPECT_TRUE(c.path.is_two_hop());

  RouterConfig shallow;
  shallow.max_intermediates = 0;  // clamped to 1
  Router r1(0, t, shallow);
  const PathChoice c1 = r1.best_loss_path(1);
  EXPECT_FALSE(c1.path.is_two_hop());
}

}  // namespace
}  // namespace ronpath
