#include "event/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace ronpath {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(TimePoint::epoch() + Duration::seconds(3), [&] { order.push_back(3); });
  s.schedule_at(TimePoint::epoch() + Duration::seconds(1), [&] { order.push_back(1); });
  s.schedule_at(TimePoint::epoch() + Duration::seconds(2), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesFireInScheduleOrder) {
  Scheduler s;
  std::vector<int> order;
  const TimePoint t = TimePoint::epoch() + Duration::seconds(1);
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ClockAdvancesToEventTime) {
  Scheduler s;
  TimePoint seen;
  s.schedule_after(Duration::millis(250), [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, TimePoint::epoch() + Duration::millis(250));
}

TEST(Scheduler, RunUntilStopsAndSetsClock) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(Duration::seconds(1), [&] { ++fired; });
  s.schedule_after(Duration::seconds(5), [&] { ++fired; });
  s.run_until(TimePoint::epoch() + Duration::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), TimePoint::epoch() + Duration::seconds(2));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(TimePoint::epoch() + Duration::seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CancelPreventsDispatch) {
  Scheduler s;
  int fired = 0;
  EventHandle h = s.schedule_after(Duration::seconds(1), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  int fired = 0;
  EventHandle h = s.schedule_after(Duration::zero(), [&] { ++fired; });
  s.run_all();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or affect anything
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, DoubleCancelIsNoop) {
  Scheduler s;
  int fired = 0;
  EventHandle h = s.schedule_after(Duration::seconds(1), [&] { ++fired; });
  h.cancel();
  h.cancel();  // second cancel on a dead handle: no crash, no effect
  EXPECT_FALSE(h.pending());
  s.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, HandleOutlivesScheduler) {
  EventHandle h;
  {
    Scheduler s;
    h = s.schedule_after(Duration::seconds(1), [] {});
    EXPECT_TRUE(h.pending());
  }
  // The scheduler (and its slot pool) are gone; the handle must degrade
  // to inert rather than touch freed memory.
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Scheduler, StaleHandleDoesNotCancelSlotReuse) {
  Scheduler s;
  int first = 0;
  int second = 0;
  EventHandle h1 = s.schedule_after(Duration::seconds(1), [&] { ++first; });
  s.run_all();
  EXPECT_EQ(first, 1);
  // The fired event's slot is free; the next schedule reuses it. The
  // stale handle carries the old generation and must not touch it.
  EventHandle h2 = s.schedule_after(Duration::seconds(1), [&] { ++second; });
  EXPECT_FALSE(h1.pending());
  h1.cancel();
  EXPECT_TRUE(h2.pending());
  s.run_all();
  EXPECT_EQ(second, 1);
}

TEST(Scheduler, CancelAmongEqualTimestampsPreservesFifo) {
  Scheduler s;
  std::vector<int> order;
  const TimePoint t = TimePoint::epoch() + Duration::seconds(1);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(s.schedule_at(t, [&order, i] { order.push_back(i); }));
  }
  handles[1].cancel();
  handles[4].cancel();
  handles[7].cancel();
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 5, 6}));
}

TEST(Scheduler, MoveOnlyCallback) {
  Scheduler s;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  s.schedule_after(Duration::seconds(1),
                   [&seen, p = std::move(payload)] { seen = *p + 1; });
  s.run_all();
  EXPECT_EQ(seen, 42);
}

TEST(Scheduler, OversizedCallbackFallsBackToHeap) {
  Scheduler s;
  // Larger than any reasonable inline buffer: forces the heap path of the
  // small-buffer callback without changing observable behaviour.
  struct Big {
    long long pad[16] = {};
  };
  Big big;
  big.pad[15] = 7;
  long long seen = 0;
  s.schedule_after(Duration::seconds(1), [&seen, big] { seen = big.pad[15]; });
  s.run_all();
  EXPECT_EQ(seen, 7);
}

TEST(Scheduler, CallbackCanGrowSchedulerReentrantly) {
  Scheduler s;
  int fired = 0;
  // One callback schedules enough events to force the slot pool and heap
  // to reallocate while that callback is still executing.
  s.schedule_after(Duration::zero(), [&] {
    for (int i = 0; i < 1000; ++i) {
      s.schedule_after(Duration::millis(i + 1), [&fired] { ++fired; });
    }
  });
  s.run_all();
  EXPECT_EQ(fired, 1000);
}

TEST(Scheduler, DefaultHandleInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  std::vector<Duration> at;
  std::function<void()> chain = [&] {
    at.push_back(s.now().since_epoch());
    if (at.size() < 4) s.schedule_after(Duration::seconds(1), chain);
  };
  s.schedule_after(Duration::seconds(1), chain);
  s.run_all();
  ASSERT_EQ(at.size(), 4u);
  EXPECT_EQ(at[3], Duration::seconds(4));
}

TEST(Scheduler, NegativeDelayClampedToNow) {
  Scheduler s;
  s.schedule_after(Duration::seconds(1), [] {});
  s.run_all();
  bool fired = false;
  s.schedule_after(-Duration::seconds(5), [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), TimePoint::epoch() + Duration::seconds(1));
}

TEST(Scheduler, DispatchedCountExcludesCancelled) {
  Scheduler s;
  s.schedule_after(Duration::seconds(1), [] {});
  EventHandle h = s.schedule_after(Duration::seconds(2), [] {});
  h.cancel();
  s.run_all();
  EXPECT_EQ(s.dispatched_events(), 1u);
}

TEST(Scheduler, StepFiresOne) {
  Scheduler s;
  int fired = 0;
  s.schedule_after(Duration::seconds(1), [&] { ++fired; });
  s.schedule_after(Duration::seconds(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTask, FiresAtPeriod) {
  Scheduler s;
  std::vector<Duration> at;
  PeriodicTask task(s, Duration::seconds(10), Duration::seconds(3),
                    [&] { at.push_back(s.now().since_epoch()); });
  s.run_until(TimePoint::epoch() + Duration::seconds(34));
  ASSERT_EQ(at.size(), 4u);
  EXPECT_EQ(at[0], Duration::seconds(3));
  EXPECT_EQ(at[1], Duration::seconds(13));
  EXPECT_EQ(at[3], Duration::seconds(33));
}

TEST(PeriodicTask, StopHalts) {
  Scheduler s;
  int ticks = 0;
  PeriodicTask task(s, Duration::seconds(1), Duration::zero(), [&] {
    if (++ticks == 3) task.stop();
  });
  s.run_until(TimePoint::epoch() + Duration::seconds(100));
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, DestructionCancels) {
  Scheduler s;
  int ticks = 0;
  {
    PeriodicTask task(s, Duration::seconds(1), Duration::zero(), [&] { ++ticks; });
    s.run_until(TimePoint::epoch() + Duration::millis(1500));
    EXPECT_EQ(ticks, 2);  // t=0 and t=1
  }
  s.run_until(TimePoint::epoch() + Duration::seconds(10));
  EXPECT_EQ(ticks, 2);
}

}  // namespace
}  // namespace ronpath
