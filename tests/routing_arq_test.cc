#include "routing/arq.h"

#include <gtest/gtest.h>

#include "core/testbed.h"

namespace ronpath {
namespace {

struct Fixture {
  Topology topo;
  Network net;
  Scheduler sched;
  OverlayNetwork overlay;

  explicit Fixture(std::uint64_t seed = 42, NetConfig cfg = NetConfig::profile_2003())
      : topo(testbed_2002()),
        net(topo, std::move(cfg), Duration::hours(4), Rng(seed)),
        overlay(net, sched, OverlayConfig{}, Rng(seed + 1)) {
    overlay.start();
    sched.run_until(TimePoint::epoch() + Duration::minutes(2));
  }
};

TEST(ArqChannel, DeliversOnQuietNetwork) {
  Fixture f;
  ArqChannel arq(f.overlay, f.sched, 0, 1, ArqConfig{}, Rng(1));
  for (int i = 0; i < 500; ++i) {
    f.sched.run_until(f.sched.now() + Duration::millis(20));
    arq.send();
  }
  f.sched.run_until(f.sched.now() + Duration::minutes(2));
  const auto& st = arq.stats();
  EXPECT_EQ(st.packets, 500);
  EXPECT_GT(st.delivery_rate(), 0.995);
  EXPECT_GE(st.acked, st.packets - 5);
  EXPECT_TRUE(arq.idle());
  // Nearly one transmission per packet on a quiet path.
  EXPECT_LT(st.mean_transmissions(), 1.05);
}

TEST(ArqChannel, RtoConvergesToPathRtt) {
  Fixture f;
  ArqChannel arq(f.overlay, f.sched, 0, 1, ArqConfig{}, Rng(2));
  for (int i = 0; i < 200; ++i) {
    f.sched.run_until(f.sched.now() + Duration::millis(20));
    arq.send();
  }
  f.sched.run_until(f.sched.now() + Duration::minutes(1));
  // RTO should have adapted: between min_rto and well under initial 1 s
  // for a low-jitter path, and at least min_rto.
  EXPECT_GE(arq.current_rto(), ArqConfig{}.min_rto);
  EXPECT_LT(arq.current_rto(), Duration::seconds(1));
}

TEST(ArqChannel, RecoversLossesViaRetransmission) {
  NetConfig lossy = NetConfig::profile_2003();
  lossy.loss_scale *= 50.0;
  Fixture f(7, lossy);
  ArqChannel arq(f.overlay, f.sched, 2, 9, ArqConfig{}, Rng(3));
  for (int i = 0; i < 3000; ++i) {
    f.sched.run_until(f.sched.now() + Duration::millis(20));
    arq.send();
  }
  f.sched.run_until(f.sched.now() + Duration::minutes(10));
  const auto& st = arq.stats();
  // Real losses happened (retransmissions exceeded packets)...
  EXPECT_GT(st.transmissions, st.packets);
  // ...and ARQ recovered nearly everything.
  EXPECT_GT(st.delivery_rate(), 0.99);
}

TEST(ArqChannel, LatencyTailStretchesUnderLoss) {
  NetConfig lossy = NetConfig::profile_2003();
  lossy.loss_scale *= 50.0;
  Fixture f(7, lossy);
  ArqChannel arq(f.overlay, f.sched, 2, 9, ArqConfig{}, Rng(4));
  for (int i = 0; i < 3000; ++i) {
    f.sched.run_until(f.sched.now() + Duration::millis(20));
    arq.send();
  }
  f.sched.run_until(f.sched.now() + Duration::minutes(10));
  const auto& st = arq.stats();
  // Some delivery waited for at least one RTO (>200 ms).
  EXPECT_GT(st.delivery_latency_ms.max(), 200.0);
  // While the mean stays near the path RTT-ish scale.
  EXPECT_LT(st.delivery_latency_ms.mean(), 100.0);
}

TEST(ArqChannel, GivesUpAfterMaxRetransmits) {
  // A destination behind a near-total access brownout: most packets and
  // retransmissions die (in-burst drop is the access class's 0.74, so a
  // 3-try packet still fails ~40% of the time).
  ArqConfig arq_cfg;
  arq_cfg.max_retransmits = 2;
  arq_cfg.initial_rto = Duration::millis(300);
  // Use an impossible path by pointing at a node that is "down":
  // simulate by sending to a node while its host-failure process is
  // forced - simpler: crank loss to ~100% via an incident on the dst.
  Incident kill;
  kill.site_name = "MIT";
  kill.scope = Incident::Scope::kAccess;
  kill.start = TimePoint::epoch();
  kill.duration = Duration::hours(4);
  kill.loss_rate = 1.0;
  NetConfig dead = NetConfig::profile_2003();
  dead.incidents.push_back(kill);
  Fixture g(13, dead);
  const NodeId mit = *g.topo.find("MIT");
  NodeId other = mit == 0 ? 1 : 0;
  ArqChannel arq(g.overlay, g.sched, other, mit, arq_cfg, Rng(5));
  for (int i = 0; i < 50; ++i) {
    g.sched.run_until(g.sched.now() + Duration::millis(50));
    arq.send();
  }
  g.sched.run_until(g.sched.now() + Duration::minutes(5));
  const auto& st = arq.stats();
  EXPECT_GT(st.given_up, 0);
  EXPECT_TRUE(arq.idle());
  // Every give-up used exactly 1 + max_retransmits transmissions.
  EXPECT_LE(st.transmissions, st.packets * (1 + arq_cfg.max_retransmits));
}

TEST(ArqChannel, AlternateRetransmitUsesOverlayPaths) {
  NetConfig lossy = NetConfig::profile_2003();
  lossy.loss_scale *= 50.0;
  Fixture f(17, lossy);
  ArqConfig cfg;
  cfg.retransmit_on_alternate = true;
  ArqChannel arq(f.overlay, f.sched, 3, 12, cfg, Rng(6));
  for (int i = 0; i < 2000; ++i) {
    f.sched.run_until(f.sched.now() + Duration::millis(20));
    arq.send();
  }
  f.sched.run_until(f.sched.now() + Duration::minutes(10));
  EXPECT_GT(arq.stats().delivery_rate(), 0.99);
}

}  // namespace
}  // namespace ronpath
