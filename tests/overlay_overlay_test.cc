// Integration tests: the overlay probing machinery running on the event
// scheduler over the simulated underlay.

#include "overlay/overlay.h"

#include <gtest/gtest.h>

#include <set>

#include "core/testbed.h"

namespace ronpath {
namespace {

struct Fixture {
  Topology topo;
  Network net;
  Scheduler sched;
  OverlayNetwork overlay;

  explicit Fixture(OverlayConfig cfg = {}, std::uint64_t seed = 42,
                   Duration horizon = Duration::hours(3))
      : topo(testbed_2002()),
        net(topo, NetConfig::profile_2003(), horizon, Rng(seed)),
        overlay(net, sched, cfg, Rng(seed + 1)) {}
};

TEST(OverlayNetwork, ProbesAllLinks) {
  Fixture f;
  f.overlay.start();
  f.sched.run_until(TimePoint::epoch() + Duration::seconds(40));
  // 17 nodes, 272 links, one probe each per 15 s interval (plus startup
  // stagger): after 40 s every link has at least one probe.
  const auto n = static_cast<NodeId>(f.overlay.size());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      EXPECT_GE(f.overlay.estimator(a, b).samples(), 1u) << a << "->" << b;
    }
  }
  EXPECT_GE(f.overlay.probes_sent(), 17 * 16 * 2);
}

TEST(OverlayNetwork, EstimatorsSeeLowLossOnQuietNetwork) {
  Fixture f;
  f.overlay.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(30));
  // Aggregate estimated loss across links should be low (calibrated
  // underlay is ~0.4-1% per round trip).
  double total = 0.0;
  int links = 0;
  const auto n = static_cast<NodeId>(f.overlay.size());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      total += f.overlay.estimator(a, b).loss();
      ++links;
    }
  }
  EXPECT_LT(total / links, 0.05);
}

TEST(OverlayNetwork, LatencyEstimatesTrackBaseLatency) {
  Fixture f;
  f.overlay.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(10));
  const auto n = static_cast<NodeId>(f.overlay.size());
  int checked = 0;
  for (NodeId a = 0; a < n && checked < 40; ++a) {
    for (NodeId b = 0; b < n && checked < 40; ++b) {
      if (a == b) continue;
      const auto& est = f.overlay.estimator(a, b);
      if (est.latency() == Duration::max()) continue;
      const Duration base = f.net.base_latency(PathSpec{a, b, kDirectVia});
      // One-way estimate = RTT/2; symmetric-ish topology keeps it within
      // a factor of the base latency plus queueing.
      EXPECT_GT(est.latency(), base / 3);
      EXPECT_LT(est.latency(), 4 * base + Duration::millis(120));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(OverlayNetwork, RouteTagsProduceValidPaths) {
  Fixture f;
  f.overlay.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(5));
  for (RouteTag tag : {RouteTag::kDirect, RouteTag::kRand, RouteTag::kLat, RouteTag::kLoss}) {
    for (int i = 0; i < 50; ++i) {
      const PathSpec p = f.overlay.route(0, 5, tag);
      EXPECT_EQ(p.src, 0);
      EXPECT_EQ(p.dst, 5);
      if (!p.is_direct()) {
        EXPECT_LT(p.via, f.overlay.size());
        EXPECT_NE(p.via, p.src);
        EXPECT_NE(p.via, p.dst);
      }
    }
  }
}

TEST(OverlayNetwork, DirectTagAlwaysDirect) {
  Fixture f;
  f.overlay.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(1));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(f.overlay.route(2, 9, RouteTag::kDirect).is_direct());
  }
}

TEST(OverlayNetwork, RandTagVariesIntermediate) {
  Fixture f;
  f.overlay.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(1));
  std::set<NodeId> vias;
  for (int i = 0; i < 200; ++i) {
    const PathSpec p = f.overlay.route(0, 1, RouteTag::kRand);
    if (!p.is_direct()) vias.insert(p.via);
  }
  // With 15 candidate intermediates, 200 draws should hit most of them.
  EXPECT_GE(vias.size(), 10u);
}

TEST(OverlayNetwork, SendOverDeadViaFails) {
  OverlayConfig cfg;
  cfg.host_failures_per_month = 0.0;  // control liveness manually: none
  Fixture f(cfg);
  f.overlay.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(1));
  // With no host failures every send over a live via reflects only the
  // network fate.
  const auto r = f.overlay.send(PathSpec{0, 1, 2}, f.sched.now());
  EXPECT_TRUE(r.via_up);
  EXPECT_TRUE(r.src_up);
}

TEST(OverlayNetwork, HostFailuresPauseProbing) {
  OverlayConfig cfg;
  // Extremely frequent failures so the short test observes them.
  cfg.host_failures_per_month = 4000.0;
  cfg.host_failure_mean = Duration::minutes(20);
  Fixture f(cfg, /*seed=*/7);
  f.overlay.start();
  f.sched.run_until(TimePoint::epoch() + Duration::hours(1));
  // At least one node must have been down at some point in the hour.
  bool saw_down = false;
  for (NodeId node = 0; node < f.overlay.size() && !saw_down; ++node) {
    for (int m = 0; m < 60 && !saw_down; ++m) {
      saw_down = !f.overlay.node_up(node, TimePoint::epoch() + Duration::minutes(m));
    }
  }
  EXPECT_TRUE(saw_down);
}

TEST(OverlayNetwork, ProbeCountMatchesScheduleRate) {
  Fixture f;
  f.overlay.start();
  const Duration runtime = Duration::minutes(10);
  f.sched.run_until(TimePoint::epoch() + runtime);
  // 272 links probed every 15 s for 10 min ~= 10880 probes, modulo
  // startup stagger and host failures.
  const auto expected = 17 * 16 * (runtime / f.overlay.config().probe_interval);
  EXPECT_NEAR(static_cast<double>(f.overlay.probes_sent()), static_cast<double>(expected),
              0.15 * static_cast<double>(expected));
}

}  // namespace
}  // namespace ronpath
