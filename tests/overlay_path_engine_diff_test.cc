// Differential test layer for the path engine.
//
// Two independent references pin the engine on randomized link-state
// tables:
//
//   * a NAIVE reference that implements the selection spec with none of
//     the engine's machinery: labels by a plain per-(round, node) scan,
//     no marked-set pruning, no lazy final round, recomputed from
//     scratch per query. Full results (path, value, round) must match
//     bit for bit — this is what proves the pruning and laziness are
//     behavior-preserving.
//   * a BRUTE-FORCE enumerator over all simple relay tuples, which
//     never builds labels at all. Its best penalized value and hop
//     count must match — this is what proves label chains that revisit
//     nodes never win a query.
//
// Additional legacy-equivalence checks pin the engine to the historical
// router scans it replaced: the one-hop evaluate loop (paths bitwise)
// and the interleaved two-hop scan (values bitwise).
//
// Case count is overridable via RONPATH_DIFF_CASES (the Release CI job
// cranks it up).

#include "overlay/path_engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "overlay/link_state.h"
#include "overlay/router.h"
#include "util/rng.h"

namespace ronpath {
namespace {

int diff_cases(int dflt) {
  if (const char* env = std::getenv("RONPATH_DIFF_CASES")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return dflt;
}

// ---------------------------------------------------------------------
// Randomized environments

LinkMetrics random_metrics(Rng& rng, TimePoint now) {
  LinkMetrics m;
  switch (rng.next_below(5)) {
    case 0: m.loss = 0.0; break;
    case 1: m.loss = 0.5; break;
    case 2: m.loss = 1.0; break;
    default: m.loss = rng.next_double(); break;
  }
  switch (rng.next_below(4)) {
    case 0: m.latency = Duration::max(); break;  // never measured
    case 1: m.latency = Duration::millis(static_cast<std::int64_t>(1 + rng.next_below(100))); break;
    default:
      m.latency = Duration::micros(rng.uniform_int(50, 500'000));
      break;
  }
  m.has_latency = m.latency != Duration::max();
  m.down = rng.bernoulli(0.15);
  if (rng.bernoulli(0.12)) {
    m.samples = 0;  // published but empty window: expires under a TTL
  } else {
    m.samples = 100;
    m.published = now - Duration::seconds(static_cast<std::int64_t>(rng.next_below(200)));
  }
  return m;
}

void random_table(Rng& rng, LinkStateTable& t, TimePoint now) {
  const auto n = static_cast<NodeId>(t.size());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      if (rng.bernoulli(0.85)) t.publish(a, b, random_metrics(rng, now));
      // else: never published at all
    }
  }
}

RouterConfig random_cfg(Rng& rng, bool allow_zero_penalty) {
  RouterConfig cfg;
  switch (rng.next_below(3)) {
    case 0: cfg.indirect_loss_penalty = allow_zero_penalty ? 0.0 : 0.03; break;
    case 1: cfg.indirect_loss_penalty = 0.03; break;
    default: cfg.indirect_loss_penalty = 0.1; break;
  }
  switch (rng.next_below(3)) {
    case 0: cfg.indirect_lat_penalty = allow_zero_penalty ? Duration::zero() : Duration::millis(1); break;
    case 1: cfg.indirect_lat_penalty = Duration::millis(1); break;
    default: cfg.indirect_lat_penalty = Duration::millis(5); break;
  }
  switch (rng.next_below(3)) {
    case 0: cfg.forward_delay = Duration::zero(); break;
    case 1: cfg.forward_delay = Duration::micros(300); break;
    default: cfg.forward_delay = Duration::millis(1); break;
  }
  cfg.entry_ttl = rng.bernoulli(0.5) ? Duration::seconds(90) : Duration::zero();
  cfg.unknown_loss = rng.bernoulli(0.5) ? 0.35 : 0.9;
  return cfg;
}

// Random hold-down style exclusion mask; null most of the time.
const std::vector<bool>* random_mask(Rng& rng, std::size_t n, std::vector<bool>& storage) {
  if (!rng.bernoulli(0.3)) return nullptr;
  storage.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) storage[v] = rng.bernoulli(0.25);
  return &storage;
}

std::vector<bool> liveness(const LinkStateTable& t) {
  std::vector<bool> live(t.size(), false);
  for (NodeId v = 0; v < t.size(); ++v) live[v] = t.node_seems_up(v);
  return live;
}

// ---------------------------------------------------------------------
// Reference A: naive labels, no pruning, no laziness.

struct NaiveChoice {
  std::vector<NodeId> relays;
  double loss = 0.0;
  Duration latency = Duration::zero();
  int hops = 0;
  bool valid = true;
};

struct NaiveLabels {
  std::size_t n = 0;
  std::vector<double> sval;  // survival
  std::vector<NodeId> spar;
  std::vector<Duration> lval;
  std::vector<NodeId> lpar;
};

NaiveLabels naive_labels(const LinkStateTable& t, const RouterConfig& cfg, NodeId src, NodeId ban,
                         int k, TimePoint now, const std::vector<bool>* excluded) {
  NaiveLabels L;
  const std::size_t n = t.size();
  L.n = n;
  const auto live = liveness(t);
  L.sval.assign(static_cast<std::size_t>(k + 1) * n, -1.0);
  L.spar.assign(static_cast<std::size_t>(k + 1) * n, kInvalidNode);
  L.lval.assign(static_cast<std::size_t>(k + 1) * n, Duration::min());
  L.lpar.assign(static_cast<std::size_t>(k + 1) * n, kInvalidNode);
  for (NodeId w = 0; w < n; ++w) {
    if (w == src) continue;
    L.sval[w] = 1.0 - link_loss(t.get(src, w), cfg, now);
    L.spar[w] = src;
    L.lval[w] = link_latency(t.get(src, w), cfg, now);
    L.lpar[w] = src;
  }
  for (int r = 1; r <= k; ++r) {
    for (NodeId w = 0; w < n; ++w) {
      if (w == src) continue;
      const std::size_t i = static_cast<std::size_t>(r) * n + w;
      for (NodeId u = 0; u < n; ++u) {
        if (u == w || u == src || u == ban || !live[u]) continue;
        if (excluded != nullptr && (*excluded)[u]) continue;
        const std::size_t p = static_cast<std::size_t>(r - 1) * n + u;
        if (L.spar[p] != kInvalidNode) {
          const double c = L.sval[p] * (1.0 - link_loss(t.get(u, w), cfg, now));
          if (L.spar[i] == kInvalidNode || c > L.sval[i]) {
            L.sval[i] = c;
            L.spar[i] = u;
          }
        }
        if (L.lpar[p] != kInvalidNode) {
          const Duration c = Duration::saturating_add(L.lval[p], link_latency(t.get(u, w), cfg, now));
          if (L.lpar[i] == kInvalidNode || c < L.lval[i]) {
            L.lval[i] = c;
            L.lpar[i] = u;
          }
        }
      }
    }
  }
  return L;
}

std::vector<NodeId> naive_chain(const std::vector<NodeId>& par, std::size_t n, int r, NodeId dst) {
  std::vector<NodeId> relays(static_cast<std::size_t>(r));
  NodeId w = dst;
  for (int rr = r; rr >= 1; --rr) {
    const NodeId u = par[static_cast<std::size_t>(rr) * n + w];
    relays[static_cast<std::size_t>(rr) - 1] = u;
    w = u;
  }
  return relays;
}

NaiveChoice naive_best_loss(const NaiveLabels& L, const LinkStateTable& t, const RouterConfig& cfg,
                            NodeId src, NodeId dst, int k, TimePoint now, bool include_direct) {
  NaiveChoice best;
  best.valid = false;
  if (include_direct) {
    best.valid = true;
    best.loss = link_loss(t.get(src, dst), cfg, now);
    best.hops = 0;
  }
  for (int r = 1; r <= k; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * L.n + dst;
    if (L.spar[i] == kInvalidNode) continue;
    const double cand = (1.0 - L.sval[i]) + static_cast<double>(r) * cfg.indirect_loss_penalty;
    if (!best.valid || cand < best.loss) {
      best.valid = true;
      best.loss = cand;
      best.hops = r;
      best.relays = naive_chain(L.spar, L.n, r, dst);
    }
  }
  return best;
}

NaiveChoice naive_best_latency(const NaiveLabels& L, const LinkStateTable& t,
                               const RouterConfig& cfg, NodeId src, NodeId dst, int k,
                               TimePoint now, bool include_direct) {
  NaiveChoice best;
  best.valid = false;
  if (include_direct) {
    best.valid = true;
    best.latency = link_latency(t.get(src, dst), cfg, now);
    best.hops = 0;
  }
  for (int r = 1; r <= k; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * L.n + dst;
    if (L.lpar[i] == kInvalidNode) continue;
    Duration fwd = cfg.forward_delay;
    for (int j = 1; j < r; ++j) fwd = fwd + cfg.forward_delay;
    Duration cand = Duration::saturating_add(L.lval[i], fwd);
    if (cand != Duration::max()) cand += cfg.indirect_lat_penalty * r;
    if (!best.valid || cand < best.latency) {
      best.valid = true;
      best.latency = cand;
      best.hops = r;
      best.relays = naive_chain(L.lpar, L.n, r, dst);
    }
  }
  return best;
}

// ---------------------------------------------------------------------
// Reference B: brute-force enumeration of simple relay tuples.

struct EnumBest {
  double loss = 0.0;
  Duration latency = Duration::zero();
  int hops = 0;
  bool valid = false;
};

template <class Fn>
void for_each_tuple(const std::vector<NodeId>& pool, int r, std::vector<NodeId>& tuple, Fn&& fn) {
  if (static_cast<int>(tuple.size()) == r) {
    fn(tuple);
    return;
  }
  for (NodeId v : pool) {
    bool used = false;
    for (NodeId u : tuple) used = used || u == v;
    if (used) continue;
    tuple.push_back(v);
    for_each_tuple(pool, r, tuple, fn);
    tuple.pop_back();
  }
}

std::vector<NodeId> relay_pool(const LinkStateTable& t, NodeId src, NodeId dst,
                               const std::vector<bool>* excluded) {
  std::vector<NodeId> pool;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (v == src || v == dst || !t.node_seems_up(v)) continue;
    if (excluded != nullptr && (*excluded)[v]) continue;
    pool.push_back(v);
  }
  return pool;
}

EnumBest enum_best_loss(const LinkStateTable& t, const RouterConfig& cfg, NodeId src, NodeId dst,
                        int k, TimePoint now, const std::vector<bool>* excluded,
                        bool include_direct) {
  EnumBest best;
  if (include_direct) {
    best.valid = true;
    best.loss = link_loss(t.get(src, dst), cfg, now);
    best.hops = 0;
  }
  const auto pool = relay_pool(t, src, dst, excluded);
  std::vector<NodeId> tuple;
  for (int r = 1; r <= k; ++r) {
    for_each_tuple(pool, r, tuple, [&](const std::vector<NodeId>& relays) {
      double s = 1.0 - link_loss(t.get(src, relays[0]), cfg, now);
      for (std::size_t j = 1; j < relays.size(); ++j) {
        s = s * (1.0 - link_loss(t.get(relays[j - 1], relays[j]), cfg, now));
      }
      s = s * (1.0 - link_loss(t.get(relays.back(), dst), cfg, now));
      const double cand = (1.0 - s) + static_cast<double>(r) * cfg.indirect_loss_penalty;
      if (!best.valid || cand < best.loss) {
        best.valid = true;
        best.loss = cand;
        best.hops = r;
      }
    });
  }
  return best;
}

EnumBest enum_best_latency(const LinkStateTable& t, const RouterConfig& cfg, NodeId src,
                           NodeId dst, int k, TimePoint now, const std::vector<bool>* excluded,
                           bool include_direct) {
  EnumBest best;
  if (include_direct) {
    best.valid = true;
    best.latency = link_latency(t.get(src, dst), cfg, now);
    best.hops = 0;
  }
  const auto pool = relay_pool(t, src, dst, excluded);
  std::vector<NodeId> tuple;
  for (int r = 1; r <= k; ++r) {
    for_each_tuple(pool, r, tuple, [&](const std::vector<NodeId>& relays) {
      Duration d = link_latency(t.get(src, relays[0]), cfg, now);
      for (std::size_t j = 1; j < relays.size(); ++j) {
        d = Duration::saturating_add(d, link_latency(t.get(relays[j - 1], relays[j]), cfg, now));
      }
      d = Duration::saturating_add(d, link_latency(t.get(relays.back(), dst), cfg, now));
      Duration fwd = cfg.forward_delay;
      for (int j = 1; j < r; ++j) fwd = fwd + cfg.forward_delay;
      Duration cand = Duration::saturating_add(d, fwd);
      if (cand != Duration::max()) cand += cfg.indirect_lat_penalty * r;
      if (!best.valid || cand < best.latency) {
        best.valid = true;
        best.latency = cand;
        best.hops = r;
      }
    });
  }
  return best;
}

// ---------------------------------------------------------------------

std::vector<NodeId> engine_relays(const EngineChoice& c) {
  std::vector<NodeId> out;
  for (int j = 0; j < c.path.count; ++j) out.push_back(c.path.hops[static_cast<std::size_t>(j)]);
  return out;
}

// ---------------------------------------------------------------------
// Per-query mode vs both references, both objectives.

TEST(PathEngineDiff, MatchesNaiveAndEnumerationOnRandomTables) {
  const int cases = diff_cases(5500);
  Rng rng(0x9e3779b97f4a7c15ULL);
  for (int i = 0; i < cases; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    const auto n = static_cast<NodeId>(3 + rng.next_below(7));
    const TimePoint now =
        TimePoint::epoch() + Duration::seconds(static_cast<std::int64_t>(100 + rng.next_below(400)));
    const RouterConfig cfg = random_cfg(rng, /*allow_zero_penalty=*/true);
    LinkStateTable table(n);
    random_table(rng, table, now);
    const auto src = static_cast<NodeId>(rng.next_below(n));
    auto dst = static_cast<NodeId>(rng.next_below(n));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
    const int k = static_cast<int>(1 + rng.next_below(3));
    std::vector<bool> mask_storage;
    const std::vector<bool>* mask = random_mask(rng, n, mask_storage);
    const bool include_direct = !rng.bernoulli(0.25);

    PathEngine engine(table, cfg);
    const NaiveLabels L = naive_labels(table, cfg, src, /*ban=*/dst, k, now, mask);

    {
      const EngineChoice e = engine.best_loss(src, dst, k, now, mask, include_direct);
      const NaiveChoice nv = naive_best_loss(L, table, cfg, src, dst, k, now, include_direct);
      ASSERT_EQ(e.valid, nv.valid);
      if (e.valid) {
        ASSERT_EQ(e.loss, nv.loss);  // bitwise: same expression DAG
        ASSERT_EQ(e.hop_count, nv.hops);
        ASSERT_EQ(engine_relays(e), nv.relays);
      }
      const EnumBest en = enum_best_loss(table, cfg, src, dst, k, now, mask, include_direct);
      ASSERT_EQ(e.valid, en.valid);
      if (e.valid) {
        ASSERT_EQ(e.loss, en.loss);
        ASSERT_EQ(e.hop_count, en.hops);
      }
    }
    {
      const EngineChoice e = engine.best_latency(src, dst, k, now, mask, include_direct);
      const NaiveChoice nv = naive_best_latency(L, table, cfg, src, dst, k, now, include_direct);
      ASSERT_EQ(e.valid, nv.valid);
      if (e.valid) {
        ASSERT_EQ(e.latency, nv.latency);
        ASSERT_EQ(e.hop_count, nv.hops);
        ASSERT_EQ(engine_relays(e), nv.relays);
      }
      const EnumBest en = enum_best_latency(table, cfg, src, dst, k, now, mask, include_direct);
      ASSERT_EQ(e.valid, en.valid);
      if (e.valid) {
        ASSERT_EQ(e.latency, en.latency);
        ASSERT_EQ(e.hop_count, en.hops);
      }
    }
  }
}

// Shared incremental-mode tables must answer queries exactly like the
// naive labels built with the same anchor. Nonzero penalties here:
// shared tables do not ban the destination as a relay, and only the
// per-relay penalty guarantees chains revisiting the destination are
// dominated (see the engine header).
TEST(PathEngineDiff, SharedTablesMatchNaiveOnRandomTables) {
  const int cases = diff_cases(5500) / 4;
  Rng rng(0xda942042e4dd58b5ULL);
  for (int i = 0; i < cases; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    const auto n = static_cast<NodeId>(3 + rng.next_below(7));
    const TimePoint now =
        TimePoint::epoch() + Duration::seconds(static_cast<std::int64_t>(100 + rng.next_below(400)));
    const RouterConfig cfg = random_cfg(rng, /*allow_zero_penalty=*/false);
    LinkStateTable table(n);
    random_table(rng, table, now);
    const auto src = static_cast<NodeId>(rng.next_below(n));
    const int k = static_cast<int>(1 + rng.next_below(3));

    PathEngine engine(table, cfg);
    engine.relax_all(src, k, now);
    const NaiveLabels L = naive_labels(table, cfg, src, /*ban=*/kInvalidNode, k, now, nullptr);
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      SCOPED_TRACE("dst " + std::to_string(dst));
      const EngineChoice el = engine.table_best_loss(dst);
      const NaiveChoice nl = naive_best_loss(L, table, cfg, src, dst, k, now, true);
      ASSERT_EQ(el.loss, nl.loss);
      ASSERT_EQ(el.hop_count, nl.hops);
      ASSERT_EQ(engine_relays(el), nl.relays);
      const EngineChoice et = engine.table_best_latency(dst);
      const NaiveChoice nt = naive_best_latency(L, table, cfg, src, dst, k, now, true);
      ASSERT_EQ(et.latency, nt.latency);
      ASSERT_EQ(et.hop_count, nt.hops);
      ASSERT_EQ(engine_relays(et), nt.relays);
    }
  }
}

// ---------------------------------------------------------------------
// Legacy-equivalence: the engine at k == 1 is the historical router
// scan, path and value bitwise.

TEST(PathEngineDiff, OneHopMatchesLegacyRouterScan) {
  const int cases = diff_cases(5500) / 2;
  Rng rng(0xd1b54a32d192ed03ULL);
  for (int i = 0; i < cases; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    const auto n = static_cast<NodeId>(3 + rng.next_below(7));
    const TimePoint now =
        TimePoint::epoch() + Duration::seconds(static_cast<std::int64_t>(100 + rng.next_below(400)));
    const RouterConfig cfg = random_cfg(rng, /*allow_zero_penalty=*/true);
    LinkStateTable table(n);
    random_table(rng, table, now);
    const auto src = static_cast<NodeId>(rng.next_below(n));
    auto dst = static_cast<NodeId>(rng.next_below(n));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
    std::vector<bool> mask_storage;
    const std::vector<bool>* mask = random_mask(rng, n, mask_storage);

    PathEngine engine(table, cfg);

    // Historical evaluate_loss candidate loop, verbatim.
    {
      const PathSpec direct{src, dst, kDirectVia};
      PathSpec best = direct;
      double best_loss = path_loss_estimate(table, direct, cfg, now);
      for (NodeId v = 0; v < n; ++v) {
        if (v == src || v == dst || !table.node_seems_up(v)) continue;
        if (mask != nullptr && (*mask)[v]) continue;
        const PathSpec p{src, dst, v};
        const double l = path_loss_estimate(table, p, cfg, now) + cfg.indirect_loss_penalty;
        if (l < best_loss) {
          best = p;
          best_loss = l;
        }
      }
      const EngineChoice e = engine.best_loss(src, dst, 1, now, mask);
      ASSERT_TRUE(e.valid);
      ASSERT_EQ(e.path.to_spec(src, dst), best);
      ASSERT_EQ(e.loss, best_loss);
    }
    // Historical evaluate_lat candidate loop, verbatim.
    {
      const PathSpec direct{src, dst, kDirectVia};
      PathSpec best = direct;
      Duration best_lat = path_latency_estimate(table, direct, cfg, now);
      for (NodeId v = 0; v < n; ++v) {
        if (v == src || v == dst || !table.node_seems_up(v)) continue;
        if (mask != nullptr && (*mask)[v]) continue;
        const PathSpec p{src, dst, v};
        Duration d = path_latency_estimate(table, p, cfg, now);
        if (d != Duration::max()) d += cfg.indirect_lat_penalty;
        if (d < best_lat) {
          best = p;
          best_lat = d;
        }
      }
      const EngineChoice e = engine.best_latency(src, dst, 1, now, mask);
      ASSERT_TRUE(e.valid);
      ASSERT_EQ(e.path.to_spec(src, dst), best);
      ASSERT_EQ(e.latency, best_lat);
    }
  }
}

// The historical two-hop bolt-on scanned (v1, then v1's two-hop
// extensions) interleaved; the engine scans by round. Both minimize
// over the identical candidate set, so the selected penalized value is
// identical even where a cross-round tie makes the chosen path differ.
TEST(PathEngineDiff, TwoHopValueMatchesLegacyInterleavedScan) {
  const int cases = diff_cases(5500) / 2;
  Rng rng(0x8bb84b93962eacc9ULL);
  for (int i = 0; i < cases; ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    const auto n = static_cast<NodeId>(3 + rng.next_below(7));
    const TimePoint now = TimePoint::epoch();
    RouterConfig cfg = random_cfg(rng, /*allow_zero_penalty=*/true);
    cfg.entry_ttl = Duration::zero();  // the legacy scan trusted entries forever
    LinkStateTable table(n);
    random_table(rng, table, now);
    const auto src = static_cast<NodeId>(rng.next_below(n));
    auto dst = static_cast<NodeId>(rng.next_below(n));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);

    // Historical best_loss_path_two_hop loop, verbatim.
    const PathSpec direct{src, dst, kDirectVia};
    double best_loss = path_loss_estimate(table, direct);
    std::vector<NodeId> vias;
    for (NodeId v = 0; v < n; ++v) {
      if (v != src && v != dst && table.node_seems_up(v)) vias.push_back(v);
    }
    for (NodeId v1 : vias) {
      const double l1 =
          path_loss_estimate(table, PathSpec{src, dst, v1}) + cfg.indirect_loss_penalty;
      if (l1 < best_loss) best_loss = l1;
      for (NodeId v2 : vias) {
        if (v2 == v1) continue;
        const double l2 = path_loss_estimate(table, PathSpec{src, dst, v1, v2}) +
                          2.0 * cfg.indirect_loss_penalty;
        if (l2 < best_loss) best_loss = l2;
      }
    }

    PathEngine engine(table, cfg);
    const EngineChoice e = engine.best_loss(src, dst, 2, now);
    ASSERT_TRUE(e.valid);
    ASSERT_EQ(e.loss, best_loss);
    // The engine's chosen path re-evaluates to its claimed value.
    const PathSpec spec = e.path.to_spec(src, dst);
    const double repriced =
        path_loss_estimate(table, spec) +
        static_cast<double>(e.hop_count) * cfg.indirect_loss_penalty;
    ASSERT_EQ(repriced, e.loss);
  }
}

}  // namespace
}  // namespace ronpath
