// WorkloadWorld determinism, policy behaviour and the acceptance pins.
//
// 1. Determinism: a finished world is a pure function of (scenario,
//    policy, config, seed) — byte-identical reports across repeated
//    runs, across every positive shard count, and a matrix report
//    independent of --jobs.
// 2. Policy accounting: probe-only never sends a second copy, static-2x
//    always does, adaptive sits between.
// 3. Closed-loop sanity: the link-flap scenario cannot make the
//    controller amplify the flap into redundancy churn (transition
//    bound), and the adaptive policy strictly beats BOTH static
//    policies on at least one (scenario, class) SLO-attainment column —
//    the PR's headline claim, pinned here so it cannot regress.
// 4. Golden pin: one cell's per-class SLO columns are pinned exactly so
//    any behavioural drift in the workload stack is caught as a diff,
//    not as silence.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/scenarios.h"
#include "workload/matrix.h"
#include "workload/world.h"

namespace ronpath {
namespace {

const Scenario& scenario_named(std::string_view name) {
  const Scenario* s = find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

TEST(WorkloadWorld, ReportByteIdenticalAcrossRuns) {
  const WorkloadConfig cfg;
  const Scenario& scenario = scenario_named("provider-blackout");

  WorkloadWorld a(scenario, WorkloadPolicy::kAdaptive, cfg, 42);
  a.run_to_end();
  WorkloadWorld b(scenario, WorkloadPolicy::kAdaptive, cfg, 42);
  b.run_to_end();

  ASSERT_TRUE(a.finished());
  EXPECT_GT(a.total_packets(), 1000u);
  EXPECT_EQ(a.report(), b.report());

  std::vector<std::string> violations;
  a.check_invariants(violations);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(WorkloadWorld, ReportByteIdenticalAcrossShardCounts) {
  const Scenario& scenario = scenario_named("link-flap");
  std::string reference;
  for (const int shards : {1, 2, 4}) {
    WorkloadConfig cfg;
    cfg.cell.shards = shards;
    WorkloadWorld world(scenario, WorkloadPolicy::kAdaptive, cfg, 42);
    world.run_to_end();
    if (reference.empty()) {
      reference = world.report();
    } else {
      EXPECT_EQ(world.report(), reference) << "shards=" << shards;
    }
  }
}

TEST(WorkloadWorld, MatrixReportIndependentOfJobs) {
  const WorkloadConfig cfg;
  const auto scenarios = canonical_scenarios().subspan(0, 3);
  const WorkloadMatrixResult serial = run_workload_matrix(cfg, scenarios, 42, 1);
  const WorkloadMatrixResult threaded = run_workload_matrix(cfg, scenarios, 42, 4);
  EXPECT_EQ(format_workload_matrix(serial, scenarios),
            format_workload_matrix(threaded, scenarios));
}

TEST(WorkloadWorld, SeedChangesTheWorkload) {
  const WorkloadConfig cfg;
  const Scenario& scenario = scenario_named("single-site-blackout");
  WorkloadWorld a(scenario, WorkloadPolicy::kProbeOnly, cfg, 42);
  WorkloadWorld b(scenario, WorkloadPolicy::kProbeOnly, cfg, 43);
  EXPECT_NE(a.total_packets(), b.total_packets());
}

TEST(WorkloadWorld, PolicyOverheadAccounting) {
  const WorkloadConfig cfg;
  const Scenario& scenario = scenario_named("probe-blackhole");

  WorkloadWorld probe(scenario, WorkloadPolicy::kProbeOnly, cfg, 42);
  probe.run_to_end();
  WorkloadWorld mesh(scenario, WorkloadPolicy::kStatic2, cfg, 42);
  mesh.run_to_end();
  WorkloadWorld adaptive(scenario, WorkloadPolicy::kAdaptive, cfg, 42);
  adaptive.run_to_end();

  // The flow set is policy-independent (its own RNG fork), so the sent
  // counts must agree exactly.
  for (std::size_t c = 0; c < kServiceClassCount; ++c) {
    EXPECT_EQ(probe.metrics()[c].sent(), mesh.metrics()[c].sent());
    EXPECT_EQ(probe.metrics()[c].sent(), adaptive.metrics()[c].sent());
  }

  EXPECT_DOUBLE_EQ(probe.overhead_factor(), 1.0);
  EXPECT_EQ(probe.transitions(), 0);
  EXPECT_EQ(probe.fec_blocks(), 0);

  EXPECT_GE(mesh.overhead_factor(), 1.95);
  EXPECT_LE(mesh.overhead_factor(), 2.0);

  EXPECT_GE(adaptive.overhead_factor(), 1.0);
  EXPECT_LT(adaptive.overhead_factor(), mesh.overhead_factor());
}

TEST(WorkloadWorld, LinkFlapDoesNotAmplifyIntoRedundancyChurn) {
  const WorkloadConfig cfg;
  const Scenario& scenario = scenario_named("link-flap");
  WorkloadWorld world(scenario, WorkloadPolicy::kAdaptive, cfg, 42);
  world.run_to_end();

  // The flap runs ~12 on/off cycles through the measured window. The
  // dwell + exit-band hysteresis must keep the total transition count in
  // the order of the flap count across ALL (pair, class) controllers —
  // an unhysteresed controller tracking the flap would rack up hundreds.
  EXPECT_GE(world.transitions(), 1) << "controller never engaged under a flapping link";
  EXPECT_LE(world.transitions(), 48) << "redundancy churn: flap amplified by the controller";
}

// The PR's acceptance criterion, pinned as a test: across the canonical
// matrix there is at least one (scenario, class) column where adaptive
// STRICTLY beats both probe-only and static-2x on SLO attainment.
TEST(WorkloadWorld, AdaptiveBeatsBothStaticsSomewhere) {
  const WorkloadConfig cfg;
  const auto scenarios = canonical_scenarios();
  const WorkloadMatrixResult result = run_workload_matrix(cfg, scenarios, 42, 4);

  int wins = 0;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const WorkloadCell& probe = result.cells[s * 3];
    const WorkloadCell& mesh = result.cells[s * 3 + 1];
    const WorkloadCell& adaptive = result.cells[s * 3 + 2];
    for (std::size_t c = 0; c < kServiceClassCount; ++c) {
      if (adaptive.classes[c].slo_pct > probe.classes[c].slo_pct &&
          adaptive.classes[c].slo_pct > mesh.classes[c].slo_pct) {
        ++wins;
      }
    }
  }
  EXPECT_GE(wins, 1);
}

// Golden cell: provider-blackout under the reference spec, seed 42. The
// stack is deterministic, so these are exact doubles; the tolerance only
// covers cross-libm rounding in the underlay's transcendentals. Update
// deliberately (with a bench re-run) when behaviour changes on purpose.
TEST(WorkloadWorld, GoldenSloAttainmentCell) {
  const WorkloadConfig cfg;
  const Scenario& scenario = scenario_named("provider-blackout");

  const WorkloadCell probe = run_workload_cell(scenario, WorkloadPolicy::kProbeOnly, cfg, 42);
  const WorkloadCell mesh = run_workload_cell(scenario, WorkloadPolicy::kStatic2, cfg, 42);
  const WorkloadCell adaptive = run_workload_cell(scenario, WorkloadPolicy::kAdaptive, cfg, 42);

  const auto web = static_cast<std::size_t>(ServiceClass::kWeb);
  const auto video = static_cast<std::size_t>(ServiceClass::kVideo);

  // GOLDEN_SLO (filled from the reference run; see BENCH_workload.json).
  EXPECT_NEAR(probe.classes[web].slo_pct, 98.785118, 1e-3);
  EXPECT_NEAR(mesh.classes[web].slo_pct, 98.785118, 1e-3);
  EXPECT_NEAR(adaptive.classes[web].slo_pct, 99.038218, 1e-3);
  EXPECT_NEAR(mesh.classes[video].slo_pct, 95.598164, 1e-3);

  // The column relations behind the acceptance claim on this scenario.
  EXPECT_GT(adaptive.classes[web].slo_pct, probe.classes[web].slo_pct);
  EXPECT_GT(adaptive.classes[web].slo_pct, mesh.classes[web].slo_pct);
  EXPECT_GT(adaptive.classes[video].slo_pct, mesh.classes[video].slo_pct);
}

TEST(WorkloadWorld, RejectsInvalidSpecAtConstruction) {
  WorkloadConfig cfg;
  cfg.spec.classes[0].mix = 0.9;  // mixes no longer sum to 1
  const Scenario& scenario = scenario_named("link-flap");
  EXPECT_THROW(WorkloadWorld(scenario, WorkloadPolicy::kAdaptive, cfg, 42),
               std::invalid_argument);
}

}  // namespace
}  // namespace ronpath
