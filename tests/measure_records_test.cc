#include "measure/records.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ronpath {
namespace {

ProbeRecord sample_record() {
  ProbeRecord r;
  r.scheme = PairScheme::kDirectRand;
  r.src = 4;
  r.dst = 21;
  r.probe_id = 0xDEADBEEFCAFEF00Dull;
  r.copy_count = 2;
  r.copies[0].tag = RouteTag::kDirect;
  r.copies[0].via = kDirectVia;
  r.copies[0].delivered = true;
  r.copies[0].cause = DropCause::kNone;
  r.copies[0].sent = TimePoint::epoch() + Duration::seconds(100);
  r.copies[0].latency = Duration::millis(54);
  r.copies[1].tag = RouteTag::kRand;
  r.copies[1].via = 9;
  r.copies[1].delivered = false;
  r.copies[1].cause = DropCause::kBurst;
  r.copies[1].host_drop = false;
  r.copies[1].sent = TimePoint::epoch() + Duration::seconds(100);
  r.copies[1].latency = Duration::zero();
  return r;
}

bool records_equal(const ProbeRecord& a, const ProbeRecord& b) {
  if (a.scheme != b.scheme || a.src != b.src || a.dst != b.dst || a.probe_id != b.probe_id ||
      a.copy_count != b.copy_count) {
    return false;
  }
  for (std::uint8_t i = 0; i < a.copy_count; ++i) {
    const CopyRecord& x = a.copies[i];
    const CopyRecord& y = b.copies[i];
    if (x.tag != y.tag || x.via != y.via || x.delivered != y.delivered || x.cause != y.cause ||
        x.host_drop != y.host_drop || x.sent != y.sent || x.latency != y.latency) {
      return false;
    }
  }
  return true;
}

TEST(Records, RoundTripSingle) {
  const ProbeRecord rec = sample_record();
  ByteWriter w;
  encode_record(rec, w);
  ByteReader r(w.view());
  const auto decoded = decode_record(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(records_equal(rec, *decoded));
  EXPECT_TRUE(r.exhausted());
}

TEST(Records, RoundTripOneCopy) {
  ProbeRecord rec = sample_record();
  rec.copy_count = 1;
  rec.scheme = PairScheme::kLoss;
  ByteWriter w;
  encode_record(rec, w);
  ByteReader r(w.view());
  const auto decoded = decode_record(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(records_equal(rec, *decoded));
}

TEST(Records, RejectsBadSchemeByte) {
  ByteWriter w;
  encode_record(sample_record(), w);
  auto bytes = std::move(w).take();
  bytes[0] = 0xEE;  // scheme out of range
  ByteReader r(bytes);
  EXPECT_FALSE(decode_record(r).has_value());
}

TEST(Records, RejectsBadCopyCount) {
  ProbeRecord rec = sample_record();
  ByteWriter w;
  encode_record(rec, w);
  auto bytes = std::move(w).take();
  bytes[13] = 3;  // copy_count field offset: 1+2+2+8 = 13
  ByteReader r(bytes);
  EXPECT_FALSE(decode_record(r).has_value());
}

TEST(Records, RejectsTruncated) {
  ByteWriter w;
  encode_record(sample_record(), w);
  const auto bytes = std::move(w).take();
  for (std::size_t len = 1; len < bytes.size(); len += 3) {
    ByteReader r(std::span(bytes.data(), len));
    EXPECT_FALSE(decode_record(r).has_value()) << len;
  }
}

TEST(Records, FileRoundTrip) {
  std::vector<ProbeRecord> records;
  for (int i = 0; i < 50; ++i) {
    ProbeRecord rec = sample_record();
    rec.probe_id = static_cast<std::uint64_t>(i);
    rec.copies[0].sent = TimePoint::epoch() + Duration::seconds(i);
    records.push_back(rec);
  }
  std::ostringstream os;
  write_records(os, records);
  const std::string blob = os.str();
  const auto loaded = read_records(
      std::span(reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()));
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(records_equal(records[i], (*loaded)[i])) << i;
  }
}

TEST(Records, FileRejectsBadMagic) {
  std::ostringstream os;
  write_records(os, {});
  std::string blob = os.str();
  blob[0] = 'X';
  EXPECT_FALSE(read_records(std::span(reinterpret_cast<const std::uint8_t*>(blob.data()),
                                      blob.size()))
                   .has_value());
}

TEST(Records, FileRejectsTrailingGarbage) {
  std::ostringstream os;
  const std::vector<ProbeRecord> one = {sample_record()};
  write_records(os, one);
  std::string blob = os.str() + "junk";
  EXPECT_FALSE(read_records(std::span(reinterpret_cast<const std::uint8_t*>(blob.data()),
                                      blob.size()))
                   .has_value());
}

class RecordSchemeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RecordSchemeRoundTrip, EverySchemeEncodes) {
  ProbeRecord rec = sample_record();
  rec.scheme = static_cast<PairScheme>(GetParam());
  ByteWriter w;
  encode_record(rec, w);
  ByteReader r(w.view());
  const auto decoded = decode_record(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->scheme, rec.scheme);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RecordSchemeRoundTrip, ::testing::Range(0, 14));

TEST(RecordStream, RoundTrip) {
  std::ostringstream os;
  RecordStreamWriter w(os);
  for (int i = 0; i < 20; ++i) {
    ProbeRecord rec = sample_record();
    rec.probe_id = static_cast<std::uint64_t>(i);
    w.add(rec);
  }
  EXPECT_EQ(w.written(), 20);
  const std::string blob = os.str();
  const auto loaded = read_record_stream(
      std::span(reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()));
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ((*loaded)[i].probe_id, i);
  }
}

TEST(RecordStream, EmptyStreamIsValid) {
  std::ostringstream os;
  RecordStreamWriter w(os);
  const std::string blob = os.str();
  const auto loaded = read_record_stream(
      std::span(reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(RecordStream, TornRecordRejected) {
  std::ostringstream os;
  RecordStreamWriter w(os);
  w.add(sample_record());
  std::string blob = os.str();
  blob.resize(blob.size() - 3);  // tear the last record
  EXPECT_FALSE(read_record_stream(std::span(
                   reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()))
                   .has_value());
}

TEST(RecordStream, RejectsCountedFormatHeader) {
  // A version-1 (counted) file must not parse as a stream.
  std::ostringstream os;
  const std::vector<ProbeRecord> one = {sample_record()};
  write_records(os, one);
  const std::string blob = os.str();
  EXPECT_FALSE(read_record_stream(std::span(
                   reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()))
                   .has_value());
}

TEST(Records, AnyDeliveredHelper) {
  ProbeRecord rec = sample_record();
  EXPECT_TRUE(rec.any_delivered());
  rec.copies[0].delivered = false;
  EXPECT_FALSE(rec.any_delivered());
}

}  // namespace
}  // namespace ronpath
