#include "util/time.h"

#include <gtest/gtest.h>

namespace ronpath {
namespace {

TEST(Duration, NamedConstructorsAgree) {
  EXPECT_EQ(Duration::micros(1), Duration::nanos(1'000));
  EXPECT_EQ(Duration::millis(1), Duration::micros(1'000));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1'000));
  EXPECT_EQ(Duration::minutes(1), Duration::seconds(60));
  EXPECT_EQ(Duration::hours(1), Duration::minutes(60));
  EXPECT_EQ(Duration::days(1), Duration::hours(24));
}

TEST(Duration, FractionalConstruction) {
  EXPECT_EQ(Duration::from_seconds_f(1.5), Duration::millis(1'500));
  EXPECT_EQ(Duration::from_millis_f(0.25), Duration::micros(250));
  EXPECT_EQ(Duration::from_seconds_f(0.0), Duration::zero());
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(300);
  const Duration b = Duration::millis(200);
  EXPECT_EQ(a + b, Duration::millis(500));
  EXPECT_EQ(a - b, Duration::millis(100));
  EXPECT_EQ(b - a, -Duration::millis(100));
  EXPECT_EQ(a * 3, Duration::millis(900));
  EXPECT_EQ(3 * a, Duration::millis(900));
  EXPECT_EQ(a / 3, Duration::millis(100));
  EXPECT_EQ(a / b, 1);
  EXPECT_EQ(a % b, Duration::millis(100));
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::seconds(1);
  d += Duration::seconds(2);
  EXPECT_EQ(d, Duration::seconds(3));
  d -= Duration::seconds(1);
  EXPECT_EQ(d, Duration::seconds(2));
  d *= 5;
  EXPECT_EQ(d, Duration::seconds(10));
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_LE(Duration::millis(2), Duration::millis(2));
  EXPECT_GT(Duration::seconds(1), Duration::millis(999));
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((-Duration::nanos(1)).is_negative());
  EXPECT_FALSE(Duration::nanos(1).is_negative());
}

TEST(Duration, CountAccessors) {
  const Duration d = Duration::millis(1'234);
  EXPECT_EQ(d.count_nanos(), 1'234'000'000);
  EXPECT_EQ(d.count_micros(), 1'234'000);
  EXPECT_EQ(d.count_millis(), 1'234);
  EXPECT_EQ(d.count_seconds(), 1);
  EXPECT_DOUBLE_EQ(d.to_seconds_f(), 1.234);
  EXPECT_DOUBLE_EQ(d.to_millis_f(), 1'234.0);
}

TEST(Duration, ToStringPicksUnits) {
  EXPECT_EQ(Duration::nanos(17).to_string(), "17ns");
  EXPECT_NE(Duration::micros(17).to_string().find("us"), std::string::npos);
  EXPECT_NE(Duration::millis(17).to_string().find("ms"), std::string::npos);
  EXPECT_NE(Duration::seconds(17).to_string().find("s"), std::string::npos);
  EXPECT_NE(Duration::hours(5).to_string().find("h"), std::string::npos);
  EXPECT_NE(Duration::days(3).to_string().find("d"), std::string::npos);
}

TEST(TimePoint, EpochAndOffsets) {
  const TimePoint t0 = TimePoint::epoch();
  EXPECT_EQ(t0.nanos_since_epoch(), 0);
  const TimePoint t1 = t0 + Duration::seconds(5);
  EXPECT_EQ((t1 - t0), Duration::seconds(5));
  EXPECT_EQ(t1 - Duration::seconds(5), t0);
  EXPECT_LT(t0, t1);
}

TEST(TimePoint, CompoundAssignment) {
  TimePoint t = TimePoint::epoch();
  t += Duration::minutes(1);
  EXPECT_EQ(t.since_epoch(), Duration::minutes(1));
  t -= Duration::seconds(30);
  EXPECT_EQ(t.since_epoch(), Duration::seconds(30));
}

TEST(TimePoint, ToStringFormat) {
  const TimePoint t =
      TimePoint::epoch() + Duration::days(2) + Duration::hours(3) + Duration::minutes(4) +
      Duration::seconds(5) + Duration::millis(6);
  EXPECT_EQ(t.to_string(), "2+03:04:05.006");
}

TEST(TimePoint, SecondsSinceEpochF) {
  const TimePoint t = TimePoint::epoch() + Duration::millis(2'500);
  EXPECT_DOUBLE_EQ(t.seconds_since_epoch_f(), 2.5);
}

TEST(Duration, SaturatingAddOrdinaryValues) {
  EXPECT_EQ(Duration::saturating_add(Duration::millis(300), Duration::millis(200)),
            Duration::millis(500));
  EXPECT_EQ(Duration::saturating_add(Duration::seconds(1), -Duration::millis(250)),
            Duration::millis(750));
  EXPECT_EQ(Duration::saturating_add(Duration::zero(), Duration::zero()), Duration::zero());
}

TEST(Duration, SaturatingAddMaxIsAbsorbing) {
  // max() is the router's "unknown latency" sentinel: adding anything to
  // it — including large negatives — must stay unknown, never wrap into
  // an attractive finite value.
  EXPECT_EQ(Duration::saturating_add(Duration::max(), Duration::nanos(1)), Duration::max());
  EXPECT_EQ(Duration::saturating_add(Duration::nanos(1), Duration::max()), Duration::max());
  EXPECT_EQ(Duration::saturating_add(Duration::max(), -Duration::days(1)), Duration::max());
  EXPECT_EQ(Duration::saturating_add(Duration::max(), Duration::max()), Duration::max());
}

TEST(Duration, SaturatingAddClampsOverflow) {
  const Duration near_max = Duration::max() - Duration::nanos(1);
  EXPECT_EQ(Duration::saturating_add(near_max, Duration::days(1)), Duration::max());
  EXPECT_EQ(Duration::saturating_add(Duration::min(), -Duration::days(1)), Duration::min());
}

// Duration arithmetic must be exact over the full 14-day run range.
TEST(Duration, FourteenDayRangeExact) {
  const Duration run = Duration::days(14);
  EXPECT_EQ(run.count_seconds(), 14 * 86'400);
  const TimePoint end = TimePoint::epoch() + run;
  EXPECT_EQ((end - TimePoint::epoch()) / Duration::hours(1), 336);
}

}  // namespace
}  // namespace ronpath
