// Save/restore round-trip tests for the snapshot codec and the per-layer
// state serialization: Rng streams (including the cached Box-Muller
// spare), interval rings + timeline cursors (including restore-then-
// backjump queries), scheduler clock/sequence state with FIFO-tie
// preservation, link estimators, the link-state table and the router's
// hold-down state.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "event/scheduler.h"
#include "net/loss_process.h"
#include "overlay/estimator.h"
#include "overlay/link_state.h"
#include "overlay/router.h"
#include "snapshot/codec.h"
#include "util/rng.h"
#include "util/time.h"

namespace ronpath {
namespace {

TEST(SnapshotCodec, PrimitivesRoundTrip) {
  snap::Encoder e;
  e.tag("TEST");
  e.u8(0x7f);
  e.b(true);
  e.b(false);
  e.u32(0xdeadbeef);
  e.u64(0x0123456789abcdefull);
  e.i64(-42);
  e.f64(-0.1);
  e.duration(Duration::millis(1500));
  e.time(TimePoint::epoch() + Duration::seconds(7));
  e.str("hello snapshot");

  snap::Decoder d(e.bytes());
  d.expect_tag("TEST");
  EXPECT_EQ(d.u8(), 0x7f);
  EXPECT_TRUE(d.b());
  EXPECT_FALSE(d.b());
  EXPECT_EQ(d.u32(), 0xdeadbeefu);
  EXPECT_EQ(d.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(d.i64(), -42);
  EXPECT_EQ(d.f64(), -0.1);
  EXPECT_EQ(d.duration(), Duration::millis(1500));
  EXPECT_EQ(d.time(), TimePoint::epoch() + Duration::seconds(7));
  EXPECT_EQ(d.str(), "hello snapshot");
  EXPECT_NO_THROW(d.expect_done());
}

TEST(SnapshotCodec, TruncationThrowsAtEveryPrefix) {
  snap::Encoder e;
  e.tag("TRNC");
  e.u64(1);
  e.str("payload");
  const std::vector<std::uint8_t>& full = e.bytes();
  for (std::size_t len = 0; len < full.size(); ++len) {
    snap::Decoder d(full.data(), len);
    EXPECT_THROW(
        {
          d.expect_tag("TRNC");
          (void)d.u64();
          (void)d.str();
        },
        snap::SnapshotError)
        << "prefix length " << len;
  }
}

TEST(SnapshotCodec, TagMismatchAndTrailingBytesThrow) {
  snap::Encoder e;
  e.tag("GOOD");
  e.u8(1);
  snap::Decoder wrong(e.bytes());
  EXPECT_THROW(wrong.expect_tag("EVIL"), snap::SnapshotError);

  snap::Decoder trailing(e.bytes());
  trailing.expect_tag("GOOD");
  EXPECT_THROW(trailing.expect_done(), snap::SnapshotError);
}

TEST(SnapshotCodec, CountRejectsAbsurdLengths) {
  snap::Encoder e;
  e.u64(1u << 30);  // claims a billion elements with no payload behind it
  snap::Decoder d(e.bytes());
  EXPECT_THROW((void)d.count(8), snap::SnapshotError);
}

TEST(SnapshotRng, StreamRoundTripsExactly) {
  Rng a(1234);
  for (int i = 0; i < 17; ++i) (void)a.next_u64();

  snap::Encoder e;
  snap::save_rng(e, a);
  Rng b(999);  // deliberately different seed; restore must overwrite it
  snap::Decoder d(e.bytes());
  snap::restore_rng(d, b);

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64()) << "draw " << i;
  }
  EXPECT_EQ(a.next_double(), b.next_double());
  EXPECT_EQ(a.exponential(2.5), b.exponential(2.5));
}

TEST(SnapshotRng, BoxMullerSpareSurvivesRestore) {
  Rng a(42);
  // One normal draw caches the second Box-Muller variate.
  (void)a.normal(0.0, 1.0);

  snap::Encoder e;
  snap::save_rng(e, a);
  Rng b(7);
  snap::Decoder d(e.bytes());
  snap::restore_rng(d, b);

  // The next normal must come from the cached spare in both streams, and
  // every draw after that must stay in lockstep.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.normal(1.0, 3.0), b.normal(1.0, 3.0)) << "normal draw " << i;
  }
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

// Two LazyIntervalProcesses constructed identically; one round-trips
// through save/restore mid-run. Their query answers must stay identical,
// including backward (roughly-monotone) queries right after restore.
TEST(SnapshotIntervalProcess, RoundTripWithBackjumpQueries) {
  const auto make = [] {
    return LazyIntervalProcess(Duration::seconds(40), Duration::seconds(12), 1.0,
                               Rng(77).fork("proc"));
  };
  LazyIntervalProcess control = make();
  LazyIntervalProcess original = make();

  const TimePoint t0 = TimePoint::epoch();
  control.generate_until(t0 + Duration::minutes(30));
  original.generate_until(t0 + Duration::minutes(30));
  control.prune_before(t0 + Duration::minutes(10));
  original.prune_before(t0 + Duration::minutes(10));
  // Walk the internal cursor forward so the round trip covers it.
  for (int i = 0; i < 100; ++i) {
    (void)control.value_at(t0 + Duration::minutes(10) + Duration::seconds(i * 10));
    (void)original.value_at(t0 + Duration::minutes(10) + Duration::seconds(i * 10));
  }

  snap::Encoder e;
  original.save_state(e);
  LazyIntervalProcess restored = make();
  snap::Decoder d(e.bytes());
  restored.restore_state(d);
  EXPECT_NO_THROW(d.expect_done());

  std::vector<std::string> violations;
  restored.check_invariants("restored", violations);
  EXPECT_TRUE(violations.empty()) << violations.front();

  // Restore-then-backjump: the first queries after restore step backwards
  // from the furthest query (legal within kQuerySafety). The restored
  // cursor state must give the same answers as the uninterrupted twin.
  const TimePoint far = t0 + Duration::minutes(10) + Duration::seconds(990);
  for (int back = 0; back <= 29; back += 7) {
    const TimePoint t = far - Duration::seconds(back);
    EXPECT_EQ(control.value_at(t), restored.value_at(t)) << "backjump " << back << "s";
  }

  // And the generators must continue in lockstep.
  control.generate_until(t0 + Duration::hours(2));
  restored.generate_until(t0 + Duration::hours(2));
  for (int i = 0; i < 200; ++i) {
    const TimePoint t = t0 + Duration::minutes(30) + Duration::seconds(i * 20);
    EXPECT_EQ(control.value_at(t), restored.value_at(t)) << "continued query " << i;
    EXPECT_EQ(control.value_at_reference(t), restored.value_at_reference(t));
  }
}

TEST(SnapshotIntervalProcess, RestoreIntoMismatchedRingSizeIsCaught) {
  LazyIntervalProcess a(Duration::seconds(5), Duration::seconds(2), 1.0, Rng(1).fork("a"));
  a.generate_until(TimePoint::epoch() + Duration::minutes(5));
  snap::Encoder e;
  a.save_state(e);

  // Corrupt the section tag; restore must throw, not misread.
  std::vector<std::uint8_t> bytes = e.bytes();
  bytes[0] ^= 0xff;
  LazyIntervalProcess b(Duration::seconds(5), Duration::seconds(2), 1.0, Rng(1).fork("a"));
  snap::Decoder d(bytes);
  EXPECT_THROW(b.restore_state(d), snap::SnapshotError);
}

// The scheduler round trip: kill mid-run, re-arm saved descriptors with
// their original sequence numbers, and verify the continuation fires in
// exactly the control order — including events tied on the timestamp.
TEST(SnapshotScheduler, RestorePreservesOrderAndFifoTies) {
  const TimePoint tie = TimePoint::epoch() + Duration::seconds(10);

  std::vector<int> control_order;
  Scheduler control;
  control.schedule_at(TimePoint::epoch() + Duration::seconds(3),
                      [&] { control_order.push_back(100); });
  for (int i = 0; i < 6; ++i) {
    control.schedule_at(tie, [&control_order, i] { control_order.push_back(i); });
  }
  control.schedule_at(TimePoint::epoch() + Duration::seconds(12),
                      [&] { control_order.push_back(200); });
  control.run_until(TimePoint::epoch() + Duration::minutes(1));
  ASSERT_EQ(control_order.size(), 8u);

  // Same schedule, but killed at t=5s and restored into a new scheduler.
  std::vector<int> live_order;
  Scheduler victim;
  std::vector<EventHandle> handles;
  handles.push_back(victim.schedule_at(TimePoint::epoch() + Duration::seconds(3),
                                       [&] { live_order.push_back(100); }));
  for (int i = 0; i < 6; ++i) {
    handles.push_back(victim.schedule_at(tie, [&live_order, i] { live_order.push_back(i); }));
  }
  handles.push_back(victim.schedule_at(TimePoint::epoch() + Duration::seconds(12),
                                       [&] { live_order.push_back(200); }));
  victim.run_until(TimePoint::epoch() + Duration::seconds(5));

  struct Descriptor {
    int id;
    TimePoint at;
    std::uint64_t seq;
  };
  std::vector<Descriptor> saved;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    TimePoint at;
    std::uint64_t seq = 0;
    if (victim.pending_entry(handles[i], &at, &seq)) {
      saved.push_back({static_cast<int>(i), at, seq});
    }
  }
  ASSERT_EQ(saved.size(), 7u);  // the 3 s event already fired
  const TimePoint now = victim.now();
  const std::uint64_t next_seq = victim.next_seq();
  const std::uint64_t dispatched = victim.dispatched_events();

  Scheduler fresh;
  fresh.restore_clock(now, next_seq, dispatched);
  EXPECT_EQ(fresh.now(), now);
  EXPECT_EQ(fresh.dispatched_events(), dispatched);
  for (const Descriptor& desc : saved) {
    // Map descriptor ids back to the same side effects as the control.
    const int value = desc.id == 0 ? 100 : desc.id <= 6 ? desc.id - 1 : 200;
    fresh.schedule_at_restored(desc.at, desc.seq,
                               [&live_order, value] { live_order.push_back(value); });
  }
  std::vector<std::string> violations;
  fresh.check_invariants(violations);
  EXPECT_TRUE(violations.empty()) << violations.front();

  fresh.run_until(TimePoint::epoch() + Duration::minutes(1));
  EXPECT_EQ(live_order, control_order);
  EXPECT_EQ(fresh.dispatched_events(), control.dispatched_events());
  EXPECT_EQ(fresh.next_seq(), control.next_seq());
}

TEST(SnapshotScheduler, OldHandlesAreInertAfterRestoreClock) {
  Scheduler sched;
  int fired = 0;
  EventHandle h =
      sched.schedule_at(TimePoint::epoch() + Duration::seconds(1), [&] { ++fired; });
  sched.restore_clock(TimePoint::epoch(), sched.next_seq(), 0);
  EXPECT_FALSE(h.pending());
  h.cancel();  // must be a harmless no-op
  sched.run_until(TimePoint::epoch() + Duration::minutes(1));
  EXPECT_EQ(fired, 0);
}

TEST(SnapshotEstimator, LinkEstimatorRoundTripStaysInLockstep) {
  const EstimatorConfig cfg{100, false, 0.03, 0.1};
  LinkEstimator control(cfg);
  LinkEstimator original(cfg);
  Rng rng(5);
  TimePoint t = TimePoint::epoch();
  for (int i = 0; i < 257; ++i) {
    t += Duration::seconds(15);
    const bool lost = rng.bernoulli(0.2);
    const Duration rtt = Duration::micros(30'000 + 100 * static_cast<std::int64_t>(i % 37));
    control.record_probe(lost, rtt, t);
    original.record_probe(lost, rtt, t);
    if (lost) {
      control.record_followup(i % 3 == 0, t + Duration::seconds(1));
      original.record_followup(i % 3 == 0, t + Duration::seconds(1));
    }
  }

  snap::Encoder e;
  original.save_state(e);
  LinkEstimator restored(cfg);
  snap::Decoder d(e.bytes());
  restored.restore_state(d);
  EXPECT_NO_THROW(d.expect_done());

  EXPECT_EQ(control.loss(), restored.loss());
  EXPECT_EQ(control.latency(), restored.latency());
  EXPECT_EQ(control.down(), restored.down());
  EXPECT_EQ(control.samples(), restored.samples());
  EXPECT_EQ(control.loss_runs(), restored.loss_runs());

  std::vector<std::string> violations;
  restored.check_invariants("restored", t, violations);
  EXPECT_TRUE(violations.empty()) << violations.front();

  // Continue both with identical input; the down/run-length bookkeeping
  // must evolve identically.
  for (int i = 0; i < 64; ++i) {
    t += Duration::seconds(15);
    const bool lost = i % 5 != 0;
    control.record_probe(lost, Duration::millis(25), t);
    restored.record_probe(lost, Duration::millis(25), t);
    if (lost) {
      control.record_followup(true, t + Duration::seconds(1));
      restored.record_followup(true, t + Duration::seconds(1));
    }
    EXPECT_EQ(control.loss(), restored.loss()) << "probe " << i;
    EXPECT_EQ(control.down(), restored.down()) << "probe " << i;
  }
  EXPECT_EQ(control.loss_runs(), restored.loss_runs());
}

TEST(SnapshotLinkState, TableRoundTripAndSizeMismatch) {
  LinkStateTable table(3);
  LinkMetrics m;
  m.loss = 0.25;
  m.latency = Duration::millis(40);
  m.has_latency = true;
  m.samples = 17;
  m.published = TimePoint::epoch() + Duration::minutes(2);
  table.publish(0, 1, m);
  m.down = true;
  table.publish(1, 2, m);

  snap::Encoder e;
  table.save_state(e);
  LinkStateTable restored(3);
  snap::Decoder d(e.bytes());
  restored.restore_state(d);
  EXPECT_EQ(restored.get(0, 1).loss, 0.25);
  EXPECT_EQ(restored.get(0, 1).latency, Duration::millis(40));
  EXPECT_TRUE(restored.get(1, 2).down);
  EXPECT_EQ(restored.get(2, 0).samples, 0u);

  std::vector<std::string> violations;
  restored.check_invariants(TimePoint::epoch() + Duration::minutes(3), violations);
  EXPECT_TRUE(violations.empty()) << violations.front();

  LinkStateTable wrong_size(4);
  snap::Decoder d2(e.bytes());
  EXPECT_THROW(wrong_size.restore_state(d2), snap::SnapshotError);
}

TEST(SnapshotRouter, HolddownAndIncumbentsRoundTrip) {
  const std::size_t n = 4;
  LinkStateTable table(n);
  RouterConfig cfg;
  cfg.holddown_base = Duration::seconds(30);
  cfg.entry_ttl = Duration::seconds(75);

  const auto publish = [&](NodeId s, NodeId d, double loss, bool down, TimePoint now) {
    LinkMetrics m;
    m.loss = loss;
    m.latency = Duration::millis(30);
    m.has_latency = true;
    m.down = down;
    m.samples = 50;
    m.published = now;
    table.publish(s, d, m);
  };

  Router control(0, table, cfg);
  Router original(0, table, cfg);

  TimePoint now = TimePoint::epoch() + Duration::seconds(10);
  // Make the path through via 2 attractive, select it, then take it down
  // repeatedly so hold-down strikes accumulate.
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d2 = 0; d2 < n; ++d2) {
      if (s != d2) publish(s, d2, 0.30, false, now);
    }
  }
  publish(0, 2, 0.01, false, now);
  publish(2, 1, 0.01, false, now);
  (void)control.best_loss_path(1, now);
  (void)original.best_loss_path(1, now);
  for (int round = 0; round < 3; ++round) {
    now += Duration::seconds(40);
    publish(0, 2, 0.5, true, now);  // incumbent via goes down -> strike
    (void)control.best_loss_path(1, now);
    (void)original.best_loss_path(1, now);
    now += Duration::seconds(40);
    publish(0, 2, 0.01, false, now);  // recovers, gets re-selected
    (void)control.best_loss_path(1, now);
    (void)original.best_loss_path(1, now);
  }

  snap::Encoder e;
  original.save_state(e);
  Router restored(0, table, cfg);
  snap::Decoder d(e.bytes());
  restored.restore_state(d);
  EXPECT_NO_THROW(d.expect_done());

  std::vector<std::string> violations;
  restored.check_invariants(now, violations);
  EXPECT_TRUE(violations.empty()) << violations.front();

  EXPECT_EQ(control.loss_switches(1), restored.loss_switches(1));
  for (NodeId via = 2; via < n; ++via) {
    for (int k = 0; k < 10; ++k) {
      const TimePoint t = now + Duration::seconds(5 * k);
      EXPECT_EQ(control.held_down(1, via, t), restored.held_down(1, via, t))
          << "via " << via << " at +" << 5 * k << "s";
    }
  }

  // Continued evaluations agree choice-for-choice.
  for (int round = 0; round < 4; ++round) {
    now += Duration::seconds(20);
    publish(0, 2, round % 2 ? 0.01 : 0.6, round % 2 == 0, now);
    const PathChoice a = control.best_loss_path(1, now);
    const PathChoice b = restored.best_loss_path(1, now);
    EXPECT_EQ(a.path.via, b.path.via) << "round " << round;
    EXPECT_EQ(a.loss, b.loss) << "round " << round;
    EXPECT_EQ(control.loss_switches(1), restored.loss_switches(1)) << "round " << round;
  }
}

}  // namespace
}  // namespace ronpath
