#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ronpath {
namespace {

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&hits, i] { ++hits[static_cast<std::size_t>(i)]; });
  }
  pool.wait_idle();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, AsyncReturnsValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.async([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, AsyncPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitFromWorkerThread) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f = pool.async([&] {
    // Lands on the calling worker's own deque.
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++ran; });
  });
  f.get();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolForEach, OutputsOrderedByIndexNotCompletion) {
  constexpr std::size_t kN = 200;
  std::vector<std::size_t> out(kN, 0);
  ThreadPool::for_each_index(kN, 8, [&](std::size_t i) { out[i] = i + 1; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(ThreadPoolForEach, InlineWhenSingleJob) {
  // jobs <= 1 must run on the calling thread, in index order.
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  ThreadPool::for_each_index(5, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolForEach, ZeroTasksIsANoop) {
  ThreadPool::for_each_index(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolForEach, OversubscribedJobsStillComplete) {
  // Far more jobs than tasks or cores.
  std::atomic<int> ran{0};
  ThreadPool::for_each_index(8, 64, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolForEach, RethrowsLowestIndexExceptionAfterAllTasksRan) {
  std::atomic<int> ran{0};
  try {
    ThreadPool::for_each_index(20, 4, [&](std::size_t i) {
      ++ran;
      if (i == 3) throw std::runtime_error("task 3");
      if (i == 17) throw std::logic_error("task 17");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");  // lowest failing index wins
  }
  EXPECT_EQ(ran.load(), 20);  // the failure did not cancel other tasks
}

}  // namespace
}  // namespace ronpath
