#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ronpath {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_string();
  // Header then separator then two rows.
  std::istringstream is(out);
  std::string l1, l2, l3, l4;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  std::getline(is, l4);
  EXPECT_NE(l1.find("name"), std::string::npos);
  EXPECT_EQ(l2.find_first_not_of('-'), std::string::npos);
  // All lines equal width.
  EXPECT_EQ(l1.size(), l3.size());
  EXPECT_EQ(l3.size(), l4.size());
  // Right-aligned numeric column: "1" at the end of its row.
  EXPECT_EQ(l3.back(), '1');
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 4), "3.1416");
  EXPECT_EQ(TextTable::num(std::int64_t{42}), "42");
  EXPECT_EQ(TextTable::opt_num(false, 9.9), "-");
  EXPECT_EQ(TextTable::opt_num(true, 9.9, 1), "9.9");
}

TEST(CsvWriter, QuotesSpecialFields) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvWriter, EmptyFields) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"", "b", ""});
  EXPECT_EQ(os.str(), ",b,\n");
}

TEST(PlotAscii, RendersSeriesGlyphs) {
  std::ostringstream os;
  AsciiSeries s1{"one", {0.0, 0.5, 1.0}, {0.0, 0.5, 1.0}};
  AsciiSeries s2{"two", {0.0, 0.5, 1.0}, {1.0, 0.5, 0.0}};
  plot_ascii(os, {s1, s2}, 0.0, 1.0, 40, 10, "x", "y");
  const std::string out = os.str();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find("one"), std::string::npos);
  EXPECT_NE(out.find("two"), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(PlotAscii, EmptySeriesIsNoop) {
  std::ostringstream os;
  plot_ascii(os, {}, 0.0, 1.0);
  EXPECT_TRUE(os.str().empty());
}

TEST(PlotAscii, OutOfRangePointsClipped) {
  std::ostringstream os;
  AsciiSeries s{"clipped", {0.0, 1.0}, {-5.0, 5.0}};
  plot_ascii(os, {s}, 0.0, 1.0, 20, 6);
  // No crash; no glyph plotted in the grid area (the legend line at the
  // bottom still names the glyph, so count occurrences).
  const std::string out = os.str();
  const std::size_t grid_end = out.find("-----");
  ASSERT_NE(grid_end, std::string::npos);
  EXPECT_EQ(out.substr(0, grid_end).find('*'), std::string::npos);
}

}  // namespace
}  // namespace ronpath
