#include "routing/hybrid.h"

#include <gtest/gtest.h>

#include "core/testbed.h"

namespace ronpath {
namespace {

struct Fixture {
  Topology topo;
  Network net;
  Scheduler sched;
  OverlayNetwork overlay;

  explicit Fixture(std::uint64_t seed = 42, NetConfig cfg = NetConfig::profile_2003())
      : topo(testbed_2002()),
        net(topo, std::move(cfg), Duration::hours(3), Rng(seed)),
        overlay(net, sched, OverlayConfig{}, Rng(seed + 1)) {
    overlay.start();
    sched.run_until(TimePoint::epoch() + Duration::minutes(3));
  }
};

TEST(HybridSender, BestPathNeverDuplicates) {
  Fixture f;
  HybridConfig cfg;
  cfg.mode = HybridMode::kBestPath;
  HybridSender sender(f.overlay, cfg, Rng(1));
  for (int i = 0; i < 200; ++i) {
    const auto out = sender.send(0, 5, f.sched.now() + Duration::millis(i * 10));
    EXPECT_EQ(out.probe.copies.size(), 1u);
    EXPECT_FALSE(out.duplicated);
  }
  EXPECT_DOUBLE_EQ(sender.overhead_factor(), 1.0);
  EXPECT_EQ(sender.duplicated(), 0);
}

TEST(HybridSender, AlwaysDuplicateSendsTwo) {
  Fixture f;
  HybridConfig cfg;
  cfg.mode = HybridMode::kAlwaysDuplicate;
  HybridSender sender(f.overlay, cfg, Rng(2));
  for (int i = 0; i < 200; ++i) {
    const auto out = sender.send(0, 5, f.sched.now() + Duration::millis(i * 10));
    ASSERT_EQ(out.probe.copies.size(), 2u);
    EXPECT_TRUE(out.duplicated);
  }
  EXPECT_DOUBLE_EQ(sender.overhead_factor(), 2.0);
}

TEST(HybridSender, DuplicateCopiesUseDistinctPaths) {
  Fixture f;
  HybridConfig cfg;
  cfg.mode = HybridMode::kAlwaysDuplicate;
  HybridSender sender(f.overlay, cfg, Rng(3));
  for (int i = 0; i < 100; ++i) {
    const auto out = sender.send(2, 9, f.sched.now() + Duration::millis(i * 10));
    ASSERT_EQ(out.probe.copies.size(), 2u);
    EXPECT_NE(out.probe.copies[0].path, out.probe.copies[1].path);
  }
}

TEST(HybridSender, AdaptiveQuietNetworkStaysSingle) {
  // On a quiet network the best path's estimate is ~0: no duplication.
  Fixture f;
  HybridConfig cfg;
  cfg.mode = HybridMode::kAdaptive;
  cfg.duplicate_threshold = 0.05;
  HybridSender sender(f.overlay, cfg, Rng(4));
  for (int i = 0; i < 300; ++i) {
    (void)sender.send(0, 5, f.sched.now() + Duration::millis(i * 10));
  }
  // At most a handful of duplications (estimate noise), overhead near 1x.
  EXPECT_LT(sender.overhead_factor(), 1.1);
}

TEST(HybridSender, AdaptiveZeroThresholdDuplicatesEverything) {
  Fixture f;
  HybridConfig cfg;
  cfg.mode = HybridMode::kAdaptive;
  cfg.duplicate_threshold = 0.0;  // any estimate >= 0 triggers
  HybridSender sender(f.overlay, cfg, Rng(5));
  for (int i = 0; i < 50; ++i) {
    const auto out = sender.send(1, 7, f.sched.now() + Duration::millis(i * 10));
    EXPECT_TRUE(out.duplicated);
  }
}

TEST(HybridSender, OverheadAccounting) {
  Fixture f;
  HybridConfig cfg;
  cfg.mode = HybridMode::kAdaptive;
  cfg.duplicate_threshold = 0.0;
  HybridSender sender(f.overlay, cfg, Rng(6));
  for (int i = 0; i < 10; ++i) {
    (void)sender.send(0, 3, f.sched.now() + Duration::millis(i));
  }
  EXPECT_EQ(sender.packets(), 10);
  EXPECT_EQ(sender.copies(), 20);
  EXPECT_EQ(sender.duplicated(), 10);
}

TEST(HybridSender, ModeNames) {
  EXPECT_EQ(to_string(HybridMode::kBestPath), "best-path");
  EXPECT_EQ(to_string(HybridMode::kAlwaysDuplicate), "always-duplicate");
  EXPECT_EQ(to_string(HybridMode::kAdaptive), "adaptive");
}

// Property: over a lossy stretch, more duplication never hurts delivery.
TEST(HybridSender, DuplicationImprovesDeliveryUnderLoss) {
  NetConfig lossy = NetConfig::profile_2003();
  lossy.loss_scale *= 20.0;
  std::int64_t lost_single = 0;
  std::int64_t lost_dup = 0;
  const int n = 20'000;
  for (int mode = 0; mode < 2; ++mode) {
    Fixture f(7, lossy);
    HybridConfig cfg;
    cfg.mode = mode == 0 ? HybridMode::kBestPath : HybridMode::kAlwaysDuplicate;
    HybridSender sender(f.overlay, cfg, Rng(8));
    Rng pick(9);
    for (int i = 0; i < n; ++i) {
      const NodeId src = static_cast<NodeId>(pick.next_below(f.topo.size()));
      NodeId dst = src;
      while (dst == src) dst = static_cast<NodeId>(pick.next_below(f.topo.size()));
      const auto out = sender.send(src, dst, f.sched.now() + Duration::millis(i * 5));
      (mode == 0 ? lost_single : lost_dup) += out.delivered() ? 0 : 1;
    }
  }
  EXPECT_LT(lost_dup, lost_single);
}

}  // namespace
}  // namespace ronpath
