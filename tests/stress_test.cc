// Stress and cross-seed property tests: randomized workloads against the
// event scheduler and the network substrate, checking the invariants that
// every other layer relies on.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "util/rng.h"

namespace ronpath {
namespace {

// Randomized schedule/cancel/reschedule storm: events must fire exactly
// once, in non-decreasing time order, and cancelled events never fire.
TEST(SchedulerStress, RandomScheduleAndCancel) {
  Rng rng(2718);
  Scheduler sched;
  std::map<int, int> fired;  // id -> count
  std::vector<std::pair<int, EventHandle>> live;
  int next_id = 0;
  TimePoint last_fire;

  for (int round = 0; round < 200; ++round) {
    // Schedule a burst of events at random offsets.
    const int n = static_cast<int>(rng.next_below(20)) + 1;
    for (int i = 0; i < n; ++i) {
      const int id = next_id++;
      const Duration delay = Duration::millis(static_cast<std::int64_t>(rng.next_below(5000)));
      EventHandle h = sched.schedule_after(delay, [&, id] {
        ++fired[id];
        EXPECT_GE(sched.now(), last_fire);
        last_fire = sched.now();
      });
      live.emplace_back(id, std::move(h));
    }
    // Cancel a random subset.
    for (auto& [id, handle] : live) {
      if (rng.bernoulli(0.25)) handle.cancel();
    }
    // Advance a random amount.
    sched.run_until(sched.now() + Duration::millis(static_cast<std::int64_t>(rng.next_below(2000))));
  }
  sched.run_all();

  for (const auto& [id, count] : fired) {
    EXPECT_EQ(count, 1) << "event " << id << " fired " << count << " times";
  }
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(SchedulerStress, ReentrantSchedulingFromCallbacks) {
  Scheduler sched;
  Rng rng(3141);
  std::int64_t fired = 0;
  // Each callback schedules 0-2 children until a budget is exhausted.
  std::int64_t budget = 5000;
  std::function<void()> spawn = [&] {
    ++fired;
    if (budget <= 0) return;
    const auto kids = rng.next_below(3);
    for (std::uint64_t k = 0; k < kids && budget > 0; ++k) {
      --budget;
      sched.schedule_after(Duration::micros(static_cast<std::int64_t>(rng.next_below(1000))),
                           spawn);
    }
  };
  sched.schedule_after(Duration::zero(), spawn);
  sched.run_all();
  EXPECT_GT(fired, 1);
  EXPECT_EQ(sched.pending_events(), 0u);
}

// Network invariants across seeds: conservation of packets, monotone
// clock behavior, latency floors.
class NetworkSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkSeeds, ConservationAndFloors) {
  const Topology topo = testbed_2002();
  Network net(topo, NetConfig::profile_2003(), Duration::hours(2), Rng(GetParam()));
  Rng rng(GetParam() + 1);
  std::int64_t delivered = 0;
  std::int64_t lost = 0;
  const std::int64_t n = 60'000;
  for (std::int64_t i = 0; i < n; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::micros(i * 100'000);
    const NodeId a = static_cast<NodeId>(rng.next_below(topo.size()));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(topo.size()));
    const bool indirect = rng.bernoulli(0.3);
    PathSpec path{a, b, kDirectVia};
    if (indirect) {
      NodeId v = a;
      while (v == a || v == b) v = static_cast<NodeId>(rng.next_below(topo.size()));
      path.via = v;
    }
    const auto r = net.transmit(path, t);
    if (r.delivered) {
      ++delivered;
      EXPECT_GE(r.latency, net.base_latency(path)) << "seed " << GetParam();
      EXPECT_LT(r.latency, Duration::seconds(5));
    } else {
      ++lost;
      EXPECT_NE(r.cause, DropCause::kNone);
      EXPECT_LT(r.drop_component, topo.component_count());
    }
  }
  EXPECT_EQ(delivered + lost, n);
  EXPECT_EQ(net.stats().transmitted, n);
  EXPECT_EQ(net.stats().delivered, delivered);
  // Sanity: loss exists but is far from catastrophic.
  EXPECT_GT(lost, 0);
  EXPECT_LT(lost, n / 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkSeeds, ::testing::Values(3u, 17u, 255u, 9001u));

}  // namespace
}  // namespace ronpath
