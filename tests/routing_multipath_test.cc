#include "routing/multipath.h"

#include <gtest/gtest.h>

#include <set>

#include "core/testbed.h"

namespace ronpath {
namespace {

struct Fixture {
  Topology topo;
  Network net;
  Scheduler sched;
  OverlayNetwork overlay;
  MultipathSender sender;

  Fixture()
      : topo(testbed_2002()),
        net(topo, NetConfig::profile_2003(), Duration::hours(2), Rng(42)),
        overlay(net, sched, OverlayConfig{}, Rng(43)),
        sender(overlay, Rng(44)) {
    overlay.start();
    sched.run_until(TimePoint::epoch() + Duration::minutes(2));
  }
};

TEST(MultipathSender, SinglePacketSchemes) {
  Fixture f;
  for (PairScheme s : {PairScheme::kDirect, PairScheme::kLat, PairScheme::kLoss}) {
    const auto out = f.sender.send(s, 0, 1, f.sched.now());
    EXPECT_EQ(out.copies.size(), 1u);
    EXPECT_EQ(out.scheme, s);
    EXPECT_EQ(out.src, 0);
    EXPECT_EQ(out.dst, 1);
  }
}

TEST(MultipathSender, TwoPacketSchemesSendTwo) {
  Fixture f;
  const auto out = f.sender.send(PairScheme::kDirectRand, 0, 1, f.sched.now());
  ASSERT_EQ(out.copies.size(), 2u);
  EXPECT_EQ(out.copies[0].tag, RouteTag::kDirect);
  EXPECT_EQ(out.copies[1].tag, RouteTag::kRand);
  EXPECT_TRUE(out.copies[0].path.is_direct());
}

TEST(MultipathSender, DdSchemesReuseFirstPath) {
  Fixture f;
  for (PairScheme s : {PairScheme::kDirectDirect, PairScheme::kDd10ms, PairScheme::kDd20ms}) {
    const auto out = f.sender.send(s, 2, 5, f.sched.now());
    ASSERT_EQ(out.copies.size(), 2u);
    EXPECT_EQ(out.copies[0].path, out.copies[1].path) << to_string(s);
  }
}

TEST(MultipathSender, GapShiftsSecondSendTime) {
  Fixture f;
  const TimePoint now = f.sched.now();
  const auto dd0 = f.sender.send(PairScheme::kDirectDirect, 0, 1, now);
  EXPECT_EQ(dd0.copies[1].sent, now);
  const auto dd10 = f.sender.send(PairScheme::kDd10ms, 0, 1, now);
  EXPECT_EQ(dd10.copies[1].sent, now + Duration::millis(10));
  const auto dd20 = f.sender.send(PairScheme::kDd20ms, 0, 1, now);
  EXPECT_EQ(dd20.copies[1].sent, now + Duration::millis(20));
}

TEST(MultipathSender, ProbeIdsUnique) {
  Fixture f;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const auto out = f.sender.send(PairScheme::kDirect, 0, 1, f.sched.now());
    EXPECT_TRUE(ids.insert(out.probe_id).second);
  }
}

TEST(MultipathSender, LatLossCopiesUseSelectedTactics) {
  Fixture f;
  const auto out = f.sender.send(PairScheme::kLatLoss, 3, 7, f.sched.now());
  ASSERT_EQ(out.copies.size(), 2u);
  EXPECT_EQ(out.copies[0].tag, RouteTag::kLat);
  EXPECT_EQ(out.copies[1].tag, RouteTag::kLoss);
}

TEST(ProbeOutcome, AnyDeliveredAndFirstArrival) {
  ProbeOutcome out;
  CopyOutcome lost;
  lost.sent = TimePoint::epoch();
  lost.result.net.delivered = false;
  out.copies.push_back(lost);
  EXPECT_FALSE(out.any_delivered());

  CopyOutcome ok;
  ok.sent = TimePoint::epoch() + Duration::millis(10);
  ok.result.net.delivered = true;
  ok.result.net.latency = Duration::millis(50);
  out.copies.push_back(ok);
  EXPECT_TRUE(out.any_delivered());
  EXPECT_EQ(out.first_arrival(), TimePoint::epoch() + Duration::millis(60));
}

TEST(MultipathSender, MostCopiesDeliverOnQuietNetwork) {
  Fixture f;
  int delivered = 0;
  int total = 0;
  for (int i = 0; i < 2000; ++i) {
    const NodeId dst = static_cast<NodeId>(1 + (i % 16));
    const auto out = f.sender.send(PairScheme::kDirectRand, 0, dst,
                                   f.sched.now() + Duration::millis(i * 3));
    for (const auto& c : out.copies) {
      ++total;
      delivered += c.delivered() ? 1 : 0;
    }
  }
  EXPECT_GT(delivered, total * 90 / 100);
}

}  // namespace
}  // namespace ronpath
