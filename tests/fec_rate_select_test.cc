// Closed-loop FEC rate selection and the adaptive redundancy controller.
//
// pick_parity is pinned against a direct binomial-tail evaluation and
// its monotonicity properties (more loss never needs less parity, more
// parity never raises the failure probability). The controller tests pin
// the open-loop classification (thin flows duplicate, fat flows take
// FEC, in-budget flows stay single) and the hysteresis contract: at most
// one transition per dwell, de-escalation only below the exit band.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fec/rate_select.h"
#include "snapshot/codec.h"
#include "workload/adaptive.h"

namespace ronpath {
namespace {

// Direct tail sum, written independently of the implementation.
double tail_reference(std::size_t k, std::size_t m, double p) {
  const std::size_t n = k + m;
  double sum = 0.0;
  for (std::size_t j = m + 1; j <= n; ++j) {
    double log_c = std::lgamma(static_cast<double>(n) + 1.0) -
                   std::lgamma(static_cast<double>(j) + 1.0) -
                   std::lgamma(static_cast<double>(n - j) + 1.0);
    sum += std::exp(log_c + static_cast<double>(j) * std::log(p) +
                    static_cast<double>(n - j) * std::log1p(-p));
  }
  return sum;
}

TEST(RateSelect, FailureProbMatchesBinomialTail) {
  for (const double p : {0.001, 0.01, 0.05, 0.2}) {
    for (std::size_t m = 0; m <= 4; ++m) {
      const double got = fec_block_failure_prob(8, m, p);
      const double want = tail_reference(8, m, p);
      EXPECT_NEAR(got, want, 1e-12 + 1e-9 * want) << "p=" << p << " m=" << m;
    }
  }
}

TEST(RateSelect, FailureProbEdgeCases) {
  EXPECT_DOUBLE_EQ(fec_block_failure_prob(8, 2, 0.0), 0.0);
  EXPECT_NEAR(fec_block_failure_prob(8, 2, 1.0), 1.0, 1e-12);
  // m = 0: any single loss kills the block.
  EXPECT_NEAR(fec_block_failure_prob(4, 0, 0.1), 1.0 - std::pow(0.9, 4), 1e-12);
}

TEST(RateSelect, PickParityMeetsTargetMinimally) {
  const double target = 1e-3;
  for (const double p : {0.002, 0.01, 0.03, 0.08}) {
    const std::size_t m = pick_parity(8, p, target, 4);
    if (fec_block_failure_prob(8, 4, p) <= target) {
      EXPECT_LE(fec_block_failure_prob(8, m, p), target) << "p=" << p;
      if (m > 0) {
        EXPECT_GT(fec_block_failure_prob(8, m - 1, p), target)
            << "p=" << p << ": m=" << m << " is not minimal";
      }
    } else {
      // No parity count in range reaches the target (p = 0.08 needs more
      // than 4 shards): saturate at m_max and let the caller escalate.
      EXPECT_EQ(m, 4u) << "p=" << p;
    }
  }
}

TEST(RateSelect, PickParityMonotoneInLossAndSaturates) {
  std::size_t prev = 0;
  for (double p = 0.001; p < 0.5; p *= 1.5) {
    const std::size_t m = pick_parity(8, p, 1e-3, 4);
    EXPECT_GE(m, prev) << "parity decreased as loss grew at p=" << p;
    EXPECT_LE(m, 4u);
    prev = m;
  }
  // Hopeless loss rates saturate at m_max instead of diverging.
  EXPECT_EQ(pick_parity(8, 0.45, 1e-3, 4), 4u);
  EXPECT_EQ(pick_parity(8, 0.0, 1e-3, 4), 0u);
}

// ----------------------------------------------------------- controller

TEST(Adaptive, DesiredLevelSingleWhenInsideBudget) {
  AdaptiveConfig cfg;
  EXPECT_EQ(desired_level(cfg, /*est_loss=*/0.001, /*target=*/0.01, /*y=*/0.1),
            RedundancyLevel::kSingle);
  EXPECT_EQ(desired_level(cfg, 0.01, 0.01, 0.1), RedundancyLevel::kSingle);
}

TEST(Adaptive, FecEngagesInsideLimitsSingleBeyondThem) {
  AdaptiveConfig cfg;
  // 2% loss against a 1% budget is x = 0.5, right at the independence
  // limit: FEC's fractional overhead (m/k of the flow) undercuts both a
  // full duplicate and the probing cost for thin and fat flows alike.
  EXPECT_EQ(desired_level(cfg, 0.02, 0.01, 0.02), RedundancyLevel::kFec);
  EXPECT_EQ(desired_level(cfg, 0.02, 0.01, 0.55), RedundancyLevel::kFec);
  // 3% against 1% is x = 0.67, beyond every feasibility limit: the
  // controller refuses to burn capacity for an unreachable target.
  EXPECT_EQ(desired_level(cfg, 0.03, 0.01, 0.02), RedundancyLevel::kSingle);
}

TEST(Adaptive, DesignSpacePicksDuplicationWhenParityIsDearer) {
  // The kDuplicate branch needs a thin flow (extra copy cheaper than
  // probing bandwidth) AND FEC overhead above a whole extra copy — the
  // regime where an RS code is pointless and the classifier falls back
  // to duplication on cost. Fat flows at the same point go reactive.
  const DesignSpace space{DesignSpaceParams{}};
  EXPECT_EQ(space.classify_requirement(0.5, 0.05, 1.2), RedundancyAction::kDuplicate);
  EXPECT_EQ(space.classify_requirement(0.5, 0.05, 0.25), RedundancyAction::kFec);
  EXPECT_EQ(space.classify_requirement(0.3, 0.3, 1.2), RedundancyAction::kReactive);
}

TEST(Adaptive, HysteresisBoundsTransitionRate) {
  AdaptiveConfig cfg;
  cfg.min_dwell = Duration::seconds(60);
  AdaptiveController ctrl;
  TimePoint t = TimePoint::epoch();

  // Flap the loss estimate between clean and lossy every second for ten
  // minutes; the dwell bound caps transitions at one per minute.
  int flips = 0;
  for (int s = 0; s < 600; ++s) {
    const double est = (s % 2 == 0) ? 0.018 : 0.0001;
    ctrl.update(cfg, est, 0.01, 0.02, t);
    t += Duration::seconds(1);
    ++flips;
  }
  EXPECT_EQ(flips, 600);
  EXPECT_LE(ctrl.transitions(), 600 / 60 + 1) << "dwell bound violated";
  EXPECT_GE(ctrl.transitions(), 1);
}

TEST(Adaptive, DeEscalationRequiresExitMargin) {
  AdaptiveConfig cfg;
  cfg.min_dwell = Duration::seconds(1);
  cfg.exit_margin = 0.5;
  AdaptiveController ctrl;
  TimePoint t = TimePoint::epoch();

  ctrl.update(cfg, 0.018, 0.01, 0.02, t);  // escalate
  ASSERT_EQ(ctrl.level(), RedundancyLevel::kFec);

  // Estimate falls back inside budget but above the exit band
  // (0.008 > 0.5 * 0.01): must hold the level.
  t += Duration::minutes(1);
  ctrl.update(cfg, 0.008, 0.01, 0.02, t);
  EXPECT_EQ(ctrl.level(), RedundancyLevel::kFec);

  // Below the band: de-escalates.
  t += Duration::minutes(1);
  ctrl.update(cfg, 0.004, 0.01, 0.02, t);
  EXPECT_EQ(ctrl.level(), RedundancyLevel::kSingle);
  EXPECT_EQ(ctrl.transitions(), 2);
}

TEST(Adaptive, ControllerSnapshotRoundTrip) {
  AdaptiveConfig cfg;
  AdaptiveController ctrl;
  TimePoint t = TimePoint::epoch() + Duration::minutes(5);
  ctrl.update(cfg, 0.018, 0.01, 0.02, t);
  ASSERT_EQ(ctrl.level(), RedundancyLevel::kFec);

  snap::Encoder e;
  ctrl.save_state(e);
  AdaptiveController restored;
  snap::Decoder d(e.bytes());
  restored.restore_state(d);
  d.expect_done();

  EXPECT_EQ(restored.level(), ctrl.level());
  EXPECT_EQ(restored.transitions(), ctrl.transitions());
  // The dwell clock restores too: an immediate de-escalation attempt
  // must be refused exactly as on the original.
  restored.update(cfg, 0.0001, 0.01, 0.02, t + Duration::seconds(1));
  ctrl.update(cfg, 0.0001, 0.01, 0.02, t + Duration::seconds(1));
  EXPECT_EQ(restored.level(), ctrl.level());
}

TEST(Adaptive, ParityNeverZeroAtFecLevel) {
  AdaptiveConfig cfg;
  AdaptiveController ctrl;
  // Even a tiny estimate yields at least one parity shard while at kFec:
  // a 0-parity "block" would be pure bookkeeping with no protection.
  EXPECT_GE(ctrl.parity(cfg, 0.0), 1u);
  EXPECT_GE(ctrl.parity(cfg, 0.0001), 1u);
  EXPECT_LE(ctrl.parity(cfg, 0.4), cfg.fec_m_max);
}

}  // namespace
}  // namespace ronpath
