// Incremental re-relaxation property test: after every single-entry
// mutation (republished metrics via apply_update, staleness-anchor
// moves via set_now), the incrementally maintained label tables must be
// identical — value and parent, both objectives, every round — to a
// from-scratch relax_all on the same state. Any divergence means the
// dirty-set propagation missed an affected label (or touched one it
// should not have rewritten the same way).

#include "overlay/path_engine.h"

#include <gtest/gtest.h>

#include <string>

#include "overlay/link_state.h"
#include "overlay/router.h"
#include "util/rng.h"

namespace ronpath {
namespace {

LinkMetrics random_metrics(Rng& rng, TimePoint now) {
  LinkMetrics m;
  switch (rng.next_below(5)) {
    case 0: m.loss = 0.0; break;
    case 1: m.loss = 0.5; break;
    case 2: m.loss = 1.0; break;
    default: m.loss = rng.next_double(); break;
  }
  m.latency = rng.bernoulli(0.2)
                  ? Duration::max()
                  : Duration::micros(rng.uniform_int(50, 500'000));
  m.has_latency = m.latency != Duration::max();
  m.down = rng.bernoulli(0.2);
  if (rng.bernoulli(0.15)) {
    m.samples = 0;  // empty window: expires under a TTL
  } else {
    m.samples = 100;
    m.published = now - Duration::seconds(static_cast<std::int64_t>(rng.next_below(150)));
  }
  return m;
}

void compare_all_labels(const PathEngine& inc, const PathEngine& scratch, std::size_t n, int k) {
  for (int r = 0; r <= k; ++r) {
    for (NodeId w = 0; w < n; ++w) {
      SCOPED_TRACE("round " + std::to_string(r) + " node " + std::to_string(w));
      ASSERT_EQ(inc.loss_parent(r, w), scratch.loss_parent(r, w));
      ASSERT_EQ(inc.loss_label(r, w), scratch.loss_label(r, w));
      ASSERT_EQ(inc.lat_parent(r, w), scratch.lat_parent(r, w));
      ASSERT_EQ(inc.lat_label(r, w), scratch.lat_label(r, w));
    }
  }
}

TEST(PathEngineIncremental, MutationStreamMatchesScratchRecompute) {
  Rng rng(0xc2b2ae3d27d4eb4fULL);
  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto n = static_cast<NodeId>(4 + rng.next_below(6));
    RouterConfig cfg;
    cfg.indirect_loss_penalty = rng.bernoulli(0.5) ? 0.03 : 0.0;
    cfg.entry_ttl = rng.bernoulli(0.7) ? Duration::seconds(60) : Duration::zero();
    cfg.unknown_loss = 0.35;
    TimePoint now = TimePoint::epoch() + Duration::seconds(200);

    LinkStateTable table(n);
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = 0; b < n; ++b) {
        if (a != b && rng.bernoulli(0.8)) table.publish(a, b, random_metrics(rng, now));
      }
    }

    const auto src = static_cast<NodeId>(rng.next_below(n));
    const int k = static_cast<int>(1 + rng.next_below(3));
    PathEngine inc(table, cfg);
    PathEngine scratch(table, cfg);
    inc.relax_all(src, k, now);

    for (int step = 0; step < 50; ++step) {
      SCOPED_TRACE("step " + std::to_string(step));
      if (rng.bernoulli(0.25)) {
        // Move the staleness anchor forward; entries expire in bulk.
        now += Duration::seconds(static_cast<std::int64_t>(1 + rng.next_below(90)));
        inc.set_now(now);
      } else {
        // Republish one directed entry (sometimes as newly-expired or
        // down, flipping the endpoint's liveness).
        const auto from = static_cast<NodeId>(rng.next_below(n));
        auto to = static_cast<NodeId>(rng.next_below(n));
        if (to == from) to = static_cast<NodeId>((to + 1) % n);
        table.publish(from, to, random_metrics(rng, now));
        inc.apply_update(from, to);
      }
      scratch.relax_all(src, k, now);
      compare_all_labels(inc, scratch, n, k);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Incremental updates must not silently degrade into full recomputes:
// a single republished entry in a quiet corner of a larger table
// re-relaxes a bounded neighborhood, not every label.
TEST(PathEngineIncremental, SingleUpdateTouchesBoundedWork) {
  const NodeId n = 60;
  RouterConfig cfg;
  LinkStateTable table(n);
  LinkMetrics m;
  m.latency = Duration::millis(40);
  m.has_latency = true;
  m.samples = 100;
  m.published = TimePoint::epoch();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      // Node 41 is a poor relay (lossy egress), so its label never
      // feeds round-2 parents and its neighborhood stays small.
      m.loss = a == 41 ? 0.5 : 0.01;
      table.publish(a, b, m);
    }
  }
  PathEngine engine(table, cfg);
  engine.relax_all(0, 2, TimePoint::epoch());
  const std::uint64_t full_edges = engine.stats().edges_relaxed;

  // Make (40, 41) the best ingress to 41, then worsen it again: the
  // second update invalidates 41's recorded parent, forcing one label
  // rescan plus its round-2 ripple — a bounded neighborhood, not the
  // full table.
  m.loss = 0.001;
  table.publish(40, 41, m);
  engine.apply_update(40, 41);
  ASSERT_EQ(engine.loss_parent(1, 41), 40);
  m.loss = 0.02;
  table.publish(40, 41, m);
  engine.reset_stats();
  engine.apply_update(40, 41);
  EXPECT_GT(engine.stats().labels_rescanned, 0u);
  EXPECT_LT(engine.stats().edges_relaxed, full_edges / 4);
}

}  // namespace
}  // namespace ronpath
