#include "fault/injector.h"

#include <gtest/gtest.h>

#include "core/testbed.h"
#include "fault/scenarios.h"
#include "util/rng.h"

namespace ronpath {
namespace {

TimePoint at_s(std::int64_t s) { return TimePoint::epoch() + Duration::seconds(s); }

Topology small_topo(std::size_t n = 12) {
  Topology full = testbed_2003();
  std::vector<Site> subset(full.sites().begin(), full.sites().begin() + static_cast<long>(n));
  return Topology(std::move(subset));
}

TEST(FaultInjector, SiteScopeSelectsComponents) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.down_site(2, at_s(100), Duration::seconds(50), FaultScope::kSiteAccess);
  const FaultInjector inj(sched, topo, Duration::hours(1));

  const TimePoint inside = at_s(120);
  EXPECT_TRUE(inj.component_down(topo.site_index(2, SiteComp::kUp), inside));
  EXPECT_TRUE(inj.component_down(topo.site_index(2, SiteComp::kDown), inside));
  EXPECT_FALSE(inj.component_down(topo.site_index(2, SiteComp::kProvOut), inside));
  EXPECT_FALSE(inj.component_down(topo.site_index(2, SiteComp::kProvIn), inside));
  // Other sites untouched.
  EXPECT_FALSE(inj.component_down(topo.site_index(3, SiteComp::kUp), inside));
  // Window boundaries: [start, end).
  EXPECT_FALSE(inj.component_down(topo.site_index(2, SiteComp::kUp), at_s(100) - Duration::nanos(1)));
  EXPECT_TRUE(inj.component_down(topo.site_index(2, SiteComp::kUp), at_s(100)));
  EXPECT_FALSE(inj.component_down(topo.site_index(2, SiteComp::kUp), at_s(150)));
}

TEST(FaultInjector, SiteAllCoversAccessAndProvider) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.down_site(1, at_s(10), Duration::seconds(10));
  const FaultInjector inj(sched, topo, Duration::hours(1));
  for (SiteComp c : {SiteComp::kUp, SiteComp::kDown, SiteComp::kProvOut, SiteComp::kProvIn}) {
    EXPECT_TRUE(inj.component_down(topo.site_index(1, c), at_s(15)));
  }
  EXPECT_EQ(inj.faulted_component_count(), 4u);
}

TEST(FaultInjector, LinkScopeIsDirectional) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.down_link(0, 1, at_s(10), Duration::seconds(10));
  const FaultInjector inj(sched, topo, Duration::hours(1));
  EXPECT_TRUE(inj.component_down(topo.core_index(0, 1), at_s(15)));
  EXPECT_FALSE(inj.component_down(topo.core_index(1, 0), at_s(15)));
}

TEST(FaultInjector, PeriodicFaultsExpandToHorizon) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.flap_link(0, 1, Duration::seconds(120), Duration::seconds(15));
  const FaultInjector inj(sched, topo, Duration::seconds(600));
  const std::size_t link = topo.core_index(0, 1);
  // Occurrences at 120, 240, 360, 480 (each 15 s long); not before the
  // first period mark, not between activations.
  EXPECT_FALSE(inj.component_down(link, at_s(60)));
  for (int k = 1; k <= 4; ++k) {
    EXPECT_TRUE(inj.component_down(link, at_s(120 * k + 5))) << k;
    EXPECT_FALSE(inj.component_down(link, at_s(120 * k + 20))) << k;
  }
}

TEST(FaultInjector, NodeFaultTablesAreIndependent) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.blackhole_probes(3, at_s(10), Duration::seconds(10));
  sched.lsa_loss(4, at_s(10), Duration::seconds(10));
  sched.crash(5, at_s(10), Duration::seconds(10));
  const FaultInjector inj(sched, topo, Duration::hours(1));
  const TimePoint t = at_s(15);
  EXPECT_TRUE(inj.probe_blackhole(3, t));
  EXPECT_FALSE(inj.lsa_suppressed(3, t));
  EXPECT_FALSE(inj.node_crashed(3, t));
  EXPECT_TRUE(inj.lsa_suppressed(4, t));
  EXPECT_TRUE(inj.node_crashed(5, t));
  EXPECT_FALSE(inj.probe_blackhole(5, t));
  // No injected component faults at all.
  EXPECT_EQ(inj.faulted_component_count(), 0u);
}

TEST(FaultInjector, OverlappingWindowsMerge) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.down_link(0, 1, at_s(10), Duration::seconds(20));
  sched.down_link(0, 1, at_s(20), Duration::seconds(20));
  const FaultInjector inj(sched, topo, Duration::hours(1));
  const std::size_t link = topo.core_index(0, 1);
  for (int s = 10; s < 40; ++s) EXPECT_TRUE(inj.component_down(link, at_s(s))) << s;
  EXPECT_FALSE(inj.component_down(link, at_s(40)));
}

TEST(FaultInjector, RejectsOutOfTopologyIds) {
  const Topology topo = small_topo(4);
  FaultSchedule site_sched;
  site_sched.down_site(4, at_s(0), Duration::seconds(1));
  EXPECT_THROW(FaultInjector(site_sched, topo, Duration::hours(1)), std::runtime_error);
  FaultSchedule node_sched;
  node_sched.crash(17, at_s(0), Duration::seconds(1));
  EXPECT_THROW(FaultInjector(node_sched, topo, Duration::hours(1)), std::runtime_error);
  FaultSchedule link_sched;
  link_sched.down_link(0, 9, at_s(0), Duration::seconds(1));
  EXPECT_THROW(FaultInjector(link_sched, topo, Duration::hours(1)), std::runtime_error);
}

// ----------------------------------------------------------- network hook

TEST(NetworkFaultHook, ComponentBlackoutDropsAsInjected) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.down_site(1, at_s(600), Duration::seconds(300));
  const FaultInjector inj(sched, topo, Duration::hours(2));
  Network net(topo, NetConfig::profile_2003(), Duration::hours(2), Rng(7));
  net.set_fault_hook(&inj);

  // During the blackout nothing reaches site 1 from anywhere.
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    const auto r = net.transmit(PathSpec{0, 1, kDirectVia}, at_s(610 + i));
    delivered += r.delivered ? 1 : 0;
  }
  EXPECT_EQ(delivered, 0);
  EXPECT_GT(net.stats().dropped_injected, 0);

  // Before and after the window the path works as usual.
  int ok = 0;
  for (int i = 0; i < 100; ++i) {
    ok += net.transmit(PathSpec{0, 1, kDirectVia}, at_s(910 + i)).delivered ? 1 : 0;
  }
  EXPECT_GT(ok, 90);
}

TEST(NetworkFaultHook, ProbeBlackholeSparesData) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.blackhole_probes(0, at_s(600), Duration::seconds(300));
  const FaultInjector inj(sched, topo, Duration::hours(2));
  Network net(topo, NetConfig::profile_2003(), Duration::hours(2), Rng(7));
  net.set_fault_hook(&inj);

  int data_ok = 0;
  for (int i = 0; i < 200; ++i) {
    const TimePoint t = at_s(610 + i);
    // Every control probe touching node 0 dies, deterministically, with
    // the injected cause; data on the same path is untouched.
    const auto probe = net.transmit(PathSpec{0, 1, kDirectVia}, t, TrafficClass::kProbe);
    EXPECT_FALSE(probe.delivered);
    EXPECT_EQ(probe.cause, DropCause::kInjected);
    const auto reverse = net.transmit(PathSpec{1, 0, kDirectVia}, t, TrafficClass::kProbe);
    EXPECT_FALSE(reverse.delivered);
    data_ok += net.transmit(PathSpec{0, 1, kDirectVia}, t, TrafficClass::kData).delivered ? 1 : 0;
  }
  EXPECT_GT(data_ok, 190);  // only organic loss
  EXPECT_EQ(net.stats().dropped_injected, 400);

  // Outside the window probes flow again.
  EXPECT_EQ(net.transmit(PathSpec{0, 1, kDirectVia}, at_s(1000), TrafficClass::kProbe).cause ==
                DropCause::kInjected,
            false);
}

TEST(NetworkFaultHook, DetachRestoresCleanPath) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.down_site(1, at_s(0), Duration::hours(1));
  const FaultInjector inj(sched, topo, Duration::hours(2));
  Network net(topo, NetConfig::profile_2003(), Duration::hours(2), Rng(7));
  net.set_fault_hook(&inj);
  EXPECT_FALSE(net.transmit(PathSpec{0, 1, kDirectVia}, at_s(10)).delivered);
  net.set_fault_hook(nullptr);
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    ok += net.transmit(PathSpec{0, 1, kDirectVia}, at_s(11 + i)).delivered ? 1 : 0;
  }
  EXPECT_GT(ok, 45);
}

// ------------------------------------------------------- canonical suite

TEST(Scenarios, AllCanonicalScenariosParseAndCompile) {
  const Topology topo = small_topo();
  for (const Scenario& s : canonical_scenarios()) {
    std::string error;
    const auto sched = FaultSchedule::parse(s.dsl, &error);
    ASSERT_TRUE(sched.has_value()) << s.name << ": " << error;
    EXPECT_FALSE(sched->empty()) << s.name;
    EXPECT_NO_THROW(FaultInjector(*sched, topo, Duration::hours(2))) << s.name;
  }
  EXPECT_NE(find_scenario("single-site-blackout"), nullptr);
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(Scenarios, OneShotScenariosMatchSharedTimeline) {
  for (const Scenario& s : canonical_scenarios()) {
    const auto sched = FaultSchedule::parse(s.dsl);
    ASSERT_TRUE(sched.has_value()) << s.name;
    for (const FaultSpec& f : sched->faults()) {
      if (f.periodic()) continue;
      EXPECT_EQ(f.start, kFaultStart) << s.name;
      EXPECT_EQ(f.duration, kFaultDuration) << s.name;
    }
  }
}

TEST(FaultInjector, MergedWindowCounterCountsFolds) {
  const Topology topo = small_topo();
  FaultSchedule sched;
  sched.down_link(0, 1, at_s(10), Duration::seconds(20));   // 10..30
  sched.down_link(0, 1, at_s(20), Duration::seconds(20));   // overlaps -> fold
  sched.crash(2, at_s(0), Duration::seconds(30));           // 0..30
  sched.crash(2, at_s(10), Duration::seconds(30));          // overlaps -> fold
  sched.crash(2, at_s(100), Duration::seconds(5));          // disjoint, no fold
  const FaultInjector inj(sched, topo, Duration::hours(1));
  EXPECT_EQ(inj.merged_window_count(), 2);
}

TEST(FaultInjector, CanonicalScenariosHaveNoMergedWindows) {
  // The report header's merge warning stays silent for the canonical
  // suite; a nonzero count here would change pinned golden output.
  const Topology topo = small_topo();
  for (const Scenario& s : canonical_scenarios()) {
    const auto sched = FaultSchedule::parse(s.dsl);
    ASSERT_TRUE(sched.has_value()) << s.name;
    const FaultInjector inj(*sched, topo, Duration::hours(2));
    EXPECT_EQ(inj.merged_window_count(), 0) << s.name;
  }
}

}  // namespace
}  // namespace ronpath
