// QuantileSketch correctness pins.
//
// The sketch's contract is a *relative* error bound: for any quantile q,
// the reported value is within alpha of the exact order statistic. The
// tests check that bound against exact quantiles on adversarial
// distributions (heavy tails, many decades of dynamic range), that
// merging is exact (merge(N sketches) == one sketch fed the union), and
// that snapshot round-trips reproduce the sketch bit-for-bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "measure/perceived.h"
#include "measure/quantile_sketch.h"
#include "snapshot/codec.h"
#include "util/rng.h"

namespace ronpath {
namespace {

Duration exact_quantile(std::vector<Duration> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  return values[rank];
}

void expect_within_alpha(const QuantileSketch& sketch, const std::vector<Duration>& values,
                         double q, double alpha) {
  const double exact = static_cast<double>(exact_quantile(values, q).count_nanos());
  const double approx = static_cast<double>(sketch.quantile(q).count_nanos());
  // The sketch guarantees |approx - v| <= alpha * v for SOME sample v
  // whose rank brackets q; against the exact order statistic that means
  // a 2*alpha window is always safe (one alpha of bucket width, one of
  // rank slack on repeated values).
  EXPECT_NEAR(approx, exact, 2.0 * alpha * exact)
      << "q=" << q << " exact=" << exact << " approx=" << approx;
}

TEST(QuantileSketch, RelativeErrorBoundOnHeavyTail) {
  const double alpha = 0.01;
  QuantileSketch sketch(alpha);
  std::vector<Duration> values;
  Rng rng(7);
  // Log-uniform over 6 decades: 1 us .. 1 s, the worst case for a
  // fixed-width histogram and the design case for log buckets.
  for (int i = 0; i < 20000; ++i) {
    const double log_ns = 3.0 + 6.0 * rng.next_double();
    const auto nanos = static_cast<std::int64_t>(std::pow(10.0, log_ns));
    values.push_back(Duration::nanos(nanos));
    sketch.add(values.back());
  }
  ASSERT_EQ(sketch.count(), values.size());
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    expect_within_alpha(sketch, values, q, alpha);
  }
}

TEST(QuantileSketch, RelativeErrorBoundOnLatencyLikeMixture) {
  const double alpha = 0.01;
  QuantileSketch sketch(alpha);
  std::vector<Duration> values;
  Rng rng(11);
  // Bimodal latency: ~30 ms direct path plus a 5% slow mode near 400 ms
  // (the overlay-detour shape whose p99 sits in the minority mode).
  for (int i = 0; i < 50000; ++i) {
    const bool slow = rng.next_double() < 0.05;
    const double ms = slow ? 350.0 + 100.0 * rng.next_double() : 20.0 + 20.0 * rng.next_double();
    values.push_back(Duration::nanos(static_cast<std::int64_t>(ms * 1e6)));
    sketch.add(values.back());
  }
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    expect_within_alpha(sketch, values, q, alpha);
  }
}

TEST(QuantileSketch, MergeEqualsUnion) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.01);
  QuantileSketch all(0.01);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const Duration d = Duration::nanos(1000 + static_cast<std::int64_t>(rng.next_below(1u << 30)));
    ((i % 2 == 0) ? a : b).add(d);
    all.add(d);
  }
  a.merge(b);
  ASSERT_EQ(a.count(), all.count());
  // Merging is bucket-wise addition, so the merged sketch must agree
  // with the union sketch *exactly*, not just within alpha.
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.quantile(q).count_nanos(), all.quantile(q).count_nanos()) << "q=" << q;
  }
}

TEST(QuantileSketch, EmptySketchReturnsZero) {
  QuantileSketch sketch(0.01);
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.quantile(0.99).count_nanos(), 0);
}

TEST(QuantileSketch, SnapshotRoundTripIsExact) {
  QuantileSketch sketch(0.02);
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    sketch.add(Duration::micros(1 + static_cast<std::int64_t>(rng.next_below(1000000))));
  }
  snap::Encoder e;
  sketch.save_state(e);

  QuantileSketch restored(0.02);
  snap::Decoder d(e.bytes());
  restored.restore_state(d);
  d.expect_done();

  EXPECT_EQ(restored.count(), sketch.count());
  EXPECT_EQ(restored.bucket_count(), sketch.bucket_count());
  for (const double q : {0.1, 0.5, 0.99, 0.999}) {
    EXPECT_EQ(restored.quantile(q).count_nanos(), sketch.quantile(q).count_nanos());
  }
  std::vector<std::string> violations;
  restored.check_invariants(violations);
  EXPECT_TRUE(violations.empty());
}

TEST(ClassMetrics, SloAttainmentAndBurstAccounting) {
  ClassMetrics m;
  // 8 delivered in SLO, 1 delivered late, 1 lost; one 1-long burst.
  for (int i = 0; i < 8; ++i) m.note_packet(true, Duration::millis(30), true);
  m.note_packet(true, Duration::millis(900), false);
  m.note_packet(false, Duration::zero(), false);
  m.note_loss_burst(1);

  EXPECT_EQ(m.sent(), 10u);
  EXPECT_EQ(m.delivered(), 9u);
  EXPECT_DOUBLE_EQ(m.loss_pct(), 10.0);
  EXPECT_DOUBLE_EQ(m.slo_attainment_pct(), 80.0);
  EXPECT_DOUBLE_EQ(m.mean_burst_len(), 1.0);
  EXPECT_EQ(m.bursts(), 1u);
}

TEST(ClassMetrics, MosRewardsLowLossAndPunishesBursts) {
  ClassMetrics clean;
  for (int i = 0; i < 1000; ++i) clean.note_packet(true, Duration::millis(30), true);

  ClassMetrics bursty;
  for (int i = 0; i < 900; ++i) bursty.note_packet(true, Duration::millis(30), true);
  for (int i = 0; i < 100; ++i) bursty.note_packet(false, Duration::zero(), false);
  for (int i = 0; i < 20; ++i) bursty.note_loss_burst(5);

  const Duration slo = Duration::millis(150);
  EXPECT_GT(clean.mos(slo), 4.4);
  EXPECT_LT(bursty.mos(slo), 3.0);
  EXPECT_GE(bursty.mos(slo), 1.0);
  // Same loss spread over isolated drops hurts less than 5-long bursts.
  ClassMetrics isolated;
  for (int i = 0; i < 900; ++i) isolated.note_packet(true, Duration::millis(30), true);
  for (int i = 0; i < 100; ++i) {
    isolated.note_packet(false, Duration::zero(), false);
    isolated.note_loss_burst(1);
  }
  EXPECT_GT(isolated.mos(slo), bursty.mos(slo));
}

}  // namespace
}  // namespace ronpath
