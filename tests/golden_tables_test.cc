// Golden-value tolerance tests for the paper tables.
//
// Short quick-mode runs (2 simulated hours, seed 42 — exactly what the
// bench binaries' --quick flag executes) are asserted against checked-in
// reference values. The runs are deterministic, so the tolerances are not
// statistical: they absorb only platform-level float noise. Any change to
// the underlay, estimator, router, or aggregator that shifts behavior
// moves these metrics by the order of their cross-seed spread (~±1 loss
// percentage point on a 2-hour run), far outside the tolerance — so drift
// fails CI here instead of silently shifting the reproduction.
//
// If a change intentionally alters behavior, rerun
//   bench_table5_loss --quick   and   bench_table7_ronwide --quick
// and update the constants below in the same commit.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/experiment.h"
#include "measure/report.h"
#include "routing/schemes.h"

namespace ronpath {
namespace {

// Tolerances, in the units of each column.
constexpr double kLossTol = 0.25;   // loss percentages (values ~0.3-4)
constexpr double kClpTol = 10.0;    // conditional loss percentage
constexpr double kLatTol = 6.0;     // ms
constexpr double kProbesRelTol = 0.01;

struct GoldenRow {
  PairScheme scheme;
  double lp1;
  double totlp;
  std::optional<double> clp;
  double lat_ms;
};

const LossTableRow& find_row(const std::vector<LossTableRow>& rows, PairScheme s) {
  for (const auto& r : rows) {
    if (r.scheme == s) return r;
  }
  ADD_FAILURE() << "scheme missing from table";
  static const LossTableRow kEmpty{};
  return kEmpty;
}

void expect_rows(const std::vector<LossTableRow>& rows, const std::vector<GoldenRow>& golden) {
  for (const auto& g : golden) {
    const LossTableRow& r = find_row(rows, g.scheme);
    EXPECT_NEAR(r.lp1, g.lp1, kLossTol) << r.name << " 1lp";
    EXPECT_NEAR(r.totlp, g.totlp, kLossTol) << r.name << " totlp";
    if (g.clp) {
      ASSERT_TRUE(r.clp.has_value()) << r.name << " clp missing";
      EXPECT_NEAR(*r.clp, *g.clp, kClpTol) << r.name << " clp";
    }
    EXPECT_NEAR(r.lat_ms, g.lat_ms, kLatTol) << r.name << " lat";
  }
}

TEST(GoldenTables, Table5Ron2003Quick) {
  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRon2003;
  cfg.duration = Duration::hours(2);
  cfg.seed = 42;
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_NEAR(static_cast<double>(res.probes), 319016.0, kProbesRelTol * 319016.0);

  const auto rows = make_loss_table(*res.agg, ron2003_report_rows());
  expect_rows(rows, {
      {PairScheme::kDirect, 0.59, 0.59, std::nullopt, 55.68},
      {PairScheme::kLat, 0.61, 0.61, std::nullopt, 46.69},
      {PairScheme::kLoss, 0.57, 0.57, std::nullopt, 61.06},
      {PairScheme::kDirectRand, 0.59, 0.34, 58.55, 52.73},
      {PairScheme::kLatLoss, 0.61, 0.35, 56.79, 45.98},
      {PairScheme::kDirectDirect, 0.64, 0.49, 76.08, 55.18},
      {PairScheme::kDd10ms, 0.62, 0.44, 70.33, 55.77},
      {PairScheme::kDd20ms, 0.56, 0.39, 69.37, 55.10},
  });

  // The qualitative Table 5 orderings the paper's conclusions rest on.
  const auto& dd = find_row(rows, PairScheme::kDirectDirect);
  const auto& dr = find_row(rows, PairScheme::kDirectRand);
  EXPECT_GT(*dd.clp, *dr.clp) << "same-path clp must exceed random second path";
  EXPECT_LT(dr.totlp, dr.lp1) << "two copies must beat one";
}

TEST(GoldenTables, Table7RonWideQuick) {
  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRonWide;
  cfg.duration = Duration::hours(2);
  cfg.seed = 42;
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_NEAR(static_cast<double>(res.probes), 180379.0, kProbesRelTol * 180379.0);

  const auto rows = make_loss_table(*res.agg, ronwide_report_rows());
  expect_rows(rows, {
      {PairScheme::kDirect, 1.61, 1.61, std::nullopt, 113.59},
      {PairScheme::kRand, 3.80, 3.80, std::nullopt, 228.61},
      {PairScheme::kLat, 1.50, 1.50, std::nullopt, 101.73},
      {PairScheme::kLoss, 1.05, 1.05, std::nullopt, 131.15},
      {PairScheme::kDirectDirect, 1.54, 1.15, 74.42, 111.98},
      {PairScheme::kRandRand, 3.79, 0.87, 22.88, 170.37},
      {PairScheme::kDirectRand, 1.65, 0.58, 35.33, 113.62},
      {PairScheme::kLatLoss, 1.37, 0.64, 46.41, 102.35},
  });

  // Qualitative shape of Table 7.
  const auto& rnd = find_row(rows, PairScheme::kRand);
  const auto& dir = find_row(rows, PairScheme::kDirect);
  const auto& rr = find_row(rows, PairScheme::kRandRand);
  const auto& dd = find_row(rows, PairScheme::kDirectDirect);
  EXPECT_GT(rnd.lp1, dir.lp1) << "random intermediates are lossier than direct";
  EXPECT_GT(rnd.lat_ms, dir.lat_ms + 20) << "random detours pay latency";
  EXPECT_LT(*rr.clp, *dd.clp) << "disjoint paths are closer to independent";
}

}  // namespace
}  // namespace ronpath
