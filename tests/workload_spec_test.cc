// WorkloadSpec DSL parsing and the deterministic traffic matrix.
//
// The parser's contract is the strict-parsing sweep's contract: every
// numeric field is a full-token parse that rejects garbage, non-finite
// values ("inf"/"nan" — std::from_chars happily reads both) and
// out-of-range values at parse time, with fault-DSL style
// "line N, col C" diagnostics. The traffic matrix must be a pure
// function of (spec, node count, window, rng stream): byte-stable
// across runs and independent of anything policy- or shard-related.

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"
#include "workload/spec.h"
#include "workload/traffic.h"

namespace ronpath {
namespace {

std::string parse_error(std::string_view text) {
  std::string err;
  const auto spec = WorkloadSpec::parse(text, &err);
  EXPECT_FALSE(spec.has_value()) << "expected parse failure for: " << text;
  return err;
}

TEST(WorkloadSpec, DefaultsValidate) {
  const WorkloadSpec spec = WorkloadSpec::defaults();
  EXPECT_EQ(spec.validate(), "");
  double mix = 0.0;
  for (const ClassSpec& cs : spec.classes) mix += cs.mix;
  EXPECT_NEAR(mix, 1.0, 1e-12);
}

TEST(WorkloadSpec, ParsesFullSpec) {
  const char* text =
      "# reference workload\n"
      "population 250\n"
      "peak-hour 20\n"
      "trough 0.5\n"
      "tz-spread 3\n"
      "flows-per-user-hour 0.8\n"
      "flow-packets 25\n"
      "access-capacity 128   # KB/s\n"
      "hot-pair 2 3 weight 4\n"
      "class voip mix 0.3 rate 40 bytes 200 slo-latency 120ms slo-loss 0.5%\n"
      "class web mix 0.3\n";
  std::string err;
  const auto spec = WorkloadSpec::parse(text, &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_DOUBLE_EQ(spec->population, 250.0);
  EXPECT_EQ(spec->peak_hour, 20);
  EXPECT_DOUBLE_EQ(spec->trough, 0.5);
  EXPECT_DOUBLE_EQ(spec->access_bytes_per_s, 128.0 * 1024.0);
  ASSERT_EQ(spec->hot_pairs.size(), 2u);  // defaults() pair + the parsed one
  EXPECT_EQ(spec->hot_pairs[1].src, 2);
  EXPECT_EQ(spec->hot_pairs[1].dst, 3);
  const ClassSpec& voip = spec->classes[static_cast<std::size_t>(ServiceClass::kVoip)];
  EXPECT_DOUBLE_EQ(voip.mix, 0.3);
  EXPECT_DOUBLE_EQ(voip.rate_pps, 40.0);
  EXPECT_EQ(voip.slo_latency, Duration::millis(120));
  EXPECT_DOUBLE_EQ(voip.slo_loss_pct, 0.5);
}

TEST(WorkloadSpec, RejectsGarbageNumbersWithLineAndColumn) {
  EXPECT_EQ(parse_error("population abc\n"), "line 1, col 12: bad number \"abc\"");
  EXPECT_EQ(parse_error("trough 0.5\npopulation 12x\n"),
            "line 2, col 12: bad number \"12x\"");
  EXPECT_EQ(parse_error("population\n"), "line 1, col 11: expected a number after 'population'");
}

TEST(WorkloadSpec, RejectsNonFiniteValues) {
  // std::from_chars parses these happily; the spec layer must not.
  EXPECT_EQ(parse_error("population inf\n"), "line 1, col 12: non-finite value \"inf\"");
  EXPECT_EQ(parse_error("tz-spread nan\n"), "line 1, col 11: non-finite value \"nan\"");
  EXPECT_EQ(parse_error("class voip slo-loss inf%\n"),
            "line 1, col 21: non-finite value \"inf%\"");
}

TEST(WorkloadSpec, RejectsNegativeAndOutOfRangeValues) {
  EXPECT_EQ(parse_error("population -5\n"), "line 1, col 12: value -5 out of range");
  EXPECT_EQ(parse_error("peak-hour 24\n"), "line 1, col 11: value 24 out of range");
  EXPECT_EQ(parse_error("class voip rate -1\n"), "line 1, col 17: value -1 out of range");
  EXPECT_EQ(parse_error("class voip slo-loss 150%\n"),
            "line 1, col 21: value 150% out of range");
}

TEST(WorkloadSpec, RejectsStructuralErrors) {
  EXPECT_EQ(parse_error("frobnicate 3\n"), "line 1, col 1: unknown directive \"frobnicate\"");
  EXPECT_EQ(parse_error("class audio mix 0.2\n"),
            "line 1, col 7: unknown class \"audio\" (want voip|video|web|bulk)");
  EXPECT_EQ(parse_error("class voip latency 5\n"),
            "line 1, col 12: unknown class field \"latency\" "
            "(want mix|rate|bytes|slo-latency|slo-loss)");
  EXPECT_EQ(parse_error("population 5 6\n"), "line 1, col 14: trailing token \"6\"");
  EXPECT_EQ(parse_error("hot-pair 3 3 weight 2\n"),
            "line 1, col 12: hot-pair src and dst must differ");
  EXPECT_EQ(parse_error("class voip slo-latency 5parsecs\n"),
            "line 1, col 24: bad duration \"5parsecs\" (want e.g. 150ms, 2s)");
}

TEST(WorkloadSpec, SemanticValidationRunsAfterParsing) {
  // Syntactically fine, semantically broken: mixes no longer sum to 1.
  const std::string err = parse_error("class voip mix 0.9\n");
  EXPECT_NE(err.find("class mixes must sum to 1"), std::string::npos) << err;
  EXPECT_EQ(err.find("line "), 0u) << err;
}

TEST(WorkloadSpec, CapacityFractionIsTheFigure6Axis) {
  const WorkloadSpec spec = WorkloadSpec::defaults();
  const ClassSpec& video = spec.classes[static_cast<std::size_t>(ServiceClass::kVideo)];
  // 30 pps x 1200 B = 36 KB/s of a 64 KB/s access link: the fat flow
  // whose duplicate does not fit (2y > 1) but whose FEC overhead does.
  const double y = video.capacity_fraction(spec.access_bytes_per_s);
  EXPECT_NEAR(y, 36000.0 / 65536.0, 1e-12);
  EXPECT_GT(2.0 * y, 1.0);
  EXPECT_LT(y * 1.5, 1.0);
}

// ------------------------------------------------------------- traffic

TEST(TrafficMatrix, DiurnalFactorStaysInBand) {
  const WorkloadSpec spec = WorkloadSpec::defaults();
  for (int site = 0; site < 12; ++site) {
    for (int h = 0; h < 48; ++h) {
      const double f = diurnal_factor(spec, static_cast<NodeId>(site),
                                      TimePoint::epoch() + Duration::hours(h));
      EXPECT_GE(f, spec.trough - 1e-12);
      EXPECT_LE(f, 1.0 + 1e-12);
    }
  }
  // The peak hour is the maximum for the unshifted site.
  const double peak = diurnal_factor(spec, 0, TimePoint::epoch() + Duration::hours(14));
  const double off = diurnal_factor(spec, 0, TimePoint::epoch() + Duration::hours(2));
  EXPECT_GT(peak, off);
  EXPECT_NEAR(peak, 1.0, 1e-9);
}

TEST(TrafficMatrix, ByteStableAcrossConstructions) {
  const WorkloadSpec spec = WorkloadSpec::defaults();
  const TimePoint start = TimePoint::epoch() + Duration::minutes(30);
  const TimePoint end = start + Duration::minutes(25);
  const TrafficMatrix a(spec, 12, start, end, Rng(42).fork("workload"));
  const TrafficMatrix b(spec, 12, start, end, Rng(42).fork("workload"));
  ASSERT_EQ(a.flows().size(), b.flows().size());
  ASSERT_GT(a.flows().size(), 100u) << "reference spec should generate a real workload";
  for (std::size_t i = 0; i < a.flows().size(); ++i) {
    const Flow& fa = a.flows()[i];
    const Flow& fb = b.flows()[i];
    EXPECT_EQ(fa.src, fb.src);
    EXPECT_EQ(fa.dst, fb.dst);
    EXPECT_EQ(fa.start, fb.start);
    EXPECT_EQ(fa.packets, fb.packets);
    EXPECT_EQ(fa.cls, fb.cls);
    EXPECT_EQ(fa.interval, fb.interval);
  }
  EXPECT_EQ(a.total_packets(), b.total_packets());
}

TEST(TrafficMatrix, FlowsAreSortedAndInWindow) {
  const WorkloadSpec spec = WorkloadSpec::defaults();
  const TimePoint start = TimePoint::epoch() + Duration::minutes(30);
  const TimePoint end = start + Duration::minutes(25);
  const TrafficMatrix m(spec, 12, start, end, Rng(7).fork("workload"));
  TimePoint prev = TimePoint::epoch();
  for (const Flow& f : m.flows()) {
    EXPECT_GE(f.start, start);
    EXPECT_LT(f.start, end);
    EXPECT_GE(f.start, prev) << "flows must be sorted by start time";
    prev = f.start;
    EXPECT_NE(f.src, f.dst);
    EXPECT_LT(f.src, 12);
    EXPECT_LT(f.dst, 12);
    EXPECT_GE(f.packets, 1);
  }
}

TEST(TrafficMatrix, HotPairConcentratesLoad) {
  WorkloadSpec spec = WorkloadSpec::defaults();  // 8x weight on 0 -> 1
  // Put site 0 at its diurnal peak during the window (the default
  // 14:00 peak leaves a 30-minute-epoch window deep in the trough, where
  // site 0 starts too few flows for a stable fraction).
  spec.peak_hour = 0;
  spec.tz_spread_hours = 0.0;
  spec.population = 800.0;
  const TimePoint start = TimePoint::epoch() + Duration::minutes(30);
  const TimePoint end = start + Duration::minutes(25);
  const TrafficMatrix m(spec, 12, start, end, Rng(42).fork("workload"));
  std::size_t hot = 0;
  std::size_t from0 = 0;
  for (const Flow& f : m.flows()) {
    if (f.src == 0) {
      ++from0;
      if (f.dst == 1) ++hot;
    }
  }
  ASSERT_GT(from0, 50u);
  // With weight 8 on one of 11 destinations, ~42% of site 0's flows go
  // to site 1 in expectation, vs ~9% unweighted.
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(from0), 0.25);
}

}  // namespace
}  // namespace ronpath
