// Strict argument parsing across the bench binaries — the regression
// test for the atoll/strtod bugfix sweep.
//
// Every bench must reject non-numeric --seed (formerly a silent
// std::atoll 0 that quietly changed the experiment) and the perf-gated
// benches must reject non-numeric, non-positive --max-regress (formerly
// a silent strtod 0.0 that turned a typo into an always-failing or
// disabled CI gate). The contract is a hard exit 2 before any work runs.
//
// The benches are spawned as real subprocesses, located relative to
// this test binary (build/tests/.. -> build/bench).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

std::string bench_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return {};
  path.resize(slash);                      // .../build/tests
  const std::size_t parent = path.rfind('/');
  if (parent == std::string::npos) return {};
  return path.substr(0, parent) + "/bench";  // .../build/bench
}

bool exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && (st.st_mode & S_IXUSR) != 0;
}

// Runs `exe args...` with output discarded; returns the exit status or
// -1 when the process did not exit normally.
int run_bench(const std::string& exe, const std::string& args) {
  const std::string cmd = "'" + exe + "' " + args + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return -1;
  return WEXITSTATUS(rc);
}

void expect_rejects(const std::string& name, const std::string& args) {
  const std::string exe = bench_dir() + "/" + name;
  ASSERT_TRUE(exists(exe)) << exe << " not built; build all targets before running ctest";
  EXPECT_EQ(run_bench(exe, args), 2) << name << " " << args << ": expected exit 2";
}

// The benches the original atoll sweep fixed, plus the perf benches.
const char* kSeedBenches[] = {
    "bench_hybrid_sweetspot", "bench_ablation_shared_bottleneck", "bench_failover_time",
    "bench_fec_spread",       "bench_recovery_latency",           "bench_ablation_path_depth",
    "bench_ablation_burst_gap", "bench_hotpath",                  "bench_scale",
    "bench_workload",
};

TEST(BenchStrictArgs, NonNumericSeedExitsTwo) {
  for (const char* name : kSeedBenches) {
    expect_rejects(name, "--seed banana");
    expect_rejects(name, "--seed 12x");
  }
}

TEST(BenchStrictArgs, MissingSeedValueExitsTwo) {
  for (const char* name : kSeedBenches) {
    expect_rejects(name, "--seed");
  }
}

// --max-regress guards a CI gate: garbage, zero and negative thresholds
// must all exit 2 (strtod's silent 0.0 would disable or invert it).
const char* kRegressBenches[] = {"bench_hotpath", "bench_scale", "bench_workload"};

TEST(BenchStrictArgs, NonNumericMaxRegressExitsTwo) {
  for (const char* name : kRegressBenches) {
    expect_rejects(name, "--max-regress abc");
    expect_rejects(name, "--max-regress 1.5x");
  }
}

TEST(BenchStrictArgs, NonPositiveMaxRegressExitsTwo) {
  for (const char* name : kRegressBenches) {
    expect_rejects(name, "--max-regress 0");
    expect_rejects(name, "--max-regress -2");
    expect_rejects(name, "--max-regress inf");
    expect_rejects(name, "--max-regress nan");
  }
}

TEST(BenchStrictArgs, UnknownFlagExitsTwo) {
  for (const char* name : kRegressBenches) {
    expect_rejects(name, "--definitely-not-a-flag");
  }
}

}  // namespace
