#include "routing/schemes.h"

#include <gtest/gtest.h>

#include <set>

namespace ronpath {
namespace {

TEST(Schemes, RegistryCoversAllEnumerators) {
  EXPECT_EQ(all_schemes().size(), 14u);
  for (const auto& spec : all_schemes()) {
    EXPECT_FALSE(spec.name.empty());
    // Spec is stored at its enumerator slot.
    EXPECT_EQ(&scheme_spec(spec.scheme), &spec);
  }
}

TEST(Schemes, SinglePacketSpecs) {
  for (PairScheme s : {PairScheme::kDirect, PairScheme::kLat, PairScheme::kLoss,
                       PairScheme::kRand}) {
    const auto& spec = scheme_spec(s);
    EXPECT_FALSE(spec.two_packets());
    EXPECT_DOUBLE_EQ(spec.redundancy(), 1.0);
    EXPECT_EQ(spec.gap, Duration::zero());
  }
}

TEST(Schemes, TwoPacketSpecs) {
  for (PairScheme s : {PairScheme::kDirectRand, PairScheme::kLatLoss,
                       PairScheme::kDirectDirect, PairScheme::kDd10ms, PairScheme::kDd20ms,
                       PairScheme::kRandRand, PairScheme::kDirectLat, PairScheme::kDirectLoss,
                       PairScheme::kRandLat, PairScheme::kRandLoss}) {
    const auto& spec = scheme_spec(s);
    EXPECT_TRUE(spec.two_packets()) << spec.name;
    EXPECT_DOUBLE_EQ(spec.redundancy(), 2.0);
  }
}

TEST(Schemes, DdFamilyReusesPath) {
  EXPECT_TRUE(scheme_spec(PairScheme::kDirectDirect).second_same_path);
  EXPECT_TRUE(scheme_spec(PairScheme::kDd10ms).second_same_path);
  EXPECT_TRUE(scheme_spec(PairScheme::kDd20ms).second_same_path);
  EXPECT_FALSE(scheme_spec(PairScheme::kDirectRand).second_same_path);
}

TEST(Schemes, DdGaps) {
  EXPECT_EQ(scheme_spec(PairScheme::kDirectDirect).gap, Duration::zero());
  EXPECT_EQ(scheme_spec(PairScheme::kDd10ms).gap, Duration::millis(10));
  EXPECT_EQ(scheme_spec(PairScheme::kDd20ms).gap, Duration::millis(20));
}

TEST(Schemes, CopyTactics) {
  const auto& dr = scheme_spec(PairScheme::kDirectRand);
  EXPECT_EQ(dr.first, RouteTag::kDirect);
  EXPECT_EQ(*dr.second, RouteTag::kRand);
  // lat loss: first copy is the lat-routed one (Table 5 footnote: lat* is
  // inferred from the first packet of lat loss).
  const auto& ll = scheme_spec(PairScheme::kLatLoss);
  EXPECT_EQ(ll.first, RouteTag::kLat);
  EXPECT_EQ(*ll.second, RouteTag::kLoss);
}

TEST(Schemes, Ron2003ProbeSetMatchesPaper) {
  const auto set = ron2003_probe_set();
  EXPECT_EQ(set.size(), 6u);
  const std::set<PairScheme> s(set.begin(), set.end());
  EXPECT_TRUE(s.count(PairScheme::kLoss));
  EXPECT_TRUE(s.count(PairScheme::kDirectRand));
  EXPECT_TRUE(s.count(PairScheme::kLatLoss));
  EXPECT_TRUE(s.count(PairScheme::kDirectDirect));
  EXPECT_TRUE(s.count(PairScheme::kDd10ms));
  EXPECT_TRUE(s.count(PairScheme::kDd20ms));
  // direct and lat are inferred, not probed.
  EXPECT_FALSE(s.count(PairScheme::kDirect));
  EXPECT_FALSE(s.count(PairScheme::kLat));
}

TEST(Schemes, RonwideProbeSetMatchesTable7) {
  const auto set = ronwide_probe_set();
  EXPECT_EQ(set.size(), 12u);
  const std::set<PairScheme> s(set.begin(), set.end());
  EXPECT_TRUE(s.count(PairScheme::kDirect));
  EXPECT_TRUE(s.count(PairScheme::kRand));
  EXPECT_TRUE(s.count(PairScheme::kRandRand));
  EXPECT_TRUE(s.count(PairScheme::kRandLat));
  EXPECT_TRUE(s.count(PairScheme::kRandLoss));
  EXPECT_FALSE(s.count(PairScheme::kDd10ms));
  EXPECT_FALSE(s.count(PairScheme::kDd20ms));
}

TEST(Schemes, RonnarrowIsThreeMostPromising) {
  const auto set = ronnarrow_probe_set();
  ASSERT_EQ(set.size(), 3u);
  const std::set<PairScheme> s(set.begin(), set.end());
  EXPECT_TRUE(s.count(PairScheme::kLoss));
  EXPECT_TRUE(s.count(PairScheme::kDirectRand));
  EXPECT_TRUE(s.count(PairScheme::kLatLoss));
}

TEST(Schemes, ReportRowsOrderedLikeTables) {
  const auto rows = ron2003_report_rows();
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0], PairScheme::kDirect);
  EXPECT_EQ(rows[1], PairScheme::kLat);
  EXPECT_EQ(rows[2], PairScheme::kLoss);
  EXPECT_EQ(rows.back(), PairScheme::kDd20ms);
  EXPECT_EQ(ronwide_report_rows().size(), 12u);
}

TEST(Schemes, InferenceSources) {
  EXPECT_EQ(inference_source(PairScheme::kDirect), PairScheme::kDirectRand);
  EXPECT_EQ(inference_source(PairScheme::kLat), PairScheme::kLatLoss);
  EXPECT_FALSE(inference_source(PairScheme::kLoss).has_value());
  EXPECT_FALSE(inference_source(PairScheme::kDirectRand).has_value());
}

}  // namespace
}  // namespace ronpath
