#include "measure/report.h"

#include <gtest/gtest.h>

namespace ronpath {
namespace {

TimePoint at(double seconds) { return TimePoint::epoch() + Duration::from_seconds_f(seconds); }

ProbeRecord rec2(PairScheme scheme, NodeId src, NodeId dst, TimePoint sent, bool fl, bool sl,
                 Duration lat1, Duration lat2) {
  ProbeRecord r;
  r.scheme = scheme;
  r.src = src;
  r.dst = dst;
  r.copy_count = 2;
  r.copies[0].sent = sent;
  r.copies[0].delivered = !fl;
  r.copies[0].latency = lat1;
  r.copies[1].sent = sent;
  r.copies[1].delivered = !sl;
  r.copies[1].latency = lat2;
  return r;
}

ProbeRecord rec1(PairScheme scheme, NodeId src, NodeId dst, TimePoint sent, bool lost,
                 Duration lat) {
  ProbeRecord r;
  r.scheme = scheme;
  r.src = src;
  r.dst = dst;
  r.copy_count = 1;
  r.copies[0].sent = sent;
  r.copies[0].delivered = !lost;
  r.copies[0].latency = lat;
  return r;
}

class ReportFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 4;

  ReportFixture()
      : agg_(kNodes, std::vector<PairScheme>{PairScheme::kLoss, PairScheme::kDirectRand,
                                             PairScheme::kLatLoss},
             AggregatorConfig{}) {}

  void heartbeat(double t) {
    for (NodeId i = 0; i < kNodes; ++i) agg_.note_activity(i, at(t));
  }

  Aggregator agg_;
};

TEST_F(ReportFixture, LossTableInferredRows) {
  double t = 1.0;
  for (int i = 0; i < 200; ++i) {
    heartbeat(t);
    // direct rand: first copy lost 10% of the time.
    agg_.add(rec2(PairScheme::kDirectRand, 0, 1, at(t), i % 10 == 0, false,
                  Duration::millis(50), Duration::millis(70)));
    // lat loss: first copy lost 5% of the time.
    agg_.add(rec2(PairScheme::kLatLoss, 0, 1, at(t), i % 20 == 0, false, Duration::millis(45),
                  Duration::millis(55)));
    agg_.add(rec1(PairScheme::kLoss, 0, 1, at(t), false, Duration::millis(58)));
    t += 1.0;
  }
  agg_.finish(at(10'000));

  static constexpr PairScheme kRows[] = {PairScheme::kDirect, PairScheme::kLat,
                                         PairScheme::kLoss, PairScheme::kDirectRand};
  const auto rows = make_loss_table(agg_, kRows);
  ASSERT_EQ(rows.size(), 4u);

  // direct* inferred from direct rand first copies.
  EXPECT_TRUE(rows[0].inferred);
  EXPECT_EQ(rows[0].name, "direct*");
  EXPECT_DOUBLE_EQ(rows[0].lp1, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].totlp, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].lat_ms, 50.0);
  EXPECT_FALSE(rows[0].lp2.has_value());

  // lat* inferred from lat loss first copies.
  EXPECT_TRUE(rows[1].inferred);
  EXPECT_DOUBLE_EQ(rows[1].lp1, 5.0);
  EXPECT_DOUBLE_EQ(rows[1].lat_ms, 45.0);

  // loss probed directly.
  EXPECT_FALSE(rows[2].inferred);
  EXPECT_EQ(rows[2].name, "loss");
  EXPECT_DOUBLE_EQ(rows[2].lp1, 0.0);
  EXPECT_DOUBLE_EQ(rows[2].lat_ms, 58.0);

  // direct rand full columns; method latency is min(50, 70) = 50 when the
  // first copy arrives, 70 when only the second does.
  EXPECT_FALSE(rows[3].inferred);
  ASSERT_TRUE(rows[3].lp2.has_value());
  EXPECT_DOUBLE_EQ(*rows[3].lp2, 0.0);
  ASSERT_TRUE(rows[3].clp.has_value());
  EXPECT_DOUBLE_EQ(*rows[3].clp, 0.0);
  EXPECT_NEAR(rows[3].lat_ms, (180 * 50.0 + 20 * 70.0) / 200.0, 1e-9);
}

TEST_F(ReportFixture, PerPathLossRequiresMinSamples) {
  double t = 1.0;
  for (int i = 0; i < 60; ++i) {
    heartbeat(t);
    agg_.add(rec2(PairScheme::kDirectRand, 0, 1, at(t), i < 6, false, Duration::millis(50),
                  Duration::millis(70)));
    t += 1.0;
  }
  // Path 2->3 gets only a handful of samples: excluded by min_samples.
  for (int i = 0; i < 5; ++i) {
    heartbeat(t);
    agg_.add(rec2(PairScheme::kDirectRand, 2, 3, at(t), false, false, Duration::millis(50),
                  Duration::millis(70)));
    t += 1.0;
  }
  agg_.finish(at(10'000));
  const auto losses = per_path_loss_percent(agg_, PairScheme::kDirectRand, 50);
  ASSERT_EQ(losses.size(), 1u);
  EXPECT_DOUBLE_EQ(losses[0], 10.0);
}

TEST_F(ReportFixture, PerPathClpOnlyPathsWithFirstLosses) {
  double t = 1.0;
  for (int i = 0; i < 100; ++i) {
    heartbeat(t);
    agg_.add(rec2(PairScheme::kDirectRand, 0, 1, at(t), i < 10, i < 5, Duration::millis(50),
                  Duration::millis(70)));
    agg_.add(rec2(PairScheme::kDirectRand, 2, 3, at(t), false, false, Duration::millis(50),
                  Duration::millis(70)));
    t += 1.0;
  }
  agg_.finish(at(10'000));
  const auto clps = per_path_clp_percent(agg_, PairScheme::kDirectRand);
  ASSERT_EQ(clps.size(), 1u);
  EXPECT_DOUBLE_EQ(clps[0], 50.0);
}

// Clock-offset cancellation: forward/reverse means are averaged, so a
// constant receiver offset cancels exactly (Section 4.1's method).
TEST_F(ReportFixture, PairLatencyCancelsClockSkew) {
  const Duration skew = Duration::millis(30);
  double t = 1.0;
  for (int i = 0; i < 50; ++i) {
    heartbeat(t);
    // True latency 50 ms both ways; node 1's clock is +30 ms.
    agg_.add(rec1(PairScheme::kLoss, 0, 1, at(t), false, Duration::millis(50) + skew));
    agg_.add(rec1(PairScheme::kLoss, 1, 0, at(t), false, Duration::millis(50) - skew));
    t += 1.0;
  }
  agg_.finish(at(10'000));
  const auto lats = per_pair_latency_ms(agg_, PairScheme::kLoss, /*first_copy=*/true, 10);
  ASSERT_EQ(lats.size(), 1u);
  EXPECT_NEAR(lats[0], 50.0, 1e-9);
}

TEST_F(ReportFixture, WindowLossCdfIsMonotone) {
  double t = 1.0;
  for (int i = 0; i < 5000; ++i) {
    heartbeat(t);
    agg_.add(rec1(PairScheme::kLoss, 0, 1, at(t), i % 37 == 0, Duration::millis(40)));
    t += 2.0;
  }
  agg_.finish(at(50'000));
  const auto cdf = window_loss_cdf(agg_, PairScheme::kLoss);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].f, cdf[i - 1].f);
    EXPECT_GT(cdf[i].x, cdf[i - 1].x);
  }
  EXPECT_NEAR(cdf.back().f, 1.0, 1e-9);
}

TEST_F(ReportFixture, HighLossTableShape) {
  double t = 1.0;
  for (int i = 0; i < 100; ++i) {
    heartbeat(t);
    agg_.add(rec1(PairScheme::kLoss, 0, 1, at(t), i < 30, Duration::millis(40)));
    t += 30.0;
  }
  agg_.finish(at(100'000));
  static constexpr PairScheme kSchemes[] = {PairScheme::kLoss};
  const auto table = make_high_loss_table(agg_, kSchemes);
  ASSERT_EQ(table.schemes.size(), 1u);
  // Counts decrease (weakly) with threshold.
  for (std::size_t i = 1; i < kHighLossThresholds; ++i) {
    EXPECT_LE(table.counts[i][0], table.counts[i - 1][0]);
  }
  EXPECT_GT(table.total_windows[0], 0);
}

TEST_F(ReportFixture, BaseStats) {
  double t = 1.0;
  for (int i = 0; i < 1000; ++i) {
    heartbeat(t);
    agg_.add(rec1(PairScheme::kLoss, 0, 1, at(t), i % 100 == 0, Duration::millis(40)));
    t += 1.0;
  }
  agg_.finish(at(10'000));
  const auto base = make_base_stats(agg_, PairScheme::kLoss);
  EXPECT_NEAR(base.loss_percent, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(base.mean_latency_ms, 40.0);
  EXPECT_GT(base.worst_hour_loss_percent, 0.0);
}

}  // namespace
}  // namespace ronpath
