#include "overlay/estimator.h"

#include <gtest/gtest.h>

namespace ronpath {
namespace {

TEST(WindowLossEstimator, EmptyIsOptimistic) {
  WindowLossEstimator e(100);
  EXPECT_DOUBLE_EQ(e.loss(), 0.0);
  EXPECT_EQ(e.samples(), 0u);
}

TEST(WindowLossEstimator, AveragesWindow) {
  WindowLossEstimator e(10);
  for (int i = 0; i < 7; ++i) e.record(false);
  for (int i = 0; i < 3; ++i) e.record(true);
  EXPECT_DOUBLE_EQ(e.loss(), 0.3);
}

TEST(WindowLossEstimator, OldSamplesExpire) {
  WindowLossEstimator e(4);
  e.record(true);
  e.record(true);
  e.record(true);
  e.record(true);
  EXPECT_DOUBLE_EQ(e.loss(), 1.0);
  for (int i = 0; i < 4; ++i) e.record(false);
  EXPECT_DOUBLE_EQ(e.loss(), 0.0);
}

TEST(WindowLossEstimator, PartialWindowUsesCount) {
  WindowLossEstimator e(100);
  e.record(true);
  e.record(false);
  EXPECT_DOUBLE_EQ(e.loss(), 0.5);
}

TEST(EwmaLossEstimator, FirstSampleSetsValue) {
  EwmaLossEstimator e(0.1);
  e.record(true);
  EXPECT_DOUBLE_EQ(e.loss(), 1.0);
}

TEST(EwmaLossEstimator, DecaysTowardRecent) {
  EwmaLossEstimator e(0.5);
  e.record(true);   // 1.0
  e.record(false);  // 0.5
  e.record(false);  // 0.25
  EXPECT_DOUBLE_EQ(e.loss(), 0.25);
}

TEST(LatencyEstimator, UnmeasuredIsMax) {
  LatencyEstimator e;
  EXPECT_FALSE(e.has_estimate());
  EXPECT_EQ(e.latency(), Duration::max());
}

TEST(LatencyEstimator, EwmaSmoothing) {
  LatencyEstimator e(0.5);
  e.record(Duration::millis(100));
  EXPECT_EQ(e.latency(), Duration::millis(100));
  e.record(Duration::millis(200));
  EXPECT_EQ(e.latency(), Duration::millis(150));
}

TEST(LinkEstimator, ProbeUpdatesLossAndLatency) {
  LinkEstimator e(100, 0.1);
  e.record_probe(false, Duration::millis(40), TimePoint::epoch());
  EXPECT_DOUBLE_EQ(e.loss(), 0.0);
  EXPECT_EQ(e.latency(), Duration::millis(40));
  e.record_probe(true, Duration::zero(), TimePoint::epoch() + Duration::seconds(15));
  EXPECT_DOUBLE_EQ(e.loss(), 0.5);
  // Lost probes do not pollute the latency estimate.
  EXPECT_EQ(e.latency(), Duration::millis(40));
}

// The paper's down-detection: four consecutive lost follow-ups mark the
// link down; any success recovers it.
TEST(LinkEstimator, DownAfterFourFollowupLosses) {
  LinkEstimator e(100, 0.1);
  e.record_probe(true, Duration::zero(), TimePoint::epoch());
  for (int i = 0; i < 3; ++i) {
    e.record_followup(true, TimePoint::epoch() + Duration::seconds(i + 1));
    EXPECT_FALSE(e.down()) << i;
  }
  e.record_followup(true, TimePoint::epoch() + Duration::seconds(4));
  EXPECT_TRUE(e.down());
}

TEST(LinkEstimator, SuccessfulFollowupResets) {
  LinkEstimator e(100, 0.1);
  for (int i = 0; i < 3; ++i) e.record_followup(true, TimePoint::epoch());
  e.record_followup(false, TimePoint::epoch());
  for (int i = 0; i < 3; ++i) e.record_followup(true, TimePoint::epoch());
  EXPECT_FALSE(e.down());
  e.record_followup(true, TimePoint::epoch());
  EXPECT_TRUE(e.down());
}

TEST(LinkEstimator, SuccessfulProbeClearsDown) {
  LinkEstimator e(100, 0.1);
  for (int i = 0; i < 4; ++i) e.record_followup(true, TimePoint::epoch());
  ASSERT_TRUE(e.down());
  e.record_probe(false, Duration::millis(30), TimePoint::epoch() + Duration::seconds(20));
  EXPECT_FALSE(e.down());
}

TEST(LinkEstimator, FollowupsDoNotEnterLossWindow) {
  LinkEstimator e(100, 0.1);
  e.record_probe(true, Duration::zero(), TimePoint::epoch());
  for (int i = 0; i < 4; ++i) e.record_followup(true, TimePoint::epoch());
  EXPECT_EQ(e.samples(), 1u);
  EXPECT_DOUBLE_EQ(e.loss(), 1.0);
}

TEST(LinkEstimator, EwmaModeChangesScoring) {
  EstimatorConfig cfg;
  cfg.loss_window = 100;
  cfg.use_ewma_loss = true;
  cfg.loss_ewma_alpha = 0.5;
  LinkEstimator e(cfg);
  e.record_probe(true, Duration::zero(), TimePoint::epoch());
  e.record_probe(false, Duration::millis(10), TimePoint::epoch());
  // EWMA(0.5): 1.0 then 0.5; the window would say 0.5 too...
  EXPECT_DOUBLE_EQ(e.loss(), 0.5);
  e.record_probe(false, Duration::millis(10), TimePoint::epoch());
  // EWMA: 0.25; window would say 1/3.
  EXPECT_DOUBLE_EQ(e.loss(), 0.25);
}

TEST(LinkEstimator, WindowModeIsDefault) {
  LinkEstimator e(EstimatorConfig{});
  e.record_probe(true, Duration::zero(), TimePoint::epoch());
  e.record_probe(false, Duration::millis(10), TimePoint::epoch());
  e.record_probe(false, Duration::millis(10), TimePoint::epoch());
  EXPECT_NEAR(e.loss(), 1.0 / 3.0, 1e-12);
}

TEST(LinkEstimator, LossRunsBucketedByLength) {
  LinkEstimator e(100, 0.1);
  auto probe = [&](bool lost) { e.record_probe(lost, Duration::millis(10), TimePoint::epoch()); };
  // Run of 1, run of 3, run of 7 (bucketed as 6+), unterminated run of 2.
  probe(true);
  probe(false);
  for (int i = 0; i < 3; ++i) probe(true);
  probe(false);
  for (int i = 0; i < 7; ++i) probe(true);
  probe(false);
  probe(true);
  probe(true);
  const auto& runs = e.loss_runs();
  EXPECT_EQ(runs[0], 1);  // length 1
  EXPECT_EQ(runs[1], 0);
  EXPECT_EQ(runs[2], 1);  // length 3
  EXPECT_EQ(runs[5], 1);  // length 7 -> 6+
  // The trailing run of 2 has not completed: not yet counted.
  std::int64_t total = 0;
  for (auto r : runs) total += r;
  EXPECT_EQ(total, 3);
}

TEST(LinkEstimator, FollowupsDoNotAffectLossRuns) {
  LinkEstimator e(100, 0.1);
  e.record_probe(true, Duration::zero(), TimePoint::epoch());
  for (int i = 0; i < 4; ++i) e.record_followup(false, TimePoint::epoch());
  e.record_probe(false, Duration::millis(5), TimePoint::epoch());
  EXPECT_EQ(e.loss_runs()[0], 1);
}

TEST(LinkEstimator, LastUpdateTracksLatest) {
  LinkEstimator e(100, 0.1);
  const TimePoint t1 = TimePoint::epoch() + Duration::seconds(5);
  e.record_probe(false, Duration::millis(10), t1);
  EXPECT_EQ(e.last_update(), t1);
  const TimePoint t2 = t1 + Duration::seconds(1);
  e.record_followup(false, t2);
  EXPECT_EQ(e.last_update(), t2);
}

}  // namespace
}  // namespace ronpath
