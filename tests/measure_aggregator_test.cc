#include "measure/aggregator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ronpath {
namespace {

TimePoint at(double seconds) { return TimePoint::epoch() + Duration::from_seconds_f(seconds); }

AggregatorConfig test_config() {
  AggregatorConfig cfg;
  cfg.buffer_horizon = Duration::minutes(3);
  return cfg;
}

ProbeRecord two_copy_record(PairScheme scheme, NodeId src, NodeId dst, TimePoint sent,
                            bool first_lost, bool second_lost,
                            Duration lat1 = Duration::millis(50),
                            Duration lat2 = Duration::millis(60)) {
  ProbeRecord r;
  r.scheme = scheme;
  r.src = src;
  r.dst = dst;
  r.copy_count = 2;
  r.copies[0].sent = sent;
  r.copies[0].delivered = !first_lost;
  r.copies[0].latency = lat1;
  r.copies[1].sent = sent;
  r.copies[1].delivered = !second_lost;
  r.copies[1].latency = lat2;
  return r;
}

ProbeRecord one_copy_record(PairScheme scheme, NodeId src, NodeId dst, TimePoint sent,
                            bool lost, Duration lat = Duration::millis(40)) {
  ProbeRecord r;
  r.scheme = scheme;
  r.src = src;
  r.dst = dst;
  r.copy_count = 1;
  r.copies[0].sent = sent;
  r.copies[0].delivered = !lost;
  r.copies[0].latency = lat;
  return r;
}

// Drives activity for all nodes so liveness never triggers.
void heartbeat_all(Aggregator& agg, std::size_t n, TimePoint t) {
  for (NodeId i = 0; i < n; ++i) agg.note_activity(i, t);
}

TEST(Aggregator, ExactPairColumns) {
  const std::vector<PairScheme> schemes = {PairScheme::kDirectRand};
  Aggregator agg(4, schemes, test_config());
  double t = 1.0;
  auto feed = [&](bool fl, bool sl, int count) {
    for (int i = 0; i < count; ++i) {
      heartbeat_all(agg, 4, at(t));
      agg.add(two_copy_record(PairScheme::kDirectRand, 0, 1, at(t), fl, sl));
      t += 1.0;
    }
  };
  feed(false, false, 960);
  feed(true, false, 20);
  feed(false, true, 12);
  feed(true, true, 8);
  agg.finish(at(t + 600));

  const auto& st = agg.scheme_stats(PairScheme::kDirectRand);
  EXPECT_EQ(st.pair.pairs(), 1000);
  EXPECT_DOUBLE_EQ(st.pair.first_loss_percent(), 2.8);
  EXPECT_DOUBLE_EQ(st.pair.second_loss_percent(), 2.0);
  EXPECT_DOUBLE_EQ(st.pair.total_loss_percent(), 0.8);
  EXPECT_NEAR(*st.pair.conditional_loss_percent(), 100.0 * 8 / 28, 1e-9);
}

TEST(Aggregator, MethodLatencyIsEarliestCopy) {
  const std::vector<PairScheme> schemes = {PairScheme::kDirectRand};
  Aggregator agg(2, schemes, test_config());
  heartbeat_all(agg, 2, at(1));
  // First copy 50 ms, second 60 ms: method = 50.
  agg.add(two_copy_record(PairScheme::kDirectRand, 0, 1, at(1), false, false));
  heartbeat_all(agg, 2, at(2));
  // First lost, second 60: method = 60.
  agg.add(two_copy_record(PairScheme::kDirectRand, 0, 1, at(2), true, false));
  agg.finish(at(1000));
  const auto& st = agg.scheme_stats(PairScheme::kDirectRand);
  EXPECT_EQ(st.method_lat_ms.count(), 2);
  EXPECT_DOUBLE_EQ(st.method_lat_ms.mean(), 55.0);
  EXPECT_DOUBLE_EQ(st.first_lat_ms.mean(), 50.0);
  EXPECT_DOUBLE_EQ(st.second_lat_ms.mean(), 60.0);
}

TEST(Aggregator, SecondCopyGapCountsAgainstMethodLatency) {
  const std::vector<PairScheme> schemes = {PairScheme::kDd10ms};
  Aggregator agg(2, schemes, test_config());
  heartbeat_all(agg, 2, at(1));
  ProbeRecord r = two_copy_record(PairScheme::kDd10ms, 0, 1, at(1), true, false,
                                  Duration::millis(50), Duration::millis(50));
  r.copies[1].sent = at(1) + Duration::millis(10);
  agg.add(r);
  agg.finish(at(1000));
  // Second copy arrives at send+10ms+50ms: effective 60 ms.
  EXPECT_DOUBLE_EQ(agg.scheme_stats(PairScheme::kDd10ms).method_lat_ms.mean(), 60.0);
}

TEST(Aggregator, SingleCopyTotlpEqualsFirstLp) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  Aggregator agg(2, schemes, test_config());
  double t = 1.0;
  for (int i = 0; i < 100; ++i) {
    heartbeat_all(agg, 2, at(t));
    agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(t), i < 5));
    t += 1.0;
  }
  agg.finish(at(1000));
  const auto& st = agg.scheme_stats(PairScheme::kLoss);
  EXPECT_DOUBLE_EQ(st.pair.first_loss_percent(), 5.0);
  EXPECT_DOUBLE_EQ(st.pair.total_loss_percent(), 5.0);
}

TEST(Aggregator, HostFailureFilterDropsRecords) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  Aggregator agg(3, schemes, test_config());
  // Node 2 is silent the whole run -> down; probes TO it are disregarded.
  double t = 1.0;
  for (int i = 0; i < 200; ++i) {
    agg.note_activity(0, at(t));
    agg.note_activity(1, at(t));
    agg.add(one_copy_record(PairScheme::kLoss, 0, 2, at(t), /*lost=*/true));
    agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(t), /*lost=*/false));
    t += 1.0;
  }
  agg.finish(at(2000));
  const auto& st = agg.scheme_stats(PairScheme::kLoss);
  EXPECT_EQ(st.pair.pairs(), 200);  // only the 0->1 probes
  EXPECT_EQ(st.filtered_host_failure, 200);
  EXPECT_DOUBLE_EQ(st.pair.first_loss_percent(), 0.0);
}

TEST(Aggregator, MidRunHostFailureFiltered) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  Aggregator agg(2, schemes, test_config());
  double t = 0.0;
  int losses_committed_window = 0;
  for (int i = 0; i < 3000; ++i) {
    t = i;
    agg.note_activity(0, at(t));
    // Node 1 alive except seconds [1000, 1800).
    const bool node1_up = t < 1000 || t >= 1800;
    if (node1_up) agg.note_activity(1, at(t));
    const bool lost = !node1_up;  // probes to a dead host are lost
    agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(t), lost));
    if (lost && t >= 1090 && t < 1800) ++losses_committed_window;
  }
  agg.finish(at(4000));
  const auto& st = agg.scheme_stats(PairScheme::kLoss);
  // The filter removes probes in [1090, 1800); the first 90 s of the
  // failure leak through as losses (the paper's acknowledged undercount).
  EXPECT_EQ(st.filtered_host_failure, 710);
  EXPECT_EQ(st.pair.first_lost(), 90);
}

TEST(Aggregator, ReceiveHorizonConvertsLateArrivalsToLosses) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  AggregatorConfig cfg = test_config();
  cfg.receive_horizon = Duration::seconds(10);
  Aggregator agg(2, schemes, cfg);
  heartbeat_all(agg, 2, at(1));
  agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(1), false, Duration::seconds(11)));
  heartbeat_all(agg, 2, at(2));
  agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(2), false, Duration::seconds(9)));
  agg.finish(at(1000));
  EXPECT_DOUBLE_EQ(agg.scheme_stats(PairScheme::kLoss).pair.first_loss_percent(), 50.0);
}

TEST(Aggregator, MeasureStartSkipsWarmup) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  AggregatorConfig cfg = test_config();
  cfg.measure_start = at(100);
  Aggregator agg(2, schemes, cfg);
  heartbeat_all(agg, 2, at(50));
  agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(50), true));
  heartbeat_all(agg, 2, at(150));
  agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(150), false));
  agg.finish(at(1000));
  EXPECT_EQ(agg.scheme_stats(PairScheme::kLoss).pair.pairs(), 1);
}

TEST(Aggregator, PerPathStatsSeparated) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  Aggregator agg(3, schemes, test_config());
  double t = 1.0;
  for (int i = 0; i < 100; ++i) {
    heartbeat_all(agg, 3, at(t));
    agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(t), true));
    agg.add(one_copy_record(PairScheme::kLoss, 0, 2, at(t), false));
    t += 1.0;
  }
  agg.finish(at(1000));
  EXPECT_DOUBLE_EQ(agg.path_stats(PairScheme::kLoss, 0, 1).pair.first_loss_percent(), 100.0);
  EXPECT_DOUBLE_EQ(agg.path_stats(PairScheme::kLoss, 0, 2).pair.first_loss_percent(), 0.0);
}

TEST(Aggregator, WindowHistogramCountsWindows) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  Aggregator agg(2, schemes, test_config());
  // 3 full 20-minute windows of 10 probes each on one path: losses 0, 5, 10.
  double t = 0.0;
  const double kWin = 20.0 * 60.0;
  auto window = [&](int losses, double start) {
    for (int i = 0; i < 10; ++i) {
      const double ts = start + i * 10.0;
      heartbeat_all(agg, 2, at(ts));
      agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(ts), i < losses));
    }
  };
  window(0, t);
  window(5, t + kWin);
  window(10, t + 2 * kWin);
  agg.finish(at(4 * kWin));
  const Histogram& h = agg.window_hist(PairScheme::kLoss, /*hourly=*/false);
  EXPECT_EQ(h.total(), 3);
  // One window at 0, one at 0.5, one at 1.0 loss rate.
  EXPECT_NEAR(h.fraction_below(0.25), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(h.fraction_below(0.75), 2.0 / 3.0, 1e-9);
}

TEST(Aggregator, HighLossHourThresholds) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  Aggregator agg(2, schemes, test_config());
  const double kHour = 3600.0;
  auto hour = [&](int losses, int total, double start) {
    for (int i = 0; i < total; ++i) {
      const double ts = start + i * 30.0;
      heartbeat_all(agg, 2, at(ts));
      agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(ts), i < losses));
    }
  };
  hour(0, 100, 0.0);        // 0%
  hour(15, 100, kHour);     // 15%
  hour(45, 100, 2 * kHour); // 45%
  hour(95, 100, 3 * kHour); // 95%
  agg.finish(at(5 * kHour));
  const auto& counts = agg.high_loss_hours(PairScheme::kLoss);
  EXPECT_EQ(agg.total_hour_windows(PairScheme::kLoss), 4);
  EXPECT_EQ(counts[0], 3);  // > 0%
  EXPECT_EQ(counts[1], 3);  // > 10%
  EXPECT_EQ(counts[2], 2);  // > 20%
  EXPECT_EQ(counts[4], 2);  // > 40%
  EXPECT_EQ(counts[5], 1);  // > 50%
  EXPECT_EQ(counts[9], 1);  // > 90%
}

TEST(Aggregator, WorstHourTracksGlobalPeak) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  Aggregator agg(3, schemes, test_config());
  const double kHour = 3600.0;
  // Hour 0: light loss on both paths; hour 1: heavy.
  for (int i = 0; i < 100; ++i) {
    const double ts = i * 30.0;
    heartbeat_all(agg, 3, at(ts));
    agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(ts), i < 2));
    agg.add(one_copy_record(PairScheme::kLoss, 0, 2, at(ts), false));
  }
  for (int i = 0; i < 100; ++i) {
    const double ts = kHour + i * 30.0;
    heartbeat_all(agg, 3, at(ts));
    agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(ts), i < 30));
    agg.add(one_copy_record(PairScheme::kLoss, 0, 2, at(ts), i < 10));
  }
  agg.finish(at(3 * kHour));
  const auto worst = agg.worst_hour(PairScheme::kLoss);
  EXPECT_NEAR(worst.loss_rate, 0.2, 1e-9);  // (30+10)/200
  EXPECT_EQ(worst.start, at(kHour));
}

TEST(Aggregator, LossCauseDecomposition) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  Aggregator agg(2, schemes, test_config());
  double t = 1.0;
  auto lose_with = [&](DropCause cause, bool host, int n) {
    for (int i = 0; i < n; ++i) {
      heartbeat_all(agg, 2, at(t));
      ProbeRecord r = one_copy_record(PairScheme::kLoss, 0, 1, at(t), true);
      r.copies[0].cause = cause;
      r.copies[0].host_drop = host;
      agg.add(r);
      t += 1.0;
    }
  };
  lose_with(DropCause::kBurst, false, 7);
  lose_with(DropCause::kOutage, false, 2);
  lose_with(DropCause::kRandom, false, 1);
  lose_with(DropCause::kNone, true, 3);
  agg.finish(at(5000));
  const auto& st = agg.scheme_stats(PairScheme::kLoss);
  EXPECT_EQ(st.first_loss_by_cause[static_cast<std::size_t>(DropCause::kBurst)], 7);
  EXPECT_EQ(st.first_loss_by_cause[static_cast<std::size_t>(DropCause::kOutage)], 2);
  EXPECT_EQ(st.first_loss_by_cause[static_cast<std::size_t>(DropCause::kRandom)], 1);
  EXPECT_EQ(st.first_loss_host, 3);
}

TEST(Aggregator, BufferingDelaysCommit) {
  const std::vector<PairScheme> schemes = {PairScheme::kLoss};
  Aggregator agg(2, schemes, test_config());
  heartbeat_all(agg, 2, at(1));
  agg.add(one_copy_record(PairScheme::kLoss, 0, 1, at(1), false));
  // Not yet committed: the buffer horizon (3 min) has not passed.
  EXPECT_EQ(agg.scheme_stats(PairScheme::kLoss).pair.pairs(), 0);
  heartbeat_all(agg, 2, at(200));
  EXPECT_EQ(agg.scheme_stats(PairScheme::kLoss).pair.pairs(), 1);
}

}  // namespace
}  // namespace ronpath
