#include "fec/reed_solomon.h"

#include "fec/gf256.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"

namespace ronpath {
namespace {

std::vector<std::vector<std::uint8_t>> random_shards(std::size_t k, std::size_t len, Rng& rng) {
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(len));
  for (auto& shard : data) {
    for (auto& byte : shard) byte = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return data;
}

TEST(ReedSolomon, IdentityTopRows) {
  const ReedSolomon rs(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    const auto row = rs.row(r);
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(row[c], r == c ? 1 : 0) << r << "," << c;
    }
  }
}

TEST(ReedSolomon, AllDataPresentFastPath) {
  Rng rng(1);
  const ReedSolomon rs(3, 2);
  const auto data = random_shards(3, 64, rng);
  auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  const auto out = rs.reconstruct(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(ReedSolomon, ZeroParityEncodesNothing) {
  Rng rng(2);
  const ReedSolomon rs(5, 0);
  const auto data = random_shards(5, 16, rng);
  EXPECT_TRUE(rs.encode(data).empty());
}

using KmCase = std::tuple<int, int>;

class RsErasures : public ::testing::TestWithParam<KmCase> {};

// Exhaustively erase every subset of size <= m and reconstruct.
TEST_P(RsErasures, EveryRecoverablePatternReconstructs) {
  const auto [ki, mi] = GetParam();
  const auto k = static_cast<std::size_t>(ki);
  const auto m = static_cast<std::size_t>(mi);
  const std::size_t n = k + m;
  ASSERT_LE(n, 12u);
  Rng rng(100 + static_cast<std::uint64_t>(ki * 16 + mi));
  const ReedSolomon rs(k, m);
  const auto data = random_shards(k, 32, rng);
  auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> full = data;
  full.insert(full.end(), parity.begin(), parity.end());

  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const auto erased = static_cast<std::size_t>(__builtin_popcount(mask));
    if (erased > m) continue;
    auto shards = full;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) shards[i].clear();
    }
    const auto out = rs.reconstruct(shards);
    ASSERT_TRUE(out.has_value()) << "k=" << k << " m=" << m << " mask=" << mask;
    EXPECT_EQ(*out, data) << "k=" << k << " m=" << m << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallCodes, RsErasures,
                         ::testing::Values(KmCase{1, 1}, KmCase{2, 1}, KmCase{2, 2},
                                           KmCase{3, 2}, KmCase{4, 2}, KmCase{5, 1},
                                           KmCase{4, 4}, KmCase{5, 3}, KmCase{8, 4},
                                           KmCase{6, 6}));

TEST(ReedSolomon, TooManyErasuresFails) {
  Rng rng(3);
  const ReedSolomon rs(4, 2);
  const auto data = random_shards(4, 8, rng);
  auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  shards[0].clear();
  shards[1].clear();
  shards[2].clear();  // 3 erasures, only 2 parity
  EXPECT_FALSE(rs.reconstruct(shards).has_value());
}

TEST(ReedSolomon, MismatchedShardSizesRejected) {
  Rng rng(4);
  const ReedSolomon rs(2, 1);
  const auto data = random_shards(2, 8, rng);
  auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> shards = {data[0], {}, parity[0]};
  shards[2].resize(4);  // wrong length
  EXPECT_FALSE(rs.reconstruct(shards).has_value());
}

TEST(ReedSolomon, WrongShardCountRejected) {
  const ReedSolomon rs(2, 1);
  std::vector<std::vector<std::uint8_t>> shards(2, std::vector<std::uint8_t>(4, 0));
  EXPECT_FALSE(rs.reconstruct(shards).has_value());
}

TEST(ReedSolomon, LargeCodeRandomErasures) {
  Rng rng(5);
  const std::size_t k = 20;
  const std::size_t m = 10;
  const ReedSolomon rs(k, m);
  const auto data = random_shards(k, 256, rng);
  auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> full = data;
  full.insert(full.end(), parity.begin(), parity.end());
  for (int trial = 0; trial < 50; ++trial) {
    auto shards = full;
    // Erase exactly m random shards.
    std::size_t erased = 0;
    while (erased < m) {
      const auto idx = rng.next_below(k + m);
      if (!shards[idx].empty()) {
        shards[idx].clear();
        ++erased;
      }
    }
    const auto out = rs.reconstruct(shards);
    ASSERT_TRUE(out.has_value()) << trial;
    EXPECT_EQ(*out, data);
  }
}

TEST(Gf256Invert, IdentityInverse) {
  std::vector<std::uint8_t> m = {1, 0, 0, 1};
  ASSERT_TRUE(gf256_invert(m, 2));
  EXPECT_EQ(m, (std::vector<std::uint8_t>{1, 0, 0, 1}));
}

TEST(Gf256Invert, SingularDetected) {
  std::vector<std::uint8_t> m = {1, 2, 1, 2};  // rank 1
  EXPECT_FALSE(gf256_invert(m, 2));
}

TEST(Gf256Invert, RandomMatrixRoundTrip) {
  Rng rng(6);
  const std::size_t n = 6;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> m(n * n);
    for (auto& v : m) v = static_cast<std::uint8_t>(rng.next_below(256));
    auto inv = m;
    if (!gf256_invert(inv, n)) continue;  // singular random matrix: skip
    // m * inv must be identity.
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        std::uint8_t acc = 0;
        for (std::size_t i = 0; i < n; ++i) {
          acc = ::ronpath::gf256::add(acc, ::ronpath::gf256::mul(m[r * n + i], inv[i * n + c]));
        }
        EXPECT_EQ(acc, r == c ? 1 : 0);
      }
    }
  }
}

}  // namespace
}  // namespace ronpath
