#include <gtest/gtest.h>

#include <array>

#include "model/bounds.h"
#include "model/design_space.h"
#include "model/fec_analysis.h"
#include "model/overhead.h"

namespace ronpath {
namespace {

// ------------------------------------------------------------------ bounds

TEST(Bounds, ReactiveIsMin) {
  const std::array<double, 4> losses = {0.05, 0.01, 0.2, 0.03};
  EXPECT_DOUBLE_EQ(p_reactive(losses), 0.01);
}

TEST(Bounds, RedundantIndependentIsProduct) {
  const std::array<double, 3> losses = {0.1, 0.2, 0.5};
  EXPECT_DOUBLE_EQ(p_redundant_independent(losses), 0.01);
}

TEST(Bounds, TwoRedundantExpectedSquares) {
  EXPECT_DOUBLE_EQ(p_2redundant_expected(0.0042), 0.0042 * 0.0042);
}

TEST(Bounds, CorrelatedRedundancy) {
  // Paper numbers: direct rand 1lp 0.41%, clp 62.47% -> totlp ~0.26%.
  EXPECT_NEAR(p_2redundant_correlated(0.0041, 0.6247), 0.00256, 1e-5);
}

TEST(Bounds, LossImprovement) {
  EXPECT_NEAR(loss_improvement(0.42, 0.26), 0.38, 0.005);
  EXPECT_DOUBLE_EQ(loss_improvement(0.0, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(loss_improvement(0.5, 0.5), 0.0);
}

// ---------------------------------------------------------------- overhead

TEST(Overhead, ProbingScalesQuadratically) {
  ProbeOverheadParams p10;
  p10.nodes = 10;
  ProbeOverheadParams p20 = p10;
  p20.nodes = 20;
  const double r = probing_bytes_per_sec(p20) / probing_bytes_per_sec(p10);
  EXPECT_GT(r, 3.5);
  EXPECT_LT(r, 4.5);
}

TEST(Overhead, PaperScaleSanity) {
  // 30 nodes at 15 s probing: total probe traffic is modest (tens of KB/s
  // across the mesh).
  ProbeOverheadParams p;
  const double total = probing_bytes_per_sec(p);
  EXPECT_GT(total, 1'000.0);
  EXPECT_LT(total, 100'000.0);
}

TEST(Overhead, ReactiveFactorShrinksWithFlow) {
  ProbeOverheadParams p;
  EXPECT_GT(reactive_overhead_factor(p, 1'000.0), reactive_overhead_factor(p, 100'000.0));
  EXPECT_GT(reactive_overhead_factor(p, 1'000.0), 1.0);
}

TEST(Overhead, CrossoverConsistent) {
  ProbeOverheadParams p;
  const double b = crossover_flow_bytes_per_sec(p, 2.0);
  EXPECT_NEAR(reactive_overhead_factor(p, b), 2.0, 1e-9);
  // Below the crossover, redundancy is cheaper (reactive factor > 2x).
  EXPECT_GT(reactive_overhead_factor(p, b / 2), 2.0);
  EXPECT_LT(reactive_overhead_factor(p, b * 2), 2.0);
}

// ------------------------------------------------------------ design space

TEST(DesignSpace, LimitsRespected) {
  DesignSpaceParams params;
  DesignSpace ds(params);
  // Beyond the best-expected-path limit reactive is infeasible.
  EXPECT_FALSE(ds.reactive_feasible(params.reactive_limit + 0.01, 0.1));
  EXPECT_TRUE(ds.reactive_feasible(params.reactive_limit - 0.01, 0.1));
  // Beyond the independence limit redundancy is infeasible.
  EXPECT_FALSE(ds.redundant_feasible(params.independence_limit + 0.01, 0.1));
  EXPECT_TRUE(ds.redundant_feasible(params.independence_limit - 0.01, 0.1));
}

TEST(DesignSpace, CapacityLimits) {
  DesignSpace ds(DesignSpaceParams{});
  // 2-redundant routing cannot serve flows above half capacity.
  EXPECT_FALSE(ds.redundant_feasible(0.1, 0.6));
  EXPECT_TRUE(ds.redundant_feasible(0.1, 0.45));
  // Reactive capacity shrinks as the improvement requirement grows.
  EXPECT_GT(ds.reactive_capacity_limit(0.0), ds.reactive_capacity_limit(0.6));
}

TEST(DesignSpace, ThinFlowsFavorRedundancy) {
  DesignSpace ds(DesignSpaceParams{});
  EXPECT_FALSE(ds.evaluate(0.3, 0.01).reactive_cheaper);
  EXPECT_TRUE(ds.evaluate(0.3, 0.4).reactive_cheaper);
}

TEST(DesignSpace, RegionsPartitionTheGrid) {
  DesignSpace ds(DesignSpaceParams{});
  const auto grid = ds.grid(21, 21);
  EXPECT_EQ(grid.size(), 441u);
  int reactive = 0;
  int redundant = 0;
  int either = 0;
  int neither = 0;
  for (const auto& pt : grid) {
    switch (pt.region) {
      case SchemeRegion::kReactiveOnly: ++reactive; break;
      case SchemeRegion::kRedundantOnly: ++redundant; break;
      case SchemeRegion::kEither: ++either; break;
      case SchemeRegion::kNeither: ++neither; break;
    }
  }
  // All four regions appear in the paper's figure.
  EXPECT_GT(reactive, 0);
  EXPECT_GT(either, 0);
  EXPECT_GT(neither, 0);
  EXPECT_EQ(reactive + redundant + either + neither, 441);
}

TEST(DesignSpace, RegionNames) {
  EXPECT_EQ(to_string(SchemeRegion::kNeither), "neither");
  EXPECT_EQ(to_string(SchemeRegion::kEither), "either");
}

// ------------------------------------------------------------ FEC analysis

ClpCurve paper_curve() {
  // The paper's dd measurements: 72% at 0 ms, 66% at 10 ms, 65% at 20 ms,
  // decaying to the 0.42% unconditional rate.
  return ClpCurve({{Duration::zero(), 0.72},
                   {Duration::millis(10), 0.66},
                   {Duration::millis(20), 0.65}},
                  0.0042);
}

TEST(ClpCurve, InterpolatesSamples) {
  const ClpCurve c = paper_curve();
  EXPECT_DOUBLE_EQ(c.at(Duration::zero()), 0.72);
  EXPECT_DOUBLE_EQ(c.at(Duration::millis(10)), 0.66);
  EXPECT_NEAR(c.at(Duration::millis(5)), 0.69, 1e-9);
  EXPECT_NEAR(c.at(Duration::millis(15)), 0.655, 1e-9);
}

TEST(ClpCurve, DecaysToFloor) {
  const ClpCurve c = paper_curve();
  EXPECT_LT(c.at(Duration::seconds(5)), 0.01);
  EXPECT_GE(c.at(Duration::seconds(5)), c.unconditional());
}

TEST(ClpCurve, MonotoneDecreasingTail) {
  const ClpCurve c = paper_curve();
  double prev = c.at(Duration::millis(20));
  for (int ms = 40; ms <= 2000; ms += 20) {
    const double cur = c.at(Duration::millis(ms));
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

// Section 5.2's headline: escaping the 70% same-path correlation requires
// spreading FEC over hundreds of milliseconds.
TEST(ClpCurve, DecorrelationGapIsHundredsOfMs) {
  const ClpCurve c = paper_curve();
  const Duration gap = c.decorrelation_gap(0.02);
  EXPECT_GT(gap, Duration::millis(100));
  EXPECT_LT(gap, Duration::seconds(3));
}

TEST(FecFailure, MatchesClosedFormForDuplication) {
  // k=1, m=1 back-to-back: group fails iff both packets lost.
  const ClpCurve c = paper_curve();
  FecSchemeParams scheme;
  scheme.data_packets = 1;
  scheme.parity_packets = 1;
  scheme.packet_spacing = Duration::zero();
  const double first = 0.0042;
  const double expected = first * c.at(Duration::zero());
  EXPECT_NEAR(fec_group_failure_probability(c, first, scheme), expected, 1e-12);
}

TEST(FecFailure, DecreasesWithSpacing) {
  const ClpCurve c = paper_curve();
  FecSchemeParams tight;
  tight.data_packets = 5;
  tight.parity_packets = 1;
  tight.packet_spacing = Duration::millis(1);
  FecSchemeParams spread = tight;
  spread.packet_spacing = Duration::millis(400);
  const double pf_tight = fec_group_failure_probability(c, 0.0042, tight);
  const double pf_spread = fec_group_failure_probability(c, 0.0042, spread);
  EXPECT_LT(pf_spread, pf_tight);
}

TEST(FecFailure, MoreParityHelps) {
  const ClpCurve c = paper_curve();
  FecSchemeParams one;
  one.data_packets = 4;
  one.parity_packets = 1;
  one.packet_spacing = Duration::millis(10);
  FecSchemeParams two = one;
  two.parity_packets = 2;
  EXPECT_LT(fec_group_failure_probability(c, 0.0042, two),
            fec_group_failure_probability(c, 0.0042, one));
}

TEST(RequiredSpacing, PaperConclusion) {
  // A 5+1 code protecting a 70%-correlated path needs its packets spread
  // by ~hundreds of ms to approach the independent-loss failure rate -
  // nearly half a second of added recovery delay across the group.
  const ClpCurve c = paper_curve();
  // Independent-loss floor: same group with a flat curve at the base rate.
  const ClpCurve flat({{Duration::zero(), 0.0042}}, 0.0042);
  FecSchemeParams scheme;
  scheme.data_packets = 5;
  scheme.parity_packets = 1;
  scheme.packet_spacing = Duration::zero();
  const double floor = fec_group_failure_probability(flat, 0.0042, scheme);
  const Duration spacing = required_spacing(c, 0.0042, 5, 1, 2.0 * floor);
  EXPECT_GT(spacing, Duration::millis(50));
  EXPECT_LT(spacing, Duration::seconds(2));
}

TEST(RequiredSpacing, UnreachableTargetReturnsMax) {
  const ClpCurve c = paper_curve();
  const Duration spacing =
      required_spacing(c, 0.5, 5, 1, 1e-12, Duration::millis(100));
  EXPECT_EQ(spacing, Duration::millis(100));
}

}  // namespace
}  // namespace ronpath
