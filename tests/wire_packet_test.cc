#include "wire/packet.h"

#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"
#include "wire/bytes.h"

namespace ronpath {
namespace {

ProbePacket sample_packet() {
  ProbePacket p;
  p.type = PacketType::kProbeRequest;
  p.route_tag = RouteTag::kRand;
  p.scheme = PairScheme::kDirectRand;
  p.pair_index = 1;
  p.flags.response = false;
  p.flags.forwarded = true;
  p.probe_id = 0x0123456789ABCDEFull;
  p.src = 3;
  p.dst = 17;
  p.via = 9;
  p.send_ts = TimePoint::epoch() + Duration::millis(1234);
  p.echo_ts = TimePoint::epoch();
  return p;
}

TEST(ByteWriterReader, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x01234567);
  w.u64(0x89ABCDEF01234567ull);
  w.i64(-42);
  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0x01234567u);
  EXPECT_EQ(r.u64(), 0x89ABCDEF01234567ull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReader, ShortBufferSticksError) {
  const std::uint8_t buf[] = {0x01, 0x02};
  ByteReader r(buf);
  (void)r.u32();  // short: flips the sticky error flag
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still erroring
  EXPECT_FALSE(r.exhausted());
}

TEST(ByteReader, BigEndianOnWire) {
  ByteWriter w;
  w.u16(0x0102);
  const auto v = w.view();
  EXPECT_EQ(v[0], 0x01);
  EXPECT_EQ(v[1], 0x02);
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(ProbePacket, EncodeSizeIsFixed) {
  EXPECT_EQ(encode(sample_packet()).size(), kProbePacketWireSize);
}

TEST(ProbePacket, RoundTrip) {
  const ProbePacket p = sample_packet();
  const auto wire = encode(p);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

TEST(ProbePacket, RejectsTruncation) {
  const auto wire = encode(sample_packet());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode(std::span(wire.data(), len)).has_value()) << "len=" << len;
  }
}

TEST(ProbePacket, RejectsTrailingBytes) {
  auto wire = encode(sample_packet());
  wire.push_back(0);
  EXPECT_FALSE(decode(wire).has_value());
}

// Flipping any single bit must be caught (magic/enum validation or CRC).
TEST(ProbePacket, DetectsSingleBitCorruption) {
  const auto wire = encode(sample_packet());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupt = wire;
      corrupt[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(decode(corrupt).has_value()) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(ProbePacket, RejectsBadMagic) {
  auto wire = encode(sample_packet());
  wire[0] = 0x00;
  EXPECT_FALSE(decode(wire).has_value());
}

using SchemeTagCase = std::tuple<int, int, int>;

class PacketRoundTrip : public ::testing::TestWithParam<SchemeTagCase> {};

TEST_P(PacketRoundTrip, AllEnumCombinations) {
  const auto [scheme, tag, pair_index] = GetParam();
  ProbePacket p = sample_packet();
  p.scheme = static_cast<PairScheme>(scheme);
  p.route_tag = static_cast<RouteTag>(tag);
  p.pair_index = static_cast<std::uint8_t>(pair_index);
  const auto decoded = decode(encode(p));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PacketRoundTrip,
                         ::testing::Combine(::testing::Range(0, 14), ::testing::Range(0, 4),
                                            ::testing::Range(0, 2)));

TEST(ProbePacket, RandomizedRoundTrip) {
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    ProbePacket p;
    p.type = static_cast<PacketType>(1 + rng.next_below(3));
    p.route_tag = static_cast<RouteTag>(rng.next_below(4));
    p.scheme = static_cast<PairScheme>(rng.next_below(14));
    p.pair_index = static_cast<std::uint8_t>(rng.next_below(2));
    p.flags.response = rng.bernoulli(0.5);
    p.flags.forwarded = rng.bernoulli(0.5);
    p.probe_id = rng.next_u64();
    p.src = static_cast<NodeId>(rng.next_below(30));
    p.dst = static_cast<NodeId>(rng.next_below(30));
    p.via = rng.bernoulli(0.5) ? kDirectVia : static_cast<NodeId>(rng.next_below(30));
    p.send_ts = TimePoint::from_nanos(static_cast<std::int64_t>(rng.next_below(1'000'000'000)));
    p.echo_ts = TimePoint::from_nanos(static_cast<std::int64_t>(rng.next_below(1'000'000'000)));
    const auto decoded = decode(encode(p));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, p);
  }
}

TEST(EnumNames, RouteTagStrings) {
  EXPECT_EQ(to_string(RouteTag::kDirect), "direct");
  EXPECT_EQ(to_string(RouteTag::kRand), "rand");
  EXPECT_EQ(to_string(RouteTag::kLat), "lat");
  EXPECT_EQ(to_string(RouteTag::kLoss), "loss");
}

TEST(EnumNames, SchemeStringsMatchPaper) {
  EXPECT_EQ(to_string(PairScheme::kDirectRand), "direct rand");
  EXPECT_EQ(to_string(PairScheme::kLatLoss), "lat loss");
  EXPECT_EQ(to_string(PairScheme::kDirectDirect), "direct direct");
  EXPECT_EQ(to_string(PairScheme::kDd10ms), "dd 10 ms");
  EXPECT_EQ(to_string(PairScheme::kDd20ms), "dd 20 ms");
  EXPECT_EQ(to_string(PairScheme::kRandRand), "rand rand");
}

}  // namespace
}  // namespace ronpath
