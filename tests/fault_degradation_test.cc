// Graceful degradation of the control plane under injected faults:
// staleness expiry, degraded-view direct fallback, exponential hold-down,
// and the overlay-level failover / flap-damping behavior they produce.

#include <gtest/gtest.h>

#include "core/testbed.h"
#include "event/scheduler.h"
#include "fault/injector.h"
#include "overlay/overlay.h"
#include "overlay/router.h"
#include "util/rng.h"

namespace ronpath {
namespace {

TimePoint at_s(std::int64_t s) { return TimePoint::epoch() + Duration::seconds(s); }

LinkMetrics metrics(double loss, Duration lat, TimePoint published, bool down = false) {
  LinkMetrics m;
  m.loss = loss;
  m.latency = lat;
  m.has_latency = lat != Duration::max();
  m.down = down;
  m.samples = 100;
  m.published = published;
  return m;
}

void fill(LinkStateTable& t, double loss, Duration lat, TimePoint published) {
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b = 0; b < t.size(); ++b) {
      if (a != b) t.publish(a, b, metrics(loss, lat, published));
    }
  }
}

// ------------------------------------------------------------- staleness

TEST(Degradation, EntryExpiryRules) {
  RouterConfig cfg;
  const LinkMetrics fresh = metrics(0.01, Duration::millis(10), at_s(0));
  // TTL disabled: nothing ever expires, not even a never-published entry.
  EXPECT_FALSE(entry_expired(fresh, cfg, at_s(1'000'000)));
  EXPECT_FALSE(entry_expired(LinkMetrics{}, cfg, at_s(1'000'000)));

  cfg.entry_ttl = Duration::seconds(60);
  EXPECT_FALSE(entry_expired(fresh, cfg, at_s(60)));
  EXPECT_TRUE(entry_expired(fresh, cfg, at_s(61)));
  // Never-published entries are unknown, not optimistic.
  EXPECT_TRUE(entry_expired(LinkMetrics{}, cfg, at_s(0)));
}

TEST(Degradation, ExpiredEntriesEstimateAsUnknown) {
  LinkStateTable t(3);
  fill(t, 0.001, Duration::millis(10), at_s(0));
  RouterConfig cfg;
  cfg.entry_ttl = Duration::seconds(60);
  const PathSpec direct{0, 1, kDirectVia};
  // Fresh view: the measured estimate.
  EXPECT_DOUBLE_EQ(path_loss_estimate(t, direct, cfg, at_s(30)), 0.001);
  EXPECT_EQ(path_latency_estimate(t, direct, cfg, at_s(30)), Duration::millis(10));
  // Stale view: a stale "0.1% loss" must not be trusted forever.
  EXPECT_DOUBLE_EQ(path_loss_estimate(t, direct, cfg, at_s(120)), cfg.unknown_loss);
  EXPECT_EQ(path_latency_estimate(t, direct, cfg, at_s(120)), Duration::max());
  // The historical two-argument overload stays trust-forever.
  EXPECT_DOUBLE_EQ(path_loss_estimate(t, direct), 0.001);
}

TEST(Degradation, UnknownLatencyDoesNotOverflowComposition) {
  LinkStateTable t(4);
  fill(t, 0.0, Duration::millis(10), at_s(0));
  RouterConfig cfg;
  cfg.entry_ttl = Duration::seconds(60);
  // One stale leg poisons the whole composed path to "unknown" instead of
  // wrapping around Duration::max() into a tiny (attractive) latency.
  // 0->2 is the first leg of both the one-hop {0,1,2} and two-hop
  // {0,1,2,3} compositions below.
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(-3600)));
  EXPECT_EQ(path_latency_estimate(t, PathSpec{0, 1, 2}, cfg, at_s(30)), Duration::max());
  EXPECT_EQ(path_latency_estimate(t, PathSpec{0, 1, 2, 3}, cfg, at_s(30)), Duration::max());
}

TEST(Degradation, DegradedViewFallsBackToDirect) {
  LinkStateTable t(4);
  RouterConfig cfg;
  cfg.entry_ttl = Duration::seconds(60);
  // Node 0's own rows are ancient; everyone else's are fresh and report a
  // tempting indirect path.
  fill(t, 0.001, Duration::millis(10), at_s(1000));
  for (NodeId v = 1; v < 4; ++v) t.publish(0, v, metrics(0.0, Duration::millis(1), at_s(0)));

  Router router(0, t, cfg);
  EXPECT_TRUE(router.view_degraded(at_s(1000)));
  EXPECT_TRUE(router.best_loss_path(1, at_s(1000)).path.is_direct());
  EXPECT_TRUE(router.best_lat_path(1, at_s(1000)).path.is_direct());
  // With a fresh view the same table routes normally.
  fill(t, 0.001, Duration::millis(10), at_s(1000));
  EXPECT_FALSE(router.view_degraded(at_s(1000)));
}

// -------------------------------------------------------------- hold-down

TEST(Degradation, HolddownEscalatesExponentially) {
  LinkStateTable t(3);
  RouterConfig cfg;
  cfg.holddown_base = Duration::seconds(30);
  cfg.holddown_max = Duration::minutes(5);
  fill(t, 0.2, Duration::millis(10), at_s(0));
  // Via 2 is clearly better than the lossy direct path.
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(0)));
  t.publish(2, 1, metrics(0.0, Duration::millis(10), at_s(0)));

  Router router(0, t, cfg);
  EXPECT_EQ(router.best_loss_path(1, at_s(0)).path.via, 2u);

  // Strike 1: the incumbent's link goes down -> direct, via banned 30 s.
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(1), /*down=*/true));
  EXPECT_TRUE(router.best_loss_path(1, at_s(1)).path.is_direct());
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(2)));  // link recovers
  EXPECT_TRUE(router.held_down(1, 2, at_s(20)));
  EXPECT_TRUE(router.best_loss_path(1, at_s(20)).path.is_direct());
  EXPECT_FALSE(router.held_down(1, 2, at_s(32)));
  EXPECT_EQ(router.best_loss_path(1, at_s(32)).path.via, 2u);

  // Strike 2: same flap again -> ban doubles to 60 s.
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(33), /*down=*/true));
  EXPECT_TRUE(router.best_loss_path(1, at_s(33)).path.is_direct());
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(34)));
  EXPECT_TRUE(router.held_down(1, 2, at_s(80)));
  EXPECT_FALSE(router.held_down(1, 2, at_s(94)));

  // The flapping via was re-selected at most twice; switch count is
  // bounded by the strikes, not the number of evaluations.
  EXPECT_LE(router.loss_switches(1), 4);
}

TEST(Degradation, HolddownStrikesDecayAfterQuietPeriod) {
  LinkStateTable t(3);
  RouterConfig cfg;
  cfg.holddown_base = Duration::seconds(30);
  cfg.holddown_reset = Duration::minutes(10);
  fill(t, 0.2, Duration::millis(10), at_s(0));
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(0)));
  t.publish(2, 1, metrics(0.0, Duration::millis(10), at_s(0)));

  Router router(0, t, cfg);
  (void)router.best_loss_path(1, at_s(0));
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(1), /*down=*/true));
  (void)router.best_loss_path(1, at_s(1));
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(2)));
  (void)router.best_loss_path(1, at_s(40));  // re-selects via 2

  // A second down event long after holddown_reset starts at strike 1
  // again: ban is 30 s, not 60 s.
  const std::int64_t later = 40 + 11 * 60;
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(later), /*down=*/true));
  (void)router.best_loss_path(1, at_s(later));
  EXPECT_TRUE(router.held_down(1, 2, at_s(later + 29)));
  EXPECT_FALSE(router.held_down(1, 2, at_s(later + 31)));
}

TEST(Degradation, KnobsOffReproducesHistoricalBehavior) {
  LinkStateTable t(3);
  fill(t, 0.2, Duration::millis(10), at_s(0));
  t.publish(0, 2, metrics(0.0, Duration::millis(10), at_s(0)));
  t.publish(2, 1, metrics(0.0, Duration::millis(10), at_s(0)));
  RouterConfig cfg;  // all degradation knobs at their zero defaults
  Router router(0, t, cfg);
  // Epoch-default and explicit-now calls agree: `now` is inert.
  EXPECT_EQ(router.best_loss_path(1).path.via, 2u);
  EXPECT_EQ(router.best_loss_path(1, at_s(1'000'000)).path.via, 2u);
  EXPECT_FALSE(router.view_degraded(at_s(1'000'000)));
  EXPECT_FALSE(router.held_down(1, 2, at_s(1'000'000)));
}

// ----------------------------------------------- overlay-level behavior

struct Sim {
  Topology topo;
  NetConfig net_cfg;
  Scheduler sched;
  Network net;
  OverlayNetwork overlay;

  explicit Sim(const FaultInjector* inj, Duration horizon = Duration::hours(2),
               std::uint64_t seed = 42)
      : topo(make_topo()),
        net_cfg(make_net_cfg()),
        net(topo, net_cfg, horizon, Rng(seed).fork("net")),
        overlay(net, sched, make_overlay_cfg(), Rng(seed).fork("overlay")) {
    overlay.set_fault_injector(inj);
    overlay.start();
  }

  static Topology make_topo() {
    Topology full = testbed_2003();
    std::vector<Site> subset(full.sites().begin(), full.sites().begin() + 6);
    return Topology(std::move(subset));
  }
  static NetConfig make_net_cfg() {
    NetConfig cfg = NetConfig::profile_2003();
    cfg.incidents.clear();  // only the scripted fault perturbs the run
    return cfg;
  }
  static OverlayConfig make_overlay_cfg() {
    OverlayConfig cfg;
    cfg.host_failures_per_month = 0.0;
    cfg.router.entry_ttl = cfg.probe_interval * 5;
    cfg.router.holddown_base = cfg.probe_interval * 2;
    return cfg;
  }
};

// Satellite: router hysteresis under a flapping direct link. Down
// detection -> failover -> recovery, on the estimator's documented
// 15(k-1)..15k s detection scale, with a bounded switch count.
TEST(OverlayDegradation, FailoverFollowsDownDetectionScale) {
  FaultSchedule sched;
  sched.down_link(0, 1, at_s(1200), Duration::seconds(120));
  sched.down_link(1, 0, at_s(1200), Duration::seconds(120));
  const FaultInjector inj(sched, Sim::make_topo(), Duration::hours(1));
  Sim sim(&inj, Duration::hours(1));

  sim.sched.run_until(at_s(1200));
  ASSERT_TRUE(sim.overlay.route(0, 1, RouteTag::kLoss).is_direct());

  // Walk the fault window at 1 s resolution until the router reroutes.
  Duration failover = Duration::max();
  for (int s = 0; s <= 60; ++s) {
    sim.sched.run_until(at_s(1200 + s));
    if (!sim.overlay.route(0, 1, RouteTag::kLoss).is_direct()) {
      failover = Duration::seconds(s);
      break;
    }
  }
  // One probe interval (15 s) to lose a probe, plus the 4 x 1 s follow-up
  // train, plus response slack: well inside 15(k-1)..15k for small k.
  ASSERT_NE(failover, Duration::max());
  EXPECT_GE(failover, Duration::seconds(1));
  EXPECT_LE(failover, Duration::seconds(30));

  // While the fault lasts, the rerouted path actually delivers.
  int ok = 0, sent = 0;
  for (int s = 60; s < 120; s += 2) {
    sim.sched.run_until(at_s(1200 + s));
    const PathSpec p = sim.overlay.route(0, 1, RouteTag::kLoss);
    EXPECT_FALSE(p.is_direct());
    ok += sim.overlay.send(p, at_s(1200 + s)).delivered() ? 1 : 0;
    ++sent;
  }
  EXPECT_GT(ok, sent * 9 / 10);

  // After the fault clears, the chosen route keeps delivering (recovery),
  // whether or not it has moved back to the direct path yet.
  sim.sched.run_until(at_s(1500));
  ok = 0;
  for (int s = 0; s < 60; s += 2) {
    sim.sched.run_until(at_s(1500 + s));
    ok += sim.overlay.send(sim.overlay.route(0, 1, RouteTag::kLoss), at_s(1500 + s)).delivered()
              ? 1
              : 0;
  }
  EXPECT_GT(ok, 27);
}

TEST(OverlayDegradation, FlappingLinkYieldsBoundedSwitches) {
  // 15 s outage every 2 min for 40 min: 20 flap episodes on the direct
  // link. Hysteresis plus hold-down must keep the route from thrashing.
  FaultSchedule sched;
  sched.flap_link(0, 1, Duration::seconds(120), Duration::seconds(15));
  sched.flap_link(1, 0, Duration::seconds(120), Duration::seconds(15));
  const FaultInjector inj(sched, Sim::make_topo(), Duration::minutes(45));
  Sim sim(&inj, Duration::minutes(50));

  for (int s = 0; s <= 2400; s += 5) {
    sim.sched.run_until(at_s(s));
    (void)sim.overlay.route(0, 1, RouteTag::kLoss);
  }
  // ~480 evaluations across 20 flaps; without damping every episode could
  // bounce the route twice. Demand an order of magnitude less.
  EXPECT_LE(sim.overlay.router(0).loss_switches(1), 6);
}

TEST(OverlayDegradation, ProbeBlackholeDegradesToDirectButDataFlows) {
  FaultSchedule sched;
  sched.blackhole_probes(0, at_s(1200), Duration::minutes(10));
  const FaultInjector inj(sched, Sim::make_topo(), Duration::hours(1));
  Sim sim(&inj, Duration::hours(1));

  sim.sched.run_until(at_s(1200));
  // Give the poisoned estimators time to mark everything down.
  sim.sched.run_until(at_s(1290));
  const PathSpec p = sim.overlay.route(0, 1, RouteTag::kLoss);
  EXPECT_TRUE(p.is_direct());

  // 100% probe loss at node 0, yet direct-path data still delivers.
  int ok = 0;
  for (int s = 0; s < 100; ++s) {
    sim.sched.run_until(at_s(1290 + s));
    ok += sim.overlay.send(PathSpec{0, 1, kDirectVia}, at_s(1290 + s)).delivered() ? 1 : 0;
  }
  EXPECT_GT(ok, 95);
  EXPECT_GT(sim.net.stats().dropped_injected, 0);
}

TEST(OverlayDegradation, LsaLossExpiresEntriesAndDegradesView) {
  FaultSchedule sched;
  sched.lsa_loss(0, at_s(1200), Duration::minutes(10));
  const FaultInjector inj(sched, Sim::make_topo(), Duration::hours(1));
  Sim sim(&inj, Duration::hours(1));

  sim.sched.run_until(at_s(1200));
  EXPECT_FALSE(sim.overlay.router(0).view_degraded(at_s(1200)));
  // After > entry_ttl (75 s) of suppressed advertisements node 0's rows
  // are stale and its router refuses to route indirectly.
  sim.sched.run_until(at_s(1300));
  EXPECT_TRUE(sim.overlay.router(0).view_degraded(at_s(1300)));
  EXPECT_TRUE(sim.overlay.route(0, 1, RouteTag::kLoss).is_direct());
  // Other nodes' views stay fresh.
  EXPECT_FALSE(sim.overlay.router(2).view_degraded(at_s(1300)));

  // Once the fault lifts, publications resume and the view heals.
  sim.sched.run_until(at_s(1200) + Duration::minutes(10) + Duration::seconds(60));
  EXPECT_FALSE(
      sim.overlay.router(0).view_degraded(at_s(1200) + Duration::minutes(10) + Duration::seconds(60)));
}

TEST(OverlayDegradation, CrashedNodeStopsForwardingAndDelivery) {
  FaultSchedule sched;
  sched.crash(2, at_s(1200), Duration::minutes(5));
  const FaultInjector inj(sched, Sim::make_topo(), Duration::hours(1));
  Sim sim(&inj, Duration::hours(1));

  sim.sched.run_until(at_s(1210));
  EXPECT_FALSE(sim.overlay.node_up(2, at_s(1210)));
  // Packets through the crashed forwarder die; direct ones don't.
  EXPECT_FALSE(sim.overlay.send(PathSpec{0, 1, 2}, at_s(1210)).delivered());
  // Delivery to the crashed destination also fails.
  EXPECT_FALSE(sim.overlay.send(PathSpec{0, 2, kDirectVia}, at_s(1210)).delivered());
  // After restart the node forwards again.
  sim.sched.run_until(at_s(1200) + Duration::minutes(6));
  EXPECT_TRUE(sim.overlay.node_up(2, at_s(1200) + Duration::minutes(6)));
}

}  // namespace
}  // namespace ronpath
