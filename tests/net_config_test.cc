#include "net/config.h"

#include <gtest/gtest.h>

#include "core/testbed.h"

namespace ronpath {
namespace {

class ConfigFixture : public ::testing::Test {
 protected:
  ConfigFixture() : topo_(testbed_2003()), cfg_(NetConfig::profile_2003()) {}

  [[nodiscard]] NodeId node(const char* name) const { return *topo_.find(name); }

  Topology topo_;
  NetConfig cfg_;
};

TEST_F(ConfigFixture, AccessTableCoversAllClasses) {
  ASSERT_EQ(cfg_.access.size(), 8u);
  for (const auto& p : cfg_.access) {
    EXPECT_GT(p.bursts_per_hour, 0.0);
    EXPECT_GT(p.burst_drop_prob, 0.0);
    EXPECT_LE(p.burst_drop_prob, 1.0);
  }
}

TEST_F(ConfigFixture, UplinkBurstierThanDownlink) {
  const NodeId mit = node("MIT");
  const auto up = cfg_.params_for(topo_, topo_.site_index(mit, SiteComp::kUp));
  const auto down = cfg_.params_for(topo_, topo_.site_index(mit, SiteComp::kDown));
  EXPECT_GT(up.bursts_per_hour, down.bursts_per_hour);
}

TEST_F(ConfigFixture, ConsumerUplinkExtraCongested) {
  const NodeId cable = node("CA-DSL");
  const NodeId univ = node("MIT");
  const auto cable_up = cfg_.params_for(topo_, topo_.site_index(cable, SiteComp::kUp));
  const auto cable_down = cfg_.params_for(topo_, topo_.site_index(cable, SiteComp::kDown));
  // Consumer up gets the asymmetry factor twice over.
  EXPECT_GT(cable_up.bursts_per_hour / cable_down.bursts_per_hour,
            cfg_.access_up_factor / cfg_.access_down_factor + 0.5);
  // And cable is burstier than a university access link.
  const auto univ_up = cfg_.params_for(topo_, topo_.site_index(univ, SiteComp::kUp));
  EXPECT_GT(cable_up.bursts_per_hour, univ_up.bursts_per_hour);
}

TEST_F(ConfigFixture, ProviderFactorsApplied) {
  const auto mit = cfg_.params_for(topo_, topo_.site_index(node("MIT"), SiteComp::kProvOut));
  const auto korea =
      cfg_.params_for(topo_, topo_.site_index(node("Korea"), SiteComp::kProvOut));
  const auto cable =
      cfg_.params_for(topo_, topo_.site_index(node("CA-DSL"), SiteComp::kProvOut));
  EXPECT_GT(korea.bursts_per_hour, mit.bursts_per_hour);
  EXPECT_GT(cable.bursts_per_hour, mit.bursts_per_hour);
}

TEST_F(ConfigFixture, IntlAndKoreaCoreSegmentsLossier) {
  const auto us = cfg_.params_for(topo_, topo_.core_index(node("MIT"), node("UCSD")));
  const auto intl = cfg_.params_for(topo_, topo_.core_index(node("MIT"), node("Lulea")));
  const auto korea = cfg_.params_for(topo_, topo_.core_index(node("MIT"), node("Korea")));
  EXPECT_GT(intl.bursts_per_hour, us.bursts_per_hour);
  EXPECT_GT(korea.bursts_per_hour, intl.bursts_per_hour);
}

TEST_F(ConfigFixture, LossScaleScalesBurstRatesOnly) {
  NetConfig scaled = cfg_;
  scaled.loss_scale = cfg_.loss_scale * 2.0;
  const std::size_t comp = topo_.site_index(node("MIT"), SiteComp::kUp);
  const auto base = cfg_.params_for(topo_, comp);
  const auto doubled = scaled.params_for(topo_, comp);
  EXPECT_NEAR(doubled.bursts_per_hour, 2.0 * base.bursts_per_hour, 1e-9);
  EXPECT_DOUBLE_EQ(doubled.episodes_per_day, base.episodes_per_day);
  EXPECT_DOUBLE_EQ(doubled.base_loss, base.base_loss);
}

TEST_F(ConfigFixture, Profile2002HasMoreLossLessEdgeCorrelation) {
  const NetConfig old = NetConfig::profile_2002();
  EXPECT_GE(old.loss_scale, cfg_.loss_scale);
  // 2002: weaker shared provider edges, stronger independent middles.
  EXPECT_LT(old.provider.bursts_per_hour, cfg_.provider.bursts_per_hour);
  EXPECT_GT(old.core.bursts_per_hour, cfg_.core.bursts_per_hour);
  EXPECT_LT(old.provider_events.cross_fraction, cfg_.provider_events.cross_fraction);
}

TEST_F(ConfigFixture, IncidentsScaleIntoShortRuns) {
  const NetConfig short_run = NetConfig::profile_2003(Duration::hours(14));
  ASSERT_EQ(short_run.incidents.size(), 2u);
  for (const auto& inc : short_run.incidents) {
    EXPECT_LT(inc.start, TimePoint::epoch() + Duration::hours(14));
    EXPECT_GT(inc.duration, Duration::zero());
  }
  // Full-length schedule: Cornell at day 6 of 14.
  const NetConfig full = NetConfig::profile_2003(Duration::days(14));
  EXPECT_EQ(full.incidents[0].start, TimePoint::epoch() + Duration::days(6));
  EXPECT_EQ(full.incidents[0].duration, Duration::hours(30));
}

TEST_F(ConfigFixture, CornellIncidentIsLatencyPathology) {
  const NetConfig full = NetConfig::profile_2003(Duration::days(14));
  const Incident& cornell = full.incidents[0];
  EXPECT_EQ(cornell.site_name, "Cornell");
  EXPECT_EQ(cornell.scope, Incident::Scope::kCore);
  EXPECT_GT(cornell.added_latency, Duration::millis(500));
  EXPECT_LT(cornell.cross_fraction, 1.0);  // some clean transit remains
}

TEST_F(ConfigFixture, EpisodeLossRatesConfigured) {
  // Severity-specified episodes everywhere: derived boosts stay sane.
  for (std::size_t ci = 0; ci < topo_.component_count(); ci += 37) {
    const auto p = cfg_.params_for(topo_, ci);
    if (p.episode_loss_rate > 0.0) {
      const double boost = derived_boost(p, p.episode_loss_rate);
      EXPECT_GE(boost, 1.0);
      EXPECT_LT(boost, 1e7);
    }
  }
}

TEST_F(ConfigFixture, MicroburstMixtureDefaults) {
  const auto p = cfg_.params_for(topo_, topo_.site_index(0, SiteComp::kUp));
  EXPECT_GT(p.short_burst_fraction, 0.5);
  EXPECT_LT(p.short_burst_median, Duration::millis(20));
  EXPECT_GT(p.burst_median, Duration::millis(100));
  // Mixture mean dominated by the long population.
  EXPECT_GT(mean_burst_seconds(p), p.short_burst_median.to_seconds_f());
}

}  // namespace
}  // namespace ronpath
