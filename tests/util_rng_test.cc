#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace ronpath {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministicAndTagSensitive) {
  const Rng parent(7);
  Rng c1 = parent.fork("alpha");
  Rng c2 = parent.fork("alpha");
  Rng c3 = parent.fork("beta");
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  Rng c4 = parent.fork("alpha");
  EXPECT_NE(c4.next_u64(), c3.next_u64());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(99);
  Rng b(99);
  (void)a.fork("child");
  (void)a.fork(42u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NumericTagForks) {
  const Rng parent(7);
  Rng a = parent.fork(std::uint64_t{1});
  Rng b = parent.fork(std::uint64_t{2});
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

class RngMoments : public ::testing::TestWithParam<int> {};

TEST_P(RngMoments, SampleMeansMatch) {
  const int which = GetParam();
  Rng r(1000 + static_cast<std::uint64_t>(which));
  const int n = 200'000;
  double sum = 0.0;
  double sum2 = 0.0;
  double expected_mean = 0.0;
  double expected_var = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = 0.0;
    switch (which) {
      case 0:  // uniform [2, 6)
        x = r.uniform(2.0, 6.0);
        expected_mean = 4.0;
        expected_var = 16.0 / 12.0;
        break;
      case 1:  // exponential mean 3
        x = r.exponential(3.0);
        expected_mean = 3.0;
        expected_var = 9.0;
        break;
      case 2:  // normal(5, 2)
        x = r.normal(5.0, 2.0);
        expected_mean = 5.0;
        expected_var = 4.0;
        break;
      case 3:  // bernoulli 0.3 as 0/1
        x = r.bernoulli(0.3) ? 1.0 : 0.0;
        expected_mean = 0.3;
        expected_var = 0.21;
        break;
      case 4:  // lognormal(mu=0, sigma=0.5): mean = exp(0.125)
        x = r.lognormal(0.0, 0.5);
        expected_mean = std::exp(0.125);
        expected_var = (std::exp(0.25) - 1.0) * std::exp(0.25);
        break;
      default:
        FAIL();
    }
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  // 5-sigma-ish tolerance on the sample mean.
  const double tol = 5.0 * std::sqrt(expected_var / n);
  EXPECT_NEAR(mean, expected_mean, tol) << "case " << which;
}

INSTANTIATE_TEST_SUITE_P(Distributions, RngMoments, ::testing::Range(0, 5));

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng r(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ExponentialDurationMean) {
  Rng r(29);
  const Duration mean = Duration::millis(50);
  double sum_ms = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum_ms += r.exponential_duration(mean).to_millis_f();
  EXPECT_NEAR(sum_ms / n, 50.0, 1.5);
}

TEST(Rng, UniformDurationWithinBounds) {
  Rng r(31);
  const Duration lo = Duration::millis(600);
  const Duration hi = Duration::millis(1200);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = r.uniform_duration(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

}  // namespace
}  // namespace ronpath
