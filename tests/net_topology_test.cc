#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "core/testbed.h"

namespace ronpath {
namespace {

Topology small_topo() {
  std::vector<Site> sites(4);
  sites[0] = {"A", "Boston, MA", LinkClass::kUniversityI2, 42.36, -71.06, true};
  sites[1] = {"B", "San Diego, CA", LinkClass::kCableDsl, 32.88, -117.23, true};
  sites[2] = {"C", "London, England", LinkClass::kIntlIsp, 51.51, -0.13, false};
  sites[3] = {"D", "Chicago, IL", LinkClass::kLargeIsp, 41.88, -87.63, true};
  return Topology(std::move(sites));
}

TEST(Topology, FindByName) {
  const Topology t = small_topo();
  ASSERT_TRUE(t.find("C").has_value());
  EXPECT_EQ(*t.find("C"), 2);
  EXPECT_FALSE(t.find("nope").has_value());
}

TEST(Topology, ComponentCount) {
  const Topology t = small_topo();
  EXPECT_EQ(t.component_count(), kSiteCompCount * 4 + 4 * 3);
}

TEST(Topology, ComponentIndexBijection) {
  const Topology t = small_topo();
  std::set<std::size_t> seen;
  for (NodeId s = 0; s < 4; ++s) {
    for (auto comp : {SiteComp::kUp, SiteComp::kDown, SiteComp::kProvOut, SiteComp::kProvIn}) {
      const std::size_t idx = t.site_index(s, comp);
      EXPECT_TRUE(seen.insert(idx).second);
      const ComponentId id = t.component(idx);
      EXPECT_EQ(id.kind, ComponentId::Kind::kSite);
      EXPECT_EQ(id.a, s);
      EXPECT_EQ(id.site_comp(), comp);
    }
  }
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      if (a == b) continue;
      const std::size_t idx = t.core_index(a, b);
      EXPECT_TRUE(seen.insert(idx).second);
      const ComponentId id = t.component(idx);
      EXPECT_EQ(id.kind, ComponentId::Kind::kCore);
      EXPECT_EQ(id.a, a);
      EXPECT_EQ(id.b, b);
    }
  }
  EXPECT_EQ(seen.size(), t.component_count());
}

TEST(Topology, IsProviderHelper) {
  const Topology t = small_topo();
  EXPECT_FALSE(t.component(t.site_index(0, SiteComp::kUp)).is_provider());
  EXPECT_FALSE(t.component(t.site_index(0, SiteComp::kDown)).is_provider());
  EXPECT_TRUE(t.component(t.site_index(0, SiteComp::kProvOut)).is_provider());
  EXPECT_TRUE(t.component(t.site_index(0, SiteComp::kProvIn)).is_provider());
  EXPECT_FALSE(t.component(t.core_index(0, 1)).is_provider());
}

TEST(Topology, PropagationSymmetricAndPositive) {
  const Topology t = small_topo();
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = 0; b < 4; ++b) {
      const Duration d = t.propagation(a, b);
      EXPECT_GT(d, Duration::zero());
      EXPECT_EQ(d, t.propagation(b, a));
    }
  }
}

TEST(Topology, PropagationScalesWithDistance) {
  const Topology t = small_topo();
  // Boston->Chicago is much shorter than Boston->London.
  EXPECT_LT(t.propagation(0, 3), t.propagation(0, 2));
  // Boston<->San Diego one-way in a plausible band (continental US).
  const double ms = t.propagation(0, 1).to_millis_f();
  EXPECT_GT(ms, 15.0);
  EXPECT_LT(ms, 80.0);
}

TEST(Topology, DirectHopsStructure) {
  const Topology t = small_topo();
  const auto hops = t.hops(PathSpec{0, 1, kDirectVia});
  ASSERT_EQ(hops.size(), 5u);
  EXPECT_EQ(hops[0].component, t.site_index(0, SiteComp::kUp));
  EXPECT_EQ(hops[1].component, t.site_index(0, SiteComp::kProvOut));
  EXPECT_EQ(hops[2].component, t.core_index(0, 1));
  EXPECT_EQ(hops[3].component, t.site_index(1, SiteComp::kProvIn));
  EXPECT_EQ(hops[4].component, t.site_index(1, SiteComp::kDown));
}

TEST(Topology, IndirectHopsStructure) {
  const Topology t = small_topo();
  const auto hops = t.hops(PathSpec{0, 1, 2});
  ASSERT_EQ(hops.size(), 10u);
  // Shared prefix with the direct path: src edge.
  EXPECT_EQ(hops[0].component, t.site_index(0, SiteComp::kUp));
  EXPECT_EQ(hops[1].component, t.site_index(0, SiteComp::kProvOut));
  // First leg middle, via ingress+egress, second leg middle, dst edge.
  EXPECT_EQ(hops[2].component, t.core_index(0, 2));
  EXPECT_EQ(hops[3].component, t.site_index(2, SiteComp::kProvIn));
  EXPECT_EQ(hops[4].component, t.site_index(2, SiteComp::kDown));
  EXPECT_EQ(hops[5].component, t.site_index(2, SiteComp::kUp));
  EXPECT_EQ(hops[6].component, t.site_index(2, SiteComp::kProvOut));
  EXPECT_EQ(hops[7].component, t.core_index(2, 1));
  EXPECT_EQ(hops[8].component, t.site_index(1, SiteComp::kProvIn));
  EXPECT_EQ(hops[9].component, t.site_index(1, SiteComp::kDown));
}

// The structural property behind the paper's correlated losses: direct and
// indirect paths share the src egress and dst ingress components.
TEST(Topology, DirectAndIndirectShareEdges) {
  const Topology t = small_topo();
  const auto direct = t.hops(PathSpec{0, 1, kDirectVia});
  const auto indirect = t.hops(PathSpec{0, 1, 3});
  std::set<std::size_t> d;
  for (const auto& h : direct) d.insert(h.component);
  std::size_t shared = 0;
  for (const auto& h : indirect) shared += d.count(h.component);
  EXPECT_EQ(shared, 4u);  // up(src), provOut(src), provIn(dst), down(dst)
}

TEST(Topology, TwoHopHopsStructure) {
  const Topology t = small_topo();
  const auto hops = t.hops(PathSpec{0, 1, 2, 3});
  ASSERT_EQ(hops.size(), 15u);
  // Legs: 0->2, 2->3, 3->1; forwarding after each intermediate's down.
  EXPECT_EQ(hops[2].component, t.core_index(0, 2));
  EXPECT_EQ(hops[7].component, t.core_index(2, 3));
  EXPECT_EQ(hops[12].component, t.core_index(3, 1));
  EXPECT_TRUE(hops[4].forward_after);   // down at via 2
  EXPECT_TRUE(hops[9].forward_after);   // down at via 3
  EXPECT_FALSE(hops[14].forward_after); // down at dst
  int forwards = 0;
  for (const auto& h : hops) forwards += h.forward_after ? 1 : 0;
  EXPECT_EQ(forwards, 2);
}

TEST(Topology, OneHopForwardFlag) {
  const Topology t = small_topo();
  const auto hops = t.hops(PathSpec{0, 1, 2});
  ASSERT_EQ(hops.size(), 10u);
  int forwards = 0;
  for (const auto& h : hops) forwards += h.forward_after ? 1 : 0;
  EXPECT_EQ(forwards, 1);
  EXPECT_TRUE(hops[4].forward_after);
}

TEST(PathSpecHelpers, IntermediateCounting) {
  EXPECT_EQ((PathSpec{0, 1, kDirectVia}).intermediates(), 0);
  EXPECT_EQ((PathSpec{0, 1, 2}).intermediates(), 1);
  EXPECT_EQ((PathSpec{0, 1, 2, 3}).intermediates(), 2);
  EXPECT_TRUE((PathSpec{0, 1, 2, 3}).is_two_hop());
  EXPECT_FALSE((PathSpec{0, 1, 2}).is_two_hop());
}

TEST(Topology, LinkClassNames) {
  EXPECT_EQ(to_string(LinkClass::kUniversityI2), "us-university-i2");
  EXPECT_EQ(to_string(LinkClass::kCableDsl), "us-cable-dsl");
  EXPECT_EQ(to_string(LinkClass::kIntlIsp), "intl-isp");
}

}  // namespace
}  // namespace ronpath
