// End-to-end experiment runner tests. These execute short simulated runs
// (minutes of virtual time) and check structural invariants rather than
// calibrated values; the bench binaries verify the paper's numbers on
// longer runs.

#include "core/experiment.h"

#include <gtest/gtest.h>

#include "measure/report.h"
#include "routing/schemes.h"

namespace ronpath {
namespace {

ExperimentConfig quick(Dataset d, std::uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.dataset = d;
  cfg.duration = Duration::minutes(50);
  cfg.warmup = Duration::minutes(10);
  cfg.seed = seed;
  return cfg;
}

TEST(Experiment, Ron2003SmokeRun) {
  const auto res = run_experiment(quick(Dataset::kRon2003));
  EXPECT_EQ(res.topology.size(), 30u);
  EXPECT_GT(res.probes, 50'000);
  EXPECT_GT(res.overlay_probes, 100'000);
  EXPECT_GT(res.events, res.probes);
  // All six probed schemes received samples.
  for (PairScheme s : ron2003_probe_set()) {
    EXPECT_GT(res.agg->scheme_stats(s).pair.pairs(), 1'000) << to_string(s);
  }
}

TEST(Experiment, DirectLossInPlausibleBand) {
  const auto res = run_experiment(quick(Dataset::kRon2003));
  const auto& st = res.agg->scheme_stats(PairScheme::kDirectRand);
  const double lp1 = st.pair.first_loss_percent();
  // Short-run noise band around the calibrated 0.42%.
  EXPECT_GT(lp1, 0.02);
  EXPECT_LT(lp1, 3.0);
}

TEST(Experiment, MeshTotlpBelowFirstCopyLoss) {
  const auto res = run_experiment(quick(Dataset::kRon2003));
  const auto& st = res.agg->scheme_stats(PairScheme::kDirectRand);
  EXPECT_LT(st.pair.total_loss_percent(), st.pair.first_loss_percent());
}

TEST(Experiment, BackToBackCorrelationPresent) {
  const auto res = run_experiment(quick(Dataset::kRon2003));
  const auto& dd = res.agg->scheme_stats(PairScheme::kDirectDirect);
  if (dd.pair.first_lost() >= 20) {
    EXPECT_GT(*dd.pair.conditional_loss_percent(), 20.0);
  }
}

TEST(Experiment, DeterministicForSeed) {
  const auto a = run_experiment(quick(Dataset::kRon2003, 7));
  const auto b = run_experiment(quick(Dataset::kRon2003, 7));
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.events, b.events);
  for (PairScheme s : ron2003_probe_set()) {
    const auto& sa = a.agg->scheme_stats(s);
    const auto& sb = b.agg->scheme_stats(s);
    EXPECT_EQ(sa.pair.pairs(), sb.pair.pairs()) << to_string(s);
    EXPECT_EQ(sa.pair.first_lost(), sb.pair.first_lost()) << to_string(s);
    EXPECT_EQ(sa.pair.both_lost(), sb.pair.both_lost()) << to_string(s);
  }
}

TEST(Experiment, SeedChangesOutcomes) {
  const auto a = run_experiment(quick(Dataset::kRon2003, 1));
  const auto b = run_experiment(quick(Dataset::kRon2003, 2));
  bool any_diff = a.probes != b.probes;
  for (PairScheme s : ron2003_probe_set()) {
    any_diff |= a.agg->scheme_stats(s).pair.first_lost() !=
                b.agg->scheme_stats(s).pair.first_lost();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Experiment, RonWideUsesSeventeenNodesRoundTrip) {
  const auto res = run_experiment(quick(Dataset::kRonWide));
  EXPECT_EQ(res.topology.size(), 17u);
  for (PairScheme s : ronwide_probe_set()) {
    EXPECT_GT(res.agg->scheme_stats(s).pair.pairs(), 100) << to_string(s);
  }
  // Round-trip latency roughly doubles the one-way latency of the same
  // testbed: check direct RTT mean is substantially above 60 ms.
  const auto& direct = res.agg->scheme_stats(PairScheme::kDirect);
  EXPECT_GT(direct.first_lat_ms.mean(), 40.0);
}

TEST(Experiment, RonNarrowProbesThreeSchemes) {
  const auto res = run_experiment(quick(Dataset::kRonNarrow));
  EXPECT_EQ(res.agg->schemes().size(), 3u);
  for (PairScheme s : ronnarrow_probe_set()) {
    EXPECT_GT(res.agg->scheme_stats(s).pair.pairs(), 1'000) << to_string(s);
  }
}

TEST(Experiment, RandCopiesLossierThanDirect) {
  const auto res = run_experiment(quick(Dataset::kRon2003));
  const auto& dr = res.agg->scheme_stats(PairScheme::kDirectRand);
  // The randomly-routed second copy crosses twice as many components.
  EXPECT_GT(dr.pair.second_loss_percent(), dr.pair.first_loss_percent());
}

TEST(Experiment, ReportRowsComplete) {
  const auto res = run_experiment(quick(Dataset::kRon2003));
  const auto rows = make_loss_table(*res.agg, ron2003_report_rows());
  ASSERT_EQ(rows.size(), 8u);
  for (const auto& row : rows) {
    EXPECT_GT(row.samples, 0) << row.name;
    EXPECT_GT(row.lat_ms, 5.0) << row.name;
    EXPECT_LT(row.lat_ms, 500.0) << row.name;
  }
  EXPECT_TRUE(rows[0].inferred);   // direct*
  EXPECT_TRUE(rows[1].inferred);   // lat*
  EXPECT_FALSE(rows[2].inferred);  // loss
}

// Seed-sweep properties: the headline invariants must hold across seeds,
// not just the calibration seed.
class ExperimentSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExperimentSeeds, CoreInvariantsHold) {
  ExperimentConfig cfg = quick(Dataset::kRon2003, GetParam());
  cfg.duration = Duration::hours(2);
  const auto res = run_experiment(cfg);
  const auto& dr = res.agg->scheme_stats(PairScheme::kDirectRand);
  const auto& dd = res.agg->scheme_stats(PairScheme::kDirectDirect);

  // Loss in a plausible band.
  EXPECT_GT(dr.pair.first_loss_percent(), 0.02);
  EXPECT_LT(dr.pair.first_loss_percent(), 3.0);
  // Mesh always improves on a single copy.
  EXPECT_LT(dr.pair.total_loss_percent(), dr.pair.first_loss_percent());
  // The rand copy is lossier than the direct copy.
  EXPECT_GT(dr.pair.second_loss_percent(), dr.pair.first_loss_percent());
  // Same-path correlation dominates cross-path correlation when both are
  // measurable.
  if (dd.pair.first_lost() >= 30 && dr.pair.first_lost() >= 30) {
    EXPECT_GT(*dd.pair.conditional_loss_percent(), *dr.pair.conditional_loss_percent() - 12.0);
    EXPECT_GT(*dd.pair.conditional_loss_percent(), 25.0);
  }
  // Latency means in the calibrated band.
  EXPECT_GT(dr.first_lat_ms.mean(), 35.0);
  EXPECT_LT(dr.first_lat_ms.mean(), 85.0);
  // Mesh method latency never exceeds the single-copy latency.
  EXPECT_LE(dr.method_lat_ms.mean(), dr.first_lat_ms.mean() + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExperimentSeeds, ::testing::Values(1u, 7u, 99u, 1234u));

TEST(Experiment, LossScaleOverrideScalesLoss) {
  ExperimentConfig low = quick(Dataset::kRon2003, 3);
  low.loss_scale = 0.2;
  ExperimentConfig high = quick(Dataset::kRon2003, 3);
  high.loss_scale = 5.0;
  const auto a = run_experiment(low);
  const auto b = run_experiment(high);
  EXPECT_LT(a.agg->scheme_stats(PairScheme::kDirectRand).pair.first_loss_percent(),
            b.agg->scheme_stats(PairScheme::kDirectRand).pair.first_loss_percent());
}

}  // namespace
}  // namespace ronpath
