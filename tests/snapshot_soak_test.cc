// Crash-recovery soak: a full simulated day of streamed faults with
// periodic checkpoints, random-but-seeded kill/restore cycles and the
// runtime invariant auditor run at every checkpoint. The restored run's
// final report must be byte-identical to an uninterrupted run of the
// same day.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fault_matrix.h"
#include "fault/scenarios.h"
#include "snapshot/audit.h"
#include "snapshot/codec.h"
#include "snapshot/snapshot.h"
#include "snapshot/world.h"
#include "util/rng.h"

namespace ronpath {
namespace {

// A synthesized day-long schedule: recurring link blackouts, crash
// churn on a candidate via, LSA suppression at the source and a
// periodic provider blackout, all with co-prime periods so the
// combinations drift across the day.
constexpr std::string_view kSoakDsl =
    "every 2700s down link 0->1 for 120s\n"
    "every 5400s crash node 2 for 300s\n"
    "every 4500s lsa-loss node 0 for 180s\n"
    "every 7200s down site 3 provider for 240s\n"
    "every 1800s flap link 1->0 for 20s\n";

Scenario soak_scenario() {
  Scenario s;
  s.name = "soak-day";
  s.summary = "synthesized 24 h fault stream for the crash-recovery soak";
  s.dsl = kSoakDsl;
  s.fault_start = TimePoint::epoch() + Duration::minutes(30);
  s.fault_duration = Duration::hours(24);
  s.routable = true;
  return s;
}

FaultMatrixConfig soak_config() {
  FaultMatrixConfig cfg;
  cfg.node_count = 4;
  cfg.warmup = Duration::minutes(30);
  cfg.measured = Duration::hours(24);  // the acceptance floor: >= 24 h simulated
  cfg.send_interval = Duration::seconds(10);
  return cfg;
}

void expect_clean_audit(const SimWorld& world, const std::string& where) {
  const std::vector<std::string> violations = audit_world(world);
  EXPECT_TRUE(violations.empty()) << where << ": " << format_audit(violations);
}

TEST(SnapshotSoak, DayLongKillRestoreSoakIsByteIdenticalAndAuditClean) {
  const Scenario scenario = soak_scenario();
  const FaultMatrixConfig cfg = soak_config();
  constexpr std::size_t kCheckpointEvery = 864;  // every ~2.4 simulated hours

  // Uninterrupted reference run, audited at the same cadence.
  SimWorld reference(scenario, FaultScheme::kHybrid, cfg, cfg.seed);
  const std::size_t total = reference.total_sends();
  ASSERT_EQ(total, 8640u);
  for (std::size_t next = kCheckpointEvery; next < total; next += kCheckpointEvery) {
    reference.advance_to(next);
    expect_clean_audit(reference, "reference at send " + std::to_string(next));
  }
  reference.run_to_end();
  expect_clean_audit(reference, "reference at end");
  const std::string expected = reference.report();

  // Soak run: checkpoint at every cadence point; at seeded random
  // checkpoints, kill the world and restore from the serialized bytes
  // into a freshly constructed one.
  Rng chaos(20030827);  // kills are random but reproducible
  auto world = std::make_unique<SimWorld>(scenario, FaultScheme::kHybrid, cfg, cfg.seed);
  int kills = 0;
  for (std::size_t next = kCheckpointEvery; next < total; next += kCheckpointEvery) {
    world->advance_to(next);
    expect_clean_audit(*world, "soak at send " + std::to_string(next));

    snap::Encoder e;
    world->save_state(e);
    const std::vector<std::uint8_t> file = snap::seal(world->fingerprint(), e.bytes());

    if (chaos.bernoulli(0.5)) {
      world.reset();  // the crash
      ++kills;
      auto restored = std::make_unique<SimWorld>(scenario, FaultScheme::kHybrid, cfg, cfg.seed);
      const std::vector<std::uint8_t> payload = snap::unseal(file, restored->fingerprint());
      snap::Decoder d(payload);
      restored->restore_state(d);
      EXPECT_EQ(restored->next_send(), next);
      expect_clean_audit(*restored, "restored at send " + std::to_string(next));
      world = std::move(restored);
    }
  }
  world->run_to_end();
  expect_clean_audit(*world, "soak at end");
  EXPECT_GE(kills, 2) << "seeded kill schedule degenerated; pick a new seed";

  EXPECT_EQ(world->report(), expected)
      << "restored day-long run diverged after " << kills << " kill/restore cycles";
}

}  // namespace
}  // namespace ronpath
