// PDES engine determinism pins.
//
// The contract under test: with the sharded underlay enabled, a fixed
// injected stream produces byte-identical per-packet outcomes, checksum
// and shard-count-invariant stats at EVERY shard count — 1, 2, 4 and 8 —
// including with pathologically small handoff queues (backpressure may
// stall, never reorder). Plus the constructor's preconditions and the
// drop/delivery bookkeeping invariants.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/testbed.h"
#include "net/config.h"
#include "net/network.h"
#include "pdes/engine.h"
#include "util/rng.h"

namespace ronpath {
namespace {

using pdes::Engine;
using pdes::EngineConfig;
using pdes::PacketOutcome;

Network make_network(std::uint64_t seed = 42) {
  Topology topo = testbed_2003();
  NetConfig cfg = NetConfig::profile_2003(Duration::hours(2));
  return Network(std::move(topo), std::move(cfg), Duration::hours(2), Rng(seed));
}

// The bench_hotpath packet mix, sized down: mixed direct / one-relay /
// two-relay paths, a probe slice, 10 us cadence.
void inject_stream(Engine& engine, const Topology& topo, std::int64_t n,
                   std::uint64_t seed) {
  const auto n_sites = static_cast<NodeId>(topo.size());
  Rng pick(seed ^ 0xd15c0ULL);
  TimePoint t = TimePoint::epoch() + Duration::seconds(1);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto src = static_cast<NodeId>(pick.next_below(n_sites));
    auto dst = src;
    while (dst == src) dst = static_cast<NodeId>(pick.next_below(n_sites));
    PathSpec path{src, dst, kDirectVia};
    if (i % 3 == 0) {
      auto via = src;
      while (via == src || via == dst) via = static_cast<NodeId>(pick.next_below(n_sites));
      path.via = via;
      if (i % 9 == 0) {
        auto via2 = src;
        while (via2 == src || via2 == dst || via2 == via) {
          via2 = static_cast<NodeId>(pick.next_below(n_sites));
        }
        path.via2 = via2;
      }
    }
    const TrafficClass cls = (i % 16 == 0) ? TrafficClass::kProbe : TrafficClass::kData;
    engine.inject(path, t, cls);
    t += Duration::micros(10);
  }
}

struct RunOutput {
  std::vector<PacketOutcome> results;
  std::uint64_t checksum = 0;
  Engine::Stats stats;
};

RunOutput run_sharded(int shards, std::int64_t n_packets,
                      std::size_t handoff_capacity = 4096) {
  Network net = make_network();
  net.enable_sharded_underlay();
  EngineConfig cfg;
  cfg.shards = shards;
  cfg.handoff_capacity = handoff_capacity;
  Engine engine(net, cfg);
  inject_stream(engine, net.topology(), n_packets, 42);
  engine.run_to_end();
  return RunOutput{engine.results(), engine.checksum(), engine.stats()};
}

void expect_same_outcomes(const RunOutput& a, const RunOutput& b, const char* what) {
  ASSERT_EQ(a.results.size(), b.results.size()) << what;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    const PacketOutcome& x = a.results[i];
    const PacketOutcome& y = b.results[i];
    ASSERT_EQ(x.done, y.done) << what << " seq " << i;
    ASSERT_EQ(x.delivered, y.delivered) << what << " seq " << i;
    ASSERT_EQ(x.cause, y.cause) << what << " seq " << i;
    ASSERT_EQ(x.drop_component, y.drop_component) << what << " seq " << i;
    ASSERT_EQ(x.latency, y.latency) << what << " seq " << i;
  }
  EXPECT_EQ(a.checksum, b.checksum) << what;
  // The simulation-describing stats are part of the contract; windows /
  // handoffs / stalls are diagnostics and deliberately not compared.
  EXPECT_EQ(a.stats.processed_events, b.stats.processed_events) << what;
  EXPECT_EQ(a.stats.delivered, b.stats.delivered) << what;
  EXPECT_EQ(a.stats.dropped_random, b.stats.dropped_random) << what;
  EXPECT_EQ(a.stats.dropped_burst, b.stats.dropped_burst) << what;
  EXPECT_EQ(a.stats.dropped_outage, b.stats.dropped_outage) << what;
  EXPECT_EQ(a.stats.dropped_injected, b.stats.dropped_injected) << what;
}

TEST(PdesEngine, RequiresShardedUnderlay) {
  Network net = make_network();
  EngineConfig cfg;
  EXPECT_THROW((void)Engine(net, cfg), std::logic_error);
}

TEST(PdesEngine, ResultsIdenticalAtEveryShardCount) {
  constexpr std::int64_t kPackets = 20'000;
  const RunOutput baseline = run_sharded(1, kPackets);
  EXPECT_EQ(baseline.results.size(), static_cast<std::size_t>(kPackets));
  for (const int shards : {2, 4, 8}) {
    const RunOutput out = run_sharded(shards, kPackets);
    expect_same_outcomes(baseline, out,
                         (std::to_string(shards) + " shards vs 1").c_str());
  }
}

// Tiny handoff rings force the push-or-drain backpressure path; the
// stall counter may spin freely but outcomes must not move.
TEST(PdesEngine, BackpressureDoesNotChangeOutcomes) {
  constexpr std::int64_t kPackets = 8'000;
  const RunOutput roomy = run_sharded(4, kPackets, /*handoff_capacity=*/4096);
  const RunOutput cramped = run_sharded(4, kPackets, /*handoff_capacity=*/2);
  expect_same_outcomes(roomy, cramped, "cramped handoff queues");
}

TEST(PdesEngine, EveryPacketFinishesAndStatsAddUp) {
  const RunOutput out = run_sharded(4, 10'000);
  std::int64_t delivered = 0, dropped = 0;
  for (const PacketOutcome& r : out.results) {
    ASSERT_TRUE(r.done);
    if (r.delivered) {
      ++delivered;
      EXPECT_GT(r.latency, Duration::zero());
      EXPECT_EQ(r.cause, DropCause::kNone);
    } else {
      ++dropped;
      EXPECT_NE(r.cause, DropCause::kNone);
    }
  }
  EXPECT_EQ(delivered, out.stats.delivered);
  EXPECT_EQ(dropped, out.stats.dropped_random + out.stats.dropped_burst +
                         out.stats.dropped_outage + out.stats.dropped_injected);
  EXPECT_GT(delivered, 0);
  EXPECT_GT(out.stats.processed_events, static_cast<std::uint64_t>(delivered));
}

// run_until is resumable: draining in slices is the same as one shot.
TEST(PdesEngine, IncrementalRunMatchesOneShot) {
  constexpr std::int64_t kPackets = 6'000;
  const RunOutput oneshot = run_sharded(4, kPackets);

  Network net = make_network();
  net.enable_sharded_underlay();
  EngineConfig cfg;
  cfg.shards = 4;
  Engine engine(net, cfg);
  inject_stream(engine, net.topology(), kPackets, 42);
  TimePoint until = TimePoint::epoch() + Duration::seconds(1);
  for (int slice = 0; slice < 5; ++slice) {
    engine.run_until(until);
    until = until + Duration::millis(17);
  }
  engine.run_to_end();
  const RunOutput sliced{engine.results(), engine.checksum(), engine.stats()};
  expect_same_outcomes(oneshot, sliced, "sliced run_until");
}

// Sharded mode is a different RNG discipline from the legacy
// single-stream transmit path: the engine's outcomes are NOT expected
// to match Network::transmit byte-for-byte, but the aggregate behaviour
// must stay in the same regime (this guards against e.g. the per-
// component substreams accidentally reusing one stream for everything).
TEST(PdesEngine, DeliveryRateIsInTheLegacyRegime) {
  constexpr std::int64_t kPackets = 20'000;
  const RunOutput out = run_sharded(2, kPackets);
  const double engine_rate =
      static_cast<double>(out.stats.delivered) / static_cast<double>(kPackets);

  Network legacy = make_network();
  Rng pick(42 ^ 0xd15c0ULL);
  const auto n_sites = static_cast<NodeId>(legacy.topology().size());
  TimePoint t = TimePoint::epoch() + Duration::seconds(1);
  std::int64_t delivered = 0;
  for (std::int64_t i = 0; i < kPackets; ++i) {
    const auto src = static_cast<NodeId>(pick.next_below(n_sites));
    auto dst = src;
    while (dst == src) dst = static_cast<NodeId>(pick.next_below(n_sites));
    PathSpec path{src, dst, kDirectVia};
    if (i % 3 == 0) {
      auto via = src;
      while (via == src || via == dst) via = static_cast<NodeId>(pick.next_below(n_sites));
      path.via = via;
      if (i % 9 == 0) {
        auto via2 = src;
        while (via2 == src || via2 == dst || via2 == via) {
          via2 = static_cast<NodeId>(pick.next_below(n_sites));
        }
        path.via2 = via2;
      }
    }
    const TrafficClass cls = (i % 16 == 0) ? TrafficClass::kProbe : TrafficClass::kData;
    if (legacy.transmit(path, t, cls).delivered) ++delivered;
    t += Duration::micros(10);
  }
  const double legacy_rate = static_cast<double>(delivered) / static_cast<double>(kPackets);
  EXPECT_NEAR(engine_rate, legacy_rate, 0.02);
}

}  // namespace
}  // namespace ronpath
