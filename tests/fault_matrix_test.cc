#include "core/fault_matrix.h"

#include <gtest/gtest.h>

#include <vector>

#include "fault/scenarios.h"

namespace ronpath {
namespace {

FaultMatrixConfig quick_cfg() {
  FaultMatrixConfig cfg;
  cfg.node_count = 8;  // CI-sized topology, same as bench --quick
  return cfg;
}

const Scenario& scenario(const char* name) {
  const Scenario* s = find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

// Golden pin: one deterministic cell. Same (scenario, scheme, seed,
// config) must reproduce these numbers bit-for-bit forever; a diff here
// means the simulation changed, which must be a deliberate decision.
TEST(FaultMatrix, GoldenReactiveSingleSiteBlackout) {
  const FaultMatrixConfig cfg = quick_cfg();
  const FaultCell cell =
      run_fault_cell(scenario("single-site-blackout"), FaultScheme::kReactive, cfg, cfg.seed);

  EXPECT_NEAR(cell.loss_pre_pct, 0.0166666667, 1e-6);
  EXPECT_NEAR(cell.loss_fault_pct, 3.8666666667, 1e-6);
  EXPECT_NEAR(cell.loss_post_pct, 0.1333333333, 1e-6);
  ASSERT_TRUE(cell.failover_measured);
  EXPECT_NEAR(cell.failover_s, 10.9, 1e-6);
  ASSERT_TRUE(cell.recovery_measured);
  EXPECT_NEAR(cell.recovery_s, 0.0, 1e-6);
  EXPECT_EQ(cell.overhead, 1.0);
  EXPECT_GT(cell.injected_drops, 0);
}

TEST(FaultMatrix, CellsAreDeterministic) {
  const FaultMatrixConfig cfg = quick_cfg();
  const Scenario& s = scenario("single-site-blackout");
  const FaultCell a = run_fault_cell(s, FaultScheme::kHybrid, cfg, cfg.seed);
  const FaultCell b = run_fault_cell(s, FaultScheme::kHybrid, cfg, cfg.seed);
  EXPECT_EQ(a.loss_pre_pct, b.loss_pre_pct);
  EXPECT_EQ(a.loss_fault_pct, b.loss_fault_pct);
  EXPECT_EQ(a.loss_post_pct, b.loss_post_pct);
  EXPECT_EQ(a.failover_s, b.failover_s);
  EXPECT_EQ(a.recovery_s, b.recovery_s);
  EXPECT_EQ(a.overhead, b.overhead);
  EXPECT_EQ(a.route_switches, b.route_switches);
  EXPECT_EQ(a.injected_drops, b.injected_drops);
}

// The headline robustness ordering the matrix exists to demonstrate:
// under a routable single-site blackout the direct path is dead for the
// whole window, reactive routing recovers in seconds, and mesh
// duplication hides the fault almost entirely (at 2x overhead).
TEST(FaultMatrix, SchemesOrderAsExpectedUnderBlackout) {
  const FaultMatrixConfig cfg = quick_cfg();
  const Scenario& s = scenario("single-site-blackout");

  const FaultCell direct = run_fault_cell(s, FaultScheme::kDirect, cfg, cfg.seed);
  const FaultCell reactive = run_fault_cell(s, FaultScheme::kReactive, cfg, cfg.seed);
  const FaultCell mesh = run_fault_cell(s, FaultScheme::kMesh, cfg, cfg.seed);

  EXPECT_GT(direct.loss_fault_pct, 90.0);
  ASSERT_TRUE(direct.failover_measured);
  // Direct can only "fail over" by waiting the fault out: 5 minutes.
  EXPECT_NEAR(direct.failover_s, 300.0, 1.0);

  EXPECT_LT(reactive.loss_fault_pct, 10.0);
  EXPECT_LT(reactive.failover_s, 30.0);

  EXPECT_LE(mesh.loss_fault_pct, reactive.loss_fault_pct);
  EXPECT_GT(mesh.overhead, 1.9);
  EXPECT_LT(reactive.loss_fault_pct, direct.loss_fault_pct);
}

// Acceptance: a probe blackhole kills the control plane, not the data
// plane. Data keeps flowing for every scheme while the router degrades
// to the direct path.
TEST(FaultMatrix, ProbeBlackholeSparesDataPlane) {
  const FaultMatrixConfig cfg = quick_cfg();
  const Scenario& s = scenario("probe-blackhole");

  const FaultCell direct = run_fault_cell(s, FaultScheme::kDirect, cfg, cfg.seed);
  const FaultCell reactive = run_fault_cell(s, FaultScheme::kReactive, cfg, cfg.seed);

  EXPECT_LT(direct.loss_fault_pct, 1.0);
  EXPECT_LT(reactive.loss_fault_pct, 1.0);
  // The blackhole really fired: thousands of probes died at the source.
  EXPECT_GT(reactive.injected_drops, 1000);
  EXPECT_EQ(direct.injected_drops, reactive.injected_drops);
}

// The report is a pure function of (cfg, scenarios, trials): sharding
// across threads must not change a byte.
TEST(FaultMatrix, ReportIsByteIdenticalAcrossJobCounts) {
  const FaultMatrixConfig cfg = quick_cfg();
  const std::vector<Scenario> scenarios{scenario("single-site-blackout")};

  const FaultMatrixResult serial = run_fault_matrix(cfg, scenarios, /*n_trials=*/2, /*n_jobs=*/1);
  const FaultMatrixResult sharded = run_fault_matrix(cfg, scenarios, /*n_trials=*/2, /*n_jobs=*/4);
  const std::string a = format_fault_matrix(serial, scenarios);
  const std::string b = format_fault_matrix(sharded, scenarios);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // And the table actually mentions what it ran.
  EXPECT_NE(a.find("single-site-blackout"), std::string::npos);
  EXPECT_NE(a.find("reactive"), std::string::npos);
}

TEST(FaultMatrix, MergedWindowWarningSurfacesInReport) {
  FaultMatrixConfig cfg;
  cfg.node_count = 4;
  cfg.warmup = Duration::minutes(2);
  cfg.measured = Duration::minutes(2);
  cfg.send_interval = Duration::millis(500);

  Scenario dup;
  dup.name = "dup-windows";
  dup.summary = "duplicate overlapping windows (merge-warning test)";
  dup.dsl =
      "at 130s down link 0->1 for 20s\n"
      "at 140s down link 0->1 for 20s\n";
  dup.fault_start = TimePoint::epoch() + Duration::seconds(130);
  dup.fault_duration = Duration::seconds(30);
  const std::vector<Scenario> scenarios{dup};

  const FaultMatrixResult r = run_fault_matrix(cfg, scenarios, /*n_trials=*/1, /*n_jobs=*/1);
  ASSERT_FALSE(r.cells.empty());
  EXPECT_EQ(r.cells[0].merged_fault_windows, 1);
  const std::string report = format_fault_matrix(r, scenarios);
  EXPECT_NE(report.find("warning: 1 duplicate/overlapping fault window"), std::string::npos)
      << report;

  // And the canonical suite keeps a warning-free header.
  const std::vector<Scenario> canon{scenario("single-site-blackout")};
  const FaultMatrixResult clean = run_fault_matrix(cfg, canon, /*n_trials=*/1, /*n_jobs=*/1);
  EXPECT_EQ(format_fault_matrix(clean, canon).find("warning:"), std::string::npos);
}

}  // namespace
}  // namespace ronpath
