#include "overlay/router.h"

#include <gtest/gtest.h>

#include "overlay/link_state.h"

namespace ronpath {
namespace {

LinkMetrics metrics(double loss, Duration lat, bool down = false) {
  LinkMetrics m;
  m.loss = loss;
  m.latency = lat;
  m.has_latency = lat != Duration::max();
  m.down = down;
  m.samples = 100;
  m.published = TimePoint::epoch();
  return m;
}

// Fills a fully-connected table with uniform metrics.
void fill(LinkStateTable& t, double loss, Duration lat) {
  const auto n = static_cast<NodeId>(t.size());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b) t.publish(a, b, metrics(loss, lat));
    }
  }
}

TEST(PathEstimates, DirectUsesSingleLink) {
  LinkStateTable t(3);
  fill(t, 0.01, Duration::millis(50));
  EXPECT_DOUBLE_EQ(path_loss_estimate(t, PathSpec{0, 1, kDirectVia}), 0.01);
}

TEST(PathEstimates, IndirectComposesLoss) {
  LinkStateTable t(3);
  fill(t, 0.1, Duration::millis(50));
  const double expected = 1.0 - 0.9 * 0.9;
  EXPECT_NEAR(path_loss_estimate(t, PathSpec{0, 1, 2}), expected, 1e-12);
}

TEST(PathEstimates, DownLinkIsTotalLoss) {
  LinkStateTable t(3);
  fill(t, 0.0, Duration::millis(10));
  t.publish(0, 1, metrics(0.0, Duration::millis(10), /*down=*/true));
  EXPECT_DOUBLE_EQ(path_loss_estimate(t, PathSpec{0, 1, kDirectVia}), 1.0);
  EXPECT_TRUE(path_down(t, PathSpec{0, 1, kDirectVia}));
  EXPECT_TRUE(path_down(t, PathSpec{0, 2, 1}));
}

TEST(PathEstimates, LatencySumsWithForwarding) {
  LinkStateTable t(3);
  fill(t, 0.0, Duration::millis(30));
  RouterConfig cfg;
  cfg.forward_delay = Duration::millis(1);
  EXPECT_EQ(path_latency_estimate(t, PathSpec{0, 1, 2}, cfg), Duration::millis(61));
}

TEST(PathEstimates, UnmeasuredLatencySaturates) {
  LinkStateTable t(3);
  fill(t, 0.0, Duration::millis(30));
  t.publish(0, 2, metrics(0.0, Duration::max()));
  RouterConfig cfg;
  EXPECT_EQ(path_latency_estimate(t, PathSpec{0, 1, 2}, cfg), Duration::max());
}

TEST(Router, PrefersDirectOnTies) {
  LinkStateTable t(5);
  fill(t, 0.01, Duration::millis(40));
  Router r(0, t, RouterConfig{});
  const auto choice = r.best_loss_path(1);
  EXPECT_TRUE(choice.path.is_direct());
}

TEST(Router, AvoidsLossyDirectWhenClearlyWorse) {
  LinkStateTable t(4);
  fill(t, 0.005, Duration::millis(40));
  t.publish(0, 1, metrics(0.30, Duration::millis(40)));  // bad direct
  Router r(0, t, RouterConfig{});
  const auto choice = r.best_loss_path(1);
  EXPECT_FALSE(choice.path.is_direct());
  EXPECT_LT(choice.loss, 0.30);
}

TEST(Router, IndirectPenaltySuppressesNoise) {
  LinkStateTable t(4);
  fill(t, 0.0, Duration::millis(40));
  // Direct slightly lossy but within the indirect penalty: stays direct.
  RouterConfig cfg;
  cfg.indirect_loss_penalty = 0.03;
  t.publish(0, 1, metrics(0.02, Duration::millis(40)));
  Router r(0, t, cfg);
  EXPECT_TRUE(r.best_loss_path(1).path.is_direct());
}

TEST(Router, LossHysteresisKeepsIncumbent) {
  LinkStateTable t(4);
  fill(t, 0.005, Duration::millis(40));
  t.publish(0, 1, metrics(0.40, Duration::millis(40)));
  RouterConfig cfg;
  Router r(0, t, cfg);
  const auto first = r.best_loss_path(1);
  ASSERT_FALSE(first.path.is_direct());
  const NodeId via = first.path.via;
  // Another via becomes infinitesimally better: incumbent must stick.
  for (NodeId v = 2; v < 4; ++v) {
    if (v != via) {
      t.publish(0, v, metrics(0.004, Duration::millis(40)));
      t.publish(v, 1, metrics(0.004, Duration::millis(40)));
    }
  }
  EXPECT_EQ(r.best_loss_path(1).path.via, via);
}

TEST(Router, SwitchesWhenIncumbentGoesDown) {
  LinkStateTable t(4);
  fill(t, 0.005, Duration::millis(40));
  t.publish(0, 1, metrics(0.40, Duration::millis(40)));
  Router r(0, t, RouterConfig{});
  const auto first = r.best_loss_path(1);
  ASSERT_FALSE(first.path.is_direct());
  t.publish(0, first.path.via, metrics(0.0, Duration::millis(40), /*down=*/true));
  const auto second = r.best_loss_path(1);
  EXPECT_NE(second.path.via, first.path.via);
}

TEST(Router, LatencyPrefersFasterIndirect) {
  LinkStateTable t(4);
  fill(t, 0.0, Duration::millis(60));
  // Via node 2 is much faster on both legs (triangle violation).
  t.publish(0, 2, metrics(0.0, Duration::millis(10)));
  t.publish(2, 1, metrics(0.0, Duration::millis(10)));
  Router r(0, t, RouterConfig{});
  const auto choice = r.best_lat_path(1);
  EXPECT_EQ(choice.path.via, 2);
  EXPECT_LT(choice.latency, Duration::millis(30));
}

TEST(Router, LatencyAvoidsDownLinks) {
  LinkStateTable t(4);
  fill(t, 0.0, Duration::millis(60));
  t.publish(0, 1, metrics(0.0, Duration::millis(5), /*down=*/true));  // fast but dead
  Router r(0, t, RouterConfig{});
  const auto choice = r.best_lat_path(1);
  EXPECT_FALSE(path_down(t, choice.path));
}

TEST(Router, LatencyHysteresis) {
  LinkStateTable t(4);
  fill(t, 0.0, Duration::millis(50));
  Router r(0, t, RouterConfig{});
  const auto first = r.best_lat_path(1);
  EXPECT_TRUE(first.path.is_direct());
  // A via gets trivially faster (under the 2 ms/5% margins): keep direct.
  t.publish(0, 2, metrics(0.0, Duration::millis(24)));
  t.publish(2, 1, metrics(0.0, Duration::millis(24)));
  EXPECT_TRUE(r.best_lat_path(1).path.is_direct());
  // Now dramatically faster: switch.
  t.publish(0, 2, metrics(0.0, Duration::millis(10)));
  t.publish(2, 1, metrics(0.0, Duration::millis(10)));
  EXPECT_EQ(r.best_lat_path(1).path.via, 2);
}

TEST(Router, LiveIntermediatesExcludesEndpointsAndDown) {
  LinkStateTable t(5);
  fill(t, 0.0, Duration::millis(10));
  // Node 3 appears down on all links.
  for (NodeId o = 0; o < 5; ++o) {
    if (o == 3) continue;
    t.publish(3, o, metrics(0.0, Duration::millis(10), true));
    t.publish(o, 3, metrics(0.0, Duration::millis(10), true));
  }
  Router r(0, t, RouterConfig{});
  const auto vias = r.live_intermediates(1);
  EXPECT_EQ(vias.size(), 2u);  // nodes 2 and 4
  for (NodeId v : vias) {
    EXPECT_NE(v, 0);
    EXPECT_NE(v, 1);
    EXPECT_NE(v, 3);
  }
}

TEST(Router, TwoHopComposesLoss) {
  LinkStateTable t(4);
  fill(t, 0.1, Duration::millis(50));
  const double expected = 1.0 - 0.9 * 0.9 * 0.9;
  EXPECT_NEAR(path_loss_estimate(t, PathSpec{0, 1, 2, 3}), expected, 1e-12);
}

TEST(Router, TwoHopSelectorFindsCleanRelayChain) {
  // Direct and ALL single-hop alternates are poisoned; only the chain
  // 0 -> 2 -> 3 -> 1 is clean.
  LinkStateTable t(4);
  fill(t, 0.5, Duration::millis(40));
  t.publish(0, 2, metrics(0.0, Duration::millis(40)));
  t.publish(2, 3, metrics(0.0, Duration::millis(40)));
  t.publish(3, 1, metrics(0.0, Duration::millis(40)));
  Router r(0, t, RouterConfig{});
  const auto one = r.best_loss_path(1);
  const auto two = r.best_loss_path_two_hop(1);
  EXPECT_GT(one.loss, 0.4);
  EXPECT_TRUE(two.path.is_two_hop());
  EXPECT_EQ(two.path.via, 2);
  EXPECT_EQ(two.path.via2, 3);
  EXPECT_LT(two.loss, 0.1);
}

TEST(Router, TwoHopPrefersSimplerPathsOnTies) {
  LinkStateTable t(5);
  fill(t, 0.0, Duration::millis(40));
  Router r(0, t, RouterConfig{});
  // Everything clean: direct wins (penalties bias against hops).
  EXPECT_TRUE(r.best_loss_path_two_hop(1).path.is_direct());
}

TEST(LinkStateTable, NodeSeemsUpBeforeAnyProbes) {
  LinkStateTable t(3);
  EXPECT_TRUE(t.node_seems_up(0));
}

TEST(LinkStateTable, PublishAndGet) {
  LinkStateTable t(3);
  t.publish(0, 1, metrics(0.25, Duration::millis(99)));
  EXPECT_DOUBLE_EQ(t.get(0, 1).loss, 0.25);
  EXPECT_EQ(t.get(0, 1).latency, Duration::millis(99));
  EXPECT_DOUBLE_EQ(t.get(1, 0).loss, 0.0);  // reverse untouched
}

}  // namespace
}  // namespace ronpath
