// Snapshot canonicalization across shard counts.
//
// 1. Engine envelopes: a mid-run checkpoint of the same stream is
//    byte-identical whether the engine runs 1 or 4 shards (pending
//    events are merged and sorted, stats reduced to the shard-count-
//    invariant subset), and a 4-shard checkpoint restored into a
//    1-shard engine finishes byte-identically.
// 2. SimWorld: a seeded kill/restore soak at --shards 4 must reproduce
//    the report of an uninterrupted --shards 1 twin, including when the
//    restore crosses shard counts.
// 3. Discipline guard: a sharded snapshot cannot restore into a legacy
//    world (different RNG stream layout) — clear SnapshotError instead
//    of silently diverging.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/fault_matrix.h"
#include "core/testbed.h"
#include "fault/scenarios.h"
#include "net/config.h"
#include "net/network.h"
#include "pdes/engine.h"
#include "snapshot/codec.h"
#include "snapshot/world.h"
#include "util/rng.h"

namespace ronpath {
namespace {

using pdes::Engine;
using pdes::EngineConfig;

Network make_network(std::uint64_t seed = 42) {
  Topology topo = testbed_2003();
  NetConfig cfg = NetConfig::profile_2003(Duration::hours(2));
  return Network(std::move(topo), std::move(cfg), Duration::hours(2), Rng(seed));
}

void inject_stream(Engine& engine, const Topology& topo, std::int64_t n,
                   std::uint64_t seed) {
  const auto n_sites = static_cast<NodeId>(topo.size());
  Rng pick(seed ^ 0xd15c0ULL);
  TimePoint t = TimePoint::epoch() + Duration::seconds(1);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto src = static_cast<NodeId>(pick.next_below(n_sites));
    auto dst = src;
    while (dst == src) dst = static_cast<NodeId>(pick.next_below(n_sites));
    PathSpec path{src, dst, kDirectVia};
    if (i % 3 == 0) {
      auto via = src;
      while (via == src || via == dst) via = static_cast<NodeId>(pick.next_below(n_sites));
      path.via = via;
    }
    engine.inject(path, t, (i % 16 == 0) ? TrafficClass::kProbe : TrafficClass::kData);
    t += Duration::micros(10);
  }
}

constexpr std::int64_t kPackets = 6'000;
// Mid-stream: plenty of packets already finished, plenty still pending.
const TimePoint kMid = TimePoint::epoch() + Duration::seconds(1) + Duration::millis(30);

std::vector<std::uint8_t> engine_checkpoint(int shards) {
  Network net = make_network();
  net.enable_sharded_underlay();
  EngineConfig cfg;
  cfg.shards = shards;
  Engine engine(net, cfg);
  inject_stream(engine, net.topology(), kPackets, 42);
  engine.run_until(kMid);
  snap::Encoder e;
  engine.save_state(e);
  return e.bytes();
}

// The canonical-envelope pin: same stream, same checkpoint instant,
// different shard counts — identical bytes.
TEST(PdesSnapshot, EngineEnvelopeIsShardCountIndependent) {
  const std::vector<std::uint8_t> at1 = engine_checkpoint(1);
  const std::vector<std::uint8_t> at4 = engine_checkpoint(4);
  EXPECT_EQ(at1, at4);
  const std::vector<std::uint8_t> at8 = engine_checkpoint(8);
  EXPECT_EQ(at1, at8);
}

// A 4-shard checkpoint restored into a 1-shard engine (events rehomed
// under the restoring partition) finishes byte-identically to the
// uninterrupted 4-shard run.
TEST(PdesSnapshot, CrossShardRestoreFinishesIdentically) {
  Network twin_net = make_network();
  twin_net.enable_sharded_underlay();
  EngineConfig cfg4;
  cfg4.shards = 4;
  Engine twin(twin_net, cfg4);
  inject_stream(twin, twin_net.topology(), kPackets, 42);
  twin.run_to_end();

  const std::vector<std::uint8_t> checkpoint = engine_checkpoint(4);

  Network net = make_network();
  net.enable_sharded_underlay();
  EngineConfig cfg1;
  cfg1.shards = 1;
  Engine restored(net, cfg1);
  snap::Decoder d(checkpoint);
  restored.restore_state(d);
  restored.run_to_end();

  ASSERT_EQ(restored.results().size(), twin.results().size());
  EXPECT_EQ(restored.checksum(), twin.checksum());
  EXPECT_EQ(restored.stats().processed_events, twin.stats().processed_events);
  EXPECT_EQ(restored.stats().delivered, twin.stats().delivered);
  EXPECT_EQ(restored.stats().dropped_random, twin.stats().dropped_random);
  EXPECT_EQ(restored.stats().dropped_burst, twin.stats().dropped_burst);
  EXPECT_EQ(restored.stats().dropped_outage, twin.stats().dropped_outage);
  EXPECT_EQ(restored.stats().dropped_injected, twin.stats().dropped_injected);
}

FaultMatrixConfig soak_cfg(int shards) {
  FaultMatrixConfig cfg;
  cfg.node_count = 6;
  cfg.warmup = Duration::minutes(8);
  cfg.measured = Duration::minutes(8);
  cfg.send_interval = Duration::millis(500);
  cfg.shards = shards;
  return cfg;
}

// Seeded kill/restore soak: a --shards 4 world killed twice, with the
// second resurrection deliberately landing in a --shards 1 world, must
// reproduce the uninterrupted single-shard twin's report byte for byte.
TEST(PdesSnapshot, KillRestoreSoakAcrossShardCounts) {
  const auto scenarios = canonical_scenarios();
  const Scenario& scenario = scenarios[2 % scenarios.size()];
  const FaultScheme scheme = FaultScheme::kHybrid;

  SimWorld twin(scenario, scheme, soak_cfg(1), soak_cfg(1).seed);
  twin.run_to_end();
  const std::string expected = twin.report();
  const std::size_t total = twin.total_sends();

  // Fingerprints must agree across shard counts (discipline bool, not
  // the count) or cross-count restores would be rejected at the seal.
  SimWorld probe4(scenario, scheme, soak_cfg(4), soak_cfg(4).seed);
  EXPECT_EQ(probe4.fingerprint(), twin.fingerprint());

  SimWorld victim(scenario, scheme, soak_cfg(4), soak_cfg(4).seed);
  victim.advance_to(total / 3);
  snap::Encoder first;
  victim.save_state(first);

  SimWorld resumed(scenario, scheme, soak_cfg(4), soak_cfg(4).seed);
  {
    snap::Decoder d(first.bytes());
    resumed.restore_state(d);
  }
  resumed.advance_to(2 * total / 3);
  snap::Encoder second;
  resumed.save_state(second);

  SimWorld final_world(scenario, scheme, soak_cfg(1), soak_cfg(1).seed);
  {
    snap::Decoder d(second.bytes());
    final_world.restore_state(d);
  }
  final_world.run_to_end();
  EXPECT_EQ(final_world.report(), expected);
}

// Restoring a sharded snapshot into a legacy world (or vice versa) is a
// different RNG discipline and must fail loudly.
TEST(PdesSnapshot, DisciplineMismatchIsRejected) {
  const auto scenarios = canonical_scenarios();
  const Scenario& scenario = scenarios[0];

  SimWorld sharded(scenario, FaultScheme::kReactive, soak_cfg(2), soak_cfg(2).seed);
  sharded.advance_to(5);
  snap::Encoder e;
  sharded.save_state(e);

  FaultMatrixConfig legacy = soak_cfg(1);
  legacy.shards = 0;
  SimWorld target(scenario, FaultScheme::kReactive, legacy, legacy.seed);
  snap::Decoder d(e.bytes());
  EXPECT_THROW(target.restore_state(d), snap::SnapshotError);
}

}  // namespace
}  // namespace ronpath
