#include "core/driver.h"

#include <gtest/gtest.h>

#include "core/testbed.h"
#include "routing/schemes.h"

namespace ronpath {
namespace {

struct Fixture {
  Topology topo;
  Network net;
  Scheduler sched;
  OverlayNetwork overlay;
  Aggregator agg;

  explicit Fixture(const DriverConfig& dcfg, std::uint64_t seed = 42)
      : topo(testbed_2002()),
        net(topo, NetConfig::profile_2003(), Duration::hours(3), Rng(seed)),
        overlay(net, sched, OverlayConfig{}, Rng(seed + 1)),
        agg(topo.size(), dcfg.probe_set, AggregatorConfig{}) {
    overlay.start();
  }
};

DriverConfig one_way_config() {
  DriverConfig cfg;
  const auto set = ronnarrow_probe_set();
  cfg.probe_set.assign(set.begin(), set.end());
  return cfg;
}

TEST(ProbeDriver, EmitsProbesAtConfiguredPace) {
  const DriverConfig cfg = one_way_config();
  Fixture f(cfg);
  ProbeDriver driver(f.overlay, f.sched, f.agg, cfg, Rng(7));
  driver.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(10));
  // 17 nodes, one probe per U(0.6, 1.2) s each: ~11333 probes in 10 min.
  const double expected = 17.0 * 600.0 / 0.9;
  EXPECT_NEAR(static_cast<double>(driver.probes_emitted()), expected, 0.1 * expected);
}

TEST(ProbeDriver, CyclesSchemesEvenly) {
  const DriverConfig cfg = one_way_config();
  Fixture f(cfg);
  ProbeDriver driver(f.overlay, f.sched, f.agg, cfg, Rng(7));
  driver.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(30));
  f.agg.finish(TimePoint::epoch() + Duration::hours(1));
  std::int64_t lo = INT64_MAX;
  std::int64_t hi = 0;
  for (PairScheme s : cfg.probe_set) {
    const auto n = f.agg.scheme_stats(s).pair.pairs();
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_GT(lo, 0);
  // Cycling keeps the per-scheme counts within a few percent.
  EXPECT_LT(hi - lo, hi / 10 + 20);
}

TEST(ProbeDriver, RecordTeeSeesEveryProbe) {
  DriverConfig cfg = one_way_config();
  std::int64_t teed = 0;
  cfg.record_tee = [&](const ProbeRecord&) { ++teed; };
  Fixture f(cfg);
  ProbeDriver driver(f.overlay, f.sched, f.agg, cfg, Rng(7));
  driver.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(5));
  EXPECT_EQ(teed, driver.probes_emitted());
  EXPECT_GT(teed, 0);
}

TEST(ProbeDriver, ClockOffsetsAssignedToFraction) {
  DriverConfig cfg = one_way_config();
  cfg.non_gps_fraction = 0.5;
  cfg.clock_offset_sigma_ms = 20.0;
  Fixture f(cfg);
  ProbeDriver driver(f.overlay, f.sched, f.agg, cfg, Rng(9));
  int with_offset = 0;
  for (NodeId n = 0; n < f.topo.size(); ++n) {
    if (driver.clock_offset(n) != Duration::zero()) ++with_offset;
  }
  EXPECT_GT(with_offset, 2);
  EXPECT_LT(with_offset, 15);
}

TEST(ProbeDriver, ZeroGpsFractionMeansNoOffsets) {
  DriverConfig cfg = one_way_config();
  cfg.non_gps_fraction = 0.0;
  Fixture f(cfg);
  ProbeDriver driver(f.overlay, f.sched, f.agg, cfg, Rng(9));
  for (NodeId n = 0; n < f.topo.size(); ++n) {
    EXPECT_EQ(driver.clock_offset(n), Duration::zero());
  }
}

// One-way latencies recorded against a skewed receiver clock can come out
// negative; the report layer cancels this by pairwise averaging. Verify
// the skew actually shows up in the raw records (faithfulness) rather
// than being silently removed.
TEST(ProbeDriver, SkewAppearsInRecordedLatency) {
  DriverConfig cfg = one_way_config();
  cfg.non_gps_fraction = 1.0;  // every host skewed
  cfg.clock_offset_sigma_ms = 50.0;
  std::vector<ProbeRecord> records;
  cfg.record_tee = [&](const ProbeRecord& r) { records.push_back(r); };
  Fixture f(cfg);
  ProbeDriver driver(f.overlay, f.sched, f.agg, cfg, Rng(11));
  driver.start();
  f.sched.run_until(TimePoint::epoch() + Duration::minutes(5));
  bool any_negative = false;
  for (const auto& r : records) {
    if (r.copies[0].delivered && r.copies[0].latency.is_negative()) any_negative = true;
  }
  // With +-50 ms offsets and ~10-60 ms true latencies, some one-way
  // samples must go negative - exactly the artifact GPS-less hosts had.
  EXPECT_TRUE(any_negative);
}

TEST(ProbeDriver, RoundTripModeUsesRttLatency) {
  DriverConfig one_way = one_way_config();
  DriverConfig rtt = one_way;
  rtt.round_trip = true;
  rtt.non_gps_fraction = 0.0;
  one_way.non_gps_fraction = 0.0;

  Fixture f1(one_way, 21);
  ProbeDriver d1(f1.overlay, f1.sched, f1.agg, one_way, Rng(7));
  d1.start();
  f1.sched.run_until(TimePoint::epoch() + Duration::minutes(40));
  f1.agg.finish(TimePoint::epoch() + Duration::hours(1));

  Fixture f2(rtt, 21);
  ProbeDriver d2(f2.overlay, f2.sched, f2.agg, rtt, Rng(7));
  d2.start();
  f2.sched.run_until(TimePoint::epoch() + Duration::minutes(40));
  f2.agg.finish(TimePoint::epoch() + Duration::hours(1));

  const double one_way_lat =
      f1.agg.scheme_stats(PairScheme::kLoss).first_lat_ms.mean();
  const double rtt_lat = f2.agg.scheme_stats(PairScheme::kLoss).first_lat_ms.mean();
  // RTT ~ 2x one-way on a symmetric-ish topology.
  EXPECT_GT(rtt_lat, 1.6 * one_way_lat);
  EXPECT_LT(rtt_lat, 2.6 * one_way_lat);
}

}  // namespace
}  // namespace ronpath
