#include "core/testbed.h"

#include <gtest/gtest.h>

#include <set>

namespace ronpath {
namespace {

TEST(Testbed, ThirtyHostsIn2003) {
  const Topology t = testbed_2003();
  EXPECT_EQ(t.size(), 30u);
}

TEST(Testbed, SeventeenHostsIn2002) {
  const Topology t = testbed_2002();
  EXPECT_EQ(t.size(), 17u);
  for (const Site& s : t.sites()) EXPECT_TRUE(s.in_2002_testbed) << s.name;
}

TEST(Testbed, NamesUnique) {
  const Topology t = testbed_2003();
  std::set<std::string> names;
  for (const Site& s : t.sites()) EXPECT_TRUE(names.insert(s.name).second) << s.name;
}

TEST(Testbed, KnownHostsPresent) {
  const Topology t = testbed_2003();
  for (const char* name : {"MIT", "Korea", "Cornell", "CA-DSL", "GBLX-LON", "Nortel",
                           "Utah", "VU-NL"}) {
    EXPECT_TRUE(t.find(name).has_value()) << name;
  }
}

// Table 2 of the paper: category distribution of the 30 nodes.
TEST(Testbed, CategoryCountsMatchTable2) {
  const auto cats = table2_categories(testbed_2003());
  ASSERT_EQ(cats.size(), 8u);
  auto count = [&](const std::string& name) {
    for (const auto& c : cats) {
      if (c.category == name) return c.count;
    }
    ADD_FAILURE() << "missing category " << name;
    return -1;
  };
  EXPECT_EQ(count("US Universities"), 7);
  EXPECT_EQ(count("US Large ISP"), 4);
  EXPECT_EQ(count("US small/med ISP"), 5);
  EXPECT_EQ(count("US Private Company"), 5);
  EXPECT_EQ(count("US Cable/DSL"), 3);
  EXPECT_EQ(count("Canada Private Company"), 1);
  EXPECT_EQ(count("Int'l Universities"), 3);
  EXPECT_EQ(count("Int'l ISP"), 2);
}

// Table 1 asterisks: six US universities on the Internet2 backbone.
TEST(Testbed, SixInternet2Universities) {
  const Topology t = testbed_2003();
  int i2 = 0;
  for (const Site& s : t.sites()) i2 += is_internet2(s) ? 1 : 0;
  EXPECT_EQ(i2, 6);
  for (const char* name : {"CMU", "Cornell", "MIT", "NYU", "UCSD", "Utah"}) {
    EXPECT_TRUE(is_internet2(t.site(*t.find(name)))) << name;
  }
}

TEST(Testbed, CoordinatesPlausible) {
  const Topology t = testbed_2003();
  for (const Site& s : t.sites()) {
    EXPECT_GT(s.lat_deg, -60.0) << s.name;
    EXPECT_LT(s.lat_deg, 75.0) << s.name;
    EXPECT_GT(s.lon_deg, -180.0) << s.name;
    EXPECT_LT(s.lon_deg, 180.0) << s.name;
  }
  // Korea is far east, London near zero, US negative longitudes.
  EXPECT_GT(t.site(*t.find("Korea")).lon_deg, 100.0);
  EXPECT_LT(t.site(*t.find("MIT")).lon_deg, -60.0);
}

TEST(Testbed, TransatlanticFurtherThanTranscontinental) {
  const Topology t = testbed_2003();
  const NodeId mit = *t.find("MIT");
  const NodeId ucsd = *t.find("UCSD");
  const NodeId korea = *t.find("Korea");
  const NodeId lon = *t.find("GBLX-LON");
  EXPECT_GT(t.propagation(mit, korea), t.propagation(mit, ucsd));
  EXPECT_GT(t.propagation(ucsd, lon), t.propagation(mit, lon));
}

TEST(Testbed, The2002SubsetIsFromThe30) {
  const Topology full = testbed_2003();
  const Topology old = testbed_2002();
  for (const Site& s : old.sites()) {
    EXPECT_TRUE(full.find(s.name).has_value()) << s.name;
  }
}

}  // namespace
}  // namespace ronpath
