#include "fec/packet_fec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "util/rng.h"

namespace ronpath {
namespace {

std::vector<std::uint8_t> payload(int seed, std::size_t len) {
  std::vector<std::uint8_t> p(len);
  for (std::size_t i = 0; i < len; ++i) {
    p[i] = static_cast<std::uint8_t>((seed * 131 + static_cast<int>(i)) & 0xFF);
  }
  return p;
}

TEST(FecEncoder, EmitsDataImmediately) {
  FecEncoder enc(3, 1);
  const auto out = enc.push(payload(1, 10));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].index, 0);
  EXPECT_EQ(out[0].block, 0u);
  EXPECT_EQ(out[0].bytes, payload(1, 10));
}

TEST(FecEncoder, EmitsParityOnBlockCompletion) {
  FecEncoder enc(2, 2);
  (void)enc.push(payload(1, 8));
  const auto out = enc.push(payload(2, 8));
  ASSERT_EQ(out.size(), 3u);  // data + 2 parity
  EXPECT_EQ(out[0].index, 1);
  EXPECT_EQ(out[1].index, 2);
  EXPECT_EQ(out[2].index, 3);
  EXPECT_TRUE(out[1].is_parity(2));
  EXPECT_EQ(enc.current_block(), 1u);
}

TEST(FecEncoder, FlushPadsPartialBlock) {
  FecEncoder enc(4, 2);
  (void)enc.push(payload(1, 5));
  const auto parity = enc.flush();
  EXPECT_EQ(parity.size(), 2u);
  EXPECT_TRUE(enc.flush().empty());  // nothing pending now
}

TEST(FecDecoder, PassesThroughWithoutLoss) {
  FecEncoder enc(3, 1);
  FecDecoder dec(3, 1);
  std::vector<std::vector<std::uint8_t>> delivered;
  for (int i = 0; i < 9; ++i) {
    for (const auto& shard : enc.push(payload(i, 20))) {
      for (auto& p : dec.push(shard)) delivered.push_back(std::move(p));
    }
  }
  ASSERT_EQ(delivered.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(delivered[static_cast<std::size_t>(i)], payload(i, 20));
  EXPECT_EQ(dec.reconstructed(), 0);
}

TEST(FecDecoder, ReconstructsSingleLoss) {
  FecEncoder enc(3, 1);
  FecDecoder dec(3, 1);
  std::vector<FecShard> wire;
  for (int i = 0; i < 3; ++i) {
    for (auto& s : enc.push(payload(i, 16))) wire.push_back(std::move(s));
  }
  ASSERT_EQ(wire.size(), 4u);
  std::vector<std::vector<std::uint8_t>> got;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (i == 1) continue;  // drop data shard 1
    for (auto& p : dec.push(wire[i])) got.push_back(std::move(p));
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(dec.reconstructed(), 1);
  // Order: shard 0 direct, shard 2 direct, shard 1 reconstructed last.
  EXPECT_EQ(got[0], payload(0, 16));
  EXPECT_EQ(got[1], payload(2, 16));
  EXPECT_EQ(got[2], payload(1, 16));
}

TEST(FecDecoder, VariableLengthPayloadsReconstruct) {
  FecEncoder enc(3, 2);
  FecDecoder dec(3, 2);
  std::vector<FecShard> wire;
  const std::vector<std::size_t> lens = {1, 100, 37};
  for (int i = 0; i < 3; ++i) {
    for (auto& s : enc.push(payload(i, lens[static_cast<std::size_t>(i)]))) {
      wire.push_back(std::move(s));
    }
  }
  std::vector<std::vector<std::uint8_t>> got;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    if (i == 0 || i == 2) continue;  // drop two data shards
    for (auto& p : dec.push(wire[i])) got.push_back(std::move(p));
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(dec.reconstructed(), 2);
  // All three payloads recovered with exact lengths.
  std::vector<std::vector<std::uint8_t>> expect;
  for (int i = 0; i < 3; ++i) expect.push_back(payload(i, lens[static_cast<std::size_t>(i)]));
  for (const auto& e : expect) {
    EXPECT_NE(std::find(got.begin(), got.end(), e), got.end());
  }
}

TEST(FecDecoder, DuplicatesIgnored) {
  FecEncoder enc(2, 1);
  FecDecoder dec(2, 1);
  std::vector<FecShard> wire;
  for (int i = 0; i < 2; ++i) {
    for (auto& s : enc.push(payload(i, 8))) wire.push_back(std::move(s));
  }
  std::size_t count = 0;
  for (int round = 0; round < 3; ++round) {
    for (const auto& s : wire) count += dec.push(s).size();
  }
  EXPECT_EQ(count, 2u);
}

TEST(FecDecoder, OutOfOrderWithinBlock) {
  FecEncoder enc(3, 1);
  FecDecoder dec(3, 1);
  std::vector<FecShard> wire;
  for (int i = 0; i < 3; ++i) {
    for (auto& s : enc.push(payload(i, 12))) wire.push_back(std::move(s));
  }
  // Deliver parity first, then data 2, 0 (data 1 lost).
  std::vector<std::vector<std::uint8_t>> got;
  for (std::size_t i : {3u, 2u, 0u}) {
    for (auto& p : dec.push(wire[i])) got.push_back(std::move(p));
  }
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(dec.reconstructed(), 1);
}

TEST(FecDecoder, InvalidIndexIgnored) {
  FecDecoder dec(2, 1);
  FecShard bogus{0, 99, {1, 2, 3}};
  EXPECT_TRUE(dec.push(bogus).empty());
}

using PipelineCase = std::tuple<int, int, double>;

class FecPipeline : public ::testing::TestWithParam<PipelineCase> {};

// Property: with loss below the code's tolerance applied per block, all
// payloads are eventually delivered; overall random loss recovers most.
TEST_P(FecPipeline, RandomLossRecovery) {
  const auto [ki, mi, loss] = GetParam();
  const auto k = static_cast<std::size_t>(ki);
  const auto m = static_cast<std::size_t>(mi);
  Rng rng(static_cast<std::uint64_t>(ki * 100 + mi * 10) + 7);
  FecEncoder enc(k, m);
  FecDecoder dec(k, m);
  const int packets = 600;
  std::int64_t delivered = 0;
  for (int i = 0; i < packets; ++i) {
    for (const auto& shard : enc.push(payload(i, 32))) {
      if (rng.bernoulli(loss)) continue;  // network drop
      delivered += static_cast<std::int64_t>(dec.push(shard).size());
    }
  }
  const double rate = static_cast<double>(delivered) / packets;
  // With m/(k+m) >= loss the code recovers nearly everything; always more
  // than the raw delivery rate.
  EXPECT_GT(rate, 1.0 - loss);
  if (loss <= 0.5 * static_cast<double>(m) / static_cast<double>(k + m)) {
    EXPECT_GT(rate, 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, FecPipeline,
                         ::testing::Values(PipelineCase{5, 1, 0.02}, PipelineCase{5, 1, 0.08},
                                           PipelineCase{4, 2, 0.05}, PipelineCase{4, 2, 0.15},
                                           PipelineCase{2, 2, 0.2}, PipelineCase{8, 4, 0.1},
                                           PipelineCase{1, 1, 0.3}));

TEST(FecDecoder, EvictsOldBlocks) {
  FecDecoder dec(2, 1, /*max_tracked_blocks=*/4);
  FecEncoder enc(2, 1);
  // Generate 20 blocks, delivering only the first data shard of each; the
  // tracked map must stay bounded (no way to observe size directly, but
  // reconstruction of evicted blocks silently fails rather than crashing).
  for (int b = 0; b < 20; ++b) {
    auto s1 = enc.push(payload(b * 2, 8));
    auto rest = enc.push(payload(b * 2 + 1, 8));
    (void)dec.push(s1[0]);
  }
  SUCCEED();
}

}  // namespace
}  // namespace ronpath
