// Pins the amortized-O(1) cursor fast paths against the retained
// binary-search reference implementations (loss_process.h "Hot path").
//
// The contract under test: for any roughly-monotone query stream (each
// query lags the furthest query by at most kQuerySafety), the cursor
// lookups return results bit-identical to the reference lookups. The
// fuzz tests drive randomized streams -- forward steps, back-to-back
// repeats, and backward jumps up to the safety bound -- through both
// implementations on the same objects and assert equality at every step.

#include "net/loss_process.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace ronpath {
namespace {

// A busy component: bursts, episodes, outages, diurnal swing, and a set
// of overlapping static boosts, so every lookup path is exercised.
ComponentParams busy_params() {
  ComponentParams p;
  p.base_loss = 0.002;
  p.bursts_per_hour = 90.0;
  p.burst_drop_prob = 0.7;
  p.burst_median = Duration::seconds(2);
  p.episodes_per_day = 48.0;
  p.episode_mean = Duration::minutes(5);
  p.episode_loss_rate = 0.05;
  p.outages_per_month = 200.0;
  p.outage_mean = Duration::minutes(1);
  p.diurnal_amplitude = 0.35;
  return p;
}

std::vector<StateInterval> overlapping_boosts() {
  std::vector<StateInterval> boosts;
  for (int i = 0; i < 12; ++i) {
    const TimePoint s = TimePoint::epoch() + Duration::minutes(5 + i * 7);
    boosts.push_back({s, s + Duration::minutes(10), 1.0 + 0.25 * i});
  }
  return boosts;
}

// Advances a roughly-monotone stream: mostly forward millisecond steps,
// occasional zero steps (probe pairs) and backward jumps within safety.
TimePoint next_query(Rng& rng, TimePoint t, TimePoint furthest) {
  const std::uint64_t kind = rng.next_below(16);
  if (kind == 0) return t;  // exact repeat
  if (kind <= 2) {
    // Backward jump, clamped to the safety window behind the furthest
    // query so the contract is respected.
    const Duration back = Duration::millis(static_cast<std::int64_t>(rng.next_below(29'000)));
    TimePoint jump = t - back;
    const TimePoint floor = furthest - kQuerySafety;
    return jump < floor ? floor : jump;
  }
  return t + Duration::millis(static_cast<std::int64_t>(1 + rng.next_below(40)));
}

TEST(CursorFuzz, SampleMatchesReferenceOnRandomStreams) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    ComponentProcess cp(busy_params(), -71.1, overlapping_boosts(), Rng(seed));
    Rng stream(seed ^ 0xf00d);
    TimePoint t = TimePoint::epoch() + Duration::seconds(1);
    TimePoint furthest = t;
    for (int i = 0; i < 20'000; ++i) {
      // Interleave: the cursor path and the reference path must agree on
      // the same object regardless of which ran last (generation and
      // pruning side effects are shared; only the lookups differ).
      const ComponentSample a = cp.sample(t);
      const ComponentSample b = cp.sample_reference(t);
      ASSERT_EQ(a, b) << "seed " << seed << " step " << i << " t="
                      << t.seconds_since_epoch_f();
      t = next_query(stream, t, furthest);
      if (t > furthest) furthest = t;
    }
  }
}

TEST(CursorFuzz, ReferenceFirstOrderAlsoMatches) {
  // Same stream, but the reference lookup runs first each step, so the
  // cursor path starts cold after every backward jump.
  ComponentProcess cp(busy_params(), 9.0, overlapping_boosts(), Rng(99));
  Rng stream(0xabcdef);
  TimePoint t = TimePoint::epoch() + Duration::seconds(1);
  TimePoint furthest = t;
  for (int i = 0; i < 20'000; ++i) {
    const ComponentSample b = cp.sample_reference(t);
    const ComponentSample a = cp.sample(t);
    ASSERT_EQ(a, b) << "step " << i;
    t = next_query(stream, t, furthest);
    if (t > furthest) furthest = t;
  }
}

TEST(CursorFuzz, ValueAtMatchesReferenceAcrossPruning) {
  LazyIntervalProcess p(Duration::seconds(40), Duration::seconds(15), 3.0, Rng(7));
  Rng stream(0x5eed);
  TimelineCursor cursor;
  TimePoint t = TimePoint::epoch();
  TimePoint furthest = t;
  for (int i = 0; i < 50'000; ++i) {
    p.generate_until(t + kGenLookahead);
    ASSERT_EQ(p.value_at(t, cursor), p.value_at_reference(t)) << "step " << i;
    // The internal-cursor overload must agree too.
    ASSERT_EQ(p.value_at(t), p.value_at_reference(t)) << "step " << i;
    if (i % 64 == 63) p.prune_before(furthest - kQuerySafety);
    t = next_query(stream, t, furthest);
    if (t > furthest) furthest = t;
  }
}

TEST(CursorFuzz, SeparateCursorsDoNotInterfere) {
  // Two cursors on the same timeline, driven at very different paces
  // (packet time vs. generation lookahead): each must stay correct.
  LazyIntervalProcess p(Duration::seconds(30), Duration::seconds(10), 2.0, Rng(21));
  p.generate_until(TimePoint::epoch() + Duration::hours(2));
  TimelineCursor slow;
  TimelineCursor fast;
  for (int i = 0; i < 5'000; ++i) {
    const TimePoint t_slow = TimePoint::epoch() + Duration::millis(i * 40);
    const TimePoint t_fast = t_slow + kGenLookahead;
    ASSERT_EQ(p.value_at(t_slow, slow), p.value_at_reference(t_slow));
    ASSERT_EQ(p.value_at(t_fast, fast), p.value_at_reference(t_fast));
  }
}

TEST(CursorFuzz, NextEdgeAfterBoundsConstantValue) {
  LazyIntervalProcess p(Duration::seconds(25), Duration::seconds(8), 5.0, Rng(3));
  p.generate_until(TimePoint::epoch() + Duration::hours(1));
  TimelineCursor cursor;
  TimelineCursor probe;
  TimePoint t = TimePoint::epoch();
  while (t < TimePoint::epoch() + Duration::minutes(50)) {
    const TimePoint edge = p.next_edge_after(t, cursor);
    ASSERT_GT(edge, t);
    const double v = p.value_at_reference(t);
    // The value is constant on [t, edge): check interior points.
    const Duration span = edge - t;
    for (int k = 1; k <= 3; ++k) {
      const TimePoint mid = t + span * k / 4;
      ASSERT_EQ(p.value_at_reference(mid), v) << "t=" << t.seconds_since_epoch_f();
      ASSERT_EQ(p.value_at(mid, probe), v);
    }
    t = edge;
  }
}

TEST(BoostFlattening, SegmentsMatchReferenceProduct) {
  const std::vector<StateInterval> boosts = overlapping_boosts();
  const std::vector<BoostSegment> segs = flatten_boosts(boosts);
  ASSERT_FALSE(segs.empty());
  // Dense scan: the flattened segment lookup must equal the reference
  // product at every instant, including exactly at the boundaries.
  Rng rng(1);
  for (int i = 0; i < 20'000; ++i) {
    const TimePoint t =
        TimePoint::epoch() + Duration::millis(static_cast<std::int64_t>(rng.next_below(
                                 static_cast<std::uint64_t>(Duration::minutes(120).count_nanos() /
                                                            1'000'000))));
    // Segment lookup: last segment starting at or before t.
    double flat = 1.0;
    for (const auto& seg : segs) {
      if (seg.start > t) break;
      flat = seg.value;
    }
    ASSERT_EQ(flat, boost_at_reference(boosts, t)) << "t=" << t.seconds_since_epoch_f();
  }
  for (const auto& seg : segs) {
    ASSERT_EQ(seg.value, boost_at_reference(boosts, seg.start));
  }
}

TEST(CursorFuzz, EmptyTimelineStaysEmptyCheap) {
  // A process whose first arrival is far beyond any query: lookups must
  // agree (and return 0) without generating anything.
  LazyIntervalProcess p(Duration::days(3650), Duration::seconds(5), 1.0, Rng(4));
  TimelineCursor cursor;
  for (int i = 0; i < 1'000; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::seconds(i);
    p.generate_until(t + kGenLookahead);
    ASSERT_EQ(p.value_at(t, cursor), 0.0);
    ASSERT_EQ(p.value_at_reference(t), 0.0);
  }
}

}  // namespace
}  // namespace ronpath
