#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace ronpath {
namespace {

TEST(RunningStat, EmptyDefaults) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MatchesNaiveComputation) {
  RunningStat s;
  const double xs[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 5.0;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 5.0;
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_DOUBLE_EQ(s.sum(), sum);
}

TEST(RunningStat, MergeEqualsCombined) {
  Rng rng(3);
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 4.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(5.0);
  RunningStat b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  b.merge(a);
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // bin 0
  h.add(0.999);  // bin 0
  h.add(5.0);    // bin 5
  h.add(9.999);  // bin 9
  h.add(-1.0);   // underflow
  h.add(10.0);   // overflow (right-open)
  h.add(100.0);  // overflow
  EXPECT_EQ(h.bin(0), 2);
  EXPECT_EQ(h.bin(5), 1);
  EXPECT_EQ(h.bin(9), 1);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.total(), 7);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, FractionBelow) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i / 10.0 + 0.05);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0), 0.0);
}

TEST(EmpiricalCdf, QuantilesOfKnownData) {
  EmpiricalCdf c;
  for (int i = 1; i <= 100; ++i) c.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);
  EXPECT_NEAR(c.median(), 50.5, 1e-9);
  EXPECT_NEAR(c.quantile(0.25), 25.75, 1e-9);
}

TEST(EmpiricalCdf, FractionAtOrBelow) {
  EmpiricalCdf c;
  for (double x : {1.0, 2.0, 2.0, 3.0}) c.add(x);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(2.0), 0.75);
  EXPECT_DOUBLE_EQ(c.fraction_at_or_below(9.0), 1.0);
}

TEST(EmpiricalCdf, CurveDistinctPoints) {
  EmpiricalCdf c;
  for (double x : {1.0, 1.0, 2.0, 3.0, 3.0, 3.0}) c.add(x);
  const auto pts = c.curve();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].x, 1.0);
  EXPECT_NEAR(pts[0].f, 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(pts[2].x, 3.0);
  EXPECT_DOUBLE_EQ(pts[2].f, 1.0);
}

TEST(EmpiricalCdf, DownsampledCurveBounds) {
  EmpiricalCdf c;
  for (int i = 0; i < 1000; ++i) c.add(static_cast<double>(i));
  const auto pts = c.curve(10);
  ASSERT_EQ(pts.size(), 10u);
  EXPECT_DOUBLE_EQ(pts.front().x, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 999.0);
}

TEST(EmpiricalCdf, InterleavedAddAndQuery) {
  EmpiricalCdf c;
  c.add(5.0);
  EXPECT_DOUBLE_EQ(c.median(), 5.0);
  c.add(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 5.0);
}

TEST(LossCounter, Rates) {
  LossCounter lc;
  for (int i = 0; i < 97; ++i) lc.record(false);
  for (int i = 0; i < 3; ++i) lc.record(true);
  EXPECT_EQ(lc.sent(), 100);
  EXPECT_EQ(lc.lost(), 3);
  EXPECT_EQ(lc.received(), 97);
  EXPECT_DOUBLE_EQ(lc.loss_rate(), 0.03);
  EXPECT_DOUBLE_EQ(lc.loss_percent(), 3.0);
}

TEST(LossCounter, EmptyIsZero) {
  LossCounter lc;
  EXPECT_DOUBLE_EQ(lc.loss_rate(), 0.0);
}

TEST(LossCounter, Merge) {
  LossCounter a;
  LossCounter b;
  a.record(true);
  b.record(false);
  b.record(true);
  a.merge(b);
  EXPECT_EQ(a.sent(), 3);
  EXPECT_EQ(a.lost(), 2);
}

// PairCounter is the core of Table 5; verify the column semantics exactly.
TEST(PairCounter, TableFiveColumns) {
  PairCounter pc;
  // 1000 pairs: 10 first-only, 6 second-only, 4 both, 980 clean.
  for (int i = 0; i < 980; ++i) pc.record(false, false);
  for (int i = 0; i < 10; ++i) pc.record(true, false);
  for (int i = 0; i < 6; ++i) pc.record(false, true);
  for (int i = 0; i < 4; ++i) pc.record(true, true);
  EXPECT_EQ(pc.pairs(), 1000);
  EXPECT_DOUBLE_EQ(pc.first_loss_percent(), 1.4);   // (10+4)/1000
  EXPECT_DOUBLE_EQ(pc.second_loss_percent(), 1.0);  // (6+4)/1000
  EXPECT_DOUBLE_EQ(pc.total_loss_percent(), 0.4);   // 4/1000
  ASSERT_TRUE(pc.conditional_loss_percent().has_value());
  EXPECT_NEAR(*pc.conditional_loss_percent(), 100.0 * 4.0 / 14.0, 1e-9);
}

TEST(PairCounter, NoFirstLossesMeansNoClp) {
  PairCounter pc;
  pc.record(false, true);
  EXPECT_FALSE(pc.conditional_loss_percent().has_value());
}

TEST(PairCounter, Merge) {
  PairCounter a;
  PairCounter b;
  a.record(true, true);
  b.record(true, false);
  b.record(false, false);
  a.merge(b);
  EXPECT_EQ(a.pairs(), 3);
  EXPECT_EQ(a.first_lost(), 2);
  EXPECT_EQ(a.both_lost(), 1);
  EXPECT_NEAR(*a.conditional_loss_percent(), 50.0, 1e-9);
}

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile p(0.5);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.value(), 3.0);
  p.add(1.0);
  p.add(2.0);
  // Median-ish of {1,2,3}.
  EXPECT_NEAR(p.value(), 2.0, 1.0);
}

TEST(P2Quantile, MedianOfUniform) {
  Rng rng(41);
  P2Quantile p(0.5);
  for (int i = 0; i < 100'000; ++i) p.add(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(p.value(), 5.0, 0.15);
}

TEST(P2Quantile, TailQuantileOfExponential) {
  Rng rng(43);
  P2Quantile p(0.99);
  EmpiricalCdf exact;
  for (int i = 0; i < 200'000; ++i) {
    const double x = rng.exponential(10.0);
    p.add(x);
    exact.add(x);
  }
  // p99 of Exp(mean 10) = -10 ln(0.01) ~= 46.05.
  EXPECT_NEAR(p.value(), exact.quantile(0.99), 0.1 * exact.quantile(0.99));
  EXPECT_NEAR(p.value(), 46.05, 6.0);
}

TEST(P2Quantile, MonotoneUnderShift) {
  // Estimates for a higher distribution are higher.
  Rng rng(47);
  P2Quantile lo(0.9);
  P2Quantile hi(0.9);
  for (int i = 0; i < 20'000; ++i) {
    const double x = rng.normal(0.0, 1.0);
    lo.add(x);
    hi.add(x + 5.0);
  }
  EXPECT_NEAR(hi.value() - lo.value(), 5.0, 0.5);
}

TEST(P2Quantile, CountTracks) {
  P2Quantile p(0.75);
  for (int i = 0; i < 10; ++i) p.add(i);
  EXPECT_EQ(p.count(), 10);
  EXPECT_GT(p.value(), 4.0);
  EXPECT_LE(p.value(), 9.0);
}

TEST(P2Quantile, EmptyIsZero) {
  P2Quantile p(0.9);
  EXPECT_DOUBLE_EQ(p.value(), 0.0);
}

// Property: independence implies clp ~= second marginal.
TEST(PairCounter, IndependentLossesHaveClpNearMarginal) {
  Rng rng(77);
  PairCounter pc;
  for (int i = 0; i < 300'000; ++i) pc.record(rng.bernoulli(0.05), rng.bernoulli(0.2));
  ASSERT_TRUE(pc.conditional_loss_percent().has_value());
  EXPECT_NEAR(*pc.conditional_loss_percent(), 20.0, 1.5);
}

}  // namespace
}  // namespace ronpath
