// Workload kill/restore: interrupting a WorkloadWorld at arbitrary
// packet counts, sealing through the snapshot envelope, restoring into
// a freshly constructed world and continuing must produce byte-identical
// reports to an uninterrupted run — mid-flow FEC blocks, loss-burst
// runs, EWMA estimators, dwell clocks and access-bucket backlogs
// included. The fingerprint seals the identity: a snapshot taken under
// one (scenario, policy, config, seed) must not restore under another.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/scenarios.h"
#include "snapshot/codec.h"
#include "snapshot/snapshot.h"
#include "workload/world.h"

namespace ronpath {
namespace {

WorkloadPolicy policy_for(std::size_t index) {
  const auto policies = all_workload_policies();
  return policies[index % policies.size()];
}

// Kill/restore at two arbitrary points per scenario; across the suite
// the kills land before, inside and after the fault windows, and every
// policy (including the FEC-carrying adaptive one) gets interrupted.
TEST(WorkloadSnapshot, KillRestoreReportsAreByteIdentical) {
  const WorkloadConfig cfg;
  const auto scenarios = canonical_scenarios();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const WorkloadPolicy policy = policy_for(i);

    WorkloadWorld uninterrupted(scenario, policy, cfg, 42);
    uninterrupted.run_to_end();
    const std::string expected = uninterrupted.report();

    const std::size_t total = uninterrupted.total_packets();
    ASSERT_GT(total, 4u) << scenario.name;
    const std::size_t kill1 = 1 + (i * 811) % (total / 2);
    const std::size_t kill2 = total / 2 + (i * 977) % (total / 2);

    WorkloadWorld victim(scenario, policy, cfg, 42);
    victim.advance_to(kill1);
    snap::Encoder first;
    victim.save_state(first);
    const std::vector<std::uint8_t> file1 = snap::seal(victim.fingerprint(), first.bytes());

    WorkloadWorld resumed(scenario, policy, cfg, 42);
    {
      const std::vector<std::uint8_t> payload = snap::unseal(file1, resumed.fingerprint());
      snap::Decoder d(payload);
      resumed.restore_state(d);
    }
    EXPECT_EQ(resumed.next_packet(), kill1) << scenario.name;
    resumed.advance_to(kill2);
    snap::Encoder second;
    resumed.save_state(second);
    const std::vector<std::uint8_t> file2 = snap::seal(resumed.fingerprint(), second.bytes());

    WorkloadWorld final_world(scenario, policy, cfg, 42);
    {
      const std::vector<std::uint8_t> payload = snap::unseal(file2, final_world.fingerprint());
      snap::Decoder d(payload);
      final_world.restore_state(d);
    }
    final_world.run_to_end();

    EXPECT_EQ(final_world.report(), expected)
        << scenario.name << "/" << to_string(policy) << " killed at " << kill1 << " and "
        << kill2 << " of " << total;

    std::vector<std::string> violations;
    final_world.check_invariants(violations);
    EXPECT_TRUE(violations.empty()) << scenario.name << ": " << violations.front();
  }
}

TEST(WorkloadSnapshot, FingerprintSealsIdentity) {
  const WorkloadConfig cfg;
  const Scenario& scenario = *find_scenario("link-flap");

  WorkloadWorld world(scenario, WorkloadPolicy::kAdaptive, cfg, 42);
  world.advance_to(100);
  snap::Encoder e;
  world.save_state(e);
  const std::vector<std::uint8_t> file = snap::seal(world.fingerprint(), e.bytes());

  // Different seed, policy, or spec => different fingerprint => unseal
  // must refuse.
  WorkloadWorld other_seed(scenario, WorkloadPolicy::kAdaptive, cfg, 43);
  EXPECT_NE(other_seed.fingerprint(), world.fingerprint());
  EXPECT_THROW((void)snap::unseal(file, other_seed.fingerprint()), snap::SnapshotError);

  WorkloadWorld other_policy(scenario, WorkloadPolicy::kStatic2, cfg, 42);
  EXPECT_NE(other_policy.fingerprint(), world.fingerprint());

  WorkloadConfig other_cfg;
  other_cfg.spec.population *= 2.0;
  WorkloadWorld other_spec(scenario, WorkloadPolicy::kAdaptive, other_cfg, 42);
  EXPECT_NE(other_spec.fingerprint(), world.fingerprint());

  // The matching fingerprint still unseals.
  WorkloadWorld same(scenario, WorkloadPolicy::kAdaptive, cfg, 42);
  EXPECT_NO_THROW((void)snap::unseal(file, same.fingerprint()));
}

TEST(WorkloadSnapshot, RestoreRejectsCorruptControllerLevel) {
  const WorkloadConfig cfg;
  const Scenario& scenario = *find_scenario("single-site-blackout");
  WorkloadWorld world(scenario, WorkloadPolicy::kAdaptive, cfg, 42);
  world.advance_to(50);
  snap::Encoder e;
  world.save_state(e);

  // Decoding random junk as a world must throw, never crash or hang.
  std::vector<std::uint8_t> bytes = e.take();
  for (std::size_t flip = 8; flip < bytes.size(); flip += 97) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[flip] ^= 0xff;
    WorkloadWorld fresh(scenario, WorkloadPolicy::kAdaptive, cfg, 42);
    snap::Decoder d(mutated);
    try {
      fresh.restore_state(d);
      // Some flips only touch metric counts and decode fine; that is
      // acceptable — the envelope CRC catches them in real files.
    } catch (const snap::SnapshotError&) {
      // expected for structural damage
    }
  }
}

}  // namespace
}  // namespace ronpath
