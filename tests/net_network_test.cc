#include "net/network.h"

#include <gtest/gtest.h>

#include "core/testbed.h"
#include "util/rng.h"

namespace ronpath {
namespace {

Network make_net(std::uint64_t seed = 7, Duration horizon = Duration::hours(4)) {
  return Network(testbed_2003(), NetConfig::profile_2003(), horizon, Rng(seed));
}

TEST(Network, DeliversMostPackets) {
  Network net = make_net();
  int delivered = 0;
  const int n = 20'000;
  Rng rng(1);
  for (int i = 0; i < n; ++i) {
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    const auto r = net.transmit(PathSpec{a, b, kDirectVia},
                                TimePoint::epoch() + Duration::millis(i * 5));
    delivered += r.delivered ? 1 : 0;
  }
  // Loss should be well under 5% and nonzero-ish over 20k packets.
  EXPECT_GT(delivered, n * 95 / 100);
  EXPECT_EQ(net.stats().transmitted, n);
  EXPECT_EQ(net.stats().delivered, delivered);
}

TEST(Network, LatencyAtLeastBaseLatency) {
  Network net = make_net();
  Rng rng(2);
  for (int i = 0; i < 2'000; ++i) {
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    const PathSpec path{a, b, kDirectVia};
    const auto r = net.transmit(path, TimePoint::epoch() + Duration::millis(i * 20));
    if (r.delivered) {
      EXPECT_GE(r.latency, net.base_latency(path));
    }
  }
}

TEST(Network, IndirectBaseLatencyExceedsLegs) {
  Network net = make_net();
  const PathSpec direct{0, 1, kDirectVia};
  const PathSpec via{0, 1, 2};
  // Indirect base latency is the sum of the two legs plus forwarding.
  const Duration leg1 = net.base_latency(PathSpec{0, 2, kDirectVia});
  const Duration leg2 = net.base_latency(PathSpec{2, 1, kDirectVia});
  EXPECT_EQ(net.base_latency(via), leg1 + leg2 + net.config().forward_delay);
  EXPECT_GT(net.base_latency(via), Duration::zero());
  EXPECT_GT(net.base_latency(direct), Duration::zero());
}

TEST(Network, TwoHopBaseLatencyComposes) {
  Network net = make_net();
  const Duration leg1 = net.base_latency(PathSpec{0, 2, kDirectVia});
  const Duration leg2 = net.base_latency(PathSpec{2, 5, kDirectVia});
  const Duration leg3 = net.base_latency(PathSpec{5, 1, kDirectVia});
  const Duration two = net.base_latency(PathSpec{0, 1, 2, 5});
  EXPECT_EQ(two, leg1 + leg2 + leg3 + 2 * net.config().forward_delay);
}

TEST(Network, TwoHopTransmitDelivers) {
  Network net = make_net();
  int delivered = 0;
  for (int i = 0; i < 2'000; ++i) {
    const auto r = net.transmit(PathSpec{0, 1, 2, 5},
                                TimePoint::epoch() + Duration::millis(i * 40));
    if (r.delivered) {
      ++delivered;
      EXPECT_GE(r.latency, net.base_latency(PathSpec{0, 1, 2, 5}));
    }
  }
  EXPECT_GT(delivered, 1'900);
}

TEST(Network, CoreStretchRespectsMinimum) {
  Network net = make_net();
  for (NodeId a = 0; a < 30; ++a) {
    for (NodeId b = 0; b < 30; ++b) {
      if (a == b) continue;
      EXPECT_GE(net.core_stretch(a, b), net.config().core_stretch_min);
    }
  }
}

TEST(Network, DeterministicAcrossInstances) {
  Network n1 = make_net(42);
  Network n2 = make_net(42);
  Rng rng(5);
  for (int i = 0; i < 5'000; ++i) {
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    const TimePoint t = TimePoint::epoch() + Duration::millis(i * 7);
    const auto r1 = n1.transmit(PathSpec{a, b, kDirectVia}, t);
    const auto r2 = n2.transmit(PathSpec{a, b, kDirectVia}, t);
    EXPECT_EQ(r1.delivered, r2.delivered);
    if (r1.delivered) EXPECT_EQ(r1.latency, r2.latency);
  }
}

// Back-to-back packets share burst fate: conditional loss far above the
// unconditional rate (the paper's central same-path observation).
TEST(Network, BackToBackLossIsCorrelated) {
  Network net = make_net(11, Duration::hours(7));
  Rng rng(3);
  std::int64_t first_lost = 0;
  std::int64_t both_lost = 0;
  const std::int64_t n = 300'000;
  for (std::int64_t i = 0; i < n; ++i) {
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    const TimePoint t = TimePoint::epoch() + Duration::micros(i * 80'000);
    const auto r1 = net.transmit(PathSpec{a, b, kDirectVia}, t);
    if (!r1.delivered) {
      ++first_lost;
      const auto r2 = net.transmit(PathSpec{a, b, kDirectVia}, t);
      if (!r2.delivered) ++both_lost;
    }
  }
  ASSERT_GT(first_lost, 50);
  const double clp = static_cast<double>(both_lost) / static_cast<double>(first_lost);
  const double base = static_cast<double>(first_lost) / static_cast<double>(n);
  EXPECT_GT(clp, 0.4);
  EXPECT_GT(clp, 20.0 * base);
}

// A 500 ms gap should mostly de-correlate losses (Bolot's observation).
TEST(Network, HalfSecondGapDecorrelates) {
  Network net = make_net(13, Duration::hours(7));
  Rng rng(5);
  std::int64_t first_lost = 0;
  std::int64_t both_lost = 0;
  const std::int64_t n = 300'000;
  for (std::int64_t i = 0; i < n; ++i) {
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    const TimePoint t = TimePoint::epoch() + Duration::micros(i * 80'000);
    const auto r1 = net.transmit(PathSpec{a, b, kDirectVia}, t);
    if (!r1.delivered) {
      ++first_lost;
      const auto r2 = net.transmit(PathSpec{a, b, kDirectVia}, t + Duration::millis(500));
      if (!r2.delivered) ++both_lost;
    }
  }
  ASSERT_GT(first_lost, 50);
  const double clp = static_cast<double>(both_lost) / static_cast<double>(first_lost);
  // Far below the back-to-back CLP; outages/episodes keep a floor.
  EXPECT_LT(clp, 0.45);
}

TEST(Network, CornellIncidentInflatesLatency) {
  // Build with the 14-day schedule and look inside the Cornell window.
  const Topology topo = testbed_2003();
  Network net(topo, NetConfig::profile_2003(), Duration::days(8), Rng(17));
  const NodeId cornell = *topo.find("Cornell");
  const NodeId mit = *topo.find("MIT");
  const PathSpec path{mit, cornell, kDirectVia};

  RunningStat before;
  for (int i = 0; i < 3'000; ++i) {
    const auto r = net.transmit(path, TimePoint::epoch() + Duration::days(1) +
                                          Duration::millis(i * 50));
    if (r.delivered) before.add(r.latency.to_millis_f());
  }
  RunningStat during;
  for (int i = 0; i < 3'000; ++i) {
    const auto r = net.transmit(path, TimePoint::epoch() + Duration::days(6) +
                                          Duration::hours(2) + Duration::millis(i * 50));
    if (r.delivered) during.add(r.latency.to_millis_f());
  }
  ASSERT_GT(before.count(), 100);
  ASSERT_GT(during.count(), 100);
  // The pathology hits ~80% of Cornell transit paths with +700 ms.
  EXPECT_GT(during.mean(), before.mean() + 100.0);
}

TEST(Network, StatsCausesSumToDrops) {
  Network net = make_net(19);
  Rng rng(7);
  for (std::int64_t i = 0; i < 40'000; ++i) {
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    (void)net.transmit(PathSpec{a, b, kDirectVia},
                       TimePoint::epoch() + Duration::micros(i * 120'000));
  }
  const auto& s = net.stats();
  EXPECT_EQ(s.transmitted - s.delivered,
            s.dropped_random + s.dropped_burst + s.dropped_outage);
}

TEST(DropCause, Names) {
  EXPECT_EQ(to_string(DropCause::kNone), "none");
  EXPECT_EQ(to_string(DropCause::kRandom), "random");
  EXPECT_EQ(to_string(DropCause::kBurst), "burst");
  EXPECT_EQ(to_string(DropCause::kOutage), "outage");
  EXPECT_EQ(to_string(DropCause::kInjected), "injected");
}

// transmit() promises the roughly-monotone query contract of
// loss_process.h: sends may lag the newest send by up to kQuerySafety.
#ifdef NDEBUG
TEST(Network, FarPastTransmitClampsInsteadOfCrashing) {
  Network net = make_net(23);
  (void)net.transmit(PathSpec{0, 1, kDirectVia}, TimePoint::epoch() + Duration::hours(1));
  // A query a full hour out of order would read pruned component history;
  // release builds clamp it to the retained window and answer normally.
  int ok = 0;
  for (int i = 0; i < 200; ++i) {
    ok += net.transmit(PathSpec{0, 1, kDirectVia}, TimePoint::epoch() + Duration::seconds(i))
                  .delivered
              ? 1
              : 0;
  }
  EXPECT_GT(ok, 150);
  EXPECT_EQ(net.stats().transmitted, 201);
}
#else
TEST(NetworkDeathTest, FarPastTransmitAssertsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Network net = make_net(23);
  (void)net.transmit(PathSpec{0, 1, kDirectVia}, TimePoint::epoch() + Duration::hours(1));
  EXPECT_DEATH((void)net.transmit(PathSpec{0, 1, kDirectVia}, TimePoint::epoch()),
               "too far in the past");
}
#endif

}  // namespace
}  // namespace ronpath
