#include "measure/liveness.h"

#include <gtest/gtest.h>

namespace ronpath {
namespace {

TimePoint at(int seconds) { return TimePoint::epoch() + Duration::seconds(seconds); }

TEST(Liveness, SteadyActivityNeverDown) {
  HostLivenessTracker t(2);
  for (int s = 0; s < 300; ++s) t.note_activity(0, at(s));
  t.finish(at(300));
  for (int s = 0; s < 300; s += 10) EXPECT_FALSE(t.was_down(0, at(s))) << s;
}

TEST(Liveness, GapBeyondThresholdInfersDown) {
  HostLivenessTracker t(1);
  t.note_activity(0, at(0));
  t.note_activity(0, at(500));  // 500 s gap
  t.finish(at(600));
  // Down from last_activity + 90 to resume.
  EXPECT_FALSE(t.was_down(0, at(50)));
  EXPECT_FALSE(t.was_down(0, at(89)));
  EXPECT_TRUE(t.was_down(0, at(90)));
  EXPECT_TRUE(t.was_down(0, at(499)));
  EXPECT_FALSE(t.was_down(0, at(500)));
  EXPECT_FALSE(t.was_down(0, at(550)));
}

TEST(Liveness, ShortGapNotDown) {
  HostLivenessTracker t(1);
  t.note_activity(0, at(0));
  t.note_activity(0, at(89));
  t.finish(at(100));
  for (int s = 0; s <= 89; s += 5) EXPECT_FALSE(t.was_down(0, at(s)));
}

// The streaming case: a host that died and has not yet resumed must be
// reported down for times beyond last activity + threshold, even before
// finish() - this is what lets the aggregator filter while the run is
// still in progress.
TEST(Liveness, PendingSilenceReportedDown) {
  HostLivenessTracker t(1);
  t.note_activity(0, at(100));
  EXPECT_FALSE(t.was_down(0, at(150)));
  EXPECT_TRUE(t.was_down(0, at(191)));
  EXPECT_TRUE(t.was_down(0, at(10'000)));
}

TEST(Liveness, NeverHeardFromIsDown) {
  HostLivenessTracker t(2);
  t.note_activity(0, at(5));
  EXPECT_TRUE(t.was_down(1, at(5)));
  t.finish(at(100));
  EXPECT_TRUE(t.was_down(1, at(50)));
  ASSERT_EQ(t.intervals(1).size(), 1u);
  EXPECT_EQ(t.intervals(1)[0].start, TimePoint::epoch());
}

TEST(Liveness, FinishClosesTrailingSilence) {
  HostLivenessTracker t(1);
  t.note_activity(0, at(10));
  t.finish(at(500));
  ASSERT_EQ(t.intervals(0).size(), 1u);
  EXPECT_EQ(t.intervals(0)[0].start, at(100));
  EXPECT_EQ(t.intervals(0)[0].end, at(500));
}

TEST(Liveness, MultipleDownIntervals) {
  HostLivenessTracker t(1);
  t.note_activity(0, at(0));
  t.note_activity(0, at(300));   // gap 1: [90, 300)
  t.note_activity(0, at(310));
  t.note_activity(0, at(1000));  // gap 2: [400, 1000)
  t.finish(at(1010));
  ASSERT_EQ(t.intervals(0).size(), 2u);
  EXPECT_TRUE(t.was_down(0, at(100)));
  EXPECT_FALSE(t.was_down(0, at(305)));
  EXPECT_TRUE(t.was_down(0, at(500)));
  EXPECT_FALSE(t.was_down(0, at(1005)));
}

TEST(Liveness, CustomThreshold) {
  HostLivenessTracker t(1, Duration::seconds(10));
  t.note_activity(0, at(0));
  t.note_activity(0, at(50));
  t.finish(at(60));
  EXPECT_TRUE(t.was_down(0, at(10)));
  EXPECT_FALSE(t.was_down(0, at(9)));
  EXPECT_EQ(t.threshold(), Duration::seconds(10));
}

TEST(Liveness, BoundaryExactlyAtThreshold) {
  HostLivenessTracker t(1);
  t.note_activity(0, at(0));
  t.note_activity(0, at(90));  // exactly the threshold: not a failure
  t.finish(at(100));
  EXPECT_TRUE(t.intervals(0).empty());
}

}  // namespace
}  // namespace ronpath
