// SimWorld correctness pins.
//
// 1. Differential: a SimWorld run to completion must reproduce
//    run_fault_cell's FaultCell bit-for-bit for every canonical
//    scenario — the resumable world and the reference cell runner can
//    never drift apart silently.
// 2. Kill/restore: interrupting a run at arbitrary send counts,
//    serializing through the sealed envelope, restoring into a freshly
//    constructed world and continuing must produce byte-identical
//    reports to an uninterrupted run — including double-kill schedules
//    and a full disk round trip.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/fault_matrix.h"
#include "fault/scenarios.h"
#include "snapshot/audit.h"
#include "snapshot/codec.h"
#include "snapshot/snapshot.h"
#include "snapshot/world.h"

namespace ronpath {
namespace {

FaultScheme scheme_for(std::size_t index) {
  const auto schemes = all_fault_schemes();
  return schemes[index % schemes.size()];
}

void expect_cells_identical(const FaultCell& a, const FaultCell& b, std::string_view what) {
  EXPECT_EQ(a.loss_pre_pct, b.loss_pre_pct) << what;
  EXPECT_EQ(a.loss_fault_pct, b.loss_fault_pct) << what;
  EXPECT_EQ(a.loss_post_pct, b.loss_post_pct) << what;
  EXPECT_EQ(a.failover_measured, b.failover_measured) << what;
  EXPECT_EQ(a.failover_s, b.failover_s) << what;
  EXPECT_EQ(a.recovery_measured, b.recovery_measured) << what;
  EXPECT_EQ(a.recovery_s, b.recovery_s) << what;
  EXPECT_EQ(a.overhead, b.overhead) << what;
  EXPECT_EQ(a.route_switches, b.route_switches) << what;
  EXPECT_EQ(a.injected_drops, b.injected_drops) << what;
  EXPECT_EQ(a.merged_fault_windows, b.merged_fault_windows) << what;
}

// SimWorld::cell() == run_fault_cell() for every canonical scenario.
TEST(SnapshotWorld, DifferentialAgainstRunFaultCell) {
  FaultMatrixConfig cfg;
  cfg.node_count = 8;
  const auto scenarios = canonical_scenarios();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const FaultScheme scheme = scheme_for(i);
    const FaultCell reference = run_fault_cell(scenario, scheme, cfg, cfg.seed);

    SimWorld world(scenario, scheme, cfg, cfg.seed);
    world.run_to_end();
    ASSERT_TRUE(world.finished());
    expect_cells_identical(world.cell(), reference,
                           std::string(scenario.name) + "/" + std::string(to_string(scheme)));

    std::vector<std::string> violations = audit_world(world);
    EXPECT_TRUE(violations.empty())
        << scenario.name << ": " << format_audit(violations);
  }
}

// Kill/restore at two arbitrary points; the continued run's report must
// be byte-identical to the uninterrupted run's for all 8 scenarios.
TEST(SnapshotWorld, KillRestoreReportsAreByteIdentical) {
  FaultMatrixConfig cfg;
  cfg.node_count = 6;
  cfg.send_interval = Duration::millis(200);
  const auto scenarios = canonical_scenarios();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const FaultScheme scheme = scheme_for(i + 1);

    SimWorld uninterrupted(scenario, scheme, cfg, cfg.seed);
    uninterrupted.run_to_end();
    const std::string expected = uninterrupted.report();

    // Vary the kill points per scenario so, across the suite, kills land
    // before, inside and after the fault window.
    const std::size_t total = uninterrupted.total_sends();
    const std::size_t kill1 = 1 + (i * 811) % (total / 2);
    const std::size_t kill2 = total / 2 + (i * 977) % (total / 2);

    SimWorld victim(scenario, scheme, cfg, cfg.seed);
    victim.advance_to(kill1);
    snap::Encoder first;
    victim.save_state(first);
    const std::vector<std::uint8_t> file1 = snap::seal(victim.fingerprint(), first.bytes());

    SimWorld resumed(scenario, scheme, cfg, cfg.seed);
    {
      const std::vector<std::uint8_t> payload = snap::unseal(file1, resumed.fingerprint());
      snap::Decoder d(payload);
      resumed.restore_state(d);
    }
    EXPECT_EQ(resumed.next_send(), kill1) << scenario.name;
    resumed.advance_to(kill2);
    snap::Encoder second;
    resumed.save_state(second);
    const std::vector<std::uint8_t> file2 = snap::seal(resumed.fingerprint(), second.bytes());

    SimWorld final_world(scenario, scheme, cfg, cfg.seed);
    {
      const std::vector<std::uint8_t> payload = snap::unseal(file2, final_world.fingerprint());
      snap::Decoder d(payload);
      final_world.restore_state(d);
    }
    final_world.run_to_end();

    EXPECT_EQ(final_world.report(), expected)
        << scenario.name << " killed at " << kill1 << " and " << kill2 << " of " << total;
    expect_cells_identical(final_world.cell(), uninterrupted.cell(), scenario.name);

    std::vector<std::string> violations = audit_world(final_world);
    EXPECT_TRUE(violations.empty())
        << scenario.name << ": " << format_audit(violations);
  }
}

// A checkpoint taken mid-warmup (before any CBR send) restores too.
TEST(SnapshotWorld, WarmupCheckpointRestores) {
  FaultMatrixConfig cfg;
  cfg.node_count = 6;
  cfg.send_interval = Duration::millis(200);
  const Scenario& scenario = *find_scenario("link-flap");

  SimWorld uninterrupted(scenario, FaultScheme::kReactive, cfg, cfg.seed);
  uninterrupted.run_to_end();

  SimWorld victim(scenario, FaultScheme::kReactive, cfg, cfg.seed);
  victim.advance_to(0);  // runs the warmup, sends nothing
  snap::Encoder e;
  victim.save_state(e);

  SimWorld resumed(scenario, FaultScheme::kReactive, cfg, cfg.seed);
  snap::Decoder d(e.bytes());
  resumed.restore_state(d);
  resumed.run_to_end();
  EXPECT_EQ(resumed.report(), uninterrupted.report());
}

// Same kill/restore guarantee through actual files on disk.
TEST(SnapshotWorld, DiskRoundTripMatchesUninterrupted) {
  FaultMatrixConfig cfg;
  cfg.node_count = 6;
  cfg.send_interval = Duration::millis(200);
  const Scenario& scenario = *find_scenario("single-site-blackout");

  SimWorld uninterrupted(scenario, FaultScheme::kHybrid, cfg, cfg.seed);
  uninterrupted.run_to_end();

  SimWorld victim(scenario, FaultScheme::kHybrid, cfg, cfg.seed);
  victim.advance_to(victim.total_sends() / 3);
  snap::Encoder e;
  victim.save_state(e);
  const std::string path = testing::TempDir() + "/ronpath_world_roundtrip.snap";
  snap::write_file(path, victim.fingerprint(), e.bytes());

  SimWorld resumed(scenario, FaultScheme::kHybrid, cfg, cfg.seed);
  const std::vector<std::uint8_t> payload = snap::read_file(path, resumed.fingerprint());
  snap::Decoder d(payload);
  resumed.restore_state(d);
  resumed.run_to_end();
  EXPECT_EQ(resumed.report(), uninterrupted.report());
  std::remove(path.c_str());
}

// Restoring twice from the same snapshot gives the same continuation —
// snapshots are read-only artifacts, not consumed by restore.
TEST(SnapshotWorld, SnapshotIsReusable) {
  FaultMatrixConfig cfg;
  cfg.node_count = 5;
  cfg.warmup = Duration::minutes(5);
  cfg.measured = Duration::minutes(5);
  cfg.send_interval = Duration::millis(250);
  const Scenario& scenario = *find_scenario("crash-churn");

  SimWorld victim(scenario, FaultScheme::kReactive, cfg, cfg.seed);
  victim.advance_to(victim.total_sends() / 2);
  snap::Encoder e;
  victim.save_state(e);

  std::string first_report;
  for (int round = 0; round < 2; ++round) {
    SimWorld resumed(scenario, FaultScheme::kReactive, cfg, cfg.seed);
    snap::Decoder d(e.bytes());
    resumed.restore_state(d);
    resumed.run_to_end();
    if (round == 0) {
      first_report = resumed.report();
    } else {
      EXPECT_EQ(resumed.report(), first_report);
    }
  }
}

}  // namespace
}  // namespace ronpath
