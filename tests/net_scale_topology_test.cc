// The synthetic hierarchical topology generator (net/scale_topology.h):
// determinism, naming, and delay structure at scaling-tier sizes.

#include "net/scale_topology.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace ronpath {
namespace {

std::string metro_of(const Site& s) { return s.name.substr(0, s.name.find('-')); }

TEST(ScaleTopology, SizesAreExact) {
  for (const std::size_t n : {2u, 30u, 300u, 1000u}) {
    ScaleTopologyParams p;
    p.nodes = n;
    EXPECT_EQ(scale_topology(p).size(), n);
  }
}

TEST(ScaleTopology, ByteIdenticalAcrossCalls) {
  ScaleTopologyParams p;
  p.nodes = 300;
  p.seed = 7;
  const Topology a = scale_topology(p);
  const Topology b = scale_topology(p);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId i = 0; i < static_cast<NodeId>(a.size()); ++i) {
    EXPECT_EQ(a.site(i).name, b.site(i).name);
    EXPECT_EQ(a.site(i).location, b.site(i).location);
    EXPECT_EQ(a.site(i).link_class, b.site(i).link_class);
    EXPECT_EQ(a.site(i).lat_deg, b.site(i).lat_deg);  // bitwise: same fork, same draws
    EXPECT_EQ(a.site(i).lon_deg, b.site(i).lon_deg);
  }
}

TEST(ScaleTopology, SeedChangesPlacement) {
  ScaleTopologyParams p;
  p.nodes = 60;
  p.seed = 1;
  const Topology a = scale_topology(p);
  p.seed = 2;
  const Topology b = scale_topology(p);
  bool differs = false;
  for (NodeId i = 0; i < static_cast<NodeId>(a.size()) && !differs; ++i) {
    differs = a.site(i).lat_deg != b.site(i).lat_deg || a.site(i).lon_deg != b.site(i).lon_deg;
  }
  EXPECT_TRUE(differs);
}

TEST(ScaleTopology, NamesAreUniqueAndSynthetic) {
  ScaleTopologyParams p;
  p.nodes = 300;
  const Topology topo = scale_topology(p);
  std::set<std::string> names;
  for (const Site& s : topo.sites()) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    // NetConfig::params_for matches testbed hosts by exact name; the
    // synthetic namespace must never collide (notably "Korea").
    EXPECT_EQ(s.name[0], 'm') << s.name;
    EXPECT_NE(s.name, "Korea");
  }
}

TEST(ScaleTopology, DelayStructureIsHierarchical) {
  ScaleTopologyParams p;
  p.nodes = 300;
  const Topology topo = scale_topology(p);
  const auto n = static_cast<NodeId>(topo.size());

  // Within a metro: sub-millisecond-ish propagation (coordinate jitter
  // around one center). Across the world table: transoceanic pairs.
  Duration best_intra = Duration::max();
  Duration worst = Duration::seconds(0);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
      const Duration d = topo.propagation(a, b);
      if (metro_of(topo.site(a)) == metro_of(topo.site(b))) {
        best_intra = std::min(best_intra, d);
      }
      worst = std::max(worst, d);
    }
  }
  EXPECT_LT(best_intra, Duration::millis(2));
  EXPECT_GT(worst, Duration::millis(20));
}

TEST(ScaleTopology, LinkClassMixIsHeterogeneous) {
  ScaleTopologyParams p;
  p.nodes = 300;
  const Topology topo = scale_topology(p);
  std::set<LinkClass> classes;
  for (const Site& s : topo.sites()) classes.insert(s.link_class);
  EXPECT_GE(classes.size(), 2u);
}

}  // namespace
}  // namespace ronpath
