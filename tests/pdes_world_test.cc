// Sequenced sharded mode at the fault-cell level.
//
// With cfg.shards > 0 a fault cell runs the sharded underlay discipline
// (per-component RNG substreams + the quantized AdvanceService). The
// contract: the CELL — and the SimWorld report — is byte-identical at
// every positive shard count across all 8 canonical scenarios. It is a
// different discipline from legacy (shards == 0), so those bytes may
// (and do) differ; the legacy golden tables stay pinned elsewhere.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/fault_matrix.h"
#include "fault/scenarios.h"
#include "snapshot/world.h"
#include "util/time.h"

namespace ronpath {
namespace {

// Short but realistic: the warmup covers several probe rounds so routing
// reacts, and the measured window spans each scenario's fault.
FaultMatrixConfig sharded_cfg(int shards) {
  FaultMatrixConfig cfg;
  cfg.node_count = 8;
  cfg.warmup = Duration::minutes(8);
  cfg.measured = Duration::minutes(8);
  cfg.send_interval = Duration::millis(500);
  cfg.shards = shards;
  return cfg;
}

FaultScheme scheme_for(std::size_t i) {
  switch (i % 4) {
    case 0: return FaultScheme::kDirect;
    case 1: return FaultScheme::kReactive;
    case 2: return FaultScheme::kMesh;
    default: return FaultScheme::kHybrid;
  }
}

void expect_same_cell(const FaultCell& a, const FaultCell& b, const std::string& what) {
  EXPECT_EQ(a.loss_pre_pct, b.loss_pre_pct) << what;
  EXPECT_EQ(a.loss_fault_pct, b.loss_fault_pct) << what;
  EXPECT_EQ(a.loss_post_pct, b.loss_post_pct) << what;
  EXPECT_EQ(a.failover_measured, b.failover_measured) << what;
  EXPECT_EQ(a.failover_s, b.failover_s) << what;
  EXPECT_EQ(a.recovery_measured, b.recovery_measured) << what;
  EXPECT_EQ(a.recovery_s, b.recovery_s) << what;
  EXPECT_EQ(a.overhead, b.overhead) << what;
  EXPECT_EQ(a.route_switches, b.route_switches) << what;
  EXPECT_EQ(a.injected_drops, b.injected_drops) << what;
}

// Every canonical scenario, rotating schemes: the cell at 2, 4 and 8
// shards must equal the 1-shard cell exactly (doubles compared
// bit-for-bit via operator==).
TEST(PdesWorld, FaultCellsAreShardCountInvariant) {
  const auto scenarios = canonical_scenarios();
  ASSERT_EQ(scenarios.size(), 8u);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const FaultScheme scheme = scheme_for(i);
    const FaultMatrixConfig base = sharded_cfg(1);
    const FaultCell cell1 = run_fault_cell(scenario, scheme, base, base.seed);
    for (const int shards : {2, 4, 8}) {
      const FaultMatrixConfig cfg = sharded_cfg(shards);
      const FaultCell cellk = run_fault_cell(scenario, scheme, cfg, cfg.seed);
      expect_same_cell(cell1, cellk,
                       std::string(scenario.name) + " @ " + std::to_string(shards) + " shards");
    }
  }
}

// The full SimWorld report — clock, event counts, net stats, probe
// counters, delivery-timeline hash, cell metrics — byte-identical
// across shard counts for every scenario.
TEST(PdesWorld, ReportsAreShardCountInvariant) {
  const auto scenarios = canonical_scenarios();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    const FaultScheme scheme = scheme_for(i + 1);
    const FaultMatrixConfig base = sharded_cfg(1);
    SimWorld one(scenario, scheme, base, base.seed);
    one.run_to_end();
    const std::string expected = one.report();
    for (const int shards : {2, 4, 8}) {
      const FaultMatrixConfig cfg = sharded_cfg(shards);
      SimWorld world(scenario, scheme, cfg, cfg.seed);
      world.run_to_end();
      EXPECT_EQ(world.report(), expected)
          << scenario.name << " @ " << shards << " shards";
    }
  }
}

// The sharded discipline really is a different stream layout from
// legacy: if a "sharded" run reproduced legacy bytes, the per-component
// substreams would not actually be in use.
TEST(PdesWorld, ShardedDisciplineDiffersFromLegacy) {
  const auto scenarios = canonical_scenarios();
  const Scenario& scenario = scenarios[0];
  FaultMatrixConfig legacy = sharded_cfg(1);
  legacy.shards = 0;
  const FaultCell legacy_cell =
      run_fault_cell(scenario, FaultScheme::kReactive, legacy, legacy.seed);
  const FaultMatrixConfig cfg = sharded_cfg(1);
  const FaultCell sharded_cell =
      run_fault_cell(scenario, FaultScheme::kReactive, cfg, cfg.seed);
  // Loss percentages are the most draw-sensitive field; at least one
  // phase should move when every component owns its own substream.
  EXPECT_TRUE(legacy_cell.loss_pre_pct != sharded_cell.loss_pre_pct ||
              legacy_cell.loss_fault_pct != sharded_cell.loss_fault_pct ||
              legacy_cell.loss_post_pct != sharded_cell.loss_post_pct ||
              legacy_cell.route_switches != sharded_cell.route_switches);
}

}  // namespace
}  // namespace ronpath
