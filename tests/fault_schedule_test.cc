#include "fault/fault.h"

#include <gtest/gtest.h>

namespace ronpath {
namespace {

TimePoint at_s(std::int64_t s) { return TimePoint::epoch() + Duration::seconds(s); }

TEST(FaultDsl, ParsesEveryVerb) {
  const auto sched = FaultSchedule::parse(
      "# canonical examples\n"
      "at 120s down site 7 access for 45s\n"
      "at 2m down sites 1,2,3 for 90s\n"
      "at 10m down link 3->9 for 1m\n"
      "at 10m blackhole probes node 3 for 5m\n"
      "at 10m lsa-loss node 2 for 5m\n"
      "at 10m crash node 4 for 30s\n"
      "every 300s flap link 3->9 for 10s\n"
      "every 240s crash node 4 for 30s\n");
  ASSERT_TRUE(sched.has_value());
  ASSERT_EQ(sched->faults().size(), 8u);

  const auto& f0 = sched->faults()[0];
  EXPECT_EQ(f0.kind, FaultKind::kComponentBlackout);
  EXPECT_EQ(f0.scope, FaultScope::kSiteAccess);
  EXPECT_EQ(f0.sites, std::vector<NodeId>{7});
  EXPECT_EQ(f0.start, at_s(120));
  EXPECT_EQ(f0.duration, Duration::seconds(45));
  EXPECT_FALSE(f0.periodic());

  const auto& f1 = sched->faults()[1];
  EXPECT_EQ(f1.scope, FaultScope::kSiteAll);
  EXPECT_EQ(f1.sites, (std::vector<NodeId>{1, 2, 3}));

  const auto& f2 = sched->faults()[2];
  EXPECT_EQ(f2.scope, FaultScope::kLink);
  EXPECT_EQ(f2.link_src, 3u);
  EXPECT_EQ(f2.link_dst, 9u);

  EXPECT_EQ(sched->faults()[3].kind, FaultKind::kProbeBlackhole);
  EXPECT_EQ(sched->faults()[4].kind, FaultKind::kLsaLoss);
  EXPECT_EQ(sched->faults()[5].kind, FaultKind::kCrash);

  const auto& flap = sched->faults()[6];
  EXPECT_TRUE(flap.periodic());
  EXPECT_EQ(flap.period, Duration::seconds(300));
  EXPECT_EQ(flap.start, at_s(300));  // first occurrence at the period mark
  EXPECT_EQ(flap.duration, Duration::seconds(10));
}

TEST(FaultDsl, AcceptsCommentsBlanksAndUnits) {
  const auto sched = FaultSchedule::parse(
      "\n"
      "  # full-line comment\n"
      "at 500ms down link 0->1 for 250ms  # trailing comment\n"
      "at 1.5h down site 2 provider for 0.5m\n");
  ASSERT_TRUE(sched.has_value());
  ASSERT_EQ(sched->faults().size(), 2u);
  EXPECT_EQ(sched->faults()[0].start, TimePoint::epoch() + Duration::millis(500));
  EXPECT_EQ(sched->faults()[0].duration, Duration::millis(250));
  EXPECT_EQ(sched->faults()[1].start, TimePoint::epoch() + Duration::minutes(90));
  EXPECT_EQ(sched->faults()[1].duration, Duration::seconds(30));
  EXPECT_EQ(sched->faults()[1].scope, FaultScope::kSiteProvider);
}

TEST(FaultDsl, EmptyInputIsAnEmptySchedule) {
  const auto sched = FaultSchedule::parse("# nothing but comments\n\n");
  ASSERT_TRUE(sched.has_value());
  EXPECT_TRUE(sched->empty());
}

struct BadCase {
  const char* dsl;
  const char* why;
};

TEST(FaultDsl, RejectsMalformedLinesWithLineNumbers) {
  const BadCase cases[] = {
      {"down site 1 for 10s\n", "missing at/every head"},
      {"at 10s nuke site 1 for 10s\n", "unknown verb"},
      {"at 10s down site 1 for 10s extra\n", "trailing junk"},
      {"at 10x down site 1 for 10s\n", "bad time unit"},
      {"at 10s down site 1\n", "missing for clause"},
      {"at 10s down site 1 for 0s\n", "zero duration"},
      {"at 10s down link 3-9 for 10s\n", "bad link syntax"},
      {"at 10s down link 3->3 for 10s\n", "self link"},
      {"at 10s down site 1 core for 10s\n", "bad scope word"},
      {"at 10s down sites 1,,2 for 10s\n", "bad id list"},
      {"at 10s flap link 0->1 for 5s\n", "flap without every"},
      {"every 10s flap link 0->1 for 10s\n", "duration >= period"},
      {"every 0s flap link 0->1 for 1s\n", "zero period"},
      {"at 10s blackhole node 3 for 10s\n", "blackhole without probes"},
      {"at 10s crash node x for 10s\n", "bad node id"},
  };
  for (const BadCase& c : cases) {
    std::string error;
    EXPECT_FALSE(FaultSchedule::parse(c.dsl, &error).has_value()) << c.why;
    EXPECT_NE(error.find("line 1"), std::string::npos) << c.why << ": " << error;
  }
}

TEST(FaultDsl, ErrorNamesTheFailingLine) {
  std::string error;
  const auto sched = FaultSchedule::parse(
      "at 10s down site 1 for 10s\n"
      "# fine so far\n"
      "at 20s down planet 1 for 10s\n",
      &error);
  EXPECT_FALSE(sched.has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(FaultDsl, BuildersMatchParsedForms) {
  FaultSchedule built;
  built.down_site(7, at_s(120), Duration::seconds(45), FaultScope::kSiteAccess)
      .down_link(3, 9, at_s(600), Duration::minutes(1))
      .blackhole_probes(3, at_s(600), Duration::minutes(5))
      .lsa_loss(2, at_s(600), Duration::minutes(5))
      .crash(4, at_s(600), Duration::seconds(30))
      .flap_link(3, 9, Duration::seconds(300), Duration::seconds(10))
      .crash_churn(4, Duration::seconds(240), Duration::seconds(30));

  const auto parsed = FaultSchedule::parse(
      "at 120s down site 7 access for 45s\n"
      "at 600s down link 3->9 for 60s\n"
      "at 600s blackhole probes node 3 for 300s\n"
      "at 600s lsa-loss node 2 for 300s\n"
      "at 600s crash node 4 for 30s\n"
      "every 300s flap link 3->9 for 10s\n"
      "every 240s crash node 4 for 30s\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(built.faults().size(), parsed->faults().size());
  for (std::size_t i = 0; i < built.faults().size(); ++i) {
    const auto& a = built.faults()[i];
    const auto& b = parsed->faults()[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.scope, b.scope) << i;
    EXPECT_EQ(a.sites, b.sites) << i;
    EXPECT_EQ(a.link_src, b.link_src) << i;
    EXPECT_EQ(a.link_dst, b.link_dst) << i;
    EXPECT_EQ(a.start, b.start) << i;
    EXPECT_EQ(a.duration, b.duration) << i;
    EXPECT_EQ(a.period, b.period) << i;
  }
}

TEST(FaultDsl, ToStringRoundTrips) {
  const char* program =
      "at 120s down site 7 access for 45s\n"
      "at 120s down sites 1,2,3 provider for 90s\n"
      "at 600s down link 3->9 for 60s\n"
      "at 600s blackhole probes node 3 for 300s\n"
      "at 600s lsa-loss node 2 for 300s\n"
      "every 300s flap link 3->9 for 10s\n"
      "every 240s crash node 4 for 30s\n";
  const auto first = FaultSchedule::parse(program);
  ASSERT_TRUE(first.has_value());
  const std::string rendered = first->to_string();
  const auto second = FaultSchedule::parse(rendered);
  ASSERT_TRUE(second.has_value()) << rendered;
  // Round-trip fixpoint: rendering the reparse is identical.
  EXPECT_EQ(second->to_string(), rendered);
  EXPECT_EQ(second->faults().size(), first->faults().size());
}

TEST(FaultDsl, ErrorNamesTheColumnAndOffendingToken) {
  struct ColCase {
    const char* dsl;
    const char* want;  // "line N, col C" prefix plus the offending token
  };
  const ColCase cases[] = {
      {"at 10s down planet 1 for 10s\n", "line 1, col 13: bad target \"planet\""},
      {"at tens down link 0->1 for 10s\n", "line 1, col 4: bad time \"tens\""},
      {"every 10s crash node 99x for 5s\n", "line 1, col 22: bad node id \"99x\""},
      {"at 10s frobnicate node 1 for 5s\n", "line 1, col 8: unknown action \"frobnicate\""},
  };
  for (const ColCase& c : cases) {
    std::string error;
    EXPECT_FALSE(FaultSchedule::parse(c.dsl, &error).has_value()) << c.dsl;
    EXPECT_NE(error.find(c.want), std::string::npos) << c.dsl << ": " << error;
  }
}

TEST(FaultDsl, MissingTokenErrorPointsPastTheLastToken) {
  std::string error;
  EXPECT_FALSE(FaultSchedule::parse("at 10s down link 0->1\n", &error).has_value());
  EXPECT_NE(error.find("line 1, col 22: expected 'for <duration>'"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(FaultSchedule::parse("at 10s down link 0->1 for\n", &error).has_value());
  EXPECT_NE(error.find("line 1, col 26: expected a duration after 'for'"), std::string::npos)
      << error;
}

}  // namespace
}  // namespace ronpath
