// Snapshot decode hardening: truncated, bit-flipped, version-skewed and
// mis-addressed snapshot files must fail with a clear SnapshotError —
// never undefined behavior, never a silent misread. The fuzz-style
// sweeps run over a corpus of real SimWorld snapshots taken at several
// checkpoints of a canonical scenario.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/fault_matrix.h"
#include "fault/scenarios.h"
#include "snapshot/codec.h"
#include "snapshot/snapshot.h"
#include "snapshot/world.h"
#include "util/rng.h"

namespace ronpath {
namespace {

FaultMatrixConfig small_config() {
  FaultMatrixConfig cfg;
  cfg.node_count = 4;
  cfg.warmup = Duration::minutes(2);
  cfg.measured = Duration::minutes(3);
  cfg.send_interval = Duration::millis(500);
  return cfg;
}

const Scenario& scenario() {
  const Scenario* s = find_scenario("single-site-blackout");
  EXPECT_NE(s, nullptr);
  return *s;
}

// A corpus of sealed snapshot files taken at several checkpoints.
struct CorpusEntry {
  std::size_t checkpoint;
  std::uint64_t fingerprint;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> file;
};

const std::vector<CorpusEntry>& corpus() {
  static const std::vector<CorpusEntry> entries = [] {
    std::vector<CorpusEntry> out;
    for (const std::size_t checkpoint : {std::size_t{0}, std::size_t{50}, std::size_t{200}}) {
      SimWorld world(scenario(), FaultScheme::kReactive, small_config(), 42);
      world.advance_to(checkpoint);
      snap::Encoder e;
      world.save_state(e);
      CorpusEntry entry;
      entry.checkpoint = checkpoint;
      entry.fingerprint = world.fingerprint();
      entry.payload = e.bytes();
      entry.file = snap::seal(world.fingerprint(), entry.payload);
      out.push_back(std::move(entry));
    }
    return out;
  }();
  return entries;
}

TEST(SnapshotEnvelope, SealUnsealRoundTrips) {
  for (const CorpusEntry& entry : corpus()) {
    ASSERT_GE(entry.file.size(), snap::kSnapshotMinBytes);
    const std::vector<std::uint8_t> payload = snap::unseal(entry.file, entry.fingerprint);
    EXPECT_EQ(payload, entry.payload) << "checkpoint " << entry.checkpoint;
  }
}

TEST(SnapshotEnvelope, RestoredPayloadRestoresCleanly) {
  const CorpusEntry& entry = corpus().back();
  const std::vector<std::uint8_t> payload = snap::unseal(entry.file, entry.fingerprint);
  SimWorld fresh(scenario(), FaultScheme::kReactive, small_config(), 42);
  snap::Decoder d(payload);
  EXPECT_NO_THROW(fresh.restore_state(d));
  EXPECT_EQ(fresh.next_send(), entry.checkpoint);
}

TEST(SnapshotEnvelope, EveryTruncationIsRejected) {
  const CorpusEntry& entry = corpus().front();
  // Every header-region prefix, then strides through the payload, then
  // every cut through the trailing checksum.
  std::vector<std::size_t> cuts;
  for (std::size_t len = 0; len < snap::kSnapshotMinBytes && len < entry.file.size(); ++len) {
    cuts.push_back(len);
  }
  for (std::size_t len = snap::kSnapshotMinBytes; len < entry.file.size(); len += 97) {
    cuts.push_back(len);
  }
  for (std::size_t back = 1; back <= 9 && back < entry.file.size(); ++back) {
    cuts.push_back(entry.file.size() - back);
  }
  for (const std::size_t len : cuts) {
    std::vector<std::uint8_t> cut(entry.file.begin(),
                                  entry.file.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)snap::unseal(cut, entry.fingerprint), snap::SnapshotError)
        << "truncated to " << len << " of " << entry.file.size() << " bytes";
  }
}

TEST(SnapshotEnvelope, SeededBitFlipFuzz) {
  Rng rng(20260807);
  for (const CorpusEntry& entry : corpus()) {
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint8_t> mutated = entry.file;
      const std::size_t bit = rng.next_below(mutated.size() * 8);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_THROW((void)snap::unseal(mutated, entry.fingerprint), snap::SnapshotError)
          << "checkpoint " << entry.checkpoint << " flipped bit " << bit;
    }
  }
}

TEST(SnapshotEnvelope, MultiByteCorruptionInPayloadIsRejected) {
  const CorpusEntry& entry = corpus().back();
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> mutated = entry.file;
    const std::size_t span = 1 + rng.next_below(32);
    const std::size_t at =
        snap::kSnapshotHeaderBytes +
        rng.next_below(entry.payload.size() > span ? entry.payload.size() - span : 1);
    for (std::size_t i = 0; i < span; ++i) {
      mutated[at + i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    if (mutated == entry.file) continue;  // rewrote identical bytes
    EXPECT_THROW((void)snap::unseal(mutated, entry.fingerprint), snap::SnapshotError)
        << "trial " << trial;
  }
}

TEST(SnapshotEnvelope, BadMagicIsRejectedWithDiagnostic) {
  std::vector<std::uint8_t> mutated = corpus().front().file;
  mutated[0] = 'X';
  try {
    (void)snap::unseal(mutated, corpus().front().fingerprint);
    FAIL() << "bad magic accepted";
  } catch (const snap::SnapshotError& err) {
    EXPECT_NE(std::string(err.what()).find("magic"), std::string::npos) << err.what();
  }
}

TEST(SnapshotEnvelope, VersionSkewIsRejectedWithDiagnostic) {
  // Patch the version field and re-seal the CRC so version skew is the
  // *only* defect — the error must name the version, not the checksum.
  std::vector<std::uint8_t> mutated = corpus().front().file;
  mutated[8] = 99;
  const std::size_t body = mutated.size() - 8;
  const std::uint64_t crc = snap::crc64(mutated.data(), body);
  for (int i = 0; i < 8; ++i) {
    mutated[body + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff);
  }
  try {
    (void)snap::unseal(mutated, corpus().front().fingerprint);
    FAIL() << "version 99 accepted";
  } catch (const snap::SnapshotError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find("99"), std::string::npos) << what;
  }
}

TEST(SnapshotEnvelope, FingerprintMismatchIsRejectedWithDiagnostic) {
  const CorpusEntry& entry = corpus().front();
  try {
    (void)snap::unseal(entry.file, entry.fingerprint ^ 1);
    FAIL() << "fingerprint mismatch accepted";
  } catch (const snap::SnapshotError& err) {
    EXPECT_NE(std::string(err.what()).find("different"), std::string::npos) << err.what();
  }
}

TEST(SnapshotEnvelope, ChecksumMismatchNamesTheChecksum) {
  std::vector<std::uint8_t> mutated = corpus().front().file;
  mutated[mutated.size() / 2] ^= 0x40;
  try {
    (void)snap::unseal(mutated, corpus().front().fingerprint);
    FAIL() << "corrupt body accepted";
  } catch (const snap::SnapshotError& err) {
    EXPECT_NE(std::string(err.what()).find("checksum"), std::string::npos) << err.what();
  }
}

// Raw payload truncations must be caught by the decoder or the world's
// own validation — a strict prefix can never restore successfully.
TEST(SnapshotCorruption, TruncatedPayloadNeverRestores) {
  const CorpusEntry& entry = corpus().back();
  for (std::size_t len = 0; len < entry.payload.size(); len += 131) {
    std::vector<std::uint8_t> cut(entry.payload.begin(),
                                  entry.payload.begin() + static_cast<std::ptrdiff_t>(len));
    SimWorld fresh(scenario(), FaultScheme::kReactive, small_config(), 42);
    snap::Decoder d(cut);
    EXPECT_THROW(fresh.restore_state(d), snap::SnapshotError) << "payload prefix " << len;
  }
}

// Restoring a snapshot from a *differently configured* world must be
// stopped by the fingerprint before any payload decoding happens.
TEST(SnapshotCorruption, CrossWorldRestoreIsBlocked) {
  const CorpusEntry& entry = corpus().front();
  SimWorld other(scenario(), FaultScheme::kMesh, small_config(), 42);
  EXPECT_NE(other.fingerprint(), entry.fingerprint);
  EXPECT_THROW((void)snap::unseal(entry.file, other.fingerprint()), snap::SnapshotError);

  FaultMatrixConfig cfg = small_config();
  cfg.node_count = 5;
  SimWorld bigger(scenario(), FaultScheme::kReactive, cfg, 42);
  EXPECT_NE(bigger.fingerprint(), entry.fingerprint);

  SimWorld reseeded(scenario(), FaultScheme::kReactive, small_config(), 43);
  EXPECT_NE(reseeded.fingerprint(), entry.fingerprint);
}

TEST(SnapshotFiles, WriteReadRoundTrip) {
  const CorpusEntry& entry = corpus().front();
  const std::string path = testing::TempDir() + "/ronpath_corruption_roundtrip.snap";
  snap::write_file(path, entry.fingerprint, entry.payload);
  const std::vector<std::uint8_t> payload = snap::read_file(path, entry.fingerprint);
  EXPECT_EQ(payload, entry.payload);
  std::remove(path.c_str());
}

TEST(SnapshotFiles, MissingAndUnwritablePathsFailWithDiagnostic) {
  EXPECT_THROW((void)snap::read_file(testing::TempDir() + "/ronpath_no_such_file.snap", 0),
               snap::SnapshotError);
  try {
    snap::write_file("/nonexistent-ronpath-dir/out.snap", 0, {1, 2, 3});
    FAIL() << "write to unwritable path succeeded";
  } catch (const snap::SnapshotError& err) {
    EXPECT_NE(std::string(err.what()).find("cannot open"), std::string::npos) << err.what();
  }
}

}  // namespace
}  // namespace ronpath
