#include "routing/spread_fec.h"

#include <gtest/gtest.h>

#include "core/testbed.h"

namespace ronpath {
namespace {

struct Fixture {
  Topology topo;
  Network net;
  Scheduler sched;
  OverlayNetwork overlay;

  explicit Fixture(std::uint64_t seed = 42, NetConfig cfg = NetConfig::profile_2003())
      : topo(testbed_2002()),
        net(topo, std::move(cfg), Duration::hours(4), Rng(seed)),
        overlay(net, sched, OverlayConfig{}, Rng(seed + 1)) {
    overlay.start();
    sched.run_until(TimePoint::epoch() + Duration::minutes(2));
  }
};

std::vector<std::uint8_t> payload(int i) {
  return std::vector<std::uint8_t>(64, static_cast<std::uint8_t>(i));
}

TEST(SpreadFec, DeliversEverythingOnQuietNetwork) {
  Fixture f;
  SpreadFecConfig cfg;
  cfg.data_shards = 4;
  cfg.parity_shards = 1;
  SpreadFecChannel ch(f.overlay, f.sched, 0, 1, cfg, Rng(1));
  for (int i = 0; i < 400; ++i) {
    f.sched.run_until(f.sched.now() + Duration::millis(10));
    ch.send(payload(i));
  }
  ch.flush();
  f.sched.run_until(ch.last_tx_time() + Duration::seconds(2));
  const auto& st = ch.stats();
  EXPECT_EQ(st.payloads, 400);
  // Quiet network: nearly everything arrives; FEC covers stragglers.
  EXPECT_GT(st.delivery_rate(), 0.99);
  EXPECT_EQ(st.shards_sent, 400 + 100);  // 400 data + parity per 4-block
}

TEST(SpreadFec, ParitySpreadDelaysParityOnly) {
  Fixture f;
  SpreadFecConfig cfg;
  cfg.data_shards = 2;
  cfg.parity_shards = 2;
  cfg.parity_spread = Duration::millis(250);
  SpreadFecChannel ch(f.overlay, f.sched, 0, 1, cfg, Rng(2));
  const TimePoint start = f.sched.now();
  ch.send(payload(0));
  ch.send(payload(1));  // completes the block; 2 parity shards scheduled
  // Parity j delayed by 250ms * (j+1): last at +500ms.
  EXPECT_EQ(ch.last_tx_time(), start + Duration::millis(500));
  f.sched.run_until(start + Duration::seconds(1));
  EXPECT_EQ(ch.stats().shards_sent, 4);
}

TEST(SpreadFec, FlushEmitsParityForPartialBlock) {
  Fixture f;
  SpreadFecConfig cfg;
  cfg.data_shards = 5;
  cfg.parity_shards = 1;
  SpreadFecChannel ch(f.overlay, f.sched, 0, 1, cfg, Rng(3));
  ch.send(payload(0));
  ch.flush();
  f.sched.run_until(f.sched.now() + Duration::seconds(1));
  EXPECT_EQ(ch.stats().shards_sent, 2);  // 1 data + 1 parity
}

TEST(SpreadFec, StripingNames) {
  EXPECT_EQ(to_string(FecStriping::kSinglePath), "single-path");
  EXPECT_EQ(to_string(FecStriping::kAlternating), "alternating");
  EXPECT_EQ(to_string(FecStriping::kParityDetour), "parity-detour");
}

class SpreadFecStriping : public ::testing::TestWithParam<int> {};

// Property: every striping policy delivers under moderate loss, and
// recovery (reconstructed > 0) actually happens.
TEST_P(SpreadFecStriping, RecoversUnderLoss) {
  NetConfig lossy = NetConfig::profile_2003();
  lossy.loss_scale *= 30.0;
  Fixture f(11, lossy);
  SpreadFecConfig cfg;
  cfg.data_shards = 4;
  cfg.parity_shards = 2;
  cfg.striping = static_cast<FecStriping>(GetParam());
  SpreadFecChannel ch(f.overlay, f.sched, 2, 5, cfg, Rng(4));
  for (int i = 0; i < 3000; ++i) {
    f.sched.run_until(f.sched.now() + Duration::millis(20));
    ch.send(payload(i));
  }
  ch.flush();
  f.sched.run_until(ch.last_tx_time() + Duration::seconds(2));
  const auto& st = ch.stats();
  EXPECT_GT(st.shards_lost, 0);
  EXPECT_GT(st.reconstructed, 0);
  EXPECT_GT(st.delivery_rate(), 0.9);
  // FEC delivery beats raw wire delivery.
  const double wire_rate = 1.0 - static_cast<double>(st.shards_lost) /
                                     static_cast<double>(st.shards_sent);
  EXPECT_GT(st.delivery_rate(), wire_rate - 0.001);
}

INSTANTIATE_TEST_SUITE_P(Policies, SpreadFecStriping, ::testing::Range(0, 3));

}  // namespace
}  // namespace ronpath
