// Determinism regression tests.
//
// The simulator promises: (1) the same ExperimentConfig and seed produce
// byte-identical report output on every run, and (2) the multi-trial
// runner's results depend only on (seed, trial index) — the number of
// worker threads must not change a single bit of the cross-trial
// summary. These tests are the contract the --trials/--jobs flags and
// any future parallelism must keep.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/trials.h"
#include "measure/report.h"
#include "routing/schemes.h"

namespace ronpath {
namespace {

ExperimentConfig short_config() {
  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRonNarrow;  // 17 hosts, 3 schemes: fastest dataset
  cfg.warmup = Duration::minutes(10);
  cfg.duration = Duration::minutes(30);
  cfg.seed = 1234;
  return cfg;
}

std::string report_of(const ExperimentResult& res) {
  return render_loss_table(make_loss_table(*res.agg, ronnarrow_probe_set()),
                           /*round_trip=*/false);
}

TEST(Determinism, SameConfigSameSeedByteIdenticalReport) {
  const ExperimentConfig cfg = short_config();
  const ExperimentResult first = run_experiment(cfg);
  const ExperimentResult second = run_experiment(cfg);
  EXPECT_EQ(first.probes, second.probes);
  EXPECT_EQ(first.overlay_probes, second.overlay_probes);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(report_of(first), report_of(second));
}

TEST(Determinism, DifferentSeedsDiverge) {
  ExperimentConfig cfg = short_config();
  const ExperimentResult first = run_experiment(cfg);
  cfg.seed = 5678;
  const ExperimentResult second = run_experiment(cfg);
  EXPECT_NE(report_of(first), report_of(second));
}

TEST(Determinism, TrialSeedsAreStableAndDistinct) {
  // Trial 0 is the base seed itself (a single trial reproduces the
  // historical single-run output); later trials fork disjoint streams.
  EXPECT_EQ(trial_seed(42, 0), 42u);
  EXPECT_EQ(trial_seed(42, 1), trial_seed(42, 1));
  EXPECT_NE(trial_seed(42, 1), trial_seed(42, 2));
  EXPECT_NE(trial_seed(42, 1), trial_seed(43, 1));
}

TEST(Determinism, JobCountDoesNotChangeTrialResults) {
  const ExperimentConfig cfg = short_config();
  constexpr int kTrials = 3;
  const TrialsResult serial = run_experiment_trials(cfg, kTrials, /*n_jobs=*/1);
  const TrialsResult parallel = run_experiment_trials(cfg, kTrials, /*n_jobs=*/4);
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());

  for (int i = 0; i < kTrials; ++i) {
    const auto& s = serial.trials[static_cast<std::size_t>(i)];
    const auto& p = parallel.trials[static_cast<std::size_t>(i)];
    EXPECT_EQ(s.seed, p.seed) << "trial " << i;
    EXPECT_EQ(s.result.probes, p.result.probes) << "trial " << i;
    EXPECT_EQ(s.result.events, p.result.events) << "trial " << i;
    EXPECT_EQ(report_of(s.result), report_of(p.result)) << "trial " << i;
  }

  // And the rendered cross-trial summary is byte-identical too.
  const auto ct_serial =
      make_cross_trial(serial, ronnarrow_probe_set(), PairScheme::kDirectRand);
  const auto ct_parallel =
      make_cross_trial(parallel, ronnarrow_probe_set(), PairScheme::kDirectRand);
  EXPECT_EQ(render_loss_table_ci(ct_serial.rows, false),
            render_loss_table_ci(ct_parallel.rows, false));
  EXPECT_EQ(ct_serial.base.loss_percent.mean, ct_parallel.base.loss_percent.mean);
  EXPECT_EQ(ct_serial.base.worst_hour_loss_percent.mean,
            ct_parallel.base.worst_hour_loss_percent.mean);
}

TEST(Determinism, SingleTrialMatchesDirectRun) {
  const ExperimentConfig cfg = short_config();
  const ExperimentResult direct = run_experiment(cfg);
  const TrialsResult one = run_experiment_trials(cfg, 1, 1);
  ASSERT_EQ(one.trials.size(), 1u);
  EXPECT_EQ(one.trials[0].seed, cfg.seed);
  EXPECT_EQ(one.trials[0].result.probes, direct.probes);
  EXPECT_EQ(report_of(one.trials[0].result), report_of(direct));
}

}  // namespace
}  // namespace ronpath
