// Snapshot/restore at scaling-tier sizes: a 300-node capped SimWorld
// checkpointed mid-run must restore to a byte-identical finish, the
// lazy-underlay materialized-core list must round-trip, and a lazy
// snapshot must refuse to restore into an eager world.

#include <gtest/gtest.h>

#include <string>

#include "core/fault_matrix.h"
#include "fault/scenarios.h"
#include "snapshot/codec.h"
#include "snapshot/snapshot.h"
#include "snapshot/world.h"

namespace ronpath {
namespace {

const Scenario& link_flap() {
  const Scenario* s = find_scenario("link-flap");
  EXPECT_NE(s, nullptr);
  return *s;
}

FaultMatrixConfig scale_cfg(std::size_t nodes, std::size_t fanout, bool lazy) {
  FaultMatrixConfig cfg;
  cfg.synth_nodes = nodes;
  cfg.overlay_fanout = fanout;
  cfg.overlay_landmarks = 8;
  cfg.lazy_underlay = lazy;
  return cfg;
}

// Checkpoints `world` at the given send index, restores into a twin and
// returns (uninterrupted report, restored report).
std::pair<std::string, std::string> checkpoint_roundtrip(const FaultMatrixConfig& cfg) {
  SimWorld world(link_flap(), FaultScheme::kHybrid, cfg, cfg.seed);
  world.advance_to(world.total_sends() / 2);
  snap::Encoder e;
  world.save_state(e);
  world.run_to_end();
  const std::string uninterrupted = world.report();

  SimWorld twin(link_flap(), FaultScheme::kHybrid, cfg, cfg.seed);
  snap::Decoder d(e.bytes());
  twin.restore_state(d);
  twin.run_to_end();
  return {uninterrupted, twin.report()};
}

TEST(SnapshotScale, Capped300NodeRestoreIsByteIdentical) {
  const auto [uninterrupted, restored] = checkpoint_roundtrip(scale_cfg(300, 16, false));
  EXPECT_EQ(uninterrupted, restored);
}

TEST(SnapshotScale, LazyUnderlayRestoreIsByteIdentical) {
  // Lazy mode serializes only the materialized cores; the restored twin
  // must rebuild exactly that set and then finish bit-for-bit.
  const auto [uninterrupted, restored] = checkpoint_roundtrip(scale_cfg(120, 10, true));
  EXPECT_EQ(uninterrupted, restored);
}

TEST(SnapshotScale, LazyAndEagerRunsAgree) {
  // Materialization is an implementation detail: the same cell run
  // lazily and eagerly produces the same report.
  FaultMatrixConfig eager = scale_cfg(60, 8, false);
  FaultMatrixConfig lazy = scale_cfg(60, 8, true);
  SimWorld a(link_flap(), FaultScheme::kHybrid, eager, eager.seed);
  a.run_to_end();
  SimWorld b(link_flap(), FaultScheme::kHybrid, lazy, lazy.seed);
  b.run_to_end();
  EXPECT_EQ(a.report(), b.report());
  // The lazy run only touched a fraction of the component space.
  EXPECT_LT(b.network().materialized_components(), b.network().component_count());
  EXPECT_EQ(a.network().materialized_components(), a.network().component_count());
}

TEST(SnapshotScale, LazySnapshotRejectsEagerWorld) {
  // The SimWorld fingerprint deliberately excludes lazy_underlay (the
  // flag does not change simulated behaviour), so the mismatch must be
  // caught by Network::restore_state's own diagnostic.
  FaultMatrixConfig lazy = scale_cfg(60, 8, true);
  SimWorld world(link_flap(), FaultScheme::kHybrid, lazy, lazy.seed);
  world.advance_to(world.total_sends() / 4);
  snap::Encoder e;
  world.save_state(e);

  FaultMatrixConfig eager = scale_cfg(60, 8, false);
  SimWorld twin(link_flap(), FaultScheme::kHybrid, eager, eager.seed);
  ASSERT_EQ(world.fingerprint(), twin.fingerprint());
  snap::Decoder d(e.bytes());
  EXPECT_THROW(twin.restore_state(d), snap::SnapshotError);
}

TEST(SnapshotScale, FingerprintSeparatesScaleConfigs) {
  const FaultMatrixConfig base = scale_cfg(300, 16, false);
  SimWorld world(link_flap(), FaultScheme::kHybrid, base, base.seed);

  FaultMatrixConfig other = base;
  other.overlay_fanout = 12;
  SimWorld different_fanout(link_flap(), FaultScheme::kHybrid, other, other.seed);
  EXPECT_NE(world.fingerprint(), different_fanout.fingerprint());

  other = base;
  other.synth_nodes = 301;
  SimWorld different_size(link_flap(), FaultScheme::kHybrid, other, other.seed);
  EXPECT_NE(world.fingerprint(), different_size.fingerprint());

  other = base;
  other.overlay_landmarks = 7;
  SimWorld different_landmarks(link_flap(), FaultScheme::kHybrid, other, other.seed);
  EXPECT_NE(world.fingerprint(), different_landmarks.fingerprint());
}

}  // namespace
}  // namespace ronpath
