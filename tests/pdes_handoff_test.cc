// SPSC handoff queue semantics (FIFO, capacity, wraparound, cross-thread
// publication — the TSan target for the lock-free hot path) and shard
// partition correctness: deterministic plans, the site-ownership rule,
// balanced non-empty shards, and the zero-lookahead rejection with its
// pair-naming diagnostic.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/testbed.h"
#include "net/config.h"
#include "net/network.h"
#include "pdes/handoff.h"
#include "pdes/partition.h"
#include "util/rng.h"

namespace ronpath {
namespace {

using pdes::ShardPlan;
using pdes::SpscQueue;

TEST(SpscQueue, FifoAndCapacity) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.empty());

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99)) << "push into a full queue must fail, not overwrite";

  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
}

// Many push/pop cycles against a tiny ring so the free-running indices
// wrap the mask repeatedly.
TEST(SpscQueue, WraparoundKeepsFifoOrder) {
  SpscQueue<std::uint64_t> q(2);
  std::uint64_t next_pop = 0;
  std::uint64_t i = 0;
  while (i < 10'000) {
    EXPECT_TRUE(q.try_push(i));
    ++i;
    if (i % 2 == 0) {
      EXPECT_TRUE(q.try_push(i));
      ++i;
    }
    std::uint64_t out = 0;
    while (q.try_pop(out)) {
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, i);
  EXPECT_TRUE(q.empty());
}

// Concurrent producer/consumer: every value must arrive exactly once, in
// order, with its payload intact. Run under TSan (ctest -L pdes) this
// exercises the acquire/release pairing on head_/tail_.
TEST(SpscQueue, ConcurrentProducerConsumer) {
  constexpr std::uint64_t kN = 200'000;
  SpscQueue<std::uint64_t> q(64);

  std::thread producer([&q] {
    for (std::uint64_t i = 0; i < kN;) {
      if (q.try_push(i * 2654435761u)) ++i;
    }
  });

  std::uint64_t received = 0;
  while (received < kN) {
    std::uint64_t out = 0;
    if (q.try_pop(out)) {
      ASSERT_EQ(out, received * 2654435761u);
      ++received;
    }
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

// Handoff payloads survive the queue bit-for-bit (the struct is what the
// engine actually exchanges).
TEST(SpscQueue, HandoffPayloadRoundTrips) {
  SpscQueue<pdes::Handoff> q(8);
  pdes::Handoff in{TimePoint::epoch() + Duration::millis(1234), 77, 3, 1};
  ASSERT_TRUE(q.try_push(in));
  pdes::Handoff out;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out.at, in.at);
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.hop, in.hop);
  EXPECT_EQ(out.src_shard, in.src_shard);
}

Network make_network(std::uint64_t seed = 42) {
  Topology topo = testbed_2003();
  NetConfig cfg = NetConfig::profile_2003(Duration::hours(2));
  return Network(std::move(topo), std::move(cfg), Duration::hours(2), Rng(seed));
}

TEST(ShardPlan, RejectsNonPositiveShardCount) {
  const Network net = make_network();
  EXPECT_THROW((void)ShardPlan::build(net, 0), std::invalid_argument);
  EXPECT_THROW((void)ShardPlan::build(net, -3), std::invalid_argument);
}

TEST(ShardPlan, SingleShardOwnsEverything) {
  const Network net = make_network();
  const ShardPlan plan = ShardPlan::build(net, 1);
  EXPECT_EQ(plan.shards, 1);
  EXPECT_EQ(plan.lookahead, Duration::max());
  for (const std::uint32_t s : plan.site_shard) EXPECT_EQ(s, 0u);
  ASSERT_EQ(plan.shard_components.size(), 1u);
  EXPECT_EQ(plan.shard_components[0].size(), plan.component_shard.size());
}

// The ownership rule that makes core(a,b) -> prov_in(b) the only
// cross-shard edge: site comps and core(a,*) follow site a's shard.
TEST(ShardPlan, ComponentsFollowTheirSite) {
  const Network net = make_network();
  const Topology& topo = net.topology();
  for (const int shards : {2, 4, 8}) {
    const ShardPlan plan = ShardPlan::build(net, shards);
    ASSERT_EQ(plan.site_shard.size(), topo.size());
    ASSERT_EQ(plan.component_shard.size(), topo.component_count());
    for (std::size_t ci = 0; ci < topo.component_count(); ++ci) {
      const ComponentId id = topo.component(ci);
      EXPECT_EQ(plan.component_shard[ci], plan.site_shard[id.a])
          << "component " << ci << " at " << shards << " shards";
    }
  }
}

TEST(ShardPlan, ShardsAreNonEmptyBalancedAndDeterministic) {
  const Network net = make_network();
  const std::size_t n = net.topology().size();
  for (const int shards : {2, 3, 4, 8}) {
    const ShardPlan a = ShardPlan::build(net, shards);
    const ShardPlan b = ShardPlan::build(net, shards);
    EXPECT_EQ(a.site_shard, b.site_shard) << shards << " shards";
    EXPECT_EQ(a.component_shard, b.component_shard);
    EXPECT_EQ(a.lookahead, b.lookahead);

    ASSERT_EQ(a.shard_components.size(), static_cast<std::size_t>(shards));
    std::vector<std::size_t> sites_per_shard(static_cast<std::size_t>(shards), 0);
    for (const std::uint32_t s : a.site_shard) ++sites_per_shard[s];
    // The ceil(n/K) cap is best-effort: when every capped merge
    // deadlocks, the relax pass merges the smallest combined pair, so a
    // shard can exceed the cap by at most one deadlocked partner —
    // bounded by 2x, never a mega-cluster.
    const std::size_t cap = (n + static_cast<std::size_t>(shards) - 1) /
                            static_cast<std::size_t>(shards);
    for (int k = 0; k < shards; ++k) {
      EXPECT_GE(sites_per_shard[static_cast<std::size_t>(k)], 1u)
          << "shard " << k << " of " << shards << " owns no site";
      EXPECT_LT(sites_per_shard[static_cast<std::size_t>(k)], 2 * cap)
          << "shard " << k << " of " << shards << " is pathologically oversized";
    }
    EXPECT_GT(a.lookahead, Duration::zero());
    EXPECT_LT(a.lookahead, Duration::max());
  }
}

// More shards than sites: build must still produce a valid plan (empty
// trailing shards are useless but harmless and the engine tolerates
// them) OR reject; current policy clamps by leaving extra shards empty
// is NOT used — clustering stops at n singleton clusters, so shards
// beyond n would be empty. The engine only ever asks for counts the CLI
// accepts; here we pin that n-shard plans (one site each) work.
TEST(ShardPlan, OneSitePerShardAtFullFanout) {
  const Network net = make_network();
  const std::size_t n = net.topology().size();
  const ShardPlan plan = ShardPlan::build(net, static_cast<int>(n));
  std::vector<std::size_t> sites_per_shard(n, 0);
  for (const std::uint32_t s : plan.site_shard) ++sites_per_shard[s];
  for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(sites_per_shard[k], 1u);
}

// A config whose cross-shard core floor collapses to zero (no stretch,
// zero core fixed delay... but site propagation floors survive) must be
// rejected with a diagnostic naming the offending pair. Zero the
// propagation path entirely: co-located sites + zero stretch.
TEST(ShardPlan, ZeroLookaheadIsRejectedWithPairDiagnostic) {
  std::vector<Site> sites;
  for (int i = 0; i < 4; ++i) {
    Site s;
    s.name = "site-" + std::to_string(i);
    s.location = "lab";
    s.link_class = LinkClass::kUniversity;
    s.lat_deg = 0.0;  // co-located: propagation = router floor only
    s.lon_deg = 0.0;
    sites.push_back(s);
  }
  NetConfig cfg = NetConfig::profile_2003(Duration::hours(1));
  // Kill the stretched propagation term; core fixed_delay is already
  // zero in the profile (propagation is added by the network).
  cfg.core_stretch_median = 0.0;
  cfg.core_stretch_sigma = 0.0;
  cfg.core_stretch_min = 0.0;
  Network net(Topology(std::move(sites)), std::move(cfg), Duration::hours(1), Rng(7));

  try {
    (void)ShardPlan::build(net, 2);
    FAIL() << "zero-lookahead configuration must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lookahead"), std::string::npos) << what;
    EXPECT_NE(what.find("site-"), std::string::npos)
        << "diagnostic should name the offending pair: " << what;
  }
}

}  // namespace
}  // namespace ronpath
