// The bandwidth-capped link-state overlay (DESIGN.md §14): rotation
// determinism, full-fanout equivalence with the legacy mesh, and the
// control-budget property under the canonical fault suite.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fault_matrix.h"
#include "core/testbed.h"
#include "fault/scenarios.h"
#include "net/network.h"
#include "net/scale_topology.h"
#include "overlay/overlay.h"
#include "snapshot/world.h"

namespace ronpath {
namespace {

const Scenario& scenario(const char* name) {
  const Scenario* s = find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  return *s;
}

FaultMatrixConfig capped_cfg(std::size_t nodes, std::size_t fanout) {
  FaultMatrixConfig cfg;
  cfg.synth_nodes = nodes;
  cfg.overlay_fanout = fanout;
  cfg.overlay_landmarks = 4;
  return cfg;
}

std::string run_report(const FaultMatrixConfig& cfg) {
  SimWorld world(scenario("link-flap"), FaultScheme::kHybrid, cfg, cfg.seed);
  world.run_to_end();
  return world.report();
}

// ------------------------------------------------------- rotation schedule

TEST(CappedOverlay, RotationScheduleDeterministicAcrossRuns) {
  const FaultMatrixConfig cfg = capped_cfg(60, 8);
  EXPECT_EQ(run_report(cfg), run_report(cfg));
}

TEST(CappedOverlay, RotationScheduleDeterministicAcrossShards) {
  // The sharded underlay discipline must not perturb the capped control
  // plane: any positive shard count produces the same bytes.
  FaultMatrixConfig cfg = capped_cfg(60, 8);
  cfg.shards = 1;
  const std::string one = run_report(cfg);
  cfg.shards = 4;
  EXPECT_EQ(one, run_report(cfg));
}

// --------------------------------------------------- full-fanout equivalence

TEST(CappedOverlay, FullFanoutBitwiseEquivalentToLegacyMesh) {
  // fanout >= n-1 collapses the neighbor graph to the full mesh; the
  // capped machinery (metering, budget enforcement, stride stamping)
  // still runs and must be provably inert: byte-identical reports and
  // field-identical cells against the legacy overlay.
  FaultMatrixConfig legacy;  // 12-node testbed, full mesh
  FaultMatrixConfig capped = legacy;
  capped.overlay_fanout = legacy.node_count - 1;

  EXPECT_EQ(run_report(legacy), run_report(capped));

  const FaultCell a =
      run_fault_cell(scenario("crash-churn"), FaultScheme::kHybrid, legacy, legacy.seed);
  const FaultCell b =
      run_fault_cell(scenario("crash-churn"), FaultScheme::kHybrid, capped, capped.seed);
  EXPECT_EQ(a.loss_pre_pct, b.loss_pre_pct);
  EXPECT_EQ(a.loss_fault_pct, b.loss_fault_pct);
  EXPECT_EQ(a.loss_post_pct, b.loss_post_pct);
  EXPECT_EQ(a.failover_measured, b.failover_measured);
  EXPECT_EQ(a.failover_s, b.failover_s);
  EXPECT_EQ(a.recovery_measured, b.recovery_measured);
  EXPECT_EQ(a.recovery_s, b.recovery_s);
  EXPECT_EQ(a.overhead, b.overhead);
  EXPECT_EQ(a.route_switches, b.route_switches);
  EXPECT_EQ(a.injected_drops, b.injected_drops);
}

// ------------------------------------------------------- budget enforcement

TEST(CappedOverlay, BudgetNeverExceededUnderFaultSuite) {
  // Property: across every canonical fault scenario, no node's control
  // meter ever records a round above its budget, and the runtime
  // invariant audit stays clean.
  for (const Scenario& s : canonical_scenarios()) {
    FaultMatrixConfig cfg = capped_cfg(40, 6);
    SimWorld world(s, FaultScheme::kHybrid, cfg, cfg.seed);
    world.run_to_end();
    const OverlayNetwork& overlay = world.overlay();
    ASSERT_TRUE(overlay.capped());
    for (NodeId i = 0; i < static_cast<NodeId>(overlay.size()); ++i) {
      const ControlMeter& m = overlay.control_meter(i);
      EXPECT_LE(m.max_round_bytes, overlay.control_budget(i))
          << std::string(s.name) << " node " << i;
      EXPECT_GT(m.total_announces, 0) << std::string(s.name) << " node " << i;
    }
    std::vector<std::string> violations;
    world.check_invariants(violations);
    EXPECT_TRUE(violations.empty())
        << std::string(s.name) << ": " << (violations.empty() ? "" : violations.front());
  }
}

TEST(CappedOverlay, TinyBudgetSuppressesButNeverOverruns) {
  Topology topo = testbed_2002();
  Network net(topo, NetConfig::profile_2003(), Duration::hours(2), Rng(42));
  Scheduler sched;
  OverlayConfig cfg;
  cfg.fanout = 4;
  cfg.landmarks = 2;
  cfg.control_budget_bytes = static_cast<std::int64_t>(cfg.lsa_entry_bytes);  // one entry/round
  OverlayNetwork overlay(net, sched, cfg, Rng(43));
  overlay.start();
  sched.run_until(TimePoint::epoch() + Duration::minutes(30));

  std::int64_t suppressed = 0;
  for (NodeId i = 0; i < static_cast<NodeId>(overlay.size()); ++i) {
    const ControlMeter& m = overlay.control_meter(i);
    EXPECT_LE(m.max_round_bytes, overlay.control_budget(i)) << "node " << i;
    suppressed += m.suppressed;
  }
  EXPECT_GT(suppressed, 0);  // the cap actually bit
  std::vector<std::string> violations;
  overlay.check_invariants(sched.now(), violations);
  EXPECT_TRUE(violations.empty()) << (violations.empty() ? "" : violations.front());
}

TEST(CappedOverlay, StrideMatchesDegreeOverFanout) {
  Topology topo = testbed_2002();
  Network net(topo, NetConfig::profile_2003(), Duration::hours(1), Rng(42));
  Scheduler sched;
  OverlayConfig cfg;
  cfg.fanout = 4;
  cfg.landmarks = 2;
  OverlayNetwork overlay(net, sched, cfg, Rng(43));
  ASSERT_TRUE(overlay.capped());
  const NeighborSet& nbrs = overlay.neighbors();
  for (NodeId i = 0; i < static_cast<NodeId>(overlay.size()); ++i) {
    const std::size_t degree = nbrs.degree(i);
    const std::uint32_t want =
        degree > cfg.fanout
            ? static_cast<std::uint32_t>((degree + cfg.fanout - 1) / cfg.fanout)
            : 1u;
    EXPECT_EQ(overlay.stride(i), want) << "node " << i << " degree " << degree;
  }
}

TEST(CappedOverlay, SparseStateIsMuchSmallerThanMesh) {
  // O(n * fanout) vs O(n^2): at 200 nodes the capped overlay's resident
  // state must undercut the full mesh by a wide margin.
  ScaleTopologyParams p;
  p.nodes = 200;
  Topology topo = scale_topology(p);
  Scheduler sched;
  NetConfig ncfg = NetConfig::profile_2003();
  Network net(topo, ncfg, Duration::hours(1), Rng(42));

  OverlayConfig full;
  OverlayNetwork mesh(net, sched, full, Rng(43));
  OverlayConfig capped;
  capped.fanout = 8;
  capped.landmarks = 4;
  OverlayNetwork sparse(net, sched, capped, Rng(43));

  EXPECT_LT(sparse.state_bytes() * 4, mesh.state_bytes());
}

}  // namespace
}  // namespace ronpath
