// Ablation: does a second overlay hop buy anything? The paper's router
// uses "at most one intermediate node"; this ablation generalizes and
// measures what a second hop would add.
//
// Expectation from the model: very little. The unavoidable shared-edge
// components dominate residual loss, every extra hop stacks two more
// edge crossings onto the path, and the one-hop candidate set already
// contains a clean middle whenever one exists. The realized numbers
// quantify why RON stopped at one.

#include <iostream>
#include <limits>

#include "bench/bench_common.h"
#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "util/stats.h"
#include "util/table.h"

using namespace ronpath;

int main(int argc, char** argv) {
  int hours = 8;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--hours" && i + 1 < argc)
      hours = static_cast<int>(bench::BenchArgs::parse_int("--hours", argv[++i], 1, 24 * 365));
    if (a == "--seed" && i + 1 < argc)
      seed = static_cast<std::uint64_t>(bench::BenchArgs::parse_int(
          "--seed", argv[++i], 0, std::numeric_limits<std::int64_t>::max()));
    if (a == "--quick") hours = 2;
  }

  const Topology topo = testbed_2003();
  Rng rng(seed);
  Scheduler sched;
  // Elevated loss so the comparison has signal.
  NetConfig cfg = NetConfig::profile_2003();
  cfg.loss_scale *= 6.0;
  Network net(topo, cfg, Duration::hours(hours + 2), rng.fork("net"));
  OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
  overlay.start();
  sched.run_until(TimePoint::epoch() + Duration::minutes(40));

  LossCounter direct_loss;
  LossCounter one_hop_loss;
  LossCounter two_hop_loss;
  std::int64_t picked_two_hop = 0;
  std::int64_t evaluations = 0;
  RunningStat one_lat;
  RunningStat two_lat;

  Rng pick(seed + 1);
  const TimePoint end = sched.now() + Duration::hours(hours);
  for (TimePoint t = sched.now(); t < end; t += Duration::millis(40)) {
    sched.run_until(t);
    const NodeId src = static_cast<NodeId>(pick.next_below(topo.size()));
    NodeId dst = src;
    while (dst == src) dst = static_cast<NodeId>(pick.next_below(topo.size()));

    auto& router = overlay.router(src);
    const PathSpec one = router.best_loss_path(dst).path;
    const auto two_choice = router.best_loss_path_two_hop(dst);
    ++evaluations;
    if (two_choice.path.is_two_hop()) ++picked_two_hop;

    const auto rd = overlay.send(PathSpec{src, dst, kDirectVia}, t);
    const auto r1 = overlay.send(one, t);
    const auto r2 = overlay.send(two_choice.path, t);
    direct_loss.record(!rd.delivered());
    one_hop_loss.record(!r1.delivered());
    two_hop_loss.record(!r2.delivered());
    if (r1.delivered()) one_lat.add(r1.net.latency.to_millis_f());
    if (r2.delivered()) two_lat.add(r2.net.latency.to_millis_f());
  }

  std::printf("== Ablation: at most one intermediate vs up to two ==\n");
  TextTable t({"selector", "loss %", "mean latency"});
  t.set_align(0, TextTable::Align::kLeft);
  t.add_row({"direct", TextTable::num(direct_loss.loss_percent(), 3), "-"});
  t.add_row({"best <=1-hop (paper)", TextTable::num(one_hop_loss.loss_percent(), 3),
             TextTable::num(one_lat.mean(), 1) + "ms"});
  t.add_row({"best <=2-hop", TextTable::num(two_hop_loss.loss_percent(), 3),
             TextTable::num(two_lat.mean(), 1) + "ms"});
  t.print(std::cout);
  std::printf("\ntwo-hop path actually selected on %.1f%% of evaluations\n",
              100.0 * static_cast<double>(picked_two_hop) / static_cast<double>(evaluations));
  std::printf("(expected: marginal loss gain at higher latency and O(N^2) selection\n"
              " cost - the quantitative case for the paper's one-intermediate limit)\n");
  return 0;
}
