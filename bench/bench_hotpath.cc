// Hot-path microbenchmark: the per-packet core, measured in isolation.
//
// Fixed-seed, fixed-iteration workloads:
//   packets/sec : Network::transmit over a probe-like stream on the full
//                 2003 testbed (mixed direct / one-hop paths, mixed
//                 data / probe traffic, roughly-monotone send times)
//   events/sec  : Scheduler throughput - self-rescheduling chains plus a
//                 cancellation mix (the overlay's probe/follow-up shape)
//   ns/sample   : ComponentProcess::sample on a roughly-monotone stream
//                 against a busy component (bursts, episodes, outages,
//                 diurnal modulation, static boosts)
// and, with --shards K, the sharded single-trial engine (src/pdes):
//   sharded packets/sec : the same packet mix injected open-loop into a
//                 pdes::Engine at K shards. The result checksum is
//                 REQUIRED to be identical at every shard count — the
//                 engine's determinism contract — so only wall-clock may
//                 change. --shard-sweep runs K in {1,2,4,8}, reports the
//                 per-count throughput (the scaling-efficiency row of
//                 BENCH_hotpath.json) and exits 2 on any checksum skew.
//
// The iteration counts are fixed so the simulated work is identical
// across code versions; only wall-clock changes. Each workload runs
// --reps times (each rep a fresh fixed-seed world, so checksums must
// match exactly across reps) and the best rep is reported, suppressing
// scheduler-noise outliers on shared machines. Results are emitted as
// a flat JSON object (the entry shape of BENCH_hotpath.json). --compare
// reads a committed trajectory file and exits 1 when packets/sec or
// events/sec regressed by more than --max-regress x against the LAST
// entry, so CI catches hot-path regressions without flagging ordinary
// machine-to-machine variance.
//
// Usage:
//   bench_hotpath [--quick] [--reps N] [--seed S] [--label NAME]
//                 [--shards K] [--shard-sweep]
//                 [--out PATH] [--compare BENCH_hotpath.json]
//                 [--max-regress F]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cstring>
#include <limits>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/config.h"
#include "net/loss_process.h"
#include "net/network.h"
#include "pdes/engine.h"
#include "util/rng.h"
#include "util/trajectory.h"

namespace ronpath {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Strict integer parsing (the BenchArgs convention): the whole token
// must be a number in range; garbage and trailing junk exit 2.
std::int64_t parse_int(const char* flag, const char* text, std::int64_t lo, std::int64_t hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    std::fprintf(stderr, "%s: expected an integer in [%lld, %lld], got \"%s\"\n", flag,
                 static_cast<long long>(lo), static_cast<long long>(hi), text);
    std::exit(2);
  }
  return v;
}

// Strict floating-point parsing for --max-regress: garbage, trailing
// junk, non-finite and non-positive thresholds exit 2. strtod's silent
// 0.0 on garbage would turn a typo into an always-failing gate.
double parse_positive_double(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !std::isfinite(v) || v <= 0.0) {
    std::fprintf(stderr, "%s: expected a positive number, got \"%s\"\n", flag, text);
    std::exit(2);
  }
  return v;
}

struct Result {
  double packets_per_sec = 0.0;
  double events_per_sec = 0.0;
  double ns_per_sample = 0.0;
  std::int64_t packets = 0;
  std::int64_t events = 0;
  std::int64_t samples = 0;
  // Checksums: the measured work must be bit-identical across versions;
  // any optimization that changes these changed simulation behaviour.
  std::uint64_t packet_checksum = 0;
  std::uint64_t sample_checksum = 0;
  // Sharded-engine workload (--shards / --shard-sweep); shards == 0
  // means it did not run and none of these fields are emitted.
  int shards = 0;
  std::int64_t sharded_packets = 0;
  double sharded_packets_per_sec = 0.0;
  std::uint64_t sharded_checksum = 0;
  bool sweep = false;
  double sweep_pps[4] = {0.0, 0.0, 0.0, 0.0};  // K = 1, 2, 4, 8
};

// --------------------------------------------------------------- packets/sec

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

void bench_packets(Result& r, std::int64_t n, std::uint64_t seed) {
  Topology topo = testbed_2003();
  const auto n_sites = static_cast<NodeId>(topo.size());
  NetConfig cfg = NetConfig::profile_2003(Duration::hours(48));
  Network net(std::move(topo), std::move(cfg), Duration::hours(48), Rng(seed));

  Rng pick(seed ^ 0xb0a710adULL);
  std::uint64_t checksum = 0;
  TimePoint t = TimePoint::epoch() + Duration::seconds(1);

  const double t0 = now_seconds();
  for (std::int64_t i = 0; i < n; ++i) {
    const auto src = static_cast<NodeId>(pick.next_below(n_sites));
    auto dst = src;
    while (dst == src) dst = static_cast<NodeId>(pick.next_below(n_sites));
    PathSpec path{src, dst, kDirectVia};
    if (i % 3 == 0) {  // every third packet rides a one-hop alternate
      auto via = src;
      while (via == src || via == dst) via = static_cast<NodeId>(pick.next_below(n_sites));
      path.via = via;
    }
    const TrafficClass cls = (i % 16 == 0) ? TrafficClass::kProbe : TrafficClass::kData;
    const TransmitResult res = net.transmit(path, t, cls);
    checksum = mix64(checksum, static_cast<std::uint64_t>(res.delivered));
    checksum = mix64(checksum, static_cast<std::uint64_t>(res.cause));
    if (res.delivered) {
      checksum = mix64(checksum, static_cast<std::uint64_t>(res.latency.count_nanos()));
    }
    // Probe-pair shape: back-to-back second copies stay at (almost) the
    // same instant; the stream advances ~10 ms per pair on average.
    t += (i % 2 == 0) ? Duration::micros(10) : Duration::millis(static_cast<std::int64_t>(
                                                   1 + pick.next_below(20)));
  }
  const double dt = now_seconds() - t0;

  r.packets = n;
  r.packets_per_sec = static_cast<double>(n) / dt;
  r.packet_checksum = checksum;
}

// -------------------------------------------------------- sharded packets/sec

// One sharded-engine run: the bench_packets mix (plus a two-relay slice,
// which the open-loop engine handles but transmit's stream above keeps
// simple) injected at a fixed 10 us cadence, then drained with
// run_to_end. Returns packets/sec; writes the seq-order result checksum,
// which must not depend on `shards`.
double bench_sharded_once(std::int64_t n, std::uint64_t seed, int shards,
                          std::uint64_t& checksum) {
  Topology topo = testbed_2003();
  const auto n_sites = static_cast<NodeId>(topo.size());
  NetConfig cfg = NetConfig::profile_2003(Duration::hours(48));
  Network net(std::move(topo), std::move(cfg), Duration::hours(48), Rng(seed));
  net.enable_sharded_underlay();

  pdes::EngineConfig ecfg;
  ecfg.shards = shards;
  pdes::Engine engine(net, ecfg);

  Rng pick(seed ^ 0xd15c0ULL);
  TimePoint t = TimePoint::epoch() + Duration::seconds(1);

  const double t0 = now_seconds();
  for (std::int64_t i = 0; i < n; ++i) {
    const auto src = static_cast<NodeId>(pick.next_below(n_sites));
    auto dst = src;
    while (dst == src) dst = static_cast<NodeId>(pick.next_below(n_sites));
    PathSpec path{src, dst, kDirectVia};
    if (i % 3 == 0) {  // every third packet rides a one-hop alternate...
      auto via = src;
      while (via == src || via == dst) via = static_cast<NodeId>(pick.next_below(n_sites));
      path.via = via;
      if (i % 9 == 0) {  // ...every ninth a two-relay chain
        auto via2 = src;
        while (via2 == src || via2 == dst || via2 == via) {
          via2 = static_cast<NodeId>(pick.next_below(n_sites));
        }
        path.via2 = via2;
      }
    }
    const TrafficClass cls = (i % 16 == 0) ? TrafficClass::kProbe : TrafficClass::kData;
    engine.inject(path, t, cls);
    t += Duration::micros(10);
  }
  engine.run_to_end();
  const double dt = now_seconds() - t0;

  checksum = engine.checksum();
  return static_cast<double>(n) / dt;
}

void bench_sharded(Result& r, std::int64_t n, std::uint64_t seed, int shards, bool sweep) {
  r.shards = shards;
  r.sharded_packets = n;
  r.sweep = sweep;
  r.sharded_packets_per_sec = bench_sharded_once(n, seed, shards, r.sharded_checksum);
  if (!sweep) return;
  constexpr int kSweep[4] = {1, 2, 4, 8};
  for (int k = 0; k < 4; ++k) {
    if (kSweep[k] == shards) {
      r.sweep_pps[k] = r.sharded_packets_per_sec;
      continue;
    }
    std::uint64_t sum = 0;
    r.sweep_pps[k] = bench_sharded_once(n, seed, kSweep[k], sum);
    if (sum != r.sharded_checksum) {
      std::fprintf(stderr,
                   "sharded checksum skew: %016llx at %d shards vs %016llx at %d shards "
                   "(determinism contract broken)\n",
                   static_cast<unsigned long long>(sum), kSweep[k],
                   static_cast<unsigned long long>(r.sharded_checksum), shards);
      std::exit(2);
    }
  }
}

// ---------------------------------------------------------------- events/sec

void bench_events(Result& r, std::int64_t n, std::uint64_t seed) {
  Scheduler sched;
  Rng rng(seed ^ 0x5ced5ced5ced5cedULL);
  std::int64_t fired = 0;
  std::vector<EventHandle> cancel_me;
  cancel_me.reserve(64);

  // 64 independent chains: each tick reschedules itself (the ProbeDriver
  // node_tick shape) and every fourth tick schedules+cancels a decoy (the
  // follow-up-timer / ARQ-timeout shape).
  constexpr int kChains = 64;
  std::function<void(int)> tick = [&](int chain) {
    ++fired;
    if (fired % 4 == 0) {
      cancel_me.push_back(
          sched.schedule_after(Duration::millis(500), [&fired] { ++fired; }));
      cancel_me.back().cancel();
      if (cancel_me.size() >= 64) cancel_me.clear();
    }
    sched.schedule_after(Duration::micros(100 + rng.next_below(900)),
                         [&tick, chain] { tick(chain); });
  };

  const double t0 = now_seconds();
  for (int c = 0; c < kChains; ++c) {
    sched.schedule_after(Duration::micros(rng.next_below(1000)), [&tick, c] { tick(c); });
  }
  while (fired < n) {
    if (!sched.step()) break;
  }
  const double dt = now_seconds() - t0;

  r.events = static_cast<std::int64_t>(sched.dispatched_events());
  r.events_per_sec = static_cast<double>(r.events) / dt;
}

// ---------------------------------------------------------------- ns/sample

void bench_samples(Result& r, std::int64_t n, std::uint64_t seed) {
  ComponentParams p;
  p.base_loss = 0.001;
  p.bursts_per_hour = 60.0;
  p.burst_drop_prob = 0.8;
  p.episodes_per_day = 12.0;
  p.episode_mean = Duration::minutes(10);
  p.episode_loss_rate = 0.05;
  p.outages_per_month = 30.0;
  p.outage_mean = Duration::minutes(2);
  p.diurnal_amplitude = 0.35;

  std::vector<StateInterval> boosts;
  for (int i = 0; i < 8; ++i) {
    const TimePoint s = TimePoint::epoch() + Duration::minutes(20 + i * 45);
    boosts.push_back({s, s + Duration::minutes(15), 4.0});
  }
  ComponentProcess cp(p, -71.1, std::move(boosts), Rng(seed ^ 0xc0ffee));

  Rng step(seed ^ 0xface);
  TimePoint t = TimePoint::epoch() + Duration::seconds(1);
  std::uint64_t checksum = 0;

  const double t0 = now_seconds();
  for (std::int64_t i = 0; i < n; ++i) {
    const ComponentSample s = cp.sample(t);
    checksum = mix64(checksum, static_cast<std::uint64_t>(s.drop_prob * 1e12));
    checksum = mix64(checksum, static_cast<std::uint64_t>(s.burst) |
                                   (static_cast<std::uint64_t>(s.episode) << 1) |
                                   (static_cast<std::uint64_t>(s.outage) << 2));
    if (i % 64 == 63) {
      t -= Duration::millis(200);  // roughly-monotone back-jump, within safety
    } else {
      t += Duration::millis(static_cast<std::int64_t>(1 + step.next_below(20)));
    }
  }
  const double dt = now_seconds() - t0;

  r.samples = n;
  r.ns_per_sample = dt * 1e9 / static_cast<double>(n);
  r.sample_checksum = checksum;
}

// ------------------------------------------------------------------ plumbing

void emit_json(std::FILE* f, const Result& r, const std::string& label) {
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"ronpath-bench-hotpath-v1\",\n"
               "  \"label\": \"%s\",\n"
               "  \"packets\": %lld,\n"
               "  \"packets_per_sec\": %.1f,\n"
               "  \"events\": %lld,\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"samples\": %lld,\n"
               "  \"ns_per_sample\": %.2f,\n"
               "  \"packet_checksum\": \"%016llx\",\n"
               "  \"sample_checksum\": \"%016llx\"",
               label.c_str(), static_cast<long long>(r.packets), r.packets_per_sec,
               static_cast<long long>(r.events), r.events_per_sec,
               static_cast<long long>(r.samples), r.ns_per_sample,
               static_cast<unsigned long long>(r.packet_checksum),
               static_cast<unsigned long long>(r.sample_checksum));
  if (r.shards > 0) {
    std::fprintf(f,
                 ",\n"
                 "  \"shards\": %d,\n"
                 "  \"cores\": %u,\n"
                 "  \"sharded_packets\": %lld,\n"
                 "  \"sharded_packets_per_sec\": %.1f,\n"
                 "  \"sharded_checksum\": \"%016llx\"",
                 r.shards, std::thread::hardware_concurrency(),
                 static_cast<long long>(r.sharded_packets), r.sharded_packets_per_sec,
                 static_cast<unsigned long long>(r.sharded_checksum));
  }
  if (r.sweep) {
    std::fprintf(f,
                 ",\n"
                 "  \"sharded_pps_1\": %.1f,\n"
                 "  \"sharded_pps_2\": %.1f,\n"
                 "  \"sharded_pps_4\": %.1f,\n"
                 "  \"sharded_pps_8\": %.1f,\n"
                 "  \"scaling_8x\": %.3f",
                 r.sweep_pps[0], r.sweep_pps[1], r.sweep_pps[2], r.sweep_pps[3],
                 r.sweep_pps[0] > 0.0 ? r.sweep_pps[3] / r.sweep_pps[0] : 0.0);
  }
  std::fprintf(f, "\n}\n");
}

int compare_against(const char* path, const Result& r, double max_regress) {
  const std::optional<std::string> text = traj::read_file(path);
  if (!text) {
    std::fprintf(stderr, "--compare: cannot read %s\n", path);
    return 2;
  }
  // Baseline = the LAST trajectory entry only. Older entries may carry
  // fields the newest one lacks (pre-PR6 rows have no sharded columns,
  // and vice versa), so the keys must be resolved within one entry, not
  // by a whole-file scan.
  const std::string entry = traj::last_entry(*text);
  if (entry.empty()) {
    std::fprintf(stderr, "--compare: no trajectory entry in %s\n", path);
    return 2;
  }

  int rc = 0;
  const struct {
    const char* key;
    double measured;
    bool optional;  // skipped when missing on either side
  } checks[] = {
      {"packets_per_sec", r.packets_per_sec, false},
      {"events_per_sec", r.events_per_sec, false},
      {"sharded_packets_per_sec", r.sharded_packets_per_sec, true},
  };
  for (const auto& c : checks) {
    const double committed = traj::number_field(entry, c.key);
    if (c.optional && (committed <= 0.0 || c.measured <= 0.0)) {
      continue;  // dimension absent in the baseline or not measured this run
    }
    if (committed <= 0.0) {
      std::fprintf(stderr, "--compare: no %s in the last entry of %s\n", c.key, path);
      return 2;
    }
    const double ratio = committed / c.measured;
    std::printf("compare %-16s measured %12.1f committed %12.1f (%.2fx %s)\n", c.key,
                c.measured, committed, ratio > 1.0 ? ratio : 1.0 / ratio,
                ratio > 1.0 ? "slower" : "faster");
    if (ratio > max_regress) {
      std::fprintf(stderr, "REGRESSION: %s is %.2fx below the committed baseline "
                           "(limit %.2fx)\n",
                   c.key, ratio, max_regress);
      rc = 1;
    }
  }
  return rc;
}

int run(int argc, char** argv) {
  std::int64_t n_packets = 400'000;
  std::int64_t n_events = 2'000'000;
  std::int64_t n_samples = 2'000'000;
  std::uint64_t seed = 42;
  int reps = 3;
  int shards = 0;       // 0 = sharded workload off
  bool shard_sweep = false;
  std::string label = "run";
  std::string out_path;
  const char* compare_path = nullptr;
  double max_regress = 2.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      n_packets = 60'000;
      n_events = 300'000;
      n_samples = 300'000;
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(
          parse_int("--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (arg == "--reps") {
      reps = static_cast<int>(parse_int("--reps", next(), 1, 1000));
    } else if (arg == "--shards") {
      // "--shards 0" and non-numeric values exit 2 instead of silently
      // running legacy.
      shards = static_cast<int>(parse_int("--shards", next(), 1, 256));
    } else if (arg == "--shard-sweep") {
      shard_sweep = true;
    } else if (arg == "--label") {
      label = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--compare") {
      compare_path = next();
    } else if (arg == "--max-regress") {
      max_regress = parse_positive_double("--max-regress", next());
    } else if (arg == "--help") {
      std::printf("usage: %s [--quick] [--reps N] [--seed S] [--shards K] [--shard-sweep] "
                  "[--label NAME] [--out PATH] [--compare FILE] [--max-regress F]\n",
                  argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  // Best-of-reps: every rep rebuilds the same fixed-seed world, so the
  // checksums must agree bit-for-bit across reps; the best throughput is
  // the closest observation of the code's actual cost on a noisy machine.
  if (shard_sweep && shards == 0) shards = 1;
  Result r;
  for (int rep = 0; rep < reps; ++rep) {
    Result cur;
    bench_packets(cur, n_packets, seed);
    bench_events(cur, n_events, seed);
    bench_samples(cur, n_samples, seed);
    // The sweep re-runs every shard count each rep (it also re-checks
    // cross-count checksum equality each time).
    if (shards > 0) bench_sharded(cur, n_packets, seed, shards, shard_sweep);
    if (rep == 0) {
      r = cur;
      continue;
    }
    if (cur.packet_checksum != r.packet_checksum ||
        cur.sample_checksum != r.sample_checksum ||
        cur.sharded_checksum != r.sharded_checksum) {
      std::fprintf(stderr, "checksum mismatch across reps: benchmark is nondeterministic\n");
      return 2;
    }
    r.packets_per_sec = std::max(r.packets_per_sec, cur.packets_per_sec);
    r.events_per_sec = std::max(r.events_per_sec, cur.events_per_sec);
    r.ns_per_sample = std::min(r.ns_per_sample, cur.ns_per_sample);
    r.sharded_packets_per_sec = std::max(r.sharded_packets_per_sec, cur.sharded_packets_per_sec);
    for (int k = 0; k < 4; ++k) r.sweep_pps[k] = std::max(r.sweep_pps[k], cur.sweep_pps[k]);
  }

  std::printf("packets/sec : %12.1f  (%lld packets, checksum %016llx)\n", r.packets_per_sec,
              static_cast<long long>(r.packets),
              static_cast<unsigned long long>(r.packet_checksum));
  std::printf("events/sec  : %12.1f  (%lld events)\n", r.events_per_sec,
              static_cast<long long>(r.events));
  std::printf("ns/sample   : %12.2f  (%lld samples, checksum %016llx)\n", r.ns_per_sample,
              static_cast<long long>(r.samples),
              static_cast<unsigned long long>(r.sample_checksum));
  if (r.shards > 0) {
    std::printf("sharded/sec : %12.1f  (%lld packets, %d shards, %u cores, checksum %016llx)\n",
                r.sharded_packets_per_sec, static_cast<long long>(r.sharded_packets), r.shards,
                std::thread::hardware_concurrency(),
                static_cast<unsigned long long>(r.sharded_checksum));
  }
  if (r.sweep) {
    std::printf("shard sweep : 1:%.1f 2:%.1f 4:%.1f 8:%.1f pkt/s (8-shard scaling %.2fx, "
                "checksums identical)\n",
                r.sweep_pps[0], r.sweep_pps[1], r.sweep_pps[2], r.sweep_pps[3],
                r.sweep_pps[0] > 0.0 ? r.sweep_pps[3] / r.sweep_pps[0] : 0.0);
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open \"%s\" for writing: %s\n", out_path.c_str(),
                   std::strerror(errno));
      return 2;
    }
    emit_json(f, r, label);
    std::fclose(f);
  } else {
    emit_json(stdout, r, label);
  }

  if (compare_path) return compare_against(compare_path, r, max_regress);
  return 0;
}

}  // namespace
}  // namespace ronpath

int main(int argc, char** argv) { return ronpath::run(argc, argv); }
