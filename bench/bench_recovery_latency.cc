// Recovery-latency comparison (the paper's Section 2.1 motivation):
// "retransmissions ... result in degraded throughput and increased
// latency. [We] examine loss-resilient routing strategies that do not
// dramatically increase end-to-end round-trip latencies."
//
// Streams packets over a lossy path and compares how long delivery takes
// under: no recovery (direct), end-to-end ARQ (same-path retransmit),
// overlay-assisted ARQ (retransmit on the loss-optimized alternate), and
// 2-redundant mesh routing. The tails tell the story: ARQ recovers
// everything but pays RTO-scale latency on every loss; mesh pays a
// constant 2x bandwidth and keeps the latency distribution tight.

#include <iostream>
#include <limits>

#include "bench/bench_common.h"
#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "routing/arq.h"
#include "routing/multipath.h"
#include "util/stats.h"
#include "util/table.h"

using namespace ronpath;

namespace {

struct Row {
  std::string name;
  double delivery_pct = 0.0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double overhead = 1.0;
};

NetConfig lossy_profile() {
  NetConfig cfg = NetConfig::profile_2003();
  cfg.loss_scale *= 10.0;  // make losses frequent enough to time
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  int packets = 150'000;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--packets") {
      packets = static_cast<int>(bench::BenchArgs::parse_int("--packets", next(), 1, 100000000));
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(bench::BenchArgs::parse_int(
          "--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (a == "--quick") {
      packets = 30'000;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }

  std::printf("== Recovery latency: direct vs ARQ vs overlay-ARQ vs mesh ==\n");
  std::vector<Row> rows;

  for (int strategy = 0; strategy < 4; ++strategy) {
    const Topology topo = testbed_2003();
    Rng rng(seed);
    Scheduler sched;
    Network net(topo, lossy_profile(), Duration::hours(5), rng.fork("net"));
    OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
    overlay.start();
    sched.run_until(TimePoint::epoch() + Duration::minutes(40));

    const NodeId src = *topo.find("UCSD");
    const NodeId dst = *topo.find("Korea");
    const Duration step = Duration::millis(25);

    Row row;
    if (strategy == 0 || strategy == 3) {
      // Direct / mesh via MultipathSender.
      MultipathSender sender(overlay, rng.fork("sender"));
      const PairScheme scheme =
          strategy == 0 ? PairScheme::kDirect : PairScheme::kDirectRand;
      row.name = strategy == 0 ? "direct (no recovery)" : "2-redundant mesh";
      row.overhead = strategy == 0 ? 1.0 : 2.0;
      EmpiricalCdf lat;
      std::int64_t delivered = 0;
      for (int i = 0; i < packets; ++i) {
        const TimePoint t = sched.now() + step;
        sched.run_until(t);
        const auto out = sender.send(scheme, src, dst, t);
        if (out.any_delivered()) {
          ++delivered;
          lat.add((out.first_arrival() - t).to_millis_f());
        }
      }
      row.delivery_pct = 100.0 * static_cast<double>(delivered) / packets;
      row.mean_ms = lat.mean();
      row.p99_ms = lat.quantile(0.99);
      row.max_ms = lat.max();
    } else {
      ArqConfig cfg;
      cfg.retransmit_on_alternate = strategy == 2;
      row.name = strategy == 1 ? "ARQ (same path)" : "ARQ (alternate retransmit)";
      ArqChannel arq(overlay, sched, src, dst, cfg, rng.fork("arq"));
      for (int i = 0; i < packets; ++i) {
        sched.run_until(sched.now() + step);
        arq.send();
      }
      // Drain outstanding retransmissions.
      sched.run_until(sched.now() + Duration::minutes(5));
      const auto& st = arq.stats();
      row.delivery_pct = 100.0 * st.delivery_rate();
      row.mean_ms = st.delivery_latency_ms.mean();
      row.p99_ms = st.delivery_p99_ms.value();
      row.max_ms = st.delivery_latency_ms.max();
      row.overhead = st.mean_transmissions();
    }
    rows.push_back(std::move(row));
  }

  TextTable t({"strategy", "delivered %", "mean lat", "p99 lat", "max lat", "overhead"});
  t.set_align(0, TextTable::Align::kLeft);
  for (const auto& r : rows) {
    t.add_row({r.name, TextTable::num(r.delivery_pct, 3), TextTable::num(r.mean_ms, 1) + "ms",
               TextTable::num(r.p99_ms, 1) + "ms",
               TextTable::num(r.max_ms, 0) + "ms", TextTable::num(r.overhead, 3) + "x"});
  }
  t.print(std::cout);
  std::printf("\nexpected: ARQ reaches ~100%% delivery but its latency tail stretches to\n"
              "RTO scale (hundreds of ms to seconds); mesh keeps the tail at path-RTT\n"
              "scale for a flat 2x cost - the paper's case for loss-resilient routing\n"
              "that does not 'dramatically increase end-to-end latencies'.\n");
  return 0;
}
