// Ablation: the shared-edge bottleneck hypothesis (DESIGN.md choice #1).
//
// The paper attributes cross-path loss correlation to shared
// infrastructure near the edge. This ablation removes the shared provider
// components' loss (moving their mass onto independent core segments) and
// shows that direct rand's conditional loss probability collapses toward
// independence, while back-to-back same-path CLP stays put - isolating
// the mechanism behind Section 4.4's central numbers.

#include <iostream>
#include <limits>

#include "bench/bench_common.h"
#include "core/testbed.h"
#include "net/network.h"
#include "util/table.h"
#include "util/rng.h"

using namespace ronpath;

namespace {

struct Result {
  double lp1 = 0.0;
  double clp_same = 0.0;
  double clp_rand = 0.0;
};

Result measure(const NetConfig& cfg, std::uint64_t seed, int hours) {
  const Topology topo = testbed_2003();
  Network net(topo, cfg, Duration::hours(hours + 1), Rng(seed));
  Rng rng(seed + 1);
  std::int64_t n = 0, lost1 = 0, both_same = 0, both_rand = 0;
  const std::int64_t total = static_cast<std::int64_t>(hours) * 3600 * 25;
  for (std::int64_t i = 0; i < total; ++i) {
    const TimePoint t = TimePoint::epoch() + Duration::micros(i * 40'000);
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    ++n;
    const auto r1 = net.transmit(PathSpec{a, b, kDirectVia}, t);
    if (r1.delivered) continue;
    ++lost1;
    if (!net.transmit(PathSpec{a, b, kDirectVia}, t).delivered) ++both_same;
    NodeId v = a;
    while (v == a || v == b) v = static_cast<NodeId>(rng.next_below(30));
    if (!net.transmit(PathSpec{a, b, v}, t).delivered) ++both_rand;
  }
  Result res;
  res.lp1 = 100.0 * static_cast<double>(lost1) / static_cast<double>(n);
  if (lost1 > 0) {
    res.clp_same = 100.0 * static_cast<double>(both_same) / static_cast<double>(lost1);
    res.clp_rand = 100.0 * static_cast<double>(both_rand) / static_cast<double>(lost1);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  int hours = 8;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--hours") {
      hours = static_cast<int>(bench::BenchArgs::parse_int("--hours", next(), 1, 24 * 365));
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(bench::BenchArgs::parse_int(
          "--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (a == "--quick") {
      hours = 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }

  std::printf("== Ablation: shared edge/provider bottleneck vs loss correlation ==\n");

  NetConfig shared = NetConfig::profile_2003();
  const Result with_shared = measure(shared, seed, hours);

  // Remove shared-component loss: zero edge/provider bursts, move the
  // mass onto (independent) core segments.
  NetConfig indep = NetConfig::profile_2003();
  for (auto& p : indep.access) {
    p.bursts_per_hour = 0.0;
    p.episodes_per_day = 0.0;
    p.outages_per_month = 0.0;
  }
  indep.provider.bursts_per_hour = 0.0;
  indep.provider.episodes_per_day = 0.0;
  indep.provider.outages_per_month = 0.0;
  indep.core.bursts_per_hour *= 14.0;  // keep overall loss comparable
  indep.provider_events.events_per_site_day = 0.0;
  const Result without_shared = measure(indep, seed, hours);

  TextTable t({"configuration", "direct loss %", "CLP same-path", "CLP via-random"});
  t.set_align(0, TextTable::Align::kLeft);
  t.add_row({"shared edges (default)", TextTable::num(with_shared.lp1),
             TextTable::num(with_shared.clp_same, 1), TextTable::num(with_shared.clp_rand, 1)});
  t.add_row({"independent middles only", TextTable::num(without_shared.lp1),
             TextTable::num(without_shared.clp_same, 1),
             TextTable::num(without_shared.clp_rand, 1)});
  t.print(std::cout);
  std::printf("\nexpected: removing shared components collapses the via-random CLP toward\n"
              "zero while same-path CLP persists - the paper's path-independence\n"
              "assumption holds only when bottlenecks are not shared (Section 2.4).\n");
  return 0;
}
