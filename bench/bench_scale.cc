// Scale benchmark: the bandwidth-capped overlay at 30 / 300 / 3000
// nodes (DESIGN.md §14).
//
// Each tier runs one fault-matrix cell (canonical link-flap scenario,
// hybrid scheme) on the synthetic hierarchical topology with the capped
// link-state overlay, and reports
//
//   fidelity   : per-phase loss and failover time from the finished
//                cell — the Table-5-calibrated behaviour must survive
//                the capped control plane at every size;
//   throughput : wall clock, underlay packets/sec and scheduler
//                events/sec for the whole cell;
//   control    : per-node control-plane bytes/sec from the overlay's
//                ControlMeters. The rotation schedule bounds each
//                node's announce rate by its fanout, so this column
//                must stay flat (within 2x) from 30 to 3000 nodes —
//                the bench exits 1 when it does not;
//   memory     : OverlayNetwork::state_bytes() (resident overlay state,
//                O(n*fanout)), materialized underlay components (lazy
//                mode at 1000+ nodes), and the process VmHWM peak RSS
//                read from /proc/self/status (cumulative across tiers;
//                0 off Linux).
//
// The 30-node tier doubles as the correctness anchor: the same cell is
// re-run with the legacy full-mesh overlay (fanout 0) and with
// fanout = n-1; their reports must be byte-identical (the capped
// machinery — metering, budget enforcement, stride stamping — is
// provably inert at full fanout). Any skew exits 2.
//
// Every run is a fixed-seed pure function, so per-tier report checksums
// must agree across --reps; only wall clock may vary (best rep wins).
// Results are emitted as a flat JSON object (the entry shape of
// BENCH_scale.json); --compare reads the committed trajectory and exits
// 1 when packets/sec or events/sec of any tier measured this run
// regressed by more than --max-regress x against the LAST entry (tiers
// absent on either side are skipped, like bench_hotpath's pre-PR6
// sharded columns).
//
// Usage:
//   bench_scale [--nodes N[,N...]] [--fanout K] [--landmarks L]
//               [--seed S] [--reps N] [--label NAME] [--quick]
//               [--no-anchor] [--out PATH] [--compare BENCH_scale.json]
//               [--max-regress F]

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/fault_matrix.h"
#include "fault/scenarios.h"
#include "snapshot/codec.h"
#include "snapshot/world.h"
#include "util/trajectory.h"

namespace ronpath {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Strict integer parsing (the BenchArgs convention): the whole token
// must be a number in range; garbage and zero exit 2.
std::int64_t parse_int(const char* flag, const char* text, std::int64_t lo, std::int64_t hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    std::fprintf(stderr, "%s: expected an integer in [%lld, %lld], got \"%s\"\n", flag,
                 static_cast<long long>(lo), static_cast<long long>(hi), text);
    std::exit(2);
  }
  return v;
}

// Strict floating-point parsing for --max-regress: garbage, trailing
// junk, non-finite and non-positive thresholds exit 2. strtod's silent
// 0.0 on garbage would turn a typo into an always-failing gate.
double parse_positive_double(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !std::isfinite(v) || v <= 0.0) {
    std::fprintf(stderr, "%s: expected a positive number, got \"%s\"\n", flag, text);
    std::exit(2);
  }
  return v;
}

// Parses a comma-separated tier list ("30,300,3000"), each strict.
std::vector<std::size_t> parse_tiers(const char* text) {
  std::vector<std::size_t> tiers;
  const std::string s = text;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    const std::string tok = s.substr(pos, comma - pos);
    // NodeId is 16-bit with two sentinel values; 65'000 leaves headroom.
    tiers.push_back(static_cast<std::size_t>(parse_int("--nodes", tok.c_str(), 8, 65'000)));
    pos = comma + 1;
    if (comma == s.size()) break;
  }
  return tiers;
}

// VmHWM (peak resident set) in kB from /proc/self/status; 0 when
// unavailable. Cumulative for the process, so tiers should run
// smallest-first for a meaningful per-tier reading.
std::int64_t peak_rss_kb() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::int64_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoll(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

struct TierResult {
  std::size_t nodes = 0;
  double wall_s = 0.0;
  double packets_per_sec = 0.0;
  double events_per_sec = 0.0;
  std::int64_t packets = 0;
  std::uint64_t events = 0;
  double control_bps_per_node = 0.0;
  std::int64_t suppressed = 0;
  std::size_t state_bytes = 0;
  std::size_t materialized = 0;
  std::size_t components = 0;
  std::int64_t vm_hwm_kb = 0;
  bool lazy = false;
  FaultCell cell;
  std::uint64_t report_checksum = 0;
};

FaultMatrixConfig tier_config(std::size_t nodes, std::size_t fanout, std::size_t landmarks,
                              std::uint64_t seed, bool quick) {
  FaultMatrixConfig cfg;
  cfg.seed = seed;
  cfg.synth_nodes = nodes;
  cfg.overlay_fanout = std::min(fanout, nodes - 1);
  cfg.overlay_landmarks = std::min(landmarks, nodes);
  cfg.lazy_underlay = nodes >= 1000;  // eager construction is the 1k+ memory wall
  if (quick) cfg.measured = Duration::minutes(10);
  return cfg;
}

// Runs one cell and fills every column. The Scenario comes from the
// canonical set, so its fault window sits inside the default
// warmup+measured span at any size (faults reference nodes 0..3).
TierResult run_tier(const Scenario& scenario, const FaultMatrixConfig& cfg) {
  TierResult r;
  r.nodes = cfg.synth_nodes;
  r.lazy = cfg.lazy_underlay;

  const double t0 = now_seconds();
  SimWorld world(scenario, FaultScheme::kHybrid, cfg, cfg.seed);
  world.run_to_end();
  r.wall_s = now_seconds() - t0;

  r.packets = world.network().stats().transmitted;
  r.events = world.scheduler().dispatched_events();
  r.packets_per_sec = static_cast<double>(r.packets) / r.wall_s;
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;

  const OverlayNetwork& overlay = world.overlay();
  std::int64_t control_bytes = 0;
  for (NodeId i = 0; i < static_cast<NodeId>(r.nodes); ++i) {
    const ControlMeter& m = overlay.control_meter(i);
    control_bytes += m.total_bytes;
    r.suppressed += m.suppressed;
  }
  const double sim_seconds =
      static_cast<double>((cfg.warmup + cfg.measured).count_nanos()) / 1e9;
  r.control_bps_per_node =
      static_cast<double>(control_bytes) / static_cast<double>(r.nodes) / sim_seconds;
  r.state_bytes = overlay.state_bytes();
  r.materialized = world.network().materialized_components();
  r.components = world.network().component_count();
  r.vm_hwm_kb = peak_rss_kb();
  r.cell = world.cell();
  r.report_checksum = snap::fnv1a(world.report());
  return r;
}

// The 30-node anchor: legacy full mesh vs fanout = n-1 must produce
// byte-identical reports (same probes, same routes, same cell).
bool anchor_holds(const Scenario& scenario, std::size_t nodes, std::size_t landmarks,
                  std::uint64_t seed, bool quick) {
  FaultMatrixConfig legacy = tier_config(nodes, 0, landmarks, seed, quick);
  legacy.overlay_fanout = 0;
  FaultMatrixConfig capped = tier_config(nodes, nodes - 1, landmarks, seed, quick);

  SimWorld a(scenario, FaultScheme::kHybrid, legacy, seed);
  a.run_to_end();
  SimWorld b(scenario, FaultScheme::kHybrid, capped, seed);
  b.run_to_end();
  const std::string ra = a.report();
  const std::string rb = b.report();
  if (ra == rb) return true;
  std::fprintf(stderr,
               "ANCHOR FAILED at %zu nodes: fanout %zu diverged from the legacy full mesh\n"
               "--- legacy ---\n%s--- capped ---\n%s",
               nodes, nodes - 1, ra.c_str(), rb.c_str());
  return false;
}

void emit_json(std::FILE* f, const std::vector<TierResult>& tiers, const std::string& label,
               std::size_t fanout, std::size_t landmarks, bool anchored) {
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"ronpath-bench-scale-v1\",\n"
               "  \"label\": \"%s\",\n"
               "  \"fanout\": %zu,\n"
               "  \"landmarks\": %zu,\n"
               "  \"anchor\": \"%s\"",
               label.c_str(), fanout, landmarks, anchored ? "ok" : "skipped");
  for (const TierResult& t : tiers) {
    const auto n = t.nodes;
    std::fprintf(f,
                 ",\n"
                 "  \"wall_s_%zu\": %.2f,\n"
                 "  \"packets_per_sec_%zu\": %.1f,\n"
                 "  \"events_per_sec_%zu\": %.1f,\n"
                 "  \"control_bps_per_node_%zu\": %.2f,\n"
                 "  \"suppressed_%zu\": %lld,\n"
                 "  \"state_bytes_%zu\": %zu,\n"
                 "  \"materialized_components_%zu\": %zu,\n"
                 "  \"total_components_%zu\": %zu,\n"
                 "  \"vm_hwm_kb_%zu\": %lld,\n"
                 "  \"loss_fault_pct_%zu\": %.4f,\n"
                 "  \"failover_s_%zu\": %.3f,\n"
                 "  \"report_checksum_%zu\": \"%016llx\"",
                 n, t.wall_s, n, t.packets_per_sec, n, t.events_per_sec, n,
                 t.control_bps_per_node, n, static_cast<long long>(t.suppressed), n,
                 t.state_bytes, n, t.materialized, n, t.components, n,
                 static_cast<long long>(t.vm_hwm_kb), n, t.cell.loss_fault_pct, n,
                 t.cell.failover_s, n, static_cast<unsigned long long>(t.report_checksum));
  }
  std::fprintf(f, "\n}\n");
}

int compare_against(const char* path, const std::vector<TierResult>& tiers,
                    double max_regress) {
  const std::optional<std::string> text = traj::read_file(path);
  if (!text) {
    std::fprintf(stderr, "--compare: cannot read %s\n", path);
    return 2;
  }
  const std::string entry = traj::last_entry(*text);
  if (entry.empty()) {
    std::fprintf(stderr, "--compare: no trajectory entry in %s\n", path);
    return 2;
  }
  int rc = 0;
  for (const TierResult& t : tiers) {
    const struct {
      std::string key;
      double measured;
    } checks[] = {
        {"packets_per_sec_" + std::to_string(t.nodes), t.packets_per_sec},
        {"events_per_sec_" + std::to_string(t.nodes), t.events_per_sec},
    };
    for (const auto& c : checks) {
      if (!traj::has_field(entry, c.key)) continue;  // tier absent in the baseline
      const double committed = traj::number_field(entry, c.key);
      if (committed <= 0.0 || c.measured <= 0.0) continue;
      const double ratio = committed / c.measured;
      std::printf("compare %-24s measured %12.1f committed %12.1f (%.2fx %s)\n", c.key.c_str(),
                  c.measured, committed, ratio > 1.0 ? ratio : 1.0 / ratio,
                  ratio > 1.0 ? "slower" : "faster");
      if (ratio > max_regress) {
        std::fprintf(stderr,
                     "REGRESSION: %s is %.2fx below the committed baseline (limit %.2fx)\n",
                     c.key.c_str(), ratio, max_regress);
        rc = 1;
      }
    }
  }
  return rc;
}

int run(int argc, char** argv) {
  std::vector<std::size_t> tiers;
  std::size_t fanout = 16;
  std::size_t landmarks = 8;
  std::uint64_t seed = 42;
  int reps = 1;
  bool quick = false;
  bool anchor = true;
  std::string label = "run";
  std::string out_path;
  const char* compare_path = nullptr;
  double max_regress = 2.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") {
      tiers = parse_tiers(next());
    } else if (arg == "--fanout") {
      fanout = static_cast<std::size_t>(parse_int("--fanout", next(), 1, 65'534));
    } else if (arg == "--landmarks") {
      landmarks = static_cast<std::size_t>(parse_int("--landmarks", next(), 0, 65'534));
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(
          parse_int("--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (arg == "--reps") {
      reps = static_cast<int>(parse_int("--reps", next(), 1, 100));
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--no-anchor") {
      anchor = false;
    } else if (arg == "--label") {
      label = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--compare") {
      compare_path = next();
    } else if (arg == "--max-regress") {
      max_regress = parse_positive_double("--max-regress", next());
    } else if (arg == "--help") {
      std::printf("usage: %s [--nodes N[,N...]] [--fanout K] [--landmarks L] [--seed S] "
                  "[--reps N] [--label NAME] [--quick] [--no-anchor] [--out PATH] "
                  "[--compare FILE] [--max-regress F]\n",
                  argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (tiers.empty()) tiers = quick ? std::vector<std::size_t>{30, 300}
                                   : std::vector<std::size_t>{30, 300, 3000};
  std::sort(tiers.begin(), tiers.end());  // smallest first: VmHWM is cumulative

  const Scenario* scenario = find_scenario("link-flap");
  if (scenario == nullptr) {
    std::fprintf(stderr, "canonical scenario \"link-flap\" is missing\n");
    return 2;
  }

  // Correctness before speed: at fanout >= n-1 the capped overlay must
  // reproduce the legacy full mesh bit for bit on the smallest tier.
  bool anchored = false;
  if (anchor) {
    const std::size_t n = tiers.front();
    if (!anchor_holds(*scenario, n, landmarks, seed, quick)) return 2;
    anchored = true;
    std::printf("anchor: fanout %zu == legacy full mesh at %zu nodes (reports identical)\n",
                n - 1, n);
  }

  std::vector<TierResult> results;
  for (const std::size_t n : tiers) {
    const FaultMatrixConfig cfg = tier_config(n, fanout, landmarks, seed, quick);
    TierResult best = run_tier(*scenario, cfg);
    for (int rep = 1; rep < reps; ++rep) {
      TierResult cur = run_tier(*scenario, cfg);
      if (cur.report_checksum != best.report_checksum) {
        std::fprintf(stderr, "%zu nodes: report checksum mismatch across reps: "
                             "benchmark is nondeterministic\n", n);
        return 2;
      }
      if (cur.wall_s < best.wall_s) {
        const std::int64_t hwm = best.vm_hwm_kb;  // keep the first peak reading
        best = cur;
        best.vm_hwm_kb = hwm;
      }
    }
    std::printf("%5zu nodes: %7.2fs wall, %10.1f pkt/s, %10.1f ev/s, "
                "%7.2f control B/s/node, %zu KiB overlay state, %zu/%zu components%s, "
                "loss(fault) %.2f%%, failover %.2fs, checksum %016llx\n",
                n, best.wall_s, best.packets_per_sec, best.events_per_sec,
                best.control_bps_per_node, best.state_bytes / 1024, best.materialized,
                best.components, best.lazy ? " (lazy)" : "", best.cell.loss_fault_pct,
                best.cell.failover_s, static_cast<unsigned long long>(best.report_checksum));
    results.push_back(best);
  }

  // The point of the cap: per-node control bandwidth must not grow with
  // the overlay. Flat within 2x across tiers or the bench fails.
  if (results.size() >= 2) {
    double lo = results.front().control_bps_per_node;
    double hi = lo;
    for (const TierResult& t : results) {
      lo = std::min(lo, t.control_bps_per_node);
      hi = std::max(hi, t.control_bps_per_node);
    }
    std::printf("control-bandwidth spread across tiers: %.2fx\n", lo > 0.0 ? hi / lo : 0.0);
    if (lo <= 0.0 || hi / lo > 2.0) {
      std::fprintf(stderr, "FAIL: per-node control bandwidth is not flat across tiers "
                           "(%.2f .. %.2f B/s/node)\n", lo, hi);
      return 1;
    }
  }

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open \"%s\" for writing: %s\n", out_path.c_str(),
                   std::strerror(errno));
      return 2;
    }
    emit_json(f, results, label, fanout, landmarks, anchored);
    std::fclose(f);
  } else {
    emit_json(stdout, results, label, fanout, landmarks, anchored);
  }

  if (compare_path) return compare_against(compare_path, results, max_regress);
  return 0;
}

}  // namespace
}  // namespace ronpath

int main(int argc, char** argv) { return ronpath::run(argc, argv); }
