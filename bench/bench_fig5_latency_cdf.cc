// Reproduces Figure 5: cumulative distribution of one-way latencies for
// higher-latency paths (those above 50 ms - about 30% of paths; the CDF
// therefore starts at ~0.70).
//
// Paper shape: lat loss < lat < direct rand < direct ~ loss at most
// quantiles; latency-optimized routing improves the tail most (the
// Cornell pathology period).

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "routing/schemes.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(48));

  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRon2003;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  const auto res = run_experiment(cfg);
  bench::print_run_banner("Figure 5 - CDF of one-way latencies (paths > 50 ms)", res, args);

  struct Series {
    const char* name;
    PairScheme scheme;
    bool first_copy;  // inferred single rows use first-copy latency
  };
  static constexpr Series kSeries[] = {
      {"lat loss", PairScheme::kLatLoss, false},
      {"lat", PairScheme::kLatLoss, true},
      {"direct rand", PairScheme::kDirectRand, false},
      {"direct", PairScheme::kDirectRand, true},
      {"loss", PairScheme::kLoss, true},
  };

  std::ofstream csv_os;
  std::unique_ptr<CsvWriter> csv;
  if (!args.csv_path.empty()) {
    bench::open_output_or_die(csv_os, args.csv_path);
    csv = std::make_unique<CsvWriter>(csv_os);
    csv->row({"method", "latency_ms", "cdf"});
  }

  std::vector<AsciiSeries> plot;
  std::printf("%-12s %8s %12s %12s %12s\n", "method", "pairs", "frac>50ms", "mean>50ms",
              "p95 (all)");
  for (const Series& s : kSeries) {
    const auto lats = per_pair_latency_ms(*res.agg, s.scheme, s.first_copy, 30);
    if (lats.empty()) continue;
    // The figure plots only paths above 50 ms; the CDF starts at the
    // fraction of paths below.
    std::size_t below = 0;
    while (below < lats.size() && lats[below] <= 50.0) ++below;
    const double base_f = static_cast<double>(below) / static_cast<double>(lats.size());
    AsciiSeries as;
    as.name = s.name;
    double sum_above = 0.0;
    for (std::size_t i = below; i < lats.size(); ++i) {
      const double f = static_cast<double>(i + 1) / static_cast<double>(lats.size());
      as.xs.push_back(lats[i]);
      as.ys.push_back(f);
      sum_above += lats[i];
      if (csv) csv->row({s.name, TextTable::num(lats[i], 2), TextTable::num(f, 5)});
    }
    const std::size_t n_above = lats.size() - below;
    std::printf("%-12s %8zu %12.2f %12.1f %12.1f\n", s.name, lats.size(), 1.0 - base_f,
                n_above ? sum_above / static_cast<double>(n_above) : 0.0,
                lats[static_cast<std::size_t>(0.95 * static_cast<double>(lats.size() - 1))]);
    plot.push_back(std::move(as));
  }
  std::printf("(paper: ~30%% of paths exceed 50 ms; lat-optimized methods dominate)\n\n");
  plot_ascii(std::cout, plot, 0.7, 1.0, 72, 18, "latency (ms)", "fraction of paths");
  return 0;
}
