// Shared helpers for the table/figure bench binaries.
//
// Every bench accepts:
//   --hours H / --days D   measured duration (default: bench-specific)
//   --seed S               RNG seed
//   --trials N             independent realizations (default 1)
//   --jobs J               worker threads for the trials (default 1)
//   --csv PATH             also dump machine-readable series
//   --quick                very short run (CI smoke)
// and prints the paper table/figure it reproduces alongside the paper's
// published values where applicable. With --trials > 1 the loss tables
// carry mean±95%-CI cells (core/trials.h); with the default --trials 1
// the output is unchanged from the historical single-run benches.

#ifndef RONPATH_BENCH_COMMON_H_
#define RONPATH_BENCH_COMMON_H_

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "core/trials.h"
#include "fault/fault.h"
#include "fault/scenarios.h"
#include "measure/report.h"
#include "util/table.h"

namespace ronpath::bench {

struct BenchArgs {
  Duration duration = Duration::hours(24);
  std::uint64_t seed = 42;
  int trials = 1;
  int jobs = 1;
  std::string csv_path;
  bool quick = false;
  // --fault-scenario: the argument as given (name or path) and the
  // resolved, validated fault-DSL text (empty = no injection).
  std::string fault_scenario;
  std::string fault_dsl;
  // --shards: 0 keeps the legacy single-stream underlay; any positive
  // value runs the sharded discipline (byte-identical output at every
  // positive value; see DESIGN.md §13). 0 itself is rejected on the
  // command line — "--shards 0" is almost certainly a typo for legacy
  // mode, which is the default when the flag is absent.
  int shards = 0;

  [[nodiscard]] bool multi_trial() const { return trials > 1; }

  // Strict integer parsing: the whole token must be a number. atoll-style
  // silent zeroes ("--hours x" running a 0-hour experiment) are rejected.
  static std::int64_t parse_int(const char* flag, const char* text, std::int64_t min_value,
                                std::int64_t max_value) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0') {
      std::fprintf(stderr, "%s: expected an integer, got \"%s\"\n", flag, text);
      std::exit(2);
    }
    if (errno == ERANGE || v < min_value || v > max_value) {
      std::fprintf(stderr, "%s: value %lld out of range [%lld, %lld]\n", flag, v,
                   static_cast<long long>(min_value), static_cast<long long>(max_value));
      std::exit(2);
    }
    return v;
  }

  // Strict floating-point parsing, same contract as parse_int: the whole
  // token must be a finite number inside [min_value, max_value]. Guards
  // the --max-regress CI gates, where strtod's silent 0.0 on garbage
  // would turn a typo into an always-failing (or disabled) threshold.
  static double parse_double(const char* flag, const char* text, double min_value,
                             double max_value) {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0') {
      std::fprintf(stderr, "%s: expected a number, got \"%s\"\n", flag, text);
      std::exit(2);
    }
    if (errno == ERANGE || !std::isfinite(v) || v < min_value || v > max_value) {
      std::fprintf(stderr, "%s: value %g out of range [%g, %g]\n", flag, v, min_value,
                   max_value);
      std::exit(2);
    }
    return v;
  }

  // Resolves a --fault-scenario argument: a canonical scenario name
  // (fault/scenarios.h), else a path to a fault-DSL file. Strict like
  // parse_int: unknown names, unreadable files and DSL errors exit 2.
  static std::string load_fault_dsl(const char* arg) {
    if (const Scenario* s = find_scenario(arg)) return std::string(s->dsl);
    std::ifstream in(arg);
    if (!in) {
      std::fprintf(stderr, "--fault-scenario: \"%s\" is neither a canonical scenario nor a "
                           "readable file; known scenarios:\n", arg);
      for (const Scenario& s : canonical_scenarios()) {
        std::fprintf(stderr, "  %s\n", std::string(s.name).c_str());
      }
      std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string parse_error;
    if (!FaultSchedule::parse(text.str(), &parse_error)) {
      std::fprintf(stderr, "--fault-scenario %s: %s\n", arg, parse_error.c_str());
      std::exit(2);
    }
    return text.str();
  }

  // Applies the parsed --fault-scenario (if any) to an experiment:
  // schedule injection plus the graceful-degradation control plane.
  void apply_fault(ExperimentConfig& cfg) const {
    cfg.shards = shards;
    if (fault_dsl.empty()) return;
    cfg.fault_dsl = fault_dsl;
    cfg.graceful_degradation = true;
  }

  static BenchArgs parse(int argc, char** argv, Duration default_duration) {
    BenchArgs a;
    a.duration = default_duration;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--hours") {
        a.duration = Duration::hours(parse_int("--hours", next(), 1, 24 * 365));
      } else if (arg == "--days") {
        a.duration = Duration::days(parse_int("--days", next(), 1, 365));
      } else if (arg == "--seed") {
        a.seed = static_cast<std::uint64_t>(
            parse_int("--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
      } else if (arg == "--trials") {
        a.trials = static_cast<int>(parse_int("--trials", next(), 1, 100000));
      } else if (arg == "--jobs") {
        a.jobs = static_cast<int>(parse_int("--jobs", next(), 1, 1024));
      } else if (arg == "--shards") {
        a.shards = static_cast<int>(parse_int("--shards", next(), 1, 256));
      } else if (arg == "--csv") {
        a.csv_path = next();
      } else if (arg == "--fault-scenario") {
        a.fault_scenario = next();
        a.fault_dsl = load_fault_dsl(a.fault_scenario.c_str());
      } else if (arg == "--quick") {
        a.quick = true;
        a.duration = Duration::hours(2);
      } else if (arg == "--help") {
        std::printf("usage: %s [--hours H|--days D] [--seed S] [--trials N] [--jobs J] "
                    "[--shards K] [--csv PATH] [--fault-scenario NAME|FILE] [--quick]\n",
                    argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return a;
  }
};

// Opens `path` for writing or exits 2 with a diagnostic. Benches must
// fail loudly when a --csv/--out path is unwritable instead of printing
// the table and silently dropping the file.
inline void open_output_or_die(std::ofstream& os, const std::string& path) {
  os.open(path);
  if (!os) {
    std::fprintf(stderr, "cannot open \"%s\" for writing: %s\n", path.c_str(),
                 std::strerror(errno));
    std::exit(2);
  }
}

// Renders a loss table (Table 5 / Table 7 shape).
inline void print_loss_table(const std::vector<LossTableRow>& rows, bool round_trip) {
  std::cout << render_loss_table(rows, round_trip);
}

inline void print_loss_table_ci(const std::vector<LossTableRowCi>& rows, bool round_trip) {
  std::cout << render_loss_table_ci(rows, round_trip);
}

inline void print_run_banner(const char* title, const ExperimentResult& res,
                             const BenchArgs& args) {
  std::printf("== %s ==\n", title);
  std::printf("measured %s (seed %llu): %lld probes, %lld overlay probes, %llu events\n",
              res.measured.to_string().c_str(), static_cast<unsigned long long>(args.seed),
              static_cast<long long>(res.probes), static_cast<long long>(res.overlay_probes),
              static_cast<unsigned long long>(res.events));
}

inline void print_trials_banner(const char* title, const TrialsResult& trials,
                                const BenchArgs& args) {
  std::printf("== %s ==\n", title);
  std::int64_t probes = 0;
  std::uint64_t events = 0;
  for (const auto& t : trials.trials) {
    probes += t.result.probes;
    events += t.result.events;
  }
  std::printf("%zu trials x %s (base seed %llu, %d jobs): %lld probes, %llu events | "
              "wall %.2fs, serial %.2fs, speedup %.2fx\n",
              trials.trials.size(),
              trials.trials.empty() ? "?" : trials.trials[0].result.measured.to_string().c_str(),
              static_cast<unsigned long long>(args.seed), args.jobs,
              static_cast<long long>(probes), static_cast<unsigned long long>(events),
              trials.wall_seconds, trials.serial_seconds, trials.speedup());
}

// CSV rows for a cross-trial table, plus one "meta" row recording the
// trial count, job count, and observed wall-clock speedup so bench
// trajectories can track scaling over time.
inline void csv_loss_table_ci(CsvWriter& csv, const char* dataset,
                              const std::vector<LossTableRowCi>& rows) {
  for (const auto& r : rows) {
    csv.row({dataset, r.name, TextTable::num(r.lp1.mean), TextTable::num(r.lp1.ci95_half),
             r.lp2 ? TextTable::num(r.lp2->mean) : "", r.lp2 ? TextTable::num(r.lp2->ci95_half) : "",
             TextTable::num(r.totlp.mean), TextTable::num(r.totlp.ci95_half),
             r.clp ? TextTable::num(r.clp->mean) : "", r.clp ? TextTable::num(r.clp->ci95_half) : "",
             TextTable::num(r.lat_ms.mean), TextTable::num(r.lat_ms.ci95_half),
             TextTable::num(r.samples_total)});
  }
}

inline void csv_trials_meta(CsvWriter& csv, const BenchArgs& args, const TrialsResult& trials) {
  csv.row({"meta", "trials", TextTable::num(static_cast<std::int64_t>(trials.trials.size()))});
  csv.row({"meta", "jobs", TextTable::num(static_cast<std::int64_t>(args.jobs))});
  csv.row({"meta", "wall_seconds", TextTable::num(trials.wall_seconds, 3)});
  csv.row({"meta", "serial_seconds", TextTable::num(trials.serial_seconds, 3)});
  csv.row({"meta", "speedup", TextTable::num(trials.speedup(), 3)});
}

}  // namespace ronpath::bench

#endif  // RONPATH_BENCH_COMMON_H_
