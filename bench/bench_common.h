// Shared helpers for the table/figure bench binaries.
//
// Every bench accepts:
//   --hours H / --days D   measured duration (default: bench-specific)
//   --seed S               RNG seed
//   --csv PATH             also dump machine-readable series
//   --quick                very short run (CI smoke)
// and prints the paper table/figure it reproduces alongside the paper's
// published values where applicable.

#ifndef RONPATH_BENCH_COMMON_H_
#define RONPATH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "core/experiment.h"
#include "measure/report.h"
#include "util/table.h"

namespace ronpath::bench {

struct BenchArgs {
  Duration duration = Duration::hours(24);
  std::uint64_t seed = 42;
  std::string csv_path;
  bool quick = false;

  static BenchArgs parse(int argc, char** argv, Duration default_duration) {
    BenchArgs a;
    a.duration = default_duration;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", arg.c_str());
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--hours") {
        a.duration = Duration::hours(std::atoll(next()));
      } else if (arg == "--days") {
        a.duration = Duration::days(std::atoll(next()));
      } else if (arg == "--seed") {
        a.seed = static_cast<std::uint64_t>(std::atoll(next()));
      } else if (arg == "--csv") {
        a.csv_path = next();
      } else if (arg == "--quick") {
        a.quick = true;
        a.duration = Duration::hours(2);
      } else if (arg == "--help") {
        std::printf("usage: %s [--hours H|--days D] [--seed S] [--csv PATH] [--quick]\n",
                    argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return a;
  }
};

// Renders a loss table (Table 5 / Table 7 shape).
inline void print_loss_table(const std::vector<LossTableRow>& rows, bool round_trip) {
  TextTable t({"Type", "1lp", "2lp", "totlp", "clp", round_trip ? "RTT" : "lat"});
  t.set_align(0, TextTable::Align::kLeft);
  for (const auto& r : rows) {
    t.add_row({r.name, TextTable::num(r.lp1), TextTable::opt_num(r.lp2.has_value(),
                                                                 r.lp2.value_or(0)),
               TextTable::num(r.totlp), TextTable::opt_num(r.clp.has_value(), r.clp.value_or(0)),
               TextTable::num(r.lat_ms)});
  }
  t.print(std::cout);
}

inline void print_run_banner(const char* title, const ExperimentResult& res,
                             const BenchArgs& args) {
  std::printf("== %s ==\n", title);
  std::printf("measured %s (seed %llu): %lld probes, %lld overlay probes, %llu events\n",
              res.measured.to_string().c_str(), static_cast<unsigned long long>(args.seed),
              static_cast<long long>(res.probes), static_cast<long long>(res.overlay_probes),
              static_cast<unsigned long long>(res.events));
}

}  // namespace ronpath::bench

#endif  // RONPATH_BENCH_COMMON_H_
