// Micro-benchmarks (google-benchmark) for the hot paths: event queue,
// wire encode/decode, GF(256) and Reed-Solomon coding, loss-process
// sampling, network transmission, estimator updates and router selection.

#include <benchmark/benchmark.h>

#include "core/testbed.h"
#include "event/scheduler.h"
#include "fec/packet_fec.h"
#include "fec/reed_solomon.h"
#include "net/network.h"
#include "overlay/estimator.h"
#include "overlay/router.h"
#include "util/rng.h"
#include "wire/packet.h"

namespace ronpath {
namespace {

void BM_SchedulerScheduleDispatch(benchmark::State& state) {
  Scheduler sched;
  std::int64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sched.schedule_after(Duration::micros(i), [&sink] { ++sink; });
    }
    sched.run_all();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SchedulerScheduleDispatch);

void BM_WireEncode(benchmark::State& state) {
  ProbePacket p;
  p.probe_id = 0x1234;
  p.src = 3;
  p.dst = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireEncode);

void BM_WireDecode(benchmark::State& state) {
  ProbePacket p;
  p.probe_id = 0x1234;
  const auto wire = encode(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireDecode);

void BM_Rng(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rng);

void BM_RsEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  const ReedSolomon rs(k, m);
  Rng rng(2);
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(1024));
  for (auto& s : data) {
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(k * 1024));
}
BENCHMARK(BM_RsEncode)->Args({5, 1})->Args({8, 4})->Args({20, 10});

void BM_RsReconstruct(benchmark::State& state) {
  const std::size_t k = 8;
  const std::size_t m = 4;
  const ReedSolomon rs(k, m);
  Rng rng(3);
  std::vector<std::vector<std::uint8_t>> data(k, std::vector<std::uint8_t>(1024));
  for (auto& s : data) {
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  auto parity = rs.encode(data);
  std::vector<std::vector<std::uint8_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  shards[0].clear();
  shards[3].clear();
  shards[5].clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.reconstruct(shards));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(k * 1024));
}
BENCHMARK(BM_RsReconstruct);

void BM_NetworkTransmit(benchmark::State& state) {
  Network net(testbed_2003(), NetConfig::profile_2003(), Duration::days(2), Rng(4));
  Rng rng(5);
  std::int64_t i = 0;
  for (auto _ : state) {
    const TimePoint t = TimePoint::epoch() + Duration::micros(i++ * 500);
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    benchmark::DoNotOptimize(net.transmit(PathSpec{a, b, kDirectVia}, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkTransmit);

void BM_NetworkTransmitIndirect(benchmark::State& state) {
  Network net(testbed_2003(), NetConfig::profile_2003(), Duration::days(2), Rng(6));
  Rng rng(7);
  std::int64_t i = 0;
  for (auto _ : state) {
    const TimePoint t = TimePoint::epoch() + Duration::micros(i++ * 500);
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    NodeId v = a;
    while (v == a || v == b) v = static_cast<NodeId>(rng.next_below(30));
    benchmark::DoNotOptimize(net.transmit(PathSpec{a, b, v}, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkTransmitIndirect);

void BM_EstimatorUpdate(benchmark::State& state) {
  LinkEstimator est(100, 0.1);
  Rng rng(8);
  std::int64_t i = 0;
  for (auto _ : state) {
    est.record_probe(rng.bernoulli(0.01), Duration::millis(50),
                     TimePoint::epoch() + Duration::seconds(i++));
    benchmark::DoNotOptimize(est.loss());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EstimatorUpdate);

void BM_RouterBestLossPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  LinkStateTable table(n);
  Rng rng(9);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a == b) continue;
      LinkMetrics m;
      m.loss = rng.next_double() * 0.02;
      m.latency = Duration::millis(static_cast<std::int64_t>(rng.uniform(10, 120)));
      m.has_latency = true;
      m.samples = 100;
      table.publish(a, b, m);
    }
  }
  Router router(0, table, RouterConfig{});
  NodeId dst = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.best_loss_path(dst));
    dst = static_cast<NodeId>(1 + (dst % (n - 1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterBestLossPath)->Arg(10)->Arg(30)->Arg(60);

void BM_PacketFecPipeline(benchmark::State& state) {
  FecEncoder enc(5, 1);
  FecDecoder dec(5, 1);
  Rng rng(10);
  std::vector<std::uint8_t> payload(512, 0xAB);
  for (auto _ : state) {
    for (const auto& shard : enc.push(payload)) {
      if (rng.bernoulli(0.05)) continue;
      benchmark::DoNotOptimize(dec.push(shard));
    }
  }
  state.SetBytesProcessed(state.iterations() * 512);
}
BENCHMARK(BM_PacketFecPipeline);

}  // namespace
}  // namespace ronpath

BENCHMARK_MAIN();
