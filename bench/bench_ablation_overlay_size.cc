// Ablation: overlay size (DESIGN.md choice #5). Sweeps the number of
// testbed nodes and reports reactive routing's benefit against the
// O(N^2) probing overhead - the scaling trade-off of Section 3.1
// ("larger networks have more paths to explore, but create scaling
// problems").

#include <iostream>

#include "bench/bench_common.h"
#include "model/overhead.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(10));

  std::printf("== Ablation: overlay size vs reactive benefit and overhead ==\n");
  TextTable t({"nodes", "paths", "direct %", "loss %", "improvement", "mesh totlp %",
               "probe KB/s total"});
  for (std::size_t n : {5u, 10u, 18u, 30u}) {
    ExperimentConfig cfg;
    cfg.dataset = Dataset::kRon2003;
    cfg.duration = args.duration;
    cfg.seed = args.seed;
    cfg.node_count = n;
    const auto res = run_experiment(cfg);

    const double direct =
        res.agg->scheme_stats(PairScheme::kDirectRand).pair.first_loss_percent();
    const double loss = res.agg->scheme_stats(PairScheme::kLoss).pair.total_loss_percent();
    const double mesh = res.agg->scheme_stats(PairScheme::kDirectRand).pair.total_loss_percent();

    ProbeOverheadParams op;
    op.nodes = n;
    t.add_row({TextTable::num(static_cast<std::int64_t>(n)),
               TextTable::num(static_cast<std::int64_t>(n * (n - 1))),
               TextTable::num(direct), TextTable::num(loss),
               TextTable::num(direct > 0 ? 100.0 * (direct - loss) / direct : 0.0, 1) + "%",
               TextTable::num(mesh), TextTable::num(probing_bytes_per_sec(op) / 1e3, 1)});
  }
  t.print(std::cout);
  std::printf("(expected: more nodes -> more alternate paths -> larger reactive and mesh\n"
              " gains, bought with quadratically growing probe traffic)\n");
  return 0;
}
