// Ablation: overlay size (DESIGN.md choice #5). Sweeps the number of
// testbed nodes and reports reactive routing's benefit against the
// O(N^2) probing overhead - the scaling trade-off of Section 3.1
// ("larger networks have more paths to explore, but create scaling
// problems").
//
// Scale extensions (DESIGN.md §14): --nodes N pins the sweep to a
// single size (a synthetic hierarchical topology when N exceeds the
// 2003 testbed); --fanout K / --landmarks L run the bandwidth-capped
// overlay instead of the full mesh. All three parse strictly (garbage
// or zero exits 2, the BenchArgs convention).

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/testbed.h"
#include "model/overhead.h"

using namespace ronpath;

int main(int argc, char** argv) {
  std::vector<std::size_t> sweep = {5, 10, 18, 30};
  std::size_t fanout = 0;
  std::size_t landmarks = 8;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") {
      sweep = {static_cast<std::size_t>(
          bench::BenchArgs::parse_int("--nodes", next(), 5, 65'000))};
    } else if (arg == "--fanout") {
      fanout = static_cast<std::size_t>(
          bench::BenchArgs::parse_int("--fanout", next(), 1, 65'534));
    } else if (arg == "--landmarks") {
      landmarks = static_cast<std::size_t>(
          bench::BenchArgs::parse_int("--landmarks", next(), 0, 65'534));
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto args =
      bench::BenchArgs::parse(static_cast<int>(rest.size()), rest.data(), Duration::hours(10));
  const std::size_t testbed_max = testbed_2003().size();

  std::printf("== Ablation: overlay size vs reactive benefit and overhead ==\n");
  if (fanout > 0) std::printf("(capped overlay: fanout %zu, %zu landmarks)\n", fanout, landmarks);
  TextTable t({"nodes", "paths", "direct %", "loss %", "improvement", "mesh totlp %",
               "probe KB/s total"});
  for (std::size_t n : sweep) {
    ExperimentConfig cfg;
    cfg.dataset = Dataset::kRon2003;
    cfg.duration = args.duration;
    cfg.seed = args.seed;
    if (n <= testbed_max) {
      cfg.node_count = n;
    } else {
      cfg.synth_nodes = n;  // beyond the testbed: synthetic hierarchy
    }
    cfg.overlay_fanout = fanout;
    cfg.overlay_landmarks = landmarks;
    const auto res = run_experiment(cfg);

    const double direct =
        res.agg->scheme_stats(PairScheme::kDirectRand).pair.first_loss_percent();
    const double loss = res.agg->scheme_stats(PairScheme::kLoss).pair.total_loss_percent();
    const double mesh = res.agg->scheme_stats(PairScheme::kDirectRand).pair.total_loss_percent();

    ProbeOverheadParams op;
    op.nodes = n;
    t.add_row({TextTable::num(static_cast<std::int64_t>(n)),
               TextTable::num(static_cast<std::int64_t>(n * (n - 1))),
               TextTable::num(direct), TextTable::num(loss),
               TextTable::num(direct > 0 ? 100.0 * (direct - loss) / direct : 0.0, 1) + "%",
               TextTable::num(mesh), TextTable::num(probing_bytes_per_sec(op) / 1e3, 1)});
  }
  t.print(std::cout);
  std::printf("(expected: more nodes -> more alternate paths -> larger reactive and mesh\n"
              " gains, bought with quadratically growing probe traffic)\n");
  return 0;
}
