// The entire Section 4 evaluation from a single shared run.
//
// The per-table/figure benches each run their own simulation, which is
// convenient for iteration but wasteful at full scale. This binary runs
// one RON2003 experiment (use --days 14 for the paper's span) and prints
// every table and figure the paper derives from that dataset: Table 5,
// Table 6, Figures 2-5, and the Section 4.2 base statistics; Figure 6's
// design space is instantiated from the same run's measurements.

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "model/bounds.h"
#include "model/design_space.h"
#include "routing/schemes.h"

using namespace ronpath;

namespace {

void print_table6(const Aggregator& agg) {
  static constexpr PairScheme kCols[] = {
      PairScheme::kDirectDirect, PairScheme::kDd10ms,     PairScheme::kDd20ms,
      PairScheme::kLoss,         PairScheme::kDirectRand, PairScheme::kLatLoss,
  };
  const auto table = make_high_loss_table(agg, kCols);
  TextTable t({"Loss % >", "direct direct", "dd 10ms", "dd 20 ms", "loss", "direct rand",
               "lat loss"});
  for (std::size_t th = 0; th < kHighLossThresholds; ++th) {
    std::vector<std::string> row = {TextTable::num(static_cast<std::int64_t>(th * 10))};
    for (std::size_t c = 0; c < table.schemes.size(); ++c) {
      row.push_back(TextTable::num(table.counts[th][c]));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

void print_figure_quantiles(const Aggregator& agg) {
  std::printf("\n== Figure 2 - per-path long-term direct loss (quantiles, %%) ==\n");
  const auto losses = per_path_loss_percent(agg, PairScheme::kDirectRand, 30);
  if (!losses.empty()) {
    auto q = [&](double f) {
      return losses[static_cast<std::size_t>(f * static_cast<double>(losses.size() - 1))];
    };
    std::printf("paths: %zu   p50 %.3f   p80 %.3f   p95 %.3f   max %.2f   "
                "(paper: 80%% of paths < 1%%)\n",
                losses.size(), q(0.5), q(0.8), q(0.95), losses.back());
  }

  std::printf("\n== Figure 3 - 20-minute loss-rate CDF (zero-loss fraction) ==\n");
  for (PairScheme s : ron2003_probe_set()) {
    const auto cdf = window_loss_cdf(agg, s);
    double f0 = 0.0;
    for (const auto& pt : cdf) {
      if (pt.x <= 0.006) f0 = pt.f;
    }
    std::printf("  %-14s F(0) = %.4f\n", std::string(to_string(s)).c_str(), f0);
  }
  std::printf("  (paper: over 95%% of samples at 0%% loss)\n");

  std::printf("\n== Figure 4 - per-path CLP medians ==\n");
  for (PairScheme s : {PairScheme::kDirectDirect, PairScheme::kDirectRand,
                       PairScheme::kDd10ms, PairScheme::kDd20ms}) {
    const auto clps = per_path_clp_percent(agg, s, 3);
    const double median = clps.empty() ? 0.0 : clps[clps.size() / 2];
    std::printf("  %-14s paths %4zu   median CLP %5.1f%%\n",
                std::string(to_string(s)).c_str(), clps.size(), median);
  }
  std::printf("  (paper: back-to-back median 100%%; direct rand shifted left)\n");

  std::printf("\n== Figure 5 - per-pair latency means (ms) ==\n");
  struct Ser {
    const char* name;
    PairScheme scheme;
    bool first;
  };
  static constexpr Ser kSer[] = {{"lat loss", PairScheme::kLatLoss, false},
                                 {"lat", PairScheme::kLatLoss, true},
                                 {"direct rand", PairScheme::kDirectRand, false},
                                 {"direct", PairScheme::kDirectRand, true},
                                 {"loss", PairScheme::kLoss, true}};
  for (const auto& s : kSer) {
    const auto lats = per_pair_latency_ms(agg, s.scheme, s.first, 30);
    if (lats.empty()) continue;
    double sum = 0.0;
    for (double v : lats) sum += v;
    std::printf("  %-12s mean %6.2f   p90 %6.1f   max %7.1f\n", s.name,
                sum / static_cast<double>(lats.size()),
                lats[static_cast<std::size_t>(0.9 * static_cast<double>(lats.size() - 1))],
                lats.back());
  }
  std::printf("  (paper ordering: lat loss < lat < direct rand < direct ~ loss)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(24));

  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRon2003;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  args.apply_fault(cfg);
  if (!args.csv_path.empty()) cfg.record_path = args.csv_path + ".rond";

  if (args.multi_trial()) {
    // Multi-trial: Table 5 and Section 4.2 get cross-trial error bars;
    // Table 6 and the figures are computed from all trials' records
    // pooled into one merged aggregator (N independent realizations of
    // the same 14-day process, exactly N times the windows).
    TrialsResult trials = run_experiment_trials(cfg, args.trials, args.jobs);
    const auto ct = make_cross_trial(trials, ron2003_report_rows(), PairScheme::kDirectRand);
    bench::print_trials_banner("Full evaluation (multi-trial)", trials, args);

    std::printf("\n== Table 5 (mean ± 95%% CI over %d trials) ==\n", args.trials);
    bench::print_loss_table_ci(ct.rows, /*round_trip=*/false);

    const auto& base = ct.base;
    std::printf("\n== Section 4.2 ==\noverall direct loss %s%% | worst hour %s%% | "
                "20-min windows <0.1%%: %s%%, <0.2%%: %s%%\n",
                TextTable::num_ci(base.loss_percent.mean, base.loss_percent.ci95_half).c_str(),
                TextTable::num_ci(base.worst_hour_loss_percent.mean,
                                  base.worst_hour_loss_percent.ci95_half, 1).c_str(),
                TextTable::num_ci(100.0 * base.frac_windows_below_01pct.mean,
                                  100.0 * base.frac_windows_below_01pct.ci95_half, 0).c_str(),
                TextTable::num_ci(100.0 * base.frac_windows_below_02pct.mean,
                                  100.0 * base.frac_windows_below_02pct.ci95_half, 0).c_str());

    Aggregator& merged = *trials.trials[0].result.agg;
    for (std::size_t i = 1; i < trials.trials.size(); ++i) {
      merged.merge(*trials.trials[i].result.agg);
    }

    std::printf("\n== Table 6 - hour-long high-loss periods (pooled over %d trials) ==\n",
                args.trials);
    print_table6(merged);

    print_figure_quantiles(merged);

    const auto& dr = merged.scheme_stats(PairScheme::kDirectRand);
    DesignSpaceParams params;
    params.independence_limit =
        1.0 - dr.pair.conditional_loss_percent().value_or(50.0) / 100.0;
    const DesignSpace ds(params);
    int redundant_cheaper = 0;
    const auto grid = ds.grid(21, 21);
    for (const auto& pt : grid) {
      if (pt.region == SchemeRegion::kEither && !pt.reactive_cheaper) ++redundant_cheaper;
    }
    std::printf("\n== Figure 6 ==\nindependence limit %.2f (= 1 - clp); redundant-cheaper cells "
                "%d/441 of the grid\n",
                params.independence_limit, redundant_cheaper);

    if (!args.csv_path.empty()) {
      std::ofstream os;
      bench::open_output_or_die(os, args.csv_path);
      CsvWriter csv(os);
      csv.row({"dataset", "type", "1lp", "1lp_ci", "2lp", "2lp_ci", "totlp", "totlp_ci", "clp",
               "clp_ci", "lat_ms", "lat_ms_ci", "samples"});
      bench::csv_loss_table_ci(csv, "2003", ct.rows);
      bench::csv_trials_meta(csv, args, trials);
      std::printf("\nwrote %s (+ per-trial records to %s.rond.trial<i>)\n",
                  args.csv_path.c_str(), args.csv_path.c_str());
    }
    return 0;
  }

  const auto res = run_experiment(cfg);
  const Aggregator& agg = *res.agg;

  bench::print_run_banner("Full evaluation (single shared run)", res, args);

  std::printf("\n== Table 5 ==\n");
  const auto rows = make_loss_table(agg, ron2003_report_rows());
  bench::print_loss_table(rows, /*round_trip=*/false);

  const auto base = make_base_stats(agg, PairScheme::kDirectRand);
  std::printf("\n== Section 4.2 ==\noverall direct loss %.2f%% | worst hour %.1f%% | "
              "20-min windows <0.1%%: %.0f%%, <0.2%%: %.0f%%\n",
              agg.scheme_stats(PairScheme::kDirectRand).pair.first_loss_percent(),
              base.worst_hour_loss_percent, 100.0 * base.frac_windows_below_01pct,
              100.0 * base.frac_windows_below_02pct);

  std::printf("\n== Table 6 - hour-long high-loss periods ==\n");
  print_table6(agg);

  print_figure_quantiles(agg);

  // Figure 6 from this run's own measurements.
  const auto& dr = agg.scheme_stats(PairScheme::kDirectRand);
  DesignSpaceParams params;
  params.independence_limit =
      1.0 - dr.pair.conditional_loss_percent().value_or(50.0) / 100.0;
  const DesignSpace ds(params);
  int redundant_cheaper = 0;
  const auto grid = ds.grid(21, 21);
  for (const auto& pt : grid) {
    if (pt.region == SchemeRegion::kEither && !pt.reactive_cheaper) ++redundant_cheaper;
  }
  std::printf("\n== Figure 6 ==\nindependence limit %.2f (= 1 - clp); redundant-cheaper cells "
              "%d/441 of the grid\n",
              params.independence_limit, redundant_cheaper);

  if (!args.csv_path.empty()) {
    std::ofstream os;
    bench::open_output_or_die(os, args.csv_path);
    CsvWriter csv(os);
    csv.row({"type", "1lp", "2lp", "totlp", "clp", "lat_ms"});
    for (const auto& r : rows) {
      csv.row({r.name, TextTable::num(r.lp1), r.lp2 ? TextTable::num(*r.lp2) : "",
               TextTable::num(r.totlp), r.clp ? TextTable::num(*r.clp) : "",
               TextTable::num(r.lat_ms)});
    }
    std::printf("\nwrote %s (+ raw records to %s.rond)\n", args.csv_path.c_str(),
                args.csv_path.c_str());
  }
  return 0;
}
