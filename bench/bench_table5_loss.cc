// Reproduces Table 5: one-way loss percentages and latency per routing
// method, for the 2003 (RON2003) and 2002 (RONnarrow + RONwide direct
// direct row) datasets.
//
// Paper values (2003): direct* 0.42/54.13, lat* 0.43/48.01, loss
// 0.33/55.62, direct rand 0.41/2.66/0.26/62.47/51.71, lat loss
// 0.43/1.95/0.23/55.08/46.77, direct direct 0.42/0.43/0.30/72.15/54.24,
// dd 10 ms 0.41/0.42/0.27/66.08/54.28, dd 20 ms 0.41/0.41/0.27/65.28/54.39.
//
// With --trials N --jobs J the whole table is recomputed over N seed-split
// realizations and every cell becomes mean±95%-CI; the paper's published
// numbers remain single-realization point estimates.

#include <fstream>

#include "bench/bench_common.h"
#include "routing/schemes.h"

using namespace ronpath;

namespace {

void dump_csv(const std::string& path, const std::vector<LossTableRow>& rows2003,
              const std::vector<LossTableRow>& rows2002) {
  std::ofstream os;
  bench::open_output_or_die(os, path);
  CsvWriter csv(os);
  csv.row({"dataset", "type", "1lp", "2lp", "totlp", "clp", "lat_ms", "samples"});
  auto emit = [&](const char* ds, const std::vector<LossTableRow>& rows) {
    for (const auto& r : rows) {
      csv.row({ds, r.name, TextTable::num(r.lp1),
               r.lp2 ? TextTable::num(*r.lp2) : "",
               TextTable::num(r.totlp), r.clp ? TextTable::num(*r.clp) : "",
               TextTable::num(r.lat_ms), TextTable::num(r.samples)});
    }
  };
  emit("2003", rows2003);
  emit("2002", rows2002);
}

void dump_csv_ci(const std::string& path, const bench::BenchArgs& args,
                 const TrialsResult& trials2003, const CrossTrial& ct2003,
                 const CrossTrial& ct2002) {
  std::ofstream os;
  bench::open_output_or_die(os, path);
  CsvWriter csv(os);
  csv.row({"dataset", "type", "1lp", "1lp_ci", "2lp", "2lp_ci", "totlp", "totlp_ci", "clp",
           "clp_ci", "lat_ms", "lat_ms_ci", "samples"});
  bench::csv_loss_table_ci(csv, "2003", ct2003.rows);
  bench::csv_loss_table_ci(csv, "2002", ct2002.rows);
  bench::csv_trials_meta(csv, args, trials2003);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(24));

  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRon2003;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  args.apply_fault(cfg);

  ExperimentConfig cfg2002 = cfg;
  cfg2002.dataset = Dataset::kRonNarrow;
  cfg2002.duration = std::min(args.duration, Duration::hours(96));

  static constexpr PairScheme k2002Rows[] = {
      PairScheme::kDirect, PairScheme::kLat, PairScheme::kLoss,
      PairScheme::kDirectRand, PairScheme::kLatLoss,
  };

  if (args.multi_trial()) {
    // --- multi-trial path: every cell becomes mean±95% CI -----------------
    const TrialsResult trials2003 = run_experiment_trials(cfg, args.trials, args.jobs);
    const auto ct2003 =
        make_cross_trial(trials2003, ron2003_report_rows(), PairScheme::kDirectRand);
    bench::print_trials_banner("Table 5 - one-way loss percentages (2003 profile)", trials2003,
                               args);
    bench::print_loss_table_ci(ct2003.rows, /*round_trip=*/false);

    const auto& base = ct2003.base;
    std::printf("\nSection 4.2 check: worst-hour loss %s%% (paper: >13%%), "
                "20-min windows <0.1%% loss: %s%% of time (paper: 30%%), "
                "<0.2%%: %s%% (paper: 68%%)\n",
                TextTable::num_ci(base.worst_hour_loss_percent.mean,
                                  base.worst_hour_loss_percent.ci95_half, 1).c_str(),
                TextTable::num_ci(100.0 * base.frac_windows_below_01pct.mean,
                                  100.0 * base.frac_windows_below_01pct.ci95_half, 0).c_str(),
                TextTable::num_ci(100.0 * base.frac_windows_below_02pct.mean,
                                  100.0 * base.frac_windows_below_02pct.ci95_half, 0).c_str());

    const TrialsResult trials2002 = run_experiment_trials(cfg2002, args.trials, args.jobs);
    const auto ct2002 = make_cross_trial(trials2002, k2002Rows, PairScheme::kDirectRand);
    std::printf("\n");
    bench::print_trials_banner("Table 5 - 2002 rows (RONnarrow profile)", trials2002, args);
    bench::print_loss_table_ci(ct2002.rows, /*round_trip=*/false);
    std::printf("(paper 2002: direct* 0.74, lat* 0.75, loss 0.67, "
                "direct rand totlp 0.38 clp 51.17, lat loss totlp 0.37 clp 49.82)\n");

    if (!args.csv_path.empty()) {
      dump_csv_ci(args.csv_path, args, trials2003, ct2003, ct2002);
    }
    return 0;
  }

  // --- single-trial path: historical output, unchanged ---------------------
  const ExperimentResult res2003 = run_experiment(cfg);
  bench::print_run_banner("Table 5 - one-way loss percentages (2003 profile)", res2003, args);
  const auto rows2003 = make_loss_table(*res2003.agg, ron2003_report_rows());
  bench::print_loss_table(rows2003, /*round_trip=*/false);

  // Loss decomposition of direct packets (first copies of direct rand),
  // the paper's congestion-vs-failure discussion made explicit.
  {
    const auto& st = res2003.agg->scheme_stats(PairScheme::kDirectRand);
    std::int64_t total = st.first_loss_host;
    for (auto c : st.first_loss_by_cause) total += c;
    if (total > 0) {
      std::printf("\ndirect-packet loss causes: burst %.0f%%, outage %.0f%%, random %.0f%%, "
                  "host-failure leak %.0f%%\n",
                  100.0 * static_cast<double>(st.first_loss_by_cause[2]) / static_cast<double>(total),
                  100.0 * static_cast<double>(st.first_loss_by_cause[3]) / static_cast<double>(total),
                  100.0 * static_cast<double>(st.first_loss_by_cause[1]) / static_cast<double>(total),
                  100.0 * static_cast<double>(st.first_loss_host) / static_cast<double>(total));
    }
  }

  const auto base = make_base_stats(*res2003.agg, PairScheme::kDirectRand);
  std::printf("\nSection 4.2 check: worst-hour loss %.1f%% (paper: >13%%), "
              "20-min windows <0.1%% loss: %.0f%% of time (paper: 30%%), "
              "<0.2%%: %.0f%% (paper: 68%%)\n",
              base.worst_hour_loss_percent, 100.0 * base.frac_windows_below_01pct,
              100.0 * base.frac_windows_below_02pct);

  // --- 2002 dataset (RONnarrow one-way rows) ------------------------------
  const ExperimentResult res2002 = run_experiment(cfg2002);
  std::printf("\n");
  bench::print_run_banner("Table 5 - 2002 rows (RONnarrow profile)", res2002, args);
  const auto rows2002 = make_loss_table(*res2002.agg, k2002Rows);
  bench::print_loss_table(rows2002, /*round_trip=*/false);
  std::printf("(paper 2002: direct* 0.74, lat* 0.75, loss 0.67, "
              "direct rand totlp 0.38 clp 51.17, lat loss totlp 0.37 clp 49.82)\n");

  if (!args.csv_path.empty()) dump_csv(args.csv_path, rows2003, rows2002);
  return 0;
}
