// Ablation: probing rate vs reactive-routing benefit (the Section 5
// capacity-limit trade-off). Sweeps the RON probe interval and reports
// the loss of the probe-based tactic against the direct baseline,
// alongside the probing bandwidth each rate costs.

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "model/overhead.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(12));

  std::printf("== Ablation: probe interval vs reactive benefit ==\n");
  TextTable t({"probe interval", "direct %", "loss %", "improvement", "probe KB/s/node"});
  std::ofstream csv_os;
  std::unique_ptr<CsvWriter> csv;
  if (!args.csv_path.empty()) {
    bench::open_output_or_die(csv_os, args.csv_path);
    csv = std::make_unique<CsvWriter>(csv_os);
    csv->row({"interval_s", "direct_pct", "loss_pct", "improvement", "kbps_per_node"});
  }

  for (int interval_s : {5, 15, 30, 60, 120}) {
    ExperimentConfig cfg;
    cfg.dataset = Dataset::kRon2003;
    cfg.duration = args.duration;
    cfg.seed = args.seed;
    cfg.probe_interval = Duration::seconds(interval_s);
    const auto res = run_experiment(cfg);

    const double direct =
        res.agg->scheme_stats(PairScheme::kDirectRand).pair.first_loss_percent();
    const double loss = res.agg->scheme_stats(PairScheme::kLoss).pair.total_loss_percent();
    const double improvement = direct > 0 ? (direct - loss) / direct : 0.0;

    ProbeOverheadParams op;
    op.nodes = res.topology.size();
    op.probe_interval = Duration::seconds(interval_s);
    const double kbps = probing_bytes_per_sec_per_node(op) / 1e3;

    t.add_row({Duration::seconds(interval_s).to_string(), TextTable::num(direct),
               TextTable::num(loss), TextTable::num(100.0 * improvement, 1) + "%",
               TextTable::num(kbps, 2)});
    if (csv) {
      csv->row({TextTable::num(static_cast<std::int64_t>(interval_s)),
                TextTable::num(direct, 4), TextTable::num(loss, 4),
                TextTable::num(improvement, 4), TextTable::num(kbps, 3)});
    }
  }
  t.print(std::cout);
  std::printf("(expected shape: faster probing buys more of the avoidable loss at\n"
              " linearly growing overhead; returns flatten once the detection lag is\n"
              " below the episode duration)\n");
  return 0;
}
