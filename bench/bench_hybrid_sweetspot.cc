// Future-work exploration (paper Sections 5.3 / 6): sweet spots between
// reactive and redundant routing. Runs the hybrid sender policies over
// the calibrated underlay and charts delivered-loss vs bandwidth
// overhead, alongside the paper's pure baselines.
//
// The interesting output is the frontier: adaptive duplication should
// buy most of always-duplicate's loss reduction at a fraction of the 2x
// overhead, because duplication only pays off during the elevated-loss
// periods that the routing state can already see.

#include <fstream>
#include <iostream>
#include <limits>

#include "bench/bench_common.h"
#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "routing/hybrid.h"
#include "util/stats.h"
#include "util/table.h"

using namespace ronpath;

namespace {

struct Row {
  std::string name;
  double loss_pct = 0.0;
  double overhead = 1.0;
  double dup_pct = 0.0;
};

Row run_policy(const char* name, HybridConfig cfg, int hours, std::uint64_t seed) {
  const Topology topo = testbed_2003();
  Rng rng(seed);
  Scheduler sched;
  Network net(topo, NetConfig::profile_2003(), Duration::hours(hours + 2), rng.fork("net"));
  OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
  overlay.start();
  sched.run_until(TimePoint::epoch() + Duration::minutes(40));  // warm-up

  HybridSender sender(overlay, cfg, rng.fork("sender"));
  Rng pick(seed + 1);
  LossCounter loss;
  const TimePoint end = TimePoint::epoch() + Duration::minutes(40) + Duration::hours(hours);
  Duration step = Duration::millis(40);  // 25 packets/s across the mesh
  for (TimePoint t = sched.now(); t < end; t += step) {
    sched.run_until(t);
    const NodeId src = static_cast<NodeId>(pick.next_below(topo.size()));
    NodeId dst = src;
    while (dst == src) dst = static_cast<NodeId>(pick.next_below(topo.size()));
    const auto out = sender.send(src, dst, t);
    loss.record(!out.delivered());
  }
  Row row;
  row.name = name;
  row.loss_pct = loss.loss_percent();
  row.overhead = sender.overhead_factor();
  row.dup_pct = 100.0 * static_cast<double>(sender.duplicated()) /
                static_cast<double>(sender.packets());
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int hours = 12;
  std::uint64_t seed = 42;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--hours") {
      hours = static_cast<int>(bench::BenchArgs::parse_int("--hours", next(), 1, 24 * 365));
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(bench::BenchArgs::parse_int(
          "--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (a == "--csv") {
      csv_path = next();
    } else if (a == "--quick") {
      hours = 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }

  std::printf("== Hybrid reactive+redundant sweet spots (Sections 5.3/6) ==\n");
  std::vector<Row> rows;
  {
    HybridConfig c;
    c.mode = HybridMode::kBestPath;
    rows.push_back(run_policy("best-path only", c, hours, seed));
  }
  for (double thr : {0.05, 0.02, 0.01, 0.003}) {
    HybridConfig c;
    c.mode = HybridMode::kAdaptive;
    c.duplicate_threshold = thr;
    char name[48];
    std::snprintf(name, sizeof name, "adaptive (dup if est>=%.1f%%)", 100.0 * thr);
    rows.push_back(run_policy(name, c, hours, seed));
  }
  {
    HybridConfig c;
    c.mode = HybridMode::kAlwaysDuplicate;
    rows.push_back(run_policy("always duplicate", c, hours, seed));
  }

  TextTable t({"policy", "loss %", "overhead", "duplicated %"});
  t.set_align(0, TextTable::Align::kLeft);
  for (const auto& r : rows) {
    t.add_row({r.name, TextTable::num(r.loss_pct, 3), TextTable::num(r.overhead, 3) + "x",
               TextTable::num(r.dup_pct, 1) + "%"});
  }
  t.print(std::cout);
  std::printf("\nexpected frontier: loss falls monotonically from best-path to always-\n"
              "duplicate, while adaptive thresholds hold overhead near 1x by paying the\n"
              "2x price only inside detected elevated-loss periods.\n");

  if (!csv_path.empty()) {
    std::ofstream os;
    bench::open_output_or_die(os, csv_path);
    CsvWriter csv(os);
    csv.row({"policy", "loss_pct", "overhead", "duplicated_pct"});
    for (const auto& r : rows) {
      csv.row({r.name, TextTable::num(r.loss_pct, 4), TextTable::num(r.overhead, 4),
               TextTable::num(r.dup_pct, 2)});
    }
  }
  return 0;
}
