// Workload benchmark: the traffic-matrix layer end to end.
//
// Runs the full workload matrix — every redundancy policy (probe-only /
// static-2x / adaptive) through every canonical fault scenario — with
// the reference WorkloadSpec, and prints the per-class report: p50/p99/
// p999 one-way latency, loss, MOS, SLO attainment, redundancy overhead
// and controller switches, plus the cross-policy SLO-attainment matrix.
//
// The matrix is a pure function of (config, seed): the report is
// byte-identical at any --jobs and (for --shards > 0) any shard count,
// and its FNV-1a checksum is emitted in the JSON entry so CI pins
// simulation behaviour, not just throughput.
//
// The headline claim is checked, not just printed: the run exits 1
// unless the adaptive policy strictly beats BOTH static policies on at
// least one (scenario, class) SLO-attainment column. --compare reads
// the committed BENCH_workload.json trajectory and exits 1 when
// packets/sec regressed by more than --max-regress x against the LAST
// entry (and when the baseline row ran the same shape, on any report
// checksum drift).
//
// Usage:
//   bench_workload [--quick] [--seed S] [--jobs J] [--shards K]
//                  [--spec FILE] [--label NAME] [--out PATH]
//                  [--compare BENCH_workload.json] [--max-regress F]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "fault/scenarios.h"
#include "snapshot/codec.h"
#include "util/trajectory.h"
#include "workload/matrix.h"

namespace ronpath {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Result {
  bool quick = false;
  int shards = 0;
  std::int64_t cells = 0;
  std::int64_t packets = 0;  // application packets across all cells
  double wall_s = 0.0;
  double packets_per_sec = 0.0;
  // (scenario, class) columns where adaptive strictly beats both static
  // policies — the bench's reason to exist; must be >= 1.
  int adaptive_wins = 0;
  std::uint64_t report_checksum = 0;
};

void emit_json(std::FILE* f, const Result& r, const std::string& label) {
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"ronpath-bench-workload-v1\",\n"
               "  \"label\": \"%s\",\n"
               "  \"quick\": %d,\n"
               "  \"shards\": %d,\n"
               "  \"cells\": %lld,\n"
               "  \"packets\": %lld,\n"
               "  \"wall_s\": %.2f,\n"
               "  \"packets_per_sec\": %.1f,\n"
               "  \"adaptive_wins\": %d,\n"
               "  \"report_checksum\": \"%016llx\"\n"
               "}\n",
               label.c_str(), r.quick ? 1 : 0, r.shards,
               static_cast<long long>(r.cells), static_cast<long long>(r.packets), r.wall_s,
               r.packets_per_sec, r.adaptive_wins,
               static_cast<unsigned long long>(r.report_checksum));
}

int compare_against(const char* path, const Result& r, double max_regress) {
  const std::optional<std::string> text = traj::read_file(path);
  if (!text) {
    std::fprintf(stderr, "--compare: cannot read %s\n", path);
    return 2;
  }
  const std::string entry = traj::last_entry(*text);
  if (entry.empty()) {
    std::fprintf(stderr, "--compare: no trajectory entry in %s\n", path);
    return 2;
  }

  int rc = 0;
  const double committed = traj::number_field(entry, "packets_per_sec");
  if (committed <= 0.0) {
    std::fprintf(stderr, "--compare: no packets_per_sec in the last entry of %s\n", path);
    return 2;
  }
  const double ratio = committed / r.packets_per_sec;
  std::printf("compare %-16s measured %12.1f committed %12.1f (%.2fx %s)\n", "packets_per_sec",
              r.packets_per_sec, committed, ratio > 1.0 ? ratio : 1.0 / ratio,
              ratio > 1.0 ? "slower" : "faster");
  if (ratio > max_regress) {
    std::fprintf(stderr, "REGRESSION: packets_per_sec is %.2fx below the committed baseline "
                         "(limit %.2fx)\n",
                 ratio, max_regress);
    rc = 1;
  }

  // The report checksum pins what is simulated, not how fast — but only
  // when the baseline row ran the same shape (quick mode changes the
  // workload, shard mode changes the underlay discipline).
  const bool same_shape =
      traj::number_field(entry, "quick") == (r.quick ? 1.0 : 0.0) &&
      traj::number_field(entry, "shards") == static_cast<double>(r.shards) &&
      static_cast<std::int64_t>(traj::number_field(entry, "packets")) == r.packets;
  if (same_shape) {
    char measured_hex[32];
    std::snprintf(measured_hex, sizeof(measured_hex), "%016llx",
                  static_cast<unsigned long long>(r.report_checksum));
    const std::string needle = std::string("\"report_checksum\": \"") + measured_hex + "\"";
    if (entry.find(needle) == std::string::npos) {
      std::fprintf(stderr,
                   "CHECKSUM DRIFT: measured report checksum %s does not match the committed "
                   "baseline — simulation behaviour changed\n",
                   measured_hex);
      rc = 1;
    } else {
      std::printf("compare %-16s %s (matches committed baseline)\n", "report_checksum",
                  measured_hex);
    }
  }
  return rc;
}

int run(int argc, char** argv) {
  using bench::BenchArgs;

  WorkloadConfig cfg;
  cfg.spec = WorkloadSpec::defaults();
  std::uint64_t seed = 42;
  int jobs = 1;
  bool quick = false;
  std::string label = "run";
  std::string out_path;
  std::string spec_path;
  const char* compare_path = nullptr;
  double max_regress = 2.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(BenchArgs::parse_int(
          "--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (arg == "--jobs") {
      jobs = static_cast<int>(BenchArgs::parse_int("--jobs", next(), 1, 1024));
    } else if (arg == "--shards") {
      cfg.cell.shards = static_cast<int>(BenchArgs::parse_int("--shards", next(), 1, 256));
    } else if (arg == "--spec") {
      spec_path = next();
    } else if (arg == "--label") {
      label = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--compare") {
      compare_path = next();
    } else if (arg == "--max-regress") {
      max_regress = BenchArgs::parse_double("--max-regress", next(),
                                            std::numeric_limits<double>::min(), 1e6);
    } else if (arg == "--help") {
      std::printf("usage: %s [--quick] [--seed S] [--jobs J] [--shards K] [--spec FILE] "
                  "[--label NAME] [--out PATH] [--compare FILE] [--max-regress F]\n",
                  argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (!spec_path.empty()) {
    std::ifstream in(spec_path);
    if (!in) {
      std::fprintf(stderr, "--spec: cannot read \"%s\": %s\n", spec_path.c_str(),
                   std::strerror(errno));
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string parse_error;
    const std::optional<WorkloadSpec> parsed = WorkloadSpec::parse(text.str(), &parse_error);
    if (!parsed) {
      std::fprintf(stderr, "--spec %s: %s\n", spec_path.c_str(), parse_error.c_str());
      return 2;
    }
    cfg.spec = *parsed;
  }

  // Quick mode cannot shorten the timeline — the canonical fault windows
  // sit at fixed absolute times — so it thins the user population
  // instead: same scenarios, same phases, ~4x fewer application packets.
  if (quick) {
    cfg.spec.population = cfg.spec.population / 4.0;
  }

  const std::span<const Scenario> scenarios = canonical_scenarios();

  const double t0 = now_seconds();
  const WorkloadMatrixResult result = run_workload_matrix(cfg, scenarios, seed, jobs);
  const double wall = now_seconds() - t0;

  const std::string report = format_workload_matrix(result, scenarios);
  std::fputs(report.c_str(), stdout);

  Result r;
  r.quick = quick;
  r.shards = cfg.cell.shards;
  r.cells = static_cast<std::int64_t>(result.cells.size());
  for (const WorkloadCell& cell : result.cells) {
    for (const ClassCell& cc : cell.classes) {
      r.packets += static_cast<std::int64_t>(cc.sent);
    }
  }
  r.wall_s = wall;
  r.packets_per_sec = wall > 0.0 ? static_cast<double>(r.packets) / wall : 0.0;
  r.report_checksum = snap::fnv1a(report);

  const std::span<const WorkloadPolicy> policies = all_workload_policies();
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const WorkloadCell& probe = result.cells[s * policies.size()];
    const WorkloadCell& mesh = result.cells[s * policies.size() + 1];
    const WorkloadCell& adaptive = result.cells[s * policies.size() + 2];
    for (std::size_t c = 0; c < kServiceClassCount; ++c) {
      if (adaptive.classes[c].slo_pct > probe.classes[c].slo_pct &&
          adaptive.classes[c].slo_pct > mesh.classes[c].slo_pct) {
        ++r.adaptive_wins;
      }
    }
  }

  std::printf("\nwall %.2fs | %lld app packets | %.1f packets/sec | adaptive wins %d/%zu "
              "SLO columns | report checksum %016llx\n",
              r.wall_s, static_cast<long long>(r.packets), r.packets_per_sec, r.adaptive_wins,
              scenarios.size() * kServiceClassCount,
              static_cast<unsigned long long>(r.report_checksum));

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open \"%s\" for writing: %s\n", out_path.c_str(),
                   std::strerror(errno));
      return 2;
    }
    emit_json(f, r, label);
    std::fclose(f);
  } else {
    emit_json(stdout, r, label);
  }

  if (r.adaptive_wins < 1) {
    std::fprintf(stderr, "FAIL: adaptive does not strictly beat both static policies on any "
                         "(scenario, class) SLO-attainment column\n");
    return 1;
  }

  if (compare_path) return compare_against(compare_path, r, max_regress);
  return 0;
}

}  // namespace
}  // namespace ronpath

int main(int argc, char** argv) { return ronpath::run(argc, argv); }
