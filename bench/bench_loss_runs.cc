// Loss run lengths seen by the overlay's own probing: how many
// consecutive 15-second probes does a path lose at a time?
//
// Context the paper builds on: Labovitz et al. report outages lasting
// several minutes around routing faults; Bolot and Paxson report
// sub-second burst correlation. The overlay's probe stream samples each
// link every 15 s, so completed loss runs of length k bound the outage at
// roughly [15(k-1), 15k] seconds: runs of 1 are bursts/episodes caught
// once; runs of 2+ are sustained events the reactive router can act on
// (its 4 x 1 s follow-up train fires inside the first run).

#include <iostream>
#include <limits>

#include "bench/bench_common.h"
#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "util/table.h"

using namespace ronpath;

int main(int argc, char** argv) {
  int hours = 24;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--hours" && i + 1 < argc)
      hours = static_cast<int>(bench::BenchArgs::parse_int("--hours", argv[++i], 1, 24 * 365));
    if (a == "--seed" && i + 1 < argc)
      seed = static_cast<std::uint64_t>(bench::BenchArgs::parse_int(
          "--seed", argv[++i], 0, std::numeric_limits<std::int64_t>::max()));
    if (a == "--quick") hours = 4;
  }

  const Topology topo = testbed_2003();
  Rng rng(seed);
  Scheduler sched;
  Network net(topo, NetConfig::profile_2003(Duration::hours(hours)), Duration::hours(hours + 1),
              rng.fork("net"));
  OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
  overlay.start();
  sched.run_until(TimePoint::epoch() + Duration::hours(hours));

  const auto runs = overlay.loss_run_counts();
  std::int64_t total = 0;
  for (auto r : runs) total += r;

  std::printf("== Probe loss-run lengths (%d h, %lld probes, 870 links @ 15 s) ==\n", hours,
              static_cast<long long>(overlay.probes_sent()));
  TextTable t({"run length", "implied outage", "count", "fraction"});
  static const char* kImplied[] = {"< 15 s",      "15 - 30 s",  "30 - 45 s",
                                   "45 - 60 s",   "60 - 75 s",  "> 75 s"};
  for (std::size_t i = 0; i < runs.size(); ++i) {
    t.add_row({i < 5 ? TextTable::num(static_cast<std::int64_t>(i + 1))
                     : std::string("6+"),
               kImplied[i], TextTable::num(runs[i]),
               TextTable::num(total > 0 ? 100.0 * static_cast<double>(runs[i]) /
                                              static_cast<double>(total)
                                        : 0.0,
                              1) +
                   "%"});
  }
  t.print(std::cout);
  std::printf("\nexpected shape: single-probe losses dominate (sub-15 s bursts and\n"
              "episode grazes), with a tail of multi-minute runs from outages and\n"
              "sustained episodes - the events worth routing around (Section 2,\n"
              "Labovitz et al.'s minutes-long convergence outages).\n");
  return 0;
}
