// Reproduces Figure 3: cumulative distribution of 20-minute loss-rate
// samples per routing method, on a per-path basis.
//
// Paper shape: over 95% of samples have 0% loss; the loss-avoidance
// methods (loss, lat loss) truncate the high-loss tail while mesh methods
// (direct rand, dd*) compress the shallow-loss region.

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "routing/schemes.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(48));

  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRon2003;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  const auto res = run_experiment(cfg);
  bench::print_run_banner("Figure 3 - CDF of 20-minute loss rates", res, args);

  static constexpr PairScheme kSchemes[] = {
      PairScheme::kDirectDirect, PairScheme::kLoss,    PairScheme::kDirectRand,
      PairScheme::kLatLoss,      PairScheme::kDd10ms,  PairScheme::kDd20ms,
  };
  static const char* kNames[] = {"direct direct", "loss", "direct rand",
                                 "lat loss",      "dd 10", "dd 20"};

  std::vector<AsciiSeries> series;
  std::ofstream csv_os;
  std::unique_ptr<CsvWriter> csv;
  if (!args.csv_path.empty()) {
    bench::open_output_or_die(csv_os, args.csv_path);
    csv = std::make_unique<CsvWriter>(csv_os);
    csv->row({"method", "loss_rate", "cdf"});
  }

  std::printf("%-14s %10s %10s %10s %10s\n", "method", "F(0.0)", "F(0.1)", "F(0.3)", "F(0.6)");
  for (std::size_t i = 0; i < std::size(kSchemes); ++i) {
    const auto cdf = window_loss_cdf(*res.agg, kSchemes[i]);
    AsciiSeries s;
    s.name = kNames[i];
    double f0 = 0.0, f1 = 0.0, f3 = 0.0, f6 = 0.0;
    for (const auto& pt : cdf) {
      s.xs.push_back(pt.x);
      s.ys.push_back(pt.f);
      if (pt.x <= 0.006) f0 = pt.f;  // the "zero" bin
      if (pt.x <= 0.101) f1 = pt.f;
      if (pt.x <= 0.301) f3 = pt.f;
      if (pt.x <= 0.601) f6 = pt.f;
      if (csv) {
        csv->row({kNames[i], TextTable::num(pt.x, 4), TextTable::num(pt.f, 6)});
      }
    }
    series.push_back(std::move(s));
    std::printf("%-14s %10.4f %10.4f %10.4f %10.4f\n", kNames[i], f0, f1, f3, f6);
  }
  std::printf("(paper: direct's zero-loss fraction is >0.95; CDFs ordered with the\n"
              " combined lat loss method dominating)\n\n");
  plot_ascii(std::cout, series, 0.975, 1.0, 72, 18, "20-min loss rate", "fraction of samples");
  return 0;
}
