// Reproduces Table 3: the three datasets. Runs a short slice of each and
// extrapolates the sample count to the paper's full duration, comparing
// against the published sample totals.
//
// Paper: RONnarrow 4,763,082 samples over 3 days; RONwide 2,875,431 over
// 5 days; RON2003 32,602,776 over 14 days.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"

using namespace ronpath;

namespace {

struct Row {
  Dataset dataset;
  double paper_days;
  std::int64_t paper_samples;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(2));

  static constexpr Row kRows[] = {
      {Dataset::kRonNarrow, 3.0, 4'763'082},
      {Dataset::kRonWide, 5.0, 2'875'431},
      {Dataset::kRon2003, 14.0, 32'602'776},
  };

  std::printf("== Table 3 - datasets ==\n");
  TextTable t({"Dataset", "nodes", "methods", "samples (extrapolated)", "paper samples",
               "paper dates"});
  t.set_align(0, TextTable::Align::kLeft);
  t.set_align(5, TextTable::Align::kLeft);
  for (const Row& row : kRows) {
    ExperimentConfig cfg;
    cfg.dataset = row.dataset;
    cfg.duration = args.duration;
    cfg.seed = args.seed;
    const auto res = run_experiment(cfg);
    // A "sample" is one packet observation: count packets, not probes.
    std::int64_t packets = 0;
    for (PairScheme s : res.agg->schemes()) {
      const auto& st = res.agg->scheme_stats(s);
      packets += st.pair.pairs() * (scheme_spec(s).two_packets() ? 2 : 1);
    }
    const double scale = row.paper_days * 86'400.0 / res.measured.to_seconds_f();
    const auto extrapolated = static_cast<std::int64_t>(static_cast<double>(packets) * scale);
    const char* dates = row.dataset == Dataset::kRon2003  ? "30 Apr 2003 - 14 May 2003"
                        : row.dataset == Dataset::kRonWide ? "3 Jul 2002 - 8 Jul 2002"
                                                           : "8 Jul 2002 - 11 Jul 2002";
    t.add_row({std::string(to_string(row.dataset)),
               TextTable::num(static_cast<std::int64_t>(res.topology.size())),
               TextTable::num(static_cast<std::int64_t>(res.agg->schemes().size())),
               TextTable::num(extrapolated), TextTable::num(static_cast<std::int64_t>(row.paper_samples)), dates});
  }
  t.print(std::cout);
  std::printf("(shape check: same order of magnitude as the paper's totals;\n"
              " exact counts depend on probing cadence details)\n");
  return 0;
}
