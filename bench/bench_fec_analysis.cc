// Section 5.2 analysis: what same-path FEC must do to survive the
// measured loss correlation.
//
// Builds the CLP-vs-gap curve from the measured dd 0/10/20 ms probes, then
// computes (a) the gap at which losses de-correlate, (b) the failure
// probability of a 5+1 FEC group as a function of packet spacing, and
// (c) the spacing needed to approach independent-loss performance - the
// paper's "spread out by nearly half a second" conclusion.

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "model/fec_analysis.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(12));

  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRon2003;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  const auto res = run_experiment(cfg);
  bench::print_run_banner("Section 5.2 - FEC spreading analysis", res, args);

  const auto clp_of = [&](PairScheme s) {
    return res.agg->scheme_stats(s).pair.conditional_loss_percent().value_or(0.0) / 100.0;
  };
  const double base = res.agg->scheme_stats(PairScheme::kDirectDirect).pair
                          .first_loss_percent() / 100.0;
  ClpCurve curve({{Duration::zero(), clp_of(PairScheme::kDirectDirect)},
                  {Duration::millis(10), clp_of(PairScheme::kDd10ms)},
                  {Duration::millis(20), clp_of(PairScheme::kDd20ms)}},
                 base);

  std::printf("measured CLP: dd0 %.1f%%, dd10 %.1f%%, dd20 %.1f%%, unconditional %.2f%%\n",
              100.0 * curve.at(Duration::zero()), 100.0 * curve.at(Duration::millis(10)),
              100.0 * curve.at(Duration::millis(20)), 100.0 * base);
  std::printf("de-correlation gap (CLP within 2pp of unconditional): %s "
              "(paper: ~half a second)\n\n",
              curve.decorrelation_gap(0.02).to_string().c_str());

  std::printf("5+1 same-path FEC group failure probability vs packet spacing:\n");
  TextTable t({"spacing", "P(group fails)", "vs independent"});
  FecSchemeParams scheme;
  scheme.data_packets = 5;
  scheme.parity_packets = 1;
  // Independent-loss baseline: losses i.i.d. at the unconditional rate.
  ClpCurve independent({{Duration::zero(), base}}, base);
  scheme.packet_spacing = Duration::zero();
  const double p_indep = fec_group_failure_probability(independent, base, scheme);
  std::ofstream csv_os;
  std::unique_ptr<CsvWriter> csv;
  if (!args.csv_path.empty()) {
    bench::open_output_or_die(csv_os, args.csv_path);
    csv = std::make_unique<CsvWriter>(csv_os);
    csv->row({"spacing_ms", "p_fail", "p_independent"});
  }
  for (int ms : {0, 5, 10, 20, 50, 100, 200, 400, 800}) {
    scheme.packet_spacing = Duration::millis(ms);
    const double pf = fec_group_failure_probability(curve, base, scheme);
    t.add_row({Duration::millis(ms).to_string(), TextTable::num(pf * 100.0, 4) + "%",
               TextTable::num(p_indep > 0 ? pf / p_indep : 0.0, 1) + "x"});
    if (csv) {
      csv->row({TextTable::num(static_cast<std::int64_t>(ms)), TextTable::num(pf, 8),
                TextTable::num(p_indep, 8)});
    }
  }
  t.print(std::cout);

  const Duration needed = required_spacing(curve, base, 5, 1, 3.0 * p_indep);
  std::printf("\nspacing for a 5+1 group to get within 3x of independent loss: %s\n",
              needed.to_string().c_str());
  std::printf("=> total group spread %s; the latency cost the paper says erases FEC's\n"
              "   advantage on terrestrial paths (Section 5.2).\n",
              (needed * 5).to_string().c_str());
  return 0;
}
