// Reproduces Figure 6: when to use reactive or redundant routing.
//
// The figure is analytic: axes are desired loss-rate improvement (x) and
// the fraction of capacity used by data (y); regions are bounded by the
// best-expected-path limit (reactive), the independence limit
// (redundant), and the two capacity limits. The independence limit is
// instantiated from the measured conditional loss probability (1 - clp),
// tying the figure to the empirical Section 4 results.

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "model/bounds.h"
#include "model/design_space.h"
#include "model/overhead.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(6));

  // Derive the limits from a measured run, as the paper derives its
  // discussion from the Section 4 numbers.
  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRon2003;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  const auto res = run_experiment(cfg);

  const auto& dr = res.agg->scheme_stats(PairScheme::kDirectRand);
  const auto& loss = res.agg->scheme_stats(PairScheme::kLoss);
  const double direct_loss = dr.pair.first_loss_percent() / 100.0;
  const double clp = dr.pair.conditional_loss_percent().value_or(50.0) / 100.0;

  DesignSpaceParams params;
  // Redundancy cannot beat the correlated floor: improvement <= 1 - clp.
  params.independence_limit = 1.0 - clp;
  // Reactive cannot beat the best expected path; estimate from the
  // measured reactive improvement with headroom for faster probing.
  params.reactive_limit = std::min(
      0.95, 2.0 * loss_improvement(direct_loss,
                                   loss.pair.total_loss_percent() / 100.0) + 0.3);
  const DesignSpace ds(params);

  bench::print_run_banner("Figure 6 - reactive vs redundant design space", res, args);
  std::printf("measured: direct loss %.3f%%, direct rand clp %.1f%% -> independence limit %.2f\n",
              100.0 * direct_loss, 100.0 * clp, params.independence_limit);
  std::printf("reactive limit %.2f, probe capacity %.2f + %.2f * improvement\n\n",
              params.reactive_limit, params.probe_capacity_base, params.probe_capacity_slope);

  // Render the region map: x = improvement, y = data capacity fraction.
  const std::size_t nx = 64;
  const std::size_t ny = 24;
  std::printf("region map ('.' neither, 'r' reactive only, 'd' redundant only, 'b' both):\n");
  std::printf("%% capacity used by data (top=100%%)\n");
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const double y = 1.0 - static_cast<double>(iy) / static_cast<double>(ny - 1);
    std::printf("%5.0f%% |", 100.0 * y);
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double x = static_cast<double>(ix) / static_cast<double>(nx - 1);
      const auto pt = ds.evaluate(x, y);
      char ch = '.';
      switch (pt.region) {
        case SchemeRegion::kReactiveOnly: ch = 'r'; break;
        case SchemeRegion::kRedundantOnly: ch = 'd'; break;
        case SchemeRegion::kEither: ch = pt.reactive_cheaper ? 'b' : 'B'; break;
        case SchemeRegion::kNeither: ch = '.'; break;
      }
      std::printf("%c", ch);
    }
    std::printf("\n");
  }
  std::printf("       0%%%*s100%%  desired loss-rate improvement\n", static_cast<int>(nx - 7),
              "");
  std::printf("('b' = both feasible, reactive cheaper; 'B' = both feasible, redundant cheaper)\n\n");

  // Overhead crossover (Section 5.3's bandwidth trade-off).
  ProbeOverheadParams op;
  op.nodes = res.topology.size();
  std::printf("probing overhead: %.1f KB/s total, %.2f KB/s per node (N=%zu, 15 s interval)\n",
              probing_bytes_per_sec(op) / 1e3, probing_bytes_per_sec_per_node(op) / 1e3,
              op.nodes);
  std::printf("flow-bandwidth crossover vs 2x meshing: %.2f KB/s "
              "(thinner flows favor redundancy)\n",
              crossover_flow_bytes_per_sec(op) / 1e3);

  if (!args.csv_path.empty()) {
    std::ofstream os;
    bench::open_output_or_die(os, args.csv_path);
    CsvWriter csv(os);
    csv.row({"improvement", "data_capacity", "region", "reactive_cheaper"});
    for (const auto& pt : ds.grid(41, 41)) {
      csv.row({TextTable::num(pt.improvement, 3), TextTable::num(pt.data_capacity, 3),
               std::string(to_string(pt.region)), pt.reactive_cheaper ? "1" : "0"});
    }
  }
  return 0;
}
