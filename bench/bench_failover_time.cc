// Failover time vs probing rate (Section 5.1): "Reactive routing
// circumvents path failures in time proportional to its probing rate."
//
// Forces a total outage of the direct transit between two hosts at a
// known instant and measures how long the loss-optimized tactic keeps
// losing packets before its probes notice and it reroutes. Sweeping the
// probe interval shows the proportionality; the down-detection fast path
// (4 x 1 s follow-ups) gives reactive routing a floor well below the
// loss-window's 25-minute nominal memory.

#include <iostream>
#include <limits>

#include "bench/bench_common.h"
#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "util/table.h"
#include "util/rng.h"

using namespace ronpath;

namespace {

struct Trial {
  Duration failover = Duration::max();  // outage start -> first stable reroute
  double loss_during_outage_pct = 0.0;
  bool recovered = false;
};

Trial run_trial(Duration probe_interval, std::uint64_t seed) {
  const Topology topo = testbed_2003();
  const TimePoint outage_start = TimePoint::epoch() + Duration::minutes(50);
  const Duration outage_len = Duration::minutes(10);

  NetConfig cfg = NetConfig::profile_2003();
  Incident outage;
  outage.site_name = "Cornell";
  outage.scope = Incident::Scope::kCore;
  outage.start = outage_start;
  outage.duration = outage_len;
  // Kill (almost) the direct transit but leave clean vias: hit 70% of
  // Cornell's segments with ~60% loss.
  outage.cross_fraction = 0.7;
  outage.loss_rate = 0.6;
  outage.description = "forced transit failure";
  cfg.incidents.push_back(outage);

  Rng rng(seed);
  Scheduler sched;
  Network net(topo, cfg, Duration::minutes(75), rng.fork("net"));
  OverlayConfig ocfg;
  ocfg.probe_interval = probe_interval;
  OverlayNetwork overlay(net, sched, ocfg, rng.fork("overlay"));
  overlay.start();

  const NodeId src = *topo.find("MIT");
  const NodeId dst = *topo.find("Cornell");

  // Find whether the direct path is actually hit; if not, the trial is
  // uninformative for failover - report via the loss number anyway.
  sched.run_until(outage_start);
  std::int64_t lost = 0;
  std::int64_t sent = 0;
  Trial trial;
  TimePoint rerouted_at = TimePoint::max();
  const Duration step = Duration::millis(100);
  for (TimePoint t = outage_start; t < outage_start + outage_len; t += step) {
    sched.run_until(t);
    const PathSpec choice = overlay.route(src, dst, RouteTag::kLoss);
    if (!choice.is_direct() && rerouted_at == TimePoint::max()) {
      rerouted_at = t;
    }
    const auto r = overlay.send(choice, t);
    ++sent;
    lost += r.delivered() ? 0 : 1;
  }
  trial.loss_during_outage_pct = 100.0 * static_cast<double>(lost) / static_cast<double>(sent);
  if (rerouted_at != TimePoint::max()) {
    trial.failover = rerouted_at - outage_start;
    trial.recovered = true;
  }
  return trial;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  int seeds = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      seed = static_cast<std::uint64_t>(bench::BenchArgs::parse_int(
          "--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (a == "--seeds") {
      seeds = static_cast<int>(bench::BenchArgs::parse_int("--seeds", next(), 1, 100000));
    } else if (a == "--quick") {
      seeds = 1;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }

  std::printf("== Failover time vs probing rate (Section 5.1) ==\n");
  std::printf("forced 60%%-loss transit failure MIT->Cornell; loss-optimized tactic\n\n");
  TextTable t({"probe interval", "median failover", "loss during outage"});
  for (int interval_s : {5, 15, 30, 60}) {
    std::vector<double> failovers_s;
    double loss_sum = 0.0;
    for (int s = 0; s < seeds; ++s) {
      const Trial trial = run_trial(Duration::seconds(interval_s), seed + static_cast<std::uint64_t>(s));
      loss_sum += trial.loss_during_outage_pct;
      if (trial.recovered) failovers_s.push_back(trial.failover.to_seconds_f());
    }
    std::sort(failovers_s.begin(), failovers_s.end());
    const std::string failover =
        failovers_s.empty() ? std::string("(no reroute)")
                            : Duration::from_seconds_f(failovers_s[failovers_s.size() / 2])
                                  .to_string();
    t.add_row({Duration::seconds(interval_s).to_string(), failover,
               TextTable::num(loss_sum / seeds, 1) + "%"});
  }
  t.print(std::cout);
  std::printf("\nexpected: failover grows with the probe interval (detection needs a few\n"
              "lost probes plus the 4 x 1 s down-detection train), and residual loss\n"
              "during the outage grows with it - Section 5.1's proportionality.\n");
  return 0;
}
