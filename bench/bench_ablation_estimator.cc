// Ablation: link-loss scoring - the paper's last-100-probe window vs an
// EWMA (DESIGN.md choice #4). The window reacts with a fixed ~25-minute
// memory at the 15 s probe rate; an EWMA with comparable steady-state
// memory weights recent probes more, reacting faster to episode onsets
// at the cost of noisier quiet-time estimates (more spurious detours).

#include <iostream>

#include "bench/bench_common.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(12));

  std::printf("== Ablation: loss estimator (last-100 window vs EWMA) ==\n");
  TextTable t({"estimator", "direct %", "loss %", "improvement", "loss-tactic lat (ms)"});
  t.set_align(0, TextTable::Align::kLeft);
  for (int use_ewma = 0; use_ewma < 2; ++use_ewma) {
    ExperimentConfig cfg;
    cfg.dataset = Dataset::kRon2003;
    cfg.duration = args.duration;
    cfg.seed = args.seed;
    cfg.use_ewma_loss = use_ewma != 0;
    const auto res = run_experiment(cfg);
    const double direct =
        res.agg->scheme_stats(PairScheme::kDirectRand).pair.first_loss_percent();
    const auto& loss = res.agg->scheme_stats(PairScheme::kLoss);
    const double loss_pct = loss.pair.total_loss_percent();
    t.add_row({use_ewma ? "ewma (alpha 0.03)" : "last-100 window (paper)",
               TextTable::num(direct), TextTable::num(loss_pct),
               TextTable::num(direct > 0 ? 100.0 * (direct - loss_pct) / direct : 0.0, 1) + "%",
               TextTable::num(loss.first_lat_ms.mean(), 1)});
  }
  t.print(std::cout);
  std::printf("(the paper's window is the baseline; EWMA trades quiet-time stability\n"
              " for faster episode detection)\n");
  return 0;
}
