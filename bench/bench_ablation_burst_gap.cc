// Ablation: conditional loss probability vs inter-packet gap (DESIGN.md
// choice #2), sweeping the gap from 0 to 1000 ms on the calibrated
// underlay. Reproduces the Bolot-style decay the paper leans on: high
// correlation back-to-back, partial at 10-20 ms, gone by ~500 ms; also
// sweeps the microburst fraction to show the knob shaping the curve.

#include <iostream>
#include <limits>

#include "bench/bench_common.h"
#include "core/testbed.h"
#include "net/network.h"
#include "util/table.h"
#include "util/rng.h"

using namespace ronpath;

namespace {

double clp_at_gap(Network& net, Rng& rng, Duration gap, std::int64_t probes, TimePoint base,
                  Duration spacing) {
  std::int64_t lost1 = 0, both = 0;
  for (std::int64_t i = 0; i < probes; ++i) {
    const TimePoint t = base + spacing * i;
    const NodeId a = static_cast<NodeId>(rng.next_below(30));
    NodeId b = a;
    while (b == a) b = static_cast<NodeId>(rng.next_below(30));
    const auto r1 = net.transmit(PathSpec{a, b, kDirectVia}, t);
    if (r1.delivered) continue;
    ++lost1;
    if (!net.transmit(PathSpec{a, b, kDirectVia}, t + gap).delivered) ++both;
  }
  return lost1 > 0 ? 100.0 * static_cast<double>(both) / static_cast<double>(lost1) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  int hours = 10;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--hours") {
      hours = static_cast<int>(bench::BenchArgs::parse_int("--hours", next(), 1, 24 * 365));
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(bench::BenchArgs::parse_int(
          "--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (a == "--quick") {
      hours = 3;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }

  std::printf("== Ablation: CLP vs inter-packet gap ==\n");
  static constexpr int kGapsMs[] = {0, 5, 10, 20, 50, 100, 200, 500, 1000};

  TextTable t({"micro fraction", "0ms", "5ms", "10ms", "20ms", "50ms", "100ms", "200ms",
               "500ms", "1s"});
  for (double micro_frac : {0.95, 0.84, 0.5, 0.0}) {
    NetConfig cfg = NetConfig::profile_2003();
    auto set_frac = [micro_frac](ComponentParams& p) { p.short_burst_fraction = micro_frac; };
    for (auto& p : cfg.access) set_frac(p);
    set_frac(cfg.provider);
    set_frac(cfg.core);
    const std::int64_t probes = static_cast<std::int64_t>(hours) * 3600 * 25;
    const Duration spacing = Duration::from_seconds_f(
        static_cast<double>(hours) * 3600.0 / static_cast<double>(probes));
    std::vector<std::string> row = {TextTable::num(micro_frac, 2)};
    const TimePoint base = TimePoint::epoch();
    for (std::size_t gi = 0; gi < std::size(kGapsMs); ++gi) {
      // Fresh network per gap keeps slices comparable under one seed.
      Network net_g(testbed_2003(), cfg, Duration::hours(hours + 2), Rng(seed + gi));
      Rng rng_g(seed + 100 + gi);
      row.push_back(TextTable::num(
          clp_at_gap(net_g, rng_g, Duration::millis(kGapsMs[gi]), probes, base, spacing), 1));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf("\n(paper anchors: 72%% at 0 ms, 66%% at 10 ms, 65%% at 20 ms; Bolot saw the\n"
              " conditional probability return to the unconditional rate by ~500 ms.\n"
              " The microburst fraction controls how much correlation the first 10 ms\n"
              " spacing removes.)\n");
  return 0;
}
