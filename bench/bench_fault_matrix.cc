// Fault matrix: direct / reactive / mesh / hybrid routing through the
// canonical fault-scenario suite (src/fault/scenarios.h), reporting
// per-phase loss, failover and recovery times.
//
// The matrix is the robustness companion to the paper's Table 4: instead
// of sampling organic failures over days, every scheme is pushed through
// the same scripted fault at the same instant, so the failover numbers
// are directly attributable. Same seed + same schedule => byte-identical
// report (the golden test pins one cell).
//
//   --fault-scenario NAME|FILE   run one scenario (default: all)
//   --trials N --jobs J          cross-trial mean±95% CI cells
//   --quick                      8-node topology (CI smoke)

#include <fstream>
#include <vector>

#include "bench_common.h"
#include "core/fault_matrix.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::minutes(25));

  FaultMatrixConfig cfg;
  cfg.seed = args.seed;
  cfg.shards = args.shards;
  if (args.quick) cfg.node_count = 8;

  // Scenario selection: the full canonical suite, or the one named /
  // loaded schedule. Custom files run on the canonical one-shot window.
  std::vector<Scenario> selected;
  if (args.fault_scenario.empty()) {
    const auto all = canonical_scenarios();
    selected.assign(all.begin(), all.end());
  } else if (const Scenario* s = find_scenario(args.fault_scenario)) {
    selected.push_back(*s);
  } else {
    selected.push_back(Scenario{args.fault_scenario, "custom schedule", args.fault_dsl,
                                kFaultStart, kFaultDuration, /*routable=*/true});
  }

  const FaultMatrixResult result = run_fault_matrix(cfg, selected, args.trials, args.jobs);
  std::fputs(format_fault_matrix(result, selected).c_str(), stdout);

  if (!args.csv_path.empty()) {
    std::ofstream csv_file;
    bench::open_output_or_die(csv_file, args.csv_path);
    CsvWriter csv(csv_file);
    csv.row({"scenario", "scheme", "loss_pre_pct", "loss_fault_pct", "loss_post_pct",
             "failover_s", "recovery_s", "overhead", "route_switches", "injected_drops"});
    for (const FaultCellSummary& cell : result.cells) {
      csv.row({cell.scenario, std::string(to_string(cell.scheme)),
               TextTable::num(cell.loss_pre_pct.mean), TextTable::num(cell.loss_fault_pct.mean),
               TextTable::num(cell.loss_post_pct.mean),
               TextTable::opt_num(cell.failover_s.n > 0, cell.failover_s.mean, 1),
               TextTable::opt_num(cell.recovery_s.n > 0, cell.recovery_s.mean, 1),
               TextTable::num(cell.overhead.mean), TextTable::num(cell.route_switches),
               TextTable::num(cell.injected_drops)});
    }
  }
  return 0;
}
