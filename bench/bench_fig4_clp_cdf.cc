// Reproduces Figure 4: cumulative distribution of per-path conditional
// loss probabilities for the second packet of a pair.
//
// Paper shape: back-to-back direct pairs have the highest per-path CLPs
// (half of the paths with first-packet losses show ~100%); routing the
// second copy through a random intermediate shifts the distribution left;
// 10/20 ms spacing sits in between.

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "routing/schemes.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(48));

  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRon2003;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  const auto res = run_experiment(cfg);
  bench::print_run_banner("Figure 4 - CDF of per-path conditional loss probabilities", res,
                          args);

  static constexpr PairScheme kSchemes[] = {
      PairScheme::kDirectDirect,
      PairScheme::kDirectRand,
      PairScheme::kDd10ms,
      PairScheme::kDd20ms,
  };
  static const char* kNames[] = {"direct direct", "direct rand", "dd 10ms", "dd 20ms"};

  std::ofstream csv_os;
  std::unique_ptr<CsvWriter> csv;
  if (!args.csv_path.empty()) {
    bench::open_output_or_die(csv_os, args.csv_path);
    csv = std::make_unique<CsvWriter>(csv_os);
    csv->row({"method", "clp_percent", "cdf"});
  }

  std::vector<AsciiSeries> series;
  std::printf("%-14s %8s %12s %12s\n", "method", "paths", "median CLP", "mean CLP");
  for (std::size_t i = 0; i < std::size(kSchemes); ++i) {
    // Per the paper, require enough first-copy losses for a usable CLP.
    const auto clps = per_path_clp_percent(*res.agg, kSchemes[i], /*min_first_losses=*/3);
    AsciiSeries s;
    s.name = kNames[i];
    double sum = 0.0;
    const double n = static_cast<double>(clps.size());
    for (std::size_t j = 0; j < clps.size(); ++j) {
      s.xs.push_back(clps[j]);
      s.ys.push_back(static_cast<double>(j + 1) / n);
      sum += clps[j];
      if (csv) {
        csv->row({kNames[i], TextTable::num(clps[j], 2),
                  TextTable::num(static_cast<double>(j + 1) / n, 5)});
      }
    }
    const double median = clps.empty() ? 0.0 : clps[clps.size() / 2];
    std::printf("%-14s %8zu %12.1f %12.1f\n", kNames[i], clps.size(), median,
                clps.empty() ? 0.0 : sum / n);
    series.push_back(std::move(s));
  }
  std::printf("(paper: with back-to-back packets, half of such paths had 100%% CLP;\n"
              " direct rand's distribution sits left of direct direct's)\n\n");
  plot_ascii(std::cout, series, 0.0, 1.0, 72, 18, "conditional loss probability (%)",
             "fraction of paths");
  return 0;
}
