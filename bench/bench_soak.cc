// Soak/checkpoint micro-benchmark: snapshot payload size, save and
// restore cost, and the end-to-end throughput tax of checkpointing at
// several cadences. Tracks the cost knobs behind the soak harness
// (tools/soak) so checkpoint overhead regressions are visible.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/fault_matrix.h"
#include "fault/scenarios.h"
#include "snapshot/codec.h"
#include "snapshot/snapshot.h"
#include "snapshot/world.h"
#include "util/table.h"

using namespace ronpath;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(1));

  FaultMatrixConfig cfg;
  cfg.node_count = 8;
  cfg.seed = args.seed;
  cfg.measured = args.quick ? Duration::minutes(10) : args.duration;
  cfg.send_interval = Duration::millis(100);
  const Scenario& scenario = *find_scenario("link-flap");
  const FaultScheme scheme = FaultScheme::kHybrid;

  std::printf("== soak checkpoint bench ==\n");
  std::printf("scenario %s / %s | %zu nodes | measured %s | seed %llu\n",
              std::string(scenario.name).c_str(), std::string(to_string(scheme)).c_str(),
              cfg.node_count, cfg.measured.to_string().c_str(),
              static_cast<unsigned long long>(args.seed));

  // Snapshot size and save/restore cost at mid-run.
  SimWorld mid(scenario, scheme, cfg, cfg.seed);
  mid.advance_to(mid.total_sends() / 2);

  constexpr int kReps = 50;
  snap::Encoder sized;
  mid.save_state(sized);
  const std::size_t payload_bytes = sized.bytes().size();
  const std::size_t file_bytes = snap::seal(mid.fingerprint(), sized.bytes()).size();

  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    snap::Encoder e;
    mid.save_state(e);
    if (e.bytes().size() != payload_bytes) return 1;  // determinism guard
  }
  const double save_us = seconds_since(t0) / kReps * 1e6;

  SimWorld target(scenario, scheme, cfg, cfg.seed);
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    snap::Decoder d(sized.bytes());
    target.restore_state(d);
  }
  const double restore_us = seconds_since(t0) / kReps * 1e6;

  std::printf("snapshot at send %zu/%zu: payload %zu bytes, sealed file %zu bytes\n",
              mid.next_send(), mid.total_sends(), payload_bytes, file_bytes);
  std::printf("save   %.1f us/op  (%d reps)\n", save_us, kReps);
  std::printf("restore %.1f us/op (%d reps, into a live world)\n", restore_us, kReps);

  // Throughput tax: full runs with checkpoints (save + seal) at several
  // cadences, against a checkpoint-free baseline.
  struct CadenceRow {
    std::size_t every;  // 0 = no checkpoints
    double wall_s = 0.0;
    std::size_t checkpoints = 0;
  };
  std::vector<CadenceRow> rows{{0}, {5000}, {1000}, {200}};
  for (CadenceRow& row : rows) {
    SimWorld world(scenario, scheme, cfg, cfg.seed);
    const std::size_t total = world.total_sends();
    t0 = std::chrono::steady_clock::now();
    if (row.every == 0) {
      world.run_to_end();
    } else {
      for (std::size_t next = row.every; next < total; next += row.every) {
        world.advance_to(next);
        snap::Encoder e;
        world.save_state(e);
        (void)snap::seal(world.fingerprint(), e.bytes());
        ++row.checkpoints;
      }
      world.run_to_end();
    }
    row.wall_s = seconds_since(t0);
  }

  const double base = rows[0].wall_s;
  std::printf("\ncheckpoint cadence sweep (%zu sends):\n", mid.total_sends());
  std::printf("  %-18s %10s %12s %10s\n", "cadence", "wall s", "checkpoints", "overhead");
  for (const CadenceRow& row : rows) {
    const std::string label =
        row.every == 0 ? "none (baseline)" : "every " + std::to_string(row.every);
    std::printf("  %-18s %10.3f %12zu %+9.1f%%\n", label.c_str(), row.wall_s, row.checkpoints,
                base > 0.0 ? (row.wall_s / base - 1.0) * 100.0 : 0.0);
  }

  if (!args.csv_path.empty()) {
    std::ofstream os;
    bench::open_output_or_die(os, args.csv_path);
    CsvWriter csv(os);
    csv.row({"metric", "value"});
    csv.row({"payload_bytes", TextTable::num(static_cast<std::int64_t>(payload_bytes))});
    csv.row({"file_bytes", TextTable::num(static_cast<std::int64_t>(file_bytes))});
    csv.row({"save_us", TextTable::num(save_us, 2)});
    csv.row({"restore_us", TextTable::num(restore_us, 2)});
    for (const CadenceRow& row : rows) {
      csv.row({"wall_s_every_" + std::to_string(row.every), TextTable::num(row.wall_s, 4)});
    }
  }
  return 0;
}
