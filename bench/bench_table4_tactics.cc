// Reproduces Table 4: the route types between measurement nodes, plus the
// full scheme registry (which probes are one- or two-packet, their copy
// tactics, gaps and dataset membership).

#include <cstdio>
#include <iostream>

#include "routing/schemes.h"
#include "util/table.h"

using namespace ronpath;

namespace {

bool in_set(std::span<const PairScheme> set, PairScheme s) {
  for (PairScheme x : set) {
    if (x == s) return true;
  }
  return false;
}

}  // namespace

int main() {
  std::printf("== Table 4 - route types ==\n");
  TextTable t4({"type", "description"});
  t4.set_align(1, TextTable::Align::kLeft);
  t4.add_row({"loss", "loss optimized path (via probing)"});
  t4.add_row({"lat", "latency optimized path (via probing)"});
  t4.add_row({"direct", "direct Internet path"});
  t4.add_row({"rand", "indirectly through a random node"});
  t4.print(std::cout);

  std::printf("\n== Scheme registry (probe methods built from Table 4 types) ==\n");
  TextTable t({"scheme", "copy 1", "copy 2", "gap", "same path", "2003", "wide", "narrow"});
  t.set_align(0, TextTable::Align::kLeft);
  for (const SchemeSpec& spec : all_schemes()) {
    t.add_row({std::string(spec.name), std::string(to_string(spec.first)),
               spec.second ? std::string(to_string(*spec.second)) : "-",
               spec.gap.is_zero() ? "-" : spec.gap.to_string(),
               spec.second_same_path ? "y" : "-",
               in_set(ron2003_probe_set(), spec.scheme) ? "y" : "-",
               in_set(ronwide_probe_set(), spec.scheme) ? "y" : "-",
               in_set(ronnarrow_probe_set(), spec.scheme) ? "y" : "-"});
  }
  t.print(std::cout);
  std::printf("(direct/lat rows of Table 5 are inferred from the first copies of\n"
              " direct rand / lat loss respectively, per the paper's footnote)\n");
  return 0;
}
