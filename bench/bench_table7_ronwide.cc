// Reproduces Table 7: the expanded 12-method comparison on the 2002
// RONwide dataset (round-trip probes, RTT latency column).
//
// Paper values: direct 0.27/133.5, rand 1.12/283.0, lat 0.34/137.0, loss
// 0.21/151.9, direct direct totlp 0.21 clp 72.7, rand rand totlp 0.12 clp
// 11.2, direct rand totlp 0.12 clp 39.2, direct lat totlp 0.11 clp 39.3,
// direct loss totlp 0.11 clp 40.0, rand lat totlp 0.11 clp 9.3, rand loss
// totlp 0.11 clp 9.9, lat loss totlp 0.10 clp 29.0.
//
// With --trials N --jobs J every cell becomes mean±95%-CI over seed-split
// realizations.

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "routing/schemes.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(24));

  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRonWide;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  args.apply_fault(cfg);

  if (args.multi_trial()) {
    const TrialsResult trials = run_experiment_trials(cfg, args.trials, args.jobs);
    const auto ct = make_cross_trial(trials, ronwide_report_rows(), PairScheme::kDirect);
    bench::print_trials_banner("Table 7 - expanded routing schemes (RONwide, RTT)", trials,
                               args);
    bench::print_loss_table_ci(ct.rows, /*round_trip=*/true);

    if (!args.csv_path.empty()) {
      std::ofstream os;
      bench::open_output_or_die(os, args.csv_path);
      CsvWriter csv(os);
      csv.row({"dataset", "type", "1lp", "1lp_ci", "2lp", "2lp_ci", "totlp", "totlp_ci", "clp",
               "clp_ci", "rtt_ms", "rtt_ms_ci", "samples"});
      bench::csv_loss_table_ci(csv, "ronwide", ct.rows);
      bench::csv_trials_meta(csv, args, trials);
    }
    return 0;
  }

  const auto res = run_experiment(cfg);
  bench::print_run_banner("Table 7 - expanded routing schemes (RONwide, RTT)", res, args);

  const auto rows = make_loss_table(*res.agg, ronwide_report_rows());
  bench::print_loss_table(rows, /*round_trip=*/true);

  std::printf("\nshape checks vs paper:\n");
  auto find = [&](PairScheme s) -> const LossTableRow& {
    for (const auto& r : rows) {
      if (r.scheme == s) return r;
    }
    std::abort();
  };
  const auto& rr = find(PairScheme::kRandRand);
  const auto& dd = find(PairScheme::kDirectDirect);
  const auto& dr = find(PairScheme::kDirectRand);
  const auto& rnd = find(PairScheme::kRand);
  const auto& dir = find(PairScheme::kDirect);
  std::printf("  rand single-copy lossier than direct: %s (%.2f vs %.2f; paper 1.12 vs 0.27)\n",
              rnd.lp1 > dir.lp1 ? "yes" : "NO", rnd.lp1, dir.lp1);
  std::printf("  dd clp highest of all pair schemes:    %s (%.1f; paper 72.7)\n",
              *dd.clp >= *dr.clp && *dd.clp >= *rr.clp ? "yes" : "NO", *dd.clp);
  std::printf("  rand rand clp lowest (independent):    %s (%.1f; paper 11.2)\n",
              *rr.clp <= *dr.clp && *rr.clp <= *dd.clp ? "yes" : "NO", *rr.clp);
  std::printf("  rand RTT far above direct:             %s (%.1f vs %.1f; paper 283 vs 134)\n",
              rnd.lat_ms > dir.lat_ms + 20 ? "yes" : "NO", rnd.lat_ms, dir.lat_ms);

  if (!args.csv_path.empty()) {
    std::ofstream os;
    bench::open_output_or_die(os, args.csv_path);
    CsvWriter csv(os);
    csv.row({"type", "1lp", "2lp", "totlp", "clp", "rtt_ms"});
    for (const auto& r : rows) {
      csv.row({r.name, TextTable::num(r.lp1), r.lp2 ? TextTable::num(*r.lp2) : "",
               TextTable::num(r.totlp), r.clp ? TextTable::num(*r.clp) : "",
               TextTable::num(r.lat_ms)});
    }
  }
  return 0;
}
