// Reproduces Table 6: hour-long high-loss periods by routing method.
//
// Paper structure: counts of (path, hour) windows whose method loss
// exceeds 0%,10%,...,90%, for direct / dd10 / dd20 / loss / direct rand /
// direct direct / lat loss. Reactive routing trims the long heavy-loss
// tail; mesh routing trims the shallow end.

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"
#include "routing/schemes.h"

using namespace ronpath;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(48));

  ExperimentConfig cfg;
  cfg.dataset = Dataset::kRon2003;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  args.apply_fault(cfg);
  const auto res = run_experiment(cfg);
  bench::print_run_banner("Table 6 - hour-long high-loss periods", res, args);

  // Column order mirrors the paper: simple / redundancy / reactive /
  // mesh / both. "direct" is approximated by the first copies of the
  // direct direct scheme (its pairs are direct packets); probed schemes
  // use their own method loss.
  static constexpr PairScheme kCols[] = {
      PairScheme::kDirectDirect, PairScheme::kDd10ms,     PairScheme::kDd20ms,
      PairScheme::kLoss,         PairScheme::kDirectRand, PairScheme::kLatLoss,
  };
  const auto table = make_high_loss_table(*res.agg, kCols);

  TextTable t({"Loss % >", "direct direct", "dd 10ms", "dd 20 ms", "loss", "direct rand",
               "lat loss"});
  for (std::size_t th = 0; th < kHighLossThresholds; ++th) {
    std::vector<std::string> row;
    row.push_back(TextTable::num(static_cast<std::int64_t>(th * 10)));
    for (std::size_t c = 0; c < table.schemes.size(); ++c) {
      row.push_back(TextTable::num(table.counts[th][c]));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf("total hour windows per method:");
  for (auto w : table.total_windows) std::printf(" %lld", static_cast<long long>(w));
  std::printf("\n\npaper (14 d, 30 nodes): direct >0: 8817, loss >0: 10695*, direct rand\n"
              ">0: 3846, lat loss >0: 3353; counts fall steeply with the threshold and\n"
              "reactive methods overtake mesh at high thresholds.\n"
              "(*loss probes detect more shallow-loss hours while avoiding deep ones)\n");

  if (!args.csv_path.empty()) {
    std::ofstream os;
    bench::open_output_or_die(os, args.csv_path);
    CsvWriter csv(os);
    std::vector<std::string> header = {"threshold"};
    for (PairScheme s : table.schemes) header.emplace_back(to_string(s));
    csv.row(header);
    for (std::size_t th = 0; th < kHighLossThresholds; ++th) {
      std::vector<std::string> row = {TextTable::num(static_cast<std::int64_t>(th * 10))};
      for (std::size_t c = 0; c < table.schemes.size(); ++c) {
        row.push_back(TextTable::num(table.counts[th][c]));
      }
      csv.row(row);
    }
  }
  return 0;
}
