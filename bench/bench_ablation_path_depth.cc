// Ablation: path-engine cost versus search depth k.
//
// Sweeps the round-based engine over overlay sizes and relay depths and
// reports (a) per-query latency of the lazy mode, (b) full relax_all
// cost, (c) incremental apply_update cost relative to a from-scratch
// recompute. The interesting scaling story is in the work counters:
// round r relaxes only from nodes whose label moved in round r-1
// (marked-node pruning), so edges_relaxed grows with the active
// frontier rather than k * N^2, and a single republished entry
// re-relaxes a bounded neighborhood.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>
#include <limits>

#include "bench/bench_common.h"
#include "overlay/link_state.h"
#include "overlay/path_engine.h"
#include "overlay/router.h"
#include "util/rng.h"
#include "util/table.h"

using namespace ronpath;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

LinkMetrics random_metrics(Rng& rng) {
  LinkMetrics m;
  m.loss = rng.bernoulli(0.15) ? 0.3 * rng.next_double() : 0.02 * rng.next_double();
  m.latency = Duration::micros(rng.uniform_int(200, 120'000));
  m.has_latency = true;
  m.down = rng.bernoulli(0.02);
  m.samples = 100;
  m.published = TimePoint::epoch();
  return m;
}

// density < 1 leaves entries unpublished (never-probed links), which is
// what makes labels stagnate between rounds: on a sparse mesh most
// nodes' best k-hop path stops improving after the first round or two,
// and the marked-node pruning skips them as relax sources.
LinkStateTable make_table(std::size_t n, double density, Rng& rng) {
  LinkStateTable t(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (a != b && rng.next_double() < density) t.publish(a, b, random_metrics(rng));
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seed") {
      seed = static_cast<std::uint64_t>(bench::BenchArgs::parse_int(
          "--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (a == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }

  std::vector<std::size_t> sizes = {30, 100, 300};
  if (quick) sizes = {30, 100};
  const int queries = quick ? 2'000 : 20'000;
  const int updates = quick ? 200 : 2'000;

  std::printf("== Ablation: path-engine cost vs search depth ==\n");
  TextTable out({"nodes", "mesh", "k", "query us", "edges/query", "relax_all edges", "skip %",
                 "incr edges/update", "incr/full %"});
  out.set_align(0, TextTable::Align::kLeft);
  out.set_align(1, TextTable::Align::kLeft);

  for (const std::size_t n : sizes) {
    for (const double density : {1.0, 0.15}) {
    Rng rng(seed + n);
    const LinkStateTable table = make_table(n, density, rng);
    RouterConfig cfg;

    for (int k = 1; k <= 3; ++k) {
      PathEngine engine(table, cfg);
      Rng pick = rng.fork("pick");

      // (a) lazy per-query cost.
      engine.reset_stats();
      double acc = 0.0;  // defeat dead-code elimination
      const double q0 = now_seconds();
      for (int q = 0; q < queries; ++q) {
        const auto src = static_cast<NodeId>(pick.next_below(n));
        auto dst = static_cast<NodeId>(pick.next_below(n));
        if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
        acc += engine.best_loss(src, dst, k, TimePoint::epoch()).loss;
      }
      const double q1 = now_seconds();
      const double us_per_query = (q1 - q0) * 1e6 / queries;
      const double edges_per_query =
          static_cast<double>(engine.stats().edges_relaxed) / queries;

      // (b) full shared relax. sources_skipped counts stagnation-pruned
      // relax sources: the fraction of (round, node) sources whose label
      // stopped moving and were never scanned again.
      engine.reset_stats();
      engine.relax_all(0, k, TimePoint::epoch());
      const auto full_edges = engine.stats().edges_relaxed;
      const auto skipped = engine.stats().sources_skipped;
      // Stagnation applies from round 2 on; both objectives relax, so
      // the candidate source population is 2 * (k - 1) * n.
      const auto stagnation_sources = 2 * static_cast<std::uint64_t>(k > 1 ? k - 1 : 0) * n;
      const double skip_pct =
          stagnation_sources == 0
              ? 0.0
              : 100.0 * static_cast<double>(skipped) / static_cast<double>(stagnation_sources);

      // (c) incremental single-entry updates against the shared tables,
      // timed against a from-scratch relax_all per update.
      LinkStateTable mut = make_table(n, density, rng);
      PathEngine inc(mut, cfg);
      PathEngine scratch(mut, cfg);
      inc.relax_all(0, k, TimePoint::epoch());
      Rng upd = rng.fork("upd");
      inc.reset_stats();
      const double i0 = now_seconds();
      for (int u = 0; u < updates; ++u) {
        const auto from = static_cast<NodeId>(upd.next_below(n));
        auto to = static_cast<NodeId>(upd.next_below(n));
        if (to == from) to = static_cast<NodeId>((to + 1) % n);
        mut.publish(from, to, random_metrics(upd));
        inc.apply_update(from, to);
      }
      const double i1 = now_seconds();
      const double f0 = now_seconds();
      for (int u = 0; u < (quick ? 20 : 100); ++u) scratch.relax_all(0, k, TimePoint::epoch());
      const double f1 = now_seconds();
      const double incr_us = (i1 - i0) * 1e6 / updates;
      const double full_us = (f1 - f0) * 1e6 / (quick ? 20 : 100);
      const double incr_edges =
          static_cast<double>(inc.stats().edges_relaxed) / updates;

      out.add_row({std::to_string(n), density < 1.0 ? "sparse" : "dense", std::to_string(k),
                   TextTable::num(us_per_query, 2), TextTable::num(edges_per_query, 1),
                   std::to_string(full_edges), TextTable::num(skip_pct, 1),
                   TextTable::num(incr_edges, 1), TextTable::num(100.0 * incr_us / full_us, 1)});
      (void)acc;
    }
    }
  }
  out.print(std::cout);
  std::printf(
      "\nquery us: lazy best_loss() per query; edges/query tracks the\n"
      "candidate extensions actually evaluated. skip %%: stagnation-pruned\n"
      "relax sources in relax_all. incr/full %%: apply_update time as a\n"
      "fraction of a from-scratch relax_all.\n");
  return 0;
}
