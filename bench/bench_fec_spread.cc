// Empirical companion to bench_fec_analysis: runs spread FEC through the
// full simulator (not the analytic model) over a bursty consumer path,
// sweeping packet spacing x striping policy, and reports residual
// post-FEC application loss. Section 5.2's claim falls out: same-path
// FEC needs hundreds of ms of spread, while path diversity achieves the
// same de-correlation with no added latency.

#include <fstream>
#include <iostream>
#include <limits>

#include "bench/bench_common.h"
#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "routing/spread_fec.h"
#include "util/table.h"

using namespace ronpath;

namespace {

struct CellResult {
  double residual_loss_pct = 0.0;
  double wire_loss_pct = 0.0;
};

CellResult run_cell(FecStriping striping, Duration spacing, int payloads, std::uint64_t seed) {
  const Topology topo = testbed_2003();
  Rng rng(seed);
  Scheduler sched;
  // A persistently bursty *transit* situation at the destination: 80% of
  // NC-Cable's core segments run ~5% bursty loss for the whole run. This
  // is the configuration where both of Section 5.2's escape hatches can
  // work: temporal spread (bursts end) and path diversity (some vias are
  // clean, and the loss-optimized alternate finds them). Loss on the
  // shared access link itself would be escapable by neither - see
  // bench_ablation_shared_bottleneck.
  NetConfig net_cfg = NetConfig::profile_2003();
  Incident transit;
  transit.site_name = "NC-Cable";
  transit.scope = Incident::Scope::kCore;
  transit.start = TimePoint::epoch();
  transit.duration = Duration::hours(9);
  transit.cross_fraction = 0.8;
  transit.loss_rate = 0.05;
  transit.description = "persistent bursty transit trouble at the destination";
  net_cfg.incidents.push_back(transit);
  Network net(topo, net_cfg, Duration::hours(9), rng.fork("net"));
  OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
  overlay.start();
  sched.run_until(TimePoint::epoch() + Duration::minutes(40));

  // Pick a source whose *direct* segment to NC-Cable is inside the
  // incident (the per-segment hit set is pseudorandom): probe candidates
  // briefly and take the lossiest.
  const NodeId dst = *topo.find("NC-Cable");
  NodeId src = *topo.find("Intel");
  {
    double worst = -1.0;
    Rng probe_rng(seed + 99);
    for (const char* cand : {"Intel", "MIT", "Utah", "UCSD", "GBLX-CHI", "AT&T"}) {
      const NodeId c = *topo.find(cand);
      std::int64_t lost = 0;
      const int n = 4000;
      for (int i = 0; i < n; ++i) {
        const TimePoint pt = sched.now() + Duration::micros(i * 10'000);
        if (!net.transmit(PathSpec{c, dst, kDirectVia}, pt).delivered) ++lost;
      }
      const double rate = static_cast<double>(lost) / n;
      if (rate > worst) {
        worst = rate;
        src = c;
      }
      (void)probe_rng;
    }
    sched.run_until(sched.now() + Duration::seconds(41));  // past the probes
  }

  SpreadFecConfig cfg;
  cfg.data_shards = 5;
  cfg.parity_shards = 2;
  cfg.parity_spread = spacing;
  cfg.striping = striping;
  SpreadFecChannel channel(overlay, sched, src, dst, cfg, rng.fork("channel"));

  // A 10 pkt/s stream: each RS(5,2) block spans 400 ms of data, so a
  // typical long burst clips one or two data packets and the parity's
  // fate decides recovery.
  TimePoint t = sched.now();
  for (int i = 0; i < payloads; ++i) {
    t += Duration::millis(100);
    sched.run_until(t);
    channel.send(std::vector<std::uint8_t>(128, static_cast<std::uint8_t>(i)));
  }
  channel.flush();
  sched.run_until(channel.last_tx_time() + Duration::seconds(5));

  const auto& st = channel.stats();
  CellResult cell;
  cell.residual_loss_pct =
      100.0 * (1.0 - st.delivery_rate());
  cell.wire_loss_pct = st.shards_sent > 0
                           ? 100.0 * static_cast<double>(st.shards_lost) /
                                 static_cast<double>(st.shards_sent)
                           : 0.0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  int payloads = 120'000;
  std::uint64_t seed = 42;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--payloads") {
      payloads = static_cast<int>(bench::BenchArgs::parse_int("--payloads", next(), 1, 100000000));
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(bench::BenchArgs::parse_int(
          "--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (a == "--csv") {
      csv_path = next();
    } else if (a == "--quick") {
      payloads = 30'000;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return 2;
    }
  }

  std::printf("== Spread FEC over the overlay: residual loss, RS(5,2), Intel -> NC-Cable ==\n");
  static constexpr int kSpacingsMs[] = {0, 50, 150, 400, 800};
  static constexpr FecStriping kStripings[] = {
      FecStriping::kSinglePath, FecStriping::kAlternating, FecStriping::kParityDetour};

  std::ofstream csv_os;
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    bench::open_output_or_die(csv_os, csv_path);
    csv = std::make_unique<CsvWriter>(csv_os);
    csv->row({"striping", "spacing_ms", "residual_loss_pct", "wire_loss_pct"});
  }

  TextTable t({"striping", "0ms", "50ms", "150ms", "400ms", "800ms", "wire loss"});
  t.set_align(0, TextTable::Align::kLeft);
  for (FecStriping striping : kStripings) {
    std::vector<std::string> row = {std::string(to_string(striping))};
    double wire = 0.0;
    for (int ms : kSpacingsMs) {
      const auto cell = run_cell(striping, Duration::millis(ms), payloads, seed);
      row.push_back(TextTable::num(cell.residual_loss_pct, 3) + "%");
      wire = cell.wire_loss_pct;
      if (csv) {
        csv->row({std::string(to_string(striping)), TextTable::num(static_cast<std::int64_t>(ms)),
                  TextTable::num(cell.residual_loss_pct, 4), TextTable::num(cell.wire_loss_pct, 4)});
      }
    }
    row.push_back(TextTable::num(wire, 2) + "%");
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf(
      "\nexpected (Section 5.2): on the same path, spreading parity by hundreds of\n"
      "ms shaves residual loss as bursts expire - but cannot beat the burst-level\n"
      "correlation alone, which is why the paper calls same-path FEC ineffective\n"
      "here. Striping odd shards onto the loss-optimized alternate (which escapes\n"
      "the bad transit) cuts residual loss roughly in half with zero added\n"
      "latency; a random detour helps only as much as a random via is clean.\n");
  return 0;
}
