// Reproduces Table 1 (the 30 measurement hosts) and Table 2 (node
// category distribution). These are static catalogs; the bench verifies
// the category counts against the paper's published distribution.

#include <cstdio>
#include <iostream>

#include "core/testbed.h"
#include "util/table.h"

using namespace ronpath;

int main() {
  const Topology topo = testbed_2003();

  std::printf("== Table 1 - testbed hosts ==\n");
  TextTable t1({"Name", "Location", "Class", "I2", "2002"});
  t1.set_align(1, TextTable::Align::kLeft);
  t1.set_align(2, TextTable::Align::kLeft);
  for (const Site& s : topo.sites()) {
    t1.add_row({s.name, s.location, std::string(to_string(s.link_class)),
                is_internet2(s) ? "*" : "", s.in_2002_testbed ? "y" : ""});
  }
  t1.print(std::cout);
  std::printf("total hosts: %zu (paper: 30)\n\n", topo.size());

  std::printf("== Table 2 - node category distribution ==\n");
  TextTable t2({"Category", "#", "paper"});
  t2.set_align(0, TextTable::Align::kLeft);
  const int paper_counts[] = {7, 4, 5, 5, 3, 1, 3, 2};
  const auto cats = table2_categories(topo);
  bool all_match = true;
  for (std::size_t i = 0; i < cats.size(); ++i) {
    t2.add_row({cats[i].category, TextTable::num(static_cast<std::int64_t>(cats[i].count)),
                TextTable::num(static_cast<std::int64_t>(paper_counts[i]))});
    all_match &= cats[i].count == paper_counts[i];
  }
  t2.print(std::cout);
  std::printf("category counts match the paper: %s\n", all_match ? "yes" : "NO");

  const Topology old = testbed_2002();
  std::printf("\n2002 testbed subset: %zu hosts (paper: 17)\n", old.size());
  return all_match ? 0 : 1;
}
