// Reproduces Figure 2: cumulative distribution of long-term average loss
// rates on a per-path basis, 2003 vs 2002 datasets.
//
// Paper shape: ~80% of paths have an average loss rate below 1%; the tail
// extends to ~6-7% (Korea <-> US DSL).

#include <fstream>
#include <iostream>

#include "bench/bench_common.h"

using namespace ronpath;

namespace {

std::vector<double> run_and_extract(Dataset dataset, const bench::BenchArgs& args,
                                    PairScheme scheme) {
  ExperimentConfig cfg;
  cfg.dataset = dataset;
  cfg.duration = args.duration;
  cfg.seed = args.seed;
  const auto res = run_experiment(cfg);
  // Long-term direct loss per path, from the first copies of the probed
  // two-packet scheme (direct rand), as the paper infers direct*.
  return per_path_loss_percent(*res.agg, scheme, /*min_samples=*/40);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, Duration::hours(24));

  std::printf("== Figure 2 - CDF of long-term per-path loss rates ==\n");
  const auto loss2003 = run_and_extract(Dataset::kRon2003, args, PairScheme::kDirectRand);
  const auto loss2002 = run_and_extract(Dataset::kRonNarrow, args, PairScheme::kDirectRand);

  auto to_series = [](const std::vector<double>& sorted_losses, const char* name) {
    AsciiSeries s;
    s.name = name;
    const double n = static_cast<double>(sorted_losses.size());
    for (std::size_t i = 0; i < sorted_losses.size(); ++i) {
      s.xs.push_back(sorted_losses[i]);
      s.ys.push_back(static_cast<double>(i + 1) / n);
    }
    return s;
  };
  plot_ascii(std::cout, {to_series(loss2003, "2003 dataset"), to_series(loss2002, "2002 dataset")},
             0.0, 1.0, 72, 20, "average path-wide loss rate (%)", "fraction of paths");

  auto frac_below = [](const std::vector<double>& v, double x) {
    std::size_t c = 0;
    while (c < v.size() && v[c] < x) ++c;
    return v.empty() ? 0.0 : static_cast<double>(c) / static_cast<double>(v.size());
  };
  std::printf("\n2003: %zu paths, %.0f%% below 1%% loss (paper: ~80%%), max %.2f%%\n",
              loss2003.size(), 100.0 * frac_below(loss2003, 1.0),
              loss2003.empty() ? 0.0 : loss2003.back());
  std::printf("2002: %zu paths, %.0f%% below 1%% loss, max %.2f%%\n", loss2002.size(),
              100.0 * frac_below(loss2002, 1.0), loss2002.empty() ? 0.0 : loss2002.back());

  if (!args.csv_path.empty()) {
    std::ofstream os;
    bench::open_output_or_die(os, args.csv_path);
    CsvWriter csv(os);
    csv.row({"dataset", "loss_percent", "cdf"});
    for (std::size_t i = 0; i < loss2003.size(); ++i) {
      csv.row({"2003", TextTable::num(loss2003[i], 4),
               TextTable::num(static_cast<double>(i + 1) / loss2003.size(), 5)});
    }
    for (std::size_t i = 0; i < loss2002.size(); ++i) {
      csv.row({"2002", TextTable::num(loss2002[i], 4),
               TextTable::num(static_cast<double>(i + 1) / loss2002.size(), 5)});
    }
  }
  return 0;
}
