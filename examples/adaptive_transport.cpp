// Adaptive transport: composing the library's strategies into a channel
// with both reliability and bounded latency - the design point the
// paper's Section 5 analysis leads to.
//
//   latency plane : hybrid adaptive duplication (duplicate only when the
//                   routed path's loss estimate is elevated) keeps the
//                   common-case delivery latency at path-RTT scale;
//   reliability   : an ARQ channel with overlay-assisted retransmission
//                   backstops whatever both copies miss.
//
// The demo streams across a brownout and prints, per strategy, delivery
// rate, mean/worst latency, and bandwidth overhead - showing the
// composition dominating each ingredient alone.

#include <cstdio>

#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "routing/arq.h"
#include "routing/hybrid.h"
#include "util/stats.h"

using namespace ronpath;

int main() {
  const Topology topo = testbed_2003();
  NetConfig cfg = NetConfig::profile_2003();
  // A rough half hour: heavy brownout on most of the destination's
  // transit for minutes 8-16 of the stream.
  Incident inc;
  inc.site_name = "Lulea";
  inc.scope = Incident::Scope::kCore;
  inc.start = TimePoint::epoch() + Duration::minutes(8);
  inc.duration = Duration::minutes(8);
  inc.cross_fraction = 0.75;
  inc.loss_rate = 0.4;
  cfg.incidents.push_back(inc);

  Rng rng(5);
  Scheduler sched;
  Network net(topo, cfg, Duration::minutes(40), rng.fork("net"));
  OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
  overlay.start();

  const NodeId src = *topo.find("Intel");
  const NodeId dst = *topo.find("Lulea");
  const int packets = 30'000;  // 25 minutes at 20 pkt/s

  std::printf("Intel -> Lulea, 20 pkt/s for 25 min; 40%%-loss transit brownout at 8-16 min\n\n");
  std::printf("%-28s %10s %10s %10s %10s\n", "strategy", "delivered", "mean lat", "max lat",
              "overhead");

  // Strategy 1: hybrid adaptive duplication alone (unreliable datagrams).
  {
    HybridConfig hc;
    hc.mode = HybridMode::kAdaptive;
    hc.duplicate_threshold = 0.01;
    HybridSender hybrid(overlay, hc, rng.fork("hybrid"));
    RunningStat lat;
    std::int64_t delivered = 0;
    for (int i = 0; i < packets; ++i) {
      sched.run_until(sched.now() + Duration::millis(50));
      const auto out = hybrid.send(src, dst, sched.now());
      if (out.delivered()) {
        ++delivered;
        lat.add((out.probe.first_arrival() - sched.now()).to_millis_f());
      }
    }
    std::printf("%-28s %9.2f%% %8.1fms %8.0fms %9.2fx\n", "adaptive duplication",
                100.0 * static_cast<double>(delivered) / packets, lat.mean(), lat.max(),
                hybrid.overhead_factor());
  }

  // Strategy 2: ARQ alone (reliable, latency tail pays for it). Fresh
  // network state continues; the brownout incident has passed, so force
  // a second one by reusing relative offsets in a new simulation.
  {
    Rng rng2(6);
    Scheduler sched2;
    Network net2(topo, cfg, Duration::minutes(40), rng2.fork("net"));
    OverlayNetwork overlay2(net2, sched2, OverlayConfig{}, rng2.fork("overlay"));
    overlay2.start();
    ArqConfig ac;
    ac.retransmit_on_alternate = true;
    ArqChannel arq(overlay2, sched2, src, dst, ac, rng2.fork("arq"));
    for (int i = 0; i < packets; ++i) {
      sched2.run_until(sched2.now() + Duration::millis(50));
      arq.send();
    }
    sched2.run_until(sched2.now() + Duration::minutes(3));
    const auto& st = arq.stats();
    std::printf("%-28s %9.2f%% %8.1fms %8.0fms %9.2fx\n", "overlay ARQ",
                100.0 * st.delivery_rate(), st.delivery_latency_ms.mean(),
                st.delivery_latency_ms.max(), st.mean_transmissions());
  }

  // Strategy 3: composition - adaptive duplication with ARQ backstop:
  // count a packet delivered at the earliest copy arrival; packets both
  // copies miss are re-sent through the ARQ channel.
  {
    Rng rng3(7);
    Scheduler sched3;
    Network net3(topo, cfg, Duration::minutes(40), rng3.fork("net"));
    OverlayNetwork overlay3(net3, sched3, OverlayConfig{}, rng3.fork("overlay"));
    overlay3.start();
    HybridConfig hc;
    hc.mode = HybridMode::kAdaptive;
    hc.duplicate_threshold = 0.01;
    HybridSender hybrid(overlay3, hc, rng3.fork("hybrid"));
    ArqConfig ac;
    ac.retransmit_on_alternate = true;
    ArqChannel backstop(overlay3, sched3, src, dst, ac, rng3.fork("arq"));

    RunningStat lat;
    std::int64_t delivered_fast = 0;
    std::int64_t backstopped = 0;
    for (int i = 0; i < packets; ++i) {
      sched3.run_until(sched3.now() + Duration::millis(50));
      const auto out = hybrid.send(src, dst, sched3.now());
      if (out.delivered()) {
        ++delivered_fast;
        lat.add((out.probe.first_arrival() - sched3.now()).to_millis_f());
      } else {
        ++backstopped;
        backstop.send();
      }
    }
    sched3.run_until(sched3.now() + Duration::minutes(3));
    const auto& bs = backstop.stats();
    const double total_delivered =
        static_cast<double>(delivered_fast + bs.delivered) / packets;
    const double overhead =
        (hybrid.overhead_factor() * packets + bs.mean_transmissions() * backstopped) /
        packets;
    std::printf("%-28s %9.2f%% %8.1fms %8.0fms %9.2fx\n",
                "adaptive dup + ARQ backstop", 100.0 * total_delivered, lat.mean(),
                std::max(lat.max(), bs.delivery_latency_ms.max()), overhead);
    std::printf("\n(%lld of %d packets needed the backstop; fast-path latency stays at\n"
                " RTT scale while reliability reaches ARQ's)\n",
                static_cast<long long>(backstopped), packets);
  }
  return 0;
}
