// Quickstart: build the simulated RON testbed, run the overlay's probing
// for a few virtual minutes, and send packets between two hosts with each
// routing scheme, printing what happened.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "routing/multipath.h"

using namespace ronpath;

int main() {
  // 1. The underlay: the paper's 30-host testbed on the calibrated 2003
  //    network profile.
  const Topology topo = testbed_2003();
  Rng rng(2003);
  Scheduler sched;
  Network net(topo, NetConfig::profile_2003(), Duration::hours(1), rng.fork("net"));

  // 2. The overlay: RON-style probing every 15 s per link.
  OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
  overlay.start();

  // 3. Let the probers warm up their estimators (simulated time).
  std::printf("warming up probing for 5 virtual minutes...\n");
  sched.run_until(TimePoint::epoch() + Duration::minutes(5));
  std::printf("overlay sent %lld probes so far\n\n",
              static_cast<long long>(overlay.probes_sent()));

  const NodeId src = *topo.find("MIT");
  const NodeId dst = *topo.find("Korea");
  std::printf("sending MIT -> Korea with each scheme:\n");

  MultipathSender sender(overlay, rng.fork("sender"));
  for (PairScheme scheme :
       {PairScheme::kDirect, PairScheme::kLat, PairScheme::kLoss, PairScheme::kDirectRand,
        PairScheme::kLatLoss, PairScheme::kDirectDirect}) {
    const ProbeOutcome out = sender.send(scheme, src, dst, sched.now());
    std::printf("  %-14s:", std::string(to_string(scheme)).c_str());
    for (const auto& copy : out.copies) {
      if (copy.path.is_direct()) {
        std::printf("  [%s via direct: %s", std::string(to_string(copy.tag)).c_str(),
                    copy.delivered() ? "delivered" : "LOST");
      } else {
        std::printf("  [%s via %s: %s", std::string(to_string(copy.tag)).c_str(),
                    topo.site(copy.path.via).name.c_str(),
                    copy.delivered() ? "delivered" : "LOST");
      }
      if (copy.delivered()) std::printf(" in %s", copy.one_way().to_string().c_str());
      std::printf("]");
    }
    std::printf("\n");
  }

  // 4. Ask the routers what they currently think.
  const auto loss_choice = overlay.router(src).best_loss_path(dst);
  const auto lat_choice = overlay.router(src).best_lat_path(dst);
  std::printf("\nrouter state at MIT for destination Korea:\n");
  std::printf("  loss-optimized: %s (est loss %.2f%%)\n",
              loss_choice.path.is_direct() ? "direct"
                                           : topo.site(loss_choice.path.via).name.c_str(),
              100.0 * loss_choice.loss);
  std::printf("  lat-optimized:  %s (est latency %s)\n",
              lat_choice.path.is_direct() ? "direct"
                                          : topo.site(lat_choice.path.via).name.c_str(),
              lat_choice.latency.to_string().c_str());
  return 0;
}
