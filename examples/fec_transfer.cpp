// Bulk transfer with packet-level Reed-Solomon FEC over the overlay,
// exercising the Section 5.2 design space end to end: a k+m erasure code
// with its shards striped across two overlay paths (direct + loss-picked
// alternate) versus the same code on a single path.
//
// The single-path variant suffers the paper's burst correlation: a burst
// that kills a data packet usually kills the adjacent parity too. The
// two-path variant recovers because shards on the alternate path fail
// (mostly) independently.

#include <cstdio>

#include "core/testbed.h"
#include "event/scheduler.h"
#include "fec/packet_fec.h"
#include "net/network.h"
#include "overlay/overlay.h"

using namespace ronpath;

namespace {

struct TransferResult {
  std::int64_t sent_payloads = 0;
  std::int64_t delivered = 0;
  std::int64_t reconstructed = 0;
  std::int64_t shards_lost = 0;
};

TransferResult run_transfer(OverlayNetwork& overlay, Scheduler& sched, NodeId src, NodeId dst,
                            std::size_t k, std::size_t m, bool two_paths, Rng rng) {
  FecEncoder enc(k, m);
  FecDecoder dec(k, m);
  TransferResult res;
  const int payloads = 20'000;
  const Duration spacing = Duration::millis(2);  // ~500 pkt/s bulk flow
  TimePoint t = sched.now();
  for (int i = 0; i < payloads; ++i) {
    t += spacing;
    sched.run_until(t);
    std::vector<std::uint8_t> payload(256, static_cast<std::uint8_t>(i));
    ++res.sent_payloads;
    for (const auto& shard : enc.push(std::move(payload))) {
      // Stripe shards: even indices on the direct path, odd ones on the
      // loss-optimized alternate (when enabled).
      PathSpec path{src, dst, kDirectVia};
      if (two_paths && shard.index % 2 == 1) {
        path = overlay.route(src, dst, RouteTag::kLoss);
      }
      const OverlaySendResult sent = overlay.send(path, t);
      if (!sent.delivered()) {
        ++res.shards_lost;
        continue;
      }
      res.delivered += static_cast<std::int64_t>(dec.push(shard).size());
    }
  }
  res.reconstructed = dec.reconstructed();
  return res;
}

}  // namespace

int main() {
  const Topology topo = testbed_2003();
  const NodeId src = *topo.find("Intel");
  const NodeId dst = *topo.find("NC-Cable");  // consumer edge: bursty

  Rng rng(31);
  Scheduler sched;
  // Crank up the destination's burstiness so a short demo sees losses.
  NetConfig cfg = NetConfig::profile_2003();
  cfg.loss_scale *= 6.0;
  Network net(topo, cfg, Duration::hours(2), rng.fork("net"));
  OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
  overlay.start();
  sched.run_until(TimePoint::epoch() + Duration::minutes(3));  // estimator warmup

  std::printf("bulk transfer Intel -> NC-Cable, 20000 x 256 B payloads, RS(5,2) FEC\n\n");
  std::printf("%-22s %10s %14s %14s %10s\n", "strategy", "lost", "delivered", "reconstructed",
              "goodput");
  for (bool two_paths : {false, true}) {
    const auto r = run_transfer(overlay, sched, src, dst, 5, 2, two_paths, rng.fork("xfer"));
    std::printf("%-22s %10lld %14lld %14lld %9.2f%%\n",
                two_paths ? "RS(5,2) on two paths" : "RS(5,2) single path",
                static_cast<long long>(r.shards_lost), static_cast<long long>(r.delivered),
                static_cast<long long>(r.reconstructed),
                100.0 * static_cast<double>(r.delivered) /
                    static_cast<double>(r.sent_payloads));
  }
  std::printf("\nexpected: similar shard loss on the wire, but the two-path transfer\n"
              "reconstructs more of it - burst losses inside one block are spread over\n"
              "independent paths instead of sharing one path's burst (Section 5.2).\n");
  return 0;
}
