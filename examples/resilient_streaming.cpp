// Resilient streaming: a constant-rate media stream between two hosts
// while the network goes through a forced outage on the direct path's
// provider, comparing three strategies side by side:
//
//   direct        - plain Internet path (what a normal app gets),
//   reactive      - the loss-optimized overlay path (RON),
//   2-redundant   - mesh routing: direct + random intermediate.
//
// Demonstrates the paper's core claim: mesh routing masks losses without
// waiting for detection, while reactive routing recovers once its probes
// notice (Section 5.1's failure-scenario discussion).

#include <cstdio>

#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"
#include "routing/multipath.h"
#include "util/stats.h"

using namespace ronpath;

int main() {
  const Topology topo = testbed_2003();
  const NodeId src = *topo.find("UCSD");
  const NodeId dst = *topo.find("Lulea");

  // Schedule a 4-minute incident on most of Lulea's transit paths,
  // starting 6 minutes in: heavy loss that one-hop detours can avoid.
  NetConfig cfg = NetConfig::profile_2003();
  Incident inc;
  inc.site_name = "Lulea";
  inc.scope = Incident::Scope::kCore;
  inc.start = TimePoint::epoch() + Duration::minutes(6);
  inc.duration = Duration::minutes(4);
  inc.cross_fraction = 0.75;
  inc.loss_rate = 0.55;
  inc.description = "forced transit brownout for the demo";
  cfg.incidents.push_back(inc);

  Rng rng(7);
  Scheduler sched;
  Network net(topo, cfg, Duration::minutes(20), rng.fork("net"));
  OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
  overlay.start();
  MultipathSender sender(overlay, rng.fork("sender"));

  // Stream: 50 packets/s for 15 virtual minutes; report per 30 s bin.
  struct Strategy {
    const char* name;
    PairScheme scheme;
    LossCounter bin;
    LossCounter total;
  };
  Strategy strategies[] = {
      {"direct", PairScheme::kDirect, {}, {}},
      {"reactive (loss)", PairScheme::kLoss, {}, {}},
      {"mesh (direct rand)", PairScheme::kDirectRand, {}, {}},
  };

  std::printf("streaming UCSD -> Lulea at 50 pkt/s; brownout at minutes 6-10\n\n");
  std::printf("%8s  %18s %18s %18s\n", "time", "direct", "reactive (loss)",
              "mesh (direct rand)");

  const Duration tick = Duration::millis(20);
  const Duration bin = Duration::seconds(30);
  TimePoint next_report = TimePoint::epoch() + bin;
  for (TimePoint t = TimePoint::epoch(); t < TimePoint::epoch() + Duration::minutes(15);
       t += tick) {
    sched.run_until(t);  // keep the probers running alongside the stream
    for (auto& s : strategies) {
      const ProbeOutcome out = sender.send(s.scheme, src, dst, t);
      const bool lost = !out.any_delivered();
      s.bin.record(lost);
      s.total.record(lost);
    }
    if (t + tick >= next_report) {
      std::printf("%8s ", next_report.since_epoch().to_string().c_str());
      for (auto& s : strategies) {
        std::printf(" %12.1f%% loss", s.bin.loss_percent());
        s.bin = LossCounter{};
      }
      std::printf("\n");
      next_report += bin;
    }
  }

  std::printf("\ntotals over 15 minutes:\n");
  for (const auto& s : strategies) {
    std::printf("  %-18s %7.2f%% loss (%lld of %lld packets)\n", s.name,
                s.total.loss_percent(), static_cast<long long>(s.total.lost()),
                static_cast<long long>(s.total.sent()));
  }
  std::printf("\nexpected: all three match while quiet; during the brownout mesh\n"
              "masks most loss immediately, reactive recovers after its probes\n"
              "detect the bad paths, and direct eats the full outage.\n");
  return 0;
}
