// Probing daemon: runs the RON-style overlay for a while and periodically
// prints each node's routing decisions for a watched destination - the
// kind of dashboard a deployed overlay operator would watch. Shows path
// churn, down detection, and the loss/latency estimates driving choices.

#include <cstdio>
#include <map>
#include <string>

#include "core/testbed.h"
#include "event/scheduler.h"
#include "net/network.h"
#include "overlay/overlay.h"

using namespace ronpath;

int main(int argc, char** argv) {
  int minutes = 45;
  if (argc > 1) minutes = std::atoi(argv[1]);

  const Topology topo = testbed_2003();
  Rng rng(99);
  Scheduler sched;
  Network net(topo, NetConfig::profile_2003(), Duration::minutes(minutes + 10),
              rng.fork("net"));
  OverlayNetwork overlay(net, sched, OverlayConfig{}, rng.fork("overlay"));
  overlay.start();

  const NodeId dst = *topo.find("Korea");
  const NodeId watchers[] = {*topo.find("MIT"), *topo.find("UCSD"), *topo.find("CA-DSL"),
                             *topo.find("GBLX-LON")};

  std::map<std::string, int> choice_histogram;
  std::printf("watching routes to Korea every 5 virtual minutes (%d minutes total)\n\n",
              minutes);
  for (int m = 5; m <= minutes; m += 5) {
    sched.run_until(TimePoint::epoch() + Duration::minutes(m));
    std::printf("t=%3d min  (probes so far: %lld)\n", m,
                static_cast<long long>(overlay.probes_sent()));
    for (NodeId w : watchers) {
      auto& router = overlay.router(w);
      const auto loss_pick = router.best_loss_path(dst);
      const auto lat_pick = router.best_lat_path(dst);
      const auto& est = overlay.estimator(w, dst);
      const std::string loss_via =
          loss_pick.path.is_direct() ? "direct" : topo.site(loss_pick.path.via).name;
      const std::string lat_via =
          lat_pick.path.is_direct() ? "direct" : topo.site(lat_pick.path.via).name;
      std::printf("  %-9s direct est: loss %5.2f%% lat %9s %s | loss-pick: %-10s "
                  "| lat-pick: %-10s\n",
                  topo.site(w).name.c_str(), 100.0 * est.loss(),
                  est.latency() == Duration::max() ? "?" : est.latency().to_string().c_str(),
                  est.down() ? "[DOWN]" : "      ", loss_via.c_str(), lat_via.c_str());
      ++choice_histogram[loss_via];
    }
    std::printf("\n");
  }

  std::printf("loss-optimized choice histogram over the run:\n");
  for (const auto& [via, count] : choice_histogram) {
    std::printf("  %-12s %d\n", via.c_str(), count);
  }
  return 0;
}
