// rondata: capture and analyze probe datasets offline.
//
// The paper's infrastructure logged every probe on each host and pushed
// the logs to a central machine for post-processing (and the authors
// published the resulting traces). rondata is this repo's equivalent:
//
//   rondata capture --out FILE [--dataset ron2003|ronwide|ronnarrow]
//                   [--hours H|--days D] [--seed S]
//       run a simulated dataset and stream every probe record to FILE.
//
//   rondata inspect FILE
//       header check, record/scheme counts, time span, quick loss summary.
//
//   rondata table FILE
//       replay the records through the measurement pipeline (including
//       the 90 s host-failure filter) and print the Table 5-style loss
//       table for the schemes present.
//
//   rondata csv FILE
//       dump records as CSV for external analysis.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <set>
#include <vector>

#include "bench/bench_common.h"
#include "core/experiment.h"
#include "measure/aggregator.h"
#include "measure/records.h"
#include "measure/report.h"
#include "routing/schemes.h"
#include "util/table.h"

using namespace ronpath;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  rondata capture --out FILE [--dataset ron2003|ronwide|ronnarrow]\n"
               "                  [--hours H|--days D] [--seed S]\n"
               "  rondata inspect FILE\n"
               "  rondata table FILE\n"
               "  rondata csv FILE\n");
  return 2;
}

std::optional<std::vector<ProbeRecord>> load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<char> blob((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
  auto records = read_record_stream(
      std::span(reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()));
  if (!records) std::fprintf(stderr, "%s: not a rondata stream (or torn)\n", path.c_str());
  return records;
}

int cmd_capture(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.duration = Duration::hours(2);
  std::string out;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(usage());
      return argv[++i];
    };
    if (a == "--out") {
      out = next();
    } else if (a == "--dataset") {
      const std::string d = next();
      if (d == "ron2003") cfg.dataset = Dataset::kRon2003;
      else if (d == "ronwide") cfg.dataset = Dataset::kRonWide;
      else if (d == "ronnarrow") cfg.dataset = Dataset::kRonNarrow;
      else return usage();
    } else if (a == "--hours") {
      cfg.duration = Duration::hours(
          ronpath::bench::BenchArgs::parse_int("--hours", next(), 1, 24 * 365));
    } else if (a == "--days") {
      cfg.duration =
          Duration::days(ronpath::bench::BenchArgs::parse_int("--days", next(), 1, 365));
    } else if (a == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(ronpath::bench::BenchArgs::parse_int(
          "--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else {
      return usage();
    }
  }
  if (out.empty()) return usage();
  cfg.record_path = out;
  const auto res = run_experiment(cfg);
  std::printf("captured %lld probes (%s, %zu nodes, %s measured) -> %s\n",
              static_cast<long long>(res.probes),
              std::string(to_string(cfg.dataset)).c_str(), res.topology.size(),
              res.measured.to_string().c_str(), out.c_str());
  return 0;
}

int cmd_inspect(const std::string& path) {
  const auto records = load(path);
  if (!records) return 1;
  if (records->empty()) {
    std::printf("%s: empty dataset\n", path.c_str());
    return 0;
  }
  TimePoint lo = TimePoint::max();
  TimePoint hi = TimePoint::epoch();
  std::set<NodeId> hosts;
  std::array<std::int64_t, 14> by_scheme{};
  std::array<std::int64_t, 14> lost_by_scheme{};
  for (const auto& r : *records) {
    lo = std::min(lo, r.sent());
    hi = std::max(hi, r.sent());
    hosts.insert(r.src);
    hosts.insert(r.dst);
    ++by_scheme[static_cast<std::size_t>(r.scheme)];
    if (!r.any_delivered()) ++lost_by_scheme[static_cast<std::size_t>(r.scheme)];
  }
  std::printf("%s: %zu records, %zu hosts, span %s .. %s\n", path.c_str(), records->size(),
              hosts.size(), lo.to_string().c_str(), hi.to_string().c_str());
  TextTable t({"scheme", "records", "method loss %"});
  t.set_align(0, TextTable::Align::kLeft);
  for (std::size_t s = 0; s < by_scheme.size(); ++s) {
    if (by_scheme[s] == 0) continue;
    t.add_row({std::string(to_string(static_cast<PairScheme>(s))),
               TextTable::num(by_scheme[s]),
               TextTable::num(100.0 * static_cast<double>(lost_by_scheme[s]) /
                                  static_cast<double>(by_scheme[s]))});
  }
  t.print(std::cout);
  return 0;
}

int cmd_table(const std::string& path) {
  const auto records = load(path);
  if (!records || records->empty()) return 1;

  // Schemes present and host count drive the aggregator setup.
  std::set<PairScheme> scheme_set;
  NodeId max_node = 0;
  for (const auto& r : *records) {
    scheme_set.insert(r.scheme);
    max_node = std::max({max_node, r.src, r.dst});
  }
  const std::vector<PairScheme> schemes(scheme_set.begin(), scheme_set.end());

  // Replay in send order; activity heartbeats come from each host's own
  // sends, exactly as the live pipeline infers liveness.
  std::vector<const ProbeRecord*> ordered;
  ordered.reserve(records->size());
  for (const auto& r : *records) ordered.push_back(&r);
  std::sort(ordered.begin(), ordered.end(),
            [](const ProbeRecord* a, const ProbeRecord* b) { return a->sent() < b->sent(); });

  Aggregator agg(static_cast<std::size_t>(max_node) + 1, schemes, AggregatorConfig{});
  for (const ProbeRecord* r : ordered) {
    agg.note_activity(r->src, r->sent());
    agg.add(*r);
  }
  agg.finish(ordered.back()->sent() + Duration::hours(1));

  // Report rows: inferred direct/lat first if their sources are present,
  // then every probed scheme.
  std::vector<PairScheme> rows;
  if (scheme_set.count(PairScheme::kDirectRand) && !scheme_set.count(PairScheme::kDirect)) {
    rows.push_back(PairScheme::kDirect);
  }
  if (scheme_set.count(PairScheme::kLatLoss) && !scheme_set.count(PairScheme::kLat)) {
    rows.push_back(PairScheme::kLat);
  }
  rows.insert(rows.end(), schemes.begin(), schemes.end());

  const auto table = make_loss_table(agg, rows);
  TextTable t({"Type", "1lp", "2lp", "totlp", "clp", "lat"});
  t.set_align(0, TextTable::Align::kLeft);
  for (const auto& r : table) {
    t.add_row({r.name, TextTable::num(r.lp1),
               TextTable::opt_num(r.lp2.has_value(), r.lp2.value_or(0)),
               TextTable::num(r.totlp), TextTable::opt_num(r.clp.has_value(), r.clp.value_or(0)),
               TextTable::num(r.lat_ms)});
  }
  t.print(std::cout);
  return 0;
}

int cmd_csv(const std::string& path) {
  const auto records = load(path);
  if (!records) return 1;
  CsvWriter csv(std::cout);
  csv.row({"scheme", "src", "dst", "probe_id", "copy", "tag", "via", "delivered", "cause",
           "host_drop", "sent_ns", "latency_ns"});
  for (const auto& r : *records) {
    for (std::uint8_t i = 0; i < r.copy_count; ++i) {
      const CopyRecord& c = r.copies[i];
      csv.row({std::string(to_string(r.scheme)), TextTable::num(static_cast<std::int64_t>(r.src)),
               TextTable::num(static_cast<std::int64_t>(r.dst)),
               TextTable::num(static_cast<std::int64_t>(r.probe_id)),
               TextTable::num(static_cast<std::int64_t>(i)), std::string(to_string(c.tag)),
               c.via == kDirectVia ? "direct" : TextTable::num(static_cast<std::int64_t>(c.via)),
               c.delivered ? "1" : "0", std::string(to_string(c.cause)),
               c.host_drop ? "1" : "0",
               TextTable::num(c.sent.nanos_since_epoch()),
               TextTable::num(c.latency.count_nanos())});
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "capture") return cmd_capture(argc, argv);
  if (argc < 3) return usage();
  if (cmd == "inspect") return cmd_inspect(argv[2]);
  if (cmd == "table") return cmd_table(argv[2]);
  if (cmd == "csv") return cmd_csv(argv[2]);
  return usage();
}
