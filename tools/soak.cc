// soak: crash-recovery soak harness for the fault-matrix simulator.
//
// Streams a long fault schedule (a canonical scenario, the built-in
// "day-stream" composite, or a DSL file) through a SimWorld with
// periodic checkpoints. At every checkpoint the runtime invariant
// auditor runs across all layers; at a configurable cadence the world
// is destroyed and restored from the last snapshot (in memory, or
// through real files when --snapshot-dir is given). With --verify an
// uninterrupted twin runs first and the final reports are compared
// byte for byte.
//
// With --workload the same kill/restore loop drives a WorkloadWorld
// (traffic-matrix flows + adaptive redundancy) instead of a SimWorld;
// --policy picks the redundancy policy under test.
//
// Exit codes: 0 clean; 1 audit violation, report divergence or
// snapshot I/O failure; 2 usage error.
//
//   soak --scenario link-flap --scheme hybrid --hours 24
//        --checkpoint-every 1000 --kill-every 3 --snapshot-dir /tmp/s --verify
//   soak --workload --scenario provider-blackout --policy adaptive --quick --verify

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault_matrix.h"
#include "fault/fault.h"
#include "fault/scenarios.h"
#include "snapshot/audit.h"
#include "snapshot/codec.h"
#include "snapshot/snapshot.h"
#include "snapshot/world.h"
#include "workload/world.h"

using namespace ronpath;

namespace {

// A synthesized day of recurring faults with co-prime periods; the
// checked-in soak test streams the same shape.
constexpr std::string_view kDayStreamDsl =
    "every 2700s down link 0->1 for 120s\n"
    "every 5400s crash node 2 for 300s\n"
    "every 4500s lsa-loss node 0 for 180s\n"
    "every 7200s down site 3 provider for 240s\n"
    "every 1800s flap link 1->0 for 20s\n";

struct SoakOptions {
  std::string scenario = "day-stream";
  FaultScheme scheme = FaultScheme::kHybrid;
  std::uint64_t seed = 42;
  std::size_t nodes = 6;
  Duration measured = Duration::hours(24);
  Duration send_interval = Duration::seconds(10);
  std::size_t checkpoint_every = 1000;  // sends between checkpoints
  std::size_t kill_every = 3;           // kill/restore at every k-th checkpoint (0 = never)
  int shards = 0;                       // > 0: sharded underlay discipline
  std::size_t synth_nodes = 0;          // > 0: synthetic hierarchical topology
  std::size_t fanout = 0;               // > 0: bandwidth-capped overlay
  std::size_t landmarks = 8;
  bool lazy = false;  // materialize underlay cores on demand
  bool audit = true;
  bool verify = false;
  bool workload = false;  // soak a WorkloadWorld instead of a SimWorld
  WorkloadPolicy policy = WorkloadPolicy::kAdaptive;
  std::string snapshot_dir;  // empty = snapshots stay in memory
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: soak [--scenario NAME|day-stream|FILE] [--scheme direct|reactive|mesh|hybrid]\n"
      "            [--seed N] [--nodes N] [--hours H] [--send-interval-ms M]\n"
      "            [--checkpoint-every SENDS] [--kill-every K] [--shards K] [--no-audit]\n"
      "            [--synth-nodes N] [--fanout K] [--landmarks L] [--lazy]\n"
      "            [--snapshot-dir DIR] [--verify] [--quick]\n"
      "            [--workload] [--policy probe-only|static-2x|adaptive]\n");
  std::exit(code);
}

std::int64_t parse_int(const char* flag, const char* text, std::int64_t lo, std::int64_t hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < lo || v > hi) {
    std::fprintf(stderr, "%s: expected an integer in [%lld, %lld], got \"%s\"\n", flag,
                 static_cast<long long>(lo), static_cast<long long>(hi), text);
    std::exit(2);
  }
  return v;
}

WorkloadPolicy parse_policy(const char* text) {
  for (const WorkloadPolicy p : all_workload_policies()) {
    if (to_string(p) == text) return p;
  }
  std::fprintf(stderr, "--policy: unknown policy \"%s\" (want probe-only|static-2x|adaptive)\n",
               text);
  std::exit(2);
}

FaultScheme parse_scheme(const char* text) {
  for (const FaultScheme s : all_fault_schemes()) {
    if (to_string(s) == text) return s;
  }
  std::fprintf(stderr, "--scheme: unknown scheme \"%s\"\n", text);
  std::exit(2);
}

SoakOptions parse_args(int argc, char** argv) {
  SoakOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      opt.scenario = next();
    } else if (arg == "--scheme") {
      opt.scheme = parse_scheme(next());
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(
          parse_int("--seed", next(), 0, std::numeric_limits<std::int64_t>::max()));
    } else if (arg == "--nodes") {
      opt.nodes = static_cast<std::size_t>(parse_int("--nodes", next(), 3, 16));
    } else if (arg == "--hours") {
      opt.measured = Duration::hours(parse_int("--hours", next(), 1, 24 * 365));
    } else if (arg == "--send-interval-ms") {
      opt.send_interval = Duration::millis(parse_int("--send-interval-ms", next(), 1, 60'000));
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every =
          static_cast<std::size_t>(parse_int("--checkpoint-every", next(), 1, 1'000'000'000));
    } else if (arg == "--kill-every") {
      opt.kill_every = static_cast<std::size_t>(parse_int("--kill-every", next(), 0, 1'000'000));
    } else if (arg == "--shards") {
      opt.shards = static_cast<int>(parse_int("--shards", next(), 1, 256));
    } else if (arg == "--synth-nodes") {
      opt.synth_nodes = static_cast<std::size_t>(parse_int("--synth-nodes", next(), 4, 65'000));
    } else if (arg == "--fanout") {
      opt.fanout = static_cast<std::size_t>(parse_int("--fanout", next(), 1, 65'534));
    } else if (arg == "--landmarks") {
      opt.landmarks = static_cast<std::size_t>(parse_int("--landmarks", next(), 0, 65'534));
    } else if (arg == "--lazy") {
      opt.lazy = true;
    } else if (arg == "--no-audit") {
      opt.audit = false;
    } else if (arg == "--snapshot-dir") {
      opt.snapshot_dir = next();
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--workload") {
      opt.workload = true;
    } else if (arg == "--policy") {
      opt.policy = parse_policy(next());
    } else if (arg == "--quick") {
      opt.measured = Duration::minutes(10);
      opt.send_interval = Duration::seconds(1);
      opt.checkpoint_every = 120;
    } else if (arg == "--help") {
      usage(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(2);
    }
  }
  return opt;
}

// Resolves --scenario into a Scenario whose strings outlive the world
// (SimWorld copies them; `storage` keeps the DSL alive for parsing
// diagnostics here).
Scenario resolve_scenario(const SoakOptions& opt, const FaultMatrixConfig& cfg,
                          std::string& storage) {
  if (const Scenario* s = find_scenario(opt.scenario)) return *s;
  Scenario s;
  if (opt.scenario == "day-stream") {
    storage = std::string(kDayStreamDsl);
    s.name = "day-stream";
    s.summary = "built-in recurring fault stream";
  } else {
    std::ifstream in(opt.scenario);
    if (!in) {
      std::fprintf(stderr,
                   "--scenario: \"%s\" is neither a canonical scenario, \"day-stream\", nor a "
                   "readable DSL file; known scenarios:\n",
                   opt.scenario.c_str());
      for (const Scenario& known : canonical_scenarios()) {
        std::fprintf(stderr, "  %s\n", std::string(known.name).c_str());
      }
      std::exit(2);
    }
    std::ostringstream text;
    text << in.rdbuf();
    storage = text.str();
    s.name = opt.scenario;
    s.summary = "user-supplied fault schedule";
  }
  std::string parse_error;
  if (!FaultSchedule::parse(storage, &parse_error)) {
    std::fprintf(stderr, "--scenario %s: %s\n", opt.scenario.c_str(), parse_error.c_str());
    std::exit(2);
  }
  s.dsl = storage;
  s.fault_start = TimePoint::epoch() + cfg.warmup;
  s.fault_duration = cfg.measured;
  s.routable = true;
  return s;
}

// Audits the world; on violations prints the report and exits 1.
void audit_or_die(const SimWorld& world, const SoakOptions& opt, const char* where) {
  if (!opt.audit) return;
  const std::vector<std::string> violations = audit_world(world);
  if (!violations.empty()) {
    std::fprintf(stderr, "invariant audit failed %s:\n%s", where,
                 format_audit(violations).c_str());
    std::exit(1);
  }
}

void workload_audit_or_die(const WorkloadWorld& world, const SoakOptions& opt,
                           const char* where) {
  if (!opt.audit) return;
  std::vector<std::string> violations;
  world.check_invariants(violations);
  if (!violations.empty()) {
    std::fprintf(stderr, "workload invariant audit failed %s:\n", where);
    for (const std::string& v : violations) std::fprintf(stderr, "  %s\n", v.c_str());
    std::exit(1);
  }
}

// The SimWorld loop, rehosted on a WorkloadWorld: checkpoint on packet
// counts, kill/restore through the same sealed envelope, byte-compare
// against an uninterrupted twin with --verify.
int run_workload_soak(const SoakOptions& opt, const Scenario& scenario) {
  WorkloadConfig cfg;
  cfg.cell.seed = opt.seed;
  cfg.cell.shards = opt.shards;
  if (opt.measured < cfg.cell.measured) cfg.spec.population /= 4.0;  // --quick

  std::string expected;
  if (opt.verify) {
    WorkloadWorld reference(scenario, opt.policy, cfg, opt.seed);
    reference.run_to_end();
    expected = reference.report();
    std::printf("verify: uninterrupted reference run complete (%zu packets)\n",
                reference.total_packets());
  }

  auto world = std::make_unique<WorkloadWorld>(scenario, opt.policy, cfg, opt.seed);
  const std::size_t total = world->total_packets();
  std::printf("workload soak: %s / %s, %zu packets, checkpoint every %zu, kill every %zu%s\n",
              std::string(scenario.name).c_str(), std::string(to_string(opt.policy)).c_str(),
              total, opt.checkpoint_every, opt.kill_every,
              opt.snapshot_dir.empty() ? " (snapshots in memory)" : "");

  std::size_t checkpoints = 0;
  std::size_t kills = 0;
  for (std::size_t next = opt.checkpoint_every; next < total; next += opt.checkpoint_every) {
    world->advance_to(next);
    workload_audit_or_die(*world, opt, ("at packet " + std::to_string(next)).c_str());
    ++checkpoints;

    snap::Encoder e;
    world->save_state(e);
    const std::uint64_t fp = world->fingerprint();
    std::vector<std::uint8_t> file;
    std::string path;
    if (opt.snapshot_dir.empty()) {
      file = snap::seal(fp, e.bytes());
    } else {
      path = opt.snapshot_dir + "/soak-workload-" + std::string(scenario.name) + "-" +
             std::to_string(next) + ".snap";
      snap::write_file(path, fp, e.bytes());
    }

    if (opt.kill_every != 0 && checkpoints % opt.kill_every == 0) {
      world.reset();  // the crash
      auto restored = std::make_unique<WorkloadWorld>(scenario, opt.policy, cfg, opt.seed);
      const std::vector<std::uint8_t> payload =
          path.empty() ? snap::unseal(file, restored->fingerprint())
                       : snap::read_file(path, restored->fingerprint());
      snap::Decoder d(payload);
      restored->restore_state(d);
      workload_audit_or_die(*restored, opt,
                            ("after restore at packet " + std::to_string(next)).c_str());
      world = std::move(restored);
      ++kills;
      std::printf("  killed and restored at packet %zu\n", next);
    }
  }
  world->run_to_end();
  workload_audit_or_die(*world, opt, "at end of run");

  const std::string report = world->report();
  std::printf("%s", report.c_str());
  std::printf("workload soak complete: %zu checkpoints, %zu kill/restore cycles%s\n",
              checkpoints, kills, opt.audit ? ", audits clean" : "");

  if (opt.verify) {
    if (report != expected) {
      std::fprintf(stderr,
                   "VERIFY FAILED: restored run diverged from the uninterrupted run\n"
                   "--- uninterrupted ---\n%s--- soak ---\n%s",
                   expected.c_str(), report.c_str());
      return 1;
    }
    std::printf("verify: report byte-identical to the uninterrupted run\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const SoakOptions opt = parse_args(argc, argv);
  FaultMatrixConfig cfg;
  cfg.node_count = opt.nodes;
  cfg.seed = opt.seed;
  cfg.measured = opt.measured;
  cfg.send_interval = opt.send_interval;
  cfg.shards = opt.shards;
  cfg.synth_nodes = opt.synth_nodes;
  cfg.overlay_fanout = opt.fanout;
  cfg.overlay_landmarks = opt.landmarks;
  cfg.lazy_underlay = opt.lazy;
  std::string dsl_storage;
  const Scenario scenario = resolve_scenario(opt, cfg, dsl_storage);

  if (opt.workload) {
    try {
      return run_workload_soak(opt, scenario);
    } catch (const snap::SnapshotError& err) {
      std::fprintf(stderr, "snapshot error: %s\n", err.what());
      return 1;
    } catch (const std::exception& err) {
      std::fprintf(stderr, "error: %s\n", err.what());
      return 1;
    }
  }

  try {
    std::string expected;
    if (opt.verify) {
      SimWorld reference(scenario, opt.scheme, cfg, opt.seed);
      reference.run_to_end();
      expected = reference.report();
      std::printf("verify: uninterrupted reference run complete (%zu sends)\n",
                  reference.total_sends());
    }

    auto world = std::make_unique<SimWorld>(scenario, opt.scheme, cfg, opt.seed);
    const std::size_t total = world->total_sends();
    std::printf("soak: %s / %s, %zu nodes, %zu sends, checkpoint every %zu, kill every %zu%s\n",
                std::string(scenario.name).c_str(), std::string(to_string(opt.scheme)).c_str(),
                opt.synth_nodes > 0 ? opt.synth_nodes : opt.nodes, total, opt.checkpoint_every,
                opt.kill_every,
                opt.snapshot_dir.empty() ? " (snapshots in memory)" : "");

    std::size_t checkpoints = 0;
    std::size_t kills = 0;
    for (std::size_t next = opt.checkpoint_every; next < total; next += opt.checkpoint_every) {
      world->advance_to(next);
      audit_or_die(*world, opt, ("at send " + std::to_string(next)).c_str());
      ++checkpoints;

      snap::Encoder e;
      world->save_state(e);
      const std::uint64_t fp = world->fingerprint();
      std::vector<std::uint8_t> file;
      std::string path;
      if (opt.snapshot_dir.empty()) {
        file = snap::seal(fp, e.bytes());
      } else {
        path = opt.snapshot_dir + "/soak-" + std::string(scenario.name) + "-" +
               std::to_string(next) + ".snap";
        snap::write_file(path, fp, e.bytes());
      }

      if (opt.kill_every != 0 && checkpoints % opt.kill_every == 0) {
        world.reset();  // the crash
        auto restored = std::make_unique<SimWorld>(scenario, opt.scheme, cfg, opt.seed);
        const std::vector<std::uint8_t> payload =
            path.empty() ? snap::unseal(file, restored->fingerprint())
                         : snap::read_file(path, restored->fingerprint());
        snap::Decoder d(payload);
        restored->restore_state(d);
        audit_or_die(*restored, opt, ("after restore at send " + std::to_string(next)).c_str());
        world = std::move(restored);
        ++kills;
        std::printf("  killed and restored at send %zu\n", next);
      }
    }
    world->run_to_end();
    audit_or_die(*world, opt, "at end of run");

    const std::string report = world->report();
    std::printf("%s", report.c_str());
    std::printf("soak complete: %zu checkpoints, %zu kill/restore cycles%s\n", checkpoints,
                kills, opt.audit ? ", audits clean" : "");

    if (opt.verify) {
      if (report != expected) {
        std::fprintf(stderr,
                     "VERIFY FAILED: restored run diverged from the uninterrupted run\n"
                     "--- uninterrupted ---\n%s--- soak ---\n%s",
                     expected.c_str(), report.c_str());
        return 1;
      }
      std::printf("verify: report byte-identical to the uninterrupted run\n");
    }
  } catch (const snap::SnapshotError& err) {
    std::fprintf(stderr, "snapshot error: %s\n", err.what());
    return 1;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
  return 0;
}
