# Empty compiler generated dependencies file for ronpath_fec.
# This may be replaced when dependencies are built.
