
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fec/gf256.cc" "src/fec/CMakeFiles/ronpath_fec.dir/gf256.cc.o" "gcc" "src/fec/CMakeFiles/ronpath_fec.dir/gf256.cc.o.d"
  "/root/repo/src/fec/packet_fec.cc" "src/fec/CMakeFiles/ronpath_fec.dir/packet_fec.cc.o" "gcc" "src/fec/CMakeFiles/ronpath_fec.dir/packet_fec.cc.o.d"
  "/root/repo/src/fec/reed_solomon.cc" "src/fec/CMakeFiles/ronpath_fec.dir/reed_solomon.cc.o" "gcc" "src/fec/CMakeFiles/ronpath_fec.dir/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ronpath_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
