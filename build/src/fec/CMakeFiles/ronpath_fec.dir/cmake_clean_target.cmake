file(REMOVE_RECURSE
  "libronpath_fec.a"
)
