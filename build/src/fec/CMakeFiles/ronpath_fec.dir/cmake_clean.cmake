file(REMOVE_RECURSE
  "CMakeFiles/ronpath_fec.dir/gf256.cc.o"
  "CMakeFiles/ronpath_fec.dir/gf256.cc.o.d"
  "CMakeFiles/ronpath_fec.dir/packet_fec.cc.o"
  "CMakeFiles/ronpath_fec.dir/packet_fec.cc.o.d"
  "CMakeFiles/ronpath_fec.dir/reed_solomon.cc.o"
  "CMakeFiles/ronpath_fec.dir/reed_solomon.cc.o.d"
  "libronpath_fec.a"
  "libronpath_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
