# Empty compiler generated dependencies file for ronpath_core.
# This may be replaced when dependencies are built.
