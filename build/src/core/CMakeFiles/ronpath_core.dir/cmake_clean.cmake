file(REMOVE_RECURSE
  "CMakeFiles/ronpath_core.dir/driver.cc.o"
  "CMakeFiles/ronpath_core.dir/driver.cc.o.d"
  "CMakeFiles/ronpath_core.dir/experiment.cc.o"
  "CMakeFiles/ronpath_core.dir/experiment.cc.o.d"
  "CMakeFiles/ronpath_core.dir/testbed.cc.o"
  "CMakeFiles/ronpath_core.dir/testbed.cc.o.d"
  "libronpath_core.a"
  "libronpath_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
