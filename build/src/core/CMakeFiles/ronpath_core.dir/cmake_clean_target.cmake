file(REMOVE_RECURSE
  "libronpath_core.a"
)
