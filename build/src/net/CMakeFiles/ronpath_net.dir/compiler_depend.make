# Empty compiler generated dependencies file for ronpath_net.
# This may be replaced when dependencies are built.
