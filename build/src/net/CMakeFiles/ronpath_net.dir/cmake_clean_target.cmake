file(REMOVE_RECURSE
  "libronpath_net.a"
)
