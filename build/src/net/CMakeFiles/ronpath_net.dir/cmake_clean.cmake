file(REMOVE_RECURSE
  "CMakeFiles/ronpath_net.dir/config.cc.o"
  "CMakeFiles/ronpath_net.dir/config.cc.o.d"
  "CMakeFiles/ronpath_net.dir/loss_process.cc.o"
  "CMakeFiles/ronpath_net.dir/loss_process.cc.o.d"
  "CMakeFiles/ronpath_net.dir/network.cc.o"
  "CMakeFiles/ronpath_net.dir/network.cc.o.d"
  "CMakeFiles/ronpath_net.dir/topology.cc.o"
  "CMakeFiles/ronpath_net.dir/topology.cc.o.d"
  "libronpath_net.a"
  "libronpath_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
