file(REMOVE_RECURSE
  "libronpath_routing.a"
)
