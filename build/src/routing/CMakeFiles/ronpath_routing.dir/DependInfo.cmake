
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/arq.cc" "src/routing/CMakeFiles/ronpath_routing.dir/arq.cc.o" "gcc" "src/routing/CMakeFiles/ronpath_routing.dir/arq.cc.o.d"
  "/root/repo/src/routing/hybrid.cc" "src/routing/CMakeFiles/ronpath_routing.dir/hybrid.cc.o" "gcc" "src/routing/CMakeFiles/ronpath_routing.dir/hybrid.cc.o.d"
  "/root/repo/src/routing/multipath.cc" "src/routing/CMakeFiles/ronpath_routing.dir/multipath.cc.o" "gcc" "src/routing/CMakeFiles/ronpath_routing.dir/multipath.cc.o.d"
  "/root/repo/src/routing/schemes.cc" "src/routing/CMakeFiles/ronpath_routing.dir/schemes.cc.o" "gcc" "src/routing/CMakeFiles/ronpath_routing.dir/schemes.cc.o.d"
  "/root/repo/src/routing/spread_fec.cc" "src/routing/CMakeFiles/ronpath_routing.dir/spread_fec.cc.o" "gcc" "src/routing/CMakeFiles/ronpath_routing.dir/spread_fec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/ronpath_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/ronpath_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/ronpath_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/ronpath_event.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ronpath_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ronpath_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
