# Empty compiler generated dependencies file for ronpath_routing.
# This may be replaced when dependencies are built.
