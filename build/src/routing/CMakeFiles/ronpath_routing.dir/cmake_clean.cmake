file(REMOVE_RECURSE
  "CMakeFiles/ronpath_routing.dir/arq.cc.o"
  "CMakeFiles/ronpath_routing.dir/arq.cc.o.d"
  "CMakeFiles/ronpath_routing.dir/hybrid.cc.o"
  "CMakeFiles/ronpath_routing.dir/hybrid.cc.o.d"
  "CMakeFiles/ronpath_routing.dir/multipath.cc.o"
  "CMakeFiles/ronpath_routing.dir/multipath.cc.o.d"
  "CMakeFiles/ronpath_routing.dir/schemes.cc.o"
  "CMakeFiles/ronpath_routing.dir/schemes.cc.o.d"
  "CMakeFiles/ronpath_routing.dir/spread_fec.cc.o"
  "CMakeFiles/ronpath_routing.dir/spread_fec.cc.o.d"
  "libronpath_routing.a"
  "libronpath_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
