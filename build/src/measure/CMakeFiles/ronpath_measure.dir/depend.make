# Empty dependencies file for ronpath_measure.
# This may be replaced when dependencies are built.
