file(REMOVE_RECURSE
  "libronpath_measure.a"
)
