file(REMOVE_RECURSE
  "CMakeFiles/ronpath_measure.dir/aggregator.cc.o"
  "CMakeFiles/ronpath_measure.dir/aggregator.cc.o.d"
  "CMakeFiles/ronpath_measure.dir/liveness.cc.o"
  "CMakeFiles/ronpath_measure.dir/liveness.cc.o.d"
  "CMakeFiles/ronpath_measure.dir/records.cc.o"
  "CMakeFiles/ronpath_measure.dir/records.cc.o.d"
  "CMakeFiles/ronpath_measure.dir/report.cc.o"
  "CMakeFiles/ronpath_measure.dir/report.cc.o.d"
  "libronpath_measure.a"
  "libronpath_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
