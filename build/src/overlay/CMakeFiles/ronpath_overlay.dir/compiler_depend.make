# Empty compiler generated dependencies file for ronpath_overlay.
# This may be replaced when dependencies are built.
