file(REMOVE_RECURSE
  "CMakeFiles/ronpath_overlay.dir/estimator.cc.o"
  "CMakeFiles/ronpath_overlay.dir/estimator.cc.o.d"
  "CMakeFiles/ronpath_overlay.dir/link_state.cc.o"
  "CMakeFiles/ronpath_overlay.dir/link_state.cc.o.d"
  "CMakeFiles/ronpath_overlay.dir/overlay.cc.o"
  "CMakeFiles/ronpath_overlay.dir/overlay.cc.o.d"
  "CMakeFiles/ronpath_overlay.dir/router.cc.o"
  "CMakeFiles/ronpath_overlay.dir/router.cc.o.d"
  "libronpath_overlay.a"
  "libronpath_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
