
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/estimator.cc" "src/overlay/CMakeFiles/ronpath_overlay.dir/estimator.cc.o" "gcc" "src/overlay/CMakeFiles/ronpath_overlay.dir/estimator.cc.o.d"
  "/root/repo/src/overlay/link_state.cc" "src/overlay/CMakeFiles/ronpath_overlay.dir/link_state.cc.o" "gcc" "src/overlay/CMakeFiles/ronpath_overlay.dir/link_state.cc.o.d"
  "/root/repo/src/overlay/overlay.cc" "src/overlay/CMakeFiles/ronpath_overlay.dir/overlay.cc.o" "gcc" "src/overlay/CMakeFiles/ronpath_overlay.dir/overlay.cc.o.d"
  "/root/repo/src/overlay/router.cc" "src/overlay/CMakeFiles/ronpath_overlay.dir/router.cc.o" "gcc" "src/overlay/CMakeFiles/ronpath_overlay.dir/router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ronpath_util.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/ronpath_event.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ronpath_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/ronpath_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
