file(REMOVE_RECURSE
  "libronpath_overlay.a"
)
