file(REMOVE_RECURSE
  "libronpath_event.a"
)
