# Empty dependencies file for ronpath_event.
# This may be replaced when dependencies are built.
