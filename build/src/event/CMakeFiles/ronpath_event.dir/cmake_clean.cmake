file(REMOVE_RECURSE
  "CMakeFiles/ronpath_event.dir/scheduler.cc.o"
  "CMakeFiles/ronpath_event.dir/scheduler.cc.o.d"
  "libronpath_event.a"
  "libronpath_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
