file(REMOVE_RECURSE
  "libronpath_util.a"
)
