file(REMOVE_RECURSE
  "CMakeFiles/ronpath_util.dir/rng.cc.o"
  "CMakeFiles/ronpath_util.dir/rng.cc.o.d"
  "CMakeFiles/ronpath_util.dir/stats.cc.o"
  "CMakeFiles/ronpath_util.dir/stats.cc.o.d"
  "CMakeFiles/ronpath_util.dir/table.cc.o"
  "CMakeFiles/ronpath_util.dir/table.cc.o.d"
  "CMakeFiles/ronpath_util.dir/time.cc.o"
  "CMakeFiles/ronpath_util.dir/time.cc.o.d"
  "libronpath_util.a"
  "libronpath_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
