# Empty dependencies file for ronpath_util.
# This may be replaced when dependencies are built.
