file(REMOVE_RECURSE
  "CMakeFiles/ronpath_wire.dir/packet.cc.o"
  "CMakeFiles/ronpath_wire.dir/packet.cc.o.d"
  "libronpath_wire.a"
  "libronpath_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
