file(REMOVE_RECURSE
  "libronpath_wire.a"
)
