# Empty compiler generated dependencies file for ronpath_wire.
# This may be replaced when dependencies are built.
