
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/bounds.cc" "src/model/CMakeFiles/ronpath_model.dir/bounds.cc.o" "gcc" "src/model/CMakeFiles/ronpath_model.dir/bounds.cc.o.d"
  "/root/repo/src/model/design_space.cc" "src/model/CMakeFiles/ronpath_model.dir/design_space.cc.o" "gcc" "src/model/CMakeFiles/ronpath_model.dir/design_space.cc.o.d"
  "/root/repo/src/model/fec_analysis.cc" "src/model/CMakeFiles/ronpath_model.dir/fec_analysis.cc.o" "gcc" "src/model/CMakeFiles/ronpath_model.dir/fec_analysis.cc.o.d"
  "/root/repo/src/model/overhead.cc" "src/model/CMakeFiles/ronpath_model.dir/overhead.cc.o" "gcc" "src/model/CMakeFiles/ronpath_model.dir/overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ronpath_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
