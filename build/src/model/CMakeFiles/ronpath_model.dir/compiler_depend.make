# Empty compiler generated dependencies file for ronpath_model.
# This may be replaced when dependencies are built.
