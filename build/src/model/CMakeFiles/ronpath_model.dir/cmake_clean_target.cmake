file(REMOVE_RECURSE
  "libronpath_model.a"
)
