file(REMOVE_RECURSE
  "CMakeFiles/ronpath_model.dir/bounds.cc.o"
  "CMakeFiles/ronpath_model.dir/bounds.cc.o.d"
  "CMakeFiles/ronpath_model.dir/design_space.cc.o"
  "CMakeFiles/ronpath_model.dir/design_space.cc.o.d"
  "CMakeFiles/ronpath_model.dir/fec_analysis.cc.o"
  "CMakeFiles/ronpath_model.dir/fec_analysis.cc.o.d"
  "CMakeFiles/ronpath_model.dir/overhead.cc.o"
  "CMakeFiles/ronpath_model.dir/overhead.cc.o.d"
  "libronpath_model.a"
  "libronpath_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronpath_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
