# Empty dependencies file for fec_transfer.
# This may be replaced when dependencies are built.
