file(REMOVE_RECURSE
  "CMakeFiles/fec_transfer.dir/fec_transfer.cpp.o"
  "CMakeFiles/fec_transfer.dir/fec_transfer.cpp.o.d"
  "fec_transfer"
  "fec_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fec_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
