file(REMOVE_RECURSE
  "CMakeFiles/adaptive_transport.dir/adaptive_transport.cpp.o"
  "CMakeFiles/adaptive_transport.dir/adaptive_transport.cpp.o.d"
  "adaptive_transport"
  "adaptive_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
