# Empty dependencies file for resilient_streaming.
# This may be replaced when dependencies are built.
