file(REMOVE_RECURSE
  "CMakeFiles/resilient_streaming.dir/resilient_streaming.cpp.o"
  "CMakeFiles/resilient_streaming.dir/resilient_streaming.cpp.o.d"
  "resilient_streaming"
  "resilient_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilient_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
