# Empty dependencies file for probing_daemon.
# This may be replaced when dependencies are built.
