file(REMOVE_RECURSE
  "CMakeFiles/probing_daemon.dir/probing_daemon.cpp.o"
  "CMakeFiles/probing_daemon.dir/probing_daemon.cpp.o.d"
  "probing_daemon"
  "probing_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probing_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
