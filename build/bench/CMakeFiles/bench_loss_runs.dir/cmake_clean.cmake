file(REMOVE_RECURSE
  "CMakeFiles/bench_loss_runs.dir/bench_loss_runs.cc.o"
  "CMakeFiles/bench_loss_runs.dir/bench_loss_runs.cc.o.d"
  "bench_loss_runs"
  "bench_loss_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loss_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
