# Empty compiler generated dependencies file for bench_loss_runs.
# This may be replaced when dependencies are built.
