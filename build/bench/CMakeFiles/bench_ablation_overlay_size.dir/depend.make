# Empty dependencies file for bench_ablation_overlay_size.
# This may be replaced when dependencies are built.
