file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid_sweetspot.dir/bench_hybrid_sweetspot.cc.o"
  "CMakeFiles/bench_hybrid_sweetspot.dir/bench_hybrid_sweetspot.cc.o.d"
  "bench_hybrid_sweetspot"
  "bench_hybrid_sweetspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid_sweetspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
