# Empty compiler generated dependencies file for bench_hybrid_sweetspot.
# This may be replaced when dependencies are built.
