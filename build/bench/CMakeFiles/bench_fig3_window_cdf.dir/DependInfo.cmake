
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_window_cdf.cc" "bench/CMakeFiles/bench_fig3_window_cdf.dir/bench_fig3_window_cdf.cc.o" "gcc" "bench/CMakeFiles/bench_fig3_window_cdf.dir/bench_fig3_window_cdf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ronpath_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ronpath_model.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/ronpath_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/ronpath_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ronpath_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/ronpath_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/ronpath_event.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ronpath_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/ronpath_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ronpath_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
