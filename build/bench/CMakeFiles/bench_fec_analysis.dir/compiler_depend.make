# Empty compiler generated dependencies file for bench_fec_analysis.
# This may be replaced when dependencies are built.
