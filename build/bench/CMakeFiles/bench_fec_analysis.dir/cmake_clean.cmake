file(REMOVE_RECURSE
  "CMakeFiles/bench_fec_analysis.dir/bench_fec_analysis.cc.o"
  "CMakeFiles/bench_fec_analysis.dir/bench_fec_analysis.cc.o.d"
  "bench_fec_analysis"
  "bench_fec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
