file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_tactics.dir/bench_table4_tactics.cc.o"
  "CMakeFiles/bench_table4_tactics.dir/bench_table4_tactics.cc.o.d"
  "bench_table4_tactics"
  "bench_table4_tactics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_tactics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
