file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_highloss.dir/bench_table6_highloss.cc.o"
  "CMakeFiles/bench_table6_highloss.dir/bench_table6_highloss.cc.o.d"
  "bench_table6_highloss"
  "bench_table6_highloss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_highloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
