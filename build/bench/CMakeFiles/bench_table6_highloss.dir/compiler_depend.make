# Empty compiler generated dependencies file for bench_table6_highloss.
# This may be replaced when dependencies are built.
