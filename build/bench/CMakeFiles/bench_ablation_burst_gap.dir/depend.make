# Empty dependencies file for bench_ablation_burst_gap.
# This may be replaced when dependencies are built.
