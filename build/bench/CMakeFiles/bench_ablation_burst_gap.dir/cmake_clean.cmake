file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_burst_gap.dir/bench_ablation_burst_gap.cc.o"
  "CMakeFiles/bench_ablation_burst_gap.dir/bench_ablation_burst_gap.cc.o.d"
  "bench_ablation_burst_gap"
  "bench_ablation_burst_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_burst_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
