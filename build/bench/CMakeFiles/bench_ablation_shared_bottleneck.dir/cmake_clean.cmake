file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shared_bottleneck.dir/bench_ablation_shared_bottleneck.cc.o"
  "CMakeFiles/bench_ablation_shared_bottleneck.dir/bench_ablation_shared_bottleneck.cc.o.d"
  "bench_ablation_shared_bottleneck"
  "bench_ablation_shared_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shared_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
