file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_probe_interval.dir/bench_ablation_probe_interval.cc.o"
  "CMakeFiles/bench_ablation_probe_interval.dir/bench_ablation_probe_interval.cc.o.d"
  "bench_ablation_probe_interval"
  "bench_ablation_probe_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_probe_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
