file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_two_hop.dir/bench_ablation_two_hop.cc.o"
  "CMakeFiles/bench_ablation_two_hop.dir/bench_ablation_two_hop.cc.o.d"
  "bench_ablation_two_hop"
  "bench_ablation_two_hop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_two_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
