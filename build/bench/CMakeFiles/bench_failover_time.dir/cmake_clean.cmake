file(REMOVE_RECURSE
  "CMakeFiles/bench_failover_time.dir/bench_failover_time.cc.o"
  "CMakeFiles/bench_failover_time.dir/bench_failover_time.cc.o.d"
  "bench_failover_time"
  "bench_failover_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failover_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
