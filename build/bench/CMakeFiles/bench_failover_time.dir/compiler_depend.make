# Empty compiler generated dependencies file for bench_failover_time.
# This may be replaced when dependencies are built.
