file(REMOVE_RECURSE
  "CMakeFiles/bench_fec_spread.dir/bench_fec_spread.cc.o"
  "CMakeFiles/bench_fec_spread.dir/bench_fec_spread.cc.o.d"
  "bench_fec_spread"
  "bench_fec_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fec_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
