# Empty dependencies file for bench_fec_spread.
# This may be replaced when dependencies are built.
