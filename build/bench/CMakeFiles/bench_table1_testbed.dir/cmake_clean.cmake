file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_testbed.dir/bench_table1_testbed.cc.o"
  "CMakeFiles/bench_table1_testbed.dir/bench_table1_testbed.cc.o.d"
  "bench_table1_testbed"
  "bench_table1_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
