# Empty dependencies file for bench_full_eval.
# This may be replaced when dependencies are built.
