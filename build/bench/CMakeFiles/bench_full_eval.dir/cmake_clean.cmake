file(REMOVE_RECURSE
  "CMakeFiles/bench_full_eval.dir/bench_full_eval.cc.o"
  "CMakeFiles/bench_full_eval.dir/bench_full_eval.cc.o.d"
  "bench_full_eval"
  "bench_full_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_full_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
