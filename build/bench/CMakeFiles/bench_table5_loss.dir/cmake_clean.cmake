file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_loss.dir/bench_table5_loss.cc.o"
  "CMakeFiles/bench_table5_loss.dir/bench_table5_loss.cc.o.d"
  "bench_table5_loss"
  "bench_table5_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
