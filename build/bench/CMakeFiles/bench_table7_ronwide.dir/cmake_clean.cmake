file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_ronwide.dir/bench_table7_ronwide.cc.o"
  "CMakeFiles/bench_table7_ronwide.dir/bench_table7_ronwide.cc.o.d"
  "bench_table7_ronwide"
  "bench_table7_ronwide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_ronwide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
