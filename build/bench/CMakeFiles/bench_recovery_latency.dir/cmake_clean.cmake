file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_latency.dir/bench_recovery_latency.cc.o"
  "CMakeFiles/bench_recovery_latency.dir/bench_recovery_latency.cc.o.d"
  "bench_recovery_latency"
  "bench_recovery_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
