file(REMOVE_RECURSE
  "CMakeFiles/wire_packet_test.dir/wire_packet_test.cc.o"
  "CMakeFiles/wire_packet_test.dir/wire_packet_test.cc.o.d"
  "wire_packet_test"
  "wire_packet_test.pdb"
  "wire_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
