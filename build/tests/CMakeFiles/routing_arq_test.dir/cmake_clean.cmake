file(REMOVE_RECURSE
  "CMakeFiles/routing_arq_test.dir/routing_arq_test.cc.o"
  "CMakeFiles/routing_arq_test.dir/routing_arq_test.cc.o.d"
  "routing_arq_test"
  "routing_arq_test.pdb"
  "routing_arq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_arq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
