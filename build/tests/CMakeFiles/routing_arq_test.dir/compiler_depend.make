# Empty compiler generated dependencies file for routing_arq_test.
# This may be replaced when dependencies are built.
