# Empty dependencies file for overlay_estimator_test.
# This may be replaced when dependencies are built.
