file(REMOVE_RECURSE
  "CMakeFiles/overlay_estimator_test.dir/overlay_estimator_test.cc.o"
  "CMakeFiles/overlay_estimator_test.dir/overlay_estimator_test.cc.o.d"
  "overlay_estimator_test"
  "overlay_estimator_test.pdb"
  "overlay_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
