file(REMOVE_RECURSE
  "CMakeFiles/measure_liveness_test.dir/measure_liveness_test.cc.o"
  "CMakeFiles/measure_liveness_test.dir/measure_liveness_test.cc.o.d"
  "measure_liveness_test"
  "measure_liveness_test.pdb"
  "measure_liveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
