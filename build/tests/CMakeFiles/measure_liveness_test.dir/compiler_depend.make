# Empty compiler generated dependencies file for measure_liveness_test.
# This may be replaced when dependencies are built.
