# Empty dependencies file for measure_records_test.
# This may be replaced when dependencies are built.
