file(REMOVE_RECURSE
  "CMakeFiles/measure_records_test.dir/measure_records_test.cc.o"
  "CMakeFiles/measure_records_test.dir/measure_records_test.cc.o.d"
  "measure_records_test"
  "measure_records_test.pdb"
  "measure_records_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_records_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
