# Empty dependencies file for net_config_test.
# This may be replaced when dependencies are built.
