file(REMOVE_RECURSE
  "CMakeFiles/net_config_test.dir/net_config_test.cc.o"
  "CMakeFiles/net_config_test.dir/net_config_test.cc.o.d"
  "net_config_test"
  "net_config_test.pdb"
  "net_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
