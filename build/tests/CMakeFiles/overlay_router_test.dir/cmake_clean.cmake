file(REMOVE_RECURSE
  "CMakeFiles/overlay_router_test.dir/overlay_router_test.cc.o"
  "CMakeFiles/overlay_router_test.dir/overlay_router_test.cc.o.d"
  "overlay_router_test"
  "overlay_router_test.pdb"
  "overlay_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
