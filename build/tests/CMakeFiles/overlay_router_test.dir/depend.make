# Empty dependencies file for overlay_router_test.
# This may be replaced when dependencies are built.
