file(REMOVE_RECURSE
  "CMakeFiles/measure_aggregator_test.dir/measure_aggregator_test.cc.o"
  "CMakeFiles/measure_aggregator_test.dir/measure_aggregator_test.cc.o.d"
  "measure_aggregator_test"
  "measure_aggregator_test.pdb"
  "measure_aggregator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
