# Empty compiler generated dependencies file for fec_rs_test.
# This may be replaced when dependencies are built.
