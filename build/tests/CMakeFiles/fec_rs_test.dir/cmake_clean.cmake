file(REMOVE_RECURSE
  "CMakeFiles/fec_rs_test.dir/fec_rs_test.cc.o"
  "CMakeFiles/fec_rs_test.dir/fec_rs_test.cc.o.d"
  "fec_rs_test"
  "fec_rs_test.pdb"
  "fec_rs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fec_rs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
