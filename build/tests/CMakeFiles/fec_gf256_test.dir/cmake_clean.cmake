file(REMOVE_RECURSE
  "CMakeFiles/fec_gf256_test.dir/fec_gf256_test.cc.o"
  "CMakeFiles/fec_gf256_test.dir/fec_gf256_test.cc.o.d"
  "fec_gf256_test"
  "fec_gf256_test.pdb"
  "fec_gf256_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fec_gf256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
