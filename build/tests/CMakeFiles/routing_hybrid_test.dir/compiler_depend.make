# Empty compiler generated dependencies file for routing_hybrid_test.
# This may be replaced when dependencies are built.
