file(REMOVE_RECURSE
  "CMakeFiles/routing_hybrid_test.dir/routing_hybrid_test.cc.o"
  "CMakeFiles/routing_hybrid_test.dir/routing_hybrid_test.cc.o.d"
  "routing_hybrid_test"
  "routing_hybrid_test.pdb"
  "routing_hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
