# Empty dependencies file for routing_multipath_test.
# This may be replaced when dependencies are built.
