file(REMOVE_RECURSE
  "CMakeFiles/routing_multipath_test.dir/routing_multipath_test.cc.o"
  "CMakeFiles/routing_multipath_test.dir/routing_multipath_test.cc.o.d"
  "routing_multipath_test"
  "routing_multipath_test.pdb"
  "routing_multipath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_multipath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
