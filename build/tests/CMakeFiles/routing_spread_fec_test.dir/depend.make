# Empty dependencies file for routing_spread_fec_test.
# This may be replaced when dependencies are built.
