# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for routing_spread_fec_test.
