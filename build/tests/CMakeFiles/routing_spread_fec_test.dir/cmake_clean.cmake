file(REMOVE_RECURSE
  "CMakeFiles/routing_spread_fec_test.dir/routing_spread_fec_test.cc.o"
  "CMakeFiles/routing_spread_fec_test.dir/routing_spread_fec_test.cc.o.d"
  "routing_spread_fec_test"
  "routing_spread_fec_test.pdb"
  "routing_spread_fec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_spread_fec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
