file(REMOVE_RECURSE
  "CMakeFiles/fec_packet_test.dir/fec_packet_test.cc.o"
  "CMakeFiles/fec_packet_test.dir/fec_packet_test.cc.o.d"
  "fec_packet_test"
  "fec_packet_test.pdb"
  "fec_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fec_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
