# Empty compiler generated dependencies file for fec_packet_test.
# This may be replaced when dependencies are built.
