file(REMOVE_RECURSE
  "CMakeFiles/measure_report_test.dir/measure_report_test.cc.o"
  "CMakeFiles/measure_report_test.dir/measure_report_test.cc.o.d"
  "measure_report_test"
  "measure_report_test.pdb"
  "measure_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
