# Empty dependencies file for measure_report_test.
# This may be replaced when dependencies are built.
