# Empty dependencies file for routing_schemes_test.
# This may be replaced when dependencies are built.
