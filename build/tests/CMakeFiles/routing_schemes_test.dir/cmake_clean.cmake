file(REMOVE_RECURSE
  "CMakeFiles/routing_schemes_test.dir/routing_schemes_test.cc.o"
  "CMakeFiles/routing_schemes_test.dir/routing_schemes_test.cc.o.d"
  "routing_schemes_test"
  "routing_schemes_test.pdb"
  "routing_schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
