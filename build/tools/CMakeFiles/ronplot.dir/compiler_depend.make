# Empty compiler generated dependencies file for ronplot.
# This may be replaced when dependencies are built.
