file(REMOVE_RECURSE
  "CMakeFiles/ronplot.dir/ronplot.cc.o"
  "CMakeFiles/ronplot.dir/ronplot.cc.o.d"
  "ronplot"
  "ronplot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
