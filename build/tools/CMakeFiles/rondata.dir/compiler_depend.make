# Empty compiler generated dependencies file for rondata.
# This may be replaced when dependencies are built.
