file(REMOVE_RECURSE
  "CMakeFiles/rondata.dir/rondata.cc.o"
  "CMakeFiles/rondata.dir/rondata.cc.o.d"
  "rondata"
  "rondata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rondata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
