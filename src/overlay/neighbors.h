// Candidate-neighbor structure for the bandwidth-capped overlay.
//
// Full-mesh probing and link-state are O(n^2): fine for the paper's
// 30-node testbed, dead at 1000. NeighborSet caps the overlay graph:
// each node keeps its `fanout` nearest peers (by propagation delay, the
// only metric known before probing starts) plus an edge to every
// landmark. Landmarks are chosen by greedy farthest-point traversal so
// they spread across the geography; every node can reach any distant
// destination through src -> landmark -> dst with candidates drawn from
// N(src) u N(dst) u landmarks (arXiv:1310.8125's k-nearest + landmark
// alternate selection).
//
// The set is symmetric (a in N(b) <=> b in N(a)) and purely a function
// of (topology, fanout, landmarks): no RNG involved, so rebuilding it
// after a restore reproduces the same graph. Rows are sorted CSR, and
// `edge_index` gives every directed edge a dense rank — the flat
// storage key used by the overlay's estimator array and the sparse
// link-state table (state is O(n * fanout) instead of O(n^2)).
//
// `full_mesh(n)` (also what `build` returns when fanout >= n-1)
// materializes the complete graph with `full() == true`; consumers use
// the flag to keep bit-identical legacy behaviour — that equivalence is
// the correctness anchor for the capped mode.

#ifndef RONPATH_OVERLAY_NEIGHBORS_H_
#define RONPATH_OVERLAY_NEIGHBORS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/topology.h"
#include "util/ids.h"

namespace ronpath {

class NeighborSet {
 public:
  // The complete graph on n nodes (legacy overlay shape).
  [[nodiscard]] static NeighborSet full_mesh(std::size_t n);

  // k-nearest (k = fanout) by (propagation delay, id), symmetrized,
  // plus all-nodes <-> landmark edges. fanout == 0 or >= n-1 yields the
  // full mesh (with no landmarks: every node already sees every other).
  [[nodiscard]] static NeighborSet build(const Topology& topo, std::size_t fanout,
                                         std::size_t landmarks);

  [[nodiscard]] std::size_t size() const { return offsets_.size() - 1; }
  [[nodiscard]] bool full() const { return full_; }

  [[nodiscard]] std::size_t degree(NodeId s) const { return offsets_[s + 1] - offsets_[s]; }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId s) const {
    return {nbrs_.data() + offsets_[s], degree(s)};
  }
  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const;

  // Dense rank of directed edge (s, d): CSR row offset plus the rank of
  // d within row s. Asserts that the edge exists.
  [[nodiscard]] std::size_t edge_index(NodeId s, NodeId d) const;
  // Total directed edges (== nbrs_.size(); rows are symmetric).
  [[nodiscard]] std::size_t edge_count() const { return nbrs_.size(); }

  [[nodiscard]] bool is_landmark(NodeId v) const { return is_landmark_[v]; }
  [[nodiscard]] const std::vector<NodeId>& landmarks() const { return landmarks_; }

 private:
  NeighborSet() = default;
  void finish(std::size_t n, std::vector<std::vector<NodeId>> rows);

  std::vector<std::size_t> offsets_;  // n + 1
  std::vector<NodeId> nbrs_;          // sorted per row, symmetric
  std::vector<NodeId> landmarks_;     // sorted
  std::vector<bool> is_landmark_;
  bool full_ = false;
};

}  // namespace ronpath

#endif  // RONPATH_OVERLAY_NEIGHBORS_H_
