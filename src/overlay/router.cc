#include "overlay/router.h"

#include <cassert>

namespace ronpath {
namespace {

double link_loss(const LinkMetrics& m) {
  // Down links lose everything for selection purposes.
  if (m.down) return 1.0;
  return m.loss;
}

Duration link_latency(const LinkMetrics& m, const RouterConfig& cfg) {
  if (m.down) return cfg.down_penalty;
  return m.latency;  // Duration::max() when never measured
}

Duration saturating_add(Duration a, Duration b) {
  if (a == Duration::max() || b == Duration::max()) return Duration::max();
  return a + b;
}

}  // namespace

double path_loss_estimate(const LinkStateTable& table, const PathSpec& path) {
  if (path.is_direct()) return link_loss(table.get(path.src, path.dst));
  if (path.is_two_hop()) {
    const double l1 = link_loss(table.get(path.src, path.via));
    const double l2 = link_loss(table.get(path.via, path.via2));
    const double l3 = link_loss(table.get(path.via2, path.dst));
    return 1.0 - (1.0 - l1) * (1.0 - l2) * (1.0 - l3);
  }
  const double l1 = link_loss(table.get(path.src, path.via));
  const double l2 = link_loss(table.get(path.via, path.dst));
  return 1.0 - (1.0 - l1) * (1.0 - l2);
}

Duration path_latency_estimate(const LinkStateTable& table, const PathSpec& path,
                               const RouterConfig& cfg) {
  if (path.is_direct()) return link_latency(table.get(path.src, path.dst), cfg);
  if (path.is_two_hop()) {
    const Duration d1 = link_latency(table.get(path.src, path.via), cfg);
    const Duration d2 = link_latency(table.get(path.via, path.via2), cfg);
    const Duration d3 = link_latency(table.get(path.via2, path.dst), cfg);
    return saturating_add(saturating_add(saturating_add(d1, d2), d3),
                          cfg.forward_delay + cfg.forward_delay);
  }
  const Duration d1 = link_latency(table.get(path.src, path.via), cfg);
  const Duration d2 = link_latency(table.get(path.via, path.dst), cfg);
  return saturating_add(saturating_add(d1, d2), cfg.forward_delay);
}

bool path_down(const LinkStateTable& table, const PathSpec& path) {
  if (path.is_direct()) return table.get(path.src, path.dst).down;
  if (path.is_two_hop()) {
    return table.get(path.src, path.via).down || table.get(path.via, path.via2).down ||
           table.get(path.via2, path.dst).down;
  }
  return table.get(path.src, path.via).down || table.get(path.via, path.dst).down;
}

Router::Router(NodeId self, const LinkStateTable& table, RouterConfig cfg)
    : self_(self), table_(table), cfg_(cfg),
      loss_incumbent_(table.size()), lat_incumbent_(table.size()) {}

std::vector<NodeId> Router::live_intermediates(NodeId dst) const {
  std::vector<NodeId> out;
  out.reserve(table_.size());
  for (NodeId v = 0; v < table_.size(); ++v) {
    if (v == self_ || v == dst) continue;
    if (!table_.node_seems_up(v)) continue;
    out.push_back(v);
  }
  return out;
}

PathChoice Router::evaluate_loss(NodeId dst, Incumbent& inc) const {
  const PathSpec direct{self_, dst, kDirectVia};
  PathChoice best{direct, path_loss_estimate(table_, direct), Duration::zero()};
  for (NodeId v : live_intermediates(dst)) {
    const PathSpec p{self_, dst, v};
    const double l = path_loss_estimate(table_, p) + cfg_.indirect_loss_penalty;
    if (l < best.loss) best = PathChoice{p, l, Duration::zero()};
  }

  // Hysteresis: keep the incumbent while it is close to the best.
  if (inc.path) {
    const double inc_loss = path_loss_estimate(table_, *inc.path);
    if (!path_down(table_, *inc.path) && inc_loss <= best.loss + cfg_.loss_abs_margin) {
      best = PathChoice{*inc.path, inc_loss, Duration::zero()};
    }
  }
  inc.path = best.path;
  best.latency = path_latency_estimate(table_, best.path, cfg_);
  return best;
}

PathChoice Router::evaluate_lat(NodeId dst, Incumbent& inc) const {
  const PathSpec direct{self_, dst, kDirectVia};
  PathChoice best{direct, 0.0, path_latency_estimate(table_, direct, cfg_)};
  for (NodeId v : live_intermediates(dst)) {
    const PathSpec p{self_, dst, v};
    Duration d = path_latency_estimate(table_, p, cfg_);
    if (d != Duration::max()) d += cfg_.indirect_lat_penalty;
    if (d < best.latency) best = PathChoice{p, 0.0, d};
  }

  if (inc.path && best.latency != Duration::max()) {
    const Duration inc_lat = path_latency_estimate(table_, *inc.path, cfg_);
    if (!path_down(table_, *inc.path) && inc_lat != Duration::max()) {
      const auto margin_ns = static_cast<std::int64_t>(
          static_cast<double>(inc_lat.count_nanos()) * cfg_.lat_rel_margin);
      const Duration needed = inc_lat - std::max(cfg_.lat_abs_margin, Duration::nanos(margin_ns));
      if (best.latency >= needed) {
        best = PathChoice{*inc.path, 0.0, inc_lat};
      }
    }
  }
  inc.path = best.path;
  best.loss = path_loss_estimate(table_, best.path);
  return best;
}

PathChoice Router::best_loss_path_two_hop(NodeId dst) const {
  assert(dst < table_.size() && dst != self_);
  const PathSpec direct{self_, dst, kDirectVia};
  PathChoice best{direct, path_loss_estimate(table_, direct), Duration::zero()};
  const auto vias = live_intermediates(dst);
  for (NodeId v1 : vias) {
    const PathSpec one{self_, dst, v1};
    const double l1 = path_loss_estimate(table_, one) + cfg_.indirect_loss_penalty;
    if (l1 < best.loss) best = PathChoice{one, l1, Duration::zero()};
    for (NodeId v2 : vias) {
      if (v2 == v1) continue;
      const PathSpec two{self_, dst, v1, v2};
      // A second forwarding hop costs a second penalty.
      const double l2 = path_loss_estimate(table_, two) + 2.0 * cfg_.indirect_loss_penalty;
      if (l2 < best.loss) best = PathChoice{two, l2, Duration::zero()};
    }
  }
  best.latency = path_latency_estimate(table_, best.path, cfg_);
  return best;
}

PathChoice Router::best_loss_path(NodeId dst) {
  assert(dst < table_.size() && dst != self_);
  return evaluate_loss(dst, loss_incumbent_[dst]);
}

PathChoice Router::best_lat_path(NodeId dst) {
  assert(dst < table_.size() && dst != self_);
  return evaluate_lat(dst, lat_incumbent_[dst]);
}

}  // namespace ronpath
