#include "overlay/router.h"

#include <cassert>

#include "overlay/path_engine.h"
#include "snapshot/codec.h"

namespace ronpath {

double link_loss(const LinkMetrics& m, const RouterConfig& cfg, bool expired) {
  // Expired entries degrade to "unknown", not to their last value: a
  // stale "0.1% loss" (or a stale down flag) is exactly the garbage the
  // degradation policy exists to stop routing on.
  if (expired) return cfg.unknown_loss;
  // Down links lose everything for selection purposes.
  if (m.down) return 1.0;
  return m.loss;
}

double link_loss(const LinkMetrics& m, const RouterConfig& cfg, TimePoint now) {
  return link_loss(m, cfg, entry_expired(m, cfg, now));
}

Duration link_latency(const LinkMetrics& m, const RouterConfig& cfg, bool expired) {
  if (expired) return Duration::max();
  if (m.down) return cfg.down_penalty;
  return m.latency;  // Duration::max() when never measured
}

Duration link_latency(const LinkMetrics& m, const RouterConfig& cfg, TimePoint now) {
  return link_latency(m, cfg, entry_expired(m, cfg, now));
}

bool entry_expired(const LinkMetrics& m, const RouterConfig& cfg, TimePoint now) {
  if (cfg.entry_ttl <= Duration::zero()) return false;
  if (m.samples == 0) return true;  // never published: unknown, not optimistic
  return now - m.published > cfg.entry_ttl;
}

double path_loss_estimate(const LinkStateTable& table, const PathSpec& path,
                          const RouterConfig& cfg, TimePoint now) {
  if (path.is_direct()) return link_loss(table.get(path.src, path.dst), cfg, now);
  if (path.is_two_hop()) {
    const double l1 = link_loss(table.get(path.src, path.via), cfg, now);
    const double l2 = link_loss(table.get(path.via, path.via2), cfg, now);
    const double l3 = link_loss(table.get(path.via2, path.dst), cfg, now);
    return 1.0 - (1.0 - l1) * (1.0 - l2) * (1.0 - l3);
  }
  const double l1 = link_loss(table.get(path.src, path.via), cfg, now);
  const double l2 = link_loss(table.get(path.via, path.dst), cfg, now);
  return 1.0 - (1.0 - l1) * (1.0 - l2);
}

double path_loss_estimate(const LinkStateTable& table, const PathSpec& path) {
  // Trust-forever view (no staleness policy).
  return path_loss_estimate(table, path, RouterConfig{}, TimePoint::epoch());
}

Duration path_latency_estimate(const LinkStateTable& table, const PathSpec& path,
                               const RouterConfig& cfg, TimePoint now) {
  using D = Duration;
  if (path.is_direct()) return link_latency(table.get(path.src, path.dst), cfg, now);
  if (path.is_two_hop()) {
    const Duration d1 = link_latency(table.get(path.src, path.via), cfg, now);
    const Duration d2 = link_latency(table.get(path.via, path.via2), cfg, now);
    const Duration d3 = link_latency(table.get(path.via2, path.dst), cfg, now);
    return D::saturating_add(D::saturating_add(D::saturating_add(d1, d2), d3),
                             cfg.forward_delay + cfg.forward_delay);
  }
  const Duration d1 = link_latency(table.get(path.src, path.via), cfg, now);
  const Duration d2 = link_latency(table.get(path.via, path.dst), cfg, now);
  return D::saturating_add(D::saturating_add(d1, d2), cfg.forward_delay);
}

Duration path_latency_estimate(const LinkStateTable& table, const PathSpec& path,
                               const RouterConfig& cfg) {
  RouterConfig trusting = cfg;
  trusting.entry_ttl = Duration::zero();
  return path_latency_estimate(table, path, trusting, TimePoint::epoch());
}

bool path_down(const LinkStateTable& table, const PathSpec& path) {
  if (path.is_direct()) return table.get(path.src, path.dst).down;
  if (path.is_two_hop()) {
    return table.get(path.src, path.via).down || table.get(path.via, path.via2).down ||
           table.get(path.via2, path.dst).down;
  }
  return table.get(path.src, path.via).down || table.get(path.via, path.dst).down;
}

Router::Router(NodeId self, const LinkStateTable& table, RouterConfig cfg)
    : self_(self), table_(table), cfg_(cfg),
      loss_incumbent_(table.size()), lat_incumbent_(table.size()),
      loss_switches_(table.size(), 0), lat_switches_(table.size(), 0) {
  // The forwarding plane carries at most two relays.
  if (cfg_.max_intermediates < 1) cfg_.max_intermediates = 1;
  if (cfg_.max_intermediates > 2) cfg_.max_intermediates = 2;
  engine_ = std::make_unique<PathEngine>(table_, cfg_);
}

Router::~Router() = default;

std::vector<NodeId> Router::live_intermediates(NodeId dst) const {
  std::vector<NodeId> out;
  out.reserve(table_.size());
  for (NodeId v = 0; v < table_.size(); ++v) {
    if (v == self_ || v == dst) continue;
    if (!table_.node_seems_up(v)) continue;
    out.push_back(v);
  }
  return out;
}

bool Router::view_degraded(TimePoint now) const {
  if (cfg_.entry_ttl <= Duration::zero()) return false;
  std::size_t expired = 0;
  std::size_t total = 0;
  for (NodeId v = 0; v < table_.size(); ++v) {
    if (v == self_) continue;
    ++total;
    if (entry_expired(table_.get(self_, v), cfg_, now)) ++expired;
  }
  return total > 0 &&
         static_cast<double>(expired) > cfg_.degraded_view_threshold * static_cast<double>(total);
}

std::size_t Router::holddown_index(NodeId dst, NodeId via) const {
  // via slot n encodes the direct path (never filtered, still tracked).
  const std::size_t n = table_.size();
  const std::size_t slot = via == kDirectVia ? n : via;
  return static_cast<std::size_t>(dst) * (n + 1) + slot;
}

bool Router::held_down(NodeId dst, NodeId via, TimePoint now) const {
  if (cfg_.holddown_base <= Duration::zero() || holddown_.empty()) return false;
  return holddown_[holddown_index(dst, via)].until > now;
}

void Router::register_down(NodeId dst, const PathSpec& path, TimePoint now) {
  if (cfg_.holddown_base <= Duration::zero()) return;
  if (holddown_.empty()) holddown_.resize(table_.size() * (table_.size() + 1));
  Holddown& h = holddown_[holddown_index(dst, path.via)];
  if (h.strikes > 0 && now - h.last_down > cfg_.holddown_reset) h.strikes = 0;
  h.last_down = now;
  if (now < h.until) return;  // already serving a hold-down; don't escalate per query
  h.strikes = std::min(h.strikes + 1, 20);
  Duration ban = cfg_.holddown_base;
  for (int i = 1; i < h.strikes && ban < cfg_.holddown_max; ++i) {
    ban = Duration::saturating_add(ban, ban);
  }
  if (ban > cfg_.holddown_max) ban = cfg_.holddown_max;
  h.until = now + ban;
}

void Router::count_switch(std::vector<std::int64_t>& counters, NodeId dst, const Incumbent& inc,
                          const PathSpec& chosen) {
  if (inc.path && *inc.path != chosen) ++counters[dst];
}

const std::vector<bool>* Router::holddown_mask(NodeId dst, TimePoint now) {
  if (cfg_.holddown_base <= Duration::zero() || holddown_.empty()) return nullptr;
  const std::size_t n = table_.size();
  excluded_scratch_.assign(n, false);
  bool any = false;
  for (NodeId v = 0; v < n; ++v) {
    if (held_down(dst, v, now)) {
      excluded_scratch_[v] = true;
      any = true;
    }
  }
  return any ? &excluded_scratch_ : nullptr;
}

PathChoice Router::evaluate_loss(NodeId dst, Incumbent& inc, TimePoint now) {
  const PathSpec direct{self_, dst, kDirectVia};

  // Degraded view: the node's own probing state is mostly stale; the
  // composed estimates below would be fiction. Fall back to direct.
  if (view_degraded(now)) {
    count_switch(loss_switches_, dst, inc, direct);
    inc.path = direct;
    return PathChoice{direct, path_loss_estimate(table_, direct, cfg_, now),
                      path_latency_estimate(table_, direct, cfg_, now)};
  }

  // Hold-down bookkeeping: an incumbent whose link went down both loses
  // incumbency and serves a ban before re-selection.
  if (inc.path && !inc.path->is_direct() && path_down(table_, *inc.path)) {
    register_down(dst, *inc.path, now);
  }

  // Candidate scan via the path engine. At max_intermediates == 1 the
  // lazy query is the same O(N) sweep (and the same composition and
  // tie-break expressions) as the historical inline loop; at 2 it also
  // relaxes two-relay chains, each relay charged indirect_loss_penalty.
  const EngineChoice cand =
      engine_->best_loss(self_, dst, cfg_.max_intermediates, now, holddown_mask(dst, now));
  PathChoice best{cand.path.to_spec(self_, dst), cand.loss, Duration::zero()};

  // Hysteresis: keep the incumbent while it is close to the best.
  if (inc.path && !held_down(dst, inc.path->via, now)) {
    const double inc_loss = path_loss_estimate(table_, *inc.path, cfg_, now);
    if (!path_down(table_, *inc.path) && inc_loss <= best.loss + cfg_.loss_abs_margin) {
      best = PathChoice{*inc.path, inc_loss, Duration::zero()};
    }
  }
  count_switch(loss_switches_, dst, inc, best.path);
  inc.path = best.path;
  best.latency = path_latency_estimate(table_, best.path, cfg_, now);
  return best;
}

PathChoice Router::evaluate_lat(NodeId dst, Incumbent& inc, TimePoint now) {
  const PathSpec direct{self_, dst, kDirectVia};

  if (view_degraded(now)) {
    count_switch(lat_switches_, dst, inc, direct);
    inc.path = direct;
    return PathChoice{direct, path_loss_estimate(table_, direct, cfg_, now),
                      path_latency_estimate(table_, direct, cfg_, now)};
  }

  if (inc.path && !inc.path->is_direct() && path_down(table_, *inc.path)) {
    register_down(dst, *inc.path, now);
  }

  const EngineChoice cand =
      engine_->best_latency(self_, dst, cfg_.max_intermediates, now, holddown_mask(dst, now));
  PathChoice best{cand.path.to_spec(self_, dst), 0.0, cand.latency};

  if (inc.path && best.latency != Duration::max() && !held_down(dst, inc.path->via, now)) {
    const Duration inc_lat = path_latency_estimate(table_, *inc.path, cfg_, now);
    if (!path_down(table_, *inc.path) && inc_lat != Duration::max()) {
      const auto margin_ns = static_cast<std::int64_t>(
          static_cast<double>(inc_lat.count_nanos()) * cfg_.lat_rel_margin);
      const Duration needed = inc_lat - std::max(cfg_.lat_abs_margin, Duration::nanos(margin_ns));
      if (best.latency >= needed) {
        best = PathChoice{*inc.path, 0.0, inc_lat};
      }
    }
  }
  count_switch(lat_switches_, dst, inc, best.path);
  inc.path = best.path;
  best.loss = path_loss_estimate(table_, best.path, cfg_, now);
  return best;
}

PathChoice Router::best_loss_path_two_hop(NodeId dst, TimePoint now) const {
  assert(dst < table_.size() && dst != self_);
  // Engine query at two rounds; each relay is charged
  // indirect_loss_penalty, so a two-relay chain pays the historical
  // 2 * penalty. `now` drives the staleness policy (the historical
  // overload trusted entries forever only because entry_ttl defaulted
  // to zero; with a TTL configured, stale entries now degrade here just
  // as they do in best_loss_path).
  const EngineChoice cand = engine_->best_loss(self_, dst, 2, now);
  PathChoice best{cand.path.to_spec(self_, dst), cand.loss, Duration::zero()};
  best.latency = path_latency_estimate(table_, best.path, cfg_, now);
  return best;
}

PathChoice Router::best_loss_path(NodeId dst, TimePoint now) {
  assert(dst < table_.size() && dst != self_);
  return evaluate_loss(dst, loss_incumbent_[dst], now);
}

PathChoice Router::best_lat_path(NodeId dst, TimePoint now) {
  assert(dst < table_.size() && dst != self_);
  return evaluate_lat(dst, lat_incumbent_[dst], now);
}

void Router::save_state(snap::Encoder& e) const {
  e.tag("ROUT");
  const auto put_incumbents = [&](const std::vector<Incumbent>& incs) {
    e.u64(incs.size());
    for (const Incumbent& inc : incs) {
      e.b(inc.path.has_value());
      if (inc.path) {
        e.u64(inc.path->src);
        e.u64(inc.path->dst);
        e.u64(inc.path->via);
        e.u64(inc.path->via2);
      }
    }
  };
  put_incumbents(loss_incumbent_);
  put_incumbents(lat_incumbent_);
  e.u64(loss_switches_.size());
  for (const std::int64_t s : loss_switches_) e.i64(s);
  for (const std::int64_t s : lat_switches_) e.i64(s);
  e.u64(holddown_.size());
  for (const Holddown& h : holddown_) {
    e.time(h.until);
    e.time(h.last_down);
    e.i64(h.strikes);
  }
}

void Router::restore_state(snap::Decoder& d) {
  d.expect_tag("ROUT");
  const auto get_incumbents = [&](std::vector<Incumbent>& incs) {
    const std::uint64_t n = d.u64();
    if (n != incs.size()) {
      throw snap::SnapshotError("snapshot: router incumbent count mismatch");
    }
    for (Incumbent& inc : incs) {
      if (d.b()) {
        PathSpec p;
        p.src = static_cast<NodeId>(d.u64());
        p.dst = static_cast<NodeId>(d.u64());
        p.via = static_cast<NodeId>(d.u64());
        p.via2 = static_cast<NodeId>(d.u64());
        inc.path = p;
      } else {
        inc.path.reset();
      }
    }
  };
  get_incumbents(loss_incumbent_);
  get_incumbents(lat_incumbent_);
  const std::uint64_t n_switch = d.u64();
  if (n_switch != loss_switches_.size()) {
    throw snap::SnapshotError("snapshot: router switch-counter count mismatch");
  }
  for (std::int64_t& s : loss_switches_) s = d.i64();
  for (std::int64_t& s : lat_switches_) s = d.i64();
  const std::uint64_t n_hold = d.count(24);
  holddown_.assign(n_hold, Holddown{});
  for (Holddown& h : holddown_) {
    h.until = d.time();
    h.last_down = d.time();
    h.strikes = static_cast<int>(d.i64());
  }
}

void Router::check_invariants(TimePoint now, std::vector<std::string>& out) const {
  const std::string who = "router " + std::to_string(self_);
  const std::size_t n = table_.size();
  if (!holddown_.empty() && holddown_.size() != n * (n + 1)) {
    out.push_back(who + ": hold-down table has unexpected size");
    return;
  }
  for (std::size_t i = 0; i < holddown_.size(); ++i) {
    const Holddown& h = holddown_[i];
    const std::string slot = who + " holddown[" + std::to_string(i) + "]";
    // Strike monotonicity: strikes only move in [0, 20], and a live ban
    // implies at least one strike.
    if (h.strikes < 0 || h.strikes > 20) out.push_back(slot + ": strikes outside [0,20]");
    if (h.until > TimePoint::epoch() && h.strikes == 0) {
      out.push_back(slot + ": ban without a strike");
    }
    if (h.last_down > now) out.push_back(slot + ": down event in the future");
    // Bans are granted at the instant of a down event and never exceed
    // holddown_max, so `until` can outrun the *latest* down event only
    // within that bound.
    if (h.until > TimePoint::epoch() &&
        h.until - h.last_down > cfg_.holddown_max) {
      out.push_back(slot + ": ban extends past holddown_max from the last down event");
    }
  }
  const auto check_incumbents = [&](const std::vector<Incumbent>& incs, const char* kind) {
    for (std::size_t dst = 0; dst < incs.size(); ++dst) {
      const auto& p = incs[dst].path;
      if (!p) continue;
      const bool via_ok = p->via == kDirectVia || p->via < n;
      const bool via2_ok = p->via2 == kDirectVia || p->via2 < n;
      if (p->src != self_ || p->dst != dst || !via_ok || !via2_ok) {
        out.push_back(who + ": malformed " + kind + " incumbent for dst " +
                      std::to_string(dst));
      }
    }
  };
  check_incumbents(loss_incumbent_, "loss");
  check_incumbents(lat_incumbent_, "latency");
  for (const std::int64_t s : loss_switches_) {
    if (s < 0) out.push_back(who + ": negative loss switch counter");
  }
  for (const std::int64_t s : lat_switches_) {
    if (s < 0) out.push_back(who + ": negative latency switch counter");
  }
}

}  // namespace ronpath
