#include "overlay/router.h"

#include <algorithm>
#include <cassert>

#include "overlay/path_engine.h"
#include "snapshot/codec.h"

namespace ronpath {

double link_loss(const LinkMetrics& m, const RouterConfig& cfg, bool expired) {
  // Expired entries degrade to "unknown", not to their last value: a
  // stale "0.1% loss" (or a stale down flag) is exactly the garbage the
  // degradation policy exists to stop routing on.
  if (expired) return cfg.unknown_loss;
  // Down links lose everything for selection purposes.
  if (m.down) return 1.0;
  return m.loss;
}

double link_loss(const LinkMetrics& m, const RouterConfig& cfg, TimePoint now) {
  return link_loss(m, cfg, entry_expired(m, cfg, now));
}

Duration link_latency(const LinkMetrics& m, const RouterConfig& cfg, bool expired) {
  if (expired) return Duration::max();
  if (m.down) return cfg.down_penalty;
  return m.latency;  // Duration::max() when never measured
}

Duration link_latency(const LinkMetrics& m, const RouterConfig& cfg, TimePoint now) {
  return link_latency(m, cfg, entry_expired(m, cfg, now));
}

bool entry_expired(const LinkMetrics& m, const RouterConfig& cfg, TimePoint now) {
  if (cfg.entry_ttl <= Duration::zero()) return false;
  if (m.samples == 0) return true;  // never published: unknown, not optimistic
  // Rotation-capped publishers refresh every `stride` intervals; scale
  // the TTL so a slower cadence is not misread as staleness. Entries
  // published every round (stride 1, the legacy cadence) are untouched.
  const Duration ttl =
      m.stride > 1 ? cfg.entry_ttl * static_cast<std::int64_t>(m.stride) : cfg.entry_ttl;
  return now - m.published > ttl;
}

double path_loss_estimate(const LinkStateTable& table, const PathSpec& path,
                          const RouterConfig& cfg, TimePoint now) {
  if (path.is_direct()) return link_loss(table.get(path.src, path.dst), cfg, now);
  if (path.is_two_hop()) {
    const double l1 = link_loss(table.get(path.src, path.via), cfg, now);
    const double l2 = link_loss(table.get(path.via, path.via2), cfg, now);
    const double l3 = link_loss(table.get(path.via2, path.dst), cfg, now);
    return 1.0 - (1.0 - l1) * (1.0 - l2) * (1.0 - l3);
  }
  const double l1 = link_loss(table.get(path.src, path.via), cfg, now);
  const double l2 = link_loss(table.get(path.via, path.dst), cfg, now);
  return 1.0 - (1.0 - l1) * (1.0 - l2);
}

double path_loss_estimate(const LinkStateTable& table, const PathSpec& path) {
  // Trust-forever view (no staleness policy).
  return path_loss_estimate(table, path, RouterConfig{}, TimePoint::epoch());
}

Duration path_latency_estimate(const LinkStateTable& table, const PathSpec& path,
                               const RouterConfig& cfg, TimePoint now) {
  using D = Duration;
  if (path.is_direct()) return link_latency(table.get(path.src, path.dst), cfg, now);
  if (path.is_two_hop()) {
    const Duration d1 = link_latency(table.get(path.src, path.via), cfg, now);
    const Duration d2 = link_latency(table.get(path.via, path.via2), cfg, now);
    const Duration d3 = link_latency(table.get(path.via2, path.dst), cfg, now);
    return D::saturating_add(D::saturating_add(D::saturating_add(d1, d2), d3),
                             cfg.forward_delay + cfg.forward_delay);
  }
  const Duration d1 = link_latency(table.get(path.src, path.via), cfg, now);
  const Duration d2 = link_latency(table.get(path.via, path.dst), cfg, now);
  return D::saturating_add(D::saturating_add(d1, d2), cfg.forward_delay);
}

Duration path_latency_estimate(const LinkStateTable& table, const PathSpec& path,
                               const RouterConfig& cfg) {
  RouterConfig trusting = cfg;
  trusting.entry_ttl = Duration::zero();
  return path_latency_estimate(table, path, trusting, TimePoint::epoch());
}

bool path_down(const LinkStateTable& table, const PathSpec& path) {
  if (path.is_direct()) return table.get(path.src, path.dst).down;
  if (path.is_two_hop()) {
    return table.get(path.src, path.via).down || table.get(path.via, path.via2).down ||
           table.get(path.via2, path.dst).down;
  }
  return table.get(path.src, path.via).down || table.get(path.via, path.dst).down;
}

Router::Router(NodeId self, const LinkStateTable& table, RouterConfig cfg,
               const NeighborSet* neighbors)
    : self_(self), table_(table), cfg_(cfg), nbrs_(neighbors) {
  // The forwarding plane carries at most two relays.
  if (cfg_.max_intermediates < 1) cfg_.max_intermediates = 1;
  if (cfg_.max_intermediates > 2) cfg_.max_intermediates = 2;
  engine_ = std::make_unique<PathEngine>(table_, cfg_);
}

Router::~Router() = default;

Router::DstState& Router::dst_state(NodeId dst) {
  const auto it = std::lower_bound(
      dst_states_.begin(), dst_states_.end(), dst,
      [](const auto& e, NodeId key) { return e.first < key; });
  if (it != dst_states_.end() && it->first == dst) return it->second;
  return dst_states_.insert(it, {dst, DstState{}})->second;
}

const Router::DstState* Router::find_dst(NodeId dst) const {
  const auto it = std::lower_bound(
      dst_states_.begin(), dst_states_.end(), dst,
      [](const auto& e, NodeId key) { return e.first < key; });
  return it != dst_states_.end() && it->first == dst ? &it->second : nullptr;
}

const Router::Holddown* Router::find_holddown(std::size_t key) const {
  const auto it = std::lower_bound(
      holddown_.begin(), holddown_.end(), key,
      [](const auto& e, std::size_t k) { return e.first < k; });
  return it != holddown_.end() && it->first == key ? &it->second : nullptr;
}

std::int64_t Router::loss_switches(NodeId dst) const {
  const DstState* st = find_dst(dst);
  return st != nullptr ? st->loss_switches : 0;
}

std::int64_t Router::lat_switches(NodeId dst) const {
  const DstState* st = find_dst(dst);
  return st != nullptr ? st->lat_switches : 0;
}

bool Router::is_candidate(NodeId v, NodeId dst) const {
  // Relay candidates over a capped graph: the two endpoint neighbor
  // rows plus the landmarks. A relay outside this set could not have
  // fresh link state towards either endpoint anyway.
  return nbrs_->adjacent(self_, v) || nbrs_->adjacent(dst, v) || nbrs_->is_landmark(v);
}

std::vector<NodeId> Router::live_intermediates(NodeId dst) const {
  std::vector<NodeId> out;
  const bool capped = restricted();
  out.reserve(capped ? nbrs_->degree(self_) + nbrs_->degree(dst) : table_.size());
  for (NodeId v = 0; v < table_.size(); ++v) {
    if (v == self_ || v == dst) continue;
    if (capped && !is_candidate(v, dst)) continue;
    if (!table_.node_seems_up(v)) continue;
    out.push_back(v);
  }
  return out;
}

bool Router::view_degraded(TimePoint now) const {
  if (cfg_.entry_ttl <= Duration::zero()) return false;
  std::size_t expired = 0;
  std::size_t total = 0;
  if (restricted()) {
    // Only the neighbor row is ever refreshed over a capped graph;
    // counting the silent rest of the mesh would read as permanently
    // degraded at any useful fanout.
    for (const NodeId v : nbrs_->neighbors(self_)) {
      ++total;
      if (entry_expired(table_.get(self_, v), cfg_, now)) ++expired;
    }
  } else {
    for (NodeId v = 0; v < table_.size(); ++v) {
      if (v == self_) continue;
      ++total;
      if (entry_expired(table_.get(self_, v), cfg_, now)) ++expired;
    }
  }
  return total > 0 &&
         static_cast<double>(expired) > cfg_.degraded_view_threshold * static_cast<double>(total);
}

std::size_t Router::holddown_key(NodeId dst, NodeId via) const {
  // via slot n encodes the direct path (never filtered, still tracked).
  const std::size_t n = table_.size();
  const std::size_t slot = via == kDirectVia ? n : via;
  return static_cast<std::size_t>(dst) * (n + 1) + slot;
}

bool Router::held_down(NodeId dst, NodeId via, TimePoint now) const {
  if (cfg_.holddown_base <= Duration::zero() || holddown_.empty()) return false;
  const Holddown* h = find_holddown(holddown_key(dst, via));
  return h != nullptr && h->until > now;
}

void Router::register_down(NodeId dst, const PathSpec& path, TimePoint now) {
  if (cfg_.holddown_base <= Duration::zero()) return;
  const std::size_t key = holddown_key(dst, path.via);
  const auto it = std::lower_bound(
      holddown_.begin(), holddown_.end(), key,
      [](const auto& e, std::size_t k) { return e.first < k; });
  Holddown& h = (it != holddown_.end() && it->first == key)
                    ? it->second
                    : holddown_.insert(it, {key, Holddown{}})->second;
  if (h.strikes > 0 && now - h.last_down > cfg_.holddown_reset) h.strikes = 0;
  h.last_down = now;
  if (now < h.until) return;  // already serving a hold-down; don't escalate per query
  h.strikes = std::min(h.strikes + 1, 20);
  Duration ban = cfg_.holddown_base;
  for (int i = 1; i < h.strikes && ban < cfg_.holddown_max; ++i) {
    ban = Duration::saturating_add(ban, ban);
  }
  if (ban > cfg_.holddown_max) ban = cfg_.holddown_max;
  h.until = now + ban;
}

void Router::count_switch(std::int64_t& counter, const std::optional<PathSpec>& inc,
                          const PathSpec& chosen) {
  if (inc && *inc != chosen) ++counter;
}

const std::vector<bool>* Router::exclusion_mask(NodeId dst, TimePoint now) {
  const std::size_t n = table_.size();
  if (restricted()) {
    // Start from everything excluded and open up the candidate set, so
    // the engine's relax never touches non-candidates at all.
    excluded_scratch_.assign(n, true);
    for (const NodeId v : nbrs_->neighbors(self_)) excluded_scratch_[v] = false;
    for (const NodeId v : nbrs_->neighbors(dst)) excluded_scratch_[v] = false;
    for (const NodeId v : nbrs_->landmarks()) excluded_scratch_[v] = false;
    excluded_scratch_[self_] = false;
    excluded_scratch_[dst] = false;
    if (cfg_.holddown_base > Duration::zero()) {
      for (const auto& [key, h] : holddown_) {
        if (key / (n + 1) != dst) continue;
        const std::size_t slot = key % (n + 1);
        if (slot < n && h.until > now) excluded_scratch_[slot] = true;
      }
    }
    return &excluded_scratch_;
  }
  // Legacy unrestricted path: hold-downs only, nullptr when none bite.
  if (cfg_.holddown_base <= Duration::zero() || holddown_.empty()) return nullptr;
  excluded_scratch_.assign(n, false);
  bool any = false;
  for (const auto& [key, h] : holddown_) {
    if (key / (n + 1) != dst) continue;
    const std::size_t slot = key % (n + 1);
    if (slot < n && h.until > now) {
      excluded_scratch_[slot] = true;
      any = true;
    }
  }
  return any ? &excluded_scratch_ : nullptr;
}

PathChoice Router::evaluate_loss(NodeId dst, DstState& st, TimePoint now) {
  const PathSpec direct{self_, dst, kDirectVia};
  std::optional<PathSpec>& inc = st.loss_path;

  // Degraded view: the node's own probing state is mostly stale; the
  // composed estimates below would be fiction. Fall back to direct.
  if (view_degraded(now)) {
    count_switch(st.loss_switches, inc, direct);
    inc = direct;
    return PathChoice{direct, path_loss_estimate(table_, direct, cfg_, now),
                      path_latency_estimate(table_, direct, cfg_, now)};
  }

  // Hold-down bookkeeping: an incumbent whose link went down both loses
  // incumbency and serves a ban before re-selection.
  if (inc && !inc->is_direct() && path_down(table_, *inc)) {
    register_down(dst, *inc, now);
  }

  // Candidate scan via the path engine. At max_intermediates == 1 the
  // lazy query is the same O(N) sweep (and the same composition and
  // tie-break expressions) as the historical inline loop; at 2 it also
  // relaxes two-relay chains, each relay charged indirect_loss_penalty.
  const EngineChoice cand =
      engine_->best_loss(self_, dst, cfg_.max_intermediates, now, exclusion_mask(dst, now));
  PathChoice best{cand.path.to_spec(self_, dst), cand.loss, Duration::zero()};

  // Hysteresis: keep the incumbent while it is close to the best.
  if (inc && !held_down(dst, inc->via, now)) {
    const double inc_loss = path_loss_estimate(table_, *inc, cfg_, now);
    if (!path_down(table_, *inc) && inc_loss <= best.loss + cfg_.loss_abs_margin) {
      best = PathChoice{*inc, inc_loss, Duration::zero()};
    }
  }
  count_switch(st.loss_switches, inc, best.path);
  inc = best.path;
  best.latency = path_latency_estimate(table_, best.path, cfg_, now);
  return best;
}

PathChoice Router::evaluate_lat(NodeId dst, DstState& st, TimePoint now) {
  const PathSpec direct{self_, dst, kDirectVia};
  std::optional<PathSpec>& inc = st.lat_path;

  if (view_degraded(now)) {
    count_switch(st.lat_switches, inc, direct);
    inc = direct;
    return PathChoice{direct, path_loss_estimate(table_, direct, cfg_, now),
                      path_latency_estimate(table_, direct, cfg_, now)};
  }

  if (inc && !inc->is_direct() && path_down(table_, *inc)) {
    register_down(dst, *inc, now);
  }

  const EngineChoice cand =
      engine_->best_latency(self_, dst, cfg_.max_intermediates, now, exclusion_mask(dst, now));
  PathChoice best{cand.path.to_spec(self_, dst), 0.0, cand.latency};

  if (inc && best.latency != Duration::max() && !held_down(dst, inc->via, now)) {
    const Duration inc_lat = path_latency_estimate(table_, *inc, cfg_, now);
    if (!path_down(table_, *inc) && inc_lat != Duration::max()) {
      const auto margin_ns = static_cast<std::int64_t>(
          static_cast<double>(inc_lat.count_nanos()) * cfg_.lat_rel_margin);
      const Duration needed = inc_lat - std::max(cfg_.lat_abs_margin, Duration::nanos(margin_ns));
      if (best.latency >= needed) {
        best = PathChoice{*inc, 0.0, inc_lat};
      }
    }
  }
  count_switch(st.lat_switches, inc, best.path);
  inc = best.path;
  best.loss = path_loss_estimate(table_, best.path, cfg_, now);
  return best;
}

PathChoice Router::best_loss_path_two_hop(NodeId dst, TimePoint now) const {
  assert(dst < table_.size() && dst != self_);
  // Engine query at two rounds; each relay is charged
  // indirect_loss_penalty, so a two-relay chain pays the historical
  // 2 * penalty. `now` drives the staleness policy (the historical
  // overload trusted entries forever only because entry_ttl defaulted
  // to zero; with a TTL configured, stale entries now degrade here just
  // as they do in best_loss_path).
  const EngineChoice cand = engine_->best_loss(self_, dst, 2, now);
  PathChoice best{cand.path.to_spec(self_, dst), cand.loss, Duration::zero()};
  best.latency = path_latency_estimate(table_, best.path, cfg_, now);
  return best;
}

PathChoice Router::best_loss_path(NodeId dst, TimePoint now) {
  assert(dst < table_.size() && dst != self_);
  return evaluate_loss(dst, dst_state(dst), now);
}

PathChoice Router::best_lat_path(NodeId dst, TimePoint now) {
  assert(dst < table_.size() && dst != self_);
  return evaluate_lat(dst, dst_state(dst), now);
}

void Router::save_state(snap::Encoder& e) const {
  e.tag("ROUT");
  const auto put_path = [&](const std::optional<PathSpec>& p) {
    e.b(p.has_value());
    if (p) {
      e.u64(p->src);
      e.u64(p->dst);
      e.u64(p->via);
      e.u64(p->via2);
    }
  };
  // Sorted flat maps serialize in key order: deterministic regardless
  // of the order destinations were first touched.
  e.u64(dst_states_.size());
  for (const auto& [dst, st] : dst_states_) {
    e.u64(dst);
    put_path(st.loss_path);
    put_path(st.lat_path);
    e.i64(st.loss_switches);
    e.i64(st.lat_switches);
  }
  e.u64(holddown_.size());
  for (const auto& [key, h] : holddown_) {
    e.u64(key);
    e.time(h.until);
    e.time(h.last_down);
    e.i64(h.strikes);
  }
}

void Router::restore_state(snap::Decoder& d) {
  d.expect_tag("ROUT");
  const auto get_path = [&](std::optional<PathSpec>& p) {
    if (d.b()) {
      PathSpec spec;
      spec.src = static_cast<NodeId>(d.u64());
      spec.dst = static_cast<NodeId>(d.u64());
      spec.via = static_cast<NodeId>(d.u64());
      spec.via2 = static_cast<NodeId>(d.u64());
      p = spec;
    } else {
      p.reset();
    }
  };
  const std::uint64_t n_dst = d.count(19);
  dst_states_.clear();
  dst_states_.reserve(n_dst);
  std::uint64_t prev_dst = 0;
  for (std::uint64_t i = 0; i < n_dst; ++i) {
    const std::uint64_t dst = d.u64();
    if (dst >= table_.size() || (i > 0 && dst <= prev_dst)) {
      throw snap::SnapshotError("snapshot: router destination keys corrupt or unsorted");
    }
    prev_dst = dst;
    DstState st;
    get_path(st.loss_path);
    get_path(st.lat_path);
    st.loss_switches = d.i64();
    st.lat_switches = d.i64();
    dst_states_.emplace_back(static_cast<NodeId>(dst), std::move(st));
  }
  const std::uint64_t n_hold = d.count(32);
  holddown_.clear();
  holddown_.reserve(n_hold);
  std::uint64_t prev_key = 0;
  for (std::uint64_t i = 0; i < n_hold; ++i) {
    const std::uint64_t key = d.u64();
    if (key >= table_.size() * (table_.size() + 1) || (i > 0 && key <= prev_key)) {
      throw snap::SnapshotError("snapshot: router hold-down keys corrupt or unsorted");
    }
    prev_key = key;
    Holddown h;
    h.until = d.time();
    h.last_down = d.time();
    h.strikes = static_cast<int>(d.i64());
    holddown_.emplace_back(static_cast<std::size_t>(key), h);
  }
}

void Router::check_invariants(TimePoint now, std::vector<std::string>& out) const {
  const std::string who = "router " + std::to_string(self_);
  const std::size_t n = table_.size();
  for (std::size_t i = 0; i < holddown_.size(); ++i) {
    const auto& [key, h] = holddown_[i];
    const std::string slot = who + " holddown[" + std::to_string(key) + "]";
    if (key >= n * (n + 1)) out.push_back(slot + ": key out of range");
    if (i > 0 && holddown_[i - 1].first >= key) {
      out.push_back(who + ": hold-down keys out of order");
    }
    // Strike monotonicity: strikes only move in [0, 20], and a live ban
    // implies at least one strike.
    if (h.strikes < 0 || h.strikes > 20) out.push_back(slot + ": strikes outside [0,20]");
    if (h.until > TimePoint::epoch() && h.strikes == 0) {
      out.push_back(slot + ": ban without a strike");
    }
    if (h.last_down > now) out.push_back(slot + ": down event in the future");
    // Bans are granted at the instant of a down event and never exceed
    // holddown_max, so `until` can outrun the *latest* down event only
    // within that bound.
    if (h.until > TimePoint::epoch() &&
        h.until - h.last_down > cfg_.holddown_max) {
      out.push_back(slot + ": ban extends past holddown_max from the last down event");
    }
  }
  for (std::size_t i = 0; i < dst_states_.size(); ++i) {
    const auto& [dst, st] = dst_states_[i];
    if (dst >= n) out.push_back(who + ": destination state key out of range");
    if (i > 0 && dst_states_[i - 1].first >= dst) {
      out.push_back(who + ": destination state keys out of order");
    }
    const auto check_path = [&](const std::optional<PathSpec>& p, const char* kind) {
      if (!p) return;
      const bool via_ok = p->via == kDirectVia || p->via < n;
      const bool via2_ok = p->via2 == kDirectVia || p->via2 < n;
      if (p->src != self_ || p->dst != dst || !via_ok || !via2_ok) {
        out.push_back(who + ": malformed " + kind + " incumbent for dst " +
                      std::to_string(dst));
      }
    };
    check_path(st.loss_path, "loss");
    check_path(st.lat_path, "latency");
    if (st.loss_switches < 0) out.push_back(who + ": negative loss switch counter");
    if (st.lat_switches < 0) out.push_back(who + ": negative latency switch counter");
  }
}

}  // namespace ronpath
