// The overlay network: N nodes running RON-style probing on top of the
// simulated underlay, plus route selection and packet forwarding.
//
// Probing (Section 3.1): every node probes every other node once per
// probe_interval (default 15 s). A probe is a request/response exchange on
// the direct path; when one is lost, up to four follow-up probes spaced
// one second apart decide whether the remote host is down. Link scores
// (loss over the last 100 probes, EWMA latency) are published to a shared
// link-state table from which per-node routers compose one-hop paths.
//
// Modeling notes (documented substitutions):
//  * Link-state dissemination is modeled as publication into a shared
//    table rather than explicit flooding packets; the O(N^2) probe and
//    routing overhead is accounted analytically in model/overhead.h.
//  * Host failures (machines crashing while the network stays up) are an
//    explicit per-node on/off process so the measurement pipeline can
//    exercise the paper's 90-second host-failure filter.
//
// Bandwidth-capped mode (fanout > 0; DESIGN.md §14): the probed/announced
// graph shrinks to a NeighborSet (k-nearest + landmarks) and each node
// announces at most ~fanout peers per probe round by rotating through its
// neighbor row: a row of degree d probes each peer every
// stride = ceil(d / fanout) intervals, rotation slots spread across the
// stride so per-round announcement volume stays ~fanout. Announcements
// are metered per node per round against an explicit byte budget (a
// publish that would exceed it is suppressed and counted — the budget is
// provably never hit by the rotation itself). Published entries carry
// their stride so staleness bounds scale with the slower cadence, and a
// capped publisher also refreshes the mirror entry (peer -> self) when
// the peer's own rotation is slower — that keeps landmark rows fresh via
// their neighbors' announcements (one bidirectional LSA, charged once).
// At fanout >= n-1 every stride is 1, no mirrors are written, and every
// byte of behavior reduces to the legacy full mesh — the correctness
// anchor pinned by the scale tests.

#ifndef RONPATH_OVERLAY_OVERLAY_H_
#define RONPATH_OVERLAY_OVERLAY_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "event/scheduler.h"
#include "fault/injector.h"
#include "net/network.h"
#include "overlay/estimator.h"
#include "overlay/link_state.h"
#include "overlay/neighbors.h"
#include "overlay/router.h"
#include "util/ids.h"
#include "util/rng.h"
#include "wire/packet.h"

namespace ronpath {

namespace snap {
class Encoder;
class Decoder;
}  // namespace snap

struct OverlayConfig {
  // Per-link probe period ("every node probes every other node once every
  // 15 seconds").
  Duration probe_interval = Duration::seconds(15);
  Duration followup_spacing = Duration::seconds(1);
  int followups = 4;
  // Probe counts as lost if the response has not returned by this bound.
  Duration probe_timeout = Duration::seconds(3);
  std::size_t loss_window = 100;
  double lat_alpha = 0.1;
  // Score link loss with an EWMA instead of the last-100 window
  // (ablation; the paper's system uses the window).
  bool use_ewma_loss = false;
  double loss_ewma_alpha = 0.03;
  RouterConfig router;

  // Host (machine) failure process per node; failed hosts stop probing,
  // responding and forwarding while the network stays up.
  double host_failures_per_month = 4.0;
  Duration host_failure_mean = Duration::minutes(45);

  // --- bandwidth-capped link-state (0 = legacy full mesh) ---
  // Max peers per node in the probed graph (k-nearest); each node
  // announces at most ~fanout of them per probe round, rotating.
  std::size_t fanout = 0;
  // Landmark count for hierarchical alternates (capped mode only).
  std::size_t landmarks = 8;
  // Modeled wire size of one link-state announcement.
  std::size_t lsa_entry_bytes = 64;
  // Per-node control budget in bytes per probe round; 0 derives
  // lsa_entry_bytes * min(fanout, degree) * (1 + 2 * followups), the
  // provable per-round publication ceiling of the rotation (a probe
  // chain contributes at most 1 + followups publishes to its own round
  // plus at most `followups` spilling in from the previous round's
  // chain on the same link).
  std::int64_t control_budget_bytes = 0;
};

// Per-node control-plane accounting: announcement bytes per probe round
// against the budget. Rounds are global (now / probe_interval).
struct ControlMeter {
  std::int64_t round = -1;  // round of the running counter
  std::int64_t round_bytes = 0;
  std::int64_t max_round_bytes = 0;  // high-water across all rounds
  std::int64_t total_bytes = 0;
  std::int64_t total_announces = 0;
  std::int64_t suppressed = 0;  // publishes dropped by the budget
};

// Outcome of an overlay-level packet transmission.
struct OverlaySendResult {
  TransmitResult net;          // underlay outcome (up to the drop point)
  bool src_up = true;          // source host alive at send time
  bool via_up = true;          // intermediate alive (indirect paths)
  bool dst_up = true;          // destination alive at (approx) arrival

  // Packet reached a live destination host.
  [[nodiscard]] bool delivered() const { return net.delivered && via_up && dst_up; }
  // Lost for a network reason rather than host failure.
  [[nodiscard]] bool network_loss() const { return !net.delivered; }
};

class OverlayNetwork {
 public:
  OverlayNetwork(Network& net, Scheduler& sched, OverlayConfig cfg, Rng rng);

  // Begins the probing processes (idempotent).
  void start();

  // Attaches a fault injector (nullptr detaches). Component blackouts and
  // probe blackholes act in the underlay via Network's FaultHook; LSA
  // suppression (publication stops, entries go stale) and crash-restart
  // churn (node down for probing/forwarding/delivery) act here.
  void set_fault_injector(const FaultInjector* injector);
  [[nodiscard]] const FaultInjector* fault_injector() const { return fault_; }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] const OverlayConfig& config() const { return cfg_; }
  [[nodiscard]] LinkStateTable& table() { return table_; }
  [[nodiscard]] Router& router(NodeId node) { return *routers_[node]; }
  [[nodiscard]] const Router& router(NodeId node) const { return *routers_[node]; }

  // The probed/announced graph (full mesh in legacy mode).
  [[nodiscard]] const NeighborSet& neighbors() const { return neighbors_; }
  // True when announcement rotation + budget enforcement are active.
  [[nodiscard]] bool capped() const { return capped_; }
  // Rotation stride of a node's announcements (1 in legacy mode).
  [[nodiscard]] std::uint32_t stride(NodeId node) const { return stride_[node]; }
  // Control-plane accounting (metered in both modes; enforced when
  // capped).
  [[nodiscard]] const ControlMeter& control_meter(NodeId node) const { return meters_[node]; }
  [[nodiscard]] std::int64_t control_budget(NodeId node) const { return budget_[node]; }

  // Ground-truth host liveness (drives probing/forwarding; the
  // measurement pipeline must *infer* it from log gaps instead).
  [[nodiscard]] bool node_up(NodeId node, TimePoint t);

  // Route selection for a packet tactic (Table 4). kRand picks uniformly
  // among intermediates that currently seem up.
  [[nodiscard]] PathSpec route(NodeId src, NodeId dst, RouteTag tag);

  // Transmits a packet on the overlay, honoring host liveness of the
  // intermediate and destination.
  OverlaySendResult send(const PathSpec& path, TimePoint t);

  // Probe bookkeeping, exposed for the measurement pipeline and tests.
  // estimator() requires (src, dst) to be an edge of the probed graph.
  [[nodiscard]] std::int64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] const LinkEstimator& estimator(NodeId src, NodeId dst) const;
  // Completed consecutive-probe-loss runs summed over all links
  // (lengths 1..5 and 6+): the overlay's outage-duration fingerprint.
  [[nodiscard]] std::array<std::int64_t, 6> loss_run_counts() const;

  // Approximate resident bytes of the overlay's per-link state
  // (estimators + link-state entries + probe tasks): the O(n * fanout)
  // quantity bench_scale reports next to process RSS.
  [[nodiscard]] std::size_t state_bytes() const;

  // Snapshot support. Pending probe ticks and follow-up chains are saved
  // as (at, seq) re-arm descriptors; restore_state expects an identically
  // constructed and started overlay whose scheduler has already been
  // reset via Scheduler::restore_clock, and re-arms those events with
  // their original sequence numbers so firing order (including FIFO
  // ties) is preserved exactly.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Invariant auditor: delegates to routers, estimators, the link-state
  // table and host-failure processes, then checks probe-task/follow-up
  // bookkeeping and control-meter consistency.
  void check_invariants(TimePoint now, std::vector<std::string>& out) const;

 private:
  struct LinkProber;

  // A scheduled follow-up probe: bookkeeping mirror of the closure held
  // by the scheduler, so checkpoints can serialize the chain. Entries
  // whose event has fired are pruned lazily on the next arm/save.
  struct PendingFollowup {
    NodeId src = 0;
    NodeId dst = 0;
    int remaining = 0;
    EventHandle handle;
  };

  void probe_once(NodeId src, NodeId dst);
  void send_followup(NodeId src, NodeId dst, int remaining);
  // Schedules send_followup(src, dst, remaining) after followup_spacing
  // and records it in followups_.
  void arm_followup(NodeId src, NodeId dst, int remaining);
  // Drops followups_ records whose events already fired.
  void prune_followups();
  void publish(NodeId src, NodeId dst);
  // Legacy dense pair key; still the RNG fork key for probe stagger so
  // capped runs at full fanout keep the legacy stagger bit for bit.
  [[nodiscard]] std::size_t link_index(NodeId src, NodeId dst) const;

  Network& net_;
  Scheduler& sched_;
  OverlayConfig cfg_;
  std::size_t n_;
  Rng rng_;
  // Declared before table_/routers_: both hold pointers into it.
  NeighborSet neighbors_;
  LinkStateTable table_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<LinkEstimator> links_;  // one per directed edge, CSR order
  std::vector<std::uint32_t> stride_;   // per node, 1 in legacy mode
  std::vector<std::int64_t> budget_;    // per node, bytes per round
  std::vector<ControlMeter> meters_;    // per node
  bool capped_ = false;
  std::vector<std::unique_ptr<PeriodicTask>> probe_tasks_;  // CSR edge order
  std::vector<PendingFollowup> followups_;
  std::vector<LazyIntervalProcess> host_failures_;
  const FaultInjector* fault_ = nullptr;
  std::int64_t probes_sent_ = 0;
  bool started_ = false;
};

}  // namespace ronpath

#endif  // RONPATH_OVERLAY_OVERLAY_H_
