#include "overlay/link_state.h"

#include <cassert>

#include "snapshot/codec.h"

namespace ronpath {

LinkStateTable::LinkStateTable(std::size_t n_nodes) : n_(n_nodes), entries_(n_ * n_) {}

std::size_t LinkStateTable::index(NodeId from, NodeId to) const {
  assert(from < n_ && to < n_);
  return static_cast<std::size_t>(from) * n_ + to;
}

void LinkStateTable::publish(NodeId from, NodeId to, const LinkMetrics& metrics) {
  entries_[index(from, to)] = metrics;
}

const LinkMetrics& LinkStateTable::get(NodeId from, NodeId to) const {
  return entries_[index(from, to)];
}

bool LinkStateTable::node_seems_up(NodeId node) const {
  bool any_estimate = false;
  for (NodeId other = 0; other < n_; ++other) {
    if (other == node) continue;
    const LinkMetrics& out = entries_[index(node, other)];
    const LinkMetrics& in = entries_[index(other, node)];
    if (out.samples > 0 || in.samples > 0) any_estimate = true;
    if ((out.samples > 0 && !out.down) || (in.samples > 0 && !in.down)) return true;
  }
  // Before any probes have completed, assume up.
  return !any_estimate;
}

void LinkStateTable::save_state(snap::Encoder& e) const {
  e.tag("LTAB");
  e.u64(entries_.size());
  for (const LinkMetrics& m : entries_) {
    e.f64(m.loss);
    e.duration(m.latency);
    e.b(m.down);
    e.b(m.has_latency);
    e.u64(m.samples);
    e.time(m.published);
  }
}

void LinkStateTable::restore_state(snap::Decoder& d) {
  d.expect_tag("LTAB");
  const std::uint64_t n = d.u64();
  if (n != entries_.size()) {
    throw snap::SnapshotError("snapshot: link-state table size mismatch (snapshot has " +
                              std::to_string(n) + " entries, table has " +
                              std::to_string(entries_.size()) + ")");
  }
  for (LinkMetrics& m : entries_) {
    m.loss = d.f64();
    m.latency = d.duration();
    m.down = d.b();
    m.has_latency = d.b();
    m.samples = d.u64();
    m.published = d.time();
  }
}

void LinkStateTable::check_invariants(TimePoint now, std::vector<std::string>& out) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const LinkMetrics& m = entries_[i];
    const std::string who = "link-state entry " + std::to_string(i / n_) + "->" +
                            std::to_string(i % n_);
    if (!(m.loss >= 0.0 && m.loss <= 1.0)) out.push_back(who + ": loss outside [0,1]");
    if (m.published > now) out.push_back(who + ": published in the future");
    if (m.has_latency != (m.latency != Duration::max())) {
      out.push_back(who + ": latency sentinel inconsistent with has_latency");
    }
    if (m.has_latency &&
        (m.latency < Duration::zero() || m.latency >= Duration::days(100'000))) {
      out.push_back(who + ": latency in the saturation dead zone");
    }
    if (m.samples == 0 && m.published != TimePoint::epoch()) {
      out.push_back(who + ": published without a single probe sample");
    }
  }
}

}  // namespace ronpath
