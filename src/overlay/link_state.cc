#include "overlay/link_state.h"

#include <cassert>

namespace ronpath {

LinkStateTable::LinkStateTable(std::size_t n_nodes) : n_(n_nodes), entries_(n_ * n_) {}

std::size_t LinkStateTable::index(NodeId from, NodeId to) const {
  assert(from < n_ && to < n_);
  return static_cast<std::size_t>(from) * n_ + to;
}

void LinkStateTable::publish(NodeId from, NodeId to, const LinkMetrics& metrics) {
  entries_[index(from, to)] = metrics;
}

const LinkMetrics& LinkStateTable::get(NodeId from, NodeId to) const {
  return entries_[index(from, to)];
}

bool LinkStateTable::node_seems_up(NodeId node) const {
  bool any_estimate = false;
  for (NodeId other = 0; other < n_; ++other) {
    if (other == node) continue;
    const LinkMetrics& out = entries_[index(node, other)];
    const LinkMetrics& in = entries_[index(other, node)];
    if (out.samples > 0 || in.samples > 0) any_estimate = true;
    if ((out.samples > 0 && !out.down) || (in.samples > 0 && !in.down)) return true;
  }
  // Before any probes have completed, assume up.
  return !any_estimate;
}

}  // namespace ronpath
