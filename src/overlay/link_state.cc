#include "overlay/link_state.h"

#include <cassert>

#include "snapshot/codec.h"

namespace ronpath {
namespace {

// Returned for reads of pairs outside the sparse neighbor graph: a
// never-published entry, exactly what the dense table holds for a pair
// no probe has reported yet.
const LinkMetrics kPristine{};

}  // namespace

LinkStateTable::LinkStateTable(std::size_t n_nodes)
    : n_(n_nodes),
      entries_(n_ * n_),
      est_cnt_(n_, 0),
      up_cnt_(n_, 0) {}

LinkStateTable::LinkStateTable(std::size_t n_nodes, const NeighborSet* neighbors)
    : n_(n_nodes),
      nbrs_(neighbors != nullptr && !neighbors->full() ? neighbors : nullptr),
      entries_(nbrs_ != nullptr ? nbrs_->edge_count() : n_ * n_),
      est_cnt_(n_, 0),
      up_cnt_(n_, 0) {
  assert(neighbors == nullptr || neighbors->size() == n_);
}

std::size_t LinkStateTable::index(NodeId from, NodeId to) const {
  assert(from < n_ && to < n_);
  if (nbrs_ != nullptr) return nbrs_->edge_index(from, to);
  return static_cast<std::size_t>(from) * n_ + to;
}

void LinkStateTable::publish(NodeId from, NodeId to, const LinkMetrics& metrics) {
  assert(nbrs_ == nullptr || nbrs_->adjacent(from, to));
  LinkMetrics& slot = entries_[index(from, to)];
  if (from != to) {
    // Diff the incident counters for both endpoints (diagonal entries
    // are ignored by node_seems_up, so they never touch the counters).
    const bool old_est = slot.samples > 0;
    const bool old_up = old_est && !slot.down;
    const bool new_est = metrics.samples > 0;
    const bool new_up = new_est && !metrics.down;
    if (old_est != new_est) {
      const std::uint32_t delta = new_est ? 1u : static_cast<std::uint32_t>(-1);
      est_cnt_[from] += delta;
      est_cnt_[to] += delta;
    }
    if (old_up != new_up) {
      const std::uint32_t delta = new_up ? 1u : static_cast<std::uint32_t>(-1);
      up_cnt_[from] += delta;
      up_cnt_[to] += delta;
    }
  }
  slot = metrics;
}

const LinkMetrics& LinkStateTable::get(NodeId from, NodeId to) const {
  if (nbrs_ != nullptr && !nbrs_->adjacent(from, to)) return kPristine;
  return entries_[index(from, to)];
}

void LinkStateTable::for_each_entry(
    const std::function<void(NodeId, NodeId, const LinkMetrics&)>& fn) const {
  if (nbrs_ == nullptr) {
    std::size_t i = 0;
    for (NodeId from = 0; from < n_; ++from) {
      for (NodeId to = 0; to < n_; ++to, ++i) fn(from, to, entries_[i]);
    }
    return;
  }
  std::size_t i = 0;
  for (NodeId from = 0; from < n_; ++from) {
    for (const NodeId to : nbrs_->neighbors(from)) fn(from, to, entries_[i++]);
  }
}

void LinkStateTable::recount() {
  est_cnt_.assign(n_, 0);
  up_cnt_.assign(n_, 0);
  for_each_entry([&](NodeId from, NodeId to, const LinkMetrics& m) {
    if (m.samples == 0 || from == to) return;
    ++est_cnt_[from];
    ++est_cnt_[to];
    if (!m.down) {
      ++up_cnt_[from];
      ++up_cnt_[to];
    }
  });
}

void LinkStateTable::save_state(snap::Encoder& e) const {
  e.tag("LTAB");
  e.u64(entries_.size());
  for (const LinkMetrics& m : entries_) {
    e.f64(m.loss);
    e.duration(m.latency);
    e.b(m.down);
    e.b(m.has_latency);
    e.u64(m.samples);
    e.time(m.published);
    e.u32(m.stride);
  }
}

void LinkStateTable::restore_state(snap::Decoder& d) {
  d.expect_tag("LTAB");
  const std::uint64_t n = d.u64();
  if (n != entries_.size()) {
    throw snap::SnapshotError("snapshot: link-state table size mismatch (snapshot has " +
                              std::to_string(n) + " entries, table has " +
                              std::to_string(entries_.size()) + ")");
  }
  for (LinkMetrics& m : entries_) {
    m.loss = d.f64();
    m.latency = d.duration();
    m.down = d.b();
    m.has_latency = d.b();
    m.samples = d.u64();
    m.published = d.time();
    m.stride = d.u32();
    if (m.stride == 0) {
      throw snap::SnapshotError("snapshot: link-state entry with zero stride");
    }
  }
  recount();
}

void LinkStateTable::check_invariants(TimePoint now, std::vector<std::string>& out) const {
  std::vector<std::uint32_t> est(n_, 0);
  std::vector<std::uint32_t> up(n_, 0);
  for_each_entry([&](NodeId from, NodeId to, const LinkMetrics& m) {
    const std::string who =
        "link-state entry " + std::to_string(from) + "->" + std::to_string(to);
    if (!(m.loss >= 0.0 && m.loss <= 1.0)) out.push_back(who + ": loss outside [0,1]");
    if (m.published > now) out.push_back(who + ": published in the future");
    if (m.has_latency != (m.latency != Duration::max())) {
      out.push_back(who + ": latency sentinel inconsistent with has_latency");
    }
    if (m.has_latency &&
        (m.latency < Duration::zero() || m.latency >= Duration::days(100'000))) {
      out.push_back(who + ": latency in the saturation dead zone");
    }
    if (m.samples == 0 && m.published != TimePoint::epoch()) {
      out.push_back(who + ": published without a single probe sample");
    }
    if (m.stride == 0) out.push_back(who + ": zero rotation stride");
    if (m.samples > 0 && from != to) {
      ++est[from];
      ++est[to];
      if (!m.down) {
        ++up[from];
        ++up[to];
      }
    }
  });
  if (est != est_cnt_ || up != up_cnt_) {
    out.push_back("link-state: node_seems_up counters disagree with entry scan");
  }
}

}  // namespace ronpath
