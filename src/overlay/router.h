// One-hop overlay path selection (the paper's reactive routing).
//
// For a source-destination pair the candidate set is the direct Internet
// path plus every one-intermediate path through a node that currently
// seems up. Two objectives are provided, matching Table 4:
//
//   loss - minimize composed loss probability over the last-100-probe
//          window estimates;
//   lat  - minimize composed latency while avoiding links flagged down
//          ("minimizes latency and avoids completely failed links").
//
// Selection applies hysteresis so estimate noise does not flap routes:
// the incumbent path is kept unless the challenger improves on it by an
// absolute and a relative margin.
//
// Graceful degradation (all knobs off by default; see DESIGN.md "Fault
// model"): when entry_ttl is set, link-state entries older than the TTL
// expire to "unknown" (pessimistic loss, unusable latency) instead of
// being trusted forever; when the fraction of the source's own outgoing
// entries that have expired crosses degraded_view_threshold the router
// falls back to the direct path rather than routing on garbage; and when
// holddown_base is set, a selected path whose link goes down enters an
// exponentially growing hold-down before it can be re-selected, bounding
// flap amplification.
//
// Scaling (DESIGN.md §14): constructed over a capped NeighborSet the
// router restricts relay candidates to N(self) u N(dst) u landmarks via
// the engine's exclusion mask, its degraded-view denominator becomes
// the neighbor row, and per-destination state (incumbents, switch
// counters, hold-downs) lives in sorted flat maps populated on first
// touch — O(destinations actually routed), not O(n) per router. Over a
// full mesh (or with no NeighborSet) every code path reduces to the
// legacy behaviour bit for bit.

#ifndef RONPATH_OVERLAY_ROUTER_H_
#define RONPATH_OVERLAY_ROUTER_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "overlay/link_state.h"
#include "overlay/neighbors.h"
#include "util/ids.h"
#include "util/time.h"

namespace ronpath {

class PathEngine;

namespace snap {
class Encoder;
class Decoder;
}  // namespace snap

struct RouterConfig {
  // Loss hysteresis: switch only if challenger_loss <
  // incumbent_loss - abs_margin  (or incumbent went down).
  double loss_abs_margin = 0.01;
  // Direct-path preference: an indirect path must beat the direct path's
  // loss estimate by this margin to be selected at all. Suppresses
  // noise-driven detours onto structurally lossier two-hop paths.
  double indirect_loss_penalty = 0.03;
  // Same idea for the latency objective.
  Duration indirect_lat_penalty = Duration::millis(1);
  // Latency hysteresis: switch only if challenger latency is better by
  // both margins.
  Duration lat_abs_margin = Duration::millis(2);
  double lat_rel_margin = 0.05;
  // Penalty latency assigned to down links in latency composition.
  Duration down_penalty = Duration::seconds(10);
  // Extra per-hop forwarding latency assumed for indirect paths.
  Duration forward_delay = Duration::micros(300);

  // --- graceful degradation (off by default; historical behavior) ---
  // Entries older than this (or never published) count as unknown
  // rather than being trusted forever. Zero disables expiry. Callers
  // normally set this to a few probe intervals so entries only expire
  // when publication actually stops (LSA loss, crash, blackhole).
  // Entries published under announcement rotation carry a stride > 1
  // and their effective TTL scales by it (capped refresh cadence is not
  // staleness).
  Duration entry_ttl = Duration::zero();
  // Loss assumed for expired/unknown entries: pessimistic enough that
  // unknown paths never beat a measured one, short of "down".
  double unknown_loss = 0.35;
  // When more than this fraction of the source's own outgoing entries
  // are expired, route() falls back to the direct path outright.
  double degraded_view_threshold = 0.5;
  // Exponential hold-down for flapping paths: first down event bans the
  // via for holddown_base, doubling per repeat up to holddown_max.
  // Strikes decay after holddown_reset without a down event. Zero
  // disables hold-down.
  Duration holddown_base = Duration::zero();
  Duration holddown_max = Duration::minutes(5);
  Duration holddown_reset = Duration::minutes(10);

  // Maximum overlay relays the reactive router may select (path-engine
  // rounds). 1 reproduces the paper's one-intermediate router; 2 lets
  // route() emit two-relay paths. The forwarding plane carries at most
  // two relays, so values are clamped to [1, 2] here; deeper search is
  // available through PathEngine directly.
  int max_intermediates = 1;
};

struct PathChoice {
  PathSpec path;
  double loss = 0.0;
  Duration latency = Duration::zero();
};

// Stateless evaluation helpers -------------------------------------------

// True when an entry should be treated as unknown under the config's
// staleness policy at time `now` (always false with entry_ttl == 0).
[[nodiscard]] bool entry_expired(const LinkMetrics& m, const RouterConfig& cfg, TimePoint now);

// Effective per-link selection metrics under the staleness policy:
// expired entries degrade to unknown (pessimistic loss, unusable
// latency), down links lose everything / cost down_penalty. These are
// the single source of truth for both the legacy path estimates and the
// path engine's relaxation, so the two compose identically.
[[nodiscard]] double link_loss(const LinkMetrics& m, const RouterConfig& cfg, TimePoint now);
[[nodiscard]] Duration link_latency(const LinkMetrics& m, const RouterConfig& cfg, TimePoint now);
// Overloads taking a precomputed expiry verdict; the engine's shared
// tables cache entry_expired() per entry so incremental updates need
// not re-derive it per relaxation.
[[nodiscard]] double link_loss(const LinkMetrics& m, const RouterConfig& cfg, bool expired);
[[nodiscard]] Duration link_latency(const LinkMetrics& m, const RouterConfig& cfg, bool expired);

// Composed one-way loss estimate of a path under the table's current view.
// Handles direct, one-hop and two-hop paths. The `now`-aware overload
// applies the staleness policy; the two-argument form trusts entries
// forever (historical behavior).
[[nodiscard]] double path_loss_estimate(const LinkStateTable& table, const PathSpec& path);
[[nodiscard]] double path_loss_estimate(const LinkStateTable& table, const PathSpec& path,
                                        const RouterConfig& cfg, TimePoint now);
// Composed one-way latency estimate; Duration::max() when unknown.
[[nodiscard]] Duration path_latency_estimate(const LinkStateTable& table, const PathSpec& path,
                                             const RouterConfig& cfg);
[[nodiscard]] Duration path_latency_estimate(const LinkStateTable& table, const PathSpec& path,
                                             const RouterConfig& cfg, TimePoint now);
// True if any link of the path is flagged down.
[[nodiscard]] bool path_down(const LinkStateTable& table, const PathSpec& path);

// Stateful per-source router with hysteresis ------------------------------

class Router {
 public:
  // `neighbors`, when non-null and not a full mesh, restricts relay
  // candidates and scopes the degraded-view scan to the neighbor row;
  // it must outlive the router. Null (or full mesh) is the legacy
  // unrestricted router.
  Router(NodeId self, const LinkStateTable& table, RouterConfig cfg,
         const NeighborSet* neighbors = nullptr);
  ~Router();  // out of line: PathEngine is incomplete here

  // Best path choices under each objective; re-evaluated on demand.
  // `now` drives the staleness and hold-down policies; with those knobs
  // at their defaults it is unused and the historical single-argument
  // call sites behave identically.
  [[nodiscard]] PathChoice best_loss_path(NodeId dst, TimePoint now = TimePoint::epoch());
  [[nodiscard]] PathChoice best_lat_path(NodeId dst, TimePoint now = TimePoint::epoch());

  // True when the degradation policy says this node's view is too stale
  // to route indirectly (fraction of expired own entries exceeds
  // degraded_view_threshold). Always false with entry_ttl == 0.
  [[nodiscard]] bool view_degraded(TimePoint now) const;

  // Route-change counters per destination, split by objective. A switch
  // is any evaluation whose selected path differs from the incumbent;
  // flap-amplification tests bound these. Zero for never-routed
  // destinations.
  [[nodiscard]] std::int64_t loss_switches(NodeId dst) const;
  [[nodiscard]] std::int64_t lat_switches(NodeId dst) const;

  // True while `via` is serving an exponential hold-down for routes to
  // `dst` (always false with holddown_base == 0).
  [[nodiscard]] bool held_down(NodeId dst, NodeId via, TimePoint now) const;

  // Scaling extension: best loss path allowing up to two intermediates
  // (the paper's one-intermediate router generalized). O(N^2) per call
  // and stateless (no hysteresis, no hold-down, no candidate
  // restriction); intended for analysis and ablations, not the
  // per-packet fast path. `now` drives the staleness policy so
  // graceful-degradation runs cannot relay through stale entries; the
  // historical default (epoch) still treats never-published entries as
  // unknown rather than perfect when entry_ttl is enabled.
  [[nodiscard]] PathChoice best_loss_path_two_hop(NodeId dst,
                                                  TimePoint now = TimePoint::epoch()) const;

  // Candidate intermediates that currently seem up (excludes self, dst;
  // restricted to N(self) u N(dst) u landmarks over a capped graph).
  [[nodiscard]] std::vector<NodeId> live_intermediates(NodeId dst) const;

  // Snapshot support: incumbents, switch counters and hold-down state.
  // The path engine holds only per-query scratch and is not serialized.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Invariant auditor: hold-down strike monotonicity (strikes in [0,20],
  // bans bounded by holddown_max from the last down event), incumbent
  // well-formedness, and flat-map key ordering.
  void check_invariants(TimePoint now, std::vector<std::string>& out) const;

 private:
  // All mutable state for one destination, created on first touch.
  struct DstState {
    std::optional<PathSpec> loss_path;
    std::optional<PathSpec> lat_path;
    std::int64_t loss_switches = 0;
    std::int64_t lat_switches = 0;
  };
  struct Holddown {
    TimePoint until;      // banned before this instant
    TimePoint last_down;  // last down event (drives strike decay)
    int strikes = 0;
  };

  [[nodiscard]] PathChoice evaluate_loss(NodeId dst, DstState& st, TimePoint now);
  [[nodiscard]] PathChoice evaluate_lat(NodeId dst, DstState& st, TimePoint now);
  // Builds the per-destination engine exclusion mask: hold-downs, plus
  // (over a capped graph) everything outside the candidate set. Returns
  // nullptr when nothing is excluded (the legacy common case).
  [[nodiscard]] const std::vector<bool>* exclusion_mask(NodeId dst, TimePoint now);
  // Registers a down event on the incumbent's via, escalating hold-down.
  void register_down(NodeId dst, const PathSpec& path, TimePoint now);
  static void count_switch(std::int64_t& counter, const std::optional<PathSpec>& inc,
                           const PathSpec& chosen);
  [[nodiscard]] std::size_t holddown_key(NodeId dst, NodeId via) const;
  [[nodiscard]] DstState& dst_state(NodeId dst);
  [[nodiscard]] const DstState* find_dst(NodeId dst) const;
  [[nodiscard]] const Holddown* find_holddown(std::size_t key) const;
  [[nodiscard]] bool restricted() const { return nbrs_ != nullptr && !nbrs_->full(); }
  [[nodiscard]] bool is_candidate(NodeId v, NodeId dst) const;

  NodeId self_;
  const LinkStateTable& table_;
  RouterConfig cfg_;
  const NeighborSet* nbrs_ = nullptr;
  // Sorted flat maps: key order is the serialization order, so
  // snapshots are deterministic regardless of touch order.
  std::vector<std::pair<NodeId, DstState>> dst_states_;
  std::vector<std::pair<std::size_t, Holddown>> holddown_;  // key: dst * (n+1) + via-slot
  // Candidate evaluation kernel (owned; scratch state only, so const
  // queries may use it). unique_ptr keeps router.h free of the engine
  // header.
  std::unique_ptr<PathEngine> engine_;
  std::vector<bool> excluded_scratch_;
};

}  // namespace ronpath

#endif  // RONPATH_OVERLAY_ROUTER_H_
