// One-hop overlay path selection (the paper's reactive routing).
//
// For a source-destination pair the candidate set is the direct Internet
// path plus every one-intermediate path through a node that currently
// seems up. Two objectives are provided, matching Table 4:
//
//   loss - minimize composed loss probability over the last-100-probe
//          window estimates;
//   lat  - minimize composed latency while avoiding links flagged down
//          ("minimizes latency and avoids completely failed links").
//
// Selection applies hysteresis so estimate noise does not flap routes:
// the incumbent path is kept unless the challenger improves on it by an
// absolute and a relative margin.

#ifndef RONPATH_OVERLAY_ROUTER_H_
#define RONPATH_OVERLAY_ROUTER_H_

#include <optional>
#include <vector>

#include "overlay/link_state.h"
#include "util/ids.h"
#include "util/time.h"

namespace ronpath {

struct RouterConfig {
  // Loss hysteresis: switch only if challenger_loss <
  // incumbent_loss - abs_margin  (or incumbent went down).
  double loss_abs_margin = 0.01;
  // Direct-path preference: an indirect path must beat the direct path's
  // loss estimate by this margin to be selected at all. Suppresses
  // noise-driven detours onto structurally lossier two-hop paths.
  double indirect_loss_penalty = 0.03;
  // Same idea for the latency objective.
  Duration indirect_lat_penalty = Duration::millis(1);
  // Latency hysteresis: switch only if challenger latency is better by
  // both margins.
  Duration lat_abs_margin = Duration::millis(2);
  double lat_rel_margin = 0.05;
  // Penalty latency assigned to down links in latency composition.
  Duration down_penalty = Duration::seconds(10);
  // Extra per-hop forwarding latency assumed for indirect paths.
  Duration forward_delay = Duration::micros(300);
};

struct PathChoice {
  PathSpec path;
  double loss = 0.0;
  Duration latency = Duration::zero();
};

// Stateless evaluation helpers -------------------------------------------

// Composed one-way loss estimate of a path under the table's current view.
// Handles direct, one-hop and two-hop paths.
[[nodiscard]] double path_loss_estimate(const LinkStateTable& table, const PathSpec& path);
// Composed one-way latency estimate; Duration::max() when unknown.
[[nodiscard]] Duration path_latency_estimate(const LinkStateTable& table, const PathSpec& path,
                                             const RouterConfig& cfg);
// True if any link of the path is flagged down.
[[nodiscard]] bool path_down(const LinkStateTable& table, const PathSpec& path);

// Stateful per-source router with hysteresis ------------------------------

class Router {
 public:
  Router(NodeId self, const LinkStateTable& table, RouterConfig cfg);

  // Best path choices under each objective; re-evaluated on demand.
  [[nodiscard]] PathChoice best_loss_path(NodeId dst);
  [[nodiscard]] PathChoice best_lat_path(NodeId dst);

  // Scaling extension: best loss path allowing up to two intermediates
  // (the paper's one-intermediate router generalized). O(N^2) per call
  // and stateless (no hysteresis); intended for analysis and ablations,
  // not the per-packet fast path.
  [[nodiscard]] PathChoice best_loss_path_two_hop(NodeId dst) const;

  // Candidate intermediates that currently seem up (excludes self, dst).
  [[nodiscard]] std::vector<NodeId> live_intermediates(NodeId dst) const;

 private:
  struct Incumbent {
    std::optional<PathSpec> path;
  };

  [[nodiscard]] PathChoice evaluate_loss(NodeId dst, Incumbent& inc) const;
  [[nodiscard]] PathChoice evaluate_lat(NodeId dst, Incumbent& inc) const;

  NodeId self_;
  const LinkStateTable& table_;
  RouterConfig cfg_;
  std::vector<Incumbent> loss_incumbent_;  // per destination
  std::vector<Incumbent> lat_incumbent_;
};

}  // namespace ronpath

#endif  // RONPATH_OVERLAY_ROUTER_H_
