#include "overlay/neighbors.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ronpath {

NeighborSet NeighborSet::full_mesh(std::size_t n) {
  assert(n >= 1);
  NeighborSet ns;
  std::vector<std::vector<NodeId>> rows(n);
  for (std::size_t s = 0; s < n; ++s) {
    rows[s].reserve(n - 1);
    for (std::size_t d = 0; d < n; ++d) {
      if (d != s) rows[s].push_back(static_cast<NodeId>(d));
    }
  }
  ns.finish(n, std::move(rows));
  ns.full_ = true;
  return ns;
}

NeighborSet NeighborSet::build(const Topology& topo, std::size_t fanout,
                               std::size_t landmarks) {
  const std::size_t n = topo.size();
  if (fanout == 0 || fanout + 1 >= n) return full_mesh(n);

  NeighborSet ns;
  std::vector<std::vector<NodeId>> rows(n);

  // k-nearest by (propagation, id). Propagation is the only distance
  // known before probing starts, and it is a pure function of the
  // topology, so the graph is identical across runs and shard counts.
  std::vector<std::pair<std::int64_t, NodeId>> dist;
  dist.reserve(n - 1);
  for (std::size_t s = 0; s < n; ++s) {
    dist.clear();
    for (std::size_t d = 0; d < n; ++d) {
      if (d == s) continue;
      dist.emplace_back(topo.propagation(static_cast<NodeId>(s), static_cast<NodeId>(d))
                            .count_nanos(),
                        static_cast<NodeId>(d));
    }
    const std::size_t k = std::min(fanout, dist.size());
    std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());
    for (std::size_t i = 0; i < k; ++i) rows[s].push_back(dist[i].second);
  }

  // Landmarks by greedy farthest-point traversal from node 0: each pick
  // maximizes the minimum propagation to the already-chosen set (ties
  // broken towards the smaller id), spreading them across the geography.
  const std::size_t n_landmarks = std::min(landmarks, n);
  std::vector<NodeId> chosen;
  if (n_landmarks > 0) {
    chosen.push_back(0);
    std::vector<std::int64_t> min_dist(n);
    for (std::size_t v = 0; v < n; ++v) {
      min_dist[v] = topo.propagation(0, static_cast<NodeId>(v)).count_nanos();
    }
    while (chosen.size() < n_landmarks) {
      NodeId best = kInvalidNode;
      std::int64_t best_dist = -1;
      for (std::size_t v = 0; v < n; ++v) {
        if (min_dist[v] > best_dist &&
            std::find(chosen.begin(), chosen.end(), static_cast<NodeId>(v)) == chosen.end()) {
          best = static_cast<NodeId>(v);
          best_dist = min_dist[v];
        }
      }
      chosen.push_back(best);
      for (std::size_t v = 0; v < n; ++v) {
        min_dist[v] = std::min(
            min_dist[v], topo.propagation(best, static_cast<NodeId>(v)).count_nanos());
      }
    }
    std::sort(chosen.begin(), chosen.end());
    // Every node keeps an edge to every landmark, so src -> landmark ->
    // dst is always inside the probed graph.
    for (const NodeId l : chosen) {
      for (std::size_t v = 0; v < n; ++v) {
        if (v != l) rows[v].push_back(l);
      }
    }
  }

  ns.finish(n, std::move(rows));
  ns.landmarks_ = std::move(chosen);
  for (const NodeId l : ns.landmarks_) ns.is_landmark_[l] = true;
  return ns;
}

void NeighborSet::finish(std::size_t n, std::vector<std::vector<NodeId>> rows) {
  // Symmetrize, sort, dedup, then flatten to CSR.
  for (std::size_t s = 0; s < n; ++s) {
    for (const NodeId d : rows[s]) {
      rows[d].push_back(static_cast<NodeId>(s));
    }
  }
  offsets_.assign(n + 1, 0);
  std::size_t total = 0;
  for (std::size_t s = 0; s < n; ++s) {
    auto& row = rows[s];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    offsets_[s] = total;
    total += row.size();
  }
  offsets_[n] = total;
  nbrs_.reserve(total);
  for (std::size_t s = 0; s < n; ++s) {
    nbrs_.insert(nbrs_.end(), rows[s].begin(), rows[s].end());
  }
  is_landmark_.assign(n, false);
}

bool NeighborSet::adjacent(NodeId a, NodeId b) const {
  if (a == b) return false;
  if (full_) return true;
  const auto row = neighbors(a);
  return std::binary_search(row.begin(), row.end(), b);
}

std::size_t NeighborSet::edge_index(NodeId s, NodeId d) const {
  const auto row = neighbors(s);
  const auto it = std::lower_bound(row.begin(), row.end(), d);
  assert(it != row.end() && *it == d);
  return offsets_[s] + static_cast<std::size_t>(it - row.begin());
}

}  // namespace ronpath
