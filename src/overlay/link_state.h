// Shared link-state view of the overlay mesh.
//
// Every node publishes its outgoing link estimates (loss, latency, down)
// here; the router composes one-hop paths from two published entries. In
// the deployed RON system this state is flooded between nodes at the
// probing frequency; we model dissemination as publication into a shared
// table. Entries carry their publication time so consumers can apply a
// staleness bound, and the router's O(N^2) probing overhead is accounted
// analytically in the model library (see model/overhead.h).
//
// Two storage modes share one interface:
//  * dense  — the legacy n*n matrix (ctor taking only n, or a full-mesh
//    NeighborSet). Bit-identical to the pre-scaling table.
//  * sparse — CSR rows over a capped NeighborSet: one entry per directed
//    overlay edge, O(n * fanout) resident state. Reads of non-adjacent
//    pairs return a pristine (never-published) entry; writes to them
//    are a programming error.
//
// node_seems_up is O(1) in both modes via per-node incident counters
// maintained on publish — the path engine calls it for every node on
// every query, which at 3000 nodes would otherwise be an O(n) scan
// inside an O(n) loop.

#ifndef RONPATH_OVERLAY_LINK_STATE_H_
#define RONPATH_OVERLAY_LINK_STATE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "overlay/neighbors.h"
#include "util/ids.h"
#include "util/time.h"

namespace ronpath {

namespace snap {
class Encoder;
class Decoder;
}  // namespace snap

struct LinkMetrics {
  double loss = 0.0;
  Duration latency = Duration::max();
  bool down = false;
  bool has_latency = false;
  std::size_t samples = 0;
  TimePoint published;
  // Announcement-rotation stride of the publisher: this entry is
  // refreshed every `stride` probe intervals (1 = every round, the
  // legacy cadence). Consumers scale staleness bounds by it so capped
  // announcements don't read as failures (see router.h entry_expired).
  std::uint32_t stride = 1;
};

class LinkStateTable {
 public:
  explicit LinkStateTable(std::size_t n_nodes);
  // Sparse mode when `neighbors` is non-null and not a full mesh; the
  // NeighborSet must outlive the table. A null or full-mesh set gives
  // the legacy dense matrix.
  LinkStateTable(std::size_t n_nodes, const NeighborSet* neighbors);

  void publish(NodeId from, NodeId to, const LinkMetrics& metrics);
  [[nodiscard]] const LinkMetrics& get(NodeId from, NodeId to) const;

  // A node is considered reachable-in-principle if at least one of its
  // incident links is not down (no estimates at all also counts as up).
  [[nodiscard]] bool node_seems_up(NodeId node) const {
    return up_cnt_[node] > 0 || est_cnt_[node] == 0;
  }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool sparse() const { return nbrs_ != nullptr; }

  // Snapshot support: serializes every published entry.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Invariant auditor: TTL/staleness consistency (nothing published in
  // the future, never-published entries pristine), latency-sentinel
  // sanity per entry, and counter/scan agreement for node_seems_up.
  void check_invariants(TimePoint now, std::vector<std::string>& out) const;

  // Visits every stored entry (dense: all n*n pairs; sparse: every
  // directed edge), in storage order.
  void for_each_entry(
      const std::function<void(NodeId, NodeId, const LinkMetrics&)>& fn) const;

 private:
  [[nodiscard]] std::size_t index(NodeId from, NodeId to) const;
  void recount();

  std::size_t n_;
  const NeighborSet* nbrs_ = nullptr;  // non-null => sparse CSR storage
  std::vector<LinkMetrics> entries_;   // dense n*n, or one per directed edge
  // Per-node incident-entry counters backing O(1) node_seems_up:
  // est = incident entries with samples > 0; up = those also not down.
  std::vector<std::uint32_t> est_cnt_;
  std::vector<std::uint32_t> up_cnt_;
};

}  // namespace ronpath

#endif  // RONPATH_OVERLAY_LINK_STATE_H_
