// Shared link-state view of the overlay mesh.
//
// Every node publishes its outgoing link estimates (loss, latency, down)
// here; the router composes one-hop paths from two published entries. In
// the deployed RON system this state is flooded between nodes at the
// probing frequency; we model dissemination as publication into a shared
// table. Entries carry their publication time so consumers can apply a
// staleness bound, and the router's O(N^2) probing overhead is accounted
// analytically in the model library (see model/overhead.h).

#ifndef RONPATH_OVERLAY_LINK_STATE_H_
#define RONPATH_OVERLAY_LINK_STATE_H_

#include <string>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ronpath {

namespace snap {
class Encoder;
class Decoder;
}  // namespace snap

struct LinkMetrics {
  double loss = 0.0;
  Duration latency = Duration::max();
  bool down = false;
  bool has_latency = false;
  std::size_t samples = 0;
  TimePoint published;
};

class LinkStateTable {
 public:
  explicit LinkStateTable(std::size_t n_nodes);

  void publish(NodeId from, NodeId to, const LinkMetrics& metrics);
  [[nodiscard]] const LinkMetrics& get(NodeId from, NodeId to) const;

  // A node is considered reachable-in-principle if at least one of its
  // incident links is not down.
  [[nodiscard]] bool node_seems_up(NodeId node) const;

  [[nodiscard]] std::size_t size() const { return n_; }

  // Snapshot support: serializes every published entry.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Invariant auditor: TTL/staleness consistency (nothing published in
  // the future, never-published entries pristine) and latency-sentinel
  // sanity per entry.
  void check_invariants(TimePoint now, std::vector<std::string>& out) const;

 private:
  [[nodiscard]] std::size_t index(NodeId from, NodeId to) const;

  std::size_t n_;
  std::vector<LinkMetrics> entries_;
};

}  // namespace ronpath

#endif  // RONPATH_OVERLAY_LINK_STATE_H_
