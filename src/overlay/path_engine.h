// Round-based k-hop overlay path engine (RAPTOR style).
//
// The paper's reactive router scans direct + one-intermediate candidates
// per destination pair; this engine generalizes that scan to paths with
// up to k intermediates using rounds: round r holds, for every node w,
// the best path from the query source to w that uses *exactly* r
// intermediate relays, under a pluggable objective (composed loss or
// composed latency). Labels live in flat struct-of-arrays tables
// (value[r*n + w], parent[r*n + w]); round r relaxes only from nodes
// whose label improved between rounds r-2 and r-1 (marked-node /
// stagnation pruning), so steady-state rounds touch the frontier, not
// all pairs.
//
// Exact per-round tables (rather than RAPTOR's best-at-most-r merge) are
// required here because the final selection is penalized per hop
// (indirect_loss_penalty / indirect_lat_penalty are charged per relay),
// and a penalized order is not preserved under label composition.
//
// Two query styles share one relaxation kernel:
//
//   * per-query (lazy): best_loss()/best_latency() relax scratch tables
//     for one (src, dst, now) question, honoring a per-destination
//     exclusion mask (hold-down) and an include_direct flag. At k == 1
//     this costs the same O(n) link evaluations as the legacy scan and
//     reproduces its choices bit-for-bit (same composition expressions,
//     same ascending strict-improvement tie-breaks).
//   * shared incremental: relax_all() builds tables for every
//     destination at a fixed (src, now) anchor; apply_update() /
//     set_now() re-relax only labels affected by a changed link-state
//     entry or an expiry flip instead of recomputing the whole table.
//
// Selection order (the spec the differential tests pin): candidates are
// compared by penalized value with strict improvement, rounds ascending
// (direct first), so equal-valued candidates resolve to fewer hops;
// within a round the relax scans predecessors in ascending node order
// with strict improvement on the raw objective (survival / latency), so
// ties resolve to the smallest last relay, then recursively to the best
// (then smallest) prefix. Paths through down, expired, excluded or
// seems-down nodes follow the same link_loss/link_latency semantics as
// the legacy router. Per-query mode additionally bans the queried
// destination from relay positions (as the legacy scans do). Labels may
// still transiently record non-simple chains (node revisits; in shared
// mode also chains through a destination); a dominance argument (see
// DESIGN.md "Path engine") shows such chains never win a query, and the
// differential tests verify it.

#ifndef RONPATH_OVERLAY_PATH_ENGINE_H_
#define RONPATH_OVERLAY_PATH_ENGINE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "overlay/link_state.h"
#include "overlay/router.h"
#include "util/ids.h"
#include "util/time.h"

namespace ronpath {

// A path described by its ordered relay list (empty == direct).
// Decoupled from PathSpec so the engine can reason about k > 2 even
// though the forwarding plane currently carries at most two relays.
struct HopPath {
  static constexpr int kMaxHops = 4;
  std::array<NodeId, kMaxHops> hops{kInvalidNode, kInvalidNode, kInvalidNode, kInvalidNode};
  int count = 0;

  [[nodiscard]] constexpr bool is_direct() const { return count == 0; }
  // Conversion for the forwarding plane; requires count <= 2.
  [[nodiscard]] PathSpec to_spec(NodeId src, NodeId dst) const;
  friend constexpr bool operator==(const HopPath&, const HopPath&) = default;
};

// Result of an engine query. `valid` is false only when include_direct
// was false and no admissible relay exists (the hybrid alternate-path
// "no candidate" case).
struct EngineChoice {
  HopPath path;
  double loss = 0.0;
  Duration latency = Duration::zero();
  int hop_count = 0;
  bool valid = true;
};

// Work counters for the scaling story: per-round relax cost should track
// the marked frontier, and incremental updates should touch only
// affected labels.
struct EngineStats {
  std::uint64_t edges_relaxed = 0;      // candidate extensions evaluated
  std::uint64_t labels_rescanned = 0;   // full label recomputes (incremental)
  std::uint64_t sources_skipped = 0;    // stagnant/pruned relax sources
  std::uint64_t labels_changed = 0;     // labels rewritten by incremental ops
};

class PathEngine {
 public:
  static constexpr int kMaxRounds = HopPath::kMaxHops;

  // The engine reads `table` and `cfg` by reference; both must outlive
  // it. One engine serves any source (queries take `src`).
  PathEngine(const LinkStateTable& table, const RouterConfig& cfg);

  // --- per-query lazy mode ----------------------------------------

  // Best path src -> dst using at most `max_hops` relays under the
  // staleness policy at `now`. `excluded`, when non-null (size n), bars
  // nodes from every relay position (hold-down). With
  // include_direct == false the 0-hop candidate is not considered.
  [[nodiscard]] EngineChoice best_loss(NodeId src, NodeId dst, int max_hops, TimePoint now,
                                       const std::vector<bool>* excluded = nullptr,
                                       bool include_direct = true);
  [[nodiscard]] EngineChoice best_latency(NodeId src, NodeId dst, int max_hops, TimePoint now,
                                          const std::vector<bool>* excluded = nullptr,
                                          bool include_direct = true);

  // --- shared incremental mode ------------------------------------

  // Builds full label tables for `src` at anchor time `now`, rounds
  // 0..max_hops, both objectives. Subsequent queries and updates refer
  // to this anchor.
  void relax_all(NodeId src, int max_hops, TimePoint now);

  // Re-relaxes labels affected by a republished entry (call after
  // LinkStateTable::publish(from, to)). Liveness flips of the endpoint
  // nodes are detected and propagated.
  void apply_update(NodeId from, NodeId to);

  // Moves the staleness anchor; entries whose expiry status flips are
  // re-relaxed incrementally.
  void set_now(TimePoint now);

  // Query against the shared tables (no exclusions; direct included).
  [[nodiscard]] EngineChoice table_best_loss(NodeId dst) const;
  [[nodiscard]] EngineChoice table_best_latency(NodeId dst) const;

  // Label introspection for the property tests: value/parent of the
  // shared tables. Parent == kInvalidNode marks an unset label.
  [[nodiscard]] double loss_label(int round, NodeId node) const;
  [[nodiscard]] Duration lat_label(int round, NodeId node) const;
  [[nodiscard]] NodeId loss_parent(int round, NodeId node) const;
  [[nodiscard]] NodeId lat_parent(int round, NodeId node) const;

  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = EngineStats{}; }

 private:
  struct Shared;  // defined in the .cc

  template <class Obj>
  friend struct EngineKernel;

  // Flat per-objective label storage: value/parent indexed [r * n + w].
  struct LossLabels {
    std::vector<double> value;   // survival product along the chain
    std::vector<NodeId> parent;  // predecessor relay; kInvalidNode = unset
  };
  struct LatLabels {
    std::vector<Duration> value;  // saturating latency sum along the chain
    std::vector<NodeId> parent;
  };

  void ensure_scratch();
  void refresh_live();
  void refresh_expired();

  const LinkStateTable& table_;
  const RouterConfig& cfg_;
  std::size_t n_;

  // Scratch for per-query mode (reused, no per-call allocation).
  LossLabels q_loss_;
  LatLabels q_lat_;
  std::vector<bool> q_live_;

  // Shared incremental state.
  bool shared_ready_ = false;
  NodeId src_ = kInvalidNode;
  int rounds_ = 0;
  TimePoint now_;
  LossLabels s_loss_;
  LatLabels s_lat_;
  std::vector<bool> live_;
  std::vector<bool> expired_;  // per directed entry, anchored at now_
  // Incremental worklists (reused).
  std::vector<bool> changed_prev_;
  std::vector<bool> changed_prev2_;
  std::vector<bool> changed_cur_;
  std::vector<bool> rescan_;

  EngineStats stats_;
};

}  // namespace ronpath

#endif  // RONPATH_OVERLAY_PATH_ENGINE_H_
