#include "overlay/path_engine.h"

#include <cassert>

namespace ronpath {

PathSpec HopPath::to_spec(NodeId src, NodeId dst) const {
  assert(count <= 2);
  PathSpec p{src, dst, kDirectVia, kDirectVia};
  if (count >= 1) p.via = hops[0];
  if (count >= 2) p.via2 = hops[1];
  return p;
}

namespace {

// Objective policies. Values are chosen so per-edge composition
// reproduces the legacy estimate expressions bit-for-bit:
//   loss     : survival product (1-l1)*(1-l2)*..., left-associated;
//              the query converts to loss as 1.0 - product.
//   latency  : saturating_add chain, Duration::max() absorbing.
struct LossObj {
  using Value = double;
  using Link = double;
  static constexpr Value kUnset = -1.0;  // below any survival in [0, 1]
  static Link link(const LinkMetrics& m, const RouterConfig& cfg, bool expired) {
    return link_loss(m, cfg, expired);
  }
  static Value seed(Link l) { return 1.0 - l; }
  static Value extend(Value prev, Link l) { return prev * (1.0 - l); }
  static bool better(Value a, Value b) { return a > b; }
};

struct LatObj {
  using Value = Duration;
  using Link = Duration;
  static constexpr Value kUnset = Duration::min();  // negative: no real chain
  static Link link(const LinkMetrics& m, const RouterConfig& cfg, bool expired) {
    return link_latency(m, cfg, expired);
  }
  static Value seed(Link l) { return l; }
  static Value extend(Value prev, Link l) { return Duration::saturating_add(prev, l); }
  static bool better(Value a, Value b) { return a < b; }
};

}  // namespace

// Relaxation kernel shared by scratch, lazy-query and incremental
// paths. Operates on one objective's flat label arrays. All tie-breaks
// are "strict improvement scanning predecessors in ascending order"
// (equivalently: better value, else smaller parent id), which is the
// order the differential reference replicates.
template <class Obj>
struct EngineKernel {
  using Value = typename Obj::Value;

  const LinkStateTable& table;
  const RouterConfig& cfg;
  std::size_t n;
  NodeId src;
  // Banned relay (per-query mode passes the destination: the legacy
  // scans never relay through dst, and with a zero penalty a chain
  // revisiting dst can out-round the direct path by one ulp). Shared
  // tables serve every destination, so they leave this unset and rely
  // on per-relay penalties to dominate such chains.
  NodeId ban;
  const std::vector<bool>& live;
  const std::vector<bool>* excluded;       // may be null
  const std::vector<bool>* expired_table;  // shared mode; null => use `now`
  TimePoint now;
  std::vector<Value>& val;   // [(round) * n + node]
  std::vector<NodeId>& par;  // kInvalidNode == unset; src at round 0
  EngineStats& stats;

  [[nodiscard]] typename Obj::Link edge(NodeId u, NodeId w) const {
    const LinkMetrics& m = table.get(u, w);
    const bool exp = expired_table != nullptr
                         ? (*expired_table)[static_cast<std::size_t>(u) * n + w]
                         : entry_expired(m, cfg, now);
    return Obj::link(m, cfg, exp);
  }

  // A node may act as a relay source for round r when it is not the
  // query source, currently seems up, is not excluded (hold-down), has
  // a round r-1 label, and is not stagnant: a label whose value did not
  // change between rounds r-2 and r-1 offers no candidate that round
  // r-1 did not already record with one fewer relay (marked-node
  // pruning; dominance argument in DESIGN.md).
  [[nodiscard]] bool admissible(NodeId u, int r) {
    if (u == src || u == ban || !live[u]) return false;
    if (excluded != nullptr && (*excluded)[u]) return false;
    if (par[static_cast<std::size_t>(r - 1) * n + u] == kInvalidNode) return false;
    if (r >= 2 && val[static_cast<std::size_t>(r - 1) * n + u] ==
                      val[static_cast<std::size_t>(r - 2) * n + u]) {
      ++stats.sources_skipped;
      return false;
    }
    return true;
  }

  void seed_one(NodeId w) {
    if (w == src) {
      val[w] = Obj::kUnset;
      par[w] = kInvalidNode;
      return;
    }
    val[w] = Obj::seed(edge(src, w));
    par[w] = src;
  }

  void seed_round0() {
    for (NodeId w = 0; w < n; ++w) seed_one(w);
  }

  // Offers label(r-1, u) + edge(u, w) as a candidate for label(r, w).
  // Returns true when the label changed (value or parent).
  bool cand_check(int r, NodeId w, NodeId u) {
    ++stats.edges_relaxed;
    const std::size_t i = static_cast<std::size_t>(r) * n + w;
    const Value cand = Obj::extend(val[static_cast<std::size_t>(r - 1) * n + u], edge(u, w));
    if (par[i] == kInvalidNode || Obj::better(cand, val[i]) ||
        (cand == val[i] && u < par[i])) {
      val[i] = cand;
      par[i] = u;
      return true;
    }
    return false;
  }

  // Recomputes label(r, w) from scratch over all admissible sources.
  // Returns true when the result differs from the previous label.
  bool rescan(int r, NodeId w) {
    ++stats.labels_rescanned;
    const std::size_t i = static_cast<std::size_t>(r) * n + w;
    const Value old_val = val[i];
    const NodeId old_par = par[i];
    val[i] = Obj::kUnset;
    par[i] = kInvalidNode;
    if (w != src) {
      for (NodeId u = 0; u < n; ++u) {
        if (u == w || !admissible(u, r)) continue;
        cand_check(r, w, u);
      }
    }
    return val[i] != old_val || par[i] != old_par;
  }

  // Full round-r relax. `only`, when valid, restricts targets to one
  // node (the lazy query's final round).
  void relax_round(int r, NodeId only = kInvalidNode) {
    const std::size_t base = static_cast<std::size_t>(r) * n;
    if (only != kInvalidNode) {
      val[base + only] = Obj::kUnset;
      par[base + only] = kInvalidNode;
    } else {
      for (NodeId w = 0; w < n; ++w) {
        val[base + w] = Obj::kUnset;
        par[base + w] = kInvalidNode;
      }
    }
    for (NodeId u = 0; u < n; ++u) {
      if (!admissible(u, r)) continue;
      if (only != kInvalidNode) {
        if (only != u && only != src) cand_check(r, only, u);
        continue;
      }
      for (NodeId w = 0; w < n; ++w) {
        if (w == u || w == src) continue;
        cand_check(r, w, u);
      }
    }
  }

  [[nodiscard]] HopPath chain_of(int r, NodeId dst) const {
    HopPath h;
    h.count = r;
    NodeId w = dst;
    for (int rr = r; rr >= 1; --rr) {
      const NodeId u = par[static_cast<std::size_t>(rr) * n + w];
      h.hops[rr - 1] = u;
      w = u;
    }
    return h;
  }
};

template struct EngineKernel<LossObj>;
template struct EngineKernel<LatObj>;

PathEngine::PathEngine(const LinkStateTable& table, const RouterConfig& cfg)
    : table_(table), cfg_(cfg), n_(table.size()) {}

void PathEngine::ensure_scratch() {
  const std::size_t want = static_cast<std::size_t>(kMaxRounds + 1) * n_;
  if (q_loss_.value.size() != want) {
    q_loss_.value.assign(want, -1.0);
    q_loss_.parent.assign(want, kInvalidNode);
    q_lat_.value.assign(want, Duration::min());
    q_lat_.parent.assign(want, kInvalidNode);
    q_live_.assign(n_, false);
  }
}

namespace {

// Final penalized selection. Candidates are compared by penalized value
// with strict improvement, rounds ascending, so equal values resolve to
// fewer relays. Expressions match the legacy router's composition
// exactly: round 0 reports the raw link metric; round r adds
// r * indirect_*_penalty (1x and 2.0x match the legacy one- and two-hop
// forms bit for bit).
EngineChoice finish_loss(EngineKernel<LossObj>& k, NodeId dst, int max_hops, double direct_loss,
                         bool include_direct) {
  EngineChoice best;
  best.valid = false;
  if (include_direct) {
    best.valid = true;
    best.path = HopPath{};
    best.loss = direct_loss;
    best.hop_count = 0;
  }
  for (int r = 1; r <= max_hops; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * k.n + dst;
    if (k.par[i] == kInvalidNode) continue;
    const double cand =
        (1.0 - k.val[i]) + static_cast<double>(r) * k.cfg.indirect_loss_penalty;
    if (!best.valid || cand < best.loss) {
      best.valid = true;
      best.path = k.chain_of(r, dst);
      best.loss = cand;
      best.hop_count = r;
    }
  }
  return best;
}

EngineChoice finish_lat(EngineKernel<LatObj>& k, NodeId dst, int max_hops, Duration direct_lat,
                        bool include_direct) {
  EngineChoice best;
  best.valid = false;
  if (include_direct) {
    best.valid = true;
    best.path = HopPath{};
    best.latency = direct_lat;
    best.hop_count = 0;
  }
  for (int r = 1; r <= max_hops; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) * k.n + dst;
    if (k.par[i] == kInvalidNode) continue;
    // r forwarding delays, accumulated by repeated addition so r == 2
    // reproduces the legacy `forward_delay + forward_delay` exactly.
    Duration fwd = k.cfg.forward_delay;
    for (int j = 1; j < r; ++j) fwd = fwd + k.cfg.forward_delay;
    Duration cand = Duration::saturating_add(k.val[i], fwd);
    if (cand != Duration::max()) cand += k.cfg.indirect_lat_penalty * r;
    if (!best.valid || cand < best.latency) {
      best.valid = true;
      best.path = k.chain_of(r, dst);
      best.latency = cand;
      best.hop_count = r;
    }
  }
  return best;
}

int clamp_rounds(int max_hops) {
  if (max_hops < 1) return 1;
  if (max_hops > PathEngine::kMaxRounds) return PathEngine::kMaxRounds;
  return max_hops;
}

}  // namespace

void PathEngine::refresh_live() {
  for (NodeId v = 0; v < n_; ++v) q_live_[v] = table_.node_seems_up(v);
}

void PathEngine::refresh_expired() {
  expired_.assign(n_ * n_, false);
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId w = 0; w < n_; ++w) {
      if (u == w) continue;
      expired_[static_cast<std::size_t>(u) * n_ + w] =
          entry_expired(table_.get(u, w), cfg_, now_);
    }
  }
}

EngineChoice PathEngine::best_loss(NodeId src, NodeId dst, int max_hops, TimePoint now,
                                   const std::vector<bool>* excluded, bool include_direct) {
  assert(src < n_ && dst < n_ && src != dst);
  ensure_scratch();
  refresh_live();
  const int k = clamp_rounds(max_hops);
  EngineKernel<LossObj> kern{table_,   cfg_,     n_,  src, /*ban=*/dst,   q_live_,
                             excluded, nullptr,  now, q_loss_.value, q_loss_.parent, stats_};
  kern.seed_round0();
  for (int r = 1; r <= k; ++r) kern.relax_round(r, r == k ? dst : kInvalidNode);
  const double direct = link_loss(table_.get(src, dst), cfg_, now);
  return finish_loss(kern, dst, k, direct, include_direct);
}

EngineChoice PathEngine::best_latency(NodeId src, NodeId dst, int max_hops, TimePoint now,
                                      const std::vector<bool>* excluded, bool include_direct) {
  assert(src < n_ && dst < n_ && src != dst);
  ensure_scratch();
  refresh_live();
  const int k = clamp_rounds(max_hops);
  EngineKernel<LatObj> kern{table_,   cfg_,    n_,  src, /*ban=*/dst,  q_live_,
                            excluded, nullptr, now, q_lat_.value, q_lat_.parent, stats_};
  kern.seed_round0();
  for (int r = 1; r <= k; ++r) kern.relax_round(r, r == k ? dst : kInvalidNode);
  const Duration direct = link_latency(table_.get(src, dst), cfg_, now);
  return finish_lat(kern, dst, k, direct, include_direct);
}

void PathEngine::relax_all(NodeId src, int max_hops, TimePoint now) {
  assert(src < n_);
  src_ = src;
  rounds_ = clamp_rounds(max_hops);
  now_ = now;
  const std::size_t want = static_cast<std::size_t>(kMaxRounds + 1) * n_;
  s_loss_.value.assign(want, -1.0);
  s_loss_.parent.assign(want, kInvalidNode);
  s_lat_.value.assign(want, Duration::min());
  s_lat_.parent.assign(want, kInvalidNode);
  live_.assign(n_, false);
  for (NodeId v = 0; v < n_; ++v) live_[v] = table_.node_seems_up(v);
  refresh_expired();

  EngineKernel<LossObj> kl{table_,  cfg_,      n_,   src_,          kInvalidNode,   live_,
                           nullptr, &expired_, now_, s_loss_.value, s_loss_.parent, stats_};
  kl.seed_round0();
  for (int r = 1; r <= rounds_; ++r) kl.relax_round(r);
  EngineKernel<LatObj> kt{table_,  cfg_,      n_,   src_,         kInvalidNode,  live_,
                          nullptr, &expired_, now_, s_lat_.value, s_lat_.parent, stats_};
  kt.seed_round0();
  for (int r = 1; r <= rounds_; ++r) kt.relax_round(r);
  shared_ready_ = true;
}

namespace {

// Incremental re-relaxation driver for one objective. `edges` lists
// republished / expiry-flipped entries; `live_flips` lists nodes whose
// seems-up status flipped. Per round: labels whose recorded parent is a
// dirty source are fully rescanned (its candidate may have worsened),
// every other label gets cheap single-candidate improvement checks from
// the dirty sources. Dirty sources for round r are nodes whose label
// changed at r-1 (candidate value changed) or at r-2 (stagnation
// status, hence admissibility, may have flipped), plus liveness flips.
template <class Obj>
void incremental_pass(EngineKernel<Obj>& k, int rounds,
                      const std::vector<std::pair<NodeId, NodeId>>& edges,
                      const std::vector<NodeId>& live_flips, std::vector<bool>& prev,
                      std::vector<bool>& prev2, std::vector<bool>& cur,
                      std::vector<bool>& rescan_set) {
  const std::size_t n = k.n;
  prev.assign(n, false);
  prev2.assign(n, false);
  std::vector<bool> flip(n, false);
  for (NodeId x : live_flips) flip[x] = true;

  // Round 0: only edges out of the source matter; liveness does not
  // gate the direct label.
  for (const auto& [u, v] : edges) {
    if (u != k.src || v == k.src) continue;
    const std::size_t i = v;
    const typename Obj::Value old_val = k.val[i];
    k.seed_one(v);
    if (k.val[i] != old_val && !prev[v]) {
      prev[v] = true;
      ++k.stats.labels_changed;
    }
  }

  for (int r = 1; r <= rounds; ++r) {
    cur.assign(n, false);
    rescan_set.assign(n, false);
    const std::size_t base = static_cast<std::size_t>(r) * n;
    // (a) Labels that must be fully recomputed: parent is dirty, or the
    // changed edge feeds the recorded parent link.
    for (NodeId w = 0; w < n; ++w) {
      const NodeId p = k.par[base + w];
      if (p == kInvalidNode || p == k.src) continue;
      if (prev[p] || prev2[p] || flip[p]) rescan_set[w] = true;
    }
    for (const auto& [u, v] : edges) {
      if (u == k.src || v == k.src) continue;
      if (k.par[base + v] == u) rescan_set[v] = true;
    }
    for (NodeId w = 0; w < n; ++w) {
      if (rescan_set[w] && k.rescan(r, w)) {
        cur[w] = true;
        ++k.stats.labels_changed;
      }
    }
    // (b) Improvement checks from dirty sources into every other label.
    for (NodeId u = 0; u < n; ++u) {
      if (!prev[u] && !prev2[u] && !flip[u]) continue;
      if (!k.admissible(u, r)) continue;
      for (NodeId w = 0; w < n; ++w) {
        if (w == u || w == k.src || rescan_set[w]) continue;
        if (k.cand_check(r, w, u)) {
          cur[w] = true;
          ++k.stats.labels_changed;
        }
      }
    }
    // (c) Changed edges offer their (possibly improved) candidate.
    for (const auto& [u, v] : edges) {
      if (u == k.src || v == k.src || v == u) continue;
      if (rescan_set[v] || !k.admissible(u, r)) continue;
      if (k.cand_check(r, v, u)) {
        cur[v] = true;
        ++k.stats.labels_changed;
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
}

}  // namespace

void PathEngine::apply_update(NodeId from, NodeId to) {
  assert(shared_ready_);
  assert(from < n_ && to < n_ && from != to);
  expired_[static_cast<std::size_t>(from) * n_ + to] =
      entry_expired(table_.get(from, to), cfg_, now_);
  std::vector<std::pair<NodeId, NodeId>> edges{{from, to}};
  std::vector<NodeId> flips;
  for (NodeId x : {from, to}) {
    if (x == src_) continue;
    const bool up = table_.node_seems_up(x);
    if (up != live_[x]) {
      live_[x] = up;
      flips.push_back(x);
    }
  }
  EngineKernel<LossObj> kl{table_,  cfg_,      n_,   src_,          kInvalidNode,   live_,
                           nullptr, &expired_, now_, s_loss_.value, s_loss_.parent, stats_};
  incremental_pass(kl, rounds_, edges, flips, changed_prev_, changed_prev2_, changed_cur_,
                   rescan_);
  EngineKernel<LatObj> kt{table_,  cfg_,      n_,   src_,         kInvalidNode,  live_,
                          nullptr, &expired_, now_, s_lat_.value, s_lat_.parent, stats_};
  incremental_pass(kt, rounds_, edges, flips, changed_prev_, changed_prev2_, changed_cur_,
                   rescan_);
}

void PathEngine::set_now(TimePoint now) {
  assert(shared_ready_);
  now_ = now;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId w = 0; w < n_; ++w) {
      if (u == w) continue;
      const std::size_t i = static_cast<std::size_t>(u) * n_ + w;
      const bool exp = entry_expired(table_.get(u, w), cfg_, now_);
      if (exp != expired_[i]) {
        expired_[i] = exp;
        edges.emplace_back(u, w);
      }
    }
  }
  if (edges.empty()) return;
  const std::vector<NodeId> no_flips;  // liveness ignores staleness
  EngineKernel<LossObj> kl{table_,  cfg_,      n_,   src_,          kInvalidNode,   live_,
                           nullptr, &expired_, now_, s_loss_.value, s_loss_.parent, stats_};
  incremental_pass(kl, rounds_, edges, no_flips, changed_prev_, changed_prev2_, changed_cur_,
                   rescan_);
  EngineKernel<LatObj> kt{table_,  cfg_,      n_,   src_,         kInvalidNode,  live_,
                          nullptr, &expired_, now_, s_lat_.value, s_lat_.parent, stats_};
  incremental_pass(kt, rounds_, edges, no_flips, changed_prev_, changed_prev2_, changed_cur_,
                   rescan_);
}

EngineChoice PathEngine::table_best_loss(NodeId dst) const {
  assert(shared_ready_ && dst < n_ && dst != src_);
  auto& self = *const_cast<PathEngine*>(this);
  EngineKernel<LossObj> kern{table_,  cfg_,      n_,   src_,               kInvalidNode,
                             live_,   nullptr,   &expired_,
                             now_,    self.s_loss_.value, self.s_loss_.parent, self.stats_};
  const double direct =
      link_loss(table_.get(src_, dst), cfg_, expired_[static_cast<std::size_t>(src_) * n_ + dst]);
  return finish_loss(kern, dst, rounds_, direct, true);
}

EngineChoice PathEngine::table_best_latency(NodeId dst) const {
  assert(shared_ready_ && dst < n_ && dst != src_);
  auto& self = *const_cast<PathEngine*>(this);
  EngineKernel<LatObj> kern{table_,  cfg_,      n_,   src_,              kInvalidNode,
                            live_,   nullptr,   &expired_,
                            now_,    self.s_lat_.value, self.s_lat_.parent, self.stats_};
  const Duration direct = link_latency(
      table_.get(src_, dst), cfg_, expired_[static_cast<std::size_t>(src_) * n_ + dst]);
  return finish_lat(kern, dst, rounds_, direct, true);
}

double PathEngine::loss_label(int round, NodeId node) const {
  return s_loss_.value[static_cast<std::size_t>(round) * n_ + node];
}
Duration PathEngine::lat_label(int round, NodeId node) const {
  return s_lat_.value[static_cast<std::size_t>(round) * n_ + node];
}
NodeId PathEngine::loss_parent(int round, NodeId node) const {
  return s_loss_.parent[static_cast<std::size_t>(round) * n_ + node];
}
NodeId PathEngine::lat_parent(int round, NodeId node) const {
  return s_lat_.parent[static_cast<std::size_t>(round) * n_ + node];
}

}  // namespace ronpath
