#include "overlay/overlay.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "snapshot/codec.h"

namespace ronpath {
namespace {

NeighborSet make_neighbors(const Topology& topo, const OverlayConfig& cfg) {
  if (cfg.fanout == 0) return NeighborSet::full_mesh(topo.size());
  return NeighborSet::build(topo, cfg.fanout, cfg.landmarks);
}

}  // namespace

OverlayNetwork::OverlayNetwork(Network& net, Scheduler& sched, OverlayConfig cfg, Rng rng)
    : net_(net),
      sched_(sched),
      cfg_(cfg),
      n_(net.topology().size()),
      rng_(rng.fork("overlay")),
      neighbors_(make_neighbors(net.topology(), cfg_)),
      table_(n_, &neighbors_),
      capped_(cfg_.fanout > 0) {
  routers_.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    routers_.push_back(std::make_unique<Router>(i, table_, cfg_.router, &neighbors_));
  }
  links_.reserve(neighbors_.edge_count());
  const EstimatorConfig est_cfg{cfg_.loss_window, cfg_.use_ewma_loss, cfg_.loss_ewma_alpha,
                                cfg_.lat_alpha};
  for (NodeId s = 0; s < n_; ++s) {
    for (std::size_t i = 0; i < neighbors_.degree(s); ++i) links_.emplace_back(est_cfg);
  }
  stride_.resize(n_, 1);
  budget_.resize(n_, 0);
  meters_.resize(n_);
  for (NodeId i = 0; i < n_; ++i) {
    const std::size_t degree = neighbors_.degree(i);
    if (capped_ && cfg_.fanout < degree) {
      stride_[i] = static_cast<std::uint32_t>((degree + cfg_.fanout - 1) / cfg_.fanout);
    }
    const std::size_t window = capped_ ? std::min(cfg_.fanout, degree) : degree;
    budget_[i] = cfg_.control_budget_bytes > 0
                     ? cfg_.control_budget_bytes
                     : static_cast<std::int64_t>(cfg_.lsa_entry_bytes * window) *
                           (1 + 2 * static_cast<std::int64_t>(std::max(cfg_.followups, 0)));
  }
  host_failures_.reserve(n_);
  const double per_month = cfg_.host_failures_per_month;
  for (NodeId i = 0; i < n_; ++i) {
    const Duration gap = per_month > 0.0
                             ? Duration::from_seconds_f(30.0 * 86'400.0 / per_month)
                             // ~100 years: never within any run (draws against it
                             // saturate in exponential_duration).
                             : Duration::days(36'500);
    host_failures_.emplace_back(gap, cfg_.host_failure_mean, 1.0,
                                rng_.fork("host-failure").fork(i));
  }
}

std::size_t OverlayNetwork::link_index(NodeId src, NodeId dst) const {
  assert(src < n_ && dst < n_ && src != dst);
  return static_cast<std::size_t>(src) * n_ + dst;
}

const LinkEstimator& OverlayNetwork::estimator(NodeId src, NodeId dst) const {
  return links_[neighbors_.edge_index(src, dst)];
}

std::array<std::int64_t, 6> OverlayNetwork::loss_run_counts() const {
  std::array<std::int64_t, 6> total{};
  for (const LinkEstimator& link : links_) {
    const auto& runs = link.loss_runs();
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += runs[i];
  }
  return total;
}

std::size_t OverlayNetwork::state_bytes() const {
  // Approximate: value sizes of the per-edge and per-node containers plus
  // the estimator windows. Good enough to demonstrate O(n * fanout)
  // scaling next to the process-level RSS bench_scale also reports.
  std::size_t bytes = links_.capacity() * sizeof(LinkEstimator);
  bytes += links_.size() * (cfg_.loss_window / 8);  // probe-window bits
  bytes += (table_.sparse() ? neighbors_.edge_count() : n_ * n_) * sizeof(LinkMetrics);
  bytes += probe_tasks_.size() *
           (sizeof(PeriodicTask) + sizeof(std::unique_ptr<PeriodicTask>));
  bytes += neighbors_.edge_count() * sizeof(NodeId) + (n_ + 1) * sizeof(std::size_t);
  bytes += n_ * (sizeof(ControlMeter) + sizeof(std::uint32_t) + sizeof(std::int64_t) +
                 2 * sizeof(std::uint32_t));
  return bytes;
}

bool OverlayNetwork::node_up(NodeId node, TimePoint t) {
  if (fault_ && fault_->node_crashed(node, t)) return false;
  auto& proc = host_failures_[node];
  proc.generate_until(t + Duration::minutes(1));
  return !proc.active_at(t);
}

void OverlayNetwork::set_fault_injector(const FaultInjector* injector) {
  fault_ = injector;
  net_.set_fault_hook(injector);
}

void OverlayNetwork::start() {
  if (started_) return;
  started_ = true;
  for (NodeId s = 0; s < n_; ++s) {
    const auto row = neighbors_.neighbors(s);
    const std::uint32_t stride = stride_[s];
    const Duration period = cfg_.probe_interval * static_cast<std::int64_t>(stride);
    for (std::size_t rank = 0; rank < row.size(); ++rank) {
      const NodeId d = row[rank];
      // Stagger initial probes uniformly across the interval so the mesh
      // does not probe in lockstep. The fork key is the legacy dense pair
      // index, so a stride-1 schedule is the legacy schedule bit for bit;
      // under rotation the rank's slot spreads the row across the stride.
      const Duration offset =
          rng_.fork("stagger").fork(link_index(s, d)).uniform_duration(Duration::zero(),
                                                                       cfg_.probe_interval) +
          cfg_.probe_interval * static_cast<std::int64_t>(rank % stride);
      probe_tasks_.push_back(std::make_unique<PeriodicTask>(
          sched_, period, offset, [this, s, d] { probe_once(s, d); }));
    }
  }
}

void OverlayNetwork::probe_once(NodeId src, NodeId dst) {
  const TimePoint now = sched_.now();
  if (!node_up(src, now)) return;  // failed hosts stop probing

  ++probes_sent_;
  LinkEstimator& est = links_[neighbors_.edge_index(src, dst)];

  // Request leg.
  const PathSpec fwd{src, dst, kDirectVia};
  const TransmitResult req = net_.transmit(fwd, now, TrafficClass::kProbe);
  bool lost = true;
  Duration rtt = Duration::zero();
  if (req.delivered && node_up(dst, now + req.latency)) {
    // Response leg, sent when the request arrives.
    const PathSpec rev{dst, src, kDirectVia};
    const TransmitResult resp = net_.transmit(rev, now + req.latency, TrafficClass::kProbe);
    if (resp.delivered) {
      rtt = req.latency + resp.latency;
      lost = rtt > cfg_.probe_timeout;
    }
  }
  est.record_probe(lost, rtt / 2, now);
  publish(src, dst);

  if (lost && cfg_.followups > 0) arm_followup(src, dst, cfg_.followups);
}

void OverlayNetwork::send_followup(NodeId src, NodeId dst, int remaining) {
  const TimePoint now = sched_.now();
  LinkEstimator& est = links_[neighbors_.edge_index(src, dst)];
  bool lost = true;
  if (node_up(src, now)) {
    const TransmitResult req =
        net_.transmit(PathSpec{src, dst, kDirectVia}, now, TrafficClass::kProbe);
    if (req.delivered && node_up(dst, now + req.latency)) {
      const TransmitResult resp = net_.transmit(PathSpec{dst, src, kDirectVia},
                                                now + req.latency, TrafficClass::kProbe);
      lost = !resp.delivered || (req.latency + resp.latency) > cfg_.probe_timeout;
    }
  }
  est.record_followup(lost, now);
  publish(src, dst);
  if (lost && remaining > 1) arm_followup(src, dst, remaining - 1);
}

void OverlayNetwork::arm_followup(NodeId src, NodeId dst, int remaining) {
  prune_followups();
  PendingFollowup f;
  f.src = src;
  f.dst = dst;
  f.remaining = remaining;
  f.handle = sched_.schedule_after(cfg_.followup_spacing, [this, src, dst, remaining] {
    send_followup(src, dst, remaining);
  });
  followups_.push_back(std::move(f));
}

void OverlayNetwork::prune_followups() {
  std::erase_if(followups_, [](const PendingFollowup& f) { return !f.handle.pending(); });
}

void OverlayNetwork::publish(NodeId src, NodeId dst) {
  // Suppressed advertisements simply never reach the table; the old entry
  // stays and (with entry_ttl set) ages out to "unknown".
  const TimePoint now = sched_.now();
  if (fault_ && fault_->lsa_suppressed(src, now)) return;

  // Control-plane accounting: one announcement per publish, metered per
  // global probe round. Both modes meter; only capped mode enforces the
  // budget (the rotation provably stays within it, so enforcement is a
  // guard rail, not a steady-state behavior).
  ControlMeter& meter = meters_[src];
  const std::int64_t round = now.since_epoch() / cfg_.probe_interval;
  if (round != meter.round) {
    meter.round = round;
    meter.round_bytes = 0;
  }
  const auto bytes = static_cast<std::int64_t>(cfg_.lsa_entry_bytes);
  if (capped_ && meter.round_bytes + bytes > budget_[src]) {
    ++meter.suppressed;
    return;
  }
  meter.round_bytes += bytes;
  meter.max_round_bytes = std::max(meter.max_round_bytes, meter.round_bytes);
  meter.total_bytes += bytes;
  ++meter.total_announces;

  const LinkEstimator& est = links_[neighbors_.edge_index(src, dst)];
  LinkMetrics m;
  m.loss = est.loss();
  m.latency = est.latency();
  m.has_latency = est.latency() != Duration::max();
  m.down = est.down();
  m.samples = est.samples();
  m.published = now;
  m.stride = stride_[src];
  table_.publish(src, dst, m);
  // A capped announcement is bidirectional: when the peer's own rotation
  // is slower than ours, refresh the mirror entry too so slow-rotating
  // rows (landmarks above all) stay fresh through their neighbors'
  // announcements. Same LSA, so it is charged once above. Never fires at
  // stride 1, preserving the full-fanout equivalence anchor.
  if (capped_ && stride_[dst] > 1) table_.publish(dst, src, m);
}

PathSpec OverlayNetwork::route(NodeId src, NodeId dst, RouteTag tag) {
  assert(src != dst && src < n_ && dst < n_);
  switch (tag) {
    case RouteTag::kDirect:
      return PathSpec{src, dst, kDirectVia};
    case RouteTag::kRand: {
      const auto candidates = routers_[src]->live_intermediates(dst);
      if (candidates.empty()) return PathSpec{src, dst, kDirectVia};
      const auto pick = rng_.next_below(candidates.size());
      return PathSpec{src, dst, candidates[pick]};
    }
    case RouteTag::kLat:
      return routers_[src]->best_lat_path(dst, sched_.now()).path;
    case RouteTag::kLoss:
      return routers_[src]->best_loss_path(dst, sched_.now()).path;
  }
  return PathSpec{src, dst, kDirectVia};
}

OverlaySendResult OverlayNetwork::send(const PathSpec& path, TimePoint t) {
  OverlaySendResult r;
  r.src_up = node_up(path.src, t);
  if (!path.is_direct()) {
    // Liveness of the intermediates is checked at (approximately) the
    // time the packet reaches them; hour-scale failures make the
    // sub-second approximation immaterial.
    r.via_up = node_up(path.via, t);
    if (r.via_up && path.is_two_hop()) r.via_up = node_up(path.via2, t);
  }
  if (!r.via_up) {
    // The packet dies at a dead forwarder; the underlay is not exercised
    // beyond the first leg. Model as a transmit of the first leg only.
    r.net = net_.transmit(PathSpec{path.src, path.via, kDirectVia}, t);
    r.net.delivered = false;
    return r;
  }
  r.net = net_.transmit(path, t);
  if (r.net.delivered) {
    r.dst_up = node_up(path.dst, t + r.net.latency);
  }
  return r;
}

void OverlayNetwork::save_state(snap::Encoder& e) const {
  e.tag("OVLY");
  snap::save_rng(e, rng_);
  e.b(started_);
  e.i64(probes_sent_);
  table_.save_state(e);
  for (const auto& router : routers_) router->save_state(e);
  // Estimators in CSR edge order (for a full mesh this is the legacy
  // s-major, d-minor order).
  for (const LinkEstimator& link : links_) link.save_state(e);
  for (const LazyIntervalProcess& proc : host_failures_) proc.save_state(e);
  for (const ControlMeter& m : meters_) {
    e.i64(m.round);
    e.i64(m.round_bytes);
    e.i64(m.max_round_bytes);
    e.i64(m.total_bytes);
    e.i64(m.total_announces);
    e.i64(m.suppressed);
  }

  // Pending probe ticks: one re-arm descriptor per task, in the stable
  // construction order (CSR edge order).
  e.u64(probe_tasks_.size());
  for (const auto& task : probe_tasks_) {
    TimePoint at;
    std::uint64_t seq = 0;
    const bool pending = sched_.pending_entry(task->handle(), &at, &seq);
    e.b(pending);
    if (pending) {
      e.time(at);
      e.u64(seq);
    }
  }

  // Pending follow-up chains. Fired entries are pruned lazily, so collect
  // the still-pending ones first.
  std::vector<std::tuple<NodeId, NodeId, int, TimePoint, std::uint64_t>> live;
  live.reserve(followups_.size());
  for (const PendingFollowup& f : followups_) {
    TimePoint at;
    std::uint64_t seq = 0;
    if (sched_.pending_entry(f.handle, &at, &seq)) {
      live.emplace_back(f.src, f.dst, f.remaining, at, seq);
    }
  }
  e.u64(live.size());
  for (const auto& [src, dst, remaining, at, seq] : live) {
    e.u64(src);
    e.u64(dst);
    e.i64(remaining);
    e.time(at);
    e.u64(seq);
  }
}

void OverlayNetwork::restore_state(snap::Decoder& d) {
  d.expect_tag("OVLY");
  snap::restore_rng(d, rng_);
  if (d.b() != started_) {
    throw snap::SnapshotError("snapshot: overlay started flag mismatch");
  }
  probes_sent_ = d.i64();
  table_.restore_state(d);
  for (const auto& router : routers_) router->restore_state(d);
  for (LinkEstimator& link : links_) link.restore_state(d);
  for (LazyIntervalProcess& proc : host_failures_) proc.restore_state(d);
  for (ControlMeter& m : meters_) {
    m.round = d.i64();
    m.round_bytes = d.i64();
    m.max_round_bytes = d.i64();
    m.total_bytes = d.i64();
    m.total_announces = d.i64();
    m.suppressed = d.i64();
    if (m.round_bytes < 0 || m.max_round_bytes < m.round_bytes || m.total_bytes < 0 ||
        m.total_announces < 0 || m.suppressed < 0) {
      throw snap::SnapshotError("snapshot: malformed control meter");
    }
  }

  const std::uint64_t n_tasks = d.u64();
  if (n_tasks != probe_tasks_.size()) {
    throw snap::SnapshotError("snapshot: probe task count mismatch (snapshot has " +
                              std::to_string(n_tasks) + ", overlay has " +
                              std::to_string(probe_tasks_.size()) + ")");
  }
  for (const auto& task : probe_tasks_) {
    if (d.b()) {
      const TimePoint at = d.time();
      const std::uint64_t seq = d.u64();
      task->restore_arm(at, seq);
    } else {
      task->stop();
    }
  }

  followups_.clear();
  const std::uint64_t n_follow = d.count(40);
  for (std::uint64_t i = 0; i < n_follow; ++i) {
    PendingFollowup f;
    f.src = static_cast<NodeId>(d.u64());
    f.dst = static_cast<NodeId>(d.u64());
    f.remaining = static_cast<int>(d.i64());
    if (f.src >= n_ || f.dst >= n_ || f.src == f.dst || f.remaining < 1) {
      throw snap::SnapshotError("snapshot: malformed follow-up descriptor");
    }
    const TimePoint at = d.time();
    const std::uint64_t seq = d.u64();
    const NodeId src = f.src;
    const NodeId dst = f.dst;
    const int remaining = f.remaining;
    f.handle = sched_.schedule_at_restored(at, seq, [this, src, dst, remaining] {
      send_followup(src, dst, remaining);
    });
    followups_.push_back(std::move(f));
  }
}

void OverlayNetwork::check_invariants(TimePoint now, std::vector<std::string>& out) const {
  table_.check_invariants(now, out);
  for (const auto& router : routers_) router->check_invariants(now, out);
  {
    std::size_t i = 0;
    for (NodeId s = 0; s < n_; ++s) {
      for (const NodeId d : neighbors_.neighbors(s)) {
        const std::string who =
            "estimator " + std::to_string(s) + "->" + std::to_string(d);
        links_[i++].check_invariants(who, now, out);
      }
    }
  }
  for (NodeId i = 0; i < host_failures_.size(); ++i) {
    host_failures_[i].check_invariants("host-failure " + std::to_string(i), out);
  }
  if (probes_sent_ < 0) out.push_back("overlay: negative probe counter");
  if (started_ && probe_tasks_.size() != neighbors_.edge_count()) {
    out.push_back("overlay: probe task count does not cover the mesh");
  }
  for (NodeId i = 0; i < n_; ++i) {
    const ControlMeter& m = meters_[i];
    const std::string who = "control meter " + std::to_string(i);
    if (m.round_bytes < 0 || m.total_bytes < 0 || m.total_announces < 0 || m.suppressed < 0) {
      out.push_back(who + ": negative counter");
    }
    if (m.round_bytes > m.max_round_bytes) {
      out.push_back(who + ": running round above its recorded high-water");
    }
    if (capped_ && m.max_round_bytes > budget_[i]) {
      out.push_back(who + ": round bytes exceeded the control budget");
    }
    if (!capped_ && m.suppressed != 0) {
      out.push_back(who + ": budget suppression fired in legacy mode");
    }
    if (!capped_ && stride_[i] != 1) {
      out.push_back("overlay: legacy mode with rotation stride != 1");
    }
    if (stride_[i] == 0) out.push_back("overlay: zero rotation stride");
  }
  for (const PendingFollowup& f : followups_) {
    if (!f.handle.pending()) continue;  // fired but not yet pruned: fine
    if (f.remaining < 1 || f.remaining > cfg_.followups) {
      out.push_back("overlay: pending follow-up with remaining outside [1, " +
                    std::to_string(cfg_.followups) + "]");
    }
  }
}

}  // namespace ronpath
