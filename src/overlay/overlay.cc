#include "overlay/overlay.h"

#include <cassert>

namespace ronpath {

OverlayNetwork::OverlayNetwork(Network& net, Scheduler& sched, OverlayConfig cfg, Rng rng)
    : net_(net),
      sched_(sched),
      cfg_(cfg),
      n_(net.topology().size()),
      rng_(rng.fork("overlay")),
      table_(n_) {
  routers_.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    routers_.push_back(std::make_unique<Router>(i, table_, cfg_.router));
  }
  links_.resize(n_ * n_);
  for (NodeId s = 0; s < n_; ++s) {
    for (NodeId d = 0; d < n_; ++d) {
      if (s == d) continue;
      links_[link_index(s, d)] = std::make_unique<LinkEstimator>(EstimatorConfig{
          cfg_.loss_window, cfg_.use_ewma_loss, cfg_.loss_ewma_alpha, cfg_.lat_alpha});
    }
  }
  host_failures_.reserve(n_);
  const double per_month = cfg_.host_failures_per_month;
  for (NodeId i = 0; i < n_; ++i) {
    const Duration gap = per_month > 0.0
                             ? Duration::from_seconds_f(30.0 * 86'400.0 / per_month)
                             // ~100 years: never within any run, no int64 overflow.
                             : Duration::days(36'500);
    host_failures_.emplace_back(gap, cfg_.host_failure_mean, 1.0,
                                rng_.fork("host-failure").fork(i));
  }
}

std::size_t OverlayNetwork::link_index(NodeId src, NodeId dst) const {
  assert(src < n_ && dst < n_ && src != dst);
  return static_cast<std::size_t>(src) * n_ + dst;
}

const LinkEstimator& OverlayNetwork::estimator(NodeId src, NodeId dst) const {
  return *links_[link_index(src, dst)];
}

std::array<std::int64_t, 6> OverlayNetwork::loss_run_counts() const {
  std::array<std::int64_t, 6> total{};
  for (const auto& link : links_) {
    if (!link) continue;
    const auto& runs = link->loss_runs();
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += runs[i];
  }
  return total;
}

bool OverlayNetwork::node_up(NodeId node, TimePoint t) {
  if (fault_ && fault_->node_crashed(node, t)) return false;
  auto& proc = host_failures_[node];
  proc.generate_until(t + Duration::minutes(1));
  return !proc.active_at(t);
}

void OverlayNetwork::set_fault_injector(const FaultInjector* injector) {
  fault_ = injector;
  net_.set_fault_hook(injector);
}

void OverlayNetwork::start() {
  if (started_) return;
  started_ = true;
  for (NodeId s = 0; s < n_; ++s) {
    for (NodeId d = 0; d < n_; ++d) {
      if (s == d) continue;
      // Stagger initial probes uniformly across the interval so the mesh
      // does not probe in lockstep.
      const Duration offset =
          rng_.fork("stagger").fork(link_index(s, d)).uniform_duration(Duration::zero(),
                                                                       cfg_.probe_interval);
      probe_tasks_.push_back(std::make_unique<PeriodicTask>(
          sched_, cfg_.probe_interval, offset, [this, s, d] { probe_once(s, d); }));
    }
  }
}

void OverlayNetwork::probe_once(NodeId src, NodeId dst) {
  const TimePoint now = sched_.now();
  if (!node_up(src, now)) return;  // failed hosts stop probing

  ++probes_sent_;
  LinkEstimator& est = *links_[link_index(src, dst)];

  // Request leg.
  const PathSpec fwd{src, dst, kDirectVia};
  const TransmitResult req = net_.transmit(fwd, now, TrafficClass::kProbe);
  bool lost = true;
  Duration rtt = Duration::zero();
  if (req.delivered && node_up(dst, now + req.latency)) {
    // Response leg, sent when the request arrives.
    const PathSpec rev{dst, src, kDirectVia};
    const TransmitResult resp = net_.transmit(rev, now + req.latency, TrafficClass::kProbe);
    if (resp.delivered) {
      rtt = req.latency + resp.latency;
      lost = rtt > cfg_.probe_timeout;
    }
  }
  est.record_probe(lost, rtt / 2, now);
  publish(src, dst);

  if (lost && cfg_.followups > 0) {
    sched_.schedule_after(cfg_.followup_spacing,
                          [this, src, dst] { send_followup(src, dst, cfg_.followups); });
  }
}

void OverlayNetwork::send_followup(NodeId src, NodeId dst, int remaining) {
  const TimePoint now = sched_.now();
  LinkEstimator& est = *links_[link_index(src, dst)];
  bool lost = true;
  if (node_up(src, now)) {
    const TransmitResult req =
        net_.transmit(PathSpec{src, dst, kDirectVia}, now, TrafficClass::kProbe);
    if (req.delivered && node_up(dst, now + req.latency)) {
      const TransmitResult resp = net_.transmit(PathSpec{dst, src, kDirectVia},
                                                now + req.latency, TrafficClass::kProbe);
      lost = !resp.delivered || (req.latency + resp.latency) > cfg_.probe_timeout;
    }
  }
  est.record_followup(lost, now);
  publish(src, dst);
  if (lost && remaining > 1) {
    sched_.schedule_after(cfg_.followup_spacing,
                          [this, src, dst, remaining] { send_followup(src, dst, remaining - 1); });
  }
}

void OverlayNetwork::publish(NodeId src, NodeId dst) {
  // Suppressed advertisements simply never reach the table; the old entry
  // stays and (with entry_ttl set) ages out to "unknown".
  if (fault_ && fault_->lsa_suppressed(src, sched_.now())) return;
  const LinkEstimator& est = *links_[link_index(src, dst)];
  LinkMetrics m;
  m.loss = est.loss();
  m.latency = est.latency();
  m.has_latency = est.latency() != Duration::max();
  m.down = est.down();
  m.samples = est.samples();
  m.published = sched_.now();
  table_.publish(src, dst, m);
}

PathSpec OverlayNetwork::route(NodeId src, NodeId dst, RouteTag tag) {
  assert(src != dst && src < n_ && dst < n_);
  switch (tag) {
    case RouteTag::kDirect:
      return PathSpec{src, dst, kDirectVia};
    case RouteTag::kRand: {
      const auto candidates = routers_[src]->live_intermediates(dst);
      if (candidates.empty()) return PathSpec{src, dst, kDirectVia};
      const auto pick = rng_.next_below(candidates.size());
      return PathSpec{src, dst, candidates[pick]};
    }
    case RouteTag::kLat:
      return routers_[src]->best_lat_path(dst, sched_.now()).path;
    case RouteTag::kLoss:
      return routers_[src]->best_loss_path(dst, sched_.now()).path;
  }
  return PathSpec{src, dst, kDirectVia};
}

OverlaySendResult OverlayNetwork::send(const PathSpec& path, TimePoint t) {
  OverlaySendResult r;
  r.src_up = node_up(path.src, t);
  if (!path.is_direct()) {
    // Liveness of the intermediates is checked at (approximately) the
    // time the packet reaches them; hour-scale failures make the
    // sub-second approximation immaterial.
    r.via_up = node_up(path.via, t);
    if (r.via_up && path.is_two_hop()) r.via_up = node_up(path.via2, t);
  }
  if (!r.via_up) {
    // The packet dies at a dead forwarder; the underlay is not exercised
    // beyond the first leg. Model as a transmit of the first leg only.
    r.net = net_.transmit(PathSpec{path.src, path.via, kDirectVia}, t);
    r.net.delivered = false;
    return r;
  }
  r.net = net_.transmit(path, t);
  if (r.net.delivered) {
    r.dst_up = node_up(path.dst, t + r.net.latency);
  }
  return r;
}

}  // namespace ronpath
