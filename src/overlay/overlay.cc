#include "overlay/overlay.h"

#include <cassert>
#include <tuple>

#include "snapshot/codec.h"

namespace ronpath {

OverlayNetwork::OverlayNetwork(Network& net, Scheduler& sched, OverlayConfig cfg, Rng rng)
    : net_(net),
      sched_(sched),
      cfg_(cfg),
      n_(net.topology().size()),
      rng_(rng.fork("overlay")),
      table_(n_) {
  routers_.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    routers_.push_back(std::make_unique<Router>(i, table_, cfg_.router));
  }
  links_.resize(n_ * n_);
  for (NodeId s = 0; s < n_; ++s) {
    for (NodeId d = 0; d < n_; ++d) {
      if (s == d) continue;
      links_[link_index(s, d)] = std::make_unique<LinkEstimator>(EstimatorConfig{
          cfg_.loss_window, cfg_.use_ewma_loss, cfg_.loss_ewma_alpha, cfg_.lat_alpha});
    }
  }
  host_failures_.reserve(n_);
  const double per_month = cfg_.host_failures_per_month;
  for (NodeId i = 0; i < n_; ++i) {
    const Duration gap = per_month > 0.0
                             ? Duration::from_seconds_f(30.0 * 86'400.0 / per_month)
                             // ~100 years: never within any run, no int64 overflow.
                             : Duration::days(36'500);
    host_failures_.emplace_back(gap, cfg_.host_failure_mean, 1.0,
                                rng_.fork("host-failure").fork(i));
  }
}

std::size_t OverlayNetwork::link_index(NodeId src, NodeId dst) const {
  assert(src < n_ && dst < n_ && src != dst);
  return static_cast<std::size_t>(src) * n_ + dst;
}

const LinkEstimator& OverlayNetwork::estimator(NodeId src, NodeId dst) const {
  return *links_[link_index(src, dst)];
}

std::array<std::int64_t, 6> OverlayNetwork::loss_run_counts() const {
  std::array<std::int64_t, 6> total{};
  for (const auto& link : links_) {
    if (!link) continue;
    const auto& runs = link->loss_runs();
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += runs[i];
  }
  return total;
}

bool OverlayNetwork::node_up(NodeId node, TimePoint t) {
  if (fault_ && fault_->node_crashed(node, t)) return false;
  auto& proc = host_failures_[node];
  proc.generate_until(t + Duration::minutes(1));
  return !proc.active_at(t);
}

void OverlayNetwork::set_fault_injector(const FaultInjector* injector) {
  fault_ = injector;
  net_.set_fault_hook(injector);
}

void OverlayNetwork::start() {
  if (started_) return;
  started_ = true;
  for (NodeId s = 0; s < n_; ++s) {
    for (NodeId d = 0; d < n_; ++d) {
      if (s == d) continue;
      // Stagger initial probes uniformly across the interval so the mesh
      // does not probe in lockstep.
      const Duration offset =
          rng_.fork("stagger").fork(link_index(s, d)).uniform_duration(Duration::zero(),
                                                                       cfg_.probe_interval);
      probe_tasks_.push_back(std::make_unique<PeriodicTask>(
          sched_, cfg_.probe_interval, offset, [this, s, d] { probe_once(s, d); }));
    }
  }
}

void OverlayNetwork::probe_once(NodeId src, NodeId dst) {
  const TimePoint now = sched_.now();
  if (!node_up(src, now)) return;  // failed hosts stop probing

  ++probes_sent_;
  LinkEstimator& est = *links_[link_index(src, dst)];

  // Request leg.
  const PathSpec fwd{src, dst, kDirectVia};
  const TransmitResult req = net_.transmit(fwd, now, TrafficClass::kProbe);
  bool lost = true;
  Duration rtt = Duration::zero();
  if (req.delivered && node_up(dst, now + req.latency)) {
    // Response leg, sent when the request arrives.
    const PathSpec rev{dst, src, kDirectVia};
    const TransmitResult resp = net_.transmit(rev, now + req.latency, TrafficClass::kProbe);
    if (resp.delivered) {
      rtt = req.latency + resp.latency;
      lost = rtt > cfg_.probe_timeout;
    }
  }
  est.record_probe(lost, rtt / 2, now);
  publish(src, dst);

  if (lost && cfg_.followups > 0) arm_followup(src, dst, cfg_.followups);
}

void OverlayNetwork::send_followup(NodeId src, NodeId dst, int remaining) {
  const TimePoint now = sched_.now();
  LinkEstimator& est = *links_[link_index(src, dst)];
  bool lost = true;
  if (node_up(src, now)) {
    const TransmitResult req =
        net_.transmit(PathSpec{src, dst, kDirectVia}, now, TrafficClass::kProbe);
    if (req.delivered && node_up(dst, now + req.latency)) {
      const TransmitResult resp = net_.transmit(PathSpec{dst, src, kDirectVia},
                                                now + req.latency, TrafficClass::kProbe);
      lost = !resp.delivered || (req.latency + resp.latency) > cfg_.probe_timeout;
    }
  }
  est.record_followup(lost, now);
  publish(src, dst);
  if (lost && remaining > 1) arm_followup(src, dst, remaining - 1);
}

void OverlayNetwork::arm_followup(NodeId src, NodeId dst, int remaining) {
  prune_followups();
  PendingFollowup f;
  f.src = src;
  f.dst = dst;
  f.remaining = remaining;
  f.handle = sched_.schedule_after(cfg_.followup_spacing, [this, src, dst, remaining] {
    send_followup(src, dst, remaining);
  });
  followups_.push_back(std::move(f));
}

void OverlayNetwork::prune_followups() {
  std::erase_if(followups_, [](const PendingFollowup& f) { return !f.handle.pending(); });
}

void OverlayNetwork::publish(NodeId src, NodeId dst) {
  // Suppressed advertisements simply never reach the table; the old entry
  // stays and (with entry_ttl set) ages out to "unknown".
  if (fault_ && fault_->lsa_suppressed(src, sched_.now())) return;
  const LinkEstimator& est = *links_[link_index(src, dst)];
  LinkMetrics m;
  m.loss = est.loss();
  m.latency = est.latency();
  m.has_latency = est.latency() != Duration::max();
  m.down = est.down();
  m.samples = est.samples();
  m.published = sched_.now();
  table_.publish(src, dst, m);
}

PathSpec OverlayNetwork::route(NodeId src, NodeId dst, RouteTag tag) {
  assert(src != dst && src < n_ && dst < n_);
  switch (tag) {
    case RouteTag::kDirect:
      return PathSpec{src, dst, kDirectVia};
    case RouteTag::kRand: {
      const auto candidates = routers_[src]->live_intermediates(dst);
      if (candidates.empty()) return PathSpec{src, dst, kDirectVia};
      const auto pick = rng_.next_below(candidates.size());
      return PathSpec{src, dst, candidates[pick]};
    }
    case RouteTag::kLat:
      return routers_[src]->best_lat_path(dst, sched_.now()).path;
    case RouteTag::kLoss:
      return routers_[src]->best_loss_path(dst, sched_.now()).path;
  }
  return PathSpec{src, dst, kDirectVia};
}

OverlaySendResult OverlayNetwork::send(const PathSpec& path, TimePoint t) {
  OverlaySendResult r;
  r.src_up = node_up(path.src, t);
  if (!path.is_direct()) {
    // Liveness of the intermediates is checked at (approximately) the
    // time the packet reaches them; hour-scale failures make the
    // sub-second approximation immaterial.
    r.via_up = node_up(path.via, t);
    if (r.via_up && path.is_two_hop()) r.via_up = node_up(path.via2, t);
  }
  if (!r.via_up) {
    // The packet dies at a dead forwarder; the underlay is not exercised
    // beyond the first leg. Model as a transmit of the first leg only.
    r.net = net_.transmit(PathSpec{path.src, path.via, kDirectVia}, t);
    r.net.delivered = false;
    return r;
  }
  r.net = net_.transmit(path, t);
  if (r.net.delivered) {
    r.dst_up = node_up(path.dst, t + r.net.latency);
  }
  return r;
}

void OverlayNetwork::save_state(snap::Encoder& e) const {
  e.tag("OVLY");
  snap::save_rng(e, rng_);
  e.b(started_);
  e.i64(probes_sent_);
  table_.save_state(e);
  for (const auto& router : routers_) router->save_state(e);
  for (NodeId s = 0; s < n_; ++s) {
    for (NodeId d = 0; d < n_; ++d) {
      if (s == d) continue;
      links_[link_index(s, d)]->save_state(e);
    }
  }
  for (const LazyIntervalProcess& proc : host_failures_) proc.save_state(e);

  // Pending probe ticks: one re-arm descriptor per task, in the stable
  // construction order (s-major, d-minor).
  e.u64(probe_tasks_.size());
  for (const auto& task : probe_tasks_) {
    TimePoint at;
    std::uint64_t seq = 0;
    const bool pending = sched_.pending_entry(task->handle(), &at, &seq);
    e.b(pending);
    if (pending) {
      e.time(at);
      e.u64(seq);
    }
  }

  // Pending follow-up chains. Fired entries are pruned lazily, so collect
  // the still-pending ones first.
  std::vector<std::tuple<NodeId, NodeId, int, TimePoint, std::uint64_t>> live;
  live.reserve(followups_.size());
  for (const PendingFollowup& f : followups_) {
    TimePoint at;
    std::uint64_t seq = 0;
    if (sched_.pending_entry(f.handle, &at, &seq)) {
      live.emplace_back(f.src, f.dst, f.remaining, at, seq);
    }
  }
  e.u64(live.size());
  for (const auto& [src, dst, remaining, at, seq] : live) {
    e.u64(src);
    e.u64(dst);
    e.i64(remaining);
    e.time(at);
    e.u64(seq);
  }
}

void OverlayNetwork::restore_state(snap::Decoder& d) {
  d.expect_tag("OVLY");
  snap::restore_rng(d, rng_);
  if (d.b() != started_) {
    throw snap::SnapshotError("snapshot: overlay started flag mismatch");
  }
  probes_sent_ = d.i64();
  table_.restore_state(d);
  for (const auto& router : routers_) router->restore_state(d);
  for (NodeId s = 0; s < n_; ++s) {
    for (NodeId dd = 0; dd < n_; ++dd) {
      if (s == dd) continue;
      links_[link_index(s, dd)]->restore_state(d);
    }
  }
  for (LazyIntervalProcess& proc : host_failures_) proc.restore_state(d);

  const std::uint64_t n_tasks = d.u64();
  if (n_tasks != probe_tasks_.size()) {
    throw snap::SnapshotError("snapshot: probe task count mismatch (snapshot has " +
                              std::to_string(n_tasks) + ", overlay has " +
                              std::to_string(probe_tasks_.size()) + ")");
  }
  for (const auto& task : probe_tasks_) {
    if (d.b()) {
      const TimePoint at = d.time();
      const std::uint64_t seq = d.u64();
      task->restore_arm(at, seq);
    } else {
      task->stop();
    }
  }

  followups_.clear();
  const std::uint64_t n_follow = d.count(40);
  for (std::uint64_t i = 0; i < n_follow; ++i) {
    PendingFollowup f;
    f.src = static_cast<NodeId>(d.u64());
    f.dst = static_cast<NodeId>(d.u64());
    f.remaining = static_cast<int>(d.i64());
    if (f.src >= n_ || f.dst >= n_ || f.src == f.dst || f.remaining < 1) {
      throw snap::SnapshotError("snapshot: malformed follow-up descriptor");
    }
    const TimePoint at = d.time();
    const std::uint64_t seq = d.u64();
    const NodeId src = f.src;
    const NodeId dst = f.dst;
    const int remaining = f.remaining;
    f.handle = sched_.schedule_at_restored(at, seq, [this, src, dst, remaining] {
      send_followup(src, dst, remaining);
    });
    followups_.push_back(std::move(f));
  }
}

void OverlayNetwork::check_invariants(TimePoint now, std::vector<std::string>& out) const {
  table_.check_invariants(now, out);
  for (const auto& router : routers_) router->check_invariants(now, out);
  for (NodeId s = 0; s < n_; ++s) {
    for (NodeId d = 0; d < n_; ++d) {
      if (s == d) continue;
      const std::string who =
          "estimator " + std::to_string(s) + "->" + std::to_string(d);
      links_[link_index(s, d)]->check_invariants(who, now, out);
    }
  }
  for (NodeId i = 0; i < host_failures_.size(); ++i) {
    host_failures_[i].check_invariants("host-failure " + std::to_string(i), out);
  }
  if (probes_sent_ < 0) out.push_back("overlay: negative probe counter");
  if (started_ && probe_tasks_.size() != n_ * (n_ - 1)) {
    out.push_back("overlay: probe task count does not cover the mesh");
  }
  for (const PendingFollowup& f : followups_) {
    if (!f.handle.pending()) continue;  // fired but not yet pruned: fine
    if (f.remaining < 1 || f.remaining > cfg_.followups) {
      out.push_back("overlay: pending follow-up with remaining outside [1, " +
                    std::to_string(cfg_.followups) + "]");
    }
  }
}

}  // namespace ronpath
