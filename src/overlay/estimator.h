// Per-link path-quality estimation from probe outcomes.
//
// Following Section 3.1 of the paper, loss is scored as the average over
// the last 100 probes of a link, and latency as a low-pass EWMA of probe
// round-trip samples. A link is marked down when an initial probe loss is
// followed by four consecutive lost follow-up probes, and recovers on the
// next successful probe. A WindowLossEstimator/EwmaLossEstimator pair
// exists so the window-vs-EWMA design choice can be ablated.

#ifndef RONPATH_OVERLAY_ESTIMATOR_H_
#define RONPATH_OVERLAY_ESTIMATOR_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "util/time.h"

namespace ronpath {

namespace snap {
class Encoder;
class Decoder;
}  // namespace snap

// Average loss over a sliding window of the most recent probe outcomes.
class WindowLossEstimator {
 public:
  explicit WindowLossEstimator(std::size_t window = 100) : window_(window) {}

  void record(bool lost);
  // Loss estimate in [0,1]; optimistic 0 before any samples.
  [[nodiscard]] double loss() const;
  [[nodiscard]] std::size_t samples() const { return outcomes_.size(); }

 private:
  friend class LinkEstimator;  // snapshot save/restore reaches the raw window
  std::size_t window_;
  std::deque<bool> outcomes_;
  std::size_t lost_in_window_ = 0;
};

// Exponentially weighted loss average (ablation alternative).
class EwmaLossEstimator {
 public:
  explicit EwmaLossEstimator(double alpha = 0.05) : alpha_(alpha) {}

  void record(bool lost);
  [[nodiscard]] double loss() const { return have_ ? value_ : 0.0; }

 private:
  friend class LinkEstimator;
  double alpha_;
  double value_ = 0.0;
  bool have_ = false;
};

// Low-pass filtered latency estimate.
class LatencyEstimator {
 public:
  explicit LatencyEstimator(double alpha = 0.1) : alpha_(alpha) {}

  void record(Duration sample);
  [[nodiscard]] bool has_estimate() const { return have_; }
  // Duration::max() before the first sample, so unprobed links never win
  // a latency-minimization comparison.
  [[nodiscard]] Duration latency() const;

 private:
  friend class LinkEstimator;
  double alpha_;
  double value_ms_ = 0.0;
  bool have_ = false;
};

// Loss-scoring mode: the paper's last-100-probe window, or an EWMA
// (ablation alternative; see DESIGN.md choice #4).
struct EstimatorConfig {
  std::size_t loss_window = 100;
  bool use_ewma_loss = false;
  double loss_ewma_alpha = 0.03;
  double lat_alpha = 0.1;
};

// Full per-link state as maintained by a probing node about one peer.
class LinkEstimator {
 public:
  LinkEstimator(std::size_t loss_window, double lat_alpha)
      : LinkEstimator(EstimatorConfig{loss_window, false, 0.03, lat_alpha}) {}
  explicit LinkEstimator(const EstimatorConfig& cfg)
      : use_ewma_(cfg.use_ewma_loss),
        loss_(cfg.loss_window),
        ewma_(cfg.loss_ewma_alpha),
        latency_(cfg.lat_alpha) {}

  void record_probe(bool lost, Duration rtt_half, TimePoint now);
  // Follow-up probes (the up-to-four 1 s-spaced probes after a loss) only
  // drive down-detection, not the loss window, mirroring the paper's
  // separation of probing and scoring.
  void record_followup(bool lost, TimePoint now);

  [[nodiscard]] double loss() const { return use_ewma_ ? ewma_.loss() : loss_.loss(); }
  [[nodiscard]] Duration latency() const { return latency_.latency(); }
  [[nodiscard]] bool down() const { return down_; }
  [[nodiscard]] TimePoint last_update() const { return last_update_; }
  [[nodiscard]] std::size_t samples() const { return loss_.samples(); }

  // Completed runs of consecutive lost probes, bucketed by run length
  // 1..5 and 6+ (index 5). At the 15 s probe interval a run of length k
  // implies an outage of roughly 15(k-1)..15k seconds, the scale the
  // paper's cited routing-convergence outages live at.
  [[nodiscard]] const std::array<std::int64_t, 6>& loss_runs() const { return loss_runs_; }

  // Snapshot support: full mutable state (window outcomes, EWMA values,
  // down flag, run counters). restore_state expects identical config.
  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);

  // Invariant auditor: window bounds, loss range, run-counter and
  // latency-sentinel consistency. `now` bounds last_update staleness.
  void check_invariants(const std::string& who, TimePoint now,
                        std::vector<std::string>& out) const;

 private:
  bool use_ewma_ = false;
  WindowLossEstimator loss_;
  EwmaLossEstimator ewma_;
  LatencyEstimator latency_;
  int consecutive_followup_losses_ = 0;
  int current_loss_run_ = 0;
  std::array<std::int64_t, 6> loss_runs_{};
  bool down_ = false;
  TimePoint last_update_;
};

}  // namespace ronpath

#endif  // RONPATH_OVERLAY_ESTIMATOR_H_
