#include "overlay/estimator.h"

#include <algorithm>
#include <cassert>

namespace ronpath {

void WindowLossEstimator::record(bool lost) {
  outcomes_.push_back(lost);
  if (lost) ++lost_in_window_;
  if (outcomes_.size() > window_) {
    if (outcomes_.front()) --lost_in_window_;
    outcomes_.pop_front();
  }
}

double WindowLossEstimator::loss() const {
  if (outcomes_.empty()) return 0.0;
  return static_cast<double>(lost_in_window_) / static_cast<double>(outcomes_.size());
}

void EwmaLossEstimator::record(bool lost) {
  const double x = lost ? 1.0 : 0.0;
  if (!have_) {
    value_ = x;
    have_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void LatencyEstimator::record(Duration sample) {
  const double ms = sample.to_millis_f();
  if (!have_) {
    value_ms_ = ms;
    have_ = true;
  } else {
    value_ms_ = alpha_ * ms + (1.0 - alpha_) * value_ms_;
  }
}

Duration LatencyEstimator::latency() const {
  return have_ ? Duration::from_millis_f(value_ms_) : Duration::max();
}

void LinkEstimator::record_probe(bool lost, Duration rtt_half, TimePoint now) {
  loss_.record(lost);
  ewma_.record(lost);
  if (lost) {
    ++current_loss_run_;
  } else if (current_loss_run_ > 0) {
    ++loss_runs_[static_cast<std::size_t>(std::min(current_loss_run_, 6) - 1)];
    current_loss_run_ = 0;
  }
  if (!lost) {
    latency_.record(rtt_half);
    down_ = false;
    consecutive_followup_losses_ = 0;
  }
  last_update_ = now;
}

void LinkEstimator::record_followup(bool lost, TimePoint now) {
  if (lost) {
    if (++consecutive_followup_losses_ >= 4) down_ = true;
  } else {
    consecutive_followup_losses_ = 0;
    down_ = false;
  }
  last_update_ = now;
}

}  // namespace ronpath
