#include "overlay/estimator.h"

#include <algorithm>
#include <cassert>

#include "snapshot/codec.h"

namespace ronpath {

void WindowLossEstimator::record(bool lost) {
  outcomes_.push_back(lost);
  if (lost) ++lost_in_window_;
  if (outcomes_.size() > window_) {
    if (outcomes_.front()) --lost_in_window_;
    outcomes_.pop_front();
  }
}

double WindowLossEstimator::loss() const {
  if (outcomes_.empty()) return 0.0;
  return static_cast<double>(lost_in_window_) / static_cast<double>(outcomes_.size());
}

void EwmaLossEstimator::record(bool lost) {
  const double x = lost ? 1.0 : 0.0;
  if (!have_) {
    value_ = x;
    have_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void LatencyEstimator::record(Duration sample) {
  const double ms = sample.to_millis_f();
  if (!have_) {
    value_ms_ = ms;
    have_ = true;
  } else {
    value_ms_ = alpha_ * ms + (1.0 - alpha_) * value_ms_;
  }
}

Duration LatencyEstimator::latency() const {
  return have_ ? Duration::from_millis_f(value_ms_) : Duration::max();
}

void LinkEstimator::record_probe(bool lost, Duration rtt_half, TimePoint now) {
  loss_.record(lost);
  ewma_.record(lost);
  if (lost) {
    ++current_loss_run_;
  } else if (current_loss_run_ > 0) {
    ++loss_runs_[static_cast<std::size_t>(std::min(current_loss_run_, 6) - 1)];
    current_loss_run_ = 0;
  }
  if (!lost) {
    latency_.record(rtt_half);
    down_ = false;
    consecutive_followup_losses_ = 0;
  }
  last_update_ = now;
}

void LinkEstimator::record_followup(bool lost, TimePoint now) {
  if (lost) {
    if (++consecutive_followup_losses_ >= 4) down_ = true;
  } else {
    consecutive_followup_losses_ = 0;
    down_ = false;
  }
  last_update_ = now;
}

void LinkEstimator::save_state(snap::Encoder& e) const {
  e.tag("LEST");
  // Window outcomes, bit-packed oldest-first.
  e.u64(loss_.outcomes_.size());
  std::uint8_t byte = 0;
  int filled = 0;
  for (const bool lost : loss_.outcomes_) {
    byte = static_cast<std::uint8_t>(byte | ((lost ? 1u : 0u) << filled));
    if (++filled == 8) {
      e.u8(byte);
      byte = 0;
      filled = 0;
    }
  }
  if (filled > 0) e.u8(byte);
  e.u64(loss_.lost_in_window_);
  e.f64(ewma_.value_);
  e.b(ewma_.have_);
  e.f64(latency_.value_ms_);
  e.b(latency_.have_);
  e.i64(consecutive_followup_losses_);
  e.i64(current_loss_run_);
  for (const std::int64_t r : loss_runs_) e.i64(r);
  e.b(down_);
  e.time(last_update_);
}

void LinkEstimator::restore_state(snap::Decoder& d) {
  d.expect_tag("LEST");
  const std::uint64_t n = d.count(0);
  if (n > loss_.window_) {
    throw snap::SnapshotError("snapshot: loss window holds " + std::to_string(n) +
                              " outcomes but is configured for " +
                              std::to_string(loss_.window_));
  }
  loss_.outcomes_.clear();
  std::uint8_t byte = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i % 8 == 0) byte = d.u8();
    loss_.outcomes_.push_back((byte >> (i % 8)) & 1);
  }
  loss_.lost_in_window_ = d.u64();
  ewma_.value_ = d.f64();
  ewma_.have_ = d.b();
  latency_.value_ms_ = d.f64();
  latency_.have_ = d.b();
  consecutive_followup_losses_ = static_cast<int>(d.i64());
  current_loss_run_ = static_cast<int>(d.i64());
  for (std::int64_t& r : loss_runs_) r = d.i64();
  down_ = d.b();
  last_update_ = d.time();
}

void LinkEstimator::check_invariants(const std::string& who, TimePoint now,
                                     std::vector<std::string>& out) const {
  if (loss_.outcomes_.size() > loss_.window_) {
    out.push_back(who + ": loss window overfull");
  }
  std::size_t lost = 0;
  for (const bool l : loss_.outcomes_) lost += l ? 1 : 0;
  if (lost != loss_.lost_in_window_) {
    out.push_back(who + ": lost_in_window counter out of sync with the window contents");
  }
  const double l = loss();
  if (!(l >= 0.0 && l <= 1.0)) out.push_back(who + ": loss estimate outside [0,1]");
  // Saturating-latency sentinel: the estimate is either the Duration::max()
  // "never probed" sentinel or a sane finite value — anything between
  // means a saturating_add chain leaked a near-overflow value in.
  const Duration lat = latency();
  if (lat != Duration::max() &&
      (lat < Duration::zero() || lat >= Duration::days(100'000))) {
    out.push_back(who + ": latency estimate in the saturation dead zone");
  }
  if (latency_.have_ != (lat != Duration::max())) {
    out.push_back(who + ": latency sentinel inconsistent with has-sample flag");
  }
  if (consecutive_followup_losses_ < 0 || current_loss_run_ < 0) {
    out.push_back(who + ": negative probe-run counter");
  }
  for (const std::int64_t r : loss_runs_) {
    if (r < 0) out.push_back(who + ": negative loss-run bucket");
  }
  if (last_update_ > now) out.push_back(who + ": estimator updated in the future");
}

}  // namespace ronpath
