// Compiles a FaultSchedule against a concrete topology into O(log n)
// time-indexed queries, and implements the net-layer FaultHook.
//
// Compilation expands every spec - including periodic ones, up to the
// horizon - into per-component and per-node sorted, merged activation
// windows. Queries are pure binary searches over immutable data, so the
// injector is safe to share by const reference and its answers are a
// deterministic function of (schedule, topology, horizon) alone.
//
// Integration points:
//   Network::set_fault_hook        - component blackouts + probe blackhole
//                                    (DropCause::kInjected)
//   OverlayNetwork::set_fault_injector - LSA suppression, crash-restart
//                                    (and forwards the hook to the network)

#ifndef RONPATH_FAULT_INJECTOR_H_
#define RONPATH_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/fault.h"
#include "net/network.h"
#include "net/topology.h"

namespace ronpath {

class FaultInjector final : public FaultHook {
 public:
  // Throws std::runtime_error when a spec references a site/node id
  // outside the topology. `horizon` bounds periodic expansion (use the
  // run span plus slack, as with Network's own pregeneration).
  FaultInjector(const FaultSchedule& schedule, const Topology& topology, Duration horizon);

  // FaultHook (consulted by Network::transmit).
  [[nodiscard]] bool component_down(std::size_t component, TimePoint t) const override;
  [[nodiscard]] bool probe_blackhole(NodeId node, TimePoint t) const override;

  // Control-plane queries (consulted by OverlayNetwork).
  [[nodiscard]] bool lsa_suppressed(NodeId node, TimePoint t) const;
  [[nodiscard]] bool node_crashed(NodeId node, TimePoint t) const;

  // Introspection for tests and reports.
  [[nodiscard]] std::size_t faulted_component_count() const;
  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }
  // Overlapping/duplicate activation windows that were silently coalesced
  // during compilation. Nonzero usually means a schedule specifies the
  // same component twice for overlapping spans — legal, but worth
  // surfacing in reports since the duplicate has no effect.
  [[nodiscard]] std::int64_t merged_window_count() const { return merged_window_count_; }

 private:
  struct Window {
    TimePoint start;
    TimePoint end;
  };
  using Windows = std::vector<Window>;

  static void add_window(Windows& w, TimePoint start, Duration dur);
  // Sorts and coalesces each window list; returns how many windows were
  // folded into a predecessor.
  static std::int64_t finalize(std::vector<Windows>& table);
  [[nodiscard]] static bool covered(const Windows& w, TimePoint t);

  FaultSchedule schedule_;
  std::int64_t merged_window_count_ = 0;
  std::vector<Windows> component_windows_;  // [component index]
  std::vector<Windows> blackhole_windows_;  // [node]
  std::vector<Windows> lsa_windows_;        // [node]
  std::vector<Windows> crash_windows_;      // [node]
};

}  // namespace ronpath

#endif  // RONPATH_FAULT_INJECTOR_H_
