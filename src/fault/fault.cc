#include "fault/fault.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ronpath {
namespace {

// ---------------------------------------------------------------- lexing

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t j = i;
    while (j < line.size() && !std::isspace(static_cast<unsigned char>(line[j])) &&
           line[j] != '#') {
      ++j;
    }
    out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

// Duration literal: NUMBER followed by ms|s|m|h (e.g. "45s", "1.5h").
std::optional<Duration> parse_duration_token(std::string_view tok) {
  std::size_t unit_at = tok.size();
  while (unit_at > 0 && !std::isdigit(static_cast<unsigned char>(tok[unit_at - 1])) &&
         tok[unit_at - 1] != '.') {
    --unit_at;
  }
  const std::string_view num = tok.substr(0, unit_at);
  const std::string_view unit = tok.substr(unit_at);
  if (num.empty()) return std::nullopt;
  double v = 0.0;
  const auto [end, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
  if (ec != std::errc() || end != num.data() + num.size() || v < 0.0) return std::nullopt;
  if (unit == "ms") return Duration::from_millis_f(v);
  if (unit == "s") return Duration::from_seconds_f(v);
  if (unit == "m") return Duration::from_seconds_f(v * 60.0);
  if (unit == "h") return Duration::from_seconds_f(v * 3600.0);
  return std::nullopt;
}

std::optional<NodeId> parse_id(std::string_view tok) {
  unsigned v = 0;
  const auto [end, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
  if (ec != std::errc() || end != tok.data() + tok.size() || v >= kInvalidNode) {
    return std::nullopt;
  }
  return static_cast<NodeId>(v);
}

std::optional<std::vector<NodeId>> parse_id_list(std::string_view tok) {
  std::vector<NodeId> ids;
  std::size_t pos = 0;
  while (pos <= tok.size()) {
    const std::size_t comma = tok.find(',', pos);
    const std::string_view part =
        tok.substr(pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    const auto id = parse_id(part);
    if (!id) return std::nullopt;
    ids.push_back(*id);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (ids.empty()) return std::nullopt;
  return ids;
}

// "3->9" core-link token.
std::optional<std::pair<NodeId, NodeId>> parse_link(std::string_view tok) {
  const std::size_t arrow = tok.find("->");
  if (arrow == std::string_view::npos) return std::nullopt;
  const auto a = parse_id(tok.substr(0, arrow));
  const auto b = parse_id(tok.substr(arrow + 2));
  if (!a || !b || *a == *b) return std::nullopt;
  return std::make_pair(*a, *b);
}

std::string duration_dsl(Duration d) {
  const std::int64_t ns = d.count_nanos();
  char buf[32];
  if (ns % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(d.count_seconds()));
  } else {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(d.count_millis()));
  }
  return buf;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kComponentBlackout: return "blackout";
    case FaultKind::kProbeBlackhole: return "probe-blackhole";
    case FaultKind::kLsaLoss: return "lsa-loss";
    case FaultKind::kCrash: return "crash";
  }
  return "?";
}

// ------------------------------------------------------------- builders

FaultSchedule& FaultSchedule::down_site(NodeId site, TimePoint at, Duration dur,
                                        FaultScope scope) {
  return down_sites({site}, at, dur, scope);
}

FaultSchedule& FaultSchedule::down_sites(std::vector<NodeId> sites, TimePoint at, Duration dur,
                                         FaultScope scope) {
  FaultSpec s;
  s.kind = FaultKind::kComponentBlackout;
  s.scope = scope;
  s.sites = std::move(sites);
  s.start = at;
  s.duration = dur;
  add(std::move(s));
  return *this;
}

FaultSchedule& FaultSchedule::down_link(NodeId src, NodeId dst, TimePoint at, Duration dur) {
  FaultSpec s;
  s.kind = FaultKind::kComponentBlackout;
  s.scope = FaultScope::kLink;
  s.link_src = src;
  s.link_dst = dst;
  s.start = at;
  s.duration = dur;
  add(std::move(s));
  return *this;
}

FaultSchedule& FaultSchedule::flap_link(NodeId src, NodeId dst, Duration period, Duration dur) {
  FaultSpec s;
  s.kind = FaultKind::kComponentBlackout;
  s.scope = FaultScope::kLink;
  s.link_src = src;
  s.link_dst = dst;
  s.start = TimePoint::epoch() + period;
  s.duration = dur;
  s.period = period;
  add(std::move(s));
  return *this;
}

FaultSchedule& FaultSchedule::blackhole_probes(NodeId node, TimePoint at, Duration dur) {
  FaultSpec s;
  s.kind = FaultKind::kProbeBlackhole;
  s.scope = FaultScope::kNode;
  s.sites = {node};
  s.start = at;
  s.duration = dur;
  add(std::move(s));
  return *this;
}

FaultSchedule& FaultSchedule::lsa_loss(NodeId node, TimePoint at, Duration dur) {
  FaultSpec s;
  s.kind = FaultKind::kLsaLoss;
  s.scope = FaultScope::kNode;
  s.sites = {node};
  s.start = at;
  s.duration = dur;
  add(std::move(s));
  return *this;
}

FaultSchedule& FaultSchedule::crash(NodeId node, TimePoint at, Duration dur) {
  FaultSpec s;
  s.kind = FaultKind::kCrash;
  s.scope = FaultScope::kNode;
  s.sites = {node};
  s.start = at;
  s.duration = dur;
  add(std::move(s));
  return *this;
}

FaultSchedule& FaultSchedule::crash_churn(NodeId node, Duration period, Duration dur) {
  FaultSpec s;
  s.kind = FaultKind::kCrash;
  s.scope = FaultScope::kNode;
  s.sites = {node};
  s.start = TimePoint::epoch() + period;
  s.duration = dur;
  s.period = period;
  add(std::move(s));
  return *this;
}

// -------------------------------------------------------------- parsing

std::optional<FaultSchedule> FaultSchedule::parse(std::string_view text, std::string* error) {
  FaultSchedule schedule;
  int line_no = 0;
  // Diagnostics carry line and column so schedule authors can find the
  // offending token in multi-line scenarios without counting words.
  auto fail = [&](std::size_t col, const std::string& msg) -> std::optional<FaultSchedule> {
    if (error) {
      *error = "line " + std::to_string(line_no) + ", col " + std::to_string(col) + ": " + msg;
    }
    return std::nullopt;
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    ++line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    const auto tok = tokenize(line);
    if (tok.empty()) continue;

    std::size_t i = 0;
    auto next = [&]() -> std::optional<std::string_view> {
      if (i >= tok.size()) return std::nullopt;
      return tok[i++];
    };
    // Tokens are views into `line`, so pointer arithmetic recovers the
    // 1-based column of any token...
    const auto col_of = [&](std::string_view t) {
      return static_cast<std::size_t>(t.data() - line.data()) + 1;
    };
    // ...and "expected more" errors point just past the last token read.
    const auto end_col = [&]() {
      if (i == 0) return std::size_t{1};
      const std::string_view last = tok[i - 1];
      return col_of(last) + last.size();
    };

    FaultSpec spec;

    // 'at TIME' or 'every DUR'.
    const auto head = *next();
    const auto when_tok = next();
    if (!when_tok) return fail(end_col(), "expected a time after '" + std::string(head) + "'");
    const auto when = parse_duration_token(*when_tok);
    if (!when) {
      return fail(col_of(*when_tok),
                  "bad time \"" + std::string(*when_tok) + "\" (want e.g. 120s, 5m)");
    }
    if (head == "at") {
      spec.start = TimePoint::epoch() + *when;
    } else if (head == "every") {
      if (when->is_zero()) {
        return fail(col_of(*when_tok), "'every' period must be positive");
      }
      spec.start = TimePoint::epoch() + *when;
      spec.period = *when;
    } else {
      return fail(col_of(head), "expected 'at' or 'every', got \"" + std::string(head) + "\"");
    }

    // Action verb.
    const auto verb_tok = next();
    if (!verb_tok) return fail(end_col(), "expected an action after the time");
    const std::string_view verb = *verb_tok;
    if (verb == "down" || verb == "flap") {
      if (verb == "flap" && !spec.periodic()) {
        return fail(col_of(verb), "'flap' needs 'every' (use 'down' for a one-shot)");
      }
      spec.kind = FaultKind::kComponentBlackout;
      const auto target = next();
      if (!target) {
        return fail(end_col(),
                    "expected 'site', 'sites' or 'link' after '" + std::string(verb) + "'");
      }
      if (*target == "site" || *target == "sites") {
        const auto ids_tok = next();
        if (!ids_tok) return fail(end_col(), "expected site id(s)");
        const auto ids = parse_id_list(*ids_tok);
        if (!ids) {
          return fail(col_of(*ids_tok), "bad site id list \"" + std::string(*ids_tok) + "\"");
        }
        spec.sites = *ids;
        spec.scope = FaultScope::kSiteAll;
        if (i < tok.size() && tok[i] != "for") {
          const auto scope = *next();
          if (scope == "access") {
            spec.scope = FaultScope::kSiteAccess;
          } else if (scope == "provider") {
            spec.scope = FaultScope::kSiteProvider;
          } else {
            return fail(col_of(scope),
                        "bad scope \"" + std::string(scope) + "\" (want access|provider)");
          }
        }
      } else if (*target == "link") {
        const auto link_tok = next();
        if (!link_tok) return fail(end_col(), "expected a link like 3->9");
        const auto link = parse_link(*link_tok);
        if (!link) {
          return fail(col_of(*link_tok),
                      "bad link \"" + std::string(*link_tok) + "\" (want e.g. 3->9)");
        }
        spec.scope = FaultScope::kLink;
        spec.link_src = link->first;
        spec.link_dst = link->second;
      } else {
        return fail(col_of(*target),
                    "bad target \"" + std::string(*target) + "\" (want site|sites|link)");
      }
    } else if (verb == "blackhole" || verb == "lsa-loss" || verb == "crash") {
      spec.kind = verb == "blackhole" ? FaultKind::kProbeBlackhole
                  : verb == "lsa-loss" ? FaultKind::kLsaLoss
                                       : FaultKind::kCrash;
      spec.scope = FaultScope::kNode;
      if (verb == "blackhole") {
        const auto probes = next();
        if (!probes || *probes != "probes") {
          return fail(probes ? col_of(*probes) : end_col(), "expected 'probes' after 'blackhole'");
        }
      }
      const auto node_kw = next();
      if (!node_kw || *node_kw != "node") {
        return fail(node_kw ? col_of(*node_kw) : end_col(), "expected 'node <id>'");
      }
      const auto id_tok = next();
      if (!id_tok) return fail(end_col(), "expected a node id");
      const auto id = parse_id(*id_tok);
      if (!id) return fail(col_of(*id_tok), "bad node id \"" + std::string(*id_tok) + "\"");
      spec.sites = {*id};
    } else {
      return fail(col_of(verb), "unknown action \"" + std::string(verb) +
                                    "\" (want down|flap|blackhole|lsa-loss|crash)");
    }

    // 'for DUR'.
    const auto for_kw = next();
    if (!for_kw || *for_kw != "for") {
      return fail(for_kw ? col_of(*for_kw) : end_col(), "expected 'for <duration>'");
    }
    const auto dur_tok = next();
    if (!dur_tok) return fail(end_col(), "expected a duration after 'for'");
    const auto dur = parse_duration_token(*dur_tok);
    if (!dur || dur->is_zero()) {
      return fail(col_of(*dur_tok), "bad duration \"" + std::string(*dur_tok) + "\"");
    }
    spec.duration = *dur;
    if (spec.periodic() && spec.duration >= spec.period) {
      return fail(col_of(*dur_tok), "fault duration must be shorter than its 'every' period");
    }
    if (i != tok.size()) {
      return fail(col_of(tok[i]), "trailing junk \"" + std::string(tok[i]) + "\"");
    }

    schedule.add(std::move(spec));
  }
  return schedule;
}

std::string FaultSchedule::to_string() const {
  std::string out;
  for (const auto& f : faults_) {
    if (f.periodic()) {
      out += "every " + duration_dsl(f.period) + " ";
    } else {
      out += "at " + duration_dsl(f.start.since_epoch()) + " ";
    }
    switch (f.kind) {
      case FaultKind::kComponentBlackout: {
        if (f.scope == FaultScope::kLink) {
          out += (f.periodic() ? "flap link " : "down link ") + std::to_string(f.link_src) +
                 "->" + std::to_string(f.link_dst);
        } else {
          out += f.sites.size() == 1 ? "down site " : "down sites ";
          for (std::size_t i = 0; i < f.sites.size(); ++i) {
            if (i) out += ",";
            out += std::to_string(f.sites[i]);
          }
          if (f.scope == FaultScope::kSiteAccess) out += " access";
          if (f.scope == FaultScope::kSiteProvider) out += " provider";
        }
        break;
      }
      case FaultKind::kProbeBlackhole:
        out += "blackhole probes node " + std::to_string(f.sites.front());
        break;
      case FaultKind::kLsaLoss:
        out += "lsa-loss node " + std::to_string(f.sites.front());
        break;
      case FaultKind::kCrash:
        out += "crash node " + std::to_string(f.sites.front());
        break;
    }
    out += " for " + duration_dsl(f.duration) + "\n";
  }
  return out;
}

}  // namespace ronpath
