#include "fault/scenarios.h"

#include <array>

namespace ronpath {
namespace {

// Times below must stay consistent with kFaultStart / kFaultDuration
// (40 min = 2400 s, 5 min = 300 s).
constexpr std::array<Scenario, 8> kScenarios = {{
    {
        "single-site-blackout",
        "direct transit src<->dst dies; every via stays clean (reactive wins)",
        "at 2400s down link 0->1 for 300s\n"
        "at 2400s down link 1->0 for 300s\n",
        kFaultStart, kFaultDuration, /*routable=*/true,
    },
    {
        "access-blackout",
        "destination access link dies; no overlay path can help (Section 2.4)",
        "at 2400s down site 1 access for 300s\n",
        kFaultStart, kFaultDuration, /*routable=*/false,
    },
    {
        "provider-blackout",
        "destination transit provider dies; shared by all paths, unroutable",
        "at 2400s down site 1 provider for 300s\n",
        kFaultStart, kFaultDuration, /*routable=*/false,
    },
    {
        "regional-blackout",
        "correlated provider blackout at three sites incl. the destination",
        "at 2400s down sites 1,2,3 provider for 300s\n",
        kFaultStart, kFaultDuration, /*routable=*/false,
    },
    {
        "probe-blackhole",
        "all control probes at the source die; data still delivers - the "
        "estimator is poisoned and the router must fall back to direct",
        "at 2400s blackhole probes node 0 for 300s\n",
        kFaultStart, kFaultDuration, /*routable=*/true,
    },
    {
        "lsa-staleness",
        "source's link-state advertisements are lost; its rows go stale and "
        "must expire to unknown instead of being trusted forever",
        "at 2400s lsa-loss node 0 for 300s\n",
        kFaultStart, kFaultDuration, /*routable=*/true,
    },
    {
        "link-flap",
        "direct transit flaps 15 s down every 2 min; hold-down must bound "
        "route-switch churn",
        "every 120s flap link 0->1 for 15s\n"
        "every 120s flap link 1->0 for 15s\n",
        TimePoint::epoch() + Duration::minutes(30), Duration::minutes(25), /*routable=*/true,
    },
    {
        "crash-churn",
        "a candidate via crash-restarts every 4 min; routing must avoid the "
        "churning forwarder",
        "every 240s crash node 2 for 30s\n",
        TimePoint::epoch() + Duration::minutes(30), Duration::minutes(25), /*routable=*/true,
    },
}};

}  // namespace

std::span<const Scenario> canonical_scenarios() { return kScenarios; }

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& s : kScenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace ronpath
