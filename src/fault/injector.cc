#include "fault/injector.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ronpath {
namespace {

void require_site(NodeId id, std::size_t n, const char* what) {
  if (id >= n) {
    throw std::runtime_error(std::string("fault schedule: ") + what + " id " +
                             std::to_string(id) + " outside topology of " + std::to_string(n) +
                             " sites");
  }
}

}  // namespace

FaultInjector::FaultInjector(const FaultSchedule& schedule, const Topology& topology,
                             Duration horizon)
    : schedule_(schedule) {
  const std::size_t n = topology.size();
  component_windows_.resize(topology.component_count());
  blackhole_windows_.resize(n);
  lsa_windows_.resize(n);
  crash_windows_.resize(n);
  const TimePoint end_of_time = TimePoint::epoch() + horizon;

  for (const FaultSpec& f : schedule.faults()) {
    // Occurrence times: one-shot, or periodic up to the horizon.
    std::vector<TimePoint> starts;
    if (f.periodic()) {
      for (TimePoint s = f.start; s < end_of_time; s += f.period) starts.push_back(s);
    } else {
      starts.push_back(f.start);
    }

    // Component set / node set of the spec.
    std::vector<std::size_t> components;
    std::vector<Windows>* node_table = nullptr;
    switch (f.kind) {
      case FaultKind::kComponentBlackout: {
        if (f.scope == FaultScope::kLink) {
          require_site(f.link_src, n, "link endpoint");
          require_site(f.link_dst, n, "link endpoint");
          components.push_back(topology.core_index(f.link_src, f.link_dst));
        } else {
          for (NodeId site : f.sites) {
            require_site(site, n, "site");
            const bool access =
                f.scope == FaultScope::kSiteAll || f.scope == FaultScope::kSiteAccess;
            const bool provider =
                f.scope == FaultScope::kSiteAll || f.scope == FaultScope::kSiteProvider;
            if (access) {
              components.push_back(topology.site_index(site, SiteComp::kUp));
              components.push_back(topology.site_index(site, SiteComp::kDown));
            }
            if (provider) {
              components.push_back(topology.site_index(site, SiteComp::kProvOut));
              components.push_back(topology.site_index(site, SiteComp::kProvIn));
            }
          }
        }
        break;
      }
      case FaultKind::kProbeBlackhole: node_table = &blackhole_windows_; break;
      case FaultKind::kLsaLoss: node_table = &lsa_windows_; break;
      case FaultKind::kCrash: node_table = &crash_windows_; break;
    }

    for (TimePoint s : starts) {
      for (std::size_t ci : components) add_window(component_windows_[ci], s, f.duration);
      if (node_table) {
        for (NodeId node : f.sites) {
          require_site(node, n, "node");
          add_window((*node_table)[node], s, f.duration);
        }
      }
    }
  }

  merged_window_count_ += finalize(component_windows_);
  merged_window_count_ += finalize(blackhole_windows_);
  merged_window_count_ += finalize(lsa_windows_);
  merged_window_count_ += finalize(crash_windows_);
}

void FaultInjector::add_window(Windows& w, TimePoint start, Duration dur) {
  w.push_back({start, start + dur});
}

std::int64_t FaultInjector::finalize(std::vector<Windows>& table) {
  std::int64_t folded = 0;
  for (Windows& w : table) {
    std::sort(w.begin(), w.end(),
              [](const Window& a, const Window& b) { return a.start < b.start; });
    Windows merged;
    for (const Window& win : w) {
      if (!merged.empty() && win.start <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, win.end);
        ++folded;
      } else {
        merged.push_back(win);
      }
    }
    w = std::move(merged);
  }
  return folded;
}

bool FaultInjector::covered(const Windows& w, TimePoint t) {
  if (w.empty()) return false;
  auto it = std::upper_bound(w.begin(), w.end(), t,
                             [](TimePoint v, const Window& win) { return v < win.start; });
  if (it == w.begin()) return false;
  --it;
  return it->end > t;
}

bool FaultInjector::component_down(std::size_t component, TimePoint t) const {
  return covered(component_windows_[component], t);
}

bool FaultInjector::probe_blackhole(NodeId node, TimePoint t) const {
  return node < blackhole_windows_.size() && covered(blackhole_windows_[node], t);
}

bool FaultInjector::lsa_suppressed(NodeId node, TimePoint t) const {
  return node < lsa_windows_.size() && covered(lsa_windows_[node], t);
}

bool FaultInjector::node_crashed(NodeId node, TimePoint t) const {
  return node < crash_windows_.size() && covered(crash_windows_[node], t);
}

std::size_t FaultInjector::faulted_component_count() const {
  std::size_t count = 0;
  for (const Windows& w : component_windows_) count += w.empty() ? 0 : 1;
  return count;
}

}  // namespace ronpath
