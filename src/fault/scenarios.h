// Canonical fault scenario suite.
//
// Every scenario is a named, self-contained DSL schedule written against
// the shared fault-matrix timeline (warm-up, fault window, recovery
// tail; see core/fault_matrix.h). Names are stable identifiers: benches
// accept them via --fault-scenario, the golden tests pin per-scenario
// failover behaviour, and reports echo the DSL so results are
// reproducible from the printed output alone.
//
// The canonical timeline (all scenarios, except where noted):
//   0 .. 30 min    probing warm-up (control plane converges)
//   30 .. 55 min   measured data window
//   40 .. 45 min   fault active  (kFaultStart / kFaultDuration)
// Node roles: 0 = source, 1 = destination, 2.. = candidate vias. The ids
// are valid in every testbed profile (both have >= 12 sites).

#ifndef RONPATH_FAULT_SCENARIOS_H_
#define RONPATH_FAULT_SCENARIOS_H_

#include <span>
#include <string_view>

#include "util/time.h"

namespace ronpath {

// Shared timeline constants referenced by the scenario DSL text.
inline constexpr TimePoint kFaultStart = TimePoint::epoch() + Duration::minutes(40);
inline constexpr Duration kFaultDuration = Duration::minutes(5);

struct Scenario {
  std::string_view name;
  std::string_view summary;
  std::string_view dsl;
  // The window reported as "during the fault". For periodic scenarios
  // (flap, crash churn) this is the whole measured window.
  TimePoint fault_start = kFaultStart;
  Duration fault_duration = kFaultDuration;
  // Whether reactive routing can in principle route around the fault
  // (false for faults on components shared by every path, Section 2.4).
  bool routable = true;
};

// All canonical scenarios, in reporting order.
[[nodiscard]] std::span<const Scenario> canonical_scenarios();

// Lookup by name; nullptr when unknown.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

}  // namespace ronpath

#endif  // RONPATH_FAULT_SCENARIOS_H_
