// Scripted fault schedules for the simulated underlay and overlay
// control plane.
//
// The organic failure model (net/loss_process.h) samples outages from
// calibrated stochastic processes; it cannot produce a *controlled,
// repeatable* failure scenario. A FaultSchedule is the complement: an
// explicit, deterministic timeline of faults that the FaultInjector
// (fault/injector.h) overlays onto a run. Schedules are pure data - no
// RNG, no wall clock - so (seed, schedule) fully determines a run;
// schedules are part of the seed-stable state.
//
// Fault taxonomy (see DESIGN.md, "Fault model"):
//   component blackout  - site access / provider components or a core
//                         segment drop every packet (DropCause::kInjected);
//                         multi-site form models regionally correlated
//                         failures at the network edge (Section 2.4).
//   probe blackhole     - the overlay's control probes with an affected
//                         endpoint die while data packets still deliver,
//                         poisoning the estimator state.
//   LSA loss            - a node's link-state advertisements are lost;
//                         its rows in the shared table go stale.
//   crash-restart       - the node's host is down (stops probing,
//                         responding and forwarding), then restarts.
//   flapping            - any of the above on a periodic timer; the
//                         canonical use is a flapping core link.
//
// Schedules are built programmatically or parsed from a line-oriented
// text DSL:
//
//   # one-shot faults
//   at 120s down site 7 access for 45s
//   at 120s down site 7 provider for 45s
//   at 2m down sites 1,2,3 for 90s
//   at 10m down link 3->9 for 1m
//   at 10m blackhole probes node 3 for 5m
//   at 10m lsa-loss node 2 for 5m
//   at 10m crash node 4 for 30s
//   # periodic faults (first occurrence at the period mark)
//   every 300s flap link 3->9 for 10s
//   every 240s crash node 4 for 30s
//
// Grammar:
//   line    := 'at' TIME action 'for' DUR
//            | 'every' DUR action 'for' DUR
//   action  := ('down'|'flap') target
//            | 'blackhole' 'probes' 'node' ID
//            | 'lsa-loss' 'node' ID
//            | 'crash' 'node' ID
//   target  := 'site' ID ['access'|'provider']
//            | 'sites' ID(,ID)* ['access'|'provider']
//            | 'link' ID'->'ID
//   TIME/DUR:= NUMBER('ms'|'s'|'m'|'h')
// Comments run from '#' to end of line. Parsing is strict: any
// unrecognized token fails with a line-numbered error.

#ifndef RONPATH_FAULT_FAULT_H_
#define RONPATH_FAULT_FAULT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ronpath {

enum class FaultKind : std::uint8_t {
  kComponentBlackout,  // underlay components drop every packet
  kProbeBlackhole,     // control probes die, data delivers
  kLsaLoss,            // link-state advertisements suppressed
  kCrash,              // host down (crash), back up at window end (restart)
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

// Which components of the target site(s) a blackout covers.
enum class FaultScope : std::uint8_t {
  kSiteAll,       // access up/down + provider in/out
  kSiteAccess,    // access up/down only
  kSiteProvider,  // provider in/out only
  kLink,          // one core segment (ordered pair)
  kNode,          // whole-node faults (blackhole / lsa-loss / crash)
};

struct FaultSpec {
  FaultKind kind = FaultKind::kComponentBlackout;
  FaultScope scope = FaultScope::kNode;
  // Target site/node ids (one or more for regional correlation).
  std::vector<NodeId> sites;
  // Core segment endpoints, meaningful only for kLink scope.
  NodeId link_src = kInvalidNode;
  NodeId link_dst = kInvalidNode;
  // First activation and per-activation length.
  TimePoint start;
  Duration duration = Duration::zero();
  // Repetition period; zero = one-shot. Periodic faults repeat from
  // `start` every `period` until the injector's horizon.
  Duration period = Duration::zero();

  [[nodiscard]] bool periodic() const { return period > Duration::zero(); }
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  void add(FaultSpec spec) { faults_.push_back(std::move(spec)); }
  [[nodiscard]] const std::vector<FaultSpec>& faults() const { return faults_; }
  [[nodiscard]] bool empty() const { return faults_.empty(); }

  // Convenience builders mirroring the DSL verbs.
  FaultSchedule& down_site(NodeId site, TimePoint at, Duration dur,
                           FaultScope scope = FaultScope::kSiteAll);
  FaultSchedule& down_sites(std::vector<NodeId> sites, TimePoint at, Duration dur,
                            FaultScope scope = FaultScope::kSiteAll);
  FaultSchedule& down_link(NodeId src, NodeId dst, TimePoint at, Duration dur);
  FaultSchedule& flap_link(NodeId src, NodeId dst, Duration period, Duration dur);
  FaultSchedule& blackhole_probes(NodeId node, TimePoint at, Duration dur);
  FaultSchedule& lsa_loss(NodeId node, TimePoint at, Duration dur);
  FaultSchedule& crash(NodeId node, TimePoint at, Duration dur);
  FaultSchedule& crash_churn(NodeId node, Duration period, Duration dur);

  // Parses the text DSL described in the header comment. On failure
  // returns nullopt and, when `error` is non-null, a line-numbered
  // message.
  [[nodiscard]] static std::optional<FaultSchedule> parse(std::string_view text,
                                                          std::string* error = nullptr);

  // Canonical rendering, one DSL line per fault (reparseable; used by
  // reports so a scenario is self-describing).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<FaultSpec> faults_;
};

}  // namespace ronpath

#endif  // RONPATH_FAULT_FAULT_H_
