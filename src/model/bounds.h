// Analytic loss bounds for reactive and redundant routing (Section 5).
//
//   p_reactive  = min_i p_i        - probing converges on the best path;
//   p_redundant = prod_i p_i       - with independent losses, redundancy
//                                    achieves the product of path losses;
//   E[p_2redundant] = (E[p_i])^2   - 2-redundant routing on random paths
//                                    squares the average loss rate.
//
// The correlation-adjusted form quantifies how the paper's measured
// conditional loss probabilities erode the independent-loss ideal:
// p_both = p_first * clp, so redundancy's achievable improvement is
// bounded by (1 - clp) when paths share fate.

#ifndef RONPATH_MODEL_BOUNDS_H_
#define RONPATH_MODEL_BOUNDS_H_

#include <span>

namespace ronpath {

// Loss of reactive routing that always finds the best of `path_losses`.
[[nodiscard]] double p_reactive(std::span<const double> path_losses);

// Loss of redundant routing over all of `path_losses`, independence case.
[[nodiscard]] double p_redundant_independent(std::span<const double> path_losses);

// Expected loss of 2-redundant routing over two random paths with the
// given mean loss, independence case.
[[nodiscard]] double p_2redundant_expected(double mean_loss);

// Loss of 2-redundant routing when the second copy is lost with
// conditional probability `clp` given the first is lost.
[[nodiscard]] double p_2redundant_correlated(double first_loss, double clp);

// The paper's "loss rate improvement": (L_internet - L_method)/L_internet.
// Returns 0 when the baseline is 0.
[[nodiscard]] double loss_improvement(double internet_loss, double method_loss);

}  // namespace ronpath

#endif  // RONPATH_MODEL_BOUNDS_H_
