// Overhead model of Section 5.3.
//
//   probe-based reactive:  overhead factor = 1 + N^2 / Bandwidth
//     (each host sends/receives O(N^2) probe+routing bytes regardless of
//      flow size, so the factor shrinks as the flow grows)
//   2-redundant mesh:      overhead factor = 2 (flow-proportional)
//
// Concrete byte accounting is provided so the crossover flow bandwidth -
// below which redundancy is cheaper and above which probing is - can be
// computed for a given overlay size and probing rate.

#ifndef RONPATH_MODEL_OVERHEAD_H_
#define RONPATH_MODEL_OVERHEAD_H_

#include <cstddef>

#include "util/time.h"

namespace ronpath {

struct ProbeOverheadParams {
  std::size_t nodes = 30;
  Duration probe_interval = Duration::seconds(15);
  // Request + response bytes per probe exchange.
  std::size_t probe_bytes = 2 * 42;
  // Routing/link-state dissemination bytes per node per interval,
  // proportional to N (each node's vector of N link entries).
  std::size_t routing_entry_bytes = 16;
};

// Total probing + routing bytes/second across the whole overlay.
[[nodiscard]] double probing_bytes_per_sec(const ProbeOverheadParams& p);

// Per-node share of the probing overhead, bytes/second.
[[nodiscard]] double probing_bytes_per_sec_per_node(const ProbeOverheadParams& p);

// Overhead factors for a flow of `flow_bytes_per_sec`.
[[nodiscard]] double reactive_overhead_factor(const ProbeOverheadParams& p,
                                              double flow_bytes_per_sec);
[[nodiscard]] constexpr double mesh_overhead_factor(double redundancy = 2.0) {
  return redundancy;
}

// Flow bandwidth (bytes/sec) at which reactive probing overhead equals the
// extra bandwidth of R-redundant meshing; probing is cheaper above this.
[[nodiscard]] double crossover_flow_bytes_per_sec(const ProbeOverheadParams& p,
                                                  double redundancy = 2.0);

}  // namespace ronpath

#endif  // RONPATH_MODEL_OVERHEAD_H_
