#include "model/design_space.h"

#include <algorithm>
#include <cassert>

namespace ronpath {

std::string_view to_string(SchemeRegion r) {
  switch (r) {
    case SchemeRegion::kNeither: return "neither";
    case SchemeRegion::kReactiveOnly: return "reactive";
    case SchemeRegion::kRedundantOnly: return "redundant";
    case SchemeRegion::kEither: return "either";
  }
  return "?";
}

double DesignSpace::reactive_capacity_limit(double improvement) const {
  // Probing bandwidth grows with required improvement; feasible data
  // capacity is what remains.
  return std::max(0.0, 1.0 - (p_.probe_capacity_base + p_.probe_capacity_slope * improvement));
}

double DesignSpace::redundant_capacity_limit(double improvement) const {
  // Duplication needs (redundancy - 1) extra copies of the flow: capacity
  // used = y * redundancy <= 1. Demanding more improvement does not add
  // copies in the 2-redundant scheme, so the bound is flat; keep the
  // generic form for R-redundant.
  (void)improvement;
  return 1.0 / p_.redundancy;
}

bool DesignSpace::reactive_feasible(double improvement, double data_capacity) const {
  assert(improvement >= 0.0 && improvement <= 1.0);
  assert(data_capacity >= 0.0 && data_capacity <= 1.0);
  if (improvement > p_.reactive_limit) return false;
  return data_capacity <= reactive_capacity_limit(improvement);
}

bool DesignSpace::redundant_feasible(double improvement, double data_capacity) const {
  assert(improvement >= 0.0 && improvement <= 1.0);
  assert(data_capacity >= 0.0 && data_capacity <= 1.0);
  if (improvement > p_.independence_limit) return false;
  return data_capacity <= redundant_capacity_limit(improvement);
}

DesignPoint DesignSpace::evaluate(double improvement, double data_capacity) const {
  DesignPoint pt;
  pt.improvement = improvement;
  pt.data_capacity = data_capacity;
  const bool reactive = reactive_feasible(improvement, data_capacity);
  const bool redundant = redundant_feasible(improvement, data_capacity);
  if (reactive && redundant) {
    pt.region = SchemeRegion::kEither;
  } else if (reactive) {
    pt.region = SchemeRegion::kReactiveOnly;
  } else if (redundant) {
    pt.region = SchemeRegion::kRedundantOnly;
  } else {
    pt.region = SchemeRegion::kNeither;
  }
  // Capacity cost comparison: probing cost is flow-independent, meshing
  // cost is proportional to the flow. Thin flows favor redundancy.
  const double probe_cost = p_.probe_capacity_base + p_.probe_capacity_slope * improvement;
  const double mesh_cost = data_capacity * (p_.redundancy - 1.0);
  pt.reactive_cheaper = probe_cost < mesh_cost;
  return pt;
}

std::string_view to_string(RedundancyAction a) {
  switch (a) {
    case RedundancyAction::kNone: return "none";
    case RedundancyAction::kReactive: return "reactive";
    case RedundancyAction::kFec: return "fec";
    case RedundancyAction::kDuplicate: return "duplicate";
  }
  return "?";
}

RedundancyAction DesignSpace::classify_requirement(double improvement, double data_capacity,
                                                   double fec_overhead) const {
  const double x = std::clamp(improvement, 0.0, 1.0);
  const double y = std::clamp(data_capacity, 0.0, 1.0);
  const bool reactive = reactive_feasible(x, y);
  const bool duplicate = redundant_feasible(x, y);
  // FEC shares the independence limit with duplication (parity rides a
  // detour path; only independent losses reconstruct) but costs
  // y * fec_overhead instead of a full extra copy.
  const bool fec = x <= p_.independence_limit && y * (1.0 + fec_overhead) <= 1.0;
  if (!reactive && !duplicate && !fec) return RedundancyAction::kNone;

  const double probe_cost = p_.probe_capacity_base + p_.probe_capacity_slope * x;
  const double dup_cost = y * (p_.redundancy - 1.0);
  const double fec_cost = y * fec_overhead;
  RedundancyAction best = RedundancyAction::kNone;
  double best_cost = 2.0;  // all costs are <= 1 when feasible
  if (reactive && probe_cost < best_cost) {
    best = RedundancyAction::kReactive;
    best_cost = probe_cost;
  }
  if (fec && fec_cost < best_cost) {
    best = RedundancyAction::kFec;
    best_cost = fec_cost;
  }
  if (duplicate && dup_cost < best_cost) {
    best = RedundancyAction::kDuplicate;
    best_cost = dup_cost;
  }
  return best;
}

std::vector<DesignPoint> DesignSpace::grid(std::size_t nx, std::size_t ny) const {
  assert(nx >= 2 && ny >= 2);
  std::vector<DesignPoint> out;
  out.reserve(nx * ny);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const double y = static_cast<double>(iy) / static_cast<double>(ny - 1);
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double x = static_cast<double>(ix) / static_cast<double>(nx - 1);
      out.push_back(evaluate(x, y));
    }
  }
  return out;
}

}  // namespace ronpath
