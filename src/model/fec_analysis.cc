#include "model/fec_analysis.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ronpath {

ClpCurve::ClpCurve(std::vector<Sample> samples, double unconditional)
    : samples_(std::move(samples)), floor_(unconditional) {
  assert(!samples_.empty());
  assert(floor_ >= 0.0 && floor_ <= 1.0);
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    assert(samples_[i].gap > samples_[i - 1].gap);
  }
  // Fit clp(g) = floor + (clp0 - floor) * exp(-r g) through the last
  // point with clp above the floor.
  const double clp0 = samples_.front().clp;
  decay_per_sec_ = 1.0;
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it) {
    if (it->clp > floor_ + 1e-9 && it->gap > Duration::zero() && clp0 > floor_ + 1e-9) {
      const double frac = (it->clp - floor_) / (clp0 - floor_);
      if (frac > 0.0 && frac < 1.0) {
        decay_per_sec_ = -std::log(frac) / it->gap.to_seconds_f();
        break;
      }
    }
  }
  if (decay_per_sec_ <= 0.0) decay_per_sec_ = 1.0;
}

double ClpCurve::at(Duration gap) const {
  if (gap <= Duration::zero()) return samples_.front().clp;
  // Within the sampled range, interpolate linearly between samples; past
  // it, follow the fitted exponential decay to the floor.
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (gap <= samples_[i].gap) {
      const double t = (gap - samples_[i - 1].gap).to_seconds_f() /
                       (samples_[i].gap - samples_[i - 1].gap).to_seconds_f();
      return samples_[i - 1].clp + t * (samples_[i].clp - samples_[i - 1].clp);
    }
  }
  const auto& last = samples_.back();
  const double extra = (gap - last.gap).to_seconds_f();
  return floor_ + (last.clp - floor_) * std::exp(-decay_per_sec_ * extra);
}

Duration ClpCurve::decorrelation_gap(double tolerance) const {
  // Binary search the monotone tail.
  Duration lo = Duration::zero();
  Duration hi = Duration::seconds(10);
  if (at(hi) > floor_ + tolerance) return hi;
  for (int iter = 0; iter < 60; ++iter) {
    const Duration mid = lo + (hi - lo) / 2;
    if (at(mid) > floor_ + tolerance) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double fec_group_failure_probability(const ClpCurve& curve, double first_loss,
                                     const FecSchemeParams& scheme) {
  const std::size_t n = scheme.data_packets + scheme.parity_packets;
  assert(n >= 1 && n <= 20);
  assert(first_loss >= 0.0 && first_loss <= 1.0);

  // Enumerate loss patterns; chain conditional probabilities where each
  // packet's loss probability depends on the gap back to the most recent
  // lost packet (burst persistence), or the unconditional rate otherwise.
  double failure = 0.0;
  const std::uint32_t patterns = 1u << n;
  for (std::uint32_t mask = 0; mask < patterns; ++mask) {
    const auto losses = static_cast<std::size_t>(__builtin_popcount(mask));
    if (losses <= scheme.parity_packets) continue;  // recoverable
    double p = 1.0;
    int last_lost = -1;
    for (std::size_t i = 0; i < n; ++i) {
      double p_loss;
      if (i == 0) {
        p_loss = first_loss;
      } else if (last_lost >= 0) {
        const Duration gap = scheme.packet_spacing * static_cast<std::int64_t>(
                                 static_cast<int>(i) - last_lost);
        p_loss = curve.at(gap);
      } else {
        p_loss = curve.unconditional();
      }
      const bool lost = (mask >> i) & 1u;
      p *= lost ? p_loss : (1.0 - p_loss);
      if (lost) last_lost = static_cast<int>(i);
      if (p == 0.0) break;
    }
    failure += p;
  }
  return failure;
}

Duration required_spacing(const ClpCurve& curve, double first_loss, std::size_t k,
                          std::size_t m, double target, Duration max_spacing) {
  FecSchemeParams scheme;
  scheme.data_packets = k;
  scheme.parity_packets = m;
  // Scan spacings on a log-ish grid, then refine by bisection.
  Duration lo = Duration::zero();
  Duration hi = max_spacing;
  scheme.packet_spacing = hi;
  if (fec_group_failure_probability(curve, first_loss, scheme) > target) return max_spacing;
  for (int iter = 0; iter < 40; ++iter) {
    const Duration mid = lo + (hi - lo) / 2;
    scheme.packet_spacing = mid;
    if (fec_group_failure_probability(curve, first_loss, scheme) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace ronpath
