// FEC spreading analysis (Section 5.2).
//
// With back-to-back conditional loss probability around 70%, parity
// packets sent immediately after their data on the same path share the
// burst that killed the data. The paper concludes that same-path FEC must
// spread a protection group over nearly half a second to escape burst
// correlation - erasing the latency advantage FEC was meant to provide.
//
// This module computes that requirement from a conditional-loss-vs-gap
// curve (measured, e.g., from dd 0/10/20 ms probes, or supplied
// analytically) and evaluates the residual loss of a k+m same-path FEC
// scheme under a two-state burst model.

#ifndef RONPATH_MODEL_FEC_ANALYSIS_H_
#define RONPATH_MODEL_FEC_ANALYSIS_H_

#include <functional>
#include <vector>

#include "util/time.h"

namespace ronpath {

// Monotone-decay model of conditional loss vs packet gap, fit through
// measured (gap, clp) points by exponential interpolation down to the
// unconditional rate.
class ClpCurve {
 public:
  struct Sample {
    Duration gap;
    double clp;  // in [0,1]
  };
  // `unconditional` is the floor the curve decays to (the base loss
  // rate); samples must be gap-sorted ascending with clp descending.
  ClpCurve(std::vector<Sample> samples, double unconditional);

  [[nodiscard]] double at(Duration gap) const;
  [[nodiscard]] double unconditional() const { return floor_; }

  // Smallest gap at which clp falls to within `tolerance` (absolute) of
  // the unconditional rate - the spread needed for loss independence.
  [[nodiscard]] Duration decorrelation_gap(double tolerance = 0.02) const;

 private:
  std::vector<Sample> samples_;
  double floor_;
  double decay_per_sec_;  // fitted exponential decay rate
};

struct FecSchemeParams {
  std::size_t data_packets = 5;   // k
  std::size_t parity_packets = 1; // m
  Duration packet_spacing;        // gap between consecutive packets
};

// Probability a k+m same-path FEC group fails to deliver all data (more
// than m of the k+m packets lost), under the correlation structure of
// `curve`: the first packet is lost with probability `first_loss`, and
// each subsequent packet is lost with probability curve.at(gap to the
// previous lost packet) if a loss is "active", else with the
// unconditional rate. Evaluated by exact enumeration over loss patterns
// for small k+m (<= 20).
[[nodiscard]] double fec_group_failure_probability(const ClpCurve& curve, double first_loss,
                                                   const FecSchemeParams& scheme);

// Minimum packet spacing so the group failure probability is at most
// `target`; searches spacings up to `max_spacing`. Returns max_spacing
// when the target is unreachable.
[[nodiscard]] Duration required_spacing(const ClpCurve& curve, double first_loss,
                                        std::size_t k, std::size_t m, double target,
                                        Duration max_spacing = Duration::seconds(2));

}  // namespace ronpath

#endif  // RONPATH_MODEL_FEC_ANALYSIS_H_
