#include "model/overhead.h"

#include <cassert>

namespace ronpath {

double probing_bytes_per_sec(const ProbeOverheadParams& p) {
  assert(p.nodes >= 2);
  const double n = static_cast<double>(p.nodes);
  const double per_interval =
      n * (n - 1) * static_cast<double>(p.probe_bytes) +           // probes on every link
      n * n * static_cast<double>(p.routing_entry_bytes);          // link-state dissemination
  return per_interval / p.probe_interval.to_seconds_f();
}

double probing_bytes_per_sec_per_node(const ProbeOverheadParams& p) {
  return probing_bytes_per_sec(p) / static_cast<double>(p.nodes);
}

double reactive_overhead_factor(const ProbeOverheadParams& p, double flow_bytes_per_sec) {
  assert(flow_bytes_per_sec > 0.0);
  return 1.0 + probing_bytes_per_sec_per_node(p) / flow_bytes_per_sec;
}

double crossover_flow_bytes_per_sec(const ProbeOverheadParams& p, double redundancy) {
  assert(redundancy > 1.0);
  // Solve 1 + probing/B == redundancy for B.
  return probing_bytes_per_sec_per_node(p) / (redundancy - 1.0);
}

}  // namespace ronpath
