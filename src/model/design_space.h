// The Figure 6 design space: when to use reactive vs. redundant routing.
//
// Axes: x = desired loss-rate improvement in [0,1]; y = fraction of link
// capacity already used by the data flow in [0,1]. Three bounds shape the
// feasible regions:
//
//   Best-expected-path limit: probing cannot improve beyond the best
//     path, so reactive is infeasible for improvement > reactive_limit.
//   Independence limit: redundancy cannot improve beyond the fraction of
//     losses that occur independently across paths (1 - clp), so
//     redundant is infeasible for improvement > independence_limit.
//   Capacity limit: overhead must fit in the spare capacity (1 - y).
//     Redundant needs a full extra copy (y more); reactive needs probing
//     bandwidth that grows with the required reaction speed, modeled as
//     probe_capacity_base + slope * improvement.
//
// evaluate() classifies each grid point; boundaries() extracts the curves
// the figure draws.

#ifndef RONPATH_MODEL_DESIGN_SPACE_H_
#define RONPATH_MODEL_DESIGN_SPACE_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace ronpath {

struct DesignSpaceParams {
  // Improvement achievable by converging on the best expected path
  // (measured in the paper's data: reactive reduced 0.42% to 0.33%).
  double reactive_limit = 0.6;
  // Fraction of losses avoidable by a second, disjoint path: bounded by
  // 1 - clp; the paper suggests 50% as a design upper limit.
  double independence_limit = 0.5;
  // Probing overhead as a fraction of capacity, at minimal and maximal
  // reaction requirements.
  double probe_capacity_base = 0.02;
  double probe_capacity_slope = 0.25;
  double redundancy = 2.0;
};

enum class SchemeRegion {
  kNeither,        // no scheme achieves the requirement
  kReactiveOnly,
  kRedundantOnly,
  kEither,         // both feasible
};

struct DesignPoint {
  double improvement = 0.0;      // x
  double data_capacity = 0.0;    // y
  SchemeRegion region = SchemeRegion::kNeither;
  // Among feasible schemes, which consumes less capacity.
  bool reactive_cheaper = false;
};

[[nodiscard]] std::string_view to_string(SchemeRegion r);

// Redundancy actions the closed-loop workload policy can take per flow.
// kFec sits between reactive routing and full duplication: parity
// overhead m/k instead of a whole extra copy, but only independent
// losses are recoverable, so it inherits the independence limit.
enum class RedundancyAction : std::uint8_t { kNone = 0, kReactive = 1, kFec = 2, kDuplicate = 3 };

[[nodiscard]] std::string_view to_string(RedundancyAction a);

class DesignSpace {
 public:
  explicit DesignSpace(DesignSpaceParams params) : p_(params) {}

  [[nodiscard]] bool reactive_feasible(double improvement, double data_capacity) const;
  [[nodiscard]] bool redundant_feasible(double improvement, double data_capacity) const;
  [[nodiscard]] DesignPoint evaluate(double improvement, double data_capacity) const;

  // Grid evaluation (row-major, improvement fastest).
  [[nodiscard]] std::vector<DesignPoint> grid(std::size_t nx, std::size_t ny) const;

  // Capacity-limit boundary curves y(improvement) for each scheme.
  [[nodiscard]] double reactive_capacity_limit(double improvement) const;
  [[nodiscard]] double redundant_capacity_limit(double improvement) const;

  // Closed-loop hook (workload layer): the action the design space
  // recommends for a flow that needs `improvement` of its current loss
  // removed while already using `data_capacity` of its link, when FEC
  // at overhead `fec_overhead` (= m/k) is on the table. FEC is treated
  // as a redundant scheme with fractional capacity cost: feasible under
  // the independence limit whenever y * (1 + fec_overhead) <= 1. Among
  // feasible actions the cheapest in capacity wins; kNone means no
  // scheme reaches the requirement (the caller keeps the single path).
  [[nodiscard]] RedundancyAction classify_requirement(double improvement, double data_capacity,
                                                      double fec_overhead) const;

  [[nodiscard]] const DesignSpaceParams& params() const { return p_; }

 private:
  DesignSpaceParams p_;
};

}  // namespace ronpath

#endif  // RONPATH_MODEL_DESIGN_SPACE_H_
