#include "model/bounds.h"

#include <algorithm>
#include <cassert>

namespace ronpath {

double p_reactive(std::span<const double> path_losses) {
  assert(!path_losses.empty());
  return *std::min_element(path_losses.begin(), path_losses.end());
}

double p_redundant_independent(std::span<const double> path_losses) {
  assert(!path_losses.empty());
  double p = 1.0;
  for (double l : path_losses) p *= l;
  return p;
}

double p_2redundant_expected(double mean_loss) { return mean_loss * mean_loss; }

double p_2redundant_correlated(double first_loss, double clp) {
  assert(first_loss >= 0.0 && first_loss <= 1.0);
  assert(clp >= 0.0 && clp <= 1.0);
  return first_loss * clp;
}

double loss_improvement(double internet_loss, double method_loss) {
  if (internet_loss <= 0.0) return 0.0;
  return (internet_loss - method_loss) / internet_loss;
}

}  // namespace ronpath
