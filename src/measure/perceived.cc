#include "measure/perceived.h"

#include <algorithm>

namespace ronpath {

std::string_view to_string(ServiceClass c) {
  switch (c) {
    case ServiceClass::kVoip: return "voip";
    case ServiceClass::kVideo: return "video";
    case ServiceClass::kWeb: return "web";
    case ServiceClass::kBulk: return "bulk";
  }
  return "?";
}

void ClassMetrics::merge(const ClassMetrics& other) {
  latency_.merge(other.latency_);
  sent_ += other.sent_;
  delivered_ += other.delivered_;
  slo_ok_ += other.slo_ok_;
  bursts_ += other.bursts_;
  burst_len_sum_ += other.burst_len_sum_;
}

double ClassMetrics::loss_pct() const {
  return sent_ > 0
             ? 100.0 * static_cast<double>(sent_ - delivered_) / static_cast<double>(sent_)
             : 0.0;
}

double ClassMetrics::mean_burst_len() const {
  return bursts_ > 0 ? static_cast<double>(burst_len_sum_) / static_cast<double>(bursts_)
                     : 0.0;
}

double ClassMetrics::slo_attainment_pct() const {
  return sent_ > 0 ? 100.0 * static_cast<double>(slo_ok_) / static_cast<double>(sent_) : 0.0;
}

double ClassMetrics::mos(Duration slo_latency) const {
  if (sent_ == 0) return 4.5;
  const double loss_frac =
      static_cast<double>(sent_ - delivered_) / static_cast<double>(sent_);
  // Bursts amplify perceived loss; with no completed bursts recorded
  // (all isolated losses) the multiplier degenerates to 1.
  const double burst_mult = std::max(1.0, mean_burst_len());
  const double eff_loss = loss_frac * burst_mult;
  const double r_loss = 1.0 / (1.0 + 30.0 * eff_loss);
  const std::int64_t p99_ns = p99().count_nanos();
  const double r_delay =
      p99_ns > 0 ? std::min(1.0, static_cast<double>(slo_latency.count_nanos()) /
                                     static_cast<double>(p99_ns))
                 : 1.0;
  return std::clamp(1.0 + 3.5 * r_loss * r_delay, 1.0, 4.5);
}

void ClassMetrics::save_state(snap::Encoder& e) const {
  e.tag("CLSM");
  latency_.save_state(e);
  e.u64(sent_);
  e.u64(delivered_);
  e.u64(slo_ok_);
  e.u64(bursts_);
  e.u64(burst_len_sum_);
}

void ClassMetrics::restore_state(snap::Decoder& d) {
  d.expect_tag("CLSM");
  latency_.restore_state(d);
  sent_ = d.u64();
  delivered_ = d.u64();
  slo_ok_ = d.u64();
  bursts_ = d.u64();
  burst_len_sum_ = d.u64();
  if (delivered_ > sent_ || slo_ok_ > sent_) {
    throw snap::SnapshotError("class metrics: counters out of order");
  }
}

void ClassMetrics::check_invariants(std::vector<std::string>& out) const {
  latency_.check_invariants(out);
  if (delivered_ > sent_) out.push_back("class metrics: delivered exceeds sent");
  if (slo_ok_ > sent_) out.push_back("class metrics: slo_ok exceeds sent");
  if (latency_.count() != delivered_) {
    out.push_back("class metrics: latency sample count disagrees with deliveries");
  }
  if (burst_len_sum_ < bursts_) {
    out.push_back("class metrics: burst length sum below burst count");
  }
}

}  // namespace ronpath
