#include "measure/report.h"

#include <algorithm>
#include <cassert>

#include "util/table.h"

namespace ronpath {
namespace {

bool is_registered(const Aggregator& agg, PairScheme s) {
  for (PairScheme r : agg.schemes()) {
    if (r == s) return true;
  }
  return false;
}

// Gathers one metric across trials for row index r; `present` filters
// trials where the metric is defined (e.g. clp with no first losses).
template <typename Get, typename Present>
MetricSummary row_metric(std::span<const std::vector<LossTableRow>> per_trial, std::size_t r,
                         Get get, Present present) {
  std::vector<double> values;
  values.reserve(per_trial.size());
  for (const auto& rows : per_trial) {
    if (present(rows[r])) values.push_back(get(rows[r]));
  }
  return summarize_metric(values);
}

}  // namespace

std::vector<LossTableRow> make_loss_table(const Aggregator& agg,
                                          std::span<const PairScheme> rows) {
  std::vector<LossTableRow> out;
  out.reserve(rows.size());
  for (PairScheme row : rows) {
    const SchemeSpec& spec = scheme_spec(row);
    LossTableRow r;
    r.scheme = row;
    r.name = std::string(spec.name);

    if (is_registered(agg, row)) {
      const auto& st = agg.scheme_stats(row);
      r.lp1 = st.pair.first_loss_percent();
      r.totlp = st.pair.total_loss_percent();
      r.samples = st.pair.pairs();
      if (spec.two_packets()) {
        r.lp2 = st.pair.second_loss_percent();
        r.clp = st.pair.conditional_loss_percent();
        r.lat_ms = st.method_lat_ms.mean();
      } else {
        r.lat_ms = st.first_lat_ms.mean();
      }
    } else {
      const auto source = inference_source(row);
      assert(source && is_registered(agg, *source) &&
             "row neither probed nor inferable from a probed scheme");
      const auto& st = agg.scheme_stats(*source);
      r.inferred = true;
      r.lp1 = st.pair.first_loss_percent();
      r.totlp = r.lp1;  // single packet: totlp == 1lp
      r.lat_ms = st.first_lat_ms.mean();
      r.samples = st.pair.pairs();
    }
    r.name += r.inferred ? "*" : "";
    out.push_back(std::move(r));
  }
  return out;
}

std::string render_loss_table(const std::vector<LossTableRow>& rows, bool round_trip) {
  TextTable t({"Type", "1lp", "2lp", "totlp", "clp", round_trip ? "RTT" : "lat"});
  t.set_align(0, TextTable::Align::kLeft);
  for (const auto& r : rows) {
    t.add_row({r.name, TextTable::num(r.lp1),
               TextTable::opt_num(r.lp2.has_value(), r.lp2.value_or(0)), TextTable::num(r.totlp),
               TextTable::opt_num(r.clp.has_value(), r.clp.value_or(0)),
               TextTable::num(r.lat_ms)});
  }
  return t.to_string();
}

std::vector<LossTableRowCi> make_loss_table_ci(
    std::span<const std::vector<LossTableRow>> per_trial) {
  std::vector<LossTableRowCi> out;
  if (per_trial.empty()) return out;
  const std::size_t n_rows = per_trial.front().size();
  for (const auto& rows : per_trial) {
    assert(rows.size() == n_rows && "per-trial loss tables must share their row set");
    (void)rows;
  }
  out.reserve(n_rows);
  const auto always = [](const LossTableRow&) { return true; };
  for (std::size_t r = 0; r < n_rows; ++r) {
    const LossTableRow& proto = per_trial.front()[r];
    LossTableRowCi row;
    row.scheme = proto.scheme;
    row.name = proto.name;
    row.inferred = proto.inferred;
    row.lp1 = row_metric(per_trial, r, [](const auto& x) { return x.lp1; }, always);
    row.totlp = row_metric(per_trial, r, [](const auto& x) { return x.totlp; }, always);
    row.lat_ms = row_metric(per_trial, r, [](const auto& x) { return x.lat_ms; }, always);
    const auto lp2 = row_metric(per_trial, r, [](const auto& x) { return *x.lp2; },
                                [](const auto& x) { return x.lp2.has_value(); });
    if (lp2.n > 0) row.lp2 = lp2;
    const auto clp = row_metric(per_trial, r, [](const auto& x) { return *x.clp; },
                                [](const auto& x) { return x.clp.has_value(); });
    if (clp.n > 0) row.clp = clp;
    for (const auto& rows : per_trial) row.samples_total += rows[r].samples;
    out.push_back(std::move(row));
  }
  return out;
}

std::string render_loss_table_ci(const std::vector<LossTableRowCi>& rows, bool round_trip) {
  TextTable t({"Type", "1lp", "2lp", "totlp", "clp", round_trip ? "RTT" : "lat", "trials"});
  t.set_align(0, TextTable::Align::kLeft);
  for (const auto& r : rows) {
    t.add_row({r.name, TextTable::num_ci(r.lp1.mean, r.lp1.ci95_half),
               r.lp2 ? TextTable::num_ci(r.lp2->mean, r.lp2->ci95_half) : "-",
               TextTable::num_ci(r.totlp.mean, r.totlp.ci95_half),
               r.clp ? TextTable::num_ci(r.clp->mean, r.clp->ci95_half) : "-",
               TextTable::num_ci(r.lat_ms.mean, r.lat_ms.ci95_half),
               TextTable::num(r.lp1.n)});
  }
  return t.to_string();
}

HighLossTable make_high_loss_table(const Aggregator& agg,
                                   std::span<const PairScheme> schemes) {
  HighLossTable t;
  t.schemes.assign(schemes.begin(), schemes.end());
  for (auto& row : t.counts) row.reserve(schemes.size());
  for (PairScheme s : schemes) {
    const auto& counts = agg.high_loss_hours(s);
    for (std::size_t i = 0; i < kHighLossThresholds; ++i) t.counts[i].push_back(counts[i]);
    t.total_windows.push_back(agg.total_hour_windows(s));
  }
  return t;
}

std::vector<double> per_path_loss_percent(const Aggregator& agg, PairScheme scheme,
                                          std::size_t min_samples) {
  std::vector<double> out;
  const auto n = static_cast<NodeId>(agg.nodes());
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& ps = agg.path_stats(scheme, s, d);
      if (ps.pair.pairs() < static_cast<std::int64_t>(min_samples)) continue;
      out.push_back(ps.pair.first_loss_percent());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CdfPoint> window_loss_cdf(const Aggregator& agg, PairScheme scheme, bool hourly) {
  const Histogram& hist = agg.window_hist(scheme, hourly);
  std::vector<CdfPoint> out;
  if (hist.total() == 0) return out;
  std::int64_t cum = hist.underflow();
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    cum += hist.bin(b);
    out.push_back({hist.bin_hi(b), static_cast<double>(cum) / static_cast<double>(hist.total())});
  }
  return out;
}

std::vector<double> per_path_clp_percent(const Aggregator& agg, PairScheme scheme,
                                         std::int64_t min_first_losses) {
  std::vector<double> out;
  const auto n = static_cast<NodeId>(agg.nodes());
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& ps = agg.path_stats(scheme, s, d);
      if (ps.pair.first_lost() < min_first_losses) continue;
      const auto clp = ps.pair.conditional_loss_percent();
      if (clp) out.push_back(*clp);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> per_pair_latency_ms(const Aggregator& agg, PairScheme scheme,
                                        bool first_copy, std::int64_t min_samples) {
  std::vector<double> out;
  const auto n = static_cast<NodeId>(agg.nodes());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
      const auto& fwd = agg.path_stats(scheme, a, b);
      const auto& rev = agg.path_stats(scheme, b, a);
      const RunningStat& f = first_copy ? fwd.first_lat_ms : fwd.method_lat_ms;
      const RunningStat& r = first_copy ? rev.first_lat_ms : rev.method_lat_ms;
      if (f.count() < min_samples || r.count() < min_samples) continue;
      out.push_back((f.mean() + r.mean()) / 2.0);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

BaseStats make_base_stats(const Aggregator& agg, PairScheme scheme) {
  BaseStats b;
  const auto& st = agg.scheme_stats(scheme);
  b.loss_percent = st.pair.total_loss_percent();
  b.mean_latency_ms =
      scheme_spec(scheme).two_packets() ? st.method_lat_ms.mean() : st.first_lat_ms.mean();
  // Single-packet basis, as in Section 4.2.
  b.worst_hour_loss_percent = 100.0 * agg.worst_hour_first_copy(scheme).loss_rate;
  const auto& series = agg.global_window_loss(scheme);
  if (!series.empty()) {
    b.frac_windows_below_01pct = series.fraction_at_or_below(0.001);
    b.frac_windows_below_02pct = series.fraction_at_or_below(0.002);
  }
  return b;
}

BaseStatsCi make_base_stats_ci(std::span<const BaseStats> per_trial) {
  BaseStatsCi ci;
  std::vector<double> v(per_trial.size());
  const auto field = [&](double BaseStats::* member) {
    for (std::size_t i = 0; i < per_trial.size(); ++i) v[i] = per_trial[i].*member;
    return summarize_metric(v);
  };
  ci.loss_percent = field(&BaseStats::loss_percent);
  ci.mean_latency_ms = field(&BaseStats::mean_latency_ms);
  ci.worst_hour_loss_percent = field(&BaseStats::worst_hour_loss_percent);
  ci.frac_windows_below_01pct = field(&BaseStats::frac_windows_below_01pct);
  ci.frac_windows_below_02pct = field(&BaseStats::frac_windows_below_02pct);
  return ci;
}

}  // namespace ronpath
