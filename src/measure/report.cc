#include "measure/report.h"

#include <algorithm>
#include <cassert>

namespace ronpath {
namespace {

bool is_registered(const Aggregator& agg, PairScheme s) {
  for (PairScheme r : agg.schemes()) {
    if (r == s) return true;
  }
  return false;
}

}  // namespace

std::vector<LossTableRow> make_loss_table(const Aggregator& agg,
                                          std::span<const PairScheme> rows) {
  std::vector<LossTableRow> out;
  out.reserve(rows.size());
  for (PairScheme row : rows) {
    const SchemeSpec& spec = scheme_spec(row);
    LossTableRow r;
    r.scheme = row;
    r.name = std::string(spec.name);

    if (is_registered(agg, row)) {
      const auto& st = agg.scheme_stats(row);
      r.lp1 = st.pair.first_loss_percent();
      r.totlp = st.pair.total_loss_percent();
      r.samples = st.pair.pairs();
      if (spec.two_packets()) {
        r.lp2 = st.pair.second_loss_percent();
        r.clp = st.pair.conditional_loss_percent();
        r.lat_ms = st.method_lat_ms.mean();
      } else {
        r.lat_ms = st.first_lat_ms.mean();
      }
    } else {
      const auto source = inference_source(row);
      assert(source && is_registered(agg, *source) &&
             "row neither probed nor inferable from a probed scheme");
      const auto& st = agg.scheme_stats(*source);
      r.inferred = true;
      r.lp1 = st.pair.first_loss_percent();
      r.totlp = r.lp1;  // single packet: totlp == 1lp
      r.lat_ms = st.first_lat_ms.mean();
      r.samples = st.pair.pairs();
    }
    r.name += r.inferred ? "*" : "";
    out.push_back(std::move(r));
  }
  return out;
}

HighLossTable make_high_loss_table(const Aggregator& agg,
                                   std::span<const PairScheme> schemes) {
  HighLossTable t;
  t.schemes.assign(schemes.begin(), schemes.end());
  for (auto& row : t.counts) row.reserve(schemes.size());
  for (PairScheme s : schemes) {
    const auto& counts = agg.high_loss_hours(s);
    for (std::size_t i = 0; i < kHighLossThresholds; ++i) t.counts[i].push_back(counts[i]);
    t.total_windows.push_back(agg.total_hour_windows(s));
  }
  return t;
}

std::vector<double> per_path_loss_percent(const Aggregator& agg, PairScheme scheme,
                                          std::size_t min_samples) {
  std::vector<double> out;
  const auto n = static_cast<NodeId>(agg.nodes());
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& ps = agg.path_stats(scheme, s, d);
      if (ps.pair.pairs() < static_cast<std::int64_t>(min_samples)) continue;
      out.push_back(ps.pair.first_loss_percent());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CdfPoint> window_loss_cdf(const Aggregator& agg, PairScheme scheme, bool hourly) {
  const Histogram& hist = agg.window_hist(scheme, hourly);
  std::vector<CdfPoint> out;
  if (hist.total() == 0) return out;
  std::int64_t cum = hist.underflow();
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    cum += hist.bin(b);
    out.push_back({hist.bin_hi(b), static_cast<double>(cum) / static_cast<double>(hist.total())});
  }
  return out;
}

std::vector<double> per_path_clp_percent(const Aggregator& agg, PairScheme scheme,
                                         std::int64_t min_first_losses) {
  std::vector<double> out;
  const auto n = static_cast<NodeId>(agg.nodes());
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto& ps = agg.path_stats(scheme, s, d);
      if (ps.pair.first_lost() < min_first_losses) continue;
      const auto clp = ps.pair.conditional_loss_percent();
      if (clp) out.push_back(*clp);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> per_pair_latency_ms(const Aggregator& agg, PairScheme scheme,
                                        bool first_copy, std::int64_t min_samples) {
  std::vector<double> out;
  const auto n = static_cast<NodeId>(agg.nodes());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = static_cast<NodeId>(a + 1); b < n; ++b) {
      const auto& fwd = agg.path_stats(scheme, a, b);
      const auto& rev = agg.path_stats(scheme, b, a);
      const RunningStat& f = first_copy ? fwd.first_lat_ms : fwd.method_lat_ms;
      const RunningStat& r = first_copy ? rev.first_lat_ms : rev.method_lat_ms;
      if (f.count() < min_samples || r.count() < min_samples) continue;
      out.push_back((f.mean() + r.mean()) / 2.0);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

BaseStats make_base_stats(const Aggregator& agg, PairScheme scheme) {
  BaseStats b;
  const auto& st = agg.scheme_stats(scheme);
  b.loss_percent = st.pair.total_loss_percent();
  b.mean_latency_ms =
      scheme_spec(scheme).two_packets() ? st.method_lat_ms.mean() : st.first_lat_ms.mean();
  // Single-packet basis, as in Section 4.2.
  b.worst_hour_loss_percent = 100.0 * agg.worst_hour_first_copy(scheme).loss_rate;
  const auto& series = agg.global_window_loss(scheme);
  if (!series.empty()) {
    b.frac_windows_below_01pct = series.fraction_at_or_below(0.001);
    b.frac_windows_below_02pct = series.fraction_at_or_below(0.002);
  }
  return b;
}

}  // namespace ronpath
