#include "measure/aggregator.h"

#include <cassert>

namespace ronpath {

Aggregator::Aggregator(std::size_t n_nodes, std::span<const PairScheme> schemes,
                       AggregatorConfig cfg)
    : n_(n_nodes), schemes_(schemes.begin(), schemes.end()), cfg_(cfg), liveness_(n_nodes) {
  assert(cfg_.buffer_horizon > liveness_.threshold());
  for (PairScheme s : schemes_) {
    auto agg = std::make_unique<SchemeAgg>();
    agg->paths.resize(n_ * n_);
    by_scheme_[static_cast<std::size_t>(s)] = std::move(agg);
  }
}

std::size_t Aggregator::path_index(NodeId src, NodeId dst) const {
  assert(src < n_ && dst < n_);
  return static_cast<std::size_t>(src) * n_ + dst;
}

Aggregator::SchemeAgg& Aggregator::agg_for(PairScheme scheme) {
  auto& p = by_scheme_[static_cast<std::size_t>(scheme)];
  assert(p && "scheme not registered with this aggregator");
  return *p;
}

const Aggregator::SchemeAgg& Aggregator::agg_for(PairScheme scheme) const {
  const auto& p = by_scheme_[static_cast<std::size_t>(scheme)];
  assert(p && "scheme not registered with this aggregator");
  return *p;
}

void Aggregator::note_activity(NodeId node, TimePoint t) {
  assert(!finished_);
  liveness_.note_activity(node, t);
  if (t > watermark_) {
    watermark_ = t;
    flush_up_to(watermark_ - cfg_.buffer_horizon);
  }
}

void Aggregator::add(const ProbeRecord& rec) {
  assert(!finished_);
  if (rec.sent() < cfg_.measure_start) return;
  buffer_.push_back(rec);
}

void Aggregator::flush_up_to(TimePoint horizon) {
  while (!buffer_.empty() && buffer_.front().sent() <= horizon) {
    commit(buffer_.front());
    buffer_.pop_front();
  }
}

void Aggregator::close_small_window(SchemeAgg& agg, PathAgg& path) {
  if (path.win_small_idx >= 0 && path.win_small.sent() > 0) {
    agg.hist_small.add(path.win_small.loss_rate());
  }
  path.win_small = LossCounter{};
}

void Aggregator::close_large_window(SchemeAgg& agg, PathAgg& path) {
  if (path.win_large_idx >= 0 && path.win_large.sent() > 0) {
    const double pct = path.win_large.loss_percent();
    agg.hist_large.add(path.win_large.loss_rate());
    ++agg.hour_windows;
    for (std::size_t i = 0; i < kHighLossThresholds; ++i) {
      if (pct > static_cast<double>(i) * 10.0) ++agg.high_loss[i];
    }
  }
  path.win_large = LossCounter{};
}

void Aggregator::commit(const ProbeRecord& rec) {
  // Host-failure filter: disregard probes whose endpoints were inferably
  // down around the send time.
  SchemeAgg& agg = agg_for(rec.scheme);
  if (liveness_.was_down(rec.src, rec.sent()) || liveness_.was_down(rec.dst, rec.sent())) {
    ++agg.stats.filtered_host_failure;
    return;
  }

  // Apply the one-hour receive horizon.
  std::array<bool, 2> delivered{};
  std::array<Duration, 2> latency{};
  for (std::uint8_t i = 0; i < rec.copy_count; ++i) {
    delivered[i] = rec.copies[i].delivered && rec.copies[i].latency <= cfg_.receive_horizon;
    latency[i] = rec.copies[i].latency;
  }

  PathAgg& path = agg.paths[path_index(rec.src, rec.dst)];
  ++agg.stats.committed;

  const bool two = rec.copy_count == 2;
  const bool first_lost = !delivered[0];
  const bool second_lost = two ? !delivered[1] : true;
  const bool method_lost = two ? (first_lost && second_lost) : first_lost;

  if (first_lost) {
    if (rec.copies[0].host_drop) {
      ++agg.stats.first_loss_host;
    } else {
      ++agg.stats.first_loss_by_cause[static_cast<std::size_t>(rec.copies[0].cause)];
    }
  }

  if (two) {
    agg.stats.pair.record(first_lost, second_lost);
    path.stats.pair.record(first_lost, second_lost);
  } else {
    // Single-copy probes: record the copy as "both" so totlp == 1lp.
    agg.stats.pair.record(first_lost, first_lost);
    path.stats.pair.record(first_lost, first_lost);
  }

  if (delivered[0]) {
    agg.stats.first_lat_ms.add(latency[0].to_millis_f());
    path.stats.first_lat_ms.add(latency[0].to_millis_f());
  }
  if (two && delivered[1]) agg.stats.second_lat_ms.add(latency[1].to_millis_f());
  if (!method_lost) {
    // Earliest delivered copy defines method latency; the second copy is
    // sent `gap` later, which counts against its arrival.
    Duration best = Duration::max();
    for (std::uint8_t i = 0; i < rec.copy_count; ++i) {
      if (!delivered[i]) continue;
      const Duration eff = latency[i] + (rec.copies[i].sent - rec.copies[0].sent);
      if (eff < best) best = eff;
    }
    agg.stats.method_lat_ms.add(best.to_millis_f());
    path.stats.method_lat_ms.add(best.to_millis_f());
  }

  // Window bookkeeping (per path and global).
  const auto small_idx = rec.sent().since_epoch() / cfg_.small_window;
  const auto large_idx = rec.sent().since_epoch() / cfg_.large_window;
  if (small_idx != path.win_small_idx) {
    close_small_window(agg, path);
    path.win_small_idx = small_idx;
  }
  if (large_idx != path.win_large_idx) {
    close_large_window(agg, path);
    path.win_large_idx = large_idx;
  }
  path.win_small.record(method_lost);
  path.win_large.record(method_lost);

  if (small_idx != agg.gwin_small_idx) {
    if (agg.gwin_small_idx >= 0 && agg.gwin_small.sent() > 0) {
      agg.global_small_series.add(agg.gwin_small.loss_rate());
    }
    agg.gwin_small = LossCounter{};
    agg.gwin_small_idx = small_idx;
  }
  if (large_idx != agg.gwin_large_idx) {
    if (agg.gwin_large_idx >= 0 && agg.gwin_large.sent() > 0) {
      if (agg.gwin_large.loss_rate() > agg.worst.loss_rate) {
        agg.worst.loss_rate = agg.gwin_large.loss_rate();
        agg.worst.start = TimePoint::epoch() + cfg_.large_window * agg.gwin_large_idx;
      }
      if (agg.gwin_large_first.loss_rate() > agg.worst_first.loss_rate) {
        agg.worst_first.loss_rate = agg.gwin_large_first.loss_rate();
        agg.worst_first.start = TimePoint::epoch() + cfg_.large_window * agg.gwin_large_idx;
      }
    }
    agg.gwin_large = LossCounter{};
    agg.gwin_large_first = LossCounter{};
    agg.gwin_large_idx = large_idx;
  }
  agg.gwin_small.record(method_lost);
  agg.gwin_large.record(method_lost);
  agg.gwin_large_first.record(first_lost);
}

void Aggregator::finish(TimePoint end) {
  if (finished_) return;
  liveness_.finish(end);
  flush_up_to(end);
  for (PairScheme s : schemes_) {
    SchemeAgg& agg = agg_for(s);
    for (auto& path : agg.paths) {
      close_small_window(agg, path);
      close_large_window(agg, path);
    }
    if (agg.gwin_small_idx >= 0 && agg.gwin_small.sent() > 0) {
      agg.global_small_series.add(agg.gwin_small.loss_rate());
    }
    if (agg.gwin_large_idx >= 0 && agg.gwin_large.sent() > 0) {
      if (agg.gwin_large.loss_rate() > agg.worst.loss_rate) {
        agg.worst.loss_rate = agg.gwin_large.loss_rate();
        agg.worst.start = TimePoint::epoch() + cfg_.large_window * agg.gwin_large_idx;
      }
      if (agg.gwin_large_first.loss_rate() > agg.worst_first.loss_rate) {
        agg.worst_first.loss_rate = agg.gwin_large_first.loss_rate();
        agg.worst_first.start = TimePoint::epoch() + cfg_.large_window * agg.gwin_large_idx;
      }
    }
  }
  finished_ = true;
}

void Aggregator::merge(const Aggregator& other) {
  assert(finished_ && other.finished_ && "merge requires both aggregators finished");
  assert(n_ == other.n_ && "merging aggregators with different node counts");
  assert(schemes_ == other.schemes_ && "merging aggregators with different scheme sets");
  for (PairScheme s : schemes_) {
    SchemeAgg& a = agg_for(s);
    const SchemeAgg& b = other.agg_for(s);

    a.stats.pair.merge(b.stats.pair);
    a.stats.method_lat_ms.merge(b.stats.method_lat_ms);
    a.stats.first_lat_ms.merge(b.stats.first_lat_ms);
    a.stats.second_lat_ms.merge(b.stats.second_lat_ms);
    a.stats.committed += b.stats.committed;
    a.stats.filtered_host_failure += b.stats.filtered_host_failure;
    for (std::size_t i = 0; i < a.stats.first_loss_by_cause.size(); ++i) {
      a.stats.first_loss_by_cause[i] += b.stats.first_loss_by_cause[i];
    }
    a.stats.first_loss_host += b.stats.first_loss_host;

    for (std::size_t p = 0; p < a.paths.size(); ++p) {
      a.paths[p].stats.pair.merge(b.paths[p].stats.pair);
      a.paths[p].stats.method_lat_ms.merge(b.paths[p].stats.method_lat_ms);
      a.paths[p].stats.first_lat_ms.merge(b.paths[p].stats.first_lat_ms);
    }

    a.hist_small.merge(b.hist_small);
    a.hist_large.merge(b.hist_large);
    for (std::size_t i = 0; i < kHighLossThresholds; ++i) a.high_loss[i] += b.high_loss[i];
    a.hour_windows += b.hour_windows;
    a.global_small_series.merge(b.global_small_series);
    if (b.worst.loss_rate > a.worst.loss_rate) a.worst = b.worst;
    if (b.worst_first.loss_rate > a.worst_first.loss_rate) a.worst_first = b.worst_first;
  }
}

const Aggregator::SchemeStats& Aggregator::scheme_stats(PairScheme scheme) const {
  return agg_for(scheme).stats;
}

const Aggregator::PathStats& Aggregator::path_stats(PairScheme scheme, NodeId src,
                                                    NodeId dst) const {
  return agg_for(scheme).paths[path_index(src, dst)].stats;
}

const Histogram& Aggregator::window_hist(PairScheme scheme, bool hourly) const {
  const SchemeAgg& agg = agg_for(scheme);
  return hourly ? agg.hist_large : agg.hist_small;
}

const std::array<std::int64_t, kHighLossThresholds>& Aggregator::high_loss_hours(
    PairScheme scheme) const {
  return agg_for(scheme).high_loss;
}

std::int64_t Aggregator::total_hour_windows(PairScheme scheme) const {
  return agg_for(scheme).hour_windows;
}

const EmpiricalCdf& Aggregator::global_window_loss(PairScheme scheme) const {
  return agg_for(scheme).global_small_series;
}

Aggregator::WorstHour Aggregator::worst_hour(PairScheme scheme) const {
  return agg_for(scheme).worst;
}

Aggregator::WorstHour Aggregator::worst_hour_first_copy(PairScheme scheme) const {
  return agg_for(scheme).worst_first;
}

}  // namespace ronpath
