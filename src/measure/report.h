// Report extraction: turns Aggregator state into the paper's tables and
// figure series.
//
// Handles the Table 5 footnote ("items marked with an asterisk were
// inferred from the first packet of a two-packet pair"): rows for
// schemes that were not probed directly are derived from the first-copy
// marginals of their inference source (direct* from direct rand, lat*
// from lat loss).

#ifndef RONPATH_MEASURE_REPORT_H_
#define RONPATH_MEASURE_REPORT_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "measure/aggregator.h"
#include "measure/cross_trial.h"
#include "routing/schemes.h"

namespace ronpath {

// One row of Table 5 / Table 7.
struct LossTableRow {
  PairScheme scheme = PairScheme::kDirect;
  std::string name;
  bool inferred = false;       // derived from another scheme's first copy
  double lp1 = 0.0;            // first-copy loss %
  std::optional<double> lp2;   // second-copy loss % (two-packet schemes)
  double totlp = 0.0;          // probability all copies lost, %
  std::optional<double> clp;   // conditional loss %, second given first
  double lat_ms = 0.0;         // method latency (one-way or RTT)
  std::int64_t samples = 0;
};

// Builds the loss table for the given report rows. Rows probed directly
// use their own stats; others use inference_source().
[[nodiscard]] std::vector<LossTableRow> make_loss_table(const Aggregator& agg,
                                                        std::span<const PairScheme> rows);

// Canonical text rendering of a loss table (the bench binaries print
// exactly this, and the determinism tests compare it byte for byte).
[[nodiscard]] std::string render_loss_table(const std::vector<LossTableRow>& rows,
                                            bool round_trip);

// One row of Table 5 / Table 7 with cross-trial error bars: each metric
// summarizes the per-trial point estimates of `make_loss_table` rows.
struct LossTableRowCi {
  PairScheme scheme = PairScheme::kDirect;
  std::string name;
  bool inferred = false;
  MetricSummary lp1;
  std::optional<MetricSummary> lp2;  // present when any trial reported it
  MetricSummary totlp;
  std::optional<MetricSummary> clp;
  MetricSummary lat_ms;
  std::int64_t samples_total = 0;  // pairs summed over trials
};

// Collapses per-trial loss tables (same rows, same order — the output of
// make_loss_table on each trial's aggregator) into mean +/- 95% CI rows.
[[nodiscard]] std::vector<LossTableRowCi> make_loss_table_ci(
    std::span<const std::vector<LossTableRow>> per_trial);

// Text rendering with "mean +/- ci" cells, same layout as render_loss_table.
[[nodiscard]] std::string render_loss_table_ci(const std::vector<LossTableRowCi>& rows,
                                               bool round_trip);

// Table 6: high-loss hour counts. Row i = threshold i*10 (loss% > t).
struct HighLossTable {
  std::vector<PairScheme> schemes;
  // counts[t][s] for threshold index t and scheme index s.
  std::array<std::vector<std::int64_t>, kHighLossThresholds> counts;
  std::vector<std::int64_t> total_windows;  // per scheme
};
[[nodiscard]] HighLossTable make_high_loss_table(const Aggregator& agg,
                                                 std::span<const PairScheme> schemes);

// Figure 2: per-path long-term loss rates (%) for direct packets; one
// entry per ordered path with at least `min_samples` first-copy samples.
[[nodiscard]] std::vector<double> per_path_loss_percent(const Aggregator& agg,
                                                        PairScheme scheme,
                                                        std::size_t min_samples = 50);

// Figure 3: CDF points (loss_rate, cumulative fraction) of per-(path,
// window) method loss rates.
struct CdfPoint {
  double x;
  double f;
};
[[nodiscard]] std::vector<CdfPoint> window_loss_cdf(const Aggregator& agg, PairScheme scheme,
                                                    bool hourly = false);

// Figure 4: per-path conditional loss probabilities (%) of the second
// copy, over paths that observed at least one first-copy loss.
[[nodiscard]] std::vector<double> per_path_clp_percent(const Aggregator& agg,
                                                       PairScheme scheme,
                                                       std::int64_t min_first_losses = 1);

// Figure 5: per-unordered-pair mean latency (ms). Forward and reverse
// means are averaged, cancelling clock offsets of non-GPS hosts exactly
// as in Section 4.1. `first_copy` selects the first-copy latency (for
// inferred rows) instead of the method latency.
[[nodiscard]] std::vector<double> per_pair_latency_ms(const Aggregator& agg, PairScheme scheme,
                                                      bool first_copy,
                                                      std::int64_t min_samples = 20);

// Section 4.2 summary statistics for one scheme.
struct BaseStats {
  double loss_percent = 0.0;          // overall method loss
  double mean_latency_ms = 0.0;
  double worst_hour_loss_percent = 0.0;
  double frac_windows_below_01pct = 0.0;  // global 20-min loss < 0.1%
  double frac_windows_below_02pct = 0.0;
};
[[nodiscard]] BaseStats make_base_stats(const Aggregator& agg, PairScheme scheme);

// Section 4.2 statistics across trials, one BaseStats per realization.
struct BaseStatsCi {
  MetricSummary loss_percent;
  MetricSummary mean_latency_ms;
  MetricSummary worst_hour_loss_percent;
  MetricSummary frac_windows_below_01pct;
  MetricSummary frac_windows_below_02pct;
};
[[nodiscard]] BaseStatsCi make_base_stats_ci(std::span<const BaseStats> per_trial);

}  // namespace ronpath

#endif  // RONPATH_MEASURE_REPORT_H_
