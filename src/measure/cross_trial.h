// Cross-trial statistics: turns N independent realizations of a metric
// into mean, sample stddev, and a 95% confidence interval.
//
// The paper reports every table as a point estimate from one simulated
// run; the multi-trial runner (core/trials.h) replays the experiment
// under split seeds and this layer attaches error bars. Intervals use
// the Student t distribution (two-sided, 95%), which matters at the
// small trial counts (4-32) the benches actually use; beyond 30 degrees
// of freedom the normal 1.96 is close enough and is used directly.

#ifndef RONPATH_MEASURE_CROSS_TRIAL_H_
#define RONPATH_MEASURE_CROSS_TRIAL_H_

#include <cstdint>
#include <span>

namespace ronpath {

// Two-sided 95% Student t critical value for n samples (n-1 degrees of
// freedom); 0 for n < 2 (no interval can be formed).
[[nodiscard]] double t_critical_95(std::int64_t n);

// Summary of one metric observed once per trial.
struct MetricSummary {
  std::int64_t n = 0;      // trials contributing a value
  double mean = 0.0;
  double stddev = 0.0;     // sample stddev (n-1 denominator)
  double ci95_half = 0.0;  // half-width of the 95% CI; 0 when n < 2
};

[[nodiscard]] MetricSummary summarize_metric(std::span<const double> per_trial_values);

}  // namespace ronpath

#endif  // RONPATH_MEASURE_CROSS_TRIAL_H_
