// Streaming quantile sketch for one-way latencies.
//
// DDSketch-style logarithmic buckets (Masson et al.): bucket i covers
// (gamma^(i-1), gamma^i] nanoseconds with gamma = (1+alpha)/(1-alpha),
// so reporting the bucket midpoint 2*gamma^i/(gamma+1) guarantees a
// *relative* error of at most alpha for every quantile — p999 of a
// 40 ms distribution is as accurate as p50, which a fixed-width
// histogram cannot promise. Memory is O(log(max/min)/alpha): at the
// default alpha = 0.01 a sketch spanning 1 ns .. 100 s is ~1150
// buckets, grown lazily from zero.
//
// Sketches merge by bucket-wise addition (exact: merging N sketches
// equals one sketch fed the union), which is what makes per-flow or
// per-shard collection composable into per-class columns. All state is
// integral counts plus the construction-time alpha, so byte-identical
// runs produce byte-identical sketches; save_state/restore_state use
// the snapshot codec (header-only, no snapshot-library link needed).

#ifndef RONPATH_MEASURE_QUANTILE_SKETCH_H_
#define RONPATH_MEASURE_QUANTILE_SKETCH_H_

#include <cstdint>
#include <vector>

#include <string>

#include "snapshot/codec.h"
#include "util/time.h"

namespace ronpath {

class QuantileSketch {
 public:
  // alpha: guaranteed relative accuracy, in (0, 0.5). 0.01 = 1%.
  explicit QuantileSketch(double alpha = 0.01);

  // Records one latency. Non-positive durations land in bucket 0
  // (reported as 1 ns); a delivered packet always has positive latency.
  void add(Duration latency);

  // Bucket-wise sum. Both sketches must share the same alpha.
  void merge(const QuantileSketch& other);

  // The q-quantile (q in [0, 1]) with relative error <= alpha.
  // Undefined (returns zero) on an empty sketch.
  [[nodiscard]] Duration quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  void save_state(snap::Encoder& e) const;
  // Expects a sketch constructed with the same alpha.
  void restore_state(snap::Decoder& d);

  void check_invariants(std::vector<std::string>& out) const;

 private:
  [[nodiscard]] std::size_t index_of(std::int64_t nanos) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> buckets_;
};

}  // namespace ronpath

#endif  // RONPATH_MEASURE_QUANTILE_SKETCH_H_
