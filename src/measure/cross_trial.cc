#include "measure/cross_trial.h"

#include <array>
#include <cmath>

namespace ronpath {

double t_critical_95(std::int64_t n) {
  if (n < 2) return 0.0;
  // Two-sided 95% critical values for df = 1..30.
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
  };
  const std::int64_t df = n - 1;
  if (df <= static_cast<std::int64_t>(kTable.size())) {
    return kTable[static_cast<std::size_t>(df - 1)];
  }
  return 1.96;
}

MetricSummary summarize_metric(std::span<const double> per_trial_values) {
  MetricSummary s;
  s.n = static_cast<std::int64_t>(per_trial_values.size());
  if (s.n == 0) return s;
  double sum = 0.0;
  for (double v : per_trial_values) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n < 2) return s;
  double m2 = 0.0;
  for (double v : per_trial_values) m2 += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(m2 / static_cast<double>(s.n - 1));
  s.ci95_half = t_critical_95(s.n) * s.stddev / std::sqrt(static_cast<double>(s.n));
  return s;
}

}  // namespace ronpath
