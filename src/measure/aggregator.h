// Streaming aggregation of probe records into the paper's statistics.
//
// Records are buffered for a short horizon so the 90-second host-failure
// filter (measure/liveness.h) can be applied before they are committed;
// probes sent while the source or destination host was inferably down are
// disregarded, and copies that arrive more than one hour after sending
// are treated as lost (Section 4.1).
//
// Committed records update, per probed scheme:
//   * joint copy-loss tallies (1lp / 2lp / totlp / clp, Table 5/7),
//   * method latency (earliest delivered copy) and per-copy latencies,
//   * per-path tallies for the per-path figures (2, 4, 5),
//   * 20-minute and 1-hour loss windows per path (Figure 3, Table 6),
//   * global (all-path) 20-minute and hourly loss series (Section 4.2's
//     quiescence and worst-hour statistics).

#ifndef RONPATH_MEASURE_AGGREGATOR_H_
#define RONPATH_MEASURE_AGGREGATOR_H_

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "measure/liveness.h"
#include "measure/records.h"
#include "util/stats.h"

namespace ronpath {

struct AggregatorConfig {
  Duration small_window = Duration::minutes(20);
  Duration large_window = Duration::hours(1);
  // Commit delay; must exceed the liveness threshold.
  Duration buffer_horizon = Duration::minutes(3);
  // Copies arriving later than this count as lost.
  Duration receive_horizon = Duration::hours(1);
  // Records sent before this are dropped (estimator warm-up).
  TimePoint measure_start;
  // Latency column is round-trip (RONwide) rather than one-way.
  bool round_trip = false;
};

// Number of Table 6 thresholds: loss% > 0, 10, ..., 90.
inline constexpr std::size_t kHighLossThresholds = 10;

class Aggregator {
 public:
  Aggregator(std::size_t n_nodes, std::span<const PairScheme> schemes, AggregatorConfig cfg);

  // Send-activity heartbeat; also advances the commit watermark.
  void note_activity(NodeId node, TimePoint t);
  // Buffers a probe record for delayed commitment.
  void add(const ProbeRecord& rec);
  // Flushes all buffered records and closes open windows.
  void finish(TimePoint end);

  // Folds another finished aggregator of identical shape (node count,
  // scheme set, window configuration) into this one, which must also be
  // finished. All committed statistics — pair tallies, latency moments,
  // window histograms, high-loss counts, pooled window series, worst
  // hours — combine as if both record streams had been fed to a single
  // aggregator whose windows never straddled the two streams (which is
  // exactly the case for independent trials: each trial's windows are
  // closed by its own finish()). Liveness state is not merged; the
  // host-failure filter has already been applied per stream.
  void merge(const Aggregator& other);

  // ---- Results (valid after finish()) ----------------------------------

  struct SchemeStats {
    PairCounter pair;            // joint copy outcomes
    RunningStat method_lat_ms;   // earliest-copy latency of delivered probes
    RunningStat first_lat_ms;    // first-copy latency (inferred single rows)
    RunningStat second_lat_ms;
    std::int64_t committed = 0;  // records committed
    std::int64_t filtered_host_failure = 0;
    // First-copy loss decomposition by underlay cause (the paper's
    // congestion-vs-failure discussion): indexed by DropCause.
    std::array<std::int64_t, 4> first_loss_by_cause{};
    std::int64_t first_loss_host = 0;  // dead forwarder/receiver leaks
  };

  struct PathStats {
    PairCounter pair;
    RunningStat method_lat_ms;
    RunningStat first_lat_ms;
  };

  [[nodiscard]] const SchemeStats& scheme_stats(PairScheme scheme) const;
  [[nodiscard]] const PathStats& path_stats(PairScheme scheme, NodeId src, NodeId dst) const;

  // Distribution of per-(path,window) method loss rates.
  [[nodiscard]] const Histogram& window_hist(PairScheme scheme, bool hourly) const;
  // Table 6: count of (path,hour) windows with method loss% > threshold,
  // thresholds 0,10,...,90.
  [[nodiscard]] const std::array<std::int64_t, kHighLossThresholds>& high_loss_hours(
      PairScheme scheme) const;
  [[nodiscard]] std::int64_t total_hour_windows(PairScheme scheme) const;

  // Global (all paths pooled) window loss-rate series per scheme.
  [[nodiscard]] const EmpiricalCdf& global_window_loss(PairScheme scheme) const;
  // Worst global hour: (start, loss rate).
  struct WorstHour {
    TimePoint start;
    double loss_rate = 0.0;
  };
  [[nodiscard]] WorstHour worst_hour(PairScheme scheme) const;
  // Worst global hour by FIRST-COPY loss (the single-packet basis the
  // paper's Section 4.2 "worst one-hour period" uses).
  [[nodiscard]] WorstHour worst_hour_first_copy(PairScheme scheme) const;

  [[nodiscard]] std::span<const PairScheme> schemes() const { return schemes_; }
  [[nodiscard]] std::size_t nodes() const { return n_; }
  [[nodiscard]] const HostLivenessTracker& liveness() const { return liveness_; }

 private:
  struct PathAgg {
    PathStats stats;
    std::int64_t win_small_idx = -1;
    LossCounter win_small;
    std::int64_t win_large_idx = -1;
    LossCounter win_large;
  };

  struct SchemeAgg {
    SchemeStats stats;
    std::vector<PathAgg> paths;  // n*n
    Histogram hist_small{0.0, 1.0001, 200};
    Histogram hist_large{0.0, 1.0001, 200};
    std::array<std::int64_t, kHighLossThresholds> high_loss{};
    std::int64_t hour_windows = 0;
    // Global pooled windows.
    std::int64_t gwin_small_idx = -1;
    LossCounter gwin_small;
    std::int64_t gwin_large_idx = -1;
    LossCounter gwin_large;
    LossCounter gwin_large_first;  // first-copy basis
    EmpiricalCdf global_small_series;
    WorstHour worst;
    WorstHour worst_first;
  };

  void commit(const ProbeRecord& rec);
  void flush_up_to(TimePoint watermark);
  void close_small_window(SchemeAgg& agg, PathAgg& path);
  void close_large_window(SchemeAgg& agg, PathAgg& path);
  [[nodiscard]] SchemeAgg& agg_for(PairScheme scheme);
  [[nodiscard]] const SchemeAgg& agg_for(PairScheme scheme) const;
  [[nodiscard]] std::size_t path_index(NodeId src, NodeId dst) const;

  std::size_t n_;
  std::vector<PairScheme> schemes_;
  AggregatorConfig cfg_;
  HostLivenessTracker liveness_;
  std::array<std::unique_ptr<SchemeAgg>, 14> by_scheme_;
  std::deque<ProbeRecord> buffer_;
  TimePoint watermark_;
  bool finished_ = false;
};

}  // namespace ronpath

#endif  // RONPATH_MEASURE_AGGREGATOR_H_
