// Host-failure inference from probe logs (Section 4.1).
//
// "We consider a host to have failed if it stops sending probes for more
//  than 90 seconds, and we disregard probes lost due to host failure."
//
// The tracker watches each host's send activity; a silence gap longer
// than the threshold marks the host down from (last activity + threshold)
// until its next activity. Because an interval is only known once the
// host resumes (or the run ends), consumers buffer records and query the
// tracker after a watermark delay.

#ifndef RONPATH_MEASURE_LIVENESS_H_
#define RONPATH_MEASURE_LIVENESS_H_

#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace ronpath {

class HostLivenessTracker {
 public:
  HostLivenessTracker(std::size_t n_nodes, Duration silence_threshold = Duration::seconds(90));

  // Records that `node` emitted a probe (or other activity) at `t`.
  // Activity timestamps per node must be non-decreasing.
  void note_activity(NodeId node, TimePoint t);

  // Declares the end of the observation; hosts silent since their last
  // activity are marked down through `end`.
  void finish(TimePoint end);

  // True if `node` is known to have been down (silent beyond threshold)
  // at `t`. Only reliable for t at least `threshold` older than the
  // node's latest activity (or after finish()).
  [[nodiscard]] bool was_down(NodeId node, TimePoint t) const;

  // Inferred down intervals for a node (closed-open).
  struct DownInterval {
    TimePoint start;
    TimePoint end;
  };
  [[nodiscard]] const std::vector<DownInterval>& intervals(NodeId node) const;

  [[nodiscard]] Duration threshold() const { return threshold_; }

 private:
  struct NodeState {
    bool any_activity = false;
    TimePoint last_activity;
    std::vector<DownInterval> down;
  };

  Duration threshold_;
  std::vector<NodeState> nodes_;
  bool finished_ = false;
};

}  // namespace ronpath

#endif  // RONPATH_MEASURE_LIVENESS_H_
