// User-perceived, per-class metrics for the workload layer.
//
// The paper's tables score *paths* (average loss, average latency); a
// production workload is scored by what each user's flow experienced:
// tail latency (p99/p999 via QuantileSketch), loss-burst structure
// (three consecutive lost VoIP packets are audible where three isolated
// ones are not), and whether the packet met its class SLO.
//
// MOS-style score (documented in DESIGN.md §15): a transmission-rating
// style composition
//
//   mos = 1 + 3.5 * r_loss * r_delay
//   r_loss  = 1 / (1 + k_loss * eff_loss)          eff_loss = loss_frac * mean_burst_len
//   r_delay = min(1, slo_latency / p99)            (1 when the tail meets the bound)
//
// clamped to [1, 4.5]. eff_loss multiplies the raw loss fraction by the
// mean loss-burst length, so bursty loss is penalized super-linearly —
// the standard observation behind Markov/Gilbert loss models of
// perceived quality. k_loss = 30 puts 1% random loss at ~4.2 and 10%
// bursty loss deep below 3.
//
// ClassMetrics merge bucket-wise/count-wise (exact), so per-shard or
// per-trial collection composes; everything snapshots through the codec.

#ifndef RONPATH_MEASURE_PERCEIVED_H_
#define RONPATH_MEASURE_PERCEIVED_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "measure/quantile_sketch.h"
#include "util/time.h"

namespace ronpath {

// Workload traffic classes, ordered by latency sensitivity. Distinct
// from wire/packet.h's TrafficClass (probe-vs-data plumbing).
enum class ServiceClass : std::uint8_t { kVoip = 0, kVideo = 1, kWeb = 2, kBulk = 3 };

inline constexpr std::size_t kServiceClassCount = 4;

[[nodiscard]] std::string_view to_string(ServiceClass c);

// Per-class accumulator. The caller reports every packet once, and
// every completed loss burst (a maximal run of consecutive losses
// within one flow) once.
class ClassMetrics {
 public:
  ClassMetrics() : latency_(0.01) {}

  void note_packet(bool delivered, Duration latency, bool slo_ok) {
    ++sent_;
    if (delivered) {
      ++delivered_;
      latency_.add(latency);
    }
    if (slo_ok) ++slo_ok_;
  }
  void note_loss_burst(std::uint64_t length) {
    ++bursts_;
    burst_len_sum_ += length;
  }

  void merge(const ClassMetrics& other);

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t bursts() const { return bursts_; }
  [[nodiscard]] double loss_pct() const;
  [[nodiscard]] double mean_burst_len() const;
  // Share of packets that met the class SLO (delivered within bound).
  [[nodiscard]] double slo_attainment_pct() const;
  [[nodiscard]] Duration p50() const { return latency_.quantile(0.50); }
  [[nodiscard]] Duration p99() const { return latency_.quantile(0.99); }
  [[nodiscard]] Duration p999() const { return latency_.quantile(0.999); }
  // MOS-style score in [1, 4.5]; needs the class's SLO latency bound.
  [[nodiscard]] double mos(Duration slo_latency) const;

  void save_state(snap::Encoder& e) const;
  void restore_state(snap::Decoder& d);
  void check_invariants(std::vector<std::string>& out) const;

 private:
  QuantileSketch latency_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t slo_ok_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t burst_len_sum_ = 0;
};

using PerClassMetrics = std::array<ClassMetrics, kServiceClassCount>;

}  // namespace ronpath

#endif  // RONPATH_MEASURE_PERCEIVED_H_
