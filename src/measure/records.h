// Probe records: the unit of measurement data (Section 4.1).
//
// Each probe carries a random 64-bit identifier logged by both hosts with
// send/receive times; a record summarizes one probe (one or two packet
// copies). Records support compact binary serialization so datasets can
// be persisted and re-analyzed, mirroring the paper's published trace
// data.

#ifndef RONPATH_MEASURE_RECORDS_H_
#define RONPATH_MEASURE_RECORDS_H_

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "net/network.h"
#include "util/ids.h"
#include "util/time.h"
#include "wire/bytes.h"
#include "wire/packet.h"

namespace ronpath {

struct CopyRecord {
  RouteTag tag = RouteTag::kDirect;
  NodeId via = kDirectVia;        // intermediate used, if any
  bool delivered = false;
  DropCause cause = DropCause::kNone;
  bool host_drop = false;         // lost because via/dst host was dead
  TimePoint sent;
  // One-way delay (or RTT in round-trip datasets) as observed by the
  // receiving host's clock; valid when delivered.
  Duration latency;
};

struct ProbeRecord {
  PairScheme scheme = PairScheme::kDirect;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint64_t probe_id = 0;
  std::uint8_t copy_count = 1;
  std::array<CopyRecord, 2> copies{};

  [[nodiscard]] TimePoint sent() const { return copies[0].sent; }
  [[nodiscard]] bool any_delivered() const {
    for (std::uint8_t i = 0; i < copy_count; ++i) {
      if (copies[i].delivered) return true;
    }
    return false;
  }
};

// Binary serialization (fixed-size little-endian-free big-endian format).
void encode_record(const ProbeRecord& rec, ByteWriter& w);
[[nodiscard]] std::optional<ProbeRecord> decode_record(ByteReader& r);

// Whole-file helpers with a magic/version header and record count.
void write_records(std::ostream& os, std::span<const ProbeRecord> records);
[[nodiscard]] std::optional<std::vector<ProbeRecord>> read_records(
    std::span<const std::uint8_t> data);

// Streaming variant: header without a count, records until EOF. Used by
// the probe driver's record tee so arbitrarily long runs can be captured
// without buffering (the paper's hosts pushed logs to a central machine
// the same way).
class RecordStreamWriter {
 public:
  explicit RecordStreamWriter(std::ostream& os);
  void add(const ProbeRecord& rec);
  [[nodiscard]] std::int64_t written() const { return written_; }

 private:
  std::ostream& os_;
  std::int64_t written_ = 0;
};

// Reads a stream written by RecordStreamWriter; nullopt on a malformed
// header or a torn record.
[[nodiscard]] std::optional<std::vector<ProbeRecord>> read_record_stream(
    std::span<const std::uint8_t> data);

}  // namespace ronpath

#endif  // RONPATH_MEASURE_RECORDS_H_
