#include "measure/liveness.h"

#include <algorithm>
#include <cassert>

namespace ronpath {

HostLivenessTracker::HostLivenessTracker(std::size_t n_nodes, Duration silence_threshold)
    : threshold_(silence_threshold), nodes_(n_nodes) {}

void HostLivenessTracker::note_activity(NodeId node, TimePoint t) {
  assert(node < nodes_.size());
  assert(!finished_);
  NodeState& st = nodes_[node];
  if (st.any_activity) {
    assert(t >= st.last_activity);
    if (t - st.last_activity > threshold_) {
      st.down.push_back({st.last_activity + threshold_, t});
    }
  }
  st.any_activity = true;
  st.last_activity = t;
}

void HostLivenessTracker::finish(TimePoint end) {
  if (finished_) return;
  finished_ = true;
  for (auto& st : nodes_) {
    if (!st.any_activity) {
      // Never heard from: down for the entire observation.
      st.down.push_back({TimePoint::epoch(), end});
    } else if (end > st.last_activity && end - st.last_activity > threshold_) {
      st.down.push_back({st.last_activity + threshold_, end});
    }
  }
}

bool HostLivenessTracker::was_down(NodeId node, TimePoint t) const {
  assert(node < nodes_.size());
  const NodeState& st = nodes_[node];
  // Pending silence: the node has not been heard from since before t and
  // the silence already exceeds the threshold, so the down interval is
  // known to have started even though its end is not yet known.
  if (!st.any_activity) return true;
  if (t > st.last_activity + threshold_) return true;
  const auto& down = st.down;
  auto it = std::upper_bound(down.begin(), down.end(), t,
                             [](TimePoint v, const DownInterval& iv) { return v < iv.start; });
  if (it == down.begin()) return false;
  --it;
  return t < it->end;
}

const std::vector<HostLivenessTracker::DownInterval>& HostLivenessTracker::intervals(
    NodeId node) const {
  assert(node < nodes_.size());
  return nodes_[node].down;
}

}  // namespace ronpath
