#include "measure/records.h"

#include <cstring>

namespace ronpath {
namespace {

constexpr std::uint32_t kFileMagic = 0x524F4E44;  // "ROND"
constexpr std::uint16_t kFileVersion = 1;
constexpr std::uint16_t kStreamVersion = 2;

void encode_copy(const CopyRecord& c, ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(c.tag));
  w.u16(c.via);
  std::uint8_t flags = 0;
  if (c.delivered) flags |= 0x01;
  if (c.host_drop) flags |= 0x02;
  flags |= static_cast<std::uint8_t>(static_cast<std::uint8_t>(c.cause) << 4);
  w.u8(flags);
  w.i64(c.sent.nanos_since_epoch());
  w.i64(c.latency.count_nanos());
}

std::optional<CopyRecord> decode_copy(ByteReader& r) {
  CopyRecord c;
  const std::uint8_t tag = r.u8();
  c.via = r.u16();
  const std::uint8_t flags = r.u8();
  c.sent = TimePoint::from_nanos(r.i64());
  c.latency = Duration::nanos(r.i64());
  if (!r.ok()) return std::nullopt;
  if (tag > static_cast<std::uint8_t>(RouteTag::kLoss)) return std::nullopt;
  const std::uint8_t cause = flags >> 4;
  if (cause > static_cast<std::uint8_t>(DropCause::kOutage)) return std::nullopt;
  c.tag = static_cast<RouteTag>(tag);
  c.delivered = (flags & 0x01) != 0;
  c.host_drop = (flags & 0x02) != 0;
  c.cause = static_cast<DropCause>(cause);
  return c;
}

}  // namespace

void encode_record(const ProbeRecord& rec, ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(rec.scheme));
  w.u16(rec.src);
  w.u16(rec.dst);
  w.u64(rec.probe_id);
  w.u8(rec.copy_count);
  for (std::uint8_t i = 0; i < rec.copy_count; ++i) encode_copy(rec.copies[i], w);
}

std::optional<ProbeRecord> decode_record(ByteReader& r) {
  ProbeRecord rec;
  const std::uint8_t scheme = r.u8();
  rec.src = r.u16();
  rec.dst = r.u16();
  rec.probe_id = r.u64();
  rec.copy_count = r.u8();
  if (!r.ok()) return std::nullopt;
  if (scheme > static_cast<std::uint8_t>(PairScheme::kRandLoss)) return std::nullopt;
  if (rec.copy_count < 1 || rec.copy_count > 2) return std::nullopt;
  rec.scheme = static_cast<PairScheme>(scheme);
  for (std::uint8_t i = 0; i < rec.copy_count; ++i) {
    auto c = decode_copy(r);
    if (!c) return std::nullopt;
    rec.copies[i] = *c;
  }
  return rec;
}

void write_records(std::ostream& os, std::span<const ProbeRecord> records) {
  ByteWriter w;
  w.u32(kFileMagic);
  w.u16(kFileVersion);
  w.u64(records.size());
  for (const auto& rec : records) encode_record(rec, w);
  const auto view = w.view();
  os.write(reinterpret_cast<const char*>(view.data()), static_cast<long>(view.size()));
}

RecordStreamWriter::RecordStreamWriter(std::ostream& os) : os_(os) {
  ByteWriter w;
  w.u32(kFileMagic);
  w.u16(kStreamVersion);
  const auto v = w.view();
  os_.write(reinterpret_cast<const char*>(v.data()), static_cast<long>(v.size()));
}

void RecordStreamWriter::add(const ProbeRecord& rec) {
  ByteWriter w;
  encode_record(rec, w);
  const auto v = w.view();
  os_.write(reinterpret_cast<const char*>(v.data()), static_cast<long>(v.size()));
  ++written_;
}

std::optional<std::vector<ProbeRecord>> read_record_stream(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kFileMagic) return std::nullopt;
  if (r.u16() != kStreamVersion) return std::nullopt;
  if (!r.ok()) return std::nullopt;
  std::vector<ProbeRecord> out;
  while (r.remaining() > 0) {
    auto rec = decode_record(r);
    if (!rec) return std::nullopt;
    out.push_back(*rec);
  }
  return out;
}

std::optional<std::vector<ProbeRecord>> read_records(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kFileMagic) return std::nullopt;
  if (r.u16() != kFileVersion) return std::nullopt;
  const std::uint64_t count = r.u64();
  if (!r.ok()) return std::nullopt;
  std::vector<ProbeRecord> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    auto rec = decode_record(r);
    if (!rec) return std::nullopt;
    out.push_back(*rec);
  }
  if (!r.exhausted()) return std::nullopt;
  return out;
}

}  // namespace ronpath
