#include "measure/quantile_sketch.h"

#include <cassert>
#include <cmath>

namespace ronpath {

QuantileSketch::QuantileSketch(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha < 0.5);
  gamma_ = (1.0 + alpha) / (1.0 - alpha);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

std::size_t QuantileSketch::index_of(std::int64_t nanos) const {
  if (nanos <= 1) return 0;
  // Bucket i covers (gamma^(i-1), gamma^i]; ceil() puts each value in
  // the first bucket whose upper bound reaches it.
  const double idx = std::ceil(std::log(static_cast<double>(nanos)) * inv_log_gamma_);
  return idx < 1.0 ? 1 : static_cast<std::size_t>(idx);
}

void QuantileSketch::add(Duration latency) {
  const std::size_t i = index_of(latency.count_nanos());
  if (i >= buckets_.size()) buckets_.resize(i + 1, 0);
  ++buckets_[i];
  ++count_;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  assert(alpha_ == other.alpha_);
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
}

Duration QuantileSketch::quantile(double q) const {
  if (count_ == 0) return Duration::nanos(0);
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile among `count_` ordered observations.
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum > target) {
      if (i == 0) return Duration::nanos(1);
      // Midpoint of (gamma^(i-1), gamma^i] in the multiplicative sense:
      // within alpha of every value the bucket can contain.
      const double mid =
          2.0 * std::pow(gamma_, static_cast<double>(i)) / (gamma_ + 1.0);
      return Duration::nanos(static_cast<std::int64_t>(std::llround(mid)));
    }
  }
  return Duration::nanos(0);  // unreachable when count_ > 0
}

void QuantileSketch::save_state(snap::Encoder& e) const {
  e.tag("QSKT");
  e.f64(alpha_);
  e.u64(count_);
  e.u64(buckets_.size());
  for (const std::uint64_t b : buckets_) e.u64(b);
}

void QuantileSketch::restore_state(snap::Decoder& d) {
  d.expect_tag("QSKT");
  const double alpha = d.f64();
  if (alpha != alpha_) {
    throw snap::SnapshotError("quantile sketch: alpha mismatch between snapshot and world");
  }
  count_ = d.u64();
  const std::uint64_t n = d.count(8);
  buckets_.assign(n, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    buckets_[i] = d.u64();
    total += buckets_[i];
  }
  if (total != count_) {
    throw snap::SnapshotError("quantile sketch: bucket counts disagree with the total");
  }
}

void QuantileSketch::check_invariants(std::vector<std::string>& out) const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets_) total += b;
  if (total != count_) {
    out.push_back("quantile sketch: bucket counts disagree with the total");
  }
  if (!buckets_.empty() && buckets_.back() == 0) {
    out.push_back("quantile sketch: trailing empty bucket (growth invariant broken)");
  }
}

}  // namespace ronpath
