// Identifiers shared across the ronpath libraries.

#ifndef RONPATH_UTIL_IDS_H_
#define RONPATH_UTIL_IDS_H_

#include <cstdint>

namespace ronpath {

// Overlay node identifier; dense index into the testbed host table.
using NodeId = std::uint16_t;
inline constexpr NodeId kInvalidNode = 0xFFFF;
// "via" value meaning a packet takes the direct Internet path.
inline constexpr NodeId kDirectVia = 0xFFFE;

// An overlay path with up to two intermediates: direct when via ==
// kDirectVia; src -> via -> dst; or src -> via -> via2 -> dst. The
// paper's reactive router considers at most one intermediate ("a
// generalized scheme would also need to choose the sets of nodes");
// two-hop paths are provided for the scaling extension and ablations.
struct PathSpec {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  NodeId via = kDirectVia;
  NodeId via2 = kDirectVia;  // only meaningful when via is set

  [[nodiscard]] constexpr bool is_direct() const { return via == kDirectVia; }
  [[nodiscard]] constexpr bool is_two_hop() const {
    return via != kDirectVia && via2 != kDirectVia;
  }
  // Number of overlay forwarding hops (0, 1 or 2).
  [[nodiscard]] constexpr int intermediates() const {
    return (via != kDirectVia ? 1 : 0) + (via2 != kDirectVia ? 1 : 0);
  }
  friend constexpr bool operator==(const PathSpec&, const PathSpec&) = default;
};

}  // namespace ronpath

#endif  // RONPATH_UTIL_IDS_H_
