// Deterministic, splittable random number generation.
//
// Every stochastic component in the simulator owns its own Rng, forked from
// a parent stream. Forking uses SplitMix64 over a (parent-state, tag) pair,
// so the randomness consumed by one component never perturbs another:
// adding a probe type or a node does not reshuffle every other draw in the
// run. That property is what makes A/B comparisons between routing tactics
// meaningful at fixed seed.
//
// Core generator: xoshiro256** (Blackman & Vigna), seeded via SplitMix64.

#ifndef RONPATH_UTIL_RNG_H_
#define RONPATH_UTIL_RNG_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <string_view>

#include "util/time.h"

namespace ronpath {

class Rng {
 public:
  // Seeds the four xoshiro words by iterating SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed);

  // Derives an independent child stream. `tag` identifies the consumer
  // ("prober", "link:17", ...) so layouts are stable across code motion.
  [[nodiscard]] Rng fork(std::string_view tag) const;
  [[nodiscard]] Rng fork(std::uint64_t tag) const;

  // Uniform draws. Defined inline: these run several times per simulated
  // packet and are a handful of ALU ops each. --------------------------
  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }
  // Unbiased integer in [0, bound); bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exactness.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      const unsigned __int128 m = static_cast<unsigned __int128>(r) * bound;
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }
  // Double in [0, 1).
  [[nodiscard]] double next_double() {
    // 53 high bits -> [0,1) with full double precision.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  // Double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }
  // Integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Distributions ------------------------------------------------------
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }
  // Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean);
  [[nodiscard]] double normal(double mean, double stddev);
  // Lognormal parameterized by the mean/stddev of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma);
  // Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed bursts).
  [[nodiscard]] double pareto(double x_m, double alpha);

  // Time-valued draws, used for interarrival and gap sampling.
  [[nodiscard]] Duration exponential_duration(Duration mean);
  [[nodiscard]] Duration uniform_duration(Duration lo, Duration hi);

  // Snapshot support: the complete mutable state of the stream. Restoring
  // a saved State reproduces the draw sequence exactly (including the
  // cached Box-Muller spare), which the snapshot subsystem relies on for
  // byte-identical continuation.
  struct State {
    std::array<std::uint64_t, 4> s{};
    double spare_normal = 0.0;
    bool has_spare_normal = false;
  };
  [[nodiscard]] State save_state() const { return {s_, spare_normal_, has_spare_normal_}; }
  void restore_state(const State& st) {
    s_ = st.s;
    spare_normal_ = st.spare_normal;
    has_spare_normal_ = st.has_spare_normal;
  }

 private:
  Rng() = default;
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::array<std::uint64_t, 4> s_{};
  // Cached second normal variate from the Box-Muller pair.
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace ronpath

#endif  // RONPATH_UTIL_RNG_H_
