// Streaming and empirical statistics used by the measurement pipeline.
//
// RunningStat   - Welford one-pass mean/variance with min/max.
// Histogram     - fixed-width bins over [lo, hi) with under/overflow.
// EmpiricalCdf  - sample collector with quantiles and CDF evaluation.
// LossCounter   - sent/lost tallies with exact loss-rate accessors.
// PairCounter   - joint outcome tallies for two-packet probes; provides
//                 the paper's 1lp / 2lp / totlp / clp columns directly.

#ifndef RONPATH_UTIL_STATS_H_
#define RONPATH_UTIL_STATS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace ronpath {

// One-pass mean / variance / extrema (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-width histogram over [lo, hi). Samples below lo land in the
// underflow bucket, samples at or above hi in the overflow bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  // Element-wise sum; both histograms must share lo/hi/bin count.
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::int64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::int64_t underflow() const { return underflow_; }
  [[nodiscard]] std::int64_t overflow() const { return overflow_; }
  [[nodiscard]] std::int64_t total() const { return total_; }

  // Fraction of all samples (including under/overflow) strictly below x.
  [[nodiscard]] double fraction_below(double x) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

// Collects raw samples; sorts lazily on first query.
class EmpiricalCdf {
 public:
  void add(double x);
  // Appends the other collector's samples.
  void merge(const EmpiricalCdf& other);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  // Quantile by linear interpolation between order statistics; q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  // Empirical P(X <= x).
  [[nodiscard]] double fraction_at_or_below(double x) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  // Evaluation points for plotting: (x, F(x)) at each distinct sample.
  struct Point {
    double x;
    double f;
  };
  [[nodiscard]] std::vector<Point> curve() const;
  // Downsampled curve with at most max_points entries (for table output).
  [[nodiscard]] std::vector<Point> curve(std::size_t max_points) const;

  [[nodiscard]] std::span<const double> sorted_samples() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Streaming quantile estimation with the P-square algorithm (Jain &
// Chlamtac 1985): tracks one quantile with five markers in O(1) memory,
// without storing samples. Used where RunningStat's moments are not
// enough (latency tails) but an EmpiricalCdf would be too heavy.
class P2Quantile {
 public:
  // q in (0, 1), e.g. 0.99 for p99.
  explicit P2Quantile(double q);

  void add(double x);
  [[nodiscard]] std::int64_t count() const { return count_; }
  // Current estimate; with fewer than 5 samples, the exact order
  // statistic of what has been seen.
  [[nodiscard]] double value() const;

 private:
  void init_markers();

  double q_;
  std::int64_t count_ = 0;
  // First five observations, sorted at initialization time.
  std::array<double, 5> initial_{};
  // P-square state: marker heights, positions, desired positions.
  std::array<double, 5> heights_{};
  std::array<double, 5> pos_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> desired_inc_{};
};

// Sent/lost tallies for single packets.
class LossCounter {
 public:
  void record(bool lost) {
    ++sent_;
    if (lost) ++lost_;
  }
  void merge(const LossCounter& o) {
    sent_ += o.sent_;
    lost_ += o.lost_;
  }
  [[nodiscard]] std::int64_t sent() const { return sent_; }
  [[nodiscard]] std::int64_t lost() const { return lost_; }
  [[nodiscard]] std::int64_t received() const { return sent_ - lost_; }
  // Loss rate in [0,1]; 0 when nothing was sent.
  [[nodiscard]] double loss_rate() const {
    return sent_ > 0 ? static_cast<double>(lost_) / static_cast<double>(sent_) : 0.0;
  }
  [[nodiscard]] double loss_percent() const { return 100.0 * loss_rate(); }

 private:
  std::int64_t sent_ = 0;
  std::int64_t lost_ = 0;
};

// Joint loss outcomes of a two-packet probe. Field names follow the
// paper's Table 5: 1lp and 2lp are the marginal loss percentages of the
// first and second packet, totlp the probability both were lost, and clp
// the conditional probability the second was lost given the first was.
class PairCounter {
 public:
  void record(bool first_lost, bool second_lost);
  void merge(const PairCounter& o);

  [[nodiscard]] std::int64_t pairs() const { return pairs_; }
  [[nodiscard]] std::int64_t first_lost() const { return first_lost_; }
  [[nodiscard]] std::int64_t second_lost() const { return second_lost_; }
  [[nodiscard]] std::int64_t both_lost() const { return both_lost_; }

  [[nodiscard]] double first_loss_percent() const;   // 1lp
  [[nodiscard]] double second_loss_percent() const;  // 2lp
  [[nodiscard]] double total_loss_percent() const;   // totlp (both lost)
  // clp: P(second lost | first lost); nullopt when no first-packet losses.
  [[nodiscard]] std::optional<double> conditional_loss_percent() const;

 private:
  std::int64_t pairs_ = 0;
  std::int64_t first_lost_ = 0;
  std::int64_t second_lost_ = 0;
  std::int64_t both_lost_ = 0;
};

}  // namespace ronpath

#endif  // RONPATH_UTIL_STATS_H_
