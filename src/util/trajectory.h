// Trajectory-file parsing shared by the perf benches (bench_hotpath,
// bench_scale).
//
// A trajectory file (BENCH_hotpath.json, BENCH_scale.json) is a JSON
// array of flat objects, one per committed run, appended over time. The
// format is our own, so a hand-rolled scanner is sufficient and avoids a
// JSON-library dependency — but the scan must be entry-aware: --compare
// baselines come from the LAST entry only. Older entries may carry
// fields that later runs dropped (and vice versa: pre-PR6 rows have no
// sharded columns), so a whole-file "last occurrence of the key" scan
// silently picks a stale baseline whenever the newest entry lacks a
// field an older one has.

#ifndef RONPATH_UTIL_TRAJECTORY_H_
#define RONPATH_UTIL_TRAJECTORY_H_

#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace ronpath::traj {

// Reads a whole file; nullopt when it cannot be opened.
inline std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Returns the last complete top-level `{...}` object in `text`, brace
// matched and string-aware (braces inside JSON strings, including
// escaped quotes, do not count). Empty string when the text holds no
// complete object.
inline std::string last_entry(const std::string& text) {
  std::size_t best_start = std::string::npos;
  std::size_t best_end = std::string::npos;  // one past the closing brace
  std::size_t start = std::string::npos;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      if (depth > 0 && --depth == 0) {
        best_start = start;
        best_end = i + 1;
      }
    }
  }
  if (best_start == std::string::npos) return {};
  return text.substr(best_start, best_end - best_start);
}

// Scans `entry` for `"key": <number>` and returns the first value, or
// `fallback` when the key is absent. Keys in our trajectory entries are
// unique per object, so first == only.
inline double number_field(const std::string& entry, const std::string& key,
                           double fallback = -1.0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = entry.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtod(entry.c_str() + at + needle.size(), nullptr);
}

// True when the entry carries the key at all (regardless of value).
inline bool has_field(const std::string& entry, const std::string& key) {
  return entry.find("\"" + key + "\":") != std::string::npos;
}

}  // namespace ronpath::traj

#endif  // RONPATH_UTIL_TRAJECTORY_H_
