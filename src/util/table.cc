#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ronpath {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  align_.assign(headers_.size(), Align::kRight);
  if (!align_.empty()) align_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t column, Align align) {
  assert(column < align_.size());
  align_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string TextTable::opt_num(bool present, double v, int precision) {
  return present ? num(v, precision) : std::string("-");
}

std::string TextTable::num_ci(double mean, double ci_half, int precision) {
  if (ci_half == 0.0) return num(mean, precision);
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f±%.*f", precision, mean, precision, ci_half);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      const auto pad = widths[c] - cells[c].size();
      if (align_[c] == Align::kRight) os << std::string(pad, ' ') << cells[c];
      else os << cells[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c > 0 ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    const std::string& f = cells[i];
    const bool needs_quote = f.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) {
      os_ << f;
    } else {
      os_ << '"';
      for (char ch : f) {
        if (ch == '"') os_ << "\"\"";
        else os_ << ch;
      }
      os_ << '"';
    }
  }
  os_ << '\n';
}

void plot_ascii(std::ostream& os, const std::vector<AsciiSeries>& series, double y_lo,
                double y_hi, std::size_t width, std::size_t height, std::string_view x_label,
                std::string_view y_label) {
  if (series.empty() || width < 8 || height < 4) return;
  static constexpr char kGlyphs[] = "*+ox#@%&";
  double x_lo = 0.0;
  double x_hi = 1.0;
  bool have_x = false;
  for (const auto& s : series) {
    for (double x : s.xs) {
      if (!have_x) {
        x_lo = x_hi = x;
        have_x = true;
      } else {
        x_lo = std::min(x_lo, x);
        x_hi = std::max(x_hi, x);
      }
    }
  }
  if (!have_x || x_hi <= x_lo) x_hi = x_lo + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof kGlyphs - 1)];
    const auto& s = series[si];
    const std::size_t n = std::min(s.xs.size(), s.ys.size());
    for (std::size_t i = 0; i < n; ++i) {
      const double xf = (s.xs[i] - x_lo) / (x_hi - x_lo);
      const double yf = (s.ys[i] - y_lo) / (y_hi - y_lo);
      if (yf < 0.0 || yf > 1.0) continue;
      auto col = static_cast<std::size_t>(xf * static_cast<double>(width - 1));
      auto row = static_cast<std::size_t>((1.0 - yf) * static_cast<double>(height - 1));
      grid[row][col] = glyph;
    }
  }

  if (!y_label.empty()) os << y_label << '\n';
  char buf[32];
  for (std::size_t r = 0; r < height; ++r) {
    const double yv = y_hi - (y_hi - y_lo) * static_cast<double>(r) / static_cast<double>(height - 1);
    std::snprintf(buf, sizeof buf, "%8.3g |", yv);
    os << buf << grid[r] << '\n';
  }
  os << std::string(10, ' ') << std::string(width, '-') << '\n';
  std::snprintf(buf, sizeof buf, "%-10.4g", x_lo);
  os << std::string(10, ' ') << buf;
  std::snprintf(buf, sizeof buf, "%10.4g", x_hi);
  os << std::string(width > 30 ? width - 20 : 0, ' ') << buf;
  if (!x_label.empty()) os << "  " << x_label;
  os << '\n';
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  '" << kGlyphs[si % (sizeof kGlyphs - 1)] << "' = " << series[si].name << '\n';
  }
}

}  // namespace ronpath
