#include "util/time.h"

#include <cmath>
#include <cstdio>

namespace ronpath {

std::string Duration::to_string() const {
  char buf[64];
  const double abs_ns = std::abs(static_cast<double>(ns_));
  if (abs_ns >= 86'400e9) {
    std::snprintf(buf, sizeof buf, "%.3gd", static_cast<double>(ns_) / 86'400e9);
  } else if (abs_ns >= 3'600e9) {
    std::snprintf(buf, sizeof buf, "%.3gh", static_cast<double>(ns_) / 3'600e9);
  } else if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.4gs", static_cast<double>(ns_) / 1e9);
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.4gms", static_cast<double>(ns_) / 1e6);
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.4gus", static_cast<double>(ns_) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  // Render as d+hh:mm:ss.mmm since run start; readable in traces.
  const std::int64_t total_ms = ns_ / 1'000'000;
  const std::int64_t ms = total_ms % 1'000;
  const std::int64_t total_s = total_ms / 1'000;
  const std::int64_t s = total_s % 60;
  const std::int64_t m = (total_s / 60) % 60;
  const std::int64_t h = (total_s / 3'600) % 24;
  const std::int64_t d = total_s / 86'400;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%lld+%02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(d), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

}  // namespace ronpath
