#include "util/thread_pool.h"

#include <exception>
#include <optional>

namespace ronpath {
namespace {

// Identifies the current thread's worker slot inside its owning pool, so
// submit() from a worker can use its own deque. One pool is active per
// worker thread, so a pair of thread_locals suffices.
thread_local const void* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  const std::size_t n = n_threads == 0 ? 1 : n_threads;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  if (tls_pool == this) {
    target = tls_worker;
  } else {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++pending_;
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::take(std::size_t self) {
  {
    Worker& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.deque.empty()) {
      auto task = std::move(own.deque.back());
      own.deque.pop_back();
      return task;
    }
  }
  // Steal oldest work from the first non-empty victim after self.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Worker& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      auto task = std::move(victim.deque.front());
      victim.deque.pop_front();
      return task;
    }
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    std::function<void()> task = take(self);
    if (!task) {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [this, self] {
        if (stop_) return true;
        for (const auto& q : queues_) {
          std::lock_guard<std::mutex> ql(q->mutex);
          if (!q->deque.empty()) return true;
        }
        return false;
      });
      if (stop_) return;
      continue;
    }
    task();  // async() wraps in packaged_task, so exceptions land in futures
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::for_each_index(std::size_t n, std::size_t n_jobs,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n_jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(n_jobs < n ? n_jobs : n);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.async([&fn, i] { fn(i); }));
  }
  // Surface the lowest-index failure deterministically; later exceptions
  // are swallowed only after every task has run to completion.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace ronpath
