#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ronpath {

// ---------------------------------------------------------------- RunningStat

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

// ------------------------------------------------------------------ Histogram

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge case
    ++counts_[idx];
  }
}

void Histogram::merge(const Histogram& other) {
  assert(lo_ == other.lo_ && hi_ == other.hi_ && counts_.size() == other.counts_.size() &&
         "merging histograms with different binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::fraction_below(double x) const {
  if (total_ == 0) return 0.0;
  std::int64_t below = 0;
  if (x > lo_) below += underflow_;
  if (x >= hi_) below += overflow_;  // approximation: overflow mass sits at hi
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_hi(i) <= x) {
      below += counts_[i];
    } else {
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

// --------------------------------------------------------------- EmpiricalCdf

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::merge(const EmpiricalCdf& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::quantile(double q) const {
  assert(!samples_.empty());
  assert(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double EmpiricalCdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double EmpiricalCdf::min() const {
  assert(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  assert(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve() const {
  ensure_sorted();
  std::vector<Point> out;
  const double n = static_cast<double>(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    // Emit one point per distinct value, at its last occurrence.
    if (i + 1 < samples_.size() && samples_[i + 1] == samples_[i]) continue;
    out.push_back({samples_[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve(std::size_t max_points) const {
  auto full = curve();
  if (full.size() <= max_points || max_points == 0) return full;
  std::vector<Point> out;
  out.reserve(max_points);
  const double step = static_cast<double>(full.size() - 1) / static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i < max_points; ++i) {
    out.push_back(full[static_cast<std::size_t>(std::round(step * static_cast<double>(i)))]);
  }
  return out;
}

std::span<const double> EmpiricalCdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

// ----------------------------------------------------------------- P2Quantile

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
}

void P2Quantile::init_markers() {
  std::sort(initial_.begin(), initial_.end());
  for (int i = 0; i < 5; ++i) {
    heights_[i] = initial_[static_cast<std::size_t>(i)];
    pos_[i] = i + 1;
  }
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  desired_inc_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  ++count_;
  if (count_ <= 5) {
    initial_[static_cast<std::size_t>(count_ - 1)] = x;
    if (count_ == 5) init_markers();
    return;
  }

  // Locate the cell containing x and update extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += desired_inc_[i];

  // Adjust interior markers with parabolic (or linear) interpolation.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction.
      const double hp = heights_[i] +
                        sign / (pos_[i + 1] - pos_[i - 1]) *
                            ((pos_[i] - pos_[i - 1] + sign) * (heights_[i + 1] - heights_[i]) /
                                 (pos_[i + 1] - pos_[i]) +
                             (pos_[i + 1] - pos_[i] - sign) * (heights_[i] - heights_[i - 1]) /
                                 (pos_[i] - pos_[i - 1]));
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        // Linear fallback.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    std::array<double, 5> tmp = initial_;
    std::sort(tmp.begin(), tmp.begin() + count_);
    const auto idx = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(count_ - 1),
                         q_ * static_cast<double>(count_)));
    return tmp[idx];
  }
  return heights_[2];
}

// ---------------------------------------------------------------- PairCounter

void PairCounter::record(bool first_lost, bool second_lost) {
  ++pairs_;
  if (first_lost) ++first_lost_;
  if (second_lost) ++second_lost_;
  if (first_lost && second_lost) ++both_lost_;
}

void PairCounter::merge(const PairCounter& o) {
  pairs_ += o.pairs_;
  first_lost_ += o.first_lost_;
  second_lost_ += o.second_lost_;
  both_lost_ += o.both_lost_;
}

double PairCounter::first_loss_percent() const {
  return pairs_ > 0 ? 100.0 * static_cast<double>(first_lost_) / static_cast<double>(pairs_)
                    : 0.0;
}

double PairCounter::second_loss_percent() const {
  return pairs_ > 0 ? 100.0 * static_cast<double>(second_lost_) / static_cast<double>(pairs_)
                    : 0.0;
}

double PairCounter::total_loss_percent() const {
  return pairs_ > 0 ? 100.0 * static_cast<double>(both_lost_) / static_cast<double>(pairs_)
                    : 0.0;
}

std::optional<double> PairCounter::conditional_loss_percent() const {
  if (first_lost_ == 0) return std::nullopt;
  return 100.0 * static_cast<double>(both_lost_) / static_cast<double>(first_lost_);
}

}  // namespace ronpath
