#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ronpath {
namespace {

constexpr std::uint64_t kSplitMixGamma = 0x9E3779B97F4A7C15ull;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += kSplitMixGamma;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// FNV-1a over the tag bytes; stable across platforms.
std::uint64_t hash_tag(std::string_view tag) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : tag) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view tag) const { return fork(hash_tag(tag)); }

Rng Rng::fork(std::uint64_t tag) const {
  // Mix current state with the tag through SplitMix64 so child streams are
  // independent of both each other and the parent's future output.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3] ^ tag;
  Rng child;
  for (auto& word : child.s_) word = splitmix64(sm);
  return child;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  // -mean * ln(U), guarding U=0.
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  // Box-Muller.
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::pareto(double x_m, double alpha) {
  assert(x_m > 0.0 && alpha > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return x_m / std::pow(u, 1.0 / alpha);
}

Duration Rng::exponential_duration(Duration mean) {
  // Saturate before the int64 nanosecond cast: a draw against a huge
  // disabled-process mean (the overlay's ~100-year host-failure gap)
  // multiplies it by |ln u| and can exceed Duration's range, which is
  // UB in the cast and used to fabricate pre-epoch intervals. ~280
  // years is still "never within any run".
  constexpr double kMaxSeconds = 9.0e9;
  return Duration::from_seconds_f(std::min(exponential(mean.to_seconds_f()), kMaxSeconds));
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  return Duration::nanos(uniform_int(lo.count_nanos(), hi.count_nanos()));
}

}  // namespace ronpath
